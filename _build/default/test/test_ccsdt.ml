open Tc_tensor
open Tc_ccsdt

let check = Alcotest.check
let fail = Alcotest.fail

let small = Triples.make ~nh:3 ~np:4 ()

let test_make_validates () =
  match Triples.make ~nh:1 ~np:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "nh=1 accepted"

let test_t3_shape () =
  let t = Triples.t3 small ~method_:Triples.Reference in
  check (Alcotest.list Alcotest.int) "nh^3 x np^3" [ 3; 3; 3; 4; 4; 4 ]
    (Shape.extents (Dense.shape t))

let test_methods_agree () =
  let r = Triples.t3 small ~method_:Triples.Reference in
  let c = Triples.t3 small ~method_:Triples.Cogent_plans in
  let t = Triples.t3 small ~method_:Triples.Ttgt_pipeline in
  check Alcotest.bool "cogent == reference" true
    (Dense.equal_approx ~tol:1e-10 r c);
  check Alcotest.bool "ttgt == reference" true
    (Dense.equal_approx ~tol:1e-10 r t)

let test_energy_negative () =
  (* with a gapped spectrum every denominator is negative, so E(T) < 0 *)
  let e = Triples.correction small in
  check Alcotest.bool "physical sign" true (e < 0.0);
  check Alcotest.bool "finite" true (Float.is_finite e)

let test_energy_deterministic () =
  check (Alcotest.float 0.0) "same system, same energy"
    (Triples.correction small)
    (Triples.correction (Triples.make ~nh:3 ~np:4 ()))

let test_energy_method_independent () =
  let e_ref = Triples.correction ~method_:Triples.Reference small in
  let e_cg = Triples.correction ~method_:Triples.Cogent_plans small in
  check (Alcotest.float 1e-10) "corrections agree" e_ref e_cg

let test_energy_shape_guard () =
  let wrong = Dense.create (Shape.make [ ('a', 2) ]) in
  match Triples.energy small wrong with
  | exception Invalid_argument _ -> ()
  | _ -> fail "wrong t3 shape accepted"

let test_seed_changes_amplitudes () =
  let other = Triples.make ~seed:99 ~nh:3 ~np:4 () in
  check Alcotest.bool "different seeds differ" true
    (Float.abs (Triples.correction small -. Triples.correction other) > 1e-12)

let test_sweep_ordering () =
  (* the paper's CCSD(T) story at production scale: COGENT fastest, the
     TTGT pipeline slowest *)
  let sweeps =
    Triples.sweep_estimate Tc_gpu.Arch.v100 Tc_gpu.Precision.FP64 ~nh:16
      ~np:48
  in
  check Alcotest.int "three strategies" 3 (List.length sweeps);
  (match sweeps with
  | first :: _ ->
      check Alcotest.string "COGENT fastest" "COGENT"
        first.Triples.strategy
  | [] -> fail "no sweeps");
  let last = List.nth sweeps 2 in
  check Alcotest.string "TTGT slowest" "TAL_SH-style" last.Triples.strategy;
  List.iter
    (fun sw ->
      check Alcotest.bool
        (sw.Triples.strategy ^ " positive time")
        true
        (sw.Triples.time_s > 0.0 && Float.is_finite sw.Triples.gflops))
    sweeps

let test_sweep_sorted () =
  let sweeps =
    Triples.sweep_estimate Tc_gpu.Arch.p100 Tc_gpu.Precision.FP64 ~nh:16
      ~np:48
  in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Triples.time_s <= b.Triples.time_s && sorted rest
    | _ -> true
  in
  check Alcotest.bool "fastest first" true (sorted sweeps)

let () =
  Alcotest.run "ccsdt"
    [
      ( "triples",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "t3 shape" `Quick test_t3_shape;
          Alcotest.test_case "three backends agree on t3" `Slow
            test_methods_agree;
          Alcotest.test_case "energy is negative" `Quick test_energy_negative;
          Alcotest.test_case "energy deterministic" `Quick
            test_energy_deterministic;
          Alcotest.test_case "energy method-independent" `Slow
            test_energy_method_independent;
          Alcotest.test_case "energy shape guard" `Quick test_energy_shape_guard;
          Alcotest.test_case "seeds matter" `Quick test_seed_changes_amplitudes;
          Alcotest.test_case "sweep ordering matches the paper" `Slow
            test_sweep_ordering;
          Alcotest.test_case "sweeps sorted" `Slow test_sweep_sorted;
        ] );
    ]
