open Tc_gpu
open Tc_expr
open Cogent
open Tc_nwchem

let check = Alcotest.check

let sd2_1 =
  Problem.of_string_exn "abcdef-gdab-efgc"
    ~sizes:
      [ ('a', 16); ('b', 16); ('c', 16); ('d', 48); ('e', 48); ('f', 48); ('g', 48) ]

let test_recipe_shape () =
  (* the fixed recipe anchors a 16-wide X tile on the output FVI and a 4-
     wide register tile on the next available external *)
  let m = Nwgen.mapping sd2_1 in
  (match m.Mapping.tbx with
  | { Mapping.index = 'a'; tile = 16 } :: _ -> ()
  | _ -> Alcotest.fail "tbx must start with a:16");
  check Alcotest.int "regx width" 4 (Mapping.size_regx m);
  check Alcotest.int "tbk depth" 16 (Mapping.size_tbk m)

let test_plan_validates () =
  let plan = Nwgen.plan ~arch:Arch.v100 sd2_1 in
  check Alcotest.bool "valid mapping" true
    (Mapping.validate sd2_1 plan.Plan.mapping = Ok ());
  check Alcotest.bool "fits hardware" true
    (Plan.smem_bytes plan <= Arch.v100.Arch.smem_per_block
    && Plan.threads_per_block plan <= Arch.v100.Arch.max_threads_per_block)

let test_deterministic () =
  let p1 = Nwgen.plan sd2_1 and p2 = Nwgen.plan sd2_1 in
  check Alcotest.bool "same recipe every time" true
    (Mapping.equal p1.Plan.mapping p2.Plan.mapping)

let test_fallback_fits_fp64 () =
  (* big internal extents would overflow smem at full targets; the recipe
     must halve until resident *)
  let p =
    Problem.of_string_exn "ab-acde-edcb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64); ('d', 64); ('e', 64) ]
  in
  let plan = Nwgen.plan ~arch:Arch.p100 p in
  check Alcotest.bool "resident" true
    (Plan.smem_bytes plan <= Arch.p100.Arch.smem_per_block)

let test_no_search () =
  (* the recipe must not depend on the representative size beyond packing:
     same contraction at two sizes yields the same dimension targets *)
  let q =
    Problem.of_string_exn "abcdef-gdab-efgc"
      ~sizes:
        [ ('a', 16); ('b', 16); ('c', 16); ('d', 96); ('e', 96); ('f', 96); ('g', 96) ]
  in
  let m1 = Nwgen.mapping sd2_1 and m2 = Nwgen.mapping q in
  check Alcotest.int "same TBx width" (Mapping.size_tbx m1) (Mapping.size_tbx m2);
  check Alcotest.int "same register tile" (Mapping.size_regx m1)
    (Mapping.size_regx m2)

let nwchem_never_beats_refined_cogent =
  QCheck.Test.make ~count:30
    ~name:"model-driven COGENT >= fixed-recipe NWChem (simulated)"
    Gen.case_arbitrary (fun c ->
      let simulate plan =
        (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops
      in
      let cg =
        simulate
          (Driver.best_plan ~measure:simulate ~refine:64 c.Gen.problem)
      in
      let nw = simulate (Nwgen.plan c.Gen.problem) in
      (* On tiny random problems the fixed recipe can land outside the
         enumerated space and occasionally win by a small margin; the
         model-driven search must stay at least competitive. *)
      cg >= nw *. 0.7)

let nwchem_executes_correctly =
  QCheck.Test.make ~count:60 ~name:"fixed-recipe plans execute to reference"
    Gen.case_arbitrary (fun c ->
      let plan = Nwgen.plan c.Gen.problem in
      let got = Cogent.Interp.execute plan ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs in
      Tc_tensor.Dense.equal_approx ~tol:1e-9 (Gen.reference c) got)

let nwchem_valid_on_generated =
  QCheck.Test.make ~count:60 ~name:"fixed recipe always valid"
    Gen.case_arbitrary (fun c ->
      let plan = Nwgen.plan c.Gen.problem in
      Mapping.validate c.Gen.problem plan.Plan.mapping = Ok ())

let () =
  Alcotest.run "nwchem"
    [
      ( "nwgen",
        [
          Alcotest.test_case "recipe shape" `Quick test_recipe_shape;
          Alcotest.test_case "plan validates" `Quick test_plan_validates;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "hardware fallback" `Quick test_fallback_fits_fp64;
          Alcotest.test_case "size-independent targets" `Quick test_no_search;
          Gen.to_alcotest nwchem_valid_on_generated;
          Gen.to_alcotest nwchem_executes_correctly;
          Gen.to_alcotest nwchem_never_beats_refined_cogent;
        ] );
    ]
