(* Shared QCheck generators: random (but always well-formed) binary tensor
   contractions with small extents, used to cross-validate every execution
   path against the reference contraction. *)

open Tc_tensor
open Tc_expr

type case = {
  problem : Problem.t;
  lhs : Dense.t;  (* as written in the expression *)
  rhs : Dense.t;
}

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = QCheck.Gen.int_bound i st in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* A random contraction: 1-2 lhs externals, 0-2 rhs externals, 0-2
   internals (at least 3 indices total keeps it interesting), random
   layouts, random extents in 1..6, random lhs/rhs order (to exercise the
   canonicalization swap). *)
let contraction_gen : (Ast.t * Sizes.t) QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let n_lhs_ext = 1 + int_bound 1 st in
  let n_rhs_ext = int_bound 2 st in
  let n_int = int_bound 2 st in
  let n_int = if n_rhs_ext = 0 && n_int = 0 then 1 else n_int in
  let total = n_lhs_ext + n_rhs_ext + n_int in
  let letters = List.init total (fun k -> Char.chr (Char.code 'a' + k)) in
  let letters = shuffle st letters in
  let rec take n = function
    | [] -> ([], [])
    | l when n = 0 -> ([], l)
    | x :: rest ->
        let a, b = take (n - 1) rest in
        (x :: a, b)
  in
  let lhs_ext, rest = take n_lhs_ext letters in
  let rhs_ext, internals = take n_rhs_ext rest in
  let out = shuffle st (lhs_ext @ rhs_ext) in
  let lhs = shuffle st (lhs_ext @ internals) in
  let rhs = shuffle st (rhs_ext @ internals) in
  let sizes =
    Sizes.of_list (List.map (fun i -> (i, 1 + int_bound 5 st)) letters)
  in
  (* Randomly present the inputs swapped so that the output FVI sometimes
     lives in the rhs. *)
  let lhs, rhs = if bool st then (lhs, rhs) else (rhs, lhs) in
  let ast =
    Ast.make
      ~out:{ Ast.name = "C"; indices = out }
      ~lhs:{ Ast.name = "A"; indices = lhs }
      ~rhs:{ Ast.name = "B"; indices = rhs }
  in
  (ast, sizes)

let case_gen : case QCheck.Gen.t =
 fun st ->
  let ast, sizes = contraction_gen st in
  let problem = Problem.make_exn ast sizes in
  let info = Problem.info problem in
  let orig = info.Classify.original in
  let seed = QCheck.Gen.int_bound 10_000 st in
  let shape_of indices = Shape.of_indices ~sizes indices in
  let lhs = Dense.random ~seed (shape_of orig.Ast.lhs.Ast.indices) in
  let rhs = Dense.random ~seed:(seed + 1) (shape_of orig.Ast.rhs.Ast.indices) in
  { problem; lhs; rhs }

let case_print c =
  Format.asprintf "%a" Problem.pp c.problem

let case_arbitrary = QCheck.make ~print:case_print case_gen

(* Reference result for a case; Contract_ref is insensitive to operand
   order, so the original (as-written) order is fine. *)
let reference c =
  let info = Problem.info c.problem in
  Contract_ref.contract ~out_indices:info.Classify.externals c.lhs c.rhs

(* Fixed seed: property tests must be reproducible across runs. *)
let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t
