open Tc_gpu
open Tc_expr
open Cogent
open Tc_sim

let check = Alcotest.check

let b idx tile = { Mapping.index = idx; tile }

let gemm_problem n k =
  Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', n); ('b', n); ('c', k) ]

let gemm_mapping =
  {
    Mapping.tbx = [ b 'a' 16 ];
    regx = [];
    tby = [ b 'b' 16 ];
    regy = [];
    tbk = [ b 'c' 8 ];
    grid = [];
  }

let plan ?(arch = Arch.v100) ?(prec = Precision.FP64) problem mapping =
  Plan.make ~problem ~mapping ~arch ~precision:prec

let test_result_consistency () =
  let p = gemm_problem 512 512 in
  let r = Simkernel.run (plan p gemm_mapping) in
  check Alcotest.bool "positive time" true (r.Simkernel.time_s > 0.0);
  check (Alcotest.float 1e-3) "gflops = flops/time/1e9"
    (Problem.flops p /. r.Simkernel.time_s /. 1e9)
    r.Simkernel.gflops;
  check (Alcotest.float 1e-3) "bytes = 128 * transactions"
    (128.0 *. r.Simkernel.transactions)
    r.Simkernel.bytes;
  check Alcotest.bool "time >= both components" true
    (r.Simkernel.time_s >= r.Simkernel.mem_time_s
    && r.Simkernel.time_s >= r.Simkernel.compute_time_s)

let test_exact_vs_model_on_divisible () =
  (* With every extent divisible by its tile there are no boundary
     patterns; the exact count must agree with Algorithm 3 on the store
     side and stay close on the loads. *)
  let p = gemm_problem 256 64 in
  let exact = Simkernel.transactions_exact Precision.FP64 p gemm_mapping in
  let model = Cost.transactions Precision.FP64 p gemm_mapping in
  check (Alcotest.float 1.0) "store side identical" model.Cost.out
    exact.Cost.out;
  let close a bm = Float.abs (a -. bm) /. bm < 0.25 in
  check Alcotest.bool "lhs close to model" true (close exact.Cost.lhs model.Cost.lhs);
  check Alcotest.bool "rhs close to model" true (close exact.Cost.rhs model.Cost.rhs)

let test_exact_cheaper_on_boundary () =
  (* Boundary tiles: the model counts full tiles, the simulator counts
     in-range traffic, so exact <= model. *)
  let p = gemm_problem 250 60 in
  let exact = Simkernel.transactions_exact Precision.FP64 p gemm_mapping in
  let model = Cost.transactions Precision.FP64 p gemm_mapping in
  check Alcotest.bool "exact <= model on boundary problems" true
    (exact.Cost.lhs +. exact.Cost.rhs +. exact.Cost.out
    <= model.Cost.lhs +. model.Cost.rhs +. model.Cost.out)

let test_infeasible_config_zero () =
  (* 255 regs/thread forced by a huge register tile: occupancy invalid *)
  let p =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]
  in
  let m =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [ b 'b' 16 ];
      tby = [ b 'd' 16 ];
      regy = [ b 'c' 16 ];
      tbk = [ b 'e' 8; b 'f' 1 ];
      grid = [];
    }
  in
  let r = Simkernel.run (plan p m) in
  check (Alcotest.float 0.0) "zero gflops" 0.0 r.Simkernel.gflops;
  check Alcotest.bool "infinite time" true (r.Simkernel.time_s = infinity)

let test_low_concurrency_penalty () =
  (* same config, tiny grid: one block cannot fill 80 SMs *)
  let small = gemm_problem 16 512 in
  let big = gemm_problem 1024 512 in
  let rs = Simkernel.run (plan small gemm_mapping) in
  let rb = Simkernel.run (plan big gemm_mapping) in
  check Alcotest.bool "one-block grid detected" true
    (rs.Simkernel.concurrency < 0.05);
  check Alcotest.bool "low concurrency hurts throughput" true
    (rs.Simkernel.gflops < rb.Simkernel.gflops /. 4.0)

let test_partial_warp_penalty () =
  let p = gemm_problem 512 64 in
  let narrow =
    {
      Mapping.tbx = [ b 'a' 4 ];
      regx = [];
      tby = [ b 'b' 4 ];
      regy = [];
      tbk = [ b 'c' 8 ];
      grid = [];
    }
  in
  let r16 = Simkernel.run (plan p narrow) in
  let r256 = Simkernel.run (plan p gemm_mapping) in
  check Alcotest.bool "16-thread blocks slower" true
    (r16.Simkernel.gflops < r256.Simkernel.gflops)

let test_register_tiling_helps_compute_bound () =
  let p =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64); ('d', 64); ('e', 32); ('f', 32) ]
  in
  let flat =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'd' 16 ];
      regy = [];
      tbk = [ b 'e' 8; b 'f' 1 ];
      grid = [ 'b'; 'c' ];
    }
  in
  let tiled =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [ b 'b' 4 ];
      tby = [ b 'd' 16 ];
      regy = [ b 'c' 4 ];
      tbk = [ b 'e' 8; b 'f' 1 ];
      grid = [];
    }
  in
  let rf = Simkernel.run (plan p flat) in
  let rt = Simkernel.run (plan p tiled) in
  check Alcotest.bool "register tiling wins" true
    (rt.Simkernel.gflops > rf.Simkernel.gflops)

let test_fp32_not_slower () =
  let p = gemm_problem 512 256 in
  let r64 = Simkernel.run (plan ~prec:Precision.FP64 p gemm_mapping) in
  let r32 = Simkernel.run (plan ~prec:Precision.FP32 p gemm_mapping) in
  check Alcotest.bool "fp32 >= fp64 throughput" true
    (r32.Simkernel.gflops >= r64.Simkernel.gflops)

let test_v100_faster_than_p100 () =
  let p = gemm_problem 512 256 in
  let rp = Simkernel.run (plan ~arch:Arch.p100 p gemm_mapping) in
  let rv = Simkernel.run (plan ~arch:Arch.v100 p gemm_mapping) in
  check Alcotest.bool "V100 faster" true
    (rv.Simkernel.gflops > rp.Simkernel.gflops)

let test_below_peak () =
  let p = gemm_problem 1024 512 in
  let r = Simkernel.run (plan p gemm_mapping) in
  check Alcotest.bool "below device peak" true
    (r.Simkernel.gflops < Arch.peak_gflops Arch.v100 Precision.FP64)

let test_l2_discounts_small_input_reloads () =
  (* an input of a few hundred KB reloaded by many blocks: with the L2
     model it must be cheaper than the raw count; a >L2-sized input must
     not be discounted *)
  let small = gemm_problem 512 64 in
  let raw = Simkernel.transactions_exact Precision.FP64 small gemm_mapping in
  let cached =
    Simkernel.transactions_exact ~arch:Arch.v100 Precision.FP64 small
      gemm_mapping
  in
  check Alcotest.bool "lhs reloads discounted" true
    (cached.Cost.lhs < raw.Cost.lhs);
  check (Alcotest.float 1e-6) "stores unchanged" raw.Cost.out cached.Cost.out;
  let huge = gemm_problem 4096 1024 in
  (* 4096*1024 doubles = 32 MB per input: beyond both devices' L2 *)
  let raw_h = Simkernel.transactions_exact Precision.FP64 huge gemm_mapping in
  let cached_h =
    Simkernel.transactions_exact ~arch:Arch.v100 Precision.FP64 huge
      gemm_mapping
  in
  check (Alcotest.float 1e-3) "no discount beyond L2" raw_h.Cost.lhs
    cached_h.Cost.lhs

let test_l2_never_below_cold_traffic () =
  let p = gemm_problem 256 64 in
  let cached =
    Simkernel.transactions_exact ~arch:Arch.v100 Precision.FP64 p gemm_mapping
  in
  let cold_lhs = float_of_int (256 * 64 * 8 / 128) in
  check Alcotest.bool "at least one cold pass" true
    (cached.Cost.lhs >= cold_lhs -. 1.0)

let sim_finite_on_pruned_configs =
  QCheck.Test.make ~count:40
    ~name:"simulator finite and below peak on surviving configs"
    Gen.case_arbitrary (fun c ->
      let r = Driver.generate_exn c.Gen.problem in
      List.for_all
        (fun plan ->
          let s = Simkernel.run plan in
          Float.is_finite s.Simkernel.gflops
          && s.Simkernel.gflops >= 0.0
          && s.Simkernel.gflops
             <= Arch.peak_gflops Arch.v100 Precision.FP64)
        (Driver.top_plans ~n:3 r))

let () =
  Alcotest.run "sim"
    [
      ( "simkernel",
        [
          Alcotest.test_case "result consistency" `Quick test_result_consistency;
          Alcotest.test_case "exact vs model, divisible tiles" `Quick
            test_exact_vs_model_on_divisible;
          Alcotest.test_case "exact <= model on boundaries" `Quick
            test_exact_cheaper_on_boundary;
          Alcotest.test_case "infeasible config scores zero" `Quick
            test_infeasible_config_zero;
          Alcotest.test_case "low-concurrency penalty" `Quick
            test_low_concurrency_penalty;
          Alcotest.test_case "partial-warp penalty" `Quick
            test_partial_warp_penalty;
          Alcotest.test_case "register tiling helps" `Quick
            test_register_tiling_helps_compute_bound;
          Alcotest.test_case "fp32 not slower" `Quick test_fp32_not_slower;
          Alcotest.test_case "V100 > P100" `Quick test_v100_faster_than_p100;
          Alcotest.test_case "below peak" `Quick test_below_peak;
          Alcotest.test_case "L2 discounts small-input reloads" `Quick
            test_l2_discounts_small_input_reloads;
          Alcotest.test_case "L2 never below cold traffic" `Quick
            test_l2_never_below_cold_traffic;
          Gen.to_alcotest sim_finite_on_pruned_configs;
        ] );
    ]
