open Tc_tensor
open Tc_expr
open Tc_tccg

let check = Alcotest.check
let fail = Alcotest.fail

let test_forty_eight_entries () =
  check Alcotest.int "48 entries" 48 (List.length Suite.all);
  List.iteri
    (fun k e ->
      check Alcotest.int "ids are 1..48 in order" (k + 1) e.Suite.id)
    Suite.all

let test_group_sizes () =
  check Alcotest.int "8 ML" 8 (List.length (Suite.by_group Suite.Ml));
  check Alcotest.int "3 AO-MO" 3 (List.length (Suite.by_group Suite.Ao_mo));
  check Alcotest.int "19 CCSD" 19 (List.length (Suite.by_group Suite.Ccsd));
  check Alcotest.int "9 SD1" 9 (List.length (Suite.by_group Suite.Ccsd_t_sd1));
  check Alcotest.int "9 SD2" 9 (List.length (Suite.by_group Suite.Ccsd_t_sd2))

let test_group_positions () =
  (* §V: ML are 1-8, AO-MO 9-11, CCSD 12-30, CCSD(T) 31-48 *)
  let group_of id = (List.nth Suite.all (id - 1)).Suite.group in
  check Alcotest.bool "1 is ML" true (group_of 1 = Suite.Ml);
  check Alcotest.bool "9 is AO-MO" true (group_of 9 = Suite.Ao_mo);
  check Alcotest.bool "12 is CCSD" true (group_of 12 = Suite.Ccsd);
  check Alcotest.bool "30 is CCSD" true (group_of 30 = Suite.Ccsd);
  check Alcotest.bool "31 is SD1" true (group_of 31 = Suite.Ccsd_t_sd1);
  check Alcotest.bool "48 is SD2" true (group_of 48 = Suite.Ccsd_t_sd2)

let test_paper_named_entries () =
  (* the two contractions the paper spells out *)
  check Alcotest.string "Eq. 1 is entry 12" "abcd-aebf-dfce"
    (List.nth Suite.all 11).Suite.expr;
  check Alcotest.string "SD2_1 string" "abcdef-gdab-efgc"
    Suite.sd2_1.Suite.expr;
  check Alcotest.int "SD2_1 is entry 40" 40 Suite.sd2_1.Suite.id

let test_all_entries_valid () =
  List.iter
    (fun e ->
      match Problem.of_string e.Suite.expr ~sizes:e.Suite.sizes with
      | Ok _ -> ()
      | Error m -> fail (Printf.sprintf "%s: %s" e.Suite.name m))
    Suite.all

let test_entries_distinct () =
  let exprs = List.map (fun e -> e.Suite.expr) Suite.all in
  let names = List.map (fun e -> e.Suite.name) Suite.all in
  let distinct l = List.sort_uniq String.compare l |> List.length in
  check Alcotest.int "expressions unique" 48 (distinct exprs);
  check Alcotest.int "names unique" 48 (distinct names)

let test_ccsdt_structure () =
  (* every CCSD(T) entry is 6D = 4D * 4D with one contraction index *)
  List.iter
    (fun e ->
      let p = Suite.problem e in
      let info = Problem.info p in
      check Alcotest.int
        (e.Suite.name ^ " externals")
        6
        (List.length info.Classify.externals);
      check Alcotest.int (e.Suite.name ^ " internals") 1
        (List.length info.Classify.internals))
    (Suite.by_group Suite.Ccsd_t_sd1 @ Suite.by_group Suite.Ccsd_t_sd2)

let test_ccsdt_occupied_virtual_split () =
  (* SD1 contracts over an occupied (small) index, SD2 over a virtual one *)
  List.iter
    (fun e ->
      let p = Suite.problem e in
      check Alcotest.int (e.Suite.name ^ " g extent") 16 (Problem.extent p 'g'))
    (Suite.by_group Suite.Ccsd_t_sd1);
  List.iter
    (fun e ->
      let p = Suite.problem e in
      check Alcotest.int (e.Suite.name ^ " g extent") 48 (Problem.extent p 'g'))
    (Suite.by_group Suite.Ccsd_t_sd2)

let test_ccsd_4d_cases () =
  (* §V: the 12th and 20th-30th benchmarks are 4D = 4D * 4D *)
  List.iter
    (fun id ->
      let e = List.nth Suite.all (id - 1) in
      let p = Suite.problem e in
      let info = Problem.info p in
      check Alcotest.int
        (Printf.sprintf "entry %d rank of lhs" id)
        4
        (List.length info.Classify.expr.Ast.lhs.Ast.indices);
      check Alcotest.int
        (Printf.sprintf "entry %d rank of rhs" id)
        4
        (List.length info.Classify.expr.Ast.rhs.Ast.indices))
    (12 :: List.init 11 (fun k -> 20 + k))

let test_find () =
  (match Suite.find "sd2_1" with
  | Some e -> check Alcotest.int "found" 40 e.Suite.id
  | None -> fail "sd2_1 not found");
  check Alcotest.bool "missing" true (Suite.find "nope" = None)

let test_scaled_problem () =
  let p = Suite.scaled_problem Suite.sd2_1 ~scale:0.125 in
  check Alcotest.int "a scaled" 2 (Problem.extent p 'a');
  check Alcotest.int "d scaled" 6 (Problem.extent p 'd')

(* Functional end-to-end at reduced size: every one of the 48 suite
   contractions computes correctly through COGENT's interpreter and through
   the TTGT pipeline. *)
let test_suite_functional_all () =
  List.iter
    (fun e ->
      let name = e.Suite.name in
      let p = Suite.scaled_problem e ~scale:0.125 in
      let info = Problem.info p in
      let orig = info.Classify.original in
      let shape_of l = Shape.of_indices ~sizes:(Problem.sizes p) l in
      let lhs = Dense.random ~seed:31 (shape_of orig.Ast.lhs.Ast.indices) in
      let rhs = Dense.random ~seed:32 (shape_of orig.Ast.rhs.Ast.indices) in
      let expected =
        Contract_ref.contract ~out_indices:info.Classify.externals lhs rhs
      in
      let plan = Cogent.Driver.best_plan p in
      let via_cogent = Cogent.Interp.execute plan ~lhs ~rhs in
      let via_ttgt = Tc_ttgt.Ttgt.execute p ~lhs ~rhs in
      if not (Dense.equal_approx ~tol:1e-9 expected via_cogent) then
        fail (name ^ ": interp mismatch");
      if not (Dense.equal_approx ~tol:1e-9 expected via_ttgt) then
        fail (name ^ ": ttgt mismatch"))
    Suite.all

let () =
  Alcotest.run "tccg"
    [
      ( "suite",
        [
          Alcotest.test_case "48 entries in figure order" `Quick
            test_forty_eight_entries;
          Alcotest.test_case "group cardinalities" `Quick test_group_sizes;
          Alcotest.test_case "group positions match §V" `Quick
            test_group_positions;
          Alcotest.test_case "paper-named entries" `Quick
            test_paper_named_entries;
          Alcotest.test_case "all entries valid" `Quick test_all_entries_valid;
          Alcotest.test_case "entries distinct" `Quick test_entries_distinct;
          Alcotest.test_case "CCSD(T) structure" `Quick test_ccsdt_structure;
          Alcotest.test_case "occupied/virtual split" `Quick
            test_ccsdt_occupied_virtual_split;
          Alcotest.test_case "4D=4Dx4D positions" `Quick test_ccsd_4d_cases;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "scaled problems" `Quick test_scaled_problem;
          Alcotest.test_case "all 48 entries functional (scaled)" `Slow
            test_suite_functional_all;
        ] );
    ]
