open Tc_tensor

let check = Alcotest.check
let fail = Alcotest.fail

let shape l = Shape.make l

(* ---- Index ---- *)

let test_index_validity () =
  check Alcotest.bool "a is valid" true (Index.is_valid 'a');
  check Alcotest.bool "z is valid" true (Index.is_valid 'z');
  check Alcotest.bool "A is invalid" false (Index.is_valid 'A');
  check Alcotest.bool "0 is invalid" false (Index.is_valid '0');
  check Alcotest.bool "- is invalid" false (Index.is_valid '-')

let test_index_of_char_raises () =
  match Index.of_char 'Q' with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

let test_index_list_roundtrip () =
  let s = "aebf" in
  check Alcotest.string "roundtrip" s
    (Index.list_to_string (Index.list_of_string s))

let test_index_distinct () =
  check Alcotest.bool "abc distinct" true (Index.distinct [ 'a'; 'b'; 'c' ]);
  check Alcotest.bool "aba not distinct" false (Index.distinct [ 'a'; 'b'; 'a' ]);
  check Alcotest.bool "empty distinct" true (Index.distinct [])

(* ---- Shape ---- *)

let test_shape_basics () =
  let s = shape [ ('a', 3); ('b', 4); ('c', 5) ] in
  check Alcotest.int "rank" 3 (Shape.rank s);
  check Alcotest.int "numel" 60 (Shape.numel s);
  check Alcotest.int "extent b" 4 (Shape.extent s 'b');
  check (Alcotest.list Alcotest.char) "indices" [ 'a'; 'b'; 'c' ]
    (Shape.indices s);
  check Alcotest.char "fvi" 'a' (Shape.fvi s)

let test_shape_strides () =
  let s = shape [ ('a', 3); ('b', 4); ('c', 5) ] in
  check Alcotest.int "stride a (FVI)" 1 (Shape.stride s 'a');
  check Alcotest.int "stride b" 3 (Shape.stride s 'b');
  check Alcotest.int "stride c" 12 (Shape.stride s 'c')

let test_shape_position () =
  let s = shape [ ('x', 2); ('y', 2) ] in
  check Alcotest.int "position x" 0 (Shape.position s 'x');
  check Alcotest.int "position y" 1 (Shape.position s 'y');
  match Shape.position s 'z' with
  | exception Not_found -> ()
  | _ -> fail "expected Not_found"

let test_shape_rejects_duplicates () =
  match shape [ ('a', 2); ('a', 3) ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

let test_shape_rejects_nonpositive () =
  match shape [ ('a', 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

let test_shape_of_indices_missing () =
  let sizes = Tc_tensor.Index.Map.singleton 'a' 4 in
  match Shape.of_indices ~sizes [ 'a'; 'b' ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

(* ---- Dense ---- *)

let test_dense_get_set () =
  let t = Dense.create (shape [ ('a', 3); ('b', 2) ]) in
  Dense.set t [| 2; 1 |] 7.5;
  check (Alcotest.float 0.0) "get back" 7.5 (Dense.get t [| 2; 1 |]);
  check (Alcotest.float 0.0) "other still zero" 0.0 (Dense.get t [| 0; 0 |])

let test_dense_layout_fvi_first () =
  (* element (i, j) lives at offset i + Na * j *)
  let t = Dense.create (shape [ ('a', 3); ('b', 2) ]) in
  Dense.set t [| 1; 1 |] 9.0;
  check (Alcotest.float 0.0) "flat offset 1 + 3*1 = 4" 9.0
    (Dense.unsafe_data t).(4)

let test_dense_bounds () =
  let t = Dense.create (shape [ ('a', 3) ]) in
  (match Dense.get t [| 3 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "out of range accepted");
  match Dense.get t [| 0; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "wrong rank accepted"

let test_dense_named_access () =
  let t = Dense.create (shape [ ('a', 3); ('b', 4) ]) in
  let env = Index.Map.of_seq (List.to_seq [ ('a', 2); ('b', 3); ('z', 9) ]) in
  Dense.set_named t env 5.0;
  check (Alcotest.float 0.0) "named get" 5.0 (Dense.get_named t env);
  Dense.add_named t env 1.5;
  check (Alcotest.float 0.0) "named add" 6.5 (Dense.get t [| 2; 3 |])

let test_dense_init_iteri () =
  let s = shape [ ('a', 2); ('b', 3) ] in
  let t = Dense.init s (fun pos -> float_of_int ((10 * pos.(0)) + pos.(1))) in
  let count = ref 0 in
  Dense.iteri t (fun pos v ->
      incr count;
      check (Alcotest.float 0.0) "value matches position"
        (float_of_int ((10 * pos.(0)) + pos.(1)))
        v);
  check Alcotest.int "visited all" 6 !count

let test_dense_random_deterministic () =
  let s = shape [ ('a', 5); ('b', 5) ] in
  let a = Dense.random ~seed:7 s and b = Dense.random ~seed:7 s in
  check Alcotest.bool "same seed, same tensor" true (Dense.equal_approx a b);
  let c = Dense.random ~seed:8 s in
  check Alcotest.bool "different seed differs" false (Dense.equal_approx a c)

let test_dense_max_abs_diff () =
  let s = shape [ ('a', 2) ] in
  let a = Dense.init s (fun p -> float_of_int p.(0)) in
  let b = Dense.init s (fun p -> float_of_int p.(0) +. 0.25) in
  check (Alcotest.float 1e-12) "diff" 0.25 (Dense.max_abs_diff a b)

let test_dense_map2_shape_mismatch () =
  let a = Dense.create (shape [ ('a', 2) ]) in
  let b = Dense.create (shape [ ('a', 3) ]) in
  match Dense.map2 ( +. ) a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "shape mismatch accepted"

(* ---- Permute ---- *)

let test_permute_identity () =
  let s = shape [ ('a', 3); ('b', 4) ] in
  let t = Dense.random ~seed:1 s in
  let p = Permute.permute ~dst_indices:[ 'a'; 'b' ] t in
  check Alcotest.bool "identity permute equal" true (Dense.equal_approx t p)

let test_permute_transpose_2d () =
  let t = Dense.init (shape [ ('a', 3); ('b', 4) ]) (fun p ->
      float_of_int ((10 * p.(0)) + p.(1))) in
  let p = Permute.permute ~dst_indices:[ 'b'; 'a' ] t in
  check Alcotest.char "new fvi" 'b' (Shape.fvi (Dense.shape p));
  for i = 0 to 2 do
    for j = 0 to 3 do
      check (Alcotest.float 0.0) "transposed element"
        (Dense.get t [| i; j |])
        (Dense.get p [| j; i |])
    done
  done

let test_permute_rejects_non_permutation () =
  let t = Dense.create (shape [ ('a', 2); ('b', 2) ]) in
  match Permute.permute ~dst_indices:[ 'a'; 'c' ] t with
  | exception Invalid_argument _ -> ()
  | _ -> fail "accepted non-permutation"

let test_permute_is_identity () =
  Alcotest.(check bool)
    "same order" true
    (Permute.is_identity ~src:[ 'a'; 'b' ] ~dst:[ 'a'; 'b' ]);
  Alcotest.(check bool)
    "swapped" false
    (Permute.is_identity ~src:[ 'a'; 'b' ] ~dst:[ 'b'; 'a' ])

let permute_blocked_matches_naive =
  QCheck.Test.make ~count:100 ~name:"permute_blocked == permute"
    (QCheck.make
       (QCheck.Gen.map2
          (fun seed shuffled -> (seed, shuffled))
          (QCheck.Gen.int_bound 1000)
          (QCheck.Gen.int_bound 23)))
    (fun (seed, code) ->
      (* 4 indices, 24 permutations, select one by code *)
      let src = [ ('a', 3); ('b', 4); ('c', 2); ('d', 5) ] in
      let t = Dense.random ~seed (shape src) in
      let perms =
        let rec inserts x = function
          | [] -> [ [ x ] ]
          | y :: rest ->
              (x :: y :: rest)
              :: List.map (fun l -> y :: l) (inserts x rest)
        in
        let rec all = function
          | [] -> [ [] ]
          | x :: rest -> List.concat_map (inserts x) (all rest)
        in
        all [ 'a'; 'b'; 'c'; 'd' ]
      in
      let dst = List.nth perms (code mod List.length perms) in
      let naive = Permute.permute ~dst_indices:dst t in
      let blocked = Permute.permute_blocked ~block:2 ~dst_indices:dst t in
      Dense.equal_approx naive blocked)

let test_permute_roundtrip () =
  let t = Dense.random ~seed:3 (shape [ ('a', 4); ('b', 3); ('c', 2) ]) in
  let p = Permute.permute ~dst_indices:[ 'c'; 'a'; 'b' ] t in
  let back = Permute.permute ~dst_indices:[ 'a'; 'b'; 'c' ] p in
  check Alcotest.bool "roundtrip" true (Dense.equal_approx t back)

(* ---- Matmul ---- *)

let test_gemm_small () =
  (* [1 3; 2 4] * [5 7; 6 8] (column-major 2x2) *)
  let a = [| 1.; 2.; 3.; 4. |] and b = [| 5.; 6.; 7.; 8. |] in
  let c = Array.make 4 0.0 in
  Matmul.gemm ~m:2 ~n:2 ~k:2 ~a ~b ~c;
  check (Alcotest.float 0.0) "c00" 23.0 c.(0);
  check (Alcotest.float 0.0) "c10" 34.0 c.(1);
  check (Alcotest.float 0.0) "c01" 31.0 c.(2);
  check (Alcotest.float 0.0) "c11" 46.0 c.(3)

let test_gemm_accumulates () =
  let a = [| 1.0 |] and b = [| 1.0 |] in
  let c = [| 5.0 |] in
  Matmul.gemm ~m:1 ~n:1 ~k:1 ~a ~b ~c;
  check (Alcotest.float 0.0) "C += A*B" 6.0 c.(0)

let gemm_blocked_matches =
  QCheck.Test.make ~count:50 ~name:"gemm_blocked == gemm"
    QCheck.(triple (int_range 1 20) (int_range 1 20) (int_range 1 20))
    (fun (m, n, k) ->
      let st = Random.State.make [| m; n; k |] in
      let fill sz = Array.init sz (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let a = fill (m * k) and b = fill (k * n) in
      let c1 = Array.make (m * n) 0.0 and c2 = Array.make (m * n) 0.0 in
      Matmul.gemm ~m ~n ~k ~a ~b ~c:c1;
      Matmul.gemm_blocked ~block:7 ~m ~n ~k ~a ~b ~c:c2 ();
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) c1 c2)

let test_matmul_named () =
  let a = Dense.random ~seed:1 (shape [ ('i', 3); ('k', 4) ]) in
  let b = Dense.random ~seed:2 (shape [ ('k', 4); ('j', 5) ]) in
  let c = Matmul.matmul a b in
  let expected = Contract_ref.contract ~out_indices:[ 'i'; 'j' ] a b in
  check Alcotest.bool "matmul == einsum" true (Dense.equal_approx c expected)

let test_matmul_rejects_bad_shapes () =
  let a = Dense.create (shape [ ('i', 3); ('k', 4) ]) in
  let b = Dense.create (shape [ ('k', 5); ('j', 5) ]) in
  match Matmul.matmul a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "inner mismatch accepted"

(* ---- Contract_ref ---- *)

let test_contract_matrix_case () =
  (* C[i,j] = A[i,k] B[k,j] equals matmul *)
  let a = Dense.random ~seed:4 (shape [ ('i', 4); ('k', 3) ]) in
  let b = Dense.random ~seed:5 (shape [ ('k', 3); ('j', 2) ]) in
  let c = Contract_ref.contract ~out_indices:[ 'i'; 'j' ] a b in
  check Alcotest.bool "agree with matmul" true
    (Dense.equal_approx c (Matmul.matmul a b))

let test_contract_outer_product () =
  let a = Dense.init (shape [ ('i', 2) ]) (fun p -> float_of_int (p.(0) + 1)) in
  let b = Dense.init (shape [ ('j', 3) ]) (fun p -> float_of_int (p.(0) + 1)) in
  let c = Contract_ref.contract ~out_indices:[ 'i'; 'j' ] a b in
  check (Alcotest.float 0.0) "c(1,2)" 6.0 (Dense.get c [| 1; 2 |])

let test_contract_eq1_shape () =
  (* the paper's Eq. 1 at toy size *)
  let sizes = Index.Map.of_seq (List.to_seq [ ('a',2);('b',3);('c',2);('d',3);('e',2);('f',2) ]) in
  let a = Dense.random ~seed:1 (Shape.of_indices ~sizes [ 'a';'e';'b';'f' ]) in
  let b = Dense.random ~seed:2 (Shape.of_indices ~sizes [ 'd';'f';'c';'e' ]) in
  let c = Contract_ref.contract ~out_indices:[ 'a';'b';'c';'d' ] a b in
  check (Alcotest.list Alcotest.int) "shape" [ 2;3;2;3 ]
    (Shape.extents (Dense.shape c))

let test_contract_rejects_bad_output () =
  let a = Dense.create (shape [ ('i', 2); ('k', 2) ]) in
  let b = Dense.create (shape [ ('k', 2); ('j', 2) ]) in
  (* k is internal, must not appear in output *)
  (match Contract_ref.contract ~out_indices:[ 'i'; 'k' ] a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "internal in output accepted");
  (* j missing from output *)
  match Contract_ref.contract ~out_indices:[ 'i' ] a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "missing external accepted"

let test_contract_rejects_extent_mismatch () =
  let a = Dense.create (shape [ ('i', 2); ('k', 2) ]) in
  let b = Dense.create (shape [ ('k', 3); ('j', 2) ]) in
  match Contract_ref.contract ~out_indices:[ 'i'; 'j' ] a b with
  | exception Invalid_argument _ -> ()
  | _ -> fail "extent mismatch accepted"

let test_flop_count () =
  let a = Dense.create (shape [ ('i', 4); ('k', 5) ]) in
  let b = Dense.create (shape [ ('k', 5); ('j', 6) ]) in
  check Alcotest.int "2*m*n*k" (2 * 4 * 5 * 6)
    (Contract_ref.flop_count ~out_indices:[ 'i'; 'j' ] a b)

let contract_commutes =
  QCheck.Test.make ~count:80 ~name:"contract A B == contract B A"
    Gen.case_arbitrary (fun c ->
      let info = Tc_expr.Problem.info c.Gen.problem in
      let out = info.Tc_expr.Classify.externals in
      let ab = Contract_ref.contract ~out_indices:out c.Gen.lhs c.Gen.rhs in
      let ba = Contract_ref.contract ~out_indices:out c.Gen.rhs c.Gen.lhs in
      Dense.equal_approx ~tol:1e-9 ab ba)

let () =
  Alcotest.run "tc_tensor"
    [
      ( "index",
        [
          Alcotest.test_case "validity" `Quick test_index_validity;
          Alcotest.test_case "of_char raises" `Quick test_index_of_char_raises;
          Alcotest.test_case "list roundtrip" `Quick test_index_list_roundtrip;
          Alcotest.test_case "distinct" `Quick test_index_distinct;
        ] );
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "strides" `Quick test_shape_strides;
          Alcotest.test_case "position" `Quick test_shape_position;
          Alcotest.test_case "rejects duplicates" `Quick
            test_shape_rejects_duplicates;
          Alcotest.test_case "rejects non-positive" `Quick
            test_shape_rejects_nonpositive;
          Alcotest.test_case "of_indices missing extent" `Quick
            test_shape_of_indices_missing;
        ] );
      ( "dense",
        [
          Alcotest.test_case "get/set" `Quick test_dense_get_set;
          Alcotest.test_case "FVI-first layout" `Quick
            test_dense_layout_fvi_first;
          Alcotest.test_case "bounds checking" `Quick test_dense_bounds;
          Alcotest.test_case "named access" `Quick test_dense_named_access;
          Alcotest.test_case "init/iteri" `Quick test_dense_init_iteri;
          Alcotest.test_case "random determinism" `Quick
            test_dense_random_deterministic;
          Alcotest.test_case "max_abs_diff" `Quick test_dense_max_abs_diff;
          Alcotest.test_case "map2 shape mismatch" `Quick
            test_dense_map2_shape_mismatch;
        ] );
      ( "permute",
        [
          Alcotest.test_case "identity" `Quick test_permute_identity;
          Alcotest.test_case "2d transpose" `Quick test_permute_transpose_2d;
          Alcotest.test_case "rejects non-permutation" `Quick
            test_permute_rejects_non_permutation;
          Alcotest.test_case "is_identity" `Quick test_permute_is_identity;
          Alcotest.test_case "roundtrip" `Quick test_permute_roundtrip;
          Gen.to_alcotest permute_blocked_matches_naive;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "2x2" `Quick test_gemm_small;
          Alcotest.test_case "accumulates into C" `Quick test_gemm_accumulates;
          Gen.to_alcotest gemm_blocked_matches;
          Alcotest.test_case "named matmul" `Quick test_matmul_named;
          Alcotest.test_case "rejects bad shapes" `Quick
            test_matmul_rejects_bad_shapes;
        ] );
      ( "contract_ref",
        [
          Alcotest.test_case "matrix case" `Quick test_contract_matrix_case;
          Alcotest.test_case "outer product" `Quick test_contract_outer_product;
          Alcotest.test_case "Eq. 1 shape" `Quick test_contract_eq1_shape;
          Alcotest.test_case "rejects bad output" `Quick
            test_contract_rejects_bad_output;
          Alcotest.test_case "rejects extent mismatch" `Quick
            test_contract_rejects_extent_mismatch;
          Alcotest.test_case "flop count" `Quick test_flop_count;
          Gen.to_alcotest contract_commutes;
        ] );
    ]
