(* The plan interpreter executes exactly the schedule the CUDA generator
   emits; agreement with the reference contraction on adversarial cases
   (non-divisible tiles, swapped operands, grid-mapped externals, empty
   register tiles) validates the code-generation schema itself. *)

open Tc_tensor
open Tc_gpu
open Tc_expr
open Cogent

let fail = Alcotest.fail

let b idx tile = { Mapping.index = idx; tile }

let run_case ~expr ~sizes ~mapping =
  let problem = Problem.of_string_exn expr ~sizes in
  let info = Problem.info problem in
  let orig = info.Classify.original in
  let shape_of indices = Shape.of_indices ~sizes:(Problem.sizes problem) indices in
  let lhs = Dense.random ~seed:11 (shape_of orig.Ast.lhs.Ast.indices) in
  let rhs = Dense.random ~seed:12 (shape_of orig.Ast.rhs.Ast.indices) in
  let expected =
    Contract_ref.contract ~out_indices:info.Classify.externals lhs rhs
  in
  let plan =
    Plan.make ~problem ~mapping ~arch:Arch.v100 ~precision:Precision.FP64
  in
  let got = Interp.execute plan ~lhs ~rhs in
  if not (Dense.equal_approx ~tol:1e-9 expected got) then
    fail
      (Format.asprintf "interp mismatch (%.3e) for %s under %a"
         (Dense.max_abs_diff expected got)
         expr Mapping.pp mapping)

let test_gemm_exact_tiles () =
  run_case ~expr:"ab-ac-cb" ~sizes:[ ('a', 16); ('b', 16); ('c', 8) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 8 ];
        regx = [];
        tby = [ b 'b' 8 ];
        regy = [];
        tbk = [ b 'c' 4 ];
        grid = [];
      }

let test_gemm_non_divisible () =
  (* 13, 9, 7 are divisible by none of the tiles *)
  run_case ~expr:"ab-ac-cb" ~sizes:[ ('a', 13); ('b', 9); ('c', 7) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [];
        tby = [ b 'b' 4 ];
        regy = [];
        tbk = [ b 'c' 4 ];
        grid = [];
      }

let test_eq1_with_register_tiles () =
  run_case ~expr:"abcd-aebf-dfce"
    ~sizes:[ ('a', 6); ('b', 5); ('c', 4); ('d', 7); ('e', 3); ('f', 2) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [ b 'b' 2 ];
        tby = [ b 'd' 4 ];
        regy = [ b 'c' 2 ];
        tbk = [ b 'e' 2; b 'f' 2 ];
        grid = [];
      }

let test_grid_mapped_externals () =
  run_case ~expr:"abcd-aebf-dfce"
    ~sizes:[ ('a', 6); ('b', 5); ('c', 4); ('d', 7); ('e', 3); ('f', 2) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [];
        tby = [ b 'd' 4 ];
        regy = [];
        tbk = [ b 'e' 3; b 'f' 1 ];
        grid = [ 'b'; 'c' ];
      }

let test_swapped_operands () =
  (* out FVI in the rhs: interp must resolve the canonical swap *)
  run_case ~expr:"abcd-be-aecd"
    ~sizes:[ ('a', 5); ('b', 4); ('c', 3); ('d', 4); ('e', 6) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [ b 'c' 2 ];
        tby = [ b 'b' 4 ];
        regy = [];
        tbk = [ b 'e' 4 ];
        grid = [ 'd' ];
      }

let test_multi_index_thread_dims () =
  (* two indices packed on TBx exercises the mixed-radix decomposition *)
  run_case ~expr:"abcd-aebf-dfce"
    ~sizes:[ ('a', 2); ('b', 3); ('c', 4); ('d', 7); ('e', 3); ('f', 2) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 2; b 'b' 2 ];
        regx = [];
        tby = [ b 'd' 4 ];
        regy = [ b 'c' 2 ];
        tbk = [ b 'e' 2; b 'f' 2 ];
        grid = [];
      }

let test_no_internal_outer_product () =
  (* pure outer product: no contraction index at all *)
  run_case ~expr:"ab-a-b" ~sizes:[ ('a', 9); ('b', 6) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [];
        tby = [ b 'b' 4 ];
        regy = [];
        tbk = [];
        grid = [];
      }

let test_internal_fvi_inputs () =
  (* both inputs have an internal FVI (hardest coalescing case) *)
  run_case ~expr:"ab-cad-dcb"
    ~sizes:[ ('a', 5); ('b', 6); ('c', 4); ('d', 3) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [];
        tby = [ b 'b' 4 ];
        regy = [];
        tbk = [ b 'c' 2; b 'd' 3 ];
        grid = [];
      }

let test_tile_bigger_than_remainder () =
  (* extent 5 with tile 4: the second block is 1 wide *)
  run_case ~expr:"ab-ac-cb" ~sizes:[ ('a', 5); ('b', 5); ('c', 5) ]
    ~mapping:
      {
        Mapping.tbx = [ b 'a' 4 ];
        regx = [];
        tby = [ b 'b' 4 ];
        regy = [];
        tbk = [ b 'c' 4 ];
        grid = [];
      }

let test_shape_mismatch_rejected () =
  let problem =
    Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 4); ('b', 4); ('c', 4) ]
  in
  let plan =
    Plan.make ~problem
      ~mapping:
        {
          Mapping.tbx = [ b 'a' 4 ];
          regx = [];
          tby = [ b 'b' 4 ];
          regy = [];
          tbk = [ b 'c' 4 ];
          grid = [];
        }
      ~arch:Arch.v100 ~precision:Precision.FP64
  in
  let bad = Dense.create (Shape.make [ ('a', 4); ('c', 5) ]) in
  let rhs = Dense.create (Shape.make [ ('c', 4); ('b', 4) ]) in
  match Interp.execute plan ~lhs:bad ~rhs with
  | exception Invalid_argument _ -> ()
  | _ -> fail "shape mismatch accepted"

(* The strongest property in the repository: for random contractions, the
   plan COGENT itself selects executes to exactly the reference result. *)
let interp_matches_reference_on_best_plan =
  QCheck.Test.make ~count:120 ~name:"interp(best plan) == reference"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      let got = Interp.execute plan ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs in
      Dense.equal_approx ~tol:1e-9 (Gen.reference c) got)

(* And not only for the selected plan: any surviving configuration must
   compute the same function. *)
let interp_matches_reference_on_ranked_plans =
  QCheck.Test.make ~count:25 ~name:"interp(any ranked plan) == reference"
    Gen.case_arbitrary (fun c ->
      let r = Driver.generate_exn c.Gen.problem in
      let expected = Gen.reference c in
      let plans = Driver.top_plans ~n:4 r in
      List.for_all
        (fun plan ->
          Dense.equal_approx ~tol:1e-9 expected
            (Interp.execute plan ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs))
        plans)

(* the precision choice affects resources and codegen, never the schedule's
   host semantics *)
let interp_precision_independent =
  QCheck.Test.make ~count:40 ~name:"interp agrees across precisions"
    Gen.case_arbitrary (fun c ->
      let mapping = (Driver.best_plan c.Gen.problem).Plan.mapping in
      let run precision =
        let plan =
          Plan.make ~problem:c.Gen.problem ~mapping ~arch:Arch.v100 ~precision
        in
        Interp.execute plan ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs
      in
      Dense.equal_approx ~tol:0.0 (run Precision.FP64) (run Precision.FP32))

let () =
  Alcotest.run "interp"
    [
      ( "fixed cases",
        [
          Alcotest.test_case "gemm, exact tiles" `Quick test_gemm_exact_tiles;
          Alcotest.test_case "gemm, non-divisible tiles" `Quick
            test_gemm_non_divisible;
          Alcotest.test_case "Eq. 1 with register tiles" `Quick
            test_eq1_with_register_tiles;
          Alcotest.test_case "grid-mapped externals" `Quick
            test_grid_mapped_externals;
          Alcotest.test_case "swapped operands" `Quick test_swapped_operands;
          Alcotest.test_case "multi-index thread dims" `Quick
            test_multi_index_thread_dims;
          Alcotest.test_case "outer product (no internals)" `Quick
            test_no_internal_outer_product;
          Alcotest.test_case "internal FVIs on both inputs" `Quick
            test_internal_fvi_inputs;
          Alcotest.test_case "boundary remainder tiles" `Quick
            test_tile_bigger_than_remainder;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_shape_mismatch_rejected;
        ] );
      ( "properties",
        [
          Gen.to_alcotest interp_matches_reference_on_best_plan;
          Gen.to_alcotest interp_matches_reference_on_ranked_plans;
          Gen.to_alcotest interp_precision_independent;
        ] );
    ]
