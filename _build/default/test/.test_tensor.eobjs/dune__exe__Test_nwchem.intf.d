test/test_nwchem.mli:
