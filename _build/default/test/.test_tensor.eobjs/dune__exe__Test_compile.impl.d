test/test_compile.ml: Alcotest Arch Cogent Filename Lazy List Precision Printf Sys Tc_expr Tc_gpu Tc_tccg
