test/test_ccsdt.ml: Alcotest Dense Float List Shape Tc_ccsdt Tc_gpu Tc_tensor Triples
