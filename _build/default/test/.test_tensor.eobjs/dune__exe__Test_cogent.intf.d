test/test_cogent.mli:
