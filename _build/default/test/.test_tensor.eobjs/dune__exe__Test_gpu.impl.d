test/test_gpu.ml: Alcotest Arch Gen Occupancy Precision QCheck Tc_gpu
