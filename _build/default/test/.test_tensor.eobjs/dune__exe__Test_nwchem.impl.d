test/test_nwchem.ml: Alcotest Arch Cogent Driver Gen Mapping Nwgen Plan Problem QCheck Tc_expr Tc_gpu Tc_nwchem Tc_sim Tc_tensor
