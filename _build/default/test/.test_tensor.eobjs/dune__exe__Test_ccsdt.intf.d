test/test_ccsdt.mli:
