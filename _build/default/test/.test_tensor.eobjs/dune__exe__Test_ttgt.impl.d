test/test_ttgt.ml: Alcotest Arch Contract_ref Dense Filename Gemm_model Gen Index List Precision Printf Problem QCheck String Sys Tc_expr Tc_gpu Tc_tensor Tc_ttgt Transpose_gen Transpose_model Ttgt
