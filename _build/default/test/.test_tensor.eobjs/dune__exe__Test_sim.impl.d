test/test_sim.ml: Alcotest Arch Cogent Cost Driver Float Gen List Mapping Plan Precision Problem QCheck Simkernel Tc_expr Tc_gpu Tc_sim
