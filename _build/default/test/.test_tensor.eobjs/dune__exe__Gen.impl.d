test/gen.ml: Array Ast Char Classify Contract_ref Dense Format List Problem QCheck QCheck_alcotest Random Shape Sizes Tc_expr Tc_tensor
