test/test_tensor.ml: Alcotest Array Contract_ref Dense Float Gen Index List Matmul Permute QCheck Random Shape Tc_expr Tc_tensor
