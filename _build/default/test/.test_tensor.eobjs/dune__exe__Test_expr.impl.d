test/test_expr.ml: Alcotest Array Ast Classify Contract_ref Dense Float Format Fuse Gen Index List Parser Printf Problem QCheck Shape Sizes Split Tc_expr Tc_tensor
