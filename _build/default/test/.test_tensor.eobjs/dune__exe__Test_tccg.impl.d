test/test_tccg.ml: Alcotest Ast Classify Cogent Contract_ref Dense List Printf Problem Shape String Suite Tc_expr Tc_tccg Tc_tensor Tc_ttgt
