test/test_ttgt.mli:
