test/test_integration.ml: Alcotest Arch Cogent Contract_ref Dense Index List Option Precision Printf Problem String Sys Tc_expr Tc_gpu Tc_nwchem Tc_sim Tc_tccg Tc_tensor Tc_ttgt
