test/test_interp.ml: Alcotest Arch Ast Classify Cogent Contract_ref Dense Driver Format Gen Interp List Mapping Plan Precision Problem QCheck Shape Tc_expr Tc_gpu Tc_tensor
