test/test_autotune.ml: Alcotest Arch Cogent Driver Gen Genetic List Mapping Precision Problem QCheck Random Space Tc_autotune Tc_expr Tc_gpu Tc_sim Tc_tensor Tuner
