test/test_tccg.mli:
