bench/main.mli:
