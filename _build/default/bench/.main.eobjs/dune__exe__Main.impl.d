bench/main.ml: Ablation Array Figures List Micro Printf String Sys
