bench/report.ml: Array Float List Printf String
