bench/ablation.ml: Arch Cogent Float List Precision Printf Report Tc_expr Tc_gpu Tc_sim Tc_tccg Tc_ttgt
