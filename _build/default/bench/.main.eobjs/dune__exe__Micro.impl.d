bench/micro.ml: Analyze Bechamel Benchmark Cogent Hashtbl Instance List Measure Option Printf Report Staged Tc_gpu Tc_sim Tc_tccg Test Time Toolkit
