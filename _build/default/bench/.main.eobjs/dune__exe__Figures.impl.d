bench/figures.ml: Arch Cogent Float List Option Precision Printf Report Tc_autotune Tc_gpu Tc_nwchem Tc_sim Tc_tccg Tc_ttgt
