(* Benchmark harness entry point.

   With no argument, regenerates every figure of the paper plus the pruning
   statistics and the code-generation micro-benchmarks.  Individual targets:

     dune exec bench/main.exe -- fig4|fig5|fig6|fig7|fig8|prunestats|ablation|micro *)

let targets =
  [
    ("fig4", Figures.fig4);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("prunestats", Figures.prunestats);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %S; available: %s\n" name
                (String.concat ", " (List.map fst targets));
              exit 1)
        names
