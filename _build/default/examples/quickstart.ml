(* Quickstart: generate a GPU kernel for the paper's running example

     C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]          (Eq. 1)

   This walks the full public API: parse, analyse, search, inspect the
   winning configuration, emit CUDA, predict performance on a V100, and
   validate the selected schedule against the reference contraction on a
   small instance.

   Run with: dune exec examples/quickstart.exe *)

open Tc_tensor
open Tc_gpu
open Tc_expr

let () =
  (* 1. A contraction plus a representative problem size.  The size only
     guides configuration selection; the emitted kernel takes extents as
     runtime parameters. *)
  let problem =
    Problem.of_string_exn "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"
      ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]
  in
  let info = Problem.info problem in
  Format.printf "contraction: %a@." Ast.pp info.Classify.original;
  Format.printf "externals:   %a   internals: %a@." Index.list_pp
    info.Classify.externals Index.list_pp info.Classify.internals;

  (* 2. Model-driven search (enumerate -> prune -> rank), refined by
     "running" the top candidates — here on the simulator, on real
     hardware a timed execution. *)
  let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops in
  let r =
    Cogent.Driver.generate_exn ~arch:Arch.v100 ~precision:Precision.FP64
      ~measure:simulate problem
  in
  let s = r.Cogent.Driver.prune_stats in
  Format.printf
    "@.search: naive space %.2e, enumerated %d, kept %d after pruning@."
    r.Cogent.Driver.naive_space s.Cogent.Prune.enumerated s.Cogent.Prune.kept;
  Format.printf "selected plan:@.  %a@." Cogent.Plan.pp r.Cogent.Driver.plan;

  (* 3. The generated CUDA (first lines). *)
  let cuda = Cogent.Driver.cuda_source r in
  let preview =
    String.concat "\n"
      (List.filteri (fun k _ -> k < 12) (String.split_on_char '\n' cuda))
  in
  Format.printf "@.generated CUDA (first lines of %d bytes):@.%s@.  ...@."
    (String.length cuda) preview;

  (* 4. Predicted performance. *)
  let sim = Tc_sim.Simkernel.run r.Cogent.Driver.plan in
  Format.printf "@.simulated on V100: %.0f GFLOPS (%a, occupancy %.2f)@."
    sim.Tc_sim.Simkernel.gflops Tc_sim.Simkernel.pp_bound
    sim.Tc_sim.Simkernel.bound sim.Tc_sim.Simkernel.occupancy;

  (* 5. Numerical validation of the exact schedule at a small size: the
     interpreter executes the same plan structure the CUDA encodes. *)
  let small =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 6); ('b', 5); ('c', 4); ('d', 7); ('e', 3); ('f', 2) ]
  in
  let plan = Cogent.Driver.best_plan small in
  let a = Dense.random ~seed:1 (Problem.lhs_shape small) in
  let b = Dense.random ~seed:2 (Problem.rhs_shape small) in
  let expected =
    Contract_ref.contract ~out_indices:(Index.list_of_string "abcd") a b
  in
  let got = Cogent.Interp.execute plan ~lhs:a ~rhs:b in
  Format.printf "@.schedule validation at 6x5x4x7 (e=3, f=2): max |diff| = %.2e@."
    (Dense.max_abs_diff expected got)
