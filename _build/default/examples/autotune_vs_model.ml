(* Model-driven selection versus black-box autotuning (§IV, Fig. 8).

   COGENT's analytical cost model picks a configuration in milliseconds; a
   Tensor-Comprehensions-style genetic autotuner evaluates thousands of
   code versions (compile + run each) to approach — and here not reach —
   the same quality.  This example runs a reduced-budget tune on the SD2_1
   kernel so it finishes in a couple of seconds, printing the convergence
   trace that Fig. 8 plots.

   Run with: dune exec examples/autotune_vs_model.exe *)

open Tc_gpu

let () =
  let arch = Arch.v100 and prec = Precision.FP32 in
  let problem = Tc_tccg.Suite.problem Tc_tccg.Suite.sd2_1 in
  let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops in

  let t0 = Sys.time () in
  let r = Cogent.Driver.generate_exn ~arch ~precision:prec ~measure:simulate problem in
  let model_time = Sys.time () -. t0 in
  let cogent = simulate r.Cogent.Driver.plan in
  Format.printf
    "COGENT (model-driven):   %.0f GFLOPS, selected in %.0f ms of host time@."
    cogent (model_time *. 1e3);

  let untuned = Tc_autotune.Tuner.untuned_gflops arch prec problem in
  Format.printf "TC default schedule:     %.2f GFLOPS (no tuning)@.@." untuned;

  let params =
    { Tc_autotune.Genetic.default_params with
      Tc_autotune.Genetic.population = 40;
      generations = 10 }
  in
  let tune = Tc_autotune.Tuner.tuned ~params arch prec problem in
  Format.printf "genetic autotuner (%d code versions, ~%.0f s of simulated tuning):@."
    tune.Tc_autotune.Genetic.evaluations tune.Tc_autotune.Genetic.tuning_time_s;
  Format.printf "  %-10s %12s@." "versions" "best GFLOPS";
  List.iter
    (fun (p : Tc_autotune.Genetic.trace_point) ->
      if p.Tc_autotune.Genetic.evaluations mod 40 = 0 then
        Format.printf "  %-10d %12.0f@." p.Tc_autotune.Genetic.evaluations
          p.Tc_autotune.Genetic.best_gflops)
    tune.Tc_autotune.Genetic.trace;
  Format.printf "@.best autotuned: %.0f GFLOPS -> COGENT is %.1fx faster with ~10^5x less tuning work@."
    tune.Tc_autotune.Genetic.best_gflops
    (cogent /. tune.Tc_autotune.Genetic.best_gflops)
