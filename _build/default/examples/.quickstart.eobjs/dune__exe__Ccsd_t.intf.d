examples/ccsd_t.mli:
