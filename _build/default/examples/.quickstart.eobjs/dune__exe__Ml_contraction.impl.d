examples/ml_contraction.ml: Arch Cogent Contract_ref Dense Format List Option Precision Problem Tc_expr Tc_gpu Tc_sim Tc_tccg Tc_tensor Tc_ttgt
