examples/autotune_vs_model.mli:
