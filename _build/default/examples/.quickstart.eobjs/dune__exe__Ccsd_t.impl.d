examples/ccsd_t.ml: Arch Cogent Format List Precision Tc_gpu Tc_nwchem Tc_sim Tc_tccg Tc_ttgt
