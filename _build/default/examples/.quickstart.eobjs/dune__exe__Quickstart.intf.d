examples/quickstart.mli:
