examples/triples_energy.ml: Format List Tc_ccsdt Tc_gpu
