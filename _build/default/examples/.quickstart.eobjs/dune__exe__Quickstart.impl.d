examples/quickstart.ml: Arch Ast Classify Cogent Contract_ref Dense Format Index List Precision Problem String Tc_expr Tc_gpu Tc_sim Tc_tensor
