examples/ml_contraction.mli:
