examples/autotune_vs_model.ml: Arch Cogent Format List Precision Sys Tc_autotune Tc_gpu Tc_sim Tc_tccg
