examples/triples_energy.mli:
