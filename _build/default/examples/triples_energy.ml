(* The full CCSD(T) triples correction, end to end.

   This is the computation the paper's evaluation revolves around (§I, §V):
   18 contraction kernels (9 SD1 + 9 SD2) accumulate the 6-D triples
   amplitude, followed by the energy reduction with orbital-energy
   denominators.  At a small toy size we compute E(T) three ways and show
   they agree to machine precision; at production scale we estimate a full
   sweep on both devices for the three execution strategies.

   Run with: dune exec examples/triples_energy.exe *)

let () =
  (* numerics at toy scale: 3 occupied, 4 virtual orbitals *)
  let sys = Tc_ccsdt.Triples.make ~nh:3 ~np:4 () in
  Format.printf "toy system: %d occupied, %d virtual orbitals@.@."
    (Tc_ccsdt.Triples.nh sys) (Tc_ccsdt.Triples.np sys);
  List.iter
    (fun m ->
      Format.printf "  E(T) via %-28s = %.12f@."
        (Tc_ccsdt.Triples.method_name m)
        (Tc_ccsdt.Triples.correction ~method_:m sys))
    [
      Tc_ccsdt.Triples.Reference;
      Tc_ccsdt.Triples.Cogent_plans;
      Tc_ccsdt.Triples.Ttgt_pipeline;
    ];

  (* cost of one production-scale sweep (16 occupied, 48 virtual) *)
  List.iter
    (fun arch ->
      Format.printf "@.one triples sweep at nh=16, np=48 on %s:@."
        arch.Tc_gpu.Arch.name;
      List.iter
        (fun sw ->
          Format.printf "  %-14s %8.1f ms  (%.0f GFLOPS)@."
            sw.Tc_ccsdt.Triples.strategy
            (sw.Tc_ccsdt.Triples.time_s *. 1e3)
            sw.Tc_ccsdt.Triples.gflops)
        (Tc_ccsdt.Triples.sweep_estimate arch Tc_gpu.Precision.FP64 ~nh:16
           ~np:48))
    [ Tc_gpu.Arch.p100; Tc_gpu.Arch.v100 ]
