(** The perturbative-triples (T) correction of coupled-cluster theory —
    the application that motivates the paper (§I, §V): in NWChem's CCSD(T)
    the dominant cost is forming the 6-D triples amplitude

      t3[h3,h2,h1,p6,p5,p4]
        +=  sum over h7 of t2[h7,pX,pY,hZ] * v2[h.,h.,p.,h7]   (9 SD1 terms)
        -   sum over p7 of t2[p7,pX,hY,hZ] * v2[p.,p.,p7,h.]   (9 SD2 terms)

    followed by the energy reduction E += t3^2 / D with the usual orbital-
    energy denominator.  The 18 contraction kernels are exactly entries
    31–48 of the TCCG suite; all nine variants of each family read the
    {e same} t2/v2 data under permuted index labels, so this module
    materializes one base tensor per operand family and reinterprets it
    per variant (a zero-copy view in spirit; a blit here).

    This is a complete, numerically validated mini-application driving the
    public API end to end, plus a planner for estimating a full triples
    sweep on the modeled devices. *)

open Tc_tensor
open Tc_gpu

type system
(** A closed-shell toy system: [nh] occupied and [np] virtual orbitals,
    orbital energies, and randomized t2/v2 amplitude tensors. *)

val make : ?seed:int -> nh:int -> np:int -> unit -> system
(** @raise Invalid_argument unless [nh >= 2] and [np >= 2]. *)

val nh : system -> int
val np : system -> int

type method_ =
  | Reference  (** nested-loop einsum oracle *)
  | Cogent_plans  (** each kernel planned by COGENT and run by the plan interpreter *)
  | Ttgt_pipeline  (** each kernel through the TTGT (TAL_SH-style) lowering *)

val method_name : method_ -> string

val t3 : system -> method_:method_ -> Dense.t
(** The accumulated triples amplitude [t3\[a,b,c,d,e,f\]] (a,b,c occupied;
    d,e,f virtual), summing all 9 SD1 contributions and subtracting all 9
    SD2 contributions. *)

val energy : system -> Dense.t -> float
(** [sum over blocks of t3^2 / (eps_a + eps_b + eps_c - eps_d - eps_e -
    eps_f)] — negative for a physical spectrum. *)

val correction : ?method_:method_ -> system -> float
(** [energy sys (t3 sys ~method_)]; default {!Reference}. *)

type sweep = {
  strategy : string;
  time_s : float;  (** simulated time of all 18 kernels at this size *)
  gflops : float;
}

val sweep_estimate :
  Arch.t -> Precision.t -> nh:int -> np:int -> sweep list
(** Simulated cost of one full triples sweep at production scale for the
    three execution strategies of the paper's evaluation (COGENT,
    NWChem-style fixed recipe, TAL_SH-style TTGT), fastest first. *)
