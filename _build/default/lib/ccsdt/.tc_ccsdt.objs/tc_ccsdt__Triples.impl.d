lib/ccsdt/triples.ml: Array Ast Classify Cogent Contract_ref Dense Float Index List Problem Random Shape Sizes Tc_expr Tc_nwchem Tc_sim Tc_tccg Tc_tensor Tc_ttgt
