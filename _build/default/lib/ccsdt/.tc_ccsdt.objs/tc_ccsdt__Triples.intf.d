lib/ccsdt/triples.mli: Arch Dense Precision Tc_gpu Tc_tensor
