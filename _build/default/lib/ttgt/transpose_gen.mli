(** CUDA code generation for tensor transposition — the cuTT-style kernels
    the TAL_SH baseline links against (§VI, "efficient GPU tensor
    transposition").

    Two schemas, chosen automatically:

    - {e packed}: when the permutation preserves the fastest-varying index,
      reads and writes both stream along it; one guarded grid-stride loop.
    - {e tiled}: otherwise the classic shared-memory transpose over the
      (source FVI, destination FVI) plane — 32x32 tiles with padding to
      avoid bank conflicts, 32x8 threads sweeping each tile, remaining
      axes decomposed from the block index.

    Extents are runtime parameters, matching {!Cogent.Codegen}'s
    convention.  The host-side algorithm of {!Tc_tensor.Permute} mirrors
    these schemas and serves as their numerical oracle. *)

open Tc_tensor
open Tc_gpu

val kernel_name : src:Index.t list -> dst:Index.t list -> string
(** E.g. [transpose_aebf_to_abef]. *)

val uses_tiled_schema : src:Index.t list -> dst:Index.t list -> bool
(** True when the FVI changes and the shared-memory tile is needed.
    @raise Invalid_argument if [dst] is not a permutation of [src]. *)

val emit_kernel :
  precision:Precision.t -> src:Index.t list -> dst:Index.t list -> string
(** The [__global__] kernel.
    @raise Invalid_argument on a non-permutation or an identity
    permutation (no kernel needed). *)

val emit :
  precision:Precision.t -> src:Index.t list -> dst:Index.t list -> string
(** Kernel plus an [extern "C"] launcher computing the grid. *)

val tile : int
(** Tile edge of the shared-memory schema (32). *)
