open Tc_gpu

type result = {
  time_s : float;
  gflops : float;
  flops : float;
  bytes : float;
  efficiency : float;
}

let peak_fraction_large_square = 0.82

(* Register/smem blocking a cuBLAS-class GEMM uses; drives the traffic
   estimate and the tail-utilization term. *)
let block_m = 128
let block_n = 128

let run (arch : Arch.t) prec ~m ~n ~k =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Gemm_model.run: empty GEMM";
  let fm = float_of_int m and fn = float_of_int n and fk = float_of_int k in
  let esize = float_of_int (Precision.bytes prec) in
  let flops = 2.0 *. fm *. fn *. fk in
  (* Blocked traffic: A is streamed once per column-panel of B and vice
     versa; C is read and written once. *)
  let panels_n = Float.of_int ((n + block_n - 1) / block_n) in
  let panels_m = Float.of_int ((m + block_m - 1) / block_m) in
  let bytes =
    esize *. ((fm *. fk *. panels_n) +. (fk *. fn *. panels_m) +. (2.0 *. fm *. fn))
  in
  (* Shape efficiency: a small K starves the inner loop; a small M or N
     side leaves register tiles underfilled. *)
  let eff_k = fk /. (fk +. 16.0) in
  let small_side = float_of_int (min m n) in
  let eff_mn = small_side /. (small_side +. 64.0) in
  let efficiency = peak_fraction_large_square *. eff_k *. eff_mn in
  (* Tail utilization: not enough thread blocks to fill the device. *)
  let tiles = panels_m *. panels_n in
  let concurrency = Float.min 1.0 (tiles /. float_of_int arch.Arch.sms) in
  let peak = Arch.peak_gflops arch prec *. 1e9 in
  let t_comp = flops /. (peak *. efficiency *. concurrency) in
  let t_mem = bytes /. (arch.Arch.dram_bw_gbs *. 1e9 *. 0.85 *. concurrency) in
  let time_s = Float.max t_comp t_mem +. (arch.Arch.kernel_launch_us *. 1e-6) in
  { time_s; gflops = flops /. time_s /. 1e9; flops; bytes; efficiency }
