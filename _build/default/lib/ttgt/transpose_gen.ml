open Tc_tensor
open Tc_gpu

let tile = 32
let block_rows = 8

let bpf = Printf.bprintf

let check_permutation ~src ~dst =
  if
    not
      (List.length src = List.length dst
      && Index.Set.equal (Index.Set.of_list src) (Index.Set.of_list dst))
  then
    invalid_arg
      (Printf.sprintf "Transpose_gen: %s is not a permutation of %s"
         (Index.list_to_string dst) (Index.list_to_string src))

let kernel_name ~src ~dst =
  Printf.sprintf "transpose_%s_to_%s" (Index.list_to_string src)
    (Index.list_to_string dst)

let uses_tiled_schema ~src ~dst =
  check_permutation ~src ~dst;
  not (Index.equal (List.hd src) (List.hd dst))

(* Runtime strides of a layout, named [prefix_<i>]. *)
let emit_strides buf ~prefix indices =
  let rec go expr = function
    | [] -> ()
    | i :: rest ->
        bpf buf "  const long long %s_%c = %s;\n" prefix i expr;
        go (Printf.sprintf "%s_%c * N_%c" prefix i i) rest
  in
  go "1LL" indices

let signature buf name scalar indices =
  bpf buf "extern \"C\" __global__ void %s(\n" name;
  bpf buf "    %s* __restrict__ g_dst,\n" scalar;
  bpf buf "    const %s* __restrict__ g_src" scalar;
  List.iter (fun i -> bpf buf ",\n    const int N_%c" i) indices;
  bpf buf ")\n{\n"

(* FVI preserved: one guarded grid-stride loop in destination order; both
   sides stream along the shared fastest index. *)
let emit_packed buf name scalar ~src ~dst =
  signature buf name scalar src;
  emit_strides buf ~prefix:"sS" src;
  bpf buf "  long long total = 1;\n";
  List.iter (fun i -> bpf buf "  total *= N_%c;\n" i) src;
  bpf buf
    "  for (long long l = (long long)blockIdx.x * blockDim.x + threadIdx.x;\n\
    \       l < total; l += (long long)gridDim.x * blockDim.x) {\n";
  bpf buf "    long long r = l;\n";
  let n = List.length dst in
  List.iteri
    (fun k i ->
      if k = n - 1 then bpf buf "    const int c_%c = (int)r;\n" i
      else begin
        bpf buf "    const int c_%c = (int)(r %% N_%c);\n" i i;
        bpf buf "    r /= N_%c;\n" i
      end)
    dst;
  bpf buf "    g_dst[l] = g_src[%s];\n"
    (String.concat " + "
       (List.map (fun i -> Printf.sprintf "c_%c * sS_%c" i i) src));
  bpf buf "  }\n}\n"

(* FVI changes: shared-memory tile over the (src FVI, dst FVI) plane,
   padded against bank conflicts; other axes come from the block index. *)
let emit_tiled buf name scalar ~src ~dst =
  let i = List.hd src and j = List.hd dst in
  let rest = List.filter (fun x -> not (Index.equal x i || Index.equal x j)) src in
  signature buf name scalar src;
  emit_strides buf ~prefix:"sS" src;
  emit_strides buf ~prefix:"sD" dst;
  bpf buf "  const int nb_%c = (N_%c + %d - 1) / %d;\n" i i tile tile;
  bpf buf "  const int nb_%c = (N_%c + %d - 1) / %d;\n" j j tile tile;
  bpf buf "  long long brem = blockIdx.x;\n";
  bpf buf "  const int base_%c = (int)(brem %% nb_%c) * %d;\n" i i tile;
  bpf buf "  brem /= nb_%c;\n" i;
  bpf buf "  const int base_%c = (int)(brem %% nb_%c) * %d;\n" j j tile;
  bpf buf "  brem /= nb_%c;\n" j;
  let n_rest = List.length rest in
  List.iteri
    (fun k x ->
      if k = n_rest - 1 then bpf buf "  const int c_%c = (int)brem;\n" x
      else begin
        bpf buf "  const int c_%c = (int)(brem %% N_%c);\n" x x;
        bpf buf "  brem /= N_%c;\n" x
      end)
    rest;
  let rest_sum prefix =
    if rest = [] then "0"
    else
      String.concat " + "
        (List.map (fun x -> Printf.sprintf "c_%c * %s_%c" x prefix x) rest)
  in
  bpf buf "  const long long rest_src = %s;\n" (rest_sum "sS");
  bpf buf "  const long long rest_dst = %s;\n" (rest_sum "sD");
  bpf buf "  __shared__ %s tile_s[%d][%d];\n" scalar tile (tile + 1);
  bpf buf "  const int tx = threadIdx.x, ty = threadIdx.y;\n";
  bpf buf "  for (int y = ty; y < %d; y += %d) {\n" tile block_rows;
  bpf buf "    if (base_%c + tx < N_%c && base_%c + y < N_%c)\n" i i j j;
  bpf buf
    "      tile_s[y][tx] = g_src[(long long)(base_%c + tx) * sS_%c + (long \
     long)(base_%c + y) * sS_%c + rest_src];\n"
    i i j j;
  bpf buf "  }\n  __syncthreads();\n";
  bpf buf "  for (int y = ty; y < %d; y += %d) {\n" tile block_rows;
  bpf buf "    if (base_%c + tx < N_%c && base_%c + y < N_%c)\n" j j i i;
  bpf buf
    "      g_dst[(long long)(base_%c + tx) * sD_%c + (long long)(base_%c + y) \
     * sD_%c + rest_dst] = tile_s[tx][y];\n"
    j j i i;
  bpf buf "  }\n}\n"

let emit_kernel ~precision ~src ~dst =
  check_permutation ~src ~dst;
  if List.for_all2 Index.equal src dst then
    invalid_arg "Transpose_gen: identity permutation needs no kernel";
  let name = kernel_name ~src ~dst in
  let scalar = Precision.cuda_type precision in
  let buf = Buffer.create 2048 in
  if uses_tiled_schema ~src ~dst then emit_tiled buf name scalar ~src ~dst
  else emit_packed buf name scalar ~src ~dst;
  Buffer.contents buf

let emit ~precision ~src ~dst =
  let kname = kernel_name ~src ~dst in
  let scalar = Precision.cuda_type precision in
  let buf = Buffer.create 2048 in
  bpf buf "// cuTT-style %s transpose kernel: %s -> %s\n"
    (if uses_tiled_schema ~src ~dst then "tiled" else "packed")
    (Index.list_to_string src) (Index.list_to_string dst);
  Buffer.add_string buf (emit_kernel ~precision ~src ~dst);
  bpf buf "\nextern \"C\" void %s_launch(\n" kname;
  bpf buf "    %s* d_dst, const %s* d_src" scalar scalar;
  List.iter (fun i -> bpf buf ",\n    int N_%c" i) src;
  bpf buf ",\n    cudaStream_t stream)\n{\n";
  if uses_tiled_schema ~src ~dst then begin
    let i = List.hd src and j = List.hd dst in
    bpf buf "  long long blocks = 1;\n";
    bpf buf "  blocks *= (N_%c + %d - 1) / %d;\n" i tile tile;
    bpf buf "  blocks *= (N_%c + %d - 1) / %d;\n" j tile tile;
    List.iter
      (fun x ->
        if not (Index.equal x i || Index.equal x j) then
          bpf buf "  blocks *= N_%c;\n" x)
      src;
    bpf buf "  dim3 block(%d, %d);\n" tile block_rows
  end
  else begin
    bpf buf "  long long total = 1;\n";
    List.iter (fun x -> bpf buf "  total *= N_%c;\n" x) src;
    bpf buf "  long long blocks = (total + 255) / 256;\n";
    bpf buf "  if (blocks > 65535) blocks = 65535;\n";
    bpf buf "  dim3 block(256, 1);\n"
  end;
  bpf buf "  %s<<<(unsigned)blocks, block, 0, stream>>>(d_dst, d_src%s);\n"
    kname
    (String.concat ""
       (List.map (fun x -> Printf.sprintf ", N_%c" x) src));
  bpf buf "}\n";
  Buffer.contents buf
