open Tc_tensor
open Tc_gpu

type result = {
  time_s : float;
  bytes : float;
  efficiency : float;
  identity : bool;
}

let base_efficiency = 0.65

let run (arch : Arch.t) prec ~sizes ~src ~dst =
  if
    not
      (List.length src = List.length dst
      && Index.Set.equal (Index.Set.of_list src) (Index.Set.of_list dst))
  then
    invalid_arg
      (Printf.sprintf "Transpose_model: %s is not a permutation of %s"
         (Index.list_to_string dst) (Index.list_to_string src));
  let extent i =
    match Index.Map.find_opt i sizes with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Transpose_model: no extent for %c" i)
  in
  let elems =
    List.fold_left (fun acc i -> acc * extent i) 1 src |> float_of_int
  in
  if List.for_all2 Index.equal src dst then
    { time_s = 0.0; bytes = 0.0; efficiency = 1.0; identity = true }
  else begin
    (* Coalescing on each side is limited by the contiguous run available
       at that side's fastest-varying indices; a tiled kernel needs runs of
       about two warps worth of elements to stream at full efficiency. *)
    let run_length order =
      (* contiguous run = product of leading extents until the first index
         that is not in the same leading position on the other side;
         conservatively we use just the FVI extent unless both sides share
         the leading index *)
      match order with [] -> 1 | fvi :: _ -> extent fvi
    in
    let sat = 32.0 in
    let side_eff order =
      let r = float_of_int (run_length order) in
      Float.min 1.0 (r /. sat)
    in
    (* If the FVI is preserved, both sides stream along it together. *)
    let fvi_preserved = Index.equal (List.hd src) (List.hd dst) in
    let eff_shape =
      if fvi_preserved then Float.min 1.0 (side_eff src +. 0.25)
      else Float.min (side_eff src) (side_eff dst)
    in
    let efficiency = base_efficiency *. Float.max 0.05 eff_shape in
    let bytes = 2.0 *. elems *. float_of_int (Precision.bytes prec) in
    let time_s =
      (bytes /. (arch.Arch.dram_bw_gbs *. 1e9 *. efficiency))
      +. (arch.Arch.kernel_launch_us *. 1e-6)
    in
    { time_s; bytes; efficiency; identity = false }
  end
