(** cuTT-like tensor transposition performance model.

    Index permutation is bandwidth-bound: every element is read and written
    once.  Achieved bandwidth depends on how well a tiled transpose kernel
    can coalesce both sides, which degrades when the fastest-varying index
    of the source or of the destination has a small extent. *)

open Tc_tensor
open Tc_gpu

type result = {
  time_s : float;
  bytes : float;
  efficiency : float;  (** achieved fraction of peak DRAM bandwidth *)
  identity : bool;  (** true when no data movement was needed *)
}

val run :
  Arch.t -> Precision.t -> sizes:int Index.Map.t -> src:Index.t list
  -> dst:Index.t list -> result
(** [run arch prec ~sizes ~src ~dst] models permuting a tensor laid out as
    [src] into layout [dst].  An identity permutation costs nothing.
    @raise Invalid_argument if [dst] is not a permutation of [src] or an
    extent is missing. *)

val base_efficiency : float
(** Fraction of peak bandwidth a well-tiled transpose with large FVIs on
    both sides reaches (~0.65, matching published cuTT results). *)
