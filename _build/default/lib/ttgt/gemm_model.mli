(** cuBLAS-like GEMM performance model.

    Models the library matrix-multiply the TTGT baseline lowers onto:
    near-peak throughput for large roughly-square operands, degraded
    efficiency for skinny shapes (small K, or a small M/N side), and a
    cache-blocked DRAM traffic estimate combined in a roofline.  The
    shape-dependence is the effect the paper highlights: "library
    matrix-multiplication routines often achieve much lower performance for
    such [highly rectangular] matrices". *)

open Tc_gpu

type result = {
  time_s : float;
  gflops : float;
  flops : float;
  bytes : float;
  efficiency : float;  (** achieved fraction of device peak *)
}

val run : Arch.t -> Precision.t -> m:int -> n:int -> k:int -> result
(** [run arch prec ~m ~n ~k] models [C(m x n) += A(m x k) * B(k x n)]. *)

val peak_fraction_large_square : float
(** Calibration: fraction of peak a large square GEMM reaches (cuBLAS-like,
    ~0.82). *)
