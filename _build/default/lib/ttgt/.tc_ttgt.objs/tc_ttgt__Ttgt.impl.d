lib/ttgt/ttgt.ml: Arch Ast Buffer Classify Dense Gemm_model Index List Matmul Permute Precision Printf Problem Shape Sizes Tc_expr Tc_gpu Tc_tensor Transpose_gen Transpose_model
