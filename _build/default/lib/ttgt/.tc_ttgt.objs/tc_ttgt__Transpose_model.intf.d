lib/ttgt/transpose_model.mli: Arch Index Precision Tc_gpu Tc_tensor
