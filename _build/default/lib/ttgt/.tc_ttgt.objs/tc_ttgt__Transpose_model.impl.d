lib/ttgt/transpose_model.ml: Arch Float Index List Precision Printf Tc_gpu Tc_tensor
