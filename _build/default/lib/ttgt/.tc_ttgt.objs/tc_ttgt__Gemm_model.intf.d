lib/ttgt/gemm_model.mli: Arch Precision Tc_gpu
