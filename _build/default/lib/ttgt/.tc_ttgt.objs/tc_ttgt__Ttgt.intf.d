lib/ttgt/ttgt.mli: Arch Dense Gemm_model Index Precision Problem Tc_expr Tc_gpu Tc_tensor
