lib/ttgt/transpose_gen.mli: Index Precision Tc_gpu Tc_tensor
