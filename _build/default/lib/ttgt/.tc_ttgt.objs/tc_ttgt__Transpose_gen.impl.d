lib/ttgt/transpose_gen.ml: Buffer Index List Precision Printf String Tc_gpu Tc_tensor
