lib/ttgt/gemm_model.ml: Arch Float Precision Tc_gpu
