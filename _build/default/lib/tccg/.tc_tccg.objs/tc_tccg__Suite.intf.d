lib/tccg/suite.mli: Format Problem Tc_expr
