lib/tccg/suite.ml: Char Float Format List Printf Problem Tc_expr
