(** The TCCG tensor-contraction benchmark suite (Springer & Bientinesi),
    as used in the paper's evaluation: 48 contractions, grouped exactly as
    §V describes —

    - entries 1–8: tensor-matrix contractions from machine learning;
    - entries 9–11: two-electron integral transforms (AO→MO basis);
    - entries 12–30: contractions from the CCSD coupled-cluster method
      (entry 12 and entries 20–30 are the 4D = 4D * 4D cases);
    - entries 31–48: the 18 CCSD(T) triples contractions (9 SD1 variants
      contracting over an occupied index, 9 SD2 variants contracting over a
      virtual index; SD2_1 is the paper's [abcdef-gdab-efgc]).

    Index strings for entries named in the paper are exact; the remaining
    ones are reconstructed to match each group's dimensionality, contraction
    structure and layout conventions (see DESIGN.md).  CCSD(T) extents
    follow the occupied/virtual split (small h ≈ 16, large p ≈ 48); other
    groups use representative sizes of comparable arithmetic work. *)

open Tc_expr

type group = Ml | Ao_mo | Ccsd | Ccsd_t_sd1 | Ccsd_t_sd2

val group_to_string : group -> string
val pp_group : Format.formatter -> group -> unit

type entry = {
  id : int;  (** 1-based position, matching the paper's figures *)
  name : string;  (** e.g. ["ml_1"], ["ccsd_12"], ["sd2_1"] *)
  group : group;
  expr : string;  (** TCCG string form *)
  sizes : (char * int) list;
}

val all : entry list
(** All 48, in figure order. *)

val by_group : group -> entry list

val sd2 : entry list
(** Entries 40–48, the SD2 subset of Figs. 6–8. *)

val sd2_1 : entry
(** The Fig. 8 benchmark. *)

val find : string -> entry option
(** Lookup by [name]. *)

val problem : entry -> Problem.t
(** @raise Invalid_argument if an entry is malformed (guarded by tests). *)

val scaled_problem : entry -> scale:float -> Problem.t
(** The entry's contraction with every extent scaled by [scale] (min 1) —
    used for small-size functional validation of the big benchmarks. *)
