open Tc_expr

type group = Ml | Ao_mo | Ccsd | Ccsd_t_sd1 | Ccsd_t_sd2

let group_to_string = function
  | Ml -> "ML"
  | Ao_mo -> "AO-MO"
  | Ccsd -> "CCSD"
  | Ccsd_t_sd1 -> "CCSD(T) SD1"
  | Ccsd_t_sd2 -> "CCSD(T) SD2"

let pp_group fmt g = Format.pp_print_string fmt (group_to_string g)

type entry = {
  id : int;
  name : string;
  group : group;
  expr : string;
  sizes : (char * int) list;
}

(* Uniform sizes for a span of letters. *)
let span first last n =
  List.init
    (Char.code last - Char.code first + 1)
    (fun k -> (Char.chr (Char.code first + k), n))

(* CCSD(T) extents: occupied (h) indices a,b,c are small, virtual (p)
   indices d,e,f are large; the contraction index g is occupied for SD1 and
   virtual for SD2. *)
let h = 16
let p = 48
let sd_sizes g_extent = span 'a' 'c' h @ span 'd' 'f' p @ [ ('g', g_extent) ]

let ml =
  [
    (1, "abc-bda-dc", span 'a' 'c' 312 @ [ ('d', 296) ]);
    (2, "abc-dca-bd", span 'a' 'c' 312 @ [ ('d', 296) ]);
    (3, "abc-acd-db", span 'a' 'c' 312 @ [ ('d', 296) ]);
    (4, "abc-adc-db", span 'a' 'c' 312 @ [ ('d', 296) ]);
    (5, "abcd-dbea-ec", [ ('a', 96); ('b', 96); ('c', 24); ('d', 96); ('e', 96) ]);
    (6, "abcd-deca-be", [ ('a', 96); ('b', 24); ('c', 96); ('d', 96); ('e', 96) ]);
    (7, "ab-acd-dbc", [ ('a', 384); ('b', 384); ('c', 128); ('d', 128) ]);
    (8, "ab-cad-dcb", [ ('a', 384); ('b', 384); ('c', 128); ('d', 128) ]);
  ]

let ao_mo =
  [
    (9, "abcd-ebcd-ae", span 'a' 'e' 72);
    (10, "abcd-aecd-be", span 'a' 'e' 72);
    (11, "abcd-abed-ce", span 'a' 'e' 72);
  ]

let ccsd =
  [
    (* Eq. 1 of the paper. *)
    (12, "abcd-aebf-dfce", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (* one-particle (4D x 2D) terms *)
    (13, "abcd-ebad-ce", span 'a' 'e' 72);
    (14, "abcd-eacd-be", span 'a' 'e' 72);
    (15, "abcd-aebd-ec", span 'a' 'e' 72);
    (16, "abcd-abed-ec", span 'a' 'e' 72);
    (17, "abcd-ebcd-ea", span 'a' 'e' 72);
    (18, "abcd-be-aecd", span 'a' 'e' 72);
    (19, "abcd-ce-abed", span 'a' 'e' 72);
    (* two-particle (4D = 4D * 4D) terms *)
    (20, "abcd-efab-cdef", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (21, "abcd-eafb-fdec", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (22, "abcd-aebf-fdce", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (23, "abcd-aefb-fdce", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (24, "abcd-eafd-bfce", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (25, "abcd-efab-efcd", span 'a' 'd' 64 @ span 'e' 'f' 16);
    (26, "abcd-feab-cdef", span 'a' 'd' 40 @ span 'e' 'f' 40);
    (27, "abcd-aebf-cfde", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (28, "abcd-eafb-cedf", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (29, "abcd-aefd-bfec", span 'a' 'd' 48 @ span 'e' 'f' 32);
    (30, "abcd-efad-cbef", span 'a' 'd' 48 @ span 'e' 'f' 32);
  ]

(* SD1: t3[h3,h2,h1,p6,p5,p4] += t2[h7,pX,pY,hZ] * v2[h.,h.,p.,h7]; the 9
   NWChem variants permute which occupied index and which virtual pair the
   t2 operand carries. *)
let sd1 =
  [
    (31, "abcdef-gfec-abdg");
    (32, "abcdef-gfdc-abeg");
    (33, "abcdef-gedc-abfg");
    (34, "abcdef-gfeb-acdg");
    (35, "abcdef-gfdb-aceg");
    (36, "abcdef-gedb-acfg");
    (37, "abcdef-gfea-bcdg");
    (38, "abcdef-gfda-bceg");
    (39, "abcdef-geda-bcfg");
  ]

(* SD2: t3[h3,h2,h1,p6,p5,p4] += t2[p7,pX,h.,h.] * v2[p.,p.,p7,hZ]; the
   paper names SD2_1 explicitly as abcdef-gdab-efgc. *)
let sd2_strings =
  [
    (40, "abcdef-gdab-efgc");
    (41, "abcdef-geab-dfgc");
    (42, "abcdef-gfab-degc");
    (43, "abcdef-gdac-efgb");
    (44, "abcdef-geac-dfgb");
    (45, "abcdef-gfac-degb");
    (46, "abcdef-gdbc-efga");
    (47, "abcdef-gebc-dfga");
    (48, "abcdef-gfbc-dega");
  ]

let make group prefix ord (id, expr, sizes) =
  { id; name = Printf.sprintf "%s_%d" prefix ord; group; expr; sizes }

let all =
  List.concat
    [
      List.mapi
        (fun k (id, expr, sizes) -> make Ml "ml" (k + 1) (id, expr, sizes))
        ml;
      List.mapi
        (fun k (id, expr, sizes) -> make Ao_mo "aomo" (k + 1) (id, expr, sizes))
        ao_mo;
      List.mapi
        (fun k (id, expr, sizes) ->
          make Ccsd "ccsd" (k + 1) (id, expr, sizes))
        ccsd;
      List.mapi
        (fun k (id, expr) ->
          make Ccsd_t_sd1 "sd1" (k + 1) (id, expr, sd_sizes h))
        sd1;
      List.mapi
        (fun k (id, expr) ->
          make Ccsd_t_sd2 "sd2" (k + 1) (id, expr, sd_sizes p))
        sd2_strings;
    ]

let by_group g = List.filter (fun e -> e.group = g) all
let sd2 = by_group Ccsd_t_sd2
let sd2_1 = List.hd sd2
let find name = List.find_opt (fun e -> e.name = name) all

let problem e =
  match Problem.of_string e.expr ~sizes:e.sizes with
  | Ok p -> p
  | Error msg ->
      invalid_arg (Printf.sprintf "Suite entry %s (%s): %s" e.name e.expr msg)

let scaled_problem e ~scale =
  let sizes =
    List.map
      (fun (i, n) ->
        (i, max 1 (int_of_float (Float.round (float_of_int n *. scale)))))
      e.sizes
  in
  match Problem.of_string e.expr ~sizes with
  | Ok p -> p
  | Error msg ->
      invalid_arg (Printf.sprintf "Suite entry %s scaled: %s" e.name msg)
