open Tc_tensor
open Tc_expr

type binding = { index : Index.t; tile : int }

type t = {
  tbx : binding list;
  regx : binding list;
  tby : binding list;
  regy : binding list;
  tbk : binding list;
  grid : Index.t list;
}

let prod_tiles l = List.fold_left (fun acc b -> acc * b.tile) 1 l
let size_tbx t = prod_tiles t.tbx
let size_tby t = prod_tiles t.tby
let size_regx t = prod_tiles t.regx
let size_regy t = prod_tiles t.regy
let size_tbk t = prod_tiles t.tbk
let threads_per_block t = size_tbx t * size_tby t

let tile_of t i =
  let find l = List.find_opt (fun b -> Index.equal b.index i) l in
  match find t.tbx with
  | Some b -> b.tile
  | None -> (
      match find t.regx with
      | Some b -> b.tile
      | None -> (
          match find t.tby with
          | Some b -> b.tile
          | None -> (
              match find t.regy with
              | Some b -> b.tile
              | None -> (
                  match find t.tbk with
                  | Some b -> b.tile
                  | None ->
                      if List.exists (Index.equal i) t.grid then 1
                      else raise Not_found))))

let smem_elems t =
  ((size_tbx t * size_regx t) + (size_tby t * size_regy t)) * size_tbk t

let reg_elems_per_thread t =
  (size_regx t * size_regy t) + size_regx t + size_regy t

let ceil_div a b = (a + b - 1) / b

let blocks_per_index problem t =
  let info = Problem.info problem in
  List.map
    (fun i -> (i, ceil_div (Problem.extent problem i) (tile_of t i)))
    info.Classify.externals

let num_blocks problem t =
  List.fold_left (fun acc (_, n) -> acc * n) 1 (blocks_per_index problem t)

let num_steps problem t =
  let info = Problem.info problem in
  List.fold_left
    (fun acc i -> acc * ceil_div (Problem.extent problem i) (tile_of t i))
    1 info.Classify.internals

let bindings_indices l = List.map (fun b -> b.index) l

let validate problem t =
  let info = Problem.info problem in
  let x_side = bindings_indices t.tbx @ bindings_indices t.regx in
  let y_side = bindings_indices t.tby @ bindings_indices t.regy in
  let mapped_ext = x_side @ y_side @ t.grid in
  let internal_mapped = bindings_indices t.tbk in
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (Index.distinct mapped_ext) "an external index is mapped twice" in
  let* () =
    check
      (Index.Set.equal
         (Index.Set.of_list mapped_ext)
         (Index.Set.of_list info.Classify.externals))
      "mapped externals differ from the contraction's externals"
  in
  let* () = check (Index.distinct internal_mapped) "an internal index is mapped twice" in
  let* () =
    check
      (Index.Set.equal
         (Index.Set.of_list internal_mapped)
         (Index.Set.of_list info.Classify.internals))
      "tbk must hold exactly the internal indices"
  in
  let lhs_ext = Index.Set.of_list info.Classify.lhs_externals in
  let rhs_ext = Index.Set.of_list info.Classify.rhs_externals in
  let* () =
    check
      (List.for_all (fun i -> Index.Set.mem i lhs_ext) x_side)
      "an X-side index is not an external of the lhs input"
  in
  let* () =
    check
      (List.for_all (fun i -> Index.Set.mem i rhs_ext) y_side)
      "a Y-side index is not an external of the rhs input"
  in
  let all_bindings = t.tbx @ t.regx @ t.tby @ t.regy @ t.tbk in
  let bad_tile =
    List.find_opt
      (fun b -> b.tile < 1 || b.tile > Problem.extent problem b.index)
      all_bindings
  in
  match bad_tile with
  | Some b ->
      Error
        (Printf.sprintf "tile %d of index %c outside [1, %d]" b.tile b.index
           (Problem.extent problem b.index))
  | None -> Ok ()

let compare_bindings a b =
  match List.compare_lengths a b with
  | 0 ->
      List.fold_left2
        (fun acc x y ->
          if acc <> 0 then acc
          else
            match Index.compare x.index y.index with
            | 0 -> Int.compare x.tile y.tile
            | c -> c)
        0 a b
  | c -> c

let compare a b =
  let c = compare_bindings a.tbx b.tbx in
  if c <> 0 then c
  else
    let c = compare_bindings a.regx b.regx in
    if c <> 0 then c
    else
      let c = compare_bindings a.tby b.tby in
      if c <> 0 then c
      else
        let c = compare_bindings a.regy b.regy in
        if c <> 0 then c
        else
          let c = compare_bindings a.tbk b.tbk in
          if c <> 0 then c else List.compare Index.compare a.grid b.grid

let equal a b = compare a b = 0

let pp_bindings fmt l =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
    (fun fmt b -> Format.fprintf fmt "%c:%d" b.index b.tile)
    fmt l

let pp fmt t =
  Format.fprintf fmt
    "@[<h>TBx[%a] REGx[%a] TBy[%a] REGy[%a] TBk[%a] Grid[%a]@]" pp_bindings
    t.tbx pp_bindings t.regx pp_bindings t.tby pp_bindings t.regy pp_bindings
    t.tbk Index.list_pp t.grid
