(** A fully-resolved kernel plan: a contraction, a configuration that
    survived pruning, the target device and precision, and every derived
    launch quantity.  Plans are what the code generator emits, the
    interpreter executes and the simulator times. *)

open Tc_gpu
open Tc_expr

type t = {
  problem : Problem.t;
  mapping : Mapping.t;
  arch : Arch.t;
  precision : Precision.t;
  cost : float;  (** Algorithm-3 model cost (DRAM transactions) *)
}

val make :
  problem:Problem.t -> mapping:Mapping.t -> arch:Arch.t
  -> precision:Precision.t -> t
(** Computes the model cost. @raise Invalid_argument if the mapping fails
    {!Mapping.validate}. *)

val threads_x : t -> int
val threads_y : t -> int
val threads_per_block : t -> int
val smem_bytes : t -> int
val regs_per_thread : t -> int
val num_blocks : t -> int
val num_steps : t -> int
val occupancy : t -> Occupancy.result
val flops : t -> float
val pp : Format.formatter -> t -> unit
