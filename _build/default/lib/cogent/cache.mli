(** Plan cache.

    A runtime that issues many contractions (a coupled-cluster sweep, a
    training loop) should not re-run the configuration search per call:
    generated kernels take extents as runtime parameters, so one kernel per
    (contraction, device, precision, size class) suffices — §IV-B's
    "closest representative" selection, memoized.

    The size class rounds every extent to the nearest power of two, so
    nearby problem sizes share a plan while order-of-magnitude changes
    trigger a fresh search. *)

open Tc_gpu
open Tc_expr

type t

val create : unit -> t

val size_class : Problem.t -> string
(** The rounding key, e.g. ["a:16,b:16,c:64"] — exposed for tests. *)

val find_or_generate :
  t -> ?arch:Arch.t -> ?precision:Precision.t -> ?measure:Driver.measure
  -> Problem.t -> Driver.t
(** Cached {!Driver.generate_exn}.  A hit may return a plan built for a
    {e nearby} representative size: the kernel text is identical in
    structure and valid for any extents; only the tile-selection inputs
    differed. *)

type stats = { entries : int; hits : int; misses : int }

val stats : t -> stats
val clear : t -> unit
