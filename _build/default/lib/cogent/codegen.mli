(** CUDA C code generation (Algorithm 1).

    Emits, for a given plan, a kernel with the four-phase structure of the
    paper — cooperative GMEM→SMEM staging of input slabs, SMEM→register
    vector loads, register-tile outer products over the serial TB_k sweep,
    and guarded coalesced stores — plus a host-side launcher.

    Tile sizes, thread-block shape and shared-memory footprints are baked in
    as compile-time constants (they define the configuration); tensor
    extents remain {e runtime parameters}, so one generated kernel supports
    arbitrary problem sizes and the representative size only drives the
    configuration choice (§IV-B). *)

type dialect = Cuda | Opencl

val dialect_name : dialect -> string

val kernel_name : Plan.t -> string
(** A C identifier derived from the TCCG string of the contraction,
    e.g. ["cogent_abcd_aebf_dfce"]. *)

val emit_kernel : ?name:string -> ?dialect:dialect -> Plan.t -> string
(** The kernel definition only ([__global__] CUDA by default; with
    [~dialect:Opencl] an OpenCL [__kernel] using [__local] staging and
    [barrier] synchronization — the OpenCL back end the paper lists as
    future work). *)

val emit_launcher : ?name:string -> Plan.t -> string
(** An [extern "C"] host function computing the grid decomposition and
    launching the kernel. *)

val emit : ?name:string -> Plan.t -> string
(** Header comment + kernel + launcher: a compilable [.cu] translation
    unit (given CUDA headers). *)

val emit_standalone : ?name:string -> Plan.t -> string
(** {!emit} plus a [main] that allocates device buffers at the
    representative problem size, runs the kernel repeatedly and reports
    GFLOPS — the shape of the paper's benchmark drivers. *)

val emit_opencl : ?name:string -> Plan.t -> string
(** A complete [.cl] translation unit: header comment, the OpenCL kernel,
    and a comment documenting the NDRange launch geometry
    (global/local work sizes) the host must use. *)
