open Tc_tensor
open Tc_expr

(* Mixed-radix decomposition, first radix fastest:
   [decompose 13 [|4;2;2|]] is [|1;1;1|] since 13 = 1 + 4*(1 + 2*1). *)
let decompose lin radices =
  let n = Array.length radices in
  let out = Array.make n 0 in
  let r = ref lin in
  for k = 0 to n - 1 do
    out.(k) <- !r mod radices.(k);
    r := !r / radices.(k)
  done;
  out

let ceil_div a b = (a + b - 1) / b

type axis = { index : Index.t; tile : int; extent : int; chunks : int }

let axes_of_bindings problem bindings =
  List.map
    (fun b ->
      let extent = Problem.extent problem b.Mapping.index in
      {
        index = b.Mapping.index;
        tile = b.Mapping.tile;
        extent;
        chunks = ceil_div extent b.Mapping.tile;
      })
    bindings

let execute (plan : Plan.t) ~lhs ~rhs =
  let problem = plan.Plan.problem in
  let mapping = plan.Plan.mapping in
  let info = Problem.info problem in
  (* Resolve the canonicalization swap: [a] is the canonical lhs. *)
  let a, b = if info.Classify.swapped then (rhs, lhs) else (lhs, rhs) in
  let check name want got =
    if not (Shape.equal want (Dense.shape got)) then
      invalid_arg
        (Format.asprintf "Interp: %s has shape %a, expected %a" name Shape.pp
           (Dense.shape got) Shape.pp want)
  in
  check "lhs input" (Problem.lhs_shape problem) a;
  check "rhs input" (Problem.rhs_shape problem) b;
  let out = Dense.create (Problem.out_shape problem) in

  (* Execution-space axes. *)
  let tbx = axes_of_bindings problem mapping.Mapping.tbx in
  let regx = axes_of_bindings problem mapping.Mapping.regx in
  let tby = axes_of_bindings problem mapping.Mapping.tby in
  let regy = axes_of_bindings problem mapping.Mapping.regy in
  let tbk = axes_of_bindings problem mapping.Mapping.tbk in
  let grid_axes =
    List.map
      (fun index ->
        let extent = Problem.extent problem index in
        { index; tile = 1; extent; chunks = extent })
      mapping.Mapping.grid
  in
  (* Grid decomposition covers every external index: tiled ones contribute
     ceil(N/T) chunks, grid ones N chunks. *)
  let block_axes = tbx @ regx @ tby @ regy @ grid_axes in
  let block_radices = Array.of_list (List.map (fun ax -> ax.chunks) block_axes) in
  let num_blocks = Array.fold_left ( * ) 1 block_radices in
  let step_radices = Array.of_list (List.map (fun ax -> ax.chunks) tbk) in
  let num_steps = Array.fold_left ( * ) 1 step_radices in

  (* Shared-memory slabs, one per input: lhs externals (tbx then regx
     order, plus any grid-mapped lhs external at tile 1) x internals; rhs
     externals x internals. *)
  let lhs_grid =
    List.filter
      (fun ax -> List.exists (Index.equal ax.index) info.Classify.lhs_externals)
      grid_axes
  and rhs_grid =
    List.filter
      (fun ax -> List.exists (Index.equal ax.index) info.Classify.rhs_externals)
      grid_axes
  in
  let side_a = tbx @ regx @ lhs_grid and side_b = tby @ regy @ rhs_grid in
  let slab_shape side_axes =
    Shape.make (List.map (fun ax -> (ax.index, ax.tile)) (side_axes @ tbk))
  in
  let slab_a = Dense.create (slab_shape side_a) in
  let slab_b = Dense.create (slab_shape side_b) in
  let zeros axes = Array.make (List.length axes) 0 in
  let lhs_grid_zero = zeros lhs_grid and rhs_grid_zero = zeros rhs_grid in

  let size_tbx = Mapping.size_tbx mapping
  and size_tby = Mapping.size_tby mapping
  and space_regx = Mapping.size_regx mapping
  and space_regy = Mapping.size_regy mapping
  and space_tbk = Mapping.size_tbk mapping in
  let tbx_radices = Array.of_list (List.map (fun ax -> ax.tile) tbx) in
  let tby_radices = Array.of_list (List.map (fun ax -> ax.tile) tby) in
  let regx_radices = Array.of_list (List.map (fun ax -> ax.tile) regx) in
  let regy_radices = Array.of_list (List.map (fun ax -> ax.tile) regy) in
  let tbk_radices = Array.of_list (List.map (fun ax -> ax.tile) tbk) in

  let env_add axes coords env =
    List.fold_left
      (fun (k, env) ax -> (k + 1, Index.Map.add ax.index coords.(k) env))
      (0, env) axes
    |> snd
  in

  (* Fill a slab from global memory with bounds guards (zero padding). *)
  let fill_slab slab tensor side_axes block_bases step_bases =
    let all_axes = side_axes @ tbk in
    Dense.iteri slab (fun pos _ ->
        let in_range = ref true in
        let env =
          List.fold_left
            (fun (k, env) ax ->
              let base =
                match Index.Map.find_opt ax.index block_bases with
                | Some v -> v
                | None -> Index.Map.find ax.index step_bases
              in
              let g = base + pos.(k) in
              if g >= ax.extent then in_range := false;
              (k + 1, Index.Map.add ax.index g env))
            (0, Index.Map.empty) all_axes
          |> snd
        in
        let v = if !in_range then Dense.get_named tensor env else 0.0 in
        Dense.set slab pos v)
  in

  for block = 0 to num_blocks - 1 do
    let bcoords = decompose block block_radices in
    let block_bases =
      List.fold_left
        (fun (k, m) ax ->
          (k + 1, Index.Map.add ax.index (bcoords.(k) * ax.tile) m))
        (0, Index.Map.empty) block_axes
      |> snd
    in
    (* Per-thread accumulators: acc.(ty * size_tbx + tx) is the register
       tile, indexed by ry * space_regx + rx. *)
    let acc =
      Array.init (size_tbx * size_tby) (fun _ ->
          Array.make (space_regx * space_regy) 0.0)
    in
    for step = 0 to num_steps - 1 do
      let scoords = decompose step step_radices in
      let step_bases =
        List.fold_left
          (fun (k, m) ax ->
            (k + 1, Index.Map.add ax.index (scoords.(k) * ax.tile) m))
          (0, Index.Map.empty) tbk
        |> snd
      in
      fill_slab slab_a a side_a block_bases step_bases;
      fill_slab slab_b b side_b block_bases step_bases;
      (* The serial TB_k sweep with per-thread outer products. *)
      for kk = 0 to space_tbk - 1 do
        let kcoords = decompose kk tbk_radices in
        let kenv = env_add tbk kcoords Index.Map.empty in
        for ty = 0 to size_tby - 1 do
          let tycoords = decompose ty tby_radices in
          for tx = 0 to size_tbx - 1 do
            let txcoords = decompose tx tbx_radices in
            let reg = acc.((ty * size_tbx) + tx) in
            for ry = 0 to space_regy - 1 do
              let rycoords = decompose ry regy_radices in
              let envy =
                env_add rhs_grid rhs_grid_zero
                  (env_add tby tycoords (env_add regy rycoords kenv))
              in
              let bval = Dense.get_named slab_b envy in
              if bval <> 0.0 then
                for rx = 0 to space_regx - 1 do
                  let rxcoords = decompose rx regx_radices in
                  let envx =
                    env_add lhs_grid lhs_grid_zero
                      (env_add tbx txcoords (env_add regx rxcoords kenv))
                  in
                  let aval = Dense.get_named slab_a envx in
                  reg.((ry * space_regx) + rx) <-
                    reg.((ry * space_regx) + rx) +. (aval *. bval)
                done
            done
          done
        done
      done
    done;
    (* Store finalized register tiles with bounds guards. *)
    for ty = 0 to size_tby - 1 do
      let tycoords = decompose ty tby_radices in
      for tx = 0 to size_tbx - 1 do
        let txcoords = decompose tx tbx_radices in
        let reg = acc.((ty * size_tbx) + tx) in
        for ry = 0 to space_regy - 1 do
          let rycoords = decompose ry regy_radices in
          for rx = 0 to space_regx - 1 do
            let rxcoords = decompose rx regx_radices in
            let local =
              env_add tbx txcoords
                (env_add regx rxcoords
                   (env_add tby tycoords (env_add regy rycoords Index.Map.empty)))
            in
            let in_range = ref true in
            let env =
              List.fold_left
                (fun env ax ->
                  let base = Index.Map.find ax.index block_bases in
                  let l =
                    match Index.Map.find_opt ax.index local with
                    | Some v -> v
                    | None -> 0 (* grid index: tile 1 *)
                  in
                  let g = base + l in
                  if g >= ax.extent then in_range := false;
                  Index.Map.add ax.index g env)
                Index.Map.empty block_axes
            in
            if !in_range then
              Dense.set_named out env reg.((ry * space_regx) + rx)
          done
        done
      done
    done
  done;
  out
