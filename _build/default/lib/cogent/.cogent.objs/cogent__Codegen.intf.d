lib/cogent/codegen.mli: Plan
