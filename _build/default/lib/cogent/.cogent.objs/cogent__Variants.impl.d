lib/cogent/variants.ml: Arch Ast Buffer Classify Codegen Driver Float Format List Plan Precision Printf Problem Result Sizes String Tc_expr Tc_gpu
