lib/cogent/prune.mli: Arch Format Mapping Occupancy Precision Problem Tc_expr Tc_gpu
