lib/cogent/variants.mli: Arch Ast Driver Index Plan Precision Sizes Tc_expr Tc_gpu Tc_tensor
