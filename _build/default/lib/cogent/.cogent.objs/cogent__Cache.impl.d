lib/cogent/cache.ml: Arch Ast Classify Driver Hashtbl List Precision Printf Problem String Tc_expr Tc_gpu
