lib/cogent/enumerate.mli: Mapping Problem Tc_expr Tc_tensor
