lib/cogent/mapping.mli: Format Index Problem Tc_expr Tc_tensor
