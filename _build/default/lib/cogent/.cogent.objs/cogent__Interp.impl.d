lib/cogent/interp.ml: Array Classify Dense Format Index List Mapping Plan Problem Shape Tc_expr Tc_tensor
