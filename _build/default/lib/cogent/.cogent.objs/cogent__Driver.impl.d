lib/cogent/driver.ml: Arch Codegen Cost Enumerate List Logs Mapping Plan Precision Prune Tc_expr Tc_gpu
