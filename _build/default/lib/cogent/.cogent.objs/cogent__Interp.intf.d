lib/cogent/interp.mli: Dense Plan Tc_tensor
