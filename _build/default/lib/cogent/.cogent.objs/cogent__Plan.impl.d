lib/cogent/plan.ml: Arch Cost Format Mapping Occupancy Precision Problem Prune Tc_expr Tc_gpu
