lib/cogent/cost.mli: Index Mapping Precision Problem Tc_expr Tc_gpu Tc_tensor
