lib/cogent/cost.ml: Ast Classify Float Index List Mapping Precision Problem Tc_expr Tc_gpu Tc_tensor
