lib/cogent/cache.mli: Arch Driver Precision Problem Tc_expr Tc_gpu
