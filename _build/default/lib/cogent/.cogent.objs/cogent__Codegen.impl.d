lib/cogent/codegen.ml: Arch Ast Buffer Classify Format Index List Mapping Option Plan Precision Printf Problem String Tc_expr Tc_gpu Tc_tensor
