lib/cogent/mapping.ml: Classify Format Index Int List Printf Problem Result Tc_expr Tc_tensor
