lib/cogent/driver.mli: Arch Mapping Plan Precision Problem Prune Tc_expr Tc_gpu
