lib/cogent/enumerate.ml: Classify Float Hashtbl Index List Mapping Option Printf Problem Set String Tc_expr Tc_tensor
