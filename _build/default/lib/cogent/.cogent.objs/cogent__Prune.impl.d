lib/cogent/prune.ml: Arch Classify Format Hashtbl Int List Mapping Occupancy Option Precision Problem Tc_expr Tc_gpu
