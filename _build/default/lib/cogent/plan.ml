open Tc_gpu
open Tc_expr

type t = {
  problem : Problem.t;
  mapping : Mapping.t;
  arch : Arch.t;
  precision : Precision.t;
  cost : float;
}

let make ~problem ~mapping ~arch ~precision =
  (match Mapping.validate problem mapping with
  | Ok () -> ()
  | Error e -> invalid_arg ("Plan.make: invalid mapping: " ^ e));
  let cost = Cost.total precision problem mapping in
  { problem; mapping; arch; precision; cost }

let threads_x t = Mapping.size_tbx t.mapping
let threads_y t = Mapping.size_tby t.mapping
let threads_per_block t = Mapping.threads_per_block t.mapping
let smem_bytes t = Prune.smem_bytes t.precision t.mapping
let regs_per_thread t = Prune.regs_per_thread t.precision t.mapping
let num_blocks t = Mapping.num_blocks t.problem t.mapping
let num_steps t = Mapping.num_steps t.problem t.mapping
let occupancy t = Prune.occupancy t.arch t.precision t.mapping
let flops t = Problem.flops t.problem

let pp fmt t =
  Format.fprintf fmt
    "@[<v>plan for %a on %s (%a)@,\
     \  %a@,\
     \  %dx%d threads, %d blocks, %d steps, %d B smem, ~%d regs/thread@,\
     \  occupancy %.2f, model cost %.3e transactions@]"
    Problem.pp t.problem t.arch.Arch.name Precision.pp t.precision Mapping.pp
    t.mapping (threads_x t) (threads_y t) (num_blocks t) (num_steps t)
    (smem_bytes t) (regs_per_thread t)
    (occupancy t).Occupancy.occupancy t.cost
