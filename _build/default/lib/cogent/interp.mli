(** Host-side execution of a kernel plan.

    Interprets exactly the schedule the CUDA generator emits (Algorithm 1):
    the grid is decomposed per external index, each block stages
    hyper-rectangular slabs of both inputs into simulated shared memory once
    per step (guarded, zero-padded at boundaries), each (thread, register
    coordinate) accumulates outer-product contributions across the serial
    TB_k dimension, and finalized register tiles are stored back with bounds
    guards.

    Because the loop structure, decompositions and address arithmetic mirror
    the generated CUDA one-for-one, agreement with {!Tc_tensor.Contract_ref}
    validates the code generation schema itself. *)

open Tc_tensor

val execute : Plan.t -> lhs:Dense.t -> rhs:Dense.t -> Dense.t
(** [execute plan ~lhs ~rhs] contracts the tensors given {e as written} in
    the original expression (any lhs/rhs canonicalization swap is resolved
    internally) and returns the output tensor in its declared layout.
    @raise Invalid_argument if a tensor's shape does not match the plan's
    problem. *)
