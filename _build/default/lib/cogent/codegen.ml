open Tc_tensor
open Tc_gpu
open Tc_expr


type dialect = Cuda | Opencl

let dialect_name = function Cuda -> "CUDA" | Opencl -> "OpenCL"

(* ---- naming helpers ---- *)

let kernel_name (plan : Plan.t) =
  let info = Problem.info plan.Plan.problem in
  let s = Ast.tccg_string info.Classify.original in
  "cogent_" ^ String.map (fun c -> if c = '-' then '_' else c) s

(* Everything the emitter needs about one tensor operand. *)
type operand_view = {
  cname : string;  (* g_A, g_B, g_C *)
  indices : Index.t list;  (* layout order, FVI first *)
  stride_prefix : string;  (* sA, sB, sC *)
}

type ctx = {
  plan : Plan.t;
  info : Classify.info;
  dialect : dialect;
  scalar : string;  (* "double" / "float" *)
  zero : string;
  i64 : string;  (* 64-bit integer type: "long long" / "long" *)
  flag : string;  (* boolean type for guards: "bool" / "int" *)
  smem_qual : string;  (* "__shared__" / "__local" *)
  tile_of : Index.t -> int;
  extent_name : Index.t -> string;  (* N_a *)
  is_internal : Index.t -> bool;
  base_name : Index.t -> string;  (* base_a or kbase_e *)
}

let make_ctx ?(dialect = Cuda) (plan : Plan.t) =
  let info = Problem.info plan.Plan.problem in
  let internal i = List.exists (Index.equal i) info.Classify.internals in
  {
    plan;
    info;
    dialect;
    scalar = Precision.cuda_type plan.Plan.precision;
    zero = (match plan.Plan.precision with FP64 -> "0.0" | FP32 -> "0.0f");
    i64 = (match dialect with Cuda -> "long long" | Opencl -> "long");
    flag = (match dialect with Cuda -> "bool" | Opencl -> "int");
    smem_qual = (match dialect with Cuda -> "__shared__" | Opencl -> "__local");
    tile_of = Mapping.tile_of plan.Plan.mapping;
    extent_name = (fun i -> Printf.sprintf "N_%c" i);
    is_internal = internal;
    base_name =
      (fun i -> Printf.sprintf (if internal i then "kbase_%c" else "base_%c") i);
  }

let lhs_view ctx =
  { cname = "g_A"; indices = ctx.info.Classify.expr.Ast.lhs.Ast.indices;
    stride_prefix = "sA" }

let rhs_view ctx =
  { cname = "g_B"; indices = ctx.info.Classify.expr.Ast.rhs.Ast.indices;
    stride_prefix = "sB" }

let out_view ctx =
  { cname = "g_C"; indices = ctx.info.Classify.expr.Ast.out.Ast.indices;
    stride_prefix = "sC" }

(* ---- emission helpers ---- *)

let bpf = Printf.bprintf

(* Runtime global-memory strides of an operand, derived from extents. *)
let emit_gmem_strides buf ctx view =
  let rec go stride_expr = function
    | [] -> ()
    | i :: rest ->
        bpf buf "  const %s %s_%c = %s;\n" ctx.i64 view.stride_prefix i
          stride_expr;
        go
          (Printf.sprintf "%s_%c * %s" view.stride_prefix i (ctx.extent_name i))
          rest
  in
  go (match ctx.dialect with Cuda -> "1LL" | Opencl -> "(long)1") view.indices

(* Compile-time shared-memory strides of an input slab laid out in the
   operand's own index order with tile-sized dims. *)
let smem_strides ctx view =
  let rec go acc stride = function
    | [] -> List.rev acc
    | i :: rest -> go ((i, stride) :: acc) (stride * ctx.tile_of i) rest
  in
  go [] 1 view.indices

let slab_elems ctx view =
  List.fold_left (fun acc i -> acc * ctx.tile_of i) 1 view.indices

(* Decompose a flat loop variable [var] into one local coordinate per index
   of [indices] (first = fastest).  Emits "const int <prefix>_<i> = ...". *)
let emit_decompose buf ~indices ~tiles ~var ~prefix =
  let tmp = var ^ "_r" in
  let needs_tmp =
    (* a temporary is only needed if some index after the first non-trivial
       one also has a non-trivial tile *)
    List.length (List.filter (fun t -> t > 1) tiles) > 1
  in
  if needs_tmp then bpf buf "      int %s = %s;\n" tmp var;
  let n = List.length indices in
  List.iteri
    (fun k (i, t) ->
      if t = 1 then bpf buf "      const int %s_%c = 0;\n" prefix i
      else begin
        let src = if needs_tmp then tmp else var in
        if k = n - 1 then bpf buf "      const int %s_%c = %s;\n" prefix i src
        else begin
          bpf buf "      const int %s_%c = %s %% %d;\n" prefix i src t;
          if needs_tmp then bpf buf "      %s /= %d;\n" tmp t
        end
      end)
    (List.combine indices tiles)

(* Sum-of-products address expression: base_i + local_i per index. *)
let gmem_address ctx view ~local_prefix =
  String.concat " + "
    (List.map
       (fun i ->
         Printf.sprintf "(%s)(%s + %s_%c) * %s_%c" ctx.i64 (ctx.base_name i)
           local_prefix i view.stride_prefix i)
       view.indices)

let smem_address ctx view ~coord =
  let strides = smem_strides ctx view in
  let terms =
    List.filter_map
      (fun (i, s) ->
        let c = coord i in
        if c = "0" then None
        else if s = 1 then Some c
        else Some (Printf.sprintf "%s * %d" c s))
      strides
  in
  if terms = [] then "0" else String.concat " + " terms

let guard_expr ctx view ~local_prefix =
  String.concat " & "
    (List.map
       (fun i ->
         Printf.sprintf "(%s + %s_%c < %s)" (ctx.base_name i) local_prefix i
           (ctx.extent_name i))
       view.indices)

(* Cooperative GMEM -> SMEM staging loop for one input slab. *)
let emit_slab_load buf ctx view ~smem ~local_prefix =
  let elems = slab_elems ctx view in
  let threads = Plan.threads_per_block ctx.plan in
  let tiles = List.map ctx.tile_of view.indices in
  bpf buf "    for (int l = tid; l < %d; l += %d) {\n" elems threads;
  emit_decompose buf ~indices:view.indices ~tiles ~var:"l" ~prefix:local_prefix;
  bpf buf "      const %s ok = %s;\n" ctx.flag (guard_expr ctx view ~local_prefix);
  bpf buf "      %s[%s] = ok ? %s[%s] : %s;\n" smem
    (smem_address ctx view ~coord:(fun i ->
         Printf.sprintf "%s_%c" local_prefix i))
    view.cname
    (gmem_address ctx view ~local_prefix)
    ctx.zero;
  bpf buf "    }\n"

(* ---- kernel ---- *)

let emit_kernel ?name ?dialect plan =
  let ctx = make_ctx ?dialect plan in
  let name = Option.value name ~default:(kernel_name plan) in
  let m = plan.Plan.mapping in
  let a = lhs_view ctx and b = rhs_view ctx and c = out_view ctx in
  let all_ext = ctx.info.Classify.externals in
  let all_idx = Classify.all_indices ctx.info in
  let buf = Buffer.create 4096 in
  let tbx = m.Mapping.tbx and tby = m.Mapping.tby in
  let regx = m.Mapping.regx and regy = m.Mapping.regy in
  let tbk = m.Mapping.tbk in
  let size_tbx = Mapping.size_tbx m and size_tby = Mapping.size_tby m in
  let rx = Mapping.size_regx m and ry = Mapping.size_regy m in
  let tk = Mapping.size_tbk m in
  let slab_a = slab_elems ctx a and slab_b = slab_elems ctx b in
  (match ctx.dialect with
  | Cuda ->
      bpf buf "extern \"C\" __global__ void %s(\n" name;
      bpf buf "    %s* __restrict__ g_C,\n" ctx.scalar;
      bpf buf "    const %s* __restrict__ g_A,\n" ctx.scalar;
      bpf buf "    const %s* __restrict__ g_B" ctx.scalar
  | Opencl ->
      if ctx.plan.Plan.precision = Precision.FP64 then
        bpf buf "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n";
      bpf buf "__kernel void %s(\n" name;
      bpf buf "    __global %s* restrict g_C,\n" ctx.scalar;
      bpf buf "    __global const %s* restrict g_A,\n" ctx.scalar;
      bpf buf "    __global const %s* restrict g_B" ctx.scalar);
  List.iter (fun i -> bpf buf ",\n    const int N_%c" i) all_idx;
  bpf buf ")\n{\n";
  (* strides *)
  emit_gmem_strides buf ctx a;
  emit_gmem_strides buf ctx b;
  emit_gmem_strides buf ctx c;
  (* per-external chunk counts and block bases *)
  List.iter
    (fun i ->
      bpf buf "  const int nb_%c = (N_%c + %d - 1) / %d;\n" i i (ctx.tile_of i)
        (ctx.tile_of i))
    all_ext;
  bpf buf "  %s brem = %s;\n" ctx.i64
    (match ctx.dialect with
    | Cuda -> "blockIdx.x"
    | Opencl -> "(long)get_group_id(0)");
  List.iteri
    (fun k i ->
      if k = List.length all_ext - 1 then
        bpf buf "  const int base_%c = (int)brem * %d;\n" i (ctx.tile_of i)
      else begin
        bpf buf "  const int base_%c = (int)(brem %% nb_%c) * %d;\n" i i
          (ctx.tile_of i);
        bpf buf "  brem /= nb_%c;\n" i
      end)
    all_ext;
  (* per-internal step counts *)
  List.iter
    (fun i ->
      bpf buf "  const int ns_%c = (N_%c + %d - 1) / %d;\n" i i (ctx.tile_of i)
        (ctx.tile_of i))
    ctx.info.Classify.internals;
  let steps_expr =
    match ctx.info.Classify.internals with
    | [] -> "1"
    | l -> String.concat " * " (List.map (Printf.sprintf "ns_%c") l)
  in
  bpf buf "  const int num_steps = %s;\n" steps_expr;
  (* thread decomposition *)
  (match ctx.dialect with
  | Cuda -> bpf buf "  const int tx = threadIdx.x, ty = threadIdx.y;\n"
  | Opencl ->
      bpf buf
        "  const int tx = get_local_id(0), ty = get_local_id(1);\n");
  bpf buf "  const int tid = ty * %d + tx;\n" size_tbx;
  let emit_thread_decomp var bindings =
    let indices = List.map (fun bd -> bd.Mapping.index) bindings in
    let tiles = List.map (fun bd -> bd.Mapping.tile) bindings in
    if indices <> [] then begin
      bpf buf "  {\n";
      (* reuse emit_decompose at an outer indent; cosmetic only *)
      emit_decompose buf ~indices ~tiles ~var ~prefix:"d";
      List.iter (fun i -> bpf buf "      l_%c = d_%c;\n" i i) indices;
      bpf buf "  }\n"
    end
  in
  List.iter
    (fun bd -> bpf buf "  int l_%c;\n" bd.Mapping.index)
    (tbx @ tby);
  emit_thread_decomp "tx" tbx;
  emit_thread_decomp "ty" tby;
  (* shared memory and registers *)
  bpf buf "  %s %s s_A[%d];\n" ctx.smem_qual ctx.scalar slab_a;
  bpf buf "  %s %s s_B[%d];\n" ctx.smem_qual ctx.scalar slab_b;
  bpf buf "  %s r_C[%d];\n" ctx.scalar (rx * ry);
  bpf buf "  %s r_A[%d];\n" ctx.scalar rx;
  bpf buf "  %s r_B[%d];\n" ctx.scalar ry;
  bpf buf "#pragma unroll\n";
  bpf buf "  for (int i = 0; i < %d; ++i) r_C[i] = %s;\n" (rx * ry) ctx.zero;
  (* main step loop *)
  bpf buf "  for (int step = 0; step < num_steps; ++step) {\n";
  (match ctx.info.Classify.internals with
  | [] -> ()
  | internals ->
      bpf buf "    %s srem = step;\n" ctx.i64;
      List.iteri
        (fun k i ->
          if k = List.length internals - 1 then
            bpf buf "    const int kbase_%c = (int)srem * %d;\n" i
              (ctx.tile_of i)
          else begin
            bpf buf "    const int kbase_%c = (int)(srem %% ns_%c) * %d;\n" i i
              (ctx.tile_of i);
            bpf buf "    srem /= ns_%c;\n" i
          end)
        internals);
  bpf buf "    // (1) load input slabs from GMEM to SMEM\n";
  emit_slab_load buf ctx a ~smem:"s_A" ~local_prefix:"la";
  emit_slab_load buf ctx b ~smem:"s_B" ~local_prefix:"lb";
  bpf buf "    %s\n"
    (match ctx.dialect with
    | Cuda -> "__syncthreads();"
    | Opencl -> "barrier(CLK_LOCAL_MEM_FENCE);");
  (* serial sweep over the TB_k tile *)
  bpf buf "#pragma unroll\n";
  bpf buf "    for (int kk = 0; kk < %d; ++kk) {\n" tk;
  emit_decompose buf
    ~indices:(List.map (fun bd -> bd.Mapping.index) tbk)
    ~tiles:(List.map (fun bd -> bd.Mapping.tile) tbk)
    ~var:"kk" ~prefix:"lk";
  (* (2) SMEM -> registers.  A coordinate inside a slab is: thread-local
     (l_i) for TB-mapped indices, register-local for REG-mapped indices,
     lk_i for internals, 0 for grid indices. *)
  let coord_a ~reg_var i =
    if List.exists (fun bd -> Index.equal bd.Mapping.index i) tbx then
      Printf.sprintf "l_%c" i
    else if List.exists (fun bd -> Index.equal bd.Mapping.index i) regx then
      Printf.sprintf "%s_%c" reg_var i
    else if ctx.is_internal i then Printf.sprintf "lk_%c" i
    else "0" (* grid-mapped lhs external: slab dim 1 *)
  in
  let coord_b ~reg_var i =
    if List.exists (fun bd -> Index.equal bd.Mapping.index i) tby then
      Printf.sprintf "l_%c" i
    else if List.exists (fun bd -> Index.equal bd.Mapping.index i) regy then
      Printf.sprintf "%s_%c" reg_var i
    else if ctx.is_internal i then Printf.sprintf "lk_%c" i
    else "0"
  in
  bpf buf "      // (2) load register vectors from SMEM\n";
  bpf buf "#pragma unroll\n";
  bpf buf "      for (int rx = 0; rx < %d; ++rx) {\n" rx;
  emit_decompose buf
    ~indices:(List.map (fun bd -> bd.Mapping.index) regx)
    ~tiles:(List.map (fun bd -> bd.Mapping.tile) regx)
    ~var:"rx" ~prefix:"ra";
  bpf buf "      r_A[rx] = s_A[%s];\n"
    (smem_address ctx a ~coord:(coord_a ~reg_var:"ra"));
  bpf buf "      }\n";
  bpf buf "#pragma unroll\n";
  bpf buf "      for (int ry = 0; ry < %d; ++ry) {\n" ry;
  emit_decompose buf
    ~indices:(List.map (fun bd -> bd.Mapping.index) regy)
    ~tiles:(List.map (fun bd -> bd.Mapping.tile) regy)
    ~var:"ry" ~prefix:"rb";
  bpf buf "      r_B[ry] = s_B[%s];\n"
    (smem_address ctx b ~coord:(coord_b ~reg_var:"rb"));
  bpf buf "      }\n";
  bpf buf "      // (3) outer product\n";
  bpf buf "#pragma unroll\n";
  bpf buf "      for (int ry = 0; ry < %d; ++ry)\n" ry;
  bpf buf "#pragma unroll\n";
  bpf buf "        for (int rx = 0; rx < %d; ++rx)\n" rx;
  bpf buf "          r_C[ry * %d + rx] += r_A[rx] * r_B[ry];\n" rx;
  bpf buf "    }\n";
  bpf buf "    %s\n"
    (match ctx.dialect with
    | Cuda -> "__syncthreads();"
    | Opencl -> "barrier(CLK_LOCAL_MEM_FENCE);");
  bpf buf "  }\n";
  (* (4) store: coordinate of an output index comes from its mapping *)
  bpf buf "  // (4) store the output tile from REG to GMEM\n";
  bpf buf "#pragma unroll\n";
  bpf buf "  for (int ry = 0; ry < %d; ++ry) {\n" ry;
  emit_decompose buf
    ~indices:(List.map (fun bd -> bd.Mapping.index) regy)
    ~tiles:(List.map (fun bd -> bd.Mapping.tile) regy)
    ~var:"ry" ~prefix:"rb";
  bpf buf "#pragma unroll\n";
  bpf buf "    for (int rx = 0; rx < %d; ++rx) {\n" rx;
  emit_decompose buf
    ~indices:(List.map (fun bd -> bd.Mapping.index) regx)
    ~tiles:(List.map (fun bd -> bd.Mapping.tile) regx)
    ~var:"rx" ~prefix:"ra";
  let out_local i =
    if List.exists (fun bd -> Index.equal bd.Mapping.index i) tbx then
      Printf.sprintf "l_%c" i
    else if List.exists (fun bd -> Index.equal bd.Mapping.index i) tby then
      Printf.sprintf "l_%c" i
    else if List.exists (fun bd -> Index.equal bd.Mapping.index i) regx then
      Printf.sprintf "ra_%c" i
    else if List.exists (fun bd -> Index.equal bd.Mapping.index i) regy then
      Printf.sprintf "rb_%c" i
    else "0" (* grid *)
  in
  let store_guard =
    String.concat " & "
      (List.map
         (fun i ->
           Printf.sprintf "(base_%c + %s < N_%c)" i (out_local i) i)
         c.indices)
  in
  let store_addr =
    String.concat " + "
      (List.map
         (fun i ->
           Printf.sprintf "(%s)(base_%c + %s) * sC_%c" ctx.i64 i (out_local i) i)
         c.indices)
  in
  bpf buf "      if (%s)\n" store_guard;
  bpf buf "        g_C[%s] = r_C[ry * %d + rx];\n" store_addr rx;
  bpf buf "    }\n";
  bpf buf "  }\n";
  bpf buf "}\n";
  ignore size_tby;
  Buffer.contents buf

(* ---- launcher ---- *)

let emit_launcher ?name plan =
  let ctx = make_ctx plan in
  let kname = Option.value name ~default:(kernel_name plan) in
  let all_ext = ctx.info.Classify.externals in
  let all_idx = Classify.all_indices ctx.info in
  let m = plan.Plan.mapping in
  let buf = Buffer.create 1024 in
  bpf buf "extern \"C\" void %s_launch(\n" kname;
  bpf buf "    %s* d_C, const %s* d_A, const %s* d_B" ctx.scalar ctx.scalar
    ctx.scalar;
  List.iter (fun i -> bpf buf ",\n    int N_%c" i) all_idx;
  bpf buf ",\n    cudaStream_t stream)\n{\n";
  bpf buf "  long long blocks = 1;\n";
  List.iter
    (fun i ->
      bpf buf "  blocks *= (N_%c + %d - 1) / %d;\n" i (ctx.tile_of i)
        (ctx.tile_of i))
    all_ext;
  bpf buf "  dim3 block(%d, %d);\n" (Mapping.size_tbx m) (Mapping.size_tby m);
  bpf buf "  %s<<<(unsigned)blocks, block, 0, stream>>>(d_C, d_A, d_B%s);\n"
    kname
    (String.concat ""
       (List.map (fun i -> Printf.sprintf ", N_%c" i) all_idx));
  bpf buf "}\n";
  Buffer.contents buf

let header plan =
  let info = Problem.info plan.Plan.problem in
  Format.asprintf
    "// Generated by COGENT (OCaml reproduction of Kim et al., CGO 2019)@\n\
     // contraction: %a@\n\
     // mapping:     %a@\n\
     // target:      %s, %a; %d threads/block, %d B smem, %d blocks, %d steps@\n\
     // model cost:  %.0f DRAM transactions@\n"
    Ast.pp info.Classify.original Mapping.pp plan.Plan.mapping
    plan.Plan.arch.Arch.name Precision.pp plan.Plan.precision
    (Plan.threads_per_block plan) (Plan.smem_bytes plan) (Plan.num_blocks plan)
    (Plan.num_steps plan) plan.Plan.cost

let emit ?name plan =
  String.concat "\n" [ header plan; emit_kernel ?name plan; emit_launcher ?name plan ]

let emit_opencl ?name plan =
  let m = plan.Plan.mapping in
  let ctx = make_ctx ~dialect:Opencl plan in
  let launch_note =
    Format.asprintf
      "// launch geometry: local = (%d, %d); global = (%d * num_blocks, %d)@\n\
       // where num_blocks = prod over externals of ceil(N_i / tile_i)@\n\
       // (representative size: %d blocks)@\n"
      (Mapping.size_tbx m) (Mapping.size_tby m) (Mapping.size_tbx m)
      (Mapping.size_tby m) (Plan.num_blocks plan)
  in
  ignore ctx;
  String.concat "\n"
    [ header plan; launch_note; emit_kernel ?name ~dialect:Opencl plan ]

let emit_standalone ?name plan =
  let ctx = make_ctx plan in
  let kname = Option.value name ~default:(kernel_name plan) in
  let all_idx = Classify.all_indices ctx.info in
  let problem = plan.Plan.problem in
  let buf = Buffer.create 4096 in
  bpf buf "#include <cstdio>\n#include <cuda_runtime.h>\n\n";
  Buffer.add_string buf (emit ?name plan);
  bpf buf "\nint main()\n{\n";
  List.iter
    (fun i -> bpf buf "  const int N_%c = %d;\n" i (Problem.extent problem i))
    all_idx;
  let elems view =
    String.concat " * "
      (List.map (fun i -> Printf.sprintf "(size_t)N_%c" i) view.indices)
  in
  bpf buf "  size_t szA = %s, szB = %s, szC = %s;\n"
    (elems (lhs_view ctx)) (elems (rhs_view ctx)) (elems (out_view ctx));
  bpf buf "  %s *d_A, *d_B, *d_C;\n" ctx.scalar;
  bpf buf "  cudaMalloc(&d_A, szA * sizeof(%s));\n" ctx.scalar;
  bpf buf "  cudaMalloc(&d_B, szB * sizeof(%s));\n" ctx.scalar;
  bpf buf "  cudaMalloc(&d_C, szC * sizeof(%s));\n" ctx.scalar;
  bpf buf "  cudaEvent_t t0, t1; cudaEventCreate(&t0); cudaEventCreate(&t1);\n";
  bpf buf "  const int reps = 3;\n";
  bpf buf "  %s_launch(d_C, d_A, d_B%s, 0); // warm-up\n" kname
    (String.concat ""
       (List.map (fun i -> Printf.sprintf ", N_%c" i) all_idx));
  bpf buf "  cudaEventRecord(t0);\n";
  bpf buf "  for (int r = 0; r < reps; ++r)\n";
  bpf buf "    %s_launch(d_C, d_A, d_B%s, 0);\n" kname
    (String.concat ""
       (List.map (fun i -> Printf.sprintf ", N_%c" i) all_idx));
  bpf buf "  cudaEventRecord(t1); cudaEventSynchronize(t1);\n";
  bpf buf "  float ms = 0.f; cudaEventElapsedTime(&ms, t0, t1);\n";
  bpf buf "  double flops = %.1f;\n" (Problem.flops problem);
  bpf buf
    "  printf(\"%s: %%.3f ms, %%.1f GFLOPS\\n\", ms / reps, flops / (ms / \
     reps) / 1e6);\n"
    kname;
  bpf buf "  cudaFree(d_A); cudaFree(d_B); cudaFree(d_C);\n";
  bpf buf "  return 0;\n}\n";
  Buffer.contents buf
