(** Named tensor shapes: an ordered list of (index, extent) pairs.

    The first index is the fastest-varying one (FVI).  A shape both names the
    dimensions of a tensor and fixes its memory layout. *)

type t

val make : (Index.t * int) list -> t
(** @raise Invalid_argument on duplicate indices or non-positive extents. *)

val of_indices : sizes:int Index.Map.t -> Index.t list -> t
(** [of_indices ~sizes l] pairs each index of [l] with its extent in [sizes].
    @raise Invalid_argument if an index of [l] has no extent in [sizes]. *)

val indices : t -> Index.t list
(** Indices in layout order, FVI first. *)

val extents : t -> int list
val rank : t -> int

val extent : t -> Index.t -> int
(** @raise Not_found if the index is not part of the shape. *)

val mem : t -> Index.t -> bool

val position : t -> Index.t -> int
(** Position of an index in layout order (FVI has position 0).
    @raise Not_found if absent. *)

val numel : t -> int
(** Total number of elements, i.e. the product of all extents. *)

val stride : t -> Index.t -> int
(** Linear stride of an index in the canonical (FVI-first) layout. *)

val fvi : t -> Index.t
(** The fastest-varying index. @raise Invalid_argument on the empty shape. *)

val to_list : t -> (Index.t * int) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
