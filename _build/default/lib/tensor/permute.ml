let check_permutation src dst =
  if
    not
      (List.length src = List.length dst
      && Index.Set.equal (Index.Set.of_list src) (Index.Set.of_list dst))
  then
    invalid_arg
      (Printf.sprintf "Permute: %s is not a permutation of %s"
         (Index.list_to_string dst)
         (Index.list_to_string src))

let is_identity ~src ~dst =
  check_permutation src dst;
  List.for_all2 Index.equal src dst

(* For each destination axis k, [src_axis.(k)] is the source axis holding the
   same index, so a destination multi-index maps onto a source offset via the
   source strides gathered in destination order. *)
let gathered_strides src_shape dst_indices =
  Array.of_list (List.map (Shape.stride src_shape) dst_indices)

let permute ~dst_indices t =
  let src_shape = Dense.shape t in
  check_permutation (Shape.indices src_shape) dst_indices;
  let dst_shape =
    Shape.make
      (List.map (fun i -> (i, Shape.extent src_shape i)) dst_indices)
  in
  let out = Dense.create dst_shape in
  let src_strides = gathered_strides src_shape dst_indices in
  let src = Dense.unsafe_data t and dst = Dense.unsafe_data out in
  let dims = Array.of_list (Shape.extents dst_shape) in
  let rank = Array.length dims in
  let pos = Array.make rank 0 in
  let src_off = ref 0 in
  for dst_off = 0 to Array.length dst - 1 do
    dst.(dst_off) <- src.(!src_off);
    let rec bump k =
      if k < rank then begin
        pos.(k) <- pos.(k) + 1;
        src_off := !src_off + src_strides.(k);
        if pos.(k) = dims.(k) then begin
          pos.(k) <- 0;
          src_off := !src_off - (dims.(k) * src_strides.(k));
          bump (k + 1)
        end
      end
    in
    bump 0
  done;
  out

let permute_blocked ?(block = 32) ~dst_indices t =
  let src_shape = Dense.shape t in
  check_permutation (Shape.indices src_shape) dst_indices;
  if is_identity ~src:(Shape.indices src_shape) ~dst:dst_indices then
    Dense.copy t
  else begin
    let dst_shape =
      Shape.make
        (List.map (fun i -> (i, Shape.extent src_shape i)) dst_indices)
    in
    let out = Dense.create dst_shape in
    let src = Dense.unsafe_data t and dst = Dense.unsafe_data out in
    (* Tile over the two conflicting FVIs: the source FVI (contiguous reads)
       and the destination FVI (contiguous writes).  All other axes are
       traversed with an odometer. *)
    let sfvi = Shape.fvi src_shape and dfvi = List.hd dst_indices in
    if Index.equal sfvi dfvi then
      (* FVI preserved: the naive loop already streams both sides. *)
      let o = permute ~dst_indices t in
      Array.blit (Dense.unsafe_data o) 0 dst 0 (Array.length dst)
    else begin
      let n_s = Shape.extent src_shape sfvi
      and n_d = Shape.extent src_shape dfvi in
      let s_src_stride = 1 (* stride of sfvi in source *)
      and d_src_stride = Shape.stride src_shape dfvi in
      let s_dst_stride = Shape.stride dst_shape sfvi
      and d_dst_stride = 1 in
      (* Remaining axes, described by (extent, src stride, dst stride). *)
      let rest =
        List.filter_map
          (fun i ->
            if Index.equal i sfvi || Index.equal i dfvi then None
            else
              Some
                ( Shape.extent src_shape i,
                  Shape.stride src_shape i,
                  Shape.stride dst_shape i ))
          (Shape.indices src_shape)
      in
      let rest = Array.of_list rest in
      let rrank = Array.length rest in
      let pos = Array.make rrank 0 in
      let continue = ref true in
      while !continue do
        let base_src = ref 0 and base_dst = ref 0 in
        Array.iteri
          (fun k p ->
            let _, ss, ds = rest.(k) in
            base_src := !base_src + (p * ss);
            base_dst := !base_dst + (p * ds))
          pos;
        (* 2-D tiled copy of the (sfvi, dfvi) plane at this base. *)
        let bs = ref 0 in
        while !bs < n_s do
          let bd = ref 0 in
          while !bd < n_d do
            for s = !bs to min (!bs + block) n_s - 1 do
              for d = !bd to min (!bd + block) n_d - 1 do
                dst.(!base_dst + (s * s_dst_stride) + (d * d_dst_stride)) <-
                  src.(!base_src + (s * s_src_stride) + (d * d_src_stride))
              done
            done;
            bd := !bd + block
          done;
          bs := !bs + block
        done;
        (* advance odometer over the remaining axes *)
        let rec bump k =
          if k >= rrank then continue := false
          else begin
            pos.(k) <- pos.(k) + 1;
            let n, _, _ = rest.(k) in
            if pos.(k) = n then begin
              pos.(k) <- 0;
              bump (k + 1)
            end
          end
        in
        bump 0
      done
    end;
    out
  end
