(** Tensor index names.

    An index is a single lower-case letter, as in the Einstein-convention
    contraction [C\[a,b,c,d\] = A\[a,e,b,f\] * B\[d,f,c,e\]] or the TCCG
    string form [abcd-aebf-dfce].  Throughout this code base, index lists are
    ordered with the {e fastest-varying index (FVI) first}, matching the
    layout convention of the paper (for [A\[a,e,b,f\]], index [a] is
    contiguous in memory). *)

type t = char

val is_valid : t -> bool
(** [is_valid i] is true iff [i] is in [a..z]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_char : char -> t
(** [of_char c] validates [c].
    @raise Invalid_argument if [c] is not in [a..z]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val list_pp : Format.formatter -> t list -> unit
(** Prints an index list in compact TCCG form, e.g. [abcd]. *)

val list_of_string : string -> t list
(** [list_of_string "aebf"] is [\['a';'e';'b';'f'\]].
    @raise Invalid_argument on any character outside [a..z]. *)

val list_to_string : t list -> string

val distinct : t list -> bool
(** [distinct l] is true iff no index occurs twice in [l]. *)
