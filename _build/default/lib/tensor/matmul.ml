let check ~m ~n ~k ~a ~b ~c =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Matmul: non-positive size";
  if Array.length a < m * k then invalid_arg "Matmul: A too small";
  if Array.length b < k * n then invalid_arg "Matmul: B too small";
  if Array.length c < m * n then invalid_arg "Matmul: C too small"

let gemm ~m ~n ~k ~a ~b ~c =
  check ~m ~n ~k ~a ~b ~c;
  for j = 0 to n - 1 do
    for l = 0 to k - 1 do
      let blj = b.((l + (k * j))) in
      if blj <> 0.0 then
        let a_col = m * l and c_col = m * j in
        for i = 0 to m - 1 do
          c.(i + c_col) <- c.(i + c_col) +. (a.(i + a_col) *. blj)
        done
    done
  done

let gemm_blocked ?(block = 48) ~m ~n ~k ~a ~b ~c () =
  check ~m ~n ~k ~a ~b ~c;
  let jb = ref 0 in
  while !jb < n do
    let jmax = min (!jb + block) n in
    let lb = ref 0 in
    while !lb < k do
      let lmax = min (!lb + block) k in
      let ib = ref 0 in
      while !ib < m do
        let imax = min (!ib + block) m in
        for j = !jb to jmax - 1 do
          for l = !lb to lmax - 1 do
            let blj = b.(l + (k * j)) in
            let a_col = m * l and c_col = m * j in
            for i = !ib to imax - 1 do
              c.(i + c_col) <- c.(i + c_col) +. (a.(i + a_col) *. blj)
            done
          done
        done;
        ib := !ib + block
      done;
      lb := !lb + block
    done;
    jb := !jb + block
  done

let matmul a b =
  let sa = Dense.shape a and sb = Dense.shape b in
  if Shape.rank sa <> 2 || Shape.rank sb <> 2 then
    invalid_arg "Matmul.matmul: operands must be rank 2";
  match (Shape.to_list sa, Shape.to_list sb) with
  | [ (i, m); (ka, k) ], [ (kb, k'); (j, n) ] ->
      if not (Index.equal ka kb) then
        invalid_arg "Matmul.matmul: inner index names differ";
      if k <> k' then invalid_arg "Matmul.matmul: inner extents differ";
      if Index.equal i j then
        invalid_arg "Matmul.matmul: outer indices must differ";
      let out = Dense.create (Shape.make [ (i, m); (j, n) ]) in
      gemm ~m ~n ~k ~a:(Dense.unsafe_data a) ~b:(Dense.unsafe_data b)
        ~c:(Dense.unsafe_data out);
      out
  | _ -> assert false
