lib/tensor/permute.ml: Array Dense Index List Printf Shape
