lib/tensor/index.mli: Format Map Set
