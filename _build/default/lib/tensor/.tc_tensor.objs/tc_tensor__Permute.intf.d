lib/tensor/permute.mli: Dense Index
