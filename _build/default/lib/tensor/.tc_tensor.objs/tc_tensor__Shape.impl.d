lib/tensor/shape.ml: Format Index List Printf
