lib/tensor/matmul.ml: Array Dense Index Shape
