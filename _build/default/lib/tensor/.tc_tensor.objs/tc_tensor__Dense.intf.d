lib/tensor/dense.mli: Format Index Shape
