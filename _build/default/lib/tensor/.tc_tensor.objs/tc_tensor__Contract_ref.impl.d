lib/tensor/contract_ref.ml: Dense Index List Printf Shape
