lib/tensor/contract_ref.mli: Dense Index
