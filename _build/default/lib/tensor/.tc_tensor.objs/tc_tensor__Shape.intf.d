lib/tensor/shape.mli: Format Index
