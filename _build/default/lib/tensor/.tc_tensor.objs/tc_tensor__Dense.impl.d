lib/tensor/dense.ml: Array Float Format Index List Printf Random Shape
