lib/tensor/index.ml: Char Format List Map Printf Set String
