lib/tensor/matmul.mli: Dense
