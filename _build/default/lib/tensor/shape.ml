type t = (Index.t * int) list

let make l =
  if not (Index.distinct (List.map fst l)) then
    invalid_arg "Shape.make: duplicate index";
  List.iter
    (fun (i, n) ->
      if n <= 0 then
        invalid_arg
          (Printf.sprintf "Shape.make: extent of %c must be positive, got %d" i
             n))
    l;
  l

let of_indices ~sizes l =
  let extent_of i =
    match Index.Map.find_opt i sizes with
    | Some n -> (i, n)
    | None ->
        invalid_arg (Printf.sprintf "Shape.of_indices: no extent for %c" i)
  in
  make (List.map extent_of l)

let indices t = List.map fst t
let extents t = List.map snd t
let rank = List.length
let extent t i = List.assoc i t
let mem t i = List.mem_assoc i t

let position t i =
  let rec go k = function
    | [] -> raise Not_found
    | (j, _) :: rest -> if Index.equal i j then k else go (k + 1) rest
  in
  go 0 t

let numel t = List.fold_left (fun acc (_, n) -> acc * n) 1 t

let stride t i =
  let rec go acc = function
    | [] -> raise Not_found
    | (j, n) :: rest -> if Index.equal i j then acc else go (acc * n) rest
  in
  go 1 t

let fvi = function
  | [] -> invalid_arg "Shape.fvi: empty shape"
  | (i, _) :: _ -> i

let to_list t = t

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (i, n) (j, m) -> Index.equal i j && n = m) a b

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
       (fun fmt (i, n) -> Format.fprintf fmt "%c=%d" i n))
    t
