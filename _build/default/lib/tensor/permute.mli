(** Index permutation (tensor transposition).

    This is the building block of the TTGT baseline: producing a copy of a
    tensor whose indices are laid out in a different order, e.g.
    [TA\[a,b,e,f\] = A\[a,e,b,f\]]. *)

val permute : dst_indices:Index.t list -> Dense.t -> Dense.t
(** [permute ~dst_indices t] returns a fresh tensor with the same named
    elements as [t] but laid out in [dst_indices] order (FVI first).
    @raise Invalid_argument if [dst_indices] is not a permutation of the
    indices of [t]. *)

val permute_blocked : ?block:int -> dst_indices:Index.t list -> Dense.t -> Dense.t
(** Same result as {!permute}, computed with 2-D tiling over the source and
    destination FVIs to reduce strided traffic — mirrors the structure of the
    cuTT/HPTT family of transpose kernels.  [block] defaults to 32. *)

val is_identity : src:Index.t list -> dst:Index.t list -> bool
(** True iff the permutation from [src] order to [dst] order is the
    identity (no data movement needed). *)
