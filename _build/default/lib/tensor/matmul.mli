(** Column-major matrix multiplication over flat [float array]s.

    Matrices follow the same FVI-first convention as tensors: element
    [(i, j)] of an [m x n] matrix lives at offset [i + m*j].  This is the
    GEMM kernel the TTGT baseline lowers contractions onto. *)

val gemm :
  m:int -> n:int -> k:int -> a:float array -> b:float array -> c:float array
  -> unit
(** [gemm ~m ~n ~k ~a ~b ~c] computes [C <- A * B + C] where [A] is [m x k],
    [B] is [k x n] and [C] is [m x n], all column-major.
    @raise Invalid_argument if an array is too small. *)

val gemm_blocked :
  ?block:int ->
  m:int -> n:int -> k:int -> a:float array -> b:float array -> c:float array
  -> unit -> unit
(** Cache-blocked variant with identical semantics; [block] defaults to 48. *)

val matmul : Dense.t -> Dense.t -> Dense.t
(** [matmul a b] multiplies two rank-2 tensors [a : (i, k)] and [b : (k', j)]
    where the contraction runs over [a]'s second and [b]'s first axis; the
    result has shape [(i, j)] named after those outer indices.
    @raise Invalid_argument unless both are rank 2 with matching inner
    extents and the outer index names differ. *)
