type t = char

let is_valid c = c >= 'a' && c <= 'z'
let compare = Char.compare
let equal = Char.equal
let pp fmt c = Format.pp_print_char fmt c
let to_string c = String.make 1 c

let of_char c =
  if is_valid c then c
  else invalid_arg (Printf.sprintf "Index.of_char: %C is not in a..z" c)

module Set = Set.Make (Char)
module Map = Map.Make (Char)

let list_pp fmt l = List.iter (Format.pp_print_char fmt) l

let list_of_string s =
  List.init (String.length s) (fun i -> of_char s.[i])

let list_to_string l = String.init (List.length l) (List.nth l)

let distinct l =
  let s = Set.of_list l in
  Set.cardinal s = List.length l
