let analyse ~out_indices a b =
  let sa = Dense.shape a and sb = Dense.shape b in
  let ia = Index.Set.of_list (Shape.indices sa)
  and ib = Index.Set.of_list (Shape.indices sb)
  and ic = Index.Set.of_list out_indices in
  if not (Index.distinct out_indices) then
    invalid_arg "Contract_ref: duplicate output index";
  let internals = Index.Set.inter ia ib in
  if not (Index.Set.is_empty (Index.Set.inter internals ic)) then
    invalid_arg "Contract_ref: a contraction index appears in the output";
  let externals = Index.Set.union (Index.Set.diff ia ib) (Index.Set.diff ib ia) in
  if not (Index.Set.equal externals ic) then
    invalid_arg
      "Contract_ref: output indices must be exactly the non-shared input \
       indices";
  Index.Set.iter
    (fun i ->
      if Shape.extent sa i <> Shape.extent sb i then
        invalid_arg
          (Printf.sprintf "Contract_ref: extent mismatch on index %c" i))
    internals;
  let extent i =
    if Shape.mem sa i then Shape.extent sa i else Shape.extent sb i
  in
  (Index.Set.elements internals, extent)

let contract ~out_indices a b =
  let internals, extent = analyse ~out_indices a b in
  let out_shape = Shape.make (List.map (fun i -> (i, extent i)) out_indices) in
  let out = Dense.create out_shape in
  (* Odometer over external positions; inner odometer over internals. *)
  let rec loop_ext env = function
    | [] ->
        let acc = ref 0.0 in
        let rec loop_int env = function
          | [] ->
              acc := !acc +. (Dense.get_named a env *. Dense.get_named b env)
          | i :: rest ->
              for v = 0 to extent i - 1 do
                loop_int (Index.Map.add i v env) rest
              done
        in
        loop_int env internals;
        Dense.set_named out env !acc
    | i :: rest ->
        for v = 0 to extent i - 1 do
          loop_ext (Index.Map.add i v env) rest
        done
  in
  loop_ext Index.Map.empty out_indices;
  out

let flop_count ~out_indices a b =
  let internals, extent = analyse ~out_indices a b in
  let all = out_indices @ internals in
  2 * List.fold_left (fun acc i -> acc * extent i) 1 all
