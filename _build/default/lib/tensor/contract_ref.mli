(** Reference (nested-loop) tensor contraction.

    [C\[ext\] = sum over internals of A * B] computed directly from the named
    shapes, with no tiling or staging.  Slow, but obviously correct: this is
    the oracle every optimized execution path is validated against. *)

val contract :
  out_indices:Index.t list -> Dense.t -> Dense.t -> Dense.t
(** [contract ~out_indices a b] contracts [a] and [b] over every index they
    share, producing a tensor laid out in [out_indices] order.

    Following the Einstein convention of the paper, an index appearing in
    both inputs is a contraction (internal) index and must not appear in
    [out_indices]; every other input index must appear in [out_indices]
    exactly once.
    @raise Invalid_argument if the index structure is not a valid
    contraction (an index in all three or only one of the tensors, extent
    mismatch between the operands, duplicates). *)

val flop_count : out_indices:Index.t list -> Dense.t -> Dense.t -> int
(** Number of floating-point operations (2 per multiply-add) the contraction
    performs: [2 * prod(extents of all distinct indices)]. *)
