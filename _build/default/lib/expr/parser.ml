open Tc_tensor

type error = { position : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "parse error at offset %d: %s" e.position e.message

let fail position message = Error { position; message }

(* ---- TCCG form: three '-'-separated groups of index letters. ---- *)

let parse_tccg s =
  let parts = String.split_on_char '-' (String.trim s) in
  match parts with
  | [ c; a; b ] ->
      let check_group offset name g =
        if g = "" then fail offset (name ^ " index group is empty")
        else
          let bad = ref None in
          String.iteri
            (fun i ch ->
              if (not (Index.is_valid ch)) && !bad = None then
                bad := Some (offset + i, ch))
            g;
          match !bad with
          | Some (pos, ch) ->
              fail pos (Printf.sprintf "invalid index character %C" ch)
          | None -> Ok (Index.list_of_string g)
      in
      let off_c = 0 in
      let off_a = String.length c + 1 in
      let off_b = off_a + String.length a + 1 in
      Result.bind (check_group off_c "output" c) (fun ci ->
          Result.bind (check_group off_a "left input" a) (fun ai ->
              Result.bind (check_group off_b "right input" b) (fun bi ->
                  Ok
                    (Ast.make
                       ~out:{ Ast.name = "C"; indices = ci }
                       ~lhs:{ Ast.name = "A"; indices = ai }
                       ~rhs:{ Ast.name = "B"; indices = bi }))))
  | _ ->
      fail 0
        (Printf.sprintf "expected three '-'-separated index groups, got %d"
           (List.length parts))

(* ---- Einstein form ---- *)

type state = { input : string; mutable pos : int }

exception Syntax of error

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st ch =
  skip_ws st;
  match peek st with
  | Some c when c = ch -> st.pos <- st.pos + 1
  | Some c ->
      raise (Syntax { position = st.pos;
                      message = Printf.sprintf "expected %C, found %C" ch c })
  | None ->
      raise (Syntax { position = st.pos;
                      message = Printf.sprintf "expected %C, found end of input" ch })

let parse_name st =
  skip_ws st;
  let start = st.pos in
  let is_name_char c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while st.pos < String.length st.input && is_name_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then
    raise (Syntax { position = start; message = "expected a tensor name" });
  String.sub st.input start (st.pos - start)

let parse_index_list st =
  expect st '[';
  let indices = ref [] in
  let rec loop () =
    skip_ws st;
    match peek st with
    | Some ']' -> st.pos <- st.pos + 1
    | Some ',' ->
        st.pos <- st.pos + 1;
        loop ()
    | Some c when Index.is_valid c ->
        st.pos <- st.pos + 1;
        indices := c :: !indices;
        loop ()
    | Some c ->
        raise (Syntax { position = st.pos;
                        message = Printf.sprintf "unexpected %C in index list" c })
    | None ->
        raise (Syntax { position = st.pos; message = "unterminated index list" })
  in
  loop ();
  List.rev !indices

let parse_tensor_ref st =
  let name = parse_name st in
  let indices = parse_index_list st in
  if indices = [] then
    raise (Syntax { position = st.pos; message = "empty index list" });
  { Ast.name; indices }

let parse_einstein s =
  let st = { input = s; pos = 0 } in
  try
    let out = parse_tensor_ref st in
    expect st '=';
    let lhs = parse_tensor_ref st in
    expect st '*';
    let rhs = parse_tensor_ref st in
    skip_ws st;
    (match peek st with
    | Some ';' -> st.pos <- st.pos + 1
    | _ -> ());
    skip_ws st;
    if st.pos <> String.length s then
      fail st.pos "trailing characters after contraction"
    else Ok (Ast.make ~out ~lhs ~rhs)
  with Syntax e -> Error e

let parse s =
  if String.contains s '=' then parse_einstein s else parse_tccg s

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)
