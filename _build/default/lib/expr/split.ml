open Tc_tensor

let fresh_index problem =
  let used =
    Index.Set.of_list (Classify.all_indices (Problem.info problem))
  in
  let rec go c =
    if c > 'z' then None
    else if Index.Set.mem c used then go (Char.chr (Char.code c + 1))
    else Some c
  in
  go 'a'

let split problem i ~factor =
  let info = Problem.info problem in
  if not (List.exists (Index.equal i) (Classify.all_indices info)) then
    Error (Printf.sprintf "index %c is not part of the contraction" i)
  else
    let extent = Problem.extent problem i in
    if factor < 2 || factor >= extent then
      Error (Printf.sprintf "factor %d outside [2, %d)" factor extent)
    else if extent mod factor <> 0 then
      Error
        (Printf.sprintf "factor %d does not divide the extent %d of %c" factor
           extent i)
    else begin
      match fresh_index problem with
      | None -> Error "no fresh index letter available"
      | Some slow ->
          let insert indices =
            List.concat_map
              (fun x -> if Index.equal x i then [ i; slow ] else [ x ])
              indices
          in
          let rewrite (r : Ast.tensor_ref) =
            { r with Ast.indices = insert r.indices }
          in
          let orig = info.Classify.original in
          let ast =
            Ast.make ~out:(rewrite orig.Ast.out) ~lhs:(rewrite orig.Ast.lhs)
              ~rhs:(rewrite orig.Ast.rhs)
          in
          let sizes =
            Problem.sizes problem
            |> Index.Map.add i factor
            |> Index.Map.add slow (extent / factor)
          in
          Result.map (fun p -> (p, slow)) (Problem.make ast sizes)
    end

type applied = {
  original : Index.t;
  fast_extent : int;
  slow : Index.t;
  slow_extent : int;
}

let pp_applied fmt a =
  Format.fprintf fmt "%c -> %c:%d x %c:%d" a.original a.original a.fast_extent
    a.slow a.slow_extent

let auto ?(fast = 16) problem =
  (* A side is register-starved when it has a single external index: the
     thread-block dimension consumes it and nothing is left to
     register-tile. *)
  let candidates p =
    let info = Problem.info p in
    List.filter_map
      (fun side -> match side with [ i ] -> Some i | _ -> None)
      [ info.Classify.lhs_externals; info.Classify.rhs_externals ]
    |> List.filter (fun i ->
           let n = Problem.extent p i in
           n >= 2 * fast && n mod fast = 0)
  in
  let rec go p acc =
    match candidates p with
    | [] -> (p, List.rev acc)
    | i :: _ -> (
        match split p i ~factor:fast with
        | Error _ -> (p, List.rev acc)
        | Ok (p', slow) ->
            go p'
              ({
                 original = i;
                 fast_extent = fast;
                 slow;
                 slow_extent = Problem.extent p' slow;
               }
              :: acc))
  in
  go problem []
