(** Parsing of tensor contraction expressions.

    Two concrete syntaxes are accepted:

    - the Einstein form used in the paper:
      [C\[a,b,c,d\] = A\[a,e,b,f\] * B\[d,f,c,e\]]
      (commas inside brackets optional, whitespace insignificant);
    - the compact TCCG benchmark form: [abcd-aebf-dfce].

    Parsing is purely syntactic; semantic validation (each index in exactly
    two of the three tensors, etc.) lives in {!Classify}. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result
(** Auto-detects the syntax: input containing ['='] is parsed as the
    Einstein form, otherwise as the TCCG form. *)

val parse_tccg : string -> (Ast.t, error) result
val parse_einstein : string -> (Ast.t, error) result

val parse_exn : string -> Ast.t
(** @raise Invalid_argument with a rendered error on parse failure. *)
