(** Semantic analysis of a contraction.

    Validates the defining property of binary tensor contractions — every
    index occurs in exactly two of the three tensors — and derives the data
    the code generator needs:

    - {e external} indices appear in the output (and exactly one input);
    - {e internal} (contraction) indices appear in both inputs;
    - each index is a {e reuse direction} for exactly the tensor it does not
      index (§II of the paper).

    Analysis also {e canonicalizes} the expression so that the left input
    holds the output's FVI; Algorithm 2 of the paper assumes this.  When the
    inputs had to be swapped to achieve it, [swapped] is true. *)

open Tc_tensor

type role = External | Internal

type operand = Out | Lhs | Rhs

val pp_role : Format.formatter -> role -> unit
val pp_operand : Format.formatter -> operand -> unit

type info = {
  expr : Ast.t;  (** canonicalized: [expr.lhs] contains the output FVI *)
  original : Ast.t;  (** the expression as written *)
  swapped : bool;  (** true iff lhs/rhs were exchanged *)
  externals : Index.t list;  (** in output layout order *)
  internals : Index.t list;  (** in canonical-lhs layout order *)
  lhs_externals : Index.t list;  (** externals of the canonical lhs, lhs order *)
  rhs_externals : Index.t list;  (** externals of the canonical rhs, rhs order *)
  out_fvi : Index.t;
  lhs_fvi : Index.t;
  rhs_fvi : Index.t;
}

val analyse : Ast.t -> (info, string) result
val analyse_exn : Ast.t -> info

val role : info -> Index.t -> role
(** @raise Not_found for an index foreign to the contraction. *)

val reuse_tensor : info -> Index.t -> operand
(** [reuse_tensor info i] is the operand {e not} indexed by [i] — the tensor
    whose elements are reused across iterations of the [i] loop.
    @raise Not_found for a foreign index. *)

val all_indices : info -> Index.t list
(** Externals (output order) followed by internals (lhs order). *)
