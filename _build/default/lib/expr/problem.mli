(** A contraction together with its representative problem size — the unit of
    work every planner, baseline and benchmark in this repository consumes. *)

open Tc_tensor

type t = private { info : Classify.info; sizes : Sizes.t }

val make : Ast.t -> Sizes.t -> (t, string) result
(** Validates the contraction ({!Classify.analyse}) and that [sizes] covers
    every index. *)

val make_exn : Ast.t -> Sizes.t -> t

val of_string : string -> sizes:(Index.t * int) list -> (t, string) result
(** Parses either concrete syntax, then behaves like {!make}. *)

val of_string_exn : string -> sizes:(Index.t * int) list -> t

val info : t -> Classify.info
val sizes : t -> Sizes.t
val extent : t -> Index.t -> int

val flops : t -> float
(** [2 * prod(extent of every index)] — the arithmetic work of the
    contraction. *)

val out_shape : t -> Shape.t
(** Shape of the output tensor (original layout). *)

val lhs_shape : t -> Shape.t
(** Shape of the {e canonical} left input (after any lhs/rhs swap). *)

val rhs_shape : t -> Shape.t

val out_elems : t -> int
val lhs_elems : t -> int
val rhs_elems : t -> int

val pp : Format.formatter -> t -> unit
