open Tc_tensor

type t = { info : Classify.info; sizes : Sizes.t }

let ( let* ) = Result.bind

let make ast sizes =
  let* info = Classify.analyse ast in
  let missing =
    List.filter
      (fun i -> Sizes.extent_opt sizes i = None)
      (Classify.all_indices info)
  in
  match missing with
  | [] -> Ok { info; sizes }
  | l ->
      Error
        (Printf.sprintf "no extent given for index(es) %s"
           (Index.list_to_string l))

let make_exn ast sizes =
  match make ast sizes with Ok t -> t | Error e -> invalid_arg e

let of_string s ~sizes =
  match Parser.parse s with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok ast -> make ast (Sizes.of_list sizes)

let of_string_exn s ~sizes =
  match of_string s ~sizes with Ok t -> t | Error e -> invalid_arg e

let info t = t.info
let sizes t = t.sizes
let extent t i = Sizes.extent t.sizes i

let flops t =
  List.fold_left
    (fun acc i -> acc *. float_of_int (extent t i))
    2.0
    (Classify.all_indices t.info)

let shape_of t indices = Shape.of_indices ~sizes:t.sizes indices
let out_shape t = shape_of t t.info.Classify.expr.Ast.out.Ast.indices
let lhs_shape t = shape_of t t.info.Classify.expr.Ast.lhs.Ast.indices
let rhs_shape t = shape_of t t.info.Classify.expr.Ast.rhs.Ast.indices
let out_elems t = Shape.numel (out_shape t)
let lhs_elems t = Shape.numel (lhs_shape t)
let rhs_elems t = Shape.numel (rhs_shape t)

let pp fmt t =
  Format.fprintf fmt "@[<h>%a with %a@]" Ast.pp t.info.Classify.original
    Sizes.pp t.sizes
