open Tc_tensor

type tensor_ref = { name : string; indices : Index.t list }
type t = { out : tensor_ref; lhs : tensor_ref; rhs : tensor_ref }

let make ~out ~lhs ~rhs = { out; lhs; rhs }

let tccg_string t =
  Printf.sprintf "%s-%s-%s"
    (Index.list_to_string t.out.indices)
    (Index.list_to_string t.lhs.indices)
    (Index.list_to_string t.rhs.indices)

let pp_ref fmt r =
  Format.fprintf fmt "%s[%a]" r.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
       Index.pp)
    r.indices

let pp fmt t =
  Format.fprintf fmt "%a = %a * %a" pp_ref t.out pp_ref t.lhs pp_ref t.rhs

let equal a b =
  let eq_ref x y = List.length x.indices = List.length y.indices
    && List.for_all2 Index.equal x.indices y.indices
  in
  eq_ref a.out b.out && eq_ref a.lhs b.lhs && eq_ref a.rhs b.rhs
