open Tc_tensor

type role = External | Internal
type operand = Out | Lhs | Rhs

let pp_role fmt = function
  | External -> Format.pp_print_string fmt "external"
  | Internal -> Format.pp_print_string fmt "internal"

let pp_operand fmt = function
  | Out -> Format.pp_print_string fmt "C"
  | Lhs -> Format.pp_print_string fmt "A"
  | Rhs -> Format.pp_print_string fmt "B"

type info = {
  expr : Ast.t;
  original : Ast.t;
  swapped : bool;
  externals : Index.t list;
  internals : Index.t list;
  lhs_externals : Index.t list;
  rhs_externals : Index.t list;
  out_fvi : Index.t;
  lhs_fvi : Index.t;
  rhs_fvi : Index.t;
}

let ( let* ) = Result.bind

let check_distinct (r : Ast.tensor_ref) =
  if Index.distinct r.indices then Ok ()
  else
    Error
      (Printf.sprintf "tensor %s repeats an index (%s)" r.name
         (Index.list_to_string r.indices))

let check_nonempty (r : Ast.tensor_ref) =
  if r.indices = [] then
    Error (Printf.sprintf "tensor %s has no indices" r.name)
  else Ok ()

let analyse (ast : Ast.t) =
  let* () = check_nonempty ast.out in
  let* () = check_nonempty ast.lhs in
  let* () = check_nonempty ast.rhs in
  let* () = check_distinct ast.out in
  let* () = check_distinct ast.lhs in
  let* () = check_distinct ast.rhs in
  let in_out = Index.Set.of_list ast.out.indices
  and in_lhs = Index.Set.of_list ast.lhs.indices
  and in_rhs = Index.Set.of_list ast.rhs.indices in
  let all = Index.Set.union in_out (Index.Set.union in_lhs in_rhs) in
  let occurrence_error =
    Index.Set.fold
      (fun i acc ->
        match acc with
        | Some _ -> acc
        | None ->
            let n =
              (if Index.Set.mem i in_out then 1 else 0)
              + (if Index.Set.mem i in_lhs then 1 else 0)
              + if Index.Set.mem i in_rhs then 1 else 0
            in
            if n = 2 then None
            else
              Some
                (Printf.sprintf
                   "index %c occurs in %d tensor(s); a contraction index must \
                    occur in exactly 2 of the 3 tensors"
                   i n))
      all None
  in
  let* () = match occurrence_error with Some e -> Error e | None -> Ok () in
  let out_fvi = List.hd ast.out.indices in
  (* Canonicalize so the lhs input carries the output's FVI. *)
  let swapped = not (Index.Set.mem out_fvi in_lhs) in
  let expr =
    if swapped then Ast.make ~out:ast.out ~lhs:ast.rhs ~rhs:ast.lhs else ast
  in
  let in_rhs = Index.Set.of_list expr.rhs.indices in
  let internals =
    List.filter (fun i -> Index.Set.mem i in_rhs) expr.lhs.indices
  in
  let lhs_externals =
    List.filter (fun i -> Index.Set.mem i in_out) expr.lhs.indices
  in
  let rhs_externals =
    List.filter (fun i -> Index.Set.mem i in_out) expr.rhs.indices
  in
  Ok
    {
      expr;
      original = ast;
      swapped;
      externals = expr.out.indices;
      internals;
      lhs_externals;
      rhs_externals;
      out_fvi;
      lhs_fvi = List.hd expr.lhs.indices;
      rhs_fvi = List.hd expr.rhs.indices;
    }

let analyse_exn ast =
  match analyse ast with Ok i -> i | Error e -> invalid_arg e

let role info i =
  if List.exists (Index.equal i) info.externals then External
  else if List.exists (Index.equal i) info.internals then Internal
  else raise Not_found

let reuse_tensor info i =
  match role info i with
  | Internal -> Out
  | External ->
      if List.exists (Index.equal i) info.lhs_externals then Rhs else Lhs

let all_indices info = info.externals @ info.internals
