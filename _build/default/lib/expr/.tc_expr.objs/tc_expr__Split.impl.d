lib/expr/split.ml: Ast Char Classify Format Index List Printf Problem Result Tc_tensor
