lib/expr/sizes.ml: Format Index List Printf String Tc_tensor
