lib/expr/fuse.ml: Ast Classify Format Hashtbl Index List Option Printf Problem Tc_tensor
