lib/expr/ast.ml: Format Index List Printf Tc_tensor
