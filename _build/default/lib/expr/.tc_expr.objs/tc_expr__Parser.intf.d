lib/expr/parser.mli: Ast Format
