lib/expr/parser.ml: Ast Format Index List Printf Result String Tc_tensor
