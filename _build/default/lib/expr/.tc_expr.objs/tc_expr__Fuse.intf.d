lib/expr/fuse.mli: Format Index Problem Tc_tensor
