lib/expr/classify.ml: Ast Format Index List Printf Result Tc_tensor
