lib/expr/classify.mli: Ast Format Index Tc_tensor
