lib/expr/problem.mli: Ast Classify Format Index Shape Sizes Tc_tensor
