lib/expr/split.mli: Format Index Problem Tc_tensor
