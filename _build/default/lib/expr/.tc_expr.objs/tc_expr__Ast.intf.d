lib/expr/ast.mli: Format Index Tc_tensor
