lib/expr/problem.ml: Ast Classify Format Index List Parser Printf Result Shape Sizes Tc_tensor
