lib/expr/sizes.mli: Format Index Tc_tensor
