(** Abstract syntax of a binary tensor contraction
    [C\[...\] = A\[...\] * B\[...\]].

    Index lists are in layout order, FVI first — the same order they are
    written in both supported concrete syntaxes. *)

open Tc_tensor

type tensor_ref = { name : string; indices : Index.t list }

type t = {
  out : tensor_ref;  (** the output tensor [C] *)
  lhs : tensor_ref;  (** the left input [A] *)
  rhs : tensor_ref;  (** the right input [B] *)
}

val make : out:tensor_ref -> lhs:tensor_ref -> rhs:tensor_ref -> t

val tccg_string : t -> string
(** Compact TCCG form, e.g. ["abcd-aebf-dfce"]. *)

val pp : Format.formatter -> t -> unit
(** Einstein form, e.g. [C\[a,b,c,d\] = A\[a,e,b,f\] * B\[d,f,c,e\]]. *)

val equal : t -> t -> bool
(** Structural equality on index lists (tensor names ignored). *)
