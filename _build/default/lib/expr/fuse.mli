(** Dimension fusion (index merging).

    §IV of the paper notes that {e merging dimensions} "helps to achieve
    coalescing if the extent of each dimension is very small".  Two indices
    can be merged exactly when they appear in the same two tensors and are
    adjacent — faster one first — in both: then treating them as a single
    index of the product extent is a pure relabeling of the same memory
    (no data movement), and the code generator sees one index with a
    usefully large extent instead of two tiny ones. *)

open Tc_tensor

type group = {
  representative : Index.t;  (** the surviving (fastest) index *)
  members : Index.t list;  (** all fused indices, fastest first *)
  extent : int;  (** product of the members' extents *)
}

val pp_group : Format.formatter -> group -> unit

val fusable_pairs : Problem.t -> (Index.t * Index.t) list
(** Pairs [(i, j)] such that [i] immediately precedes [j] in every tensor
    containing either, and both live in the same two tensors.  Order of
    pairs follows the output layout. *)

val fuse_pair : Problem.t -> Index.t * Index.t -> (Problem.t, string) result
(** Merge one pair: [j] disappears, [i]'s extent becomes [Ni * Nj].
    [Error] if the pair is not fusable. *)

val fuse_all : Problem.t -> Problem.t * group list
(** Greedily merge until no fusable pair remains.  Returns the fused
    problem and, for every surviving index that absorbed others, its
    group.  The fused problem describes {e the same memory}: a tensor of
    the original problem reinterpreted with the fused shape is bit-
    identical. *)

val is_identity : group list -> bool
(** True when nothing was fused. *)
