open Tc_tensor

type group = {
  representative : Index.t;
  members : Index.t list;
  extent : int;
}

let pp_group fmt g =
  Format.fprintf fmt "%c := %s (extent %d)" g.representative
    (Index.list_to_string g.members)
    g.extent

(* Tensors (as 0=out, 1=lhs, 2=rhs flags) containing an index, and the
   original ref lists of the expression as written. *)
let refs problem =
  let info = Problem.info problem in
  let orig = info.Classify.original in
  [ orig.Ast.out; orig.Ast.lhs; orig.Ast.rhs ]

let membership problem i =
  List.map (fun (r : Ast.tensor_ref) -> List.exists (Index.equal i) r.indices)
    (refs problem)

(* j immediately follows i (i is faster) in a layout. *)
let adjacent_in indices i j =
  let rec go = function
    | x :: (y :: _ as rest) ->
        (Index.equal x i && Index.equal y j) || go rest
    | _ -> false
  in
  go indices

let pair_fusable problem (i, j) =
  membership problem i = membership problem j
  && List.for_all2
       (fun (r : Ast.tensor_ref) present ->
         (not present) || adjacent_in r.indices i j)
       (refs problem)
       (membership problem i)

let fusable_pairs problem =
  let info = Problem.info problem in
  let all = Classify.all_indices info in
  List.filter_map
    (fun i ->
      List.find_map
        (fun j ->
          if (not (Index.equal i j)) && pair_fusable problem (i, j) then
            Some (i, j)
          else None)
        all)
    all

let fuse_pair problem (i, j) =
  if not (pair_fusable problem (i, j)) then
    Error (Printf.sprintf "indices %c and %c are not fusable" i j)
  else begin
    let drop_j indices =
      List.filter (fun x -> not (Index.equal x j)) indices
    in
    let rewrite (r : Ast.tensor_ref) = { r with Ast.indices = drop_j r.indices } in
    let orig = (Problem.info problem).Classify.original in
    let ast =
      Ast.make ~out:(rewrite orig.Ast.out) ~lhs:(rewrite orig.Ast.lhs)
        ~rhs:(rewrite orig.Ast.rhs)
    in
    let sizes =
      Problem.sizes problem |> Index.Map.remove j
      |> Index.Map.add i (Problem.extent problem i * Problem.extent problem j)
    in
    Problem.make ast sizes
  end

let fuse_all problem =
  let absorbed = Hashtbl.create 4 in
  (* representative -> absorbed members, in order *)
  let record i j =
    let prior = Option.value ~default:[] (Hashtbl.find_opt absorbed i) in
    let j_members =
      match Hashtbl.find_opt absorbed j with
      | Some l ->
          Hashtbl.remove absorbed j;
          j :: l
      | None -> [ j ]
    in
    Hashtbl.replace absorbed i (prior @ j_members)
  in
  let rec go problem =
    match fusable_pairs problem with
    | [] -> problem
    | (i, j) :: _ -> (
        match fuse_pair problem (i, j) with
        | Ok fused ->
            record i j;
            go fused
        | Error _ -> problem)
  in
  let fused = go problem in
  let groups =
    Hashtbl.fold
      (fun representative members acc ->
        {
          representative;
          members = representative :: members;
          extent = Problem.extent fused representative;
        }
        :: acc)
      absorbed []
    |> List.sort (fun a b -> Index.compare a.representative b.representative)
  in
  (fused, groups)

let is_identity groups = groups = []
