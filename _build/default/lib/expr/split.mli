(** Dimension splitting (the inverse of {!Fuse}).

    §IV of the paper lists "splitting each dimension into multiple
    dimensions" as a search-space extension that "helps ensure that there
    are enough thread blocks" — and, just as importantly, it lets one
    physical dimension feed {e two} mapping dimensions: a tensor-times-
    matrix contraction has a single external index per input, so without
    splitting there is nothing left to register-tile.

    Splitting index [i] of extent [N] by [factor] replaces it with
    [i] (extent [factor], the fast part) immediately followed by a fresh
    index (extent [N / factor], the slow part) in every tensor containing
    [i].  Because the two parts stay adjacent fast-first, this is a pure
    relabeling of the same memory. *)

open Tc_tensor

val fresh_index : Problem.t -> Index.t option
(** The first letter of [a..z] unused by the contraction; [None] if all 26
    are taken. *)

val split :
  Problem.t -> Index.t -> factor:int -> (Problem.t * Index.t, string) result
(** [split p i ~factor] returns the rewritten problem and the fresh slow
    index.  [Error] if [i] is foreign, [factor] does not divide the
    extent, is not in [2, extent), or no fresh letter is available. *)

type applied = {
  original : Index.t;
  fast_extent : int;
  slow : Index.t;
  slow_extent : int;
}

val pp_applied : Format.formatter -> applied -> unit

val auto : ?fast:int -> Problem.t -> Problem.t * applied list
(** Heuristic used by the generator on register-starved contractions: for
    each input whose side has exactly one external index with extent at
    least [2 * fast] and divisible by [fast] (default 16), split it so the
    fast part can feed the thread-block dimension and the slow part the
    register tile.  Returns the (possibly unchanged) problem and what was
    applied. *)
