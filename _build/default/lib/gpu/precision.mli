(** Floating-point precisions the generated kernels can target.  The TCCG
    comparison of Figs. 4–5 uses double precision; the Tensor-Comprehensions
    comparison of Figs. 6–8 uses single precision. *)

type t = FP32 | FP64

val bytes : t -> int
val to_string : t -> string
val cuda_type : t -> string
(** The C scalar type emitted in kernels: ["float"] or ["double"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val elems_per_transaction : t -> int
(** Elements per 128-byte DRAM transaction: 32 for FP32, 16 for FP64. *)
