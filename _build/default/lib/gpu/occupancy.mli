(** CUDA occupancy calculator.

    Computes how many thread blocks of a given resource footprint can be
    resident on one SM, and the resulting warp occupancy — the quantity the
    paper's performance constraints (§IV-A2) guard. *)

type request = {
  threads_per_block : int;
  smem_per_block : int;  (** bytes *)
  regs_per_thread : int;
}

type result = {
  active_blocks_per_sm : int;
  active_warps_per_sm : int;
  occupancy : float;  (** active warps / max warps, in [0, 1] *)
  limiter : limiter;
}

and limiter = Threads | Shared_memory | Registers | Blocks | Invalid

val pp_limiter : Format.formatter -> limiter -> unit

val calculate : Arch.t -> request -> result
(** [calculate arch req] never raises; a request that cannot fit at all
    (e.g. more threads than [max_threads_per_block]) yields zero active
    blocks with [limiter = Invalid]. *)

val fits : Arch.t -> request -> bool
(** True iff at least one block can be resident. *)
