(** GPU device models.

    The two devices of the paper's evaluation are provided with their
    published specifications; arbitrary devices can be described for
    what-if studies.  All capacities are per-SM unless stated otherwise. *)

type t = {
  name : string;
  sms : int;  (** number of streaming multiprocessors *)
  cores_per_sm : int;
  clock_ghz : float;
  peak_gflops_fp64 : float;
  peak_gflops_fp32 : float;
  dram_bw_gbs : float;  (** peak DRAM bandwidth, GB/s *)
  dram_gb : float;
  smem_per_block : int;  (** shared-memory bytes usable by one thread block *)
  smem_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers per SM *)
  regs_per_thread_max : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  warp_size : int;
  transaction_bytes : int;  (** DRAM transaction granularity (128 B) *)
  kernel_launch_us : float;  (** fixed launch latency, microseconds *)
  fma_issue_eff : float;
      (** fraction of peak FMA issue a hand-scheduled inner loop sustains;
          higher on Volta, whose separate INT32 pipe overlaps address
          arithmetic with floating-point work *)
  l2_bytes : int;  (** L2 cache capacity (0 disables the cache model) *)
  l2_bw_ratio : float;
      (** L2-to-DRAM bandwidth ratio: reloads served from L2 cost this much
          less than DRAM traffic *)
}

val p100 : t
(** Nvidia Tesla P100 (Pascal, SXM2): 56 SMs, 64 cores/SM. *)

val v100 : t
(** Nvidia Tesla V100 (Volta, SXM2): 80 SMs, 64 cores/SM. *)

val a100 : t
(** Nvidia A100 (Ampere, SXM4): 108 SMs — not part of the paper's
    evaluation; included because the generator targets any device of
    compute capability >= 6.0, and the newer device makes a useful
    what-if. *)

val by_name : string -> t option
(** Case-insensitive lookup of ["p100"] / ["v100"] / ["a100"]. *)

val peak_gflops : t -> Precision.t -> float
val pp : Format.formatter -> t -> unit
