type request = {
  threads_per_block : int;
  smem_per_block : int;
  regs_per_thread : int;
}

type result = {
  active_blocks_per_sm : int;
  active_warps_per_sm : int;
  occupancy : float;
  limiter : limiter;
}

and limiter = Threads | Shared_memory | Registers | Blocks | Invalid

let pp_limiter fmt l =
  Format.pp_print_string fmt
    (match l with
    | Threads -> "threads"
    | Shared_memory -> "shared memory"
    | Registers -> "registers"
    | Blocks -> "blocks"
    | Invalid -> "invalid request")

let invalid = {
  active_blocks_per_sm = 0;
  active_warps_per_sm = 0;
  occupancy = 0.0;
  limiter = Invalid;
}

let calculate (arch : Arch.t) req =
  if
    req.threads_per_block <= 0
    || req.threads_per_block > arch.max_threads_per_block
    || req.smem_per_block > arch.smem_per_block
    || req.regs_per_thread > arch.regs_per_thread_max
    || req.smem_per_block < 0 || req.regs_per_thread < 0
  then invalid
  else begin
    (* Warps are allocated whole. *)
    let warps_per_block =
      (req.threads_per_block + arch.warp_size - 1) / arch.warp_size
    in
    let limit_threads =
      arch.max_threads_per_sm / (warps_per_block * arch.warp_size)
    in
    let limit_smem =
      if req.smem_per_block = 0 then arch.max_blocks_per_sm
      else arch.smem_per_sm / req.smem_per_block
    in
    let limit_regs =
      if req.regs_per_thread = 0 then arch.max_blocks_per_sm
      else
        arch.regs_per_sm
        / (req.regs_per_thread * warps_per_block * arch.warp_size)
    in
    let limit_blocks = arch.max_blocks_per_sm in
    let blocks =
      List.fold_left min limit_threads [ limit_smem; limit_regs; limit_blocks ]
    in
    if blocks <= 0 then
      (* A single block over-subscribes some resource. *)
      let limiter =
        if limit_regs <= 0 then Registers
        else if limit_smem <= 0 then Shared_memory
        else Threads
      in
      { invalid with limiter }
    else
      let limiter =
        if blocks = limit_threads then Threads
        else if blocks = limit_smem then Shared_memory
        else if blocks = limit_regs then Registers
        else Blocks
      in
      let active_warps = blocks * warps_per_block in
      let max_warps = arch.max_threads_per_sm / arch.warp_size in
      {
        active_blocks_per_sm = blocks;
        active_warps_per_sm = active_warps;
        occupancy = float_of_int active_warps /. float_of_int max_warps;
        limiter;
      }
  end

let fits arch req = (calculate arch req).active_blocks_per_sm > 0
