lib/gpu/occupancy.ml: Arch Format List
