lib/gpu/occupancy.mli: Arch Format
