lib/gpu/precision.ml: Format
