lib/gpu/precision.mli: Format
