lib/gpu/arch.ml: Format Precision String
