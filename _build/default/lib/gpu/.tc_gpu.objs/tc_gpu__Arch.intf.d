lib/gpu/arch.mli: Format Precision
