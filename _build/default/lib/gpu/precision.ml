type t = FP32 | FP64

let bytes = function FP32 -> 4 | FP64 -> 8
let to_string = function FP32 -> "fp32" | FP64 -> "fp64"
let cuda_type = function FP32 -> "float" | FP64 -> "double"
let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
let elems_per_transaction t = 128 / bytes t
