lib/sim/simkernel.ml: Arch Ast Classify Cogent Cost Float Format Index List Mapping Occupancy Plan Precision Problem Tc_expr Tc_gpu Tc_tensor
