lib/sim/simkernel.mli: Cogent Format Tc_expr Tc_gpu
