
type params = {
  population : int;
  generations : int;
  tournament : int;
  mutation_rate : float;
  elite : int;
  seed : int;
}

let default_params =
  {
    population = 100;
    generations = 20;
    tournament = 3;
    mutation_rate = 0.2;
    elite = 2;
    seed = 42;
  }

type trace_point = {
  evaluations : int;
  best_gflops : float;
  current_gflops : float;
}

type result = {
  best : Cogent.Mapping.t;
  best_gflops : float;
  trace : trace_point list;
  evaluations : int;
  tuning_time_s : float;
}

let tc_quality_factor = 0.9

(* Each candidate is compiled (nvcc) and benchmarked with 3 repetitions;
   this drives the simulated total tuning time.  Pathological candidates
   are cut off by the harness's per-run timeout. *)
let compile_time_s = 4.0
let bench_repetitions = 3.0
let run_timeout_s = 1.0

let fitness ?(quality = tc_quality_factor) arch prec problem mapping =
  match Cogent.Mapping.validate problem mapping with
  | Error _ -> 0.0
  | Ok () ->
      let plan =
        Cogent.Plan.make ~problem ~mapping ~arch ~precision:prec
      in
      let r = Tc_sim.Simkernel.run plan in
      if Float.is_finite r.Tc_sim.Simkernel.gflops then
        quality *. r.Tc_sim.Simkernel.gflops
      else 0.0

let runtime_s arch prec problem mapping =
  match Cogent.Mapping.validate problem mapping with
  | Error _ -> 0.0
  | Ok () ->
      let plan = Cogent.Plan.make ~problem ~mapping ~arch ~precision:prec in
      let t = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.time_s in
      if Float.is_finite t then t else 0.0

let tune ?(params = default_params) ?quality arch prec problem =
  let st = Random.State.make [| params.seed |] in
  let evaluations = ref 0 in
  let tuning_time = ref 0.0 in
  let best = ref None in
  let trace = ref [] in
  let evaluate genome =
    let g =
      match Space.decode problem genome with
      | None -> 0.0
      | Some mapping ->
          let f = fitness ?quality arch prec problem mapping in
          incr evaluations;
          tuning_time :=
            !tuning_time +. compile_time_s
            +. bench_repetitions
               *. Float.min run_timeout_s (runtime_s arch prec problem mapping);
          (match !best with
          | Some (_, bg) when bg >= f -> ()
          | _ -> best := Some (mapping, f));
          f
    in
    let best_gflops = match !best with Some (_, g) -> g | None -> 0.0 in
    trace :=
      { evaluations = !evaluations; best_gflops; current_gflops = g } :: !trace;
    g
  in
  let population =
    Array.init params.population (fun _ ->
        let genome = Space.random st problem in
        (genome, evaluate genome))
  in
  let by_fitness (_, a) (_, b) = Float.compare b a in
  let tournament_pick pop =
    let best = ref pop.(Random.State.int st (Array.length pop)) in
    for _ = 2 to params.tournament do
      let c = pop.(Random.State.int st (Array.length pop)) in
      if snd c > snd !best then best := c
    done;
    fst !best
  in
  let current = ref population in
  for _gen = 2 to params.generations do
    let pop = !current in
    Array.sort by_fitness pop;
    let next =
      Array.init params.population (fun k ->
          if k < params.elite then pop.(k)
          else
            let a = tournament_pick pop and b = tournament_pick pop in
            let child = Space.crossover st a b in
            let child =
              if Random.State.float st 1.0 < params.mutation_rate then
                Space.mutate st problem child
              else child
            in
            (child, evaluate child))
    in
    current := next
  done;
  match !best with
  | None -> invalid_arg "Genetic.tune: no feasible configuration evaluated"
  | Some (mapping, gflops) ->
      {
        best = mapping;
        best_gflops = gflops;
        trace = List.rev !trace;
        evaluations = !evaluations;
        tuning_time_s = !tuning_time;
      }
