open Tc_tensor
open Tc_expr

type dim = Tbx | Tby | Regx | Regy | Grid

type gene = { index : Index.t; dim : dim; tile : int }
type genome = { externals : gene list; internals : gene list }

let tile_menu = [ 1; 2; 4; 8; 16; 32 ]

let choose st l = List.nth l (Random.State.int st (List.length l))

(* Dimensions an external index may occupy in the TC-era schedule space:
   thread-block X for lhs externals, thread-block Y for rhs externals, or
   the grid.  The polyhedral mapper of that generation promoted operands to
   shared memory but had no outer-product register-tiling scheme, so the
   register dimensions are absent from its space — one of the structural
   advantages of COGENT's domain-specific schema (§II). *)
let dims_for info i =
  if List.exists (Index.equal i) info.Classify.lhs_externals then
    [ Tbx; Grid ]
  else [ Tby; Grid ]

let random_tile st problem i =
  let extent = Problem.extent problem i in
  min extent (choose st tile_menu)

let random st problem =
  let info = Problem.info problem in
  let externals =
    List.map
      (fun index ->
        let dim = choose st (dims_for info index) in
        let tile = if dim = Grid then 1 else random_tile st problem index in
        { index; dim; tile })
      info.Classify.externals
  in
  let internals =
    List.map
      (fun index ->
        { index; dim = Grid; tile = random_tile st problem index })
      info.Classify.internals
  in
  { externals; internals }

let mutate st problem g =
  let info = Problem.info problem in
  let n_ext = List.length g.externals and n_int = List.length g.internals in
  let target = Random.State.int st (n_ext + n_int) in
  if target < n_ext then
    let externals =
      List.mapi
        (fun k gene ->
          if k <> target then gene
          else
            let dim = choose st (dims_for info gene.index) in
            let tile =
              if dim = Grid then 1 else random_tile st problem gene.index
            in
            { gene with dim; tile })
        g.externals
    in
    { g with externals }
  else
    let t = target - n_ext in
    let internals =
      List.mapi
        (fun k gene ->
          if k <> t then gene
          else { gene with tile = random_tile st problem gene.index })
        g.internals
    in
    { g with internals }

let crossover st a b =
  let pick x y = if Random.State.bool st then x else y in
  {
    externals = List.map2 pick a.externals b.externals;
    internals = List.map2 pick a.internals b.internals;
  }

let decode problem g =
  let info = Problem.info problem in
  let select d =
    List.filter_map
      (fun gene ->
        if gene.dim = d then
          Some { Cogent.Mapping.index = gene.index; tile = gene.tile }
        else None)
      g.externals
  in
  let mapping =
    {
      Cogent.Mapping.tbx = select Tbx;
      regx = select Regx;
      tby = select Tby;
      regy = select Regy;
      tbk =
        List.map
          (fun gene -> { Cogent.Mapping.index = gene.index; tile = gene.tile })
          g.internals;
      grid =
        List.filter_map
          (fun gene -> if gene.dim = Grid then Some gene.index else None)
          g.externals;
    }
  in
  ignore info;
  match Cogent.Mapping.validate problem mapping with
  | Ok () -> Some mapping
  | Error _ -> None

let size problem =
  let info = Problem.info problem in
  let menu = float_of_int (List.length tile_menu) in
  let ext = float_of_int (List.length info.Classify.externals) in
  let int_ = float_of_int (List.length info.Classify.internals) in
  Float.pow (2.0 *. menu) ext *. Float.pow menu int_
