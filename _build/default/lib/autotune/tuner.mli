(** Tensor-Comprehensions-like facade: the two operating points the paper
    compares against (Figs. 6–8) — the compiler's default schedule without
    tuning, and the genetic autotuner's best after population x generations
    code versions. *)

open Tc_gpu
open Tc_expr

val untuned_gflops : Arch.t -> Precision.t -> Problem.t -> float
(** TC's default (untuned) schedule: an essentially unparallelized mapping
    — every output element computed by its own single-thread block, no
    tiling, no staging.  Lands below 1 GFLOPS, as the paper observes. *)

val untuned_mapping : Problem.t -> Cogent.Mapping.t

val tuned : ?params:Genetic.params -> Arch.t -> Precision.t -> Problem.t
  -> Genetic.result
(** Run the genetic autotuner (defaults: population 100, 20 generations —
    the paper's setting). *)
