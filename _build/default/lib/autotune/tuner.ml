open Tc_expr

(* One single-thread block per output element, serial contraction loop with
   unit tiles: the shape of the naive schedule TC compiles when no tuning
   information is available. *)
let untuned_mapping problem =
  let info = Problem.info problem in
  {
    Cogent.Mapping.tbx = [];
    regx = [];
    tby = [];
    regy = [];
    tbk =
      List.map
        (fun index -> { Cogent.Mapping.index; tile = 1 })
        info.Tc_expr.Classify.internals;
    grid = info.Tc_expr.Classify.externals;
  }

let untuned_gflops arch prec problem =
  Genetic.fitness arch prec problem (untuned_mapping problem)

let tuned ?params arch prec problem = Genetic.tune ?params arch prec problem
