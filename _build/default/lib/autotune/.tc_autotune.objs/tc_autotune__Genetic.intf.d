lib/autotune/genetic.mli: Arch Cogent Precision Problem Tc_expr Tc_gpu
