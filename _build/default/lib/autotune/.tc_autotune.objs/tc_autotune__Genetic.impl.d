lib/autotune/genetic.ml: Array Cogent Float List Random Space Tc_sim
