lib/autotune/tuner.mli: Arch Cogent Genetic Precision Problem Tc_expr Tc_gpu
