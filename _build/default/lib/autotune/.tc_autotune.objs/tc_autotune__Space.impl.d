lib/autotune/space.ml: Classify Cogent Float Index List Problem Random Tc_expr Tc_tensor
