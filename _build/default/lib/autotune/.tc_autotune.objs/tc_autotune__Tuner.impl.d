lib/autotune/tuner.ml: Cogent Genetic List Problem Tc_expr
