lib/autotune/space.mli: Cogent Index Problem Random Tc_expr Tc_tensor
