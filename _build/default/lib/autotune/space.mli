(** The {e unpruned} configuration space a general-purpose autotuner (such
    as Tensor Comprehensions' genetic tuner) explores.

    A genome assigns every external index a dimension (thread-block X/Y or
    grid — restricted only by which input the index belongs to, a
    structural fact) and a tile size, and every internal index a TBk tile.
    Unlike COGENT's enumeration there is no FVI anchoring, no greedy target
    packing, no coalescing or occupancy rules — and, crucially, no
    outer-product register tiling, which the polyhedral mapper of TC's
    generation did not perform: most sampled points are legal but slow,
    exactly the haystack a black-box tuner must search.  Tile sizes come
    from a power-of-two menu, as is typical of polyhedral autotuner
    presets. *)

open Tc_tensor
open Tc_expr

type dim = Tbx | Tby | Regx | Regy | Grid

type gene = { index : Index.t; dim : dim; tile : int }
(** For internal indices [dim] is ignored (always the serial TBk). *)

type genome = { externals : gene list; internals : gene list }

val tile_menu : int list
(** [{1; 2; 4; 8; 16; 32}]. *)

val random : Random.State.t -> Problem.t -> genome
val mutate : Random.State.t -> Problem.t -> genome -> genome
(** Re-samples one gene (dimension and/or tile). *)

val crossover : Random.State.t -> genome -> genome -> genome
(** Uniform crossover, gene by gene. *)

val decode : Problem.t -> genome -> Cogent.Mapping.t option
(** [None] if the genome is structurally invalid (never happens for
    genomes built by this module, but decoding is defensive). *)

val size : Problem.t -> float
(** Number of points in this space. *)
