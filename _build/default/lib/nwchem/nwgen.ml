open Tc_tensor
open Tc_gpu
open Tc_expr
open Cogent

let with_extents problem l =
  List.map (fun i -> (i, Problem.extent problem i)) l

(* One side of the fixed recipe: pack the thread-block dimension toward
   [tb_target] starting from [fvi] (when external), then give the first
   leftover external a register tile of up to [reg_target]. *)
let side problem ~tb_target ~reg_target ~fvi ~externals =
  let first, rest =
    match fvi with
    | Some f when List.exists (Index.equal f) externals ->
        (Some (f, Problem.extent problem f),
         List.filter (fun i -> not (Index.equal i f)) externals)
    | _ -> (None, externals)
  in
  let tb, _ =
    Enumerate.pack_greedy ~target:tb_target ~first
      ~candidates:(with_extents problem rest)
  in
  let used = List.map (fun b -> b.Mapping.index) tb in
  let remaining =
    List.filter (fun i -> not (List.exists (Index.equal i) used)) externals
  in
  let reg =
    match remaining with
    | [] -> []
    | i :: _ ->
        let extent = Problem.extent problem i in
        [ { Mapping.index = i; tile = min reg_target extent } ]
  in
  (tb, reg)

let mapping_with problem ~tb_target ~reg_target ~tbk_target =
  let info = Problem.info problem in
  let tbx, regx =
    side problem ~tb_target ~reg_target ~fvi:(Some info.Classify.out_fvi)
      ~externals:info.Classify.lhs_externals
  in
  let tby, regy =
    side problem ~tb_target ~reg_target ~fvi:(Some info.Classify.rhs_fvi)
      ~externals:info.Classify.rhs_externals
  in
  let tbk_packed, _ =
    Enumerate.pack_greedy ~target:tbk_target ~first:None
      ~candidates:(with_extents problem info.Classify.internals)
  in
  let tbk =
    let used = List.map (fun b -> b.Mapping.index) tbk_packed in
    tbk_packed
    @ List.filter_map
        (fun index ->
          if List.exists (Index.equal index) used then None
          else Some { Mapping.index; tile = 1 })
        info.Classify.internals
  in
  let x_used = List.map (fun b -> b.Mapping.index) (tbx @ regx) in
  let y_used = List.map (fun b -> b.Mapping.index) (tby @ regy) in
  let grid =
    List.filter
      (fun i ->
        not
          (List.exists (Index.equal i) x_used
          || List.exists (Index.equal i) y_used))
      info.Classify.externals
  in
  { Mapping.tbx; regx; tby; regy; tbk; grid }

let mapping problem =
  mapping_with problem ~tb_target:16 ~reg_target:4 ~tbk_target:16

let plan ?(arch = Arch.v100) ?(precision = Precision.FP64) problem =
  (* Halve targets until the fixed recipe satisfies hardware limits. *)
  let rec fit tb reg tbk =
    let m = mapping_with problem ~tb_target:tb ~reg_target:reg ~tbk_target:tbk in
    let hardware_ok =
      Mapping.threads_per_block m <= arch.Arch.max_threads_per_block
      && Prune.smem_bytes precision m <= arch.Arch.smem_per_block
      && Prune.regs_per_thread precision m <= arch.Arch.regs_per_thread_max
      && (Prune.occupancy arch precision m).Occupancy.limiter
         <> Occupancy.Invalid
    in
    if hardware_ok then m
    else if tb > 4 then fit (tb / 2) reg tbk
    else if reg > 1 then fit tb (reg / 2) tbk
    else if tbk > 1 then fit tb reg (tbk / 2)
    else m (* smallest recipe; let Plan.make surface any residual issue *)
  in
  let m = fit 16 4 16 in
  Plan.make ~problem ~mapping:m ~arch ~precision
