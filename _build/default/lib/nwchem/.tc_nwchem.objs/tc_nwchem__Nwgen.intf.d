lib/nwchem/nwgen.mli: Arch Cogent Precision Problem Tc_expr Tc_gpu
