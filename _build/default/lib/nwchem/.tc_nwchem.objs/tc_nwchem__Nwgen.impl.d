lib/nwchem/nwgen.ml: Arch Classify Cogent Enumerate Index List Mapping Occupancy Plan Precision Problem Prune Tc_expr Tc_gpu Tc_tensor
