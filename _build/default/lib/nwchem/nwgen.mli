(** NWChem-style fixed-heuristic kernel generator (baseline).

    Models the code generator used to synthesize the CCSD(T) GPU kernels in
    the production NWChem suite (Ma et al.): a direct contraction with the
    same staging schema as COGENT but a {e fixed} configuration recipe
    instead of model-driven search —

    - thread block packed toward 16x16 (output FVI on X, rhs FVI on Y),
      taking indices in layout order with no rotation search;
    - a fixed 4x4 register tile from the next available external on each
      side;
    - contraction indices packed toward a serial depth of 16;
    - no cost-model ranking; if the fixed recipe violates a hardware limit,
      targets are halved until it fits.

    The performance gap to COGENT on the TCCG suite isolates the value of
    the paper's model-driven tile/mapping selection (§V). *)

open Tc_gpu
open Tc_expr

val mapping : Problem.t -> Cogent.Mapping.t
(** The fixed-recipe configuration (before hardware fitting). *)

val plan :
  ?arch:Arch.t -> ?precision:Precision.t -> Problem.t -> Cogent.Plan.t
(** Fixed-recipe plan, with targets halved as needed to satisfy hardware
    constraints.  Defaults: V100, FP64. *)
