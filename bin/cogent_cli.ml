(* cogent — command-line front end of the code generator.

   Subcommands:
     gen      emit CUDA for a contraction at a representative size
     plan     show the top-ranked configurations with model cost and
              simulated performance
     explain  itemized cost-model breakdown: prune audit, per-tensor DRAM
              charges, occupancy limiter, simulator roofline
     profile  simulated-hardware profiler: interpreter-measured counters
              cross-validated against simulator and cost-model predictions
              (--json for the machine-readable report, --trace FILE for a
              Chrome-trace timeline of the simulated execution)
     bench    compare COGENT / NWChem-style / TAL_SH-style strategies on one
              contraction or a TCCG suite entry (--json FILE writes the
              cogent-bench/1 record the bench harness also emits)
     serve    run a JSONL workload of contraction requests through the
              batched serving engine (dedup, parallel plan search, model
              dispatch to the COGENT kernel or the TTGT pipeline, optional
              on-disk plan store for warm restarts; --audit-ledger DIR also
              records one cost-model accuracy sample per request)
     audit    aggregate a cogent-audit/1 ledger into the calibration
              report: model-error quantiles, dispatch mix, regret account
              (--diff BASELINE.json is the CI drift gate: exit 1 when
              calibration drifts past the per-metric tolerances)
     suite    list the TCCG benchmark entries

   The generation subcommands share one configuration surface (a
   Cogent.Ctx built from --arch, --precision and --budget); every
   subcommand accepts --trace FILE to record a pipeline trace as Chrome
   trace_event JSON (load in chrome://tracing or Perfetto), --metrics
   FILE to write the final metrics snapshot in Prometheus text format,
   and --jobs N to set the worker-domain count for the parallel sections
   (overrides COGENT_JOBS; 1 disables parallelism).  Results are
   bit-identical at any job count.

   Examples:
     cogent gen  -e abcd-aebf-dfce -s a=48,b=48,c=48,d=48,e=32,f=32
     cogent plan -e "C[a,b] = A[a,k] * B[k,b]" -s a=1024,b=1024,k=512 -n 10
     cogent explain "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]" -s a=48,b=48,c=48,d=48,e=32,f=32
     cogent bench --entry sd2_1 --arch p100 --trace sd2_1.trace.json
     cogent serve --requests examples/serve_requests.jsonl --store /tmp/plans --json *)

open Cmdliner
open Tc_gpu
open Tc_expr

let version = "1.0.0"

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

(* ---- shared arguments ---- *)

let expr_arg =
  let doc =
    "The contraction, in TCCG form (abcd-aebf-dfce) or Einstein form \
     (C[a,b]=A[a,k]*B[k,b])."
  in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR" ~doc)

let sizes_arg =
  let doc = "Representative extents, e.g. a=48,b=48,e=32." in
  Arg.(value & opt (some string) None & info [ "s"; "sizes" ] ~docv:"SIZES" ~doc)

let entry_arg =
  let doc = "A TCCG suite entry name (see the suite subcommand), e.g. sd2_1." in
  Arg.(value & opt (some string) None & info [ "entry" ] ~docv:"NAME" ~doc)

let arch_arg =
  let parse s =
    match Arch.by_name s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown device %S (p100|v100|a100|h100)" s))
  in
  let print fmt (a : Arch.t) = Format.pp_print_string fmt a.Arch.name in
  let arch_conv = Arg.conv (parse, print) in
  Arg.(value & opt arch_conv Arch.v100 & info [ "arch" ] ~docv:"DEVICE"
         ~doc:"Target device: p100, v100, a100 or h100.")

let precision_arg =
  let parse = function
    | "fp64" | "double" -> Ok Precision.FP64
    | "fp32" | "float" | "single" -> Ok Precision.FP32
    | "fp16" | "half" -> Ok Precision.FP16
    | "tf32" -> Ok Precision.TF32
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown precision %S (fp16|tf32|fp32|fp64)" s))
  in
  let prec_conv = Arg.conv (parse, fun fmt p -> Precision.pp fmt p) in
  Arg.(value & opt prec_conv Precision.FP64 & info [ "precision" ] ~docv:"PREC"
         ~doc:"Floating-point precision: fp16, tf32, fp32 or fp64.")

let schema_arg =
  let parse s =
    match Schema.of_string s with
    | Some sc -> Ok sc
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown schema %S (classic|pipelined|pipelined-mma)" s))
  in
  let schema_conv = Arg.conv (parse, Schema.pp) in
  Arg.(value & opt (some schema_conv) None & info [ "schema" ] ~docv:"SCHEMA"
         ~doc:"Kernel schema: classic (the synchronous ladder of Algorithm \
               1), pipelined (double-buffered SMEM with async-copy \
               prefetch), or pipelined-mma (pipelined with tensor-core \
               compute; fp16/tf32 only).  By default the driver races every \
               schema feasible on the target device and keeps the predicted \
               fastest.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the generated CUDA to $(docv) instead of stdout.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a pipeline trace and write it to $(docv) as Chrome \
               trace_event JSON (chrome://tracing, Perfetto).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the final metrics snapshot (counters, gauges, latency \
               histograms) to $(docv) in Prometheus text exposition format. \
               Instruments whose names contain \"wall\" carry wall-clock \
               values; everything else is deterministic and byte-identical \
               at any job count.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel sections (ranking, measured \
               refinement, sweeps).  Overrides $(b,COGENT_JOBS); defaults \
               to the machine's core count minus one; 1 disables \
               parallelism.  Results are bit-identical at any job count.")

let budget_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
         ~doc:"Search budget: rank at most $(docv) surviving configurations \
               per plan search.  A truncated search degrades gracefully \
               toward the heuristic top-of-enumeration plan and is flagged \
               in the output.  Unlimited by default.")

(* The shared front door: every generation subcommand folds its --arch,
   --precision and --budget into one [Cogent.Ctx.t] (the simulator is the
   measure — this repo's stand-in for timed runs on real hardware). *)
let mk_ctx ?jobs ?schema arch precision budget =
  Cogent.Ctx.make ~arch ~precision ?schema ~measure:simulate ?jobs ?budget ()

let resolve_problem expr sizes entry =
  match (entry, expr, sizes) with
  | Some name, None, None -> (
      match Tc_tccg.Suite.find name with
      | Some e -> Ok (Tc_tccg.Suite.problem e)
      | None -> Error (Printf.sprintf "no TCCG entry named %S" name))
  | None, Some e, Some s -> (
      match Sizes.parse s with
      | Error m -> Error m
      | Ok sizes -> (
          match Parser.parse e with
          | Error pe -> Error (Format.asprintf "%a" Parser.pp_error pe)
          | Ok ast -> Problem.make ast sizes))
  | None, Some _, None -> Error "missing --sizes"
  | _ -> Error "give either --entry NAME, or --expr with --sizes"

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("cogent: " ^ m);
      exit 2

(* Typed generation errors: [No_viable_mapping] carries the prune audit,
   which [cogent explain] prints in full so the user sees which rule
   rejected what. *)
let or_die_gen ?(stats_table = false) = function
  | Ok v -> v
  | Error e ->
      (if stats_table then
         match e with
         | Cogent.Driver.No_viable_mapping s ->
             Format.eprintf "%a@." Cogent.Prune.pp_stats s
         | Cogent.Driver.Bad_problem _ | Cogent.Driver.Infeasible_schema _ ->
             ());
      Format.eprintf "cogent: %a@." Cogent.Driver.pp_error e;
      (* An infeasible forced schema is a usage error (bad flag for this
         problem/device), not a search failure — exit 1, like flag parse
         errors. *)
      exit
        (match e with Cogent.Driver.Infeasible_schema _ -> 1 | _ -> 2)

(* Run the body of a subcommand with error hardening (failures land on
   stderr with a nonzero exit, never a backtrace), the requested
   worker-domain count, optional tracing, and an optional Prometheus
   metrics file.  Both exports run in [Fun.protect] finalizers so a
   failing body still leaves its trace and metrics on disk. *)
let harness ?jobs ?metrics trace f =
  Option.iter Tc_par.Pool.set_default_jobs jobs;
  let traced () =
    match trace with
    | None -> f ()
    | Some path ->
        let t = Tc_obs.Trace.make () in
        Fun.protect
          ~finally:(fun () ->
            Tc_obs.Export.write_chrome ~path (Tc_obs.Trace.events t);
            Printf.eprintf "cogent: wrote trace to %s\n%!" path)
          (fun () -> Tc_obs.Trace.with_installed t f)
  in
  let measured () =
    match metrics with
    | None -> traced ()
    | Some path ->
        Fun.protect
          ~finally:(fun () ->
            let oc = open_out path in
            output_string oc
              (Tc_obs.Metrics.to_prometheus
                 (Tc_obs.Metrics.snapshot Tc_obs.Metrics.global));
            close_out oc;
            Printf.eprintf "cogent: wrote metrics to %s\n%!" path)
          traced
  in
  let message = function
    | Sys_error m | Invalid_argument m | Failure m -> Some m
    | _ -> None
  in
  match measured () with
  | v -> v
  | exception e -> (
      (* A failing trace/metrics write surfaces wrapped by [Fun.protect]. *)
      let rec unwrap = function Fun.Finally_raised e -> unwrap e | e -> e in
      match message (unwrap e) with
      | Some m ->
          prerr_endline ("cogent: " ^ m);
          exit 1
      | None -> raise (unwrap e))

(* ---- gen ---- *)

let gen_cmd =
  let run trace metrics jobs expr sizes entry arch precision schema budget
      output standalone opencl dialect =
    harness ?jobs ?metrics trace @@ fun () ->
    let problem = or_die (resolve_problem expr sizes entry) in
    let r =
      or_die_gen
        (Cogent.Driver.run (mk_ctx ?schema arch precision budget) problem)
    in
    let dialect = if opencl then Cogent.Codegen.Opencl else dialect in
    let plan = r.Cogent.Driver.plan in
    let src =
      match (dialect, standalone) with
      | Cogent.Codegen.Cuda, false -> Cogent.Driver.cuda_source r
      | Cogent.Codegen.Cuda, true -> Cogent.Codegen.emit_standalone plan
      | Cogent.Codegen.Opencl, false -> Cogent.Codegen.emit_opencl plan
      | Cogent.Codegen.Opencl, true ->
          or_die (Error "--standalone is not available for the OpenCL dialect")
      | Cogent.Codegen.C_host, false -> Cogent.Codegen.emit_c plan
      | Cogent.Codegen.C_host, true -> Cogent.Codegen.emit_c_standalone plan
    in
    match output with
    | None -> print_string src
    | Some file ->
        let oc = open_out file in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" file (String.length src)
  in
  let standalone =
    Arg.(value & flag & info [ "standalone" ]
           ~doc:"Emit a self-contained translation unit with a main(): a \
                 benchmarking .cu for the CUDA dialect, a runnable .c (prints \
                 the output tensor) for the C dialect.")
  in
  let opencl =
    Arg.(value & flag & info [ "opencl" ]
           ~doc:"Deprecated alias for --dialect opencl.")
  in
  let dialect =
    let parse = function
      | "cuda" -> Ok Cogent.Codegen.Cuda
      | "opencl" | "cl" -> Ok Cogent.Codegen.Opencl
      | "c" | "c-host" -> Ok Cogent.Codegen.C_host
      | s -> Error (`Msg (Printf.sprintf "unknown dialect %S (cuda|opencl|c)" s))
    in
    let print fmt d =
      Format.pp_print_string fmt (Cogent.Codegen.dialect_name d)
    in
    Arg.(value & opt (conv (parse, print)) Cogent.Codegen.Cuda
         & info [ "dialect" ] ~docv:"DIALECT"
             ~doc:"Output dialect: cuda, opencl, or c (a host-C translation \
                   unit that emulates the thread grid with loops and runs on \
                   the CPU).")
  in
  Cmd.v
    (Cmd.info "gen" ~version
       ~doc:"Generate CUDA, OpenCL or host-C for a tensor contraction")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ expr_arg
          $ sizes_arg $ entry_arg $ arch_arg $ precision_arg $ schema_arg
          $ budget_arg $ output_arg $ standalone $ opencl $ dialect)

(* ---- plan ---- *)

let plan_cmd =
  let run trace metrics jobs expr sizes entry arch precision schema budget top
      =
    harness ?jobs ?metrics trace @@ fun () ->
    let problem = or_die (resolve_problem expr sizes entry) in
    let r =
      or_die_gen
        (Cogent.Driver.run (mk_ctx ?schema arch precision budget) ~topk:top
           problem)
    in
    let s = r.Cogent.Driver.prune_stats in
    Format.printf "problem:     %a@." Problem.pp problem;
    Format.printf
      "search:      naive space %.3e, enumerated %d, kept %d, bound-aborted \
       %d%s@."
      r.Cogent.Driver.naive_space s.Cogent.Prune.enumerated s.Cogent.Prune.kept
      r.Cogent.Driver.bound_aborted
      (if r.Cogent.Driver.degraded then " (budget-truncated)" else "");
    let plan = r.Cogent.Driver.plan in
    (* Predicted overlap saving: the same configuration re-priced under the
       classic schema (and under the best pipelined one when classic won the
       race but a pipelined schema was feasible). *)
    let sim_schema sc = simulate (Cogent.Plan.with_schema sc plan) in
    (match plan.Cogent.Plan.schema with
    | Schema.Classic -> (
        let pipelined =
          List.filter Schema.pipelined
            (Cogent.Plan.feasible_schemas ~arch ~precision
               plan.Cogent.Plan.mapping)
        in
        match pipelined with
        | [] -> Format.printf "schema:      classic@."
        | scs ->
            let best =
              List.fold_left
                (fun acc sc -> Float.max acc (sim_schema sc))
                0.0 scs
            in
            Format.printf
              "schema:      classic (pipelined predicted %.2fx, not taken)@."
              (best /. simulate plan))
    | sc ->
        Format.printf
          "schema:      %s (predicted %.2fx over classic staging)@."
          (Schema.to_string sc)
          (simulate plan /. sim_schema Schema.Classic));
    Format.printf "selected:    %a@.@." Cogent.Plan.pp plan;
    Format.printf "top %d configurations by model cost:@." top;
    List.iteri
      (fun k (m, cost) ->
        if k < top then
          let plan =
            Cogent.Plan.make ~problem ~mapping:m ~arch ~precision
          in
          Format.printf "  #%-2d cost %.3e  sim %7.0f GFLOPS  %a@." (k + 1)
            cost (simulate plan) Cogent.Mapping.pp m)
      r.Cogent.Driver.ranked
  in
  let top =
    Arg.(value & opt int 5 & info [ "n"; "top" ] ~docv:"N"
           ~doc:"How many configurations to display.")
  in
  Cmd.v
    (Cmd.info "plan" ~version
       ~doc:"Inspect the configuration search for a contraction")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ expr_arg
          $ sizes_arg $ entry_arg $ arch_arg $ precision_arg $ schema_arg
          $ budget_arg $ top)

(* ---- explain ---- *)

let explain_cmd =
  let run trace metrics jobs pos_expr expr sizes entry arch precision top json =
    harness ?jobs ?metrics trace @@ fun () ->
    let expr = match pos_expr with Some _ -> pos_expr | None -> expr in
    let problem = or_die (resolve_problem expr sizes entry) in
    let e =
      or_die_gen ~stats_table:true
        (Tc_explain.Explain.analyze (mk_ctx arch precision None) ~top problem)
    in
    if json then
      print_endline (Tc_obs.Json.to_string_pretty (Tc_explain.Explain.to_json e))
    else print_string (Tc_explain.Explain.render e)
  in
  let pos_expr =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPR"
           ~doc:"The contraction (alternative to --expr).")
  in
  let top =
    Arg.(value & opt int 3 & info [ "n"; "top" ] ~docv:"N"
           ~doc:"How many candidates to break down.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the breakdown as JSON instead of text.")
  in
  Cmd.v
    (Cmd.info "explain" ~version
       ~doc:"Explain the cost model's choice: prune audit, per-tensor DRAM \
             charges, occupancy limiter, simulator roofline")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ pos_expr
          $ expr_arg $ sizes_arg $ entry_arg $ arch_arg $ precision_arg $ top
          $ json)

(* ---- profile ---- *)

let profile_cmd =
  let run metrics jobs pos_expr expr sizes entry arch precision json trace =
    harness ?jobs ?metrics None @@ fun () ->
    let expr = match pos_expr with Some _ -> pos_expr | None -> expr in
    let problem = or_die (resolve_problem expr sizes entry) in
    let r = or_die_gen (Cogent.Driver.run (mk_ctx arch precision None) problem) in
    let prof = Tc_profile.Profile.profile r.Cogent.Driver.plan in
    (match trace with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Tc_profile.Profile.timeline_chrome prof);
        close_out oc;
        Printf.eprintf "cogent: wrote simulated timeline to %s\n%!" path);
    if json then
      print_endline
        (Tc_obs.Json.to_string_pretty (Tc_profile.Profile.to_json prof))
    else print_string (Tc_profile.Profile.render prof)
  in
  let pos_expr =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPR"
           ~doc:"The contraction (alternative to --expr).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the profile report as JSON instead of text.")
  in
  let timeline =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a timeline of the simulated execution (per-SM block \
                 waves, GMEM->SMEM staging vs compute phases) to $(docv) as \
                 Chrome trace_event JSON (chrome://tracing, Perfetto).")
  in
  Cmd.v
    (Cmd.info "profile" ~version
       ~doc:"Profile the selected plan on the simulated hardware: \
             interpreter-measured counters cross-validated against the \
             simulator's exact transaction model and the Algorithm-3 cost \
             estimate")
    Term.(const run $ metrics_arg $ jobs_arg $ pos_expr $ expr_arg
          $ sizes_arg $ entry_arg $ arch_arg $ precision_arg $ json
          $ timeline)

(* ---- bench ---- *)

let bench_cmd =
  let run trace metrics jobs expr sizes entry arch precision json_file =
    harness ?jobs ?metrics trace @@ fun () ->
    let t0 = Sys.time () in
    let problem = or_die (resolve_problem expr sizes entry) in
    let cg_plan =
      (or_die_gen (Cogent.Driver.run (mk_ctx arch precision None) problem))
        .Cogent.Driver.plan
    in
    let cg_sim = Tc_sim.Simkernel.run cg_plan in
    let nw_plan = Tc_nwchem.Nwgen.plan ~arch ~precision problem in
    let nw_sim = Tc_sim.Simkernel.run nw_plan in
    let ts = Tc_ttgt.Ttgt.run_ctx (mk_ctx arch precision None) problem in
    let cg = cg_sim.Tc_sim.Simkernel.gflops
    and nw = nw_sim.Tc_sim.Simkernel.gflops
    and tsg = ts.Tc_ttgt.Ttgt.gflops in
    Format.printf "%a on %s (%a)@." Problem.pp problem arch.Arch.name
      Precision.pp precision;
    Format.printf "  COGENT        %8.0f GFLOPS@." cg;
    Format.printf "  NWChem-style  %8.0f GFLOPS  (%.2fx)@." nw (cg /. nw);
    Format.printf "  TAL_SH-style  %8.0f GFLOPS  (%.2fx)@." tsg (cg /. tsg);
    match json_file with
    | None -> ()
    | Some path ->
        let strategy name (sim : Tc_sim.Simkernel.result) plan =
          {
            Tc_profile.Benchrep.strategy = name;
            metrics =
              [
                ("gflops", sim.Tc_sim.Simkernel.gflops);
                ("transactions", sim.Tc_sim.Simkernel.transactions);
                ("cost", plan.Cogent.Plan.cost);
              ];
            config =
              Some
                (Format.asprintf "%a" Cogent.Mapping.pp
                   plan.Cogent.Plan.mapping);
          }
        in
        let entry_name =
          match entry with
          | Some n -> n
          | None ->
              Format.asprintf "%a" Tc_expr.Ast.pp
                (Problem.info problem).Classify.original
        in
        let doc =
          {
            Tc_profile.Benchrep.target = "bench";
            wall_s = Sys.time () -. t0;
            jobs = Tc_par.Pool.default_jobs ();
            entries =
              [
                {
                  Tc_profile.Benchrep.name = entry_name;
                  expr =
                    Format.asprintf "%a" Tc_expr.Ast.pp
                      (Problem.info problem).Classify.original;
                  arch = arch.Arch.name;
                  precision = Precision.to_string precision;
                  strategies =
                    [
                      strategy "cogent" cg_sim cg_plan;
                      strategy "nwchem" nw_sim nw_plan;
                      {
                        Tc_profile.Benchrep.strategy = "talsh";
                        metrics = [ ("gflops", tsg) ];
                        config = None;
                      };
                    ];
                };
              ];
          }
        in
        Tc_profile.Benchrep.write ~path doc;
        Printf.printf "wrote %s\n" path
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the comparison as a cogent-bench/1 JSON record \
                 to $(docv) — the same per-strategy schema the bench \
                 harness's BENCH_<target>.json files use.")
  in
  Cmd.v
    (Cmd.info "bench" ~version
       ~doc:"Compare execution strategies on one contraction")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ expr_arg
          $ sizes_arg $ entry_arg $ arch_arg $ precision_arg $ json_file)

(* ---- serve ---- *)

let serve_cmd =
  let run trace metrics jobs requests store arch precision budget json
      flight_dump audit_ledger flight_size =
    harness ?jobs ?metrics trace @@ fun () ->
    let t0 = Sys.time () in
    let ctx = mk_ctx ?jobs arch precision budget in
    let requests =
      match requests with
      | Some f -> f
      | None -> or_die (Error "missing --requests FILE")
    in
    let items = or_die (Tc_serve.Request.load_file ~default:ctx requests) in
    let audit = Option.map (fun _ -> Tc_audit.Audit.collector ()) audit_ledger in
    let session =
      or_die
        (Tc_serve.Serve.open_session ?store ?audit
           ?flight_capacity:flight_size ctx)
    in
    let report =
      Fun.protect
        ~finally:(fun () -> Tc_serve.Serve.close_session session)
        (fun () -> Tc_serve.Serve.run session items)
    in
    (match (audit_ledger, audit) with
    | Some dir, Some c ->
        let samples = Tc_audit.Audit.samples c in
        Tc_audit.Ledger.save ~dir samples;
        Printf.eprintf "cogent: wrote audit ledger (%d samples) to %s\n%!"
          (List.length samples)
          (Tc_audit.Ledger.file ~dir)
    | _ -> ());
    if json then
      print_endline
        (Tc_obs.Json.to_string_pretty
           (Tc_profile.Benchrep.to_json
              (Tc_serve.Serve.report_doc ~wall_s:(Sys.time () -. t0) report)))
    else
      List.iter
        (fun (r : Tc_serve.Serve.response) ->
          match r.Tc_serve.Serve.result with
          | Ok o ->
              Format.printf "req-%03d  %-24s -> %-6s  %10.3f ms  %8.0f GFLOPS%s%s@."
                r.Tc_serve.Serve.id r.Tc_serve.Serve.expr
                (Tc_serve.Serve.engine_name o.Tc_serve.Serve.engine)
                ((match o.Tc_serve.Serve.engine with
                 | Tc_serve.Serve.Cogent_kernel -> o.Tc_serve.Serve.cogent_time_s
                 | Tc_serve.Serve.Ttgt_pipeline -> o.Tc_serve.Serve.ttgt_time_s)
                *. 1e3)
                o.Tc_serve.Serve.gflops
                (if o.Tc_serve.Serve.cached then "  [cached]" else "")
                (if o.Tc_serve.Serve.degraded then "  [degraded]" else "")
          | Error e ->
              Format.printf "req-%03d  %-24s -> error: %a@." r.Tc_serve.Serve.id
                r.Tc_serve.Serve.expr Tc_serve.Serve.pp_error e)
        report.Tc_serve.Serve.responses;
    (* Everything below goes to stderr, strictly after the parallel
       section (DESIGN.md, "Parallel runtime"): generation-failure
       notices (buffered by [Serve.run]), the session counters — which
       differ cold vs warm store while the report above stays
       byte-identical (modulo wall_s/jobs) — and the per-batch metrics
       snapshot. *)
    List.iter
      (fun n -> Printf.eprintf "cogent: %s\n" n)
      report.Tc_serve.Serve.notices;
    prerr_string (Tc_serve.Serve.render_summary report.Tc_serve.Serve.summary);
    Format.eprintf "@.batch metrics@.%a@."
      Tc_obs.Metrics.pp
      (Tc_obs.Metrics.snapshot Tc_obs.Metrics.global);
    Format.pp_print_flush Format.err_formatter ();
    match flight_dump with
    | None -> ()
    | Some path ->
        Tc_obs.Flightrec.dump ~path Tc_obs.Flightrec.global;
        Printf.eprintf "cogent: wrote flight recorder (%d entries) to %s\n%!"
          (List.length (Tc_obs.Flightrec.entries Tc_obs.Flightrec.global))
          path
  in
  let requests =
    Arg.(value & opt (some string) None & info [ "requests" ] ~docv:"FILE"
           ~doc:"JSONL workload: one request object per line, e.g. \
                 {\"expr\":\"abcd-aebf-dfce\",\"sizes\":\"a=48,b=48,...\"} \
                 with optional \"arch\" and \"precision\" overrides.")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Plan-store directory: cached plans are loaded from it \
                 before the batch and flushed back after, so a warm \
                 restart re-generates nothing.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the per-request report to stdout as a cogent-bench/1 \
                 document instead of text (session counters still go to \
                 stderr).")
  in
  let flight_dump =
    Arg.(value & opt (some string) None & info [ "flight-dump" ] ~docv:"FILE"
           ~doc:"After the batch, dump the flight recorder — the last N \
                 per-request summaries (id, cache key, dispatch, error, \
                 timings) — to $(docv) as JSONL.  The post-mortem record \
                 for batches with Generation/Crashed errors.")
  in
  let audit_ledger =
    Arg.(value & opt (some string) None & info [ "audit-ledger" ] ~docv:"DIR"
           ~doc:"Attach the cost-model accuracy collector and write the \
                 batch's samples to $(docv)/audit.jsonl (cogent-audit/1): \
                 per request, the Algorithm-3 transaction estimate vs the \
                 interpreter-measured ground truth, both engines' \
                 predicted times, and the dispatch regret.  Aggregate with \
                 the audit subcommand.  The ledger is deterministic: \
                 byte-identical at any --jobs and across cold/warm stores.")
  in
  let flight_size =
    Arg.(value & opt (some int) None & info [ "flight-size" ] ~docv:"N"
           ~doc:"Resize the flight-recorder ring to the last $(docv) \
                 requests (default 128).")
  in
  Cmd.v
    (Cmd.info "serve" ~version
       ~doc:"Serve a batched workload of contraction requests: dedup by \
             plan key, search in parallel, dispatch each request to the \
             COGENT kernel or the TTGT pipeline by predicted time")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ requests $ store
          $ arch_arg $ precision_arg $ budget_arg $ json $ flight_dump
          $ audit_ledger $ flight_size)

(* ---- audit ---- *)

let audit_cmd =
  let run metrics jobs ledger json diff =
    harness ?jobs ?metrics None @@ fun () ->
    let samples = or_die (Tc_audit.Ledger.load ~dir:ledger) in
    match diff with
    | Some baseline_path ->
        (* The CI drift gate: compare this ledger's aggregation against a
           checked-in cogent-bench/1 baseline under the audit tolerances
           (counts and pred_ms_sum exact; error quantiles Lower_better). *)
        let baseline = or_die (Tc_profile.Benchrep.read ~path:baseline_path) in
        let deltas =
          Tc_profile.Benchrep.diff ~tolerances:Tc_audit.Audit.tolerances
            ~baseline (Tc_audit.Audit.doc samples)
        in
        print_string (Tc_profile.Benchrep.render_diff ~target:"audit" deltas);
        if Tc_profile.Benchrep.regressions deltas <> [] then exit 1
    | None ->
        if json then
          (* wall_s/jobs stay 0: the JSON document is a pure function of
             the ledger, byte-identical across job counts and replays. *)
          print_endline
            (Tc_obs.Json.to_string_pretty
               (Tc_profile.Benchrep.to_json (Tc_audit.Audit.doc samples)))
        else print_string (Tc_audit.Audit.render samples)
  in
  let ledger =
    Arg.(value & opt string "audit-ledger" & info [ "ledger" ] ~docv:"DIR"
           ~doc:"The cogent-audit/1 ledger directory to aggregate (as \
                 written by serve --audit-ledger or the accuracy bench \
                 target).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the aggregation as a cogent-bench/1 document (target \
                 audit) instead of the human-readable calibration report.  \
                 A pure function of the ledger: byte-identical at any job \
                 count.")
  in
  let diff =
    Arg.(value & opt (some string) None & info [ "diff" ] ~docv:"BASELINE"
           ~doc:"Drift gate: diff this ledger's aggregation against the \
                 cogent-bench/1 document $(docv) under the audit \
                 tolerances and exit 1 on any regression (calibration \
                 error drift, dispatch flip, new regret).")
  in
  Cmd.v
    (Cmd.info "audit" ~version
       ~doc:"Aggregate a cost-model accuracy ledger: error quantiles, \
             dispatch mix, regret account, CI drift gate")
    Term.(const run $ metrics_arg $ jobs_arg $ ledger $ json $ diff)

(* ---- triples ---- *)

let triples_cmd =
  let run trace metrics jobs arch nh np =
    harness ?jobs ?metrics trace @@ fun () ->
    Format.printf
      "CCSD(T) triples sweep estimate at nh=%d, np=%d on %s (FP64):@." nh np
      arch.Arch.name;
    List.iter
      (fun sw ->
        Format.printf "  %-14s %10.1f ms  (%.0f GFLOPS)@."
          sw.Tc_ccsdt.Triples.strategy
          (sw.Tc_ccsdt.Triples.time_s *. 1e3)
          sw.Tc_ccsdt.Triples.gflops)
      (Tc_ccsdt.Triples.sweep_estimate arch Precision.FP64 ~nh ~np);
    if nh <= 4 && np <= 6 then begin
      let sys = Tc_ccsdt.Triples.make ~nh ~np () in
      Format.printf "@.E(T) at this (toy) size: %.10f@."
        (Tc_ccsdt.Triples.correction
           ~method_:Tc_ccsdt.Triples.Cogent_plans sys)
    end
  in
  let nh =
    Arg.(value & opt int 16 & info [ "nh" ] ~docv:"N"
           ~doc:"Occupied orbitals (a,b,c extents).")
  in
  let np =
    Arg.(value & opt int 48 & info [ "np" ] ~docv:"N"
           ~doc:"Virtual orbitals (d,e,f extents).")
  in
  Cmd.v
    (Cmd.info "triples" ~version
       ~doc:"Estimate a CCSD(T) triples sweep; compute E(T) at toy sizes")
    Term.(const run $ trace_arg $ metrics_arg $ jobs_arg $ arch_arg $ nh $ np)

(* ---- suite ---- *)

let suite_cmd =
  let run metrics jobs =
    harness ?jobs ?metrics None @@ fun () ->
    Format.printf "%-3s %-8s %-12s %-18s %s@." "#" "name" "group" "contraction"
      "sizes";
    List.iter
      (fun e ->
        Format.printf "%-3d %-8s %-12s %-18s %s@." e.Tc_tccg.Suite.id
          e.Tc_tccg.Suite.name
          (Tc_tccg.Suite.group_to_string e.Tc_tccg.Suite.group)
          e.Tc_tccg.Suite.expr
          (String.concat ","
             (List.map
                (fun (i, n) -> Printf.sprintf "%c=%d" i n)
                e.Tc_tccg.Suite.sizes)))
      Tc_tccg.Suite.all
  in
  Cmd.v (Cmd.info "suite" ~version ~doc:"List the TCCG benchmark entries")
    Term.(const run $ metrics_arg $ jobs_arg)

let main =
  let doc = "COGENT: a code generator for high-performance tensor contractions on GPUs" in
  Cmd.group (Cmd.info "cogent" ~version ~doc)
    [
      gen_cmd; plan_cmd; explain_cmd; profile_cmd; bench_cmd; serve_cmd;
      audit_cmd; triples_cmd; suite_cmd;
    ]

let () = exit (Cmd.eval main)
