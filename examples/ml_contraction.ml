(* Tensor-times-matrix contractions from machine learning (Tucker-style
   mode products), the first group of the TCCG suite.

   This example demonstrates representative-size-driven specialization
   (§IV-B): the same contraction is planned at three problem sizes, a
   runtime would pick the kernel generated for the nearest representative.
   It also cross-checks the generated schedule numerically at a small size
   and shows where the TTGT strategy is genuinely competitive (large
   GEMM-friendly TTMs). *)

open Tc_tensor
open Tc_gpu
open Tc_expr

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let () =
  let arch = Arch.v100 in
  let expr = "abc-bda-dc" in
  Format.printf "mode-2 tensor-times-matrix: %s (C[a,b,c] = A[b,d,a] * M[d,c])@.@." expr;

  (* One kernel per representative size: tile choices adapt. *)
  Format.printf "representative-size specialization on %s:@." arch.Arch.name;
  List.iter
    (fun (label, sizes) ->
      let problem = Problem.of_string_exn expr ~sizes in
      let r = Cogent.Driver.generate_exn ~arch ~measure:simulate problem in
      Format.printf "  %-22s -> %a  (%.0f GFLOPS)@." label Cogent.Mapping.pp
        r.Cogent.Driver.plan.Cogent.Plan.mapping
        (simulate r.Cogent.Driver.plan))
    [
      ("tall (a=512, d=16)", [ ('a', 512); ('b', 64); ('c', 64); ('d', 16) ]);
      ("square (all 256)", [ ('a', 256); ('b', 256); ('c', 256); ('d', 256) ]);
      ("wide (c=1024, b=16)", [ ('a', 64); ('b', 16); ('c', 1024); ('d', 64) ]);
    ];

  (* Strategy comparison at the TCCG benchmark size. *)
  let e = Option.get (Tc_tccg.Suite.find "ml_1") in
  let problem = Tc_tccg.Suite.problem e in
  let cg = simulate (Cogent.Driver.best_plan ~arch ~measure:simulate problem) in
  let ts =
    (Tc_ttgt.Ttgt.run_ctx (Cogent.Ctx.make ~arch ()) problem).Tc_ttgt.Ttgt.gflops
  in
  Format.printf
    "@.at the TCCG size (312^3 x 296): COGENT %.0f GFLOPS, TAL_SH %.0f GFLOPS@."
    cg ts;
  Format.printf
    "(large GEMM-friendly TTMs are where the TTGT approach shines — the \
     direct@. generator wins on the transpose-heavy and odd-layout cases \
     instead)@.";

  (* Numerical check of the generated schedule at a small size. *)
  let small =
    Problem.of_string_exn expr
      ~sizes:[ ('a', 10); ('b', 7); ('c', 6); ('d', 5) ]
  in
  let a = Dense.random ~seed:5 (Problem.lhs_shape small) in
  let m = Dense.random ~seed:6 (Problem.rhs_shape small) in
  let expected = Contract_ref.contract ~out_indices:[ 'a'; 'b'; 'c' ] a m in
  let got = Cogent.Interp.execute (Cogent.Driver.best_plan small) ~lhs:a ~rhs:m in
  Format.printf "@.schedule validation at 10x7x6 (d=5): max |diff| = %.2e@."
    (Dense.max_abs_diff expected got)
