(* CCSD(T) triples workload, the paper's motivating application (§I).

   The perturbative-triples correction in coupled-cluster theory spends its
   time in 18 contractions of the form t3 += t2 * v2 — 6D output, 4D
   inputs, one contraction index.  This example plans all 18 kernels the
   way a quantum-chemistry runtime would, prints the chosen configurations,
   and compares the three execution strategies of the paper's evaluation
   (COGENT direct, NWChem-style fixed direct, TAL_SH TTGT).

   Run with: dune exec examples/ccsd_t.exe *)

open Tc_gpu

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let () =
  let arch = Arch.v100 in
  Format.printf
    "CCSD(T) triples on %s (double precision): 9 SD1 + 9 SD2 kernels@.@."
    arch.Arch.name;
  Format.printf "%-8s %-18s %9s %9s %9s   %s@." "kernel" "contraction" "COGENT"
    "NWChem" "TAL_SH" "selected configuration";
  let total_time strategy =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0 strategy
  in
  let cogent_times = ref [] and nwchem_times = ref [] and talsh_times = ref [] in
  List.iter
    (fun e ->
      let problem = Tc_tccg.Suite.problem e in
      let r = Cogent.Driver.generate_exn ~arch ~measure:simulate problem in
      let plan = r.Cogent.Driver.plan in
      let cg_sim = Tc_sim.Simkernel.run plan in
      let nw_plan = Tc_nwchem.Nwgen.plan ~arch problem in
      let nw_sim = Tc_sim.Simkernel.run nw_plan in
      let ts = Tc_ttgt.Ttgt.run_ctx (Cogent.Ctx.make ~arch ()) problem in
      cogent_times := (e.Tc_tccg.Suite.name, cg_sim.Tc_sim.Simkernel.time_s) :: !cogent_times;
      nwchem_times := (e.Tc_tccg.Suite.name, nw_sim.Tc_sim.Simkernel.time_s) :: !nwchem_times;
      talsh_times := (e.Tc_tccg.Suite.name, ts.Tc_ttgt.Ttgt.time_s) :: !talsh_times;
      Format.printf "%-8s %-18s %9.0f %9.0f %9.0f   %a@." e.Tc_tccg.Suite.name
        e.Tc_tccg.Suite.expr cg_sim.Tc_sim.Simkernel.gflops
        nw_sim.Tc_sim.Simkernel.gflops ts.Tc_ttgt.Ttgt.gflops
        Cogent.Mapping.pp plan.Cogent.Plan.mapping)
    (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd1
    @ Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd2);
  let cg = total_time !cogent_times
  and nw = total_time !nwchem_times
  and ts = total_time !talsh_times in
  Format.printf
    "@.one triples sweep (all 18 kernels): COGENT %.1f ms | NWChem %.1f ms | \
     TAL_SH %.1f ms@."
    (cg *. 1e3) (nw *. 1e3) (ts *. 1e3);
  Format.printf "COGENT speedup: %.2fx over NWChem, %.2fx over TAL_SH@."
    (nw /. cg) (ts /. cg)
