(* The cost-model accuracy target: prediction-vs-measurement calibration
   tables for the figure suites plus a serving replay, persisted both as
   BENCH_accuracy.json (the harness report) and as a cogent-audit/1
   ledger under audit-ledger/ (the CI drift gate's input:
   `cogent audit --ledger audit-ledger --diff bench/ACCURACY_BASELINE.json`).

   Every sample is a deterministic model evaluation — Algorithm-3
   transactions vs the interpreter-measured ground truth, simulator vs
   TTGT predicted times, dispatch regret at the request's own extents —
   so the ledger and the report are bit-identical at any COGENT_JOBS
   (samples are collected in suite order after the parallel sections). *)

module Benchrep = Tc_profile.Benchrep
module Audit = Tc_audit.Audit

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops
let ledger_dir = "audit-ledger"

(* A fixed cross-section of the TCCG suite — the first two entries of
   every group — keeps the target a few seconds per (arch, precision)
   while still exercising each contraction family's calibration.  The
   full-suite picture comes from the serve bench replay in CI. *)
let tccg_subset =
  let two g =
    match Tc_tccg.Suite.by_group g with a :: b :: _ -> [ a; b ] | l -> l
  in
  List.concat_map two
    [
      Tc_tccg.Suite.Ml; Tc_tccg.Suite.Ao_mo; Tc_tccg.Suite.Ccsd;
      Tc_tccg.Suite.Ccsd_t_sd1; Tc_tccg.Suite.Ccsd_t_sd2;
    ]

(* One suite = one (arch, precision) sweep over a fixed entry list.  The
   plan searches and counter replays fan out on the pool (Audit.sample is
   a pure model evaluation); sample order is entry order regardless. *)
let tccg_suite ~suite ~arch ~precision entries =
  let ctx = Cogent.Ctx.make ~arch ~precision ~measure:simulate () in
  Tc_par.Pool.map
    (fun e ->
      let problem = Tc_tccg.Suite.problem e in
      match Cogent.Driver.run ctx problem with
      | Error _ -> None
      | Ok r ->
          Some
            (Audit.sample ~suite ~request:e.Tc_tccg.Suite.name
               ~key:(Cogent.Cache.key ctx problem)
               ~ctx ~degraded:r.Cogent.Driver.degraded r.Cogent.Driver.plan))
    entries
  |> List.filter_map Fun.id

(* The serving replay: pairs of requests that share a power-of-two size
   class, so the second request of each pair is served by the first's
   cached plan and dispatched on the representative's predictions — the
   only road to nonzero regret, which this suite therefore watches. *)
let serve_requests =
  let req id expr sizes =
    Ok
      {
        Tc_serve.Request.id;
        expr;
        sizes = Tc_expr.Sizes.of_list sizes;
        arch = Tc_gpu.Arch.v100;
        precision = Tc_gpu.Precision.FP64;
      }
  in
  [
    req 1 "abc-bda-dc" [ ('a', 312); ('b', 312); ('c', 312); ('d', 296) ];
    req 2 "abc-bda-dc" [ ('a', 300); ('b', 300); ('c', 300); ('d', 280) ];
    req 3 "abcd-ebcd-ae"
      [ ('a', 72); ('b', 72); ('c', 72); ('d', 72); ('e', 72) ];
    req 4 "abcd-ebcd-ae"
      [ ('a', 68); ('b', 68); ('c', 68); ('d', 68); ('e', 68) ];
    req 5 "abcd-feab-cdef"
      [ ('a', 40); ('b', 40); ('c', 40); ('d', 40); ('e', 40); ('f', 40) ];
    req 6 "abcd-feab-cdef"
      [ ('a', 36); ('b', 36); ('c', 36); ('d', 36); ('e', 36); ('f', 36) ];
  ]

let serve_suite () =
  let ctx = Cogent.Ctx.make ~measure:simulate () in
  let collector = Audit.collector () in
  let session =
    match Tc_serve.Serve.open_session ~audit:collector ctx with
    | Ok s -> s
    | Error m -> failwith ("accuracy bench: " ^ m)
  in
  let report = Tc_serve.Serve.run session serve_requests in
  List.iter (Printf.printf "  %s\n") report.Tc_serve.Serve.notices;
  Audit.samples collector

let run () =
  Report.section
    "Cost-model accuracy: Algorithm-3 predictions vs measured counters";
  let samples =
    List.concat
      [
        tccg_suite ~suite:"fig4" ~arch:Tc_gpu.Arch.p100
          ~precision:Tc_gpu.Precision.FP64 tccg_subset;
        tccg_suite ~suite:"fig5" ~arch:Tc_gpu.Arch.v100
          ~precision:Tc_gpu.Precision.FP64 tccg_subset;
        tccg_suite ~suite:"fig7" ~arch:Tc_gpu.Arch.v100
          ~precision:Tc_gpu.Precision.FP32
          (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd2);
      ]
  in
  (* The global audit instruments move strictly in sample order, after
     the parallel sections (the serve suite records its own inside
     Serve.run, likewise in request order). *)
  List.iter Audit.record_sample samples;
  let samples = samples @ serve_suite () in
  Tc_audit.Ledger.save ~dir:ledger_dir samples;
  Printf.printf "[ledger] wrote %s (%d samples)\n\n"
    (Tc_audit.Ledger.file ~dir:ledger_dir)
    (List.length samples);
  print_string (Audit.render samples);
  Audit.entries samples
