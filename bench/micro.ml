(* Bechamel micro-benchmarks of the code generator itself: the paper's
   headline operational claim is "significantly reduced code generation
   time" versus hours of auto-tuning, so we measure the cost of every stage
   of COGENT's pipeline on real suite entries. *)

open Bechamel
open Toolkit

let problem_eq1 = Tc_tccg.Suite.problem (Option.get (Tc_tccg.Suite.find "ccsd_1"))
let problem_sd2 = Tc_tccg.Suite.problem Tc_tccg.Suite.sd2_1

(* A 64-cube GEMM with real operands for the host-side execution paths
   (the plan interpreter's inner product and the reference einsum). *)
let interp_case =
  let open Tc_tensor in
  let problem =
    Tc_expr.Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]
  in
  let info = Tc_expr.Problem.info problem in
  let orig = info.Tc_expr.Classify.original in
  let sizes = Tc_expr.Sizes.of_list [ ('a', 64); ('b', 64); ('c', 64) ] in
  let shape_of indices = Shape.of_indices ~sizes indices in
  let lhs = Dense.random ~seed:11 (shape_of orig.Tc_expr.Ast.lhs.Tc_expr.Ast.indices) in
  let rhs = Dense.random ~seed:12 (shape_of orig.Tc_expr.Ast.rhs.Tc_expr.Ast.indices) in
  (problem, info, lhs, rhs)

let staged_tests =
  let enumerate problem () = ignore (Cogent.Enumerate.enumerate problem) in
  let full problem () = ignore (Cogent.Driver.generate_exn problem) in
  let prune problem =
    let configs = Cogent.Enumerate.enumerate problem in
    fun () ->
      ignore
        (Cogent.Prune.filter Tc_gpu.Arch.v100 Tc_gpu.Precision.FP64 problem
           configs)
  in
  let cost problem =
    let configs = Cogent.Enumerate.enumerate problem in
    fun () ->
      ignore (Cogent.Cost.rank Tc_gpu.Precision.FP64 problem configs)
  in
  let candidates problem () =
    let c = Cogent.Candidates.create problem in
    Cogent.Candidates.iter c ignore
  in
  let pipeline problem () =
    ignore
      (Cogent.Pipeline.search ~topk:8 Tc_gpu.Arch.v100 Tc_gpu.Precision.FP64
         problem)
  in
  let codegen problem =
    let plan = Cogent.Driver.best_plan problem in
    fun () -> ignore (Cogent.Codegen.emit plan)
  in
  (* The double-buffered lowering restructures the K-loop (prologue +
     rotation), so its lower/emit cost is tracked separately from the
     classic schema's. *)
  let pipelined problem =
    match
      Cogent.Driver.run
        (Cogent.Ctx.make ~arch:Tc_gpu.Arch.a100
           ~schema:Tc_gpu.Schema.Pipelined ())
        problem
    with
    | Ok t -> t.Cogent.Driver.plan
    | Error e -> failwith (Cogent.Driver.error_to_string e)
  in
  let lower_pipelined problem =
    let plan = pipelined problem in
    fun () -> ignore (Cogent.Codegen.lower plan)
  in
  let emit_pipelined problem =
    let plan = pipelined problem in
    fun () -> ignore (Cogent.Codegen.emit plan)
  in
  let simulate problem =
    let plan = Cogent.Driver.best_plan problem in
    fun () -> ignore (Tc_sim.Simkernel.run plan)
  in
  let interp_execute =
    let problem, _, lhs, rhs = interp_case in
    let plan = Cogent.Driver.best_plan problem in
    fun () -> ignore (Cogent.Interp.execute plan ~lhs ~rhs)
  in
  let contract_ref =
    let _, info, lhs, rhs = interp_case in
    fun () ->
      ignore
        (Tc_tensor.Contract_ref.contract
           ~out_indices:info.Tc_expr.Classify.externals lhs rhs)
  in
  [
    Test.make ~name:"enumerate/eq1" (Staged.stage (enumerate problem_eq1));
    Test.make ~name:"enumerate/sd2_1" (Staged.stage (enumerate problem_sd2));
    Test.make ~name:"prune/eq1" (Staged.stage (prune problem_eq1));
    Test.make ~name:"cost-rank/eq1" (Staged.stage (cost problem_eq1));
    Test.make ~name:"candidates-stream/eq1"
      (Staged.stage (candidates problem_eq1));
    Test.make ~name:"candidates-stream/sd2_1"
      (Staged.stage (candidates problem_sd2));
    Test.make ~name:"pipeline-search/eq1" (Staged.stage (pipeline problem_eq1));
    Test.make ~name:"pipeline-search/sd2_1"
      (Staged.stage (pipeline problem_sd2));
    Test.make ~name:"codegen-emit/eq1" (Staged.stage (codegen problem_eq1));
    Test.make ~name:"codegen-emit/sd2_1" (Staged.stage (codegen problem_sd2));
    Test.make ~name:"lower-pipelined/eq1"
      (Staged.stage (lower_pipelined problem_eq1));
    Test.make ~name:"lower-pipelined/sd2_1"
      (Staged.stage (lower_pipelined problem_sd2));
    Test.make ~name:"emit-pipelined/eq1"
      (Staged.stage (emit_pipelined problem_eq1));
    Test.make ~name:"emit-pipelined/sd2_1"
      (Staged.stage (emit_pipelined problem_sd2));
    Test.make ~name:"simulate/sd2_1" (Staged.stage (simulate problem_sd2));
    Test.make ~name:"interp-execute/gemm64" (Staged.stage interp_execute);
    Test.make ~name:"contract-ref/gemm64" (Staged.stage contract_ref);
    Test.make ~name:"generate-end-to-end/eq1" (Staged.stage (full problem_eq1));
    Test.make ~name:"generate-end-to-end/sd2_1" (Staged.stage (full problem_sd2));
  ]

(* Stage timings are machine-dependent, so the "ns_per_call" and
   "candidates_per_s" metrics carry no gate tolerance (un-tolerated metrics
   are trend-watched but never judged, see Benchrep.diff).  The target IS
   in the baseline: the gate still trips if a micro entry disappears, and
   the deterministic branch-and-bound counters below are held to zero
   drift — the planner-throughput tripwire. *)
let candidate_count problem =
  Cogent.Candidates.count (Cogent.Candidates.create problem)

let count_eq1 = candidate_count problem_eq1
let count_sd2 = candidate_count problem_sd2

(* Derived producer throughput: the staged function yields every candidate
   once per call, so rate = count / time-per-call. *)
let extra_metrics name t =
  let rate n =
    Figures.finite "candidates_per_s" (float_of_int n /. (t *. 1e-9))
  in
  match name with
  | "candidates-stream/eq1" -> rate count_eq1
  | "candidates-stream/sd2_1" -> rate count_sd2
  | _ -> []

let stage_entry name t =
  {
    Tc_profile.Benchrep.name;
    expr = "";
    arch = "host";
    precision = "n/a";
    strategies =
      [
        Figures.strat "bechamel"
          (Figures.finite "ns_per_call" t @ extra_metrics name t);
      ];
  }

(* Deterministic counters of the fused pipeline on the same entries the
   timings above stream: exact at any job count, so the regression gate
   holds them to zero drift (Benchrep.default_tolerances gates
   enumerated/kept/bound_aborted/bound_abort_rate as Exact). *)
let search_entry suite_name problem =
  let o =
    Cogent.Pipeline.search ~topk:8 Tc_gpu.Arch.v100 Tc_gpu.Precision.FP64
      problem
  in
  let enumerated = o.Cogent.Pipeline.stats.Cogent.Prune.enumerated
  and kept = o.Cogent.Pipeline.stats.Cogent.Prune.kept in
  {
    Tc_profile.Benchrep.name = "pipeline-counters/" ^ suite_name;
    expr = "";
    arch = "v100";
    precision = "fp64";
    strategies =
      [
        Figures.strat "search"
          [
            ("enumerated", float_of_int enumerated);
            ("kept", float_of_int kept);
            ("bound_aborted", float_of_int o.Cogent.Pipeline.bound_aborted);
            ( "bound_abort_rate",
              if kept = 0 then 0.0
              else
                float_of_int o.Cogent.Pipeline.bound_aborted
                /. float_of_int kept );
          ];
      ];
  }

let run () =
  Report.section
    "Code-generation time (Bechamel; model-driven COGENT vs hours of \
     autotuning)";
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-28s %15s\n" "stage" "time per call";
  Report.hrule 46;
  let entries = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
              let pretty =
                if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
                else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
                else Printf.sprintf "%8.0f ns" t
              in
              Printf.printf "%-28s %15s\n" name pretty;
              entries := stage_entry name t :: !entries
          | _ -> Printf.printf "%-28s %15s\n" name "n/a")
        results)
    staged_tests;
  List.rev !entries
  @ [ search_entry "eq1" problem_eq1; search_entry "sd2_1" problem_sd2 ]
