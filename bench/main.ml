(* Benchmark harness entry point.

   With no argument, regenerates every figure of the paper plus the pruning
   statistics and the code-generation micro-benchmarks.  Individual targets:

     dune exec bench/main.exe -- fig4|fig5|fig6|fig7|fig8|prunestats|ablation|serve|accuracy|micro

   Each target also writes a machine-readable BENCH_<target>.json report
   (schema cogent-bench/1, see Tc_profile.Benchrep).  Two extra
   subcommands drive the regression gate:

     dune exec bench/main.exe -- baseline OUT.json   merge reports into a baseline
     dune exec bench/main.exe -- diff BASELINE.json  compare a run against it
                                                     (exit 1 on regression)
     dune exec bench/main.exe -- equal A.json B.json exit 1 unless the two
                                                     reports are identical
                                                     modulo wall_s/jobs

   Worker-domain count comes from COGENT_JOBS (see Tc_par.Pool); results
   are bit-identical at any job count — only wall_s and the recorded
   jobs field vary. *)

let targets =
  [
    ("fig4", Figures.fig4);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("schemas", Figures.schemas);
    ("prunestats", Figures.prunestats);
    ("ablation", Ablation.run);
    ("serve", Serve_bench.run);
    ("accuracy", Accuracy.run);
    ("micro", Micro.run);
  ]

(* Each target runs under a span so the harness can report where the time
   went; the pipeline's own counters (plan-cache hits, prune rejections,
   generations) accumulate in [Tc_obs.Metrics.global] as a side effect.
   The entries the target returns are persisted as its BENCH report. *)
let timed name f =
  let entries = ref [] in
  let t0 = Sys.time () in
  Tc_obs.Trace.with_span ~cat:"bench" name (fun () -> entries := f ());
  Tc_obs.Metrics.incr (Tc_obs.Metrics.counter "bench.targets_run");
  let doc =
    {
      Tc_profile.Benchrep.target = name;
      wall_s = Sys.time () -. t0;
      jobs = Tc_par.Pool.default_jobs ();
      entries = !entries;
    }
  in
  let path = Tc_profile.Benchrep.filename name in
  Tc_profile.Benchrep.write ~path doc;
  Printf.printf "\n[report] wrote %s (%d entries)\n" path
    (List.length !entries)

let harness_report trace =
  Report.section "Harness report (wall time per target, pipeline metrics)";
  (* Filter by the harness's own category, not depth: pool workers record
     their spans at domain-local depth 0 too. *)
  List.iter
    (fun ev ->
      match ev with
      | Tc_obs.Trace.Span { name; dur_us; cat = "bench"; _ } ->
          Printf.printf "  %-12s %8.2f s\n" name (dur_us /. 1e6)
      | _ -> ())
    (Tc_obs.Trace.events trace);
  print_newline ();
  Format.printf "%a@." Tc_obs.Metrics.pp
    (Tc_obs.Metrics.snapshot Tc_obs.Metrics.global)

let run_targets names =
  let trace = Tc_obs.Trace.make () in
  Tc_obs.Trace.install trace;
  (match names with
  | [] -> List.iter (fun (name, f) -> timed name f) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> timed name f
          | None ->
              Printf.eprintf "unknown target %S; available: %s\n" name
                (String.concat ", " (List.map fst targets));
              exit 1)
        names);
  Tc_obs.Trace.uninstall ();
  harness_report trace

(* Determinism gate: two reports for the same target, produced at
   different job counts, must agree on everything but wall time. *)
let equal_reports a b =
  let load path =
    match Tc_profile.Benchrep.read ~path with
    | Ok doc -> doc
    | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 2
  in
  let da = load a and db = load b in
  if Tc_profile.Benchrep.equal_modulo_wall da db then
    Printf.printf "%s == %s (modulo wall_s/jobs)\n" a b
  else begin
    Printf.eprintf "%s and %s differ beyond wall_s/jobs\n" a b;
    exit 1
  end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "diff"; baseline ] -> Gate.diff baseline
  | [ "baseline"; out ] -> Gate.baseline ~targets:(List.map fst targets) out
  | [ "equal"; a; b ] -> equal_reports a b
  | [ cmd ] when cmd = "diff" || cmd = "baseline" ->
      Printf.eprintf "usage: bench %s FILE.json\n" cmd;
      exit 2
  | "equal" :: _ ->
      Printf.eprintf "usage: bench equal A.json B.json\n";
      exit 2
  | names -> run_targets names
