(* Regression gate over the machine-readable bench reports.

   Every harness target writes BENCH_<target>.json (see main.ml);
   [baseline] merges those reports into one checked-in baseline file and
   [diff] compares a fresh run against it with the per-metric tolerances of
   [Tc_profile.Benchrep.default_tolerances], exiting nonzero on any
   regression — the CI gate. *)

module Benchrep = Tc_profile.Benchrep

(* exit 1 = regression detected, exit 2 = inputs missing/unreadable *)

let diff baseline_path =
  let docs =
    match
      let ic = open_in_bin baseline_path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e ->
        Printf.eprintf "bench diff: cannot read baseline: %s\n" e;
        exit 2
    | contents -> (
        match
          Result.bind (Tc_obs.Json.parse contents) Benchrep.baseline_of_json
        with
        | Ok docs -> docs
        | Error m ->
            Printf.eprintf "bench diff: malformed baseline %s: %s\n"
              baseline_path m;
            exit 2)
  in
  let missing = ref false and regressed = ref false in
  List.iter
    (fun (b : Benchrep.doc) ->
      let path = Benchrep.filename b.Benchrep.target in
      match Benchrep.read ~path with
      | Error m ->
          Printf.eprintf
            "bench diff: cannot read %s (%s); run `dune exec bench/main.exe \
             -- %s` first\n"
            path m b.Benchrep.target;
          missing := true
      | Ok current ->
          let deltas = Benchrep.diff ~baseline:b current in
          print_string (Benchrep.render_diff ~target:b.Benchrep.target deltas);
          if Benchrep.regressions deltas <> [] then regressed := true)
    docs;
  if !missing then exit 2;
  if !regressed then begin
    prerr_endline "bench diff: regressions detected";
    exit 1
  end;
  print_endline "bench diff: no regressions"

(* The accuracy target stays out of the baseline: it has its own drift
   gate with per-metric audit tolerances (`cogent audit --diff
   bench/ACCURACY_BASELINE.json`); the default tolerances here would
   silently skip its metrics.  micro IS in the baseline — its wall-clock
   metrics (ns_per_call, candidates_per_s) carry no tolerance so they are
   never judged, but entry presence and the deterministic
   branch-and-bound counters (the pipeline-counters entries) are gated
   exactly. *)
let baseline_excluded = [ "accuracy" ]

let baseline ~targets out =
  let docs =
    List.filter_map
      (fun target ->
        if List.mem target baseline_excluded then None
        else
          let path = Benchrep.filename target in
          match Benchrep.read ~path with
          | Ok d -> Some d
          | Error m ->
              Printf.eprintf "bench baseline: skipping %s (%s)\n" path m;
              None)
      targets
  in
  if docs = [] then begin
    Printf.eprintf
      "bench baseline: no BENCH_*.json reports found; run the targets first\n";
    exit 2
  end;
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Tc_obs.Json.to_string_pretty (Benchrep.baseline_to_json docs));
      output_char oc '\n');
  Printf.printf "wrote %s (%d target(s))\n" out (List.length docs)
