(* The serving-engine bench target: replay the whole TCCG suite through a
   Tc_serve session (in-memory store) and report every request's dispatch
   decision and predicted performance.  The workload is built
   programmatically from Tc_tccg.Suite so the target does not depend on
   the checked-in examples/serve_requests.jsonl being on the cwd path;
   CI replays that file separately through the CLI. *)

module Benchrep = Tc_profile.Benchrep

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let requests () =
  List.map
    (fun e ->
      Ok
        {
          Tc_serve.Request.id = e.Tc_tccg.Suite.id;
          expr = e.Tc_tccg.Suite.expr;
          sizes = Tc_expr.Sizes.of_list e.Tc_tccg.Suite.sizes;
          arch = Tc_gpu.Arch.v100;
          precision = Tc_gpu.Precision.FP64;
        })
    Tc_tccg.Suite.all

let run () =
  Report.section
    "Serving engine: TCCG suite replay (dedup, model dispatch)";
  let ctx = Cogent.Ctx.make ~measure:simulate () in
  let session =
    match Tc_serve.Serve.open_session ctx with
    | Ok s -> s
    | Error m -> failwith ("serve bench: " ^ m)
  in
  let report = Tc_serve.Serve.run session (requests ()) in
  List.iter
    (fun (r : Tc_serve.Serve.response) ->
      match r.Tc_serve.Serve.result with
      | Ok o ->
          Printf.printf "  req-%03d  %-18s -> %-6s  cogent %8.3f ms, ttgt %8.3f ms\n"
            r.Tc_serve.Serve.id r.Tc_serve.Serve.expr
            (Tc_serve.Serve.engine_name o.Tc_serve.Serve.engine)
            (o.Tc_serve.Serve.cogent_time_s *. 1e3)
            (o.Tc_serve.Serve.ttgt_time_s *. 1e3)
      | Error e ->
          Printf.printf "  req-%03d  %-18s -> error: %s\n" r.Tc_serve.Serve.id
            r.Tc_serve.Serve.expr
            (Tc_serve.Serve.error_to_string e))
    report.Tc_serve.Serve.responses;
  print_newline ();
  print_string (Tc_serve.Serve.render_summary report.Tc_serve.Serve.summary);
  (* Deterministic latency summary: the predicted-time histogram is model
     output observed in request order, so these quantiles are
     bit-identical at any job count (unlike the *_wall_* instruments,
     which are deliberately left out of this line). *)
  List.iter
    (function
      | Tc_obs.Metrics.Histogram_v { name; _ } as item
        when name = "cogent.serve.predicted_seconds" ->
          Printf.printf "predicted latency  %s\n"
            (String.concat ", "
               (List.map
                  (fun (q, v) ->
                    Printf.sprintf "p%g %.4f ms" (q *. 100.0) (v *. 1e3))
                  (Tc_obs.Metrics.quantile_summary item)))
      | _ -> ())
    (Tc_obs.Metrics.snapshot Tc_obs.Metrics.global);
  (Tc_serve.Serve.report_doc ~wall_s:0.0 report).Benchrep.entries
