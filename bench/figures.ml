(* Reproduction of every figure in the paper's evaluation (§V).  Each
   function prints the series the corresponding figure plots; see
   EXPERIMENTS.md for paper-vs-measured discussion.

   Besides printing, every target returns its data as
   [Tc_profile.Benchrep.entry] values; main.ml persists them as
   machine-readable BENCH_<target>.json reports for the regression gate. *)

open Tc_gpu
module Benchrep = Tc_profile.Benchrep

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

(* One plan cache for the whole harness: figures and prunestats revisit the
   same (contraction, device, precision) triples, which is exactly the
   workload the cache exists for — its hit/miss counters land in the
   metrics report main.ml prints. *)
let cache = Cogent.Cache.create ()

let cogent_result arch prec problem =
  let ctx = Cogent.Ctx.make ~arch ~precision:prec ~measure:simulate () in
  match Cogent.Cache.find_or_generate_ctx cache ctx problem with
  | Ok r -> r
  | Error e -> invalid_arg (Cogent.Driver.error_to_string e)

let cogent_gflops arch prec problem =
  simulate (cogent_result arch prec problem).Cogent.Driver.plan

let nwchem_gflops arch prec problem =
  let plan = Tc_nwchem.Nwgen.plan ~arch ~precision:prec problem in
  (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let talsh_gflops arch prec problem =
  (Tc_ttgt.Ttgt.run_ctx (Cogent.Ctx.make ~arch ~precision:prec ()) problem)
    .Tc_ttgt.Ttgt.gflops

(* ---- report-building helpers ---- *)

let strat ?config name metrics = { Benchrep.strategy = name; metrics; config }

let bench_entry ~name ~expr arch prec strategies =
  {
    Benchrep.name;
    expr;
    arch = arch.Arch.name;
    precision = Precision.to_string prec;
    strategies;
  }

(* Only finite values may enter a report: [nan]/[inf] do not survive the
   JSON round-trip. *)
let finite name v = if Float.is_finite v then [ (name, v) ] else []

(* The full gated triple for a strategy we have a plan for: simulated
   GFLOPS, simulated DRAM transactions, and the Algorithm-3 model cost,
   plus the chosen configuration for human diffing. *)
let plan_strategy name plan =
  let sim = Tc_sim.Simkernel.run plan in
  strat name
    ~config:(Fmt.str "%a" Cogent.Mapping.pp plan.Cogent.Plan.mapping)
    (finite "gflops" sim.Tc_sim.Simkernel.gflops
    @ finite "transactions" sim.Tc_sim.Simkernel.transactions
    @ finite "cost" plan.Cogent.Plan.cost)

(* ---- Figs. 4 and 5: the 48 TCCG contractions, double precision ---- *)

let tccg_comparison arch =
  Report.section
    (Printf.sprintf
       "Fig. %s — TCCG benchmark on %s (double precision, GFLOPS)"
       (if arch.Arch.name = "P100" then "4" else "5")
       arch.Arch.name);
  Printf.printf "%-3s %-8s %-12s %-18s %9s %9s %9s\n" "#" "name" "group"
    "contraction" "COGENT" "NWChem" "TAL_SH";
  Report.hrule 78;
  (* Entries are independent, so they generate on the domain pool;
     printing happens afterwards, in suite order, so stdout is identical
     at any job count. *)
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let cg_plan = (cogent_result arch Precision.FP64 problem).Cogent.Driver.plan in
        let cg = simulate cg_plan in
        let nw_plan = Tc_nwchem.Nwgen.plan ~arch ~precision:Precision.FP64 problem in
        let nw = simulate nw_plan in
        let ts = talsh_gflops arch Precision.FP64 problem in
        let entry =
          bench_entry ~name:e.Tc_tccg.Suite.name ~expr:e.Tc_tccg.Suite.expr
            arch Precision.FP64
            [
              plan_strategy "cogent" cg_plan;
              plan_strategy "nwchem" nw_plan;
              strat "talsh" (finite "gflops" ts);
            ]
        in
        (e, cg, nw, ts, entry))
      Tc_tccg.Suite.all
  in
  List.iter
    (fun (e, cg, nw, ts, _) ->
      Printf.printf "%-3d %-8s %-12s %-18s %9.0f %9.0f %9.0f\n"
        e.Tc_tccg.Suite.id e.Tc_tccg.Suite.name
        (Tc_tccg.Suite.group_to_string e.Tc_tccg.Suite.group)
        e.Tc_tccg.Suite.expr cg nw ts)
    rows;
  print_newline ();
  Report.speedup_summary ~name:"COGENT" ~base:"NWChem"
    (List.map (fun (_, cg, nw, _, _) -> (cg, nw)) rows);
  Report.speedup_summary ~name:"COGENT" ~base:"TAL_SH"
    (List.map (fun (_, cg, _, ts, _) -> (cg, ts)) rows);
  let ccsdt =
    List.filter
      (fun (e, _, _, _, _) ->
        match e.Tc_tccg.Suite.group with
        | Tc_tccg.Suite.Ccsd_t_sd1 | Tc_tccg.Suite.Ccsd_t_sd2 -> true
        | _ -> false)
      rows
  in
  let range f =
    let vals = List.map f ccsdt in
    (List.fold_left Float.min infinity vals, Report.maximum vals)
  in
  let cg_lo, cg_hi = range (fun (_, cg, _, _, _) -> cg) in
  let nw_lo, nw_hi = range (fun (_, _, nw, _, _) -> nw) in
  let ts_lo, ts_hi = range (fun (_, _, _, ts, _) -> ts) in
  Printf.printf
    "CCSD(T) range (GFLOPS): COGENT %.0f-%.0f | NWChem %.0f-%.0f | TAL_SH \
     %.0f-%.0f\n"
    cg_lo cg_hi nw_lo nw_hi ts_lo ts_hi;
  Printf.printf "\nGFLOPS bars (one representative per group):\n";
  let representative prefix =
    List.find_opt
      (fun (e, _, _, _, _) -> e.Tc_tccg.Suite.name = prefix)
      rows
  in
  Report.bar_chart ~series_names:[ "COGENT"; "NWChem"; "TAL_SH" ]
    (List.filter_map
       (fun name ->
         Option.map
           (fun (e, cg, nw, ts, _) -> (e.Tc_tccg.Suite.name, [ cg; nw; ts ]))
           (representative name))
       [ "ml_1"; "aomo_1"; "ccsd_1"; "ccsd_9"; "sd1_1"; "sd2_1" ]);
  List.map (fun (_, _, _, _, entry) -> entry) rows

let fig4 () = tccg_comparison Arch.p100
let fig5 () = tccg_comparison Arch.v100

(* ---- Figs. 6 and 7: SD2 contractions vs Tensor Comprehensions, SP ---- *)

let tc_comparison arch =
  Report.section
    (Printf.sprintf
       "Fig. %s — SD2 CCSD(T) contractions on %s vs Tensor Comprehensions \
        (single precision, GFLOPS)"
       (if arch.Arch.name = "P100" then "6" else "7")
       arch.Arch.name);
  Printf.printf "%-8s %-18s %9s %12s %12s\n" "name" "contraction" "COGENT"
    "TC (tuned)" "TC (untuned)";
  Report.hrule 78;
  (* Compute on the pool, print in suite order (see tccg_comparison). *)
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let cg_plan =
          (cogent_result arch Precision.FP32 problem).Cogent.Driver.plan
        in
        let cg = simulate cg_plan in
        let r = Tc_autotune.Tuner.tuned arch Precision.FP32 problem in
        let tuned = r.Tc_autotune.Genetic.best_gflops in
        let untuned =
          Tc_autotune.Tuner.untuned_gflops arch Precision.FP32 problem
        in
        let entry =
          bench_entry ~name:e.Tc_tccg.Suite.name ~expr:e.Tc_tccg.Suite.expr
            arch Precision.FP32
            [
              plan_strategy "cogent" cg_plan;
              strat "tc_tuned"
                (finite "gflops" tuned
                @ [
                    ( "evaluations",
                      float_of_int r.Tc_autotune.Genetic.evaluations );
                  ]);
              strat "tc_untuned" (finite "gflops" untuned);
            ]
        in
        (e, cg, tuned, untuned, entry))
      Tc_tccg.Suite.sd2
  in
  List.iter
    (fun (e, cg, tuned, untuned, _) ->
      Printf.printf "%-8s %-18s %9.0f %12.0f %12.2f\n" e.Tc_tccg.Suite.name
        e.Tc_tccg.Suite.expr cg tuned untuned)
    rows;
  print_newline ();
  Report.speedup_summary ~name:"COGENT" ~base:"TC-tuned"
    (List.map (fun (_, cg, tuned, _, _) -> (cg, tuned)) rows);
  List.map (fun (_, _, _, _, entry) -> entry) rows

let fig6 () = tc_comparison Arch.p100
let fig7 () = tc_comparison Arch.v100

(* ---- Fig. 8: GFLOPS vs number of autotuned code versions, SD2_1 ---- *)

let fig8 () =
  Report.section
    "Fig. 8 — GFLOPS vs autotuned code versions, SD2_1 (abcdef-gdab-efgc) on \
     V100, single precision";
  let e = Tc_tccg.Suite.sd2_1 in
  let problem = Tc_tccg.Suite.problem e in
  let arch = Arch.v100 and prec = Precision.FP32 in
  let cg_plan = (cogent_result arch prec problem).Cogent.Driver.plan in
  let cg = simulate cg_plan in
  let untuned = Tc_autotune.Tuner.untuned_gflops arch prec problem in
  let r = Tc_autotune.Tuner.tuned arch prec problem in
  Printf.printf "COGENT (model-driven, no tuning): %.0f GFLOPS\n" cg;
  Printf.printf "TC without tuning:               %.2f GFLOPS\n" untuned;
  Printf.printf "TC best after %d versions:     %.0f GFLOPS\n"
    r.Tc_autotune.Genetic.evaluations r.Tc_autotune.Genetic.best_gflops;
  Printf.printf "Total TC tuning time:            %.0f seconds (simulated)\n\n"
    r.Tc_autotune.Genetic.tuning_time_s;
  Printf.printf "%-10s %12s %12s\n" "versions" "TC best" "TC current";
  Report.hrule 40;
  let stride = 100 in
  List.iter
    (fun (p : Tc_autotune.Genetic.trace_point) ->
      if
        p.Tc_autotune.Genetic.evaluations mod stride = 0
        || p.Tc_autotune.Genetic.evaluations = 1
      then
        Printf.printf "%-10d %12.1f %12.1f\n" p.Tc_autotune.Genetic.evaluations
          p.Tc_autotune.Genetic.best_gflops p.Tc_autotune.Genetic.current_gflops)
    r.Tc_autotune.Genetic.trace;
  [
    bench_entry ~name:e.Tc_tccg.Suite.name ~expr:e.Tc_tccg.Suite.expr arch prec
      [
        plan_strategy "cogent" cg_plan;
        strat "tc_untuned" (finite "gflops" untuned);
        strat "tc_tuned"
          (finite "gflops" r.Tc_autotune.Genetic.best_gflops
          @ [
              ("evaluations", float_of_int r.Tc_autotune.Genetic.evaluations);
            ]
          @ finite "tuning_time_s" r.Tc_autotune.Genetic.tuning_time_s);
      ];
  ]

(* ---- Schema study: classic vs software-pipelined on A100, fp16 ---- *)

let schemas () =
  Report.section
    "Schema study — TCCG benchmark on A100 (half precision, GFLOPS): classic \
     synchronous ladder vs software-pipelined (cp.async / MMA)";
  let arch = Arch.a100 and prec = Precision.FP16 in
  Printf.printf "%-3s %-8s %-18s %9s %9s %8s  %s\n" "#" "name" "contraction"
    "classic" "pipelined" "speedup" "chosen schema";
  Report.hrule 78;
  (* Compute on the pool, print in suite order (see tccg_comparison). *)
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let plan = (cogent_result arch prec problem).Cogent.Driver.plan in
        let classic_plan = Cogent.Plan.with_schema Schema.Classic plan in
        let classic = simulate classic_plan in
        (* fastest feasible pipelined variant of the chosen mapping *)
        let piped =
          List.filter Schema.pipelined
            (Cogent.Plan.feasible_schemas ~arch ~precision:prec
               plan.Cogent.Plan.mapping)
          |> List.fold_left
               (fun best sc ->
                 let p = Cogent.Plan.with_schema sc plan in
                 let g = simulate p in
                 match best with
                 | Some (_, bg) when bg >= g -> best
                 | _ -> Some (p, g))
               None
        in
        let entry =
          bench_entry ~name:e.Tc_tccg.Suite.name ~expr:e.Tc_tccg.Suite.expr
            arch prec
            ([ plan_strategy "classic" classic_plan ]
            @ (match piped with
              | None -> []
              | Some (p, g) ->
                  [
                    strat "pipelined"
                      ~config:(Schema.to_string p.Cogent.Plan.schema)
                      (finite "gflops" g @ finite "speedup" (g /. classic));
                  ])
            @ [
                strat "chosen"
                  ~config:(Schema.to_string plan.Cogent.Plan.schema)
                  (finite "gflops" (simulate plan));
              ])
        in
        (e, plan, classic, piped, entry))
      Tc_tccg.Suite.all
  in
  List.iter
    (fun (e, plan, classic, piped, _) ->
      let pg, speedup =
        match piped with
        | Some (_, g) -> (Printf.sprintf "%9.0f" g, Printf.sprintf "%7.2fx" (g /. classic))
        | None -> ((Printf.sprintf "%9s" "-"), Printf.sprintf "%8s" "-")
      in
      Printf.printf "%-3d %-8s %-18s %9.0f %s %s  %s\n" e.Tc_tccg.Suite.id
        e.Tc_tccg.Suite.name e.Tc_tccg.Suite.expr classic pg speedup
        (Schema.to_string plan.Cogent.Plan.schema))
    rows;
  print_newline ();
  let chosen_pipelined =
    List.length
      (List.filter
         (fun (_, plan, _, _, _) -> Schema.pipelined plan.Cogent.Plan.schema)
         rows)
  in
  Report.speedup_summary ~name:"pipelined" ~base:"classic"
    (List.filter_map
       (fun (_, _, classic, piped, _) ->
         Option.map (fun (_, g) -> (g, classic)) piped)
       rows);
  Printf.printf
    "pipelined schema chosen on %d/%d entries (classic wins ties and \
     memory-bound contractions)\n"
    chosen_pipelined (List.length rows);
  List.map (fun (_, _, _, _, entry) -> entry) rows

(* ---- §IV-A3: pruning statistics ---- *)

let prunestats () =
  Report.section
    "Search-space pruning across the TCCG suite (§IV-A: ~97% pruned)";
  Printf.printf "%-8s %-18s %14s %10s %8s %9s %12s %6s %6s %7s\n" "name"
    "contraction" "naive space" "enumerated" "kept" "pruned%" "vs naive" "hw"
    "perf" "bound";
  Report.hrule 108;
  (* Compute on the pool, print in suite order (see tccg_comparison). *)
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let r = cogent_result Arch.v100 Precision.FP64 problem in
        let s = r.Cogent.Driver.prune_stats in
        let pruned_pct =
          100.0
          *. float_of_int (s.Cogent.Prune.enumerated - s.Cogent.Prune.kept)
          /. float_of_int (max 1 s.Cogent.Prune.enumerated)
        in
        let vs_naive =
          100.0
          *. (1.0 -. (float_of_int s.Cogent.Prune.kept /. r.Cogent.Driver.naive_space))
        in
        let entry =
          bench_entry ~name:e.Tc_tccg.Suite.name ~expr:e.Tc_tccg.Suite.expr
            Arch.v100 Precision.FP64
            [
              strat "search"
                (finite "naive_space" r.Cogent.Driver.naive_space
                @ [
                    ("enumerated", float_of_int s.Cogent.Prune.enumerated);
                    ("kept", float_of_int s.Cogent.Prune.kept);
                    ( "hardware_rejects",
                      float_of_int s.Cogent.Prune.hardware_rejects );
                    ( "performance_rejects",
                      float_of_int s.Cogent.Prune.performance_rejects );
                    ( "bound_aborted",
                      float_of_int r.Cogent.Driver.bound_aborted );
                  ]);
            ]
        in
        (e, r, s, pruned_pct, vs_naive, entry))
      Tc_tccg.Suite.all
  in
  List.iter
    (fun (e, r, s, pruned_pct, vs_naive, _) ->
      Printf.printf "%-8s %-18s %14.3e %10d %8d %8.1f%% %11.4f%% %6d %6d %7d\n"
        e.Tc_tccg.Suite.name e.Tc_tccg.Suite.expr r.Cogent.Driver.naive_space
        s.Cogent.Prune.enumerated s.Cogent.Prune.kept pruned_pct vs_naive
        s.Cogent.Prune.hardware_rejects s.Cogent.Prune.performance_rejects
        r.Cogent.Driver.bound_aborted)
    rows;
  let stats = List.rev_map (fun (_, _, s, _, _, _) -> s) rows in
  let entries = List.map (fun (_, _, _, _, _, entry) -> entry) rows in
  let fractions =
    List.map (fun (_, _, _, pruned_pct, vs_naive, _) -> (pruned_pct, vs_naive)) rows
  in
  let mean f =
    List.fold_left (fun acc x -> acc +. f x) 0.0 fractions
    /. float_of_int (List.length fractions)
  in
  Printf.printf
    "\nmean pruned fraction: %.1f%% of the enumerated set; %.4f%% of the\n\
     naive space (Algorithm 2's greedy structured enumeration already\n\
     discards most of the naive space before rule-based pruning runs)\n"
    (mean fst) (mean snd);
  (* Itemized audit: which rule did the pruning, summed across the suite. *)
  Printf.printf "\nrejections by rule (suite total):\n";
  let total_per_rule r =
    List.fold_left
      (fun acc s -> acc + Cogent.Prune.pruned_count s r)
      0 stats
  in
  let grand =
    List.fold_left (fun acc r -> acc + total_per_rule r) 0
      Cogent.Prune.all_reasons
  in
  List.iter
    (fun r ->
      let n = total_per_rule r in
      if n > 0 then
        Printf.printf "  [%-14s] %-26s %8d  (%.1f%%)\n"
          (Cogent.Prune.klass_to_string (Cogent.Prune.klass_of_reason r))
          (Cogent.Prune.reason_to_string r)
          n
          (100.0 *. float_of_int n /. float_of_int (max 1 grand)))
    Cogent.Prune.all_reasons;
  let relaxed_entries =
    List.length (List.filter (fun s -> s.Cogent.Prune.relaxed) stats)
  in
  Printf.printf
    "  %d rejections total; %d/%d entries needed performance-constraint \
     relaxation\n"
    grand relaxed_entries (List.length stats);
  (* Bound aborts are cost-side, not rule prunes: survivors whose cost
     evaluation the branch-and-bound pipeline cut short because they
     provably rank below the retained top-K. *)
  let bound_total =
    List.fold_left
      (fun acc (_, r, _, _, _, _) -> acc + r.Cogent.Driver.bound_aborted)
      0 rows
  in
  Printf.printf
    "  %d survivors bound-aborted by the streaming cost evaluation (suite \
     total)\n"
    bound_total;
  entries
