(* Ablation studies for the design choices DESIGN.md calls out:

   1. selection quality: pure model ranking vs measured refinement of the
      top 8 vs the simulator-oracle over every surviving configuration;
   2. cost-model fidelity: Spearman rank correlation between Algorithm 3's
      ranking and the simulator's, per suite entry;
   3. performance-constraint value (§IV-A2): best configuration with
      hardware-only pruning and model-only selection, vs the full rules;
   4. the TTGT planner extension: TAL_SH-faithful permutes vs the
      cheapest-permutation search.

   Each study also returns one summary [Tc_profile.Benchrep.entry] so the
   BENCH_ablation.json report captures its headline numbers. *)

open Tc_gpu

let arch = Arch.v100
let prec = Precision.FP64

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let plan_of problem mapping =
  Cogent.Plan.make ~problem ~mapping ~arch ~precision:prec

(* Studies 1 and 2 sweep *every* surviving configuration (oracle search,
   rank correlation), which the streaming driver deliberately no longer
   materializes — so they run the classic enumerate → prune → rank phases
   directly. *)
let full_ranking problem =
  let configs = Cogent.Enumerate.enumerate problem in
  let kept, _ = Cogent.Prune.filter arch prec problem configs in
  Cogent.Cost.rank prec problem kept

(* Geomean of a/b over pairs, dropping non-finite ratios so a degenerate
   study cannot poison the JSON report. *)
let geo pairs =
  Report.geomean
    (List.filter Float.is_finite (List.map (fun (a, b) -> a /. b) pairs))

let summary_entry name metrics =
  Figures.bench_entry ~name ~expr:"(suite summary)" arch prec
    [ Figures.strat "summary" metrics ]

let spearman xs ys =
  (* rank correlation without tie correction (ties are rare here) *)
  let rank v =
    let sorted = List.sort Float.compare v in
    List.map
      (fun x ->
        let rec idx k = function
          | [] -> k
          | y :: rest -> if y >= x then k else idx (k + 1) rest
        in
        float_of_int (idx 0 sorted))
      v
  in
  let rx = rank xs and ry = rank ys in
  let n = float_of_int (List.length xs) in
  if n < 2.0 then nan
  else
    let d2 =
      List.fold_left2 (fun acc a b -> acc +. ((a -. b) ** 2.0)) 0.0 rx ry
    in
    1.0 -. (6.0 *. d2 /. (n *. ((n *. n) -. 1.0)))

let selection () =
  Report.section
    "Ablation 1 — configuration selection (V100, FP64): model-only vs \
     top-8 refinement vs simulator oracle";
  Printf.printf "%-8s %10s %10s %10s %12s\n" "name" "model" "refined"
    "oracle" "model/oracle";
  Report.hrule 56;
  (* Suite entries are independent: compute on the domain pool, print in
     suite order afterwards so stdout is identical at any job count. *)
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let ranking = full_ranking problem in
        let model =
          match ranking with
          | (m, _) :: _ -> simulate (plan_of problem m)
          | [] -> nan
        in
        let refined =
          simulate
            (Cogent.Driver.best_plan ~arch ~precision:prec ~measure:simulate
               problem)
        in
        let oracle =
          List.fold_left
            (fun acc (m, _) -> Float.max acc (simulate (plan_of problem m)))
            0.0 ranking
        in
        (e, model, refined, oracle))
      Tc_tccg.Suite.all
  in
  List.iter
    (fun (e, model, refined, oracle) ->
      Printf.printf "%-8s %10.0f %10.0f %10.0f %11.0f%%\n" e.Tc_tccg.Suite.name
        model refined oracle
        (100.0 *. model /. oracle))
    rows;
  let ratios_model =
    List.rev_map (fun (_, model, _, oracle) -> (model, oracle)) rows
  and ratios_refined =
    List.rev_map (fun (_, _, refined, oracle) -> (refined, oracle)) rows
  in
  print_newline ();
  Report.speedup_summary ~name:"model-only" ~base:"oracle" ratios_model;
  Report.speedup_summary ~name:"top-8 refined" ~base:"oracle" ratios_refined;
  summary_entry "selection"
    (Figures.finite "model_vs_oracle" (geo ratios_model)
    @ Figures.finite "refined_vs_oracle" (geo ratios_refined))

let correlation () =
  Report.section
    "Ablation 2 — Algorithm 3 fidelity: Spearman correlation of model cost \
     vs simulated time over surviving configurations";
  Printf.printf "%-8s %8s %8s\n" "name" "configs" "rho";
  Report.hrule 30;
  let rows =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let ranking = full_ranking problem in
        let costs = List.map snd ranking in
        let times =
          List.map
            (fun (m, _) ->
              (Tc_sim.Simkernel.run (plan_of problem m)).Tc_sim.Simkernel.time_s)
            ranking
        in
        (e, List.length costs, spearman costs times))
      Tc_tccg.Suite.all
  in
  let rhos =
    List.map
      (fun (e, n, rho) ->
        Printf.printf "%-8s %8d %8.2f\n" e.Tc_tccg.Suite.name n rho;
        rho)
      rows
  in
  let mean_rho =
    List.fold_left ( +. ) 0.0 rhos /. float_of_int (List.length rhos)
  in
  Printf.printf "\nmean rho: %.2f (1.0 = the model orders configurations exactly as the simulator does)\n"
    mean_rho;
  summary_entry "correlation" (Figures.finite "mean_rho" mean_rho)

let constraints () =
  Report.section
    "Ablation 3 — value of the §IV-A2 performance constraints (model-only \
     selection)";
  Printf.printf "%-8s %12s %12s %9s\n" "name" "full rules" "hw-only" "gain";
  Report.hrule 46;
  let gains =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let configs = Cogent.Enumerate.enumerate problem in
        let pick performance =
          let kept, _ =
            Cogent.Prune.filter ~performance arch prec problem configs
          in
          match Cogent.Cost.best prec problem kept with
          | Some (m, _) -> Some (simulate (plan_of problem m))
          | None -> None
        in
        match (pick true, pick false) with
        | Some full, Some hw -> Some (e, full, hw)
        | _ -> None)
      Tc_tccg.Suite.all
    |> List.filter_map (fun row ->
           Option.map
             (fun (e, full, hw) ->
               Printf.printf "%-8s %12.0f %12.0f %8.2fx\n" e.Tc_tccg.Suite.name
                 full hw (full /. hw);
               (full, hw))
             row)
  in
  print_newline ();
  Report.speedup_summary ~name:"full rules" ~base:"hardware-only" gains;
  summary_entry "constraints" (Figures.finite "full_vs_hw" (geo gains))

let ttgt_planner () =
  Report.section
    "Ablation 4 — TTGT planner: TAL_SH-faithful permutes vs \
     cheapest-permutation search (extension)";
  Printf.printf "%-8s %10s %10s %9s\n" "name" "faithful" "optimized" "gain";
  Report.hrule 42;
  let gains =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let ctx = Cogent.Ctx.make ~arch ~precision:prec () in
        let f = (Tc_ttgt.Ttgt.run_ctx ctx problem).Tc_ttgt.Ttgt.gflops in
        let o =
          (Tc_ttgt.Ttgt.run_ctx ctx ~optimize:true problem).Tc_ttgt.Ttgt.gflops
        in
        (e, f, o))
      Tc_tccg.Suite.all
    |> List.map (fun (e, f, o) ->
           Printf.printf "%-8s %10.0f %10.0f %8.2fx\n" e.Tc_tccg.Suite.name f o
             (o /. f);
           (o, f))
  in
  print_newline ();
  Report.speedup_summary ~name:"optimized TTGT" ~base:"faithful TTGT" gains;
  summary_entry "ttgt" (Figures.finite "opt_vs_faithful" (geo gains))

let splitting () =
  Report.section
    "Ablation 5 — dimension splitting (extension) on register-starved      contractions";
  Printf.printf "%-8s %-18s %10s %10s %9s
" "name" "contraction" "base"
    "auto-split" "gain";
  Report.hrule 60;
  let gains =
    Tc_par.Pool.map
      (fun e ->
        let problem = Tc_tccg.Suite.problem e in
        let _, applied = Tc_expr.Split.auto problem in
        if applied = [] then None
        else
          let base =
            simulate
              (Cogent.Driver.best_plan ~arch ~precision:prec ~measure:simulate
                 problem)
          in
          let split =
            simulate
              (Cogent.Driver.best_plan ~arch ~precision:prec ~measure:simulate
                 ~auto_split:true problem)
          in
          Some (e, base, split))
      Tc_tccg.Suite.all
    |> List.filter_map (fun row ->
           Option.map
             (fun (e, base, split) ->
               Printf.printf "%-8s %-18s %10.0f %10.0f %8.2fx\n"
                 e.Tc_tccg.Suite.name e.Tc_tccg.Suite.expr base split
                 (split /. base);
               (split, base))
             row)
  in
  print_newline ();
  if gains = [] then print_endline "no register-starved entries in the suite"
  else
    Report.speedup_summary ~name:"with auto-split" ~base:"without" gains;
  summary_entry "splitting"
    (("entries_split", float_of_int (List.length gains))
    :: Figures.finite "split_vs_base" (geo gains))

let run () =
  [ selection (); correlation (); constraints (); ttgt_planner (); splitting () ]
