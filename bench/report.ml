(* Shared reporting helpers for the benchmark harness. *)

let geomean = function
  | [] -> nan
  | l ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 l
        /. float_of_int (List.length l))

let maximum l = List.fold_left Float.max neg_infinity l

let hrule width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hrule 78;
  Printf.printf "%s\n" title;
  hrule 78

(* Summarize speedups of one series over another.  Empty series (a figure
   whose filter matched nothing) and non-finite ratios (a zero or infinite
   baseline) must not leak [nan] into the summary line. *)
let speedup_summary ~name ~base rows =
  let ratios =
    List.filter Float.is_finite (List.map (fun (a, b) -> a /. b) rows)
  in
  match ratios with
  | [] -> Printf.printf "%s vs %s: n/a (no data)\n" name base
  | _ ->
      Printf.printf "%s vs %s: geomean %.2fx, max %.2fx\n" name base
        (geomean ratios) (maximum ratios)

(* Horizontal ASCII bars, one row per (label, series values), normalized to
   the global maximum — a terminal rendering of the paper's bar charts.
   When every value is zero (or there are no rows) there is nothing to
   normalize against; print [n/a] bars instead of dividing by the epsilon
   floor. *)
let bar_chart ~series_names rows =
  let width = 40 in
  let maximum_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 rows
  in
  let glyphs = [| '#'; '='; '.' |] in
  List.iteri
    (fun k name -> Printf.printf "  %c %s\n" glyphs.(k mod 3) name)
    series_names;
  if rows = [] || maximum_value <= 0.0 || not (Float.is_finite maximum_value)
  then print_endline "  n/a (no data to chart)"
  else
    List.iter
      (fun (label, values) ->
        List.iteri
          (fun k v ->
            let n =
              int_of_float
                (Float.round (float_of_int width *. v /. maximum_value))
            in
            Printf.printf "%-8s %c %-*s %7.0f\n"
              (if k = 0 then label else "")
              glyphs.(k mod 3) width
              (String.make (max 0 (min width n)) glyphs.(k mod 3))
              v)
          values)
      rows
