(* Tests for the cost-model accuracy observatory: sample invariants, the
   ledger codec and its failure ladder, the aggregation document, the
   drift gate, and the golden-locked calibration report. *)

open Tc_expr
module Audit = Tc_audit.Audit
module Ledger = Tc_audit.Ledger
module Benchrep = Tc_profile.Benchrep

let check = Alcotest.check
let fail = Alcotest.fail
let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops
let ctx = Cogent.Ctx.make ~measure:simulate ()

let eq1 =
  Problem.of_string_exn "abcd-aebf-dfce"
    ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]

let gemm =
  Problem.of_string_exn "ab-ac-cb"
    ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]

let plan_of problem =
  match Cogent.Driver.run ctx problem with
  | Ok r -> r.Cogent.Driver.plan
  | Error e -> fail (Cogent.Driver.error_to_string e)

let sample_of ?(suite = "eq1") ?(request = "eq1") problem =
  let plan = plan_of problem in
  Audit.sample ~suite ~request
    ~key:(Cogent.Cache.key ctx problem)
    ~ctx ~degraded:false plan

let fresh_dir () =
  let f = Filename.temp_file "cogent_audit" ".ledger" in
  Sys.remove f;
  f

(* ---- sample invariants ---- *)

let test_sample_invariants () =
  let s = sample_of eq1 in
  check Alcotest.string "canonical TCCG expr" "abcd-aebf-dfce" s.Audit.expr;
  check Alcotest.bool "strategy is a dispatch side" true
    (List.mem s.Audit.strategy [ "cogent"; "ttgt" ]);
  check Alcotest.bool "strategy is the predicted minimum" true
    (if s.Audit.strategy = "cogent" then
       s.Audit.pred_cogent_s <= s.Audit.pred_ttgt_s
     else s.Audit.pred_ttgt_s < s.Audit.pred_cogent_s);
  (* own problem defaulted to the representative: the chosen side is the
     minimum by construction, so regret is identically zero *)
  check (Alcotest.float 0.0) "regret 0 on the representative" 0.0
    s.Audit.regret_s;
  check Alcotest.bool "own times are the representative's" true
    (Float.equal s.Audit.own_cogent_s s.Audit.pred_cogent_s
    && Float.equal s.Audit.own_ttgt_s s.Audit.pred_ttgt_s);
  check Alcotest.bool "no own-extents fallback" false s.Audit.own_approx;
  (* the simulator contract: exact counters agree with the interpreter *)
  check Alcotest.bool "no simulator mismatch" false (Audit.sim_mismatch s);
  check Alcotest.bool "model error is a finite ratio" true
    (Float.is_finite (Audit.tx_rel_err s) && Audit.tx_rel_err s >= 0.0);
  check (Alcotest.float 1e-9) "signed error magnitude matches"
    (Audit.tx_rel_err s)
    (Float.abs (Audit.tx_signed_err s));
  check Alcotest.bool "measured counters are populated" true
    (Audit.tx_total s.Audit.measured_tx > 0.0)

let test_dispatch_regret_on_own_extents () =
  let plan = plan_of gemm in
  (* same size class (60 rounds to 64), different extents: dispatch keeps
     the representative's decision, regret is evaluated at 60^3 *)
  let own =
    Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 60); ('b', 60); ('c', 60) ]
  in
  let oc, ot, regret, approx = Audit.dispatch_regret ~ctx ~own plan in
  check Alcotest.bool "own predictions are positive" true
    (oc > 0.0 && ot > 0.0);
  check Alcotest.bool "regret is non-negative" true (regret >= 0.0);
  check Alcotest.bool "own extents re-planned (no fallback)" false approx

(* ---- collector ---- *)

let test_collector_order () =
  let c = Audit.collector () in
  let a = sample_of ~request:"r1" gemm in
  let b = sample_of ~request:"r2" eq1 in
  Audit.add c a;
  Audit.add c b;
  check (Alcotest.list Alcotest.string) "insertion order" [ "r1"; "r2" ]
    (List.map (fun s -> s.Audit.request) (Audit.samples c))

(* ---- ledger codec ---- *)

let test_ledger_roundtrip () =
  let rows = [ sample_of ~request:"r1" gemm; sample_of ~request:"r2" eq1 ] in
  let dir = fresh_dir () in
  Ledger.save ~dir rows;
  (match Ledger.load ~dir with
  | Error m -> fail m
  | Ok rows' ->
      check Alcotest.bool "samples round-trip bit-exactly" true (rows = rows'));
  (* saving twice is byte-stable (atomic rewrite, no append) *)
  let slurp () =
    let ic = open_in_bin (Ledger.file ~dir) in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let first = slurp () in
  Ledger.save ~dir rows;
  check Alcotest.string "rewrite is byte-identical" first (slurp ())

let test_ledger_missing_is_empty () =
  match Ledger.load ~dir:(fresh_dir ()) with
  | Ok [] -> ()
  | Ok _ -> fail "missing ledger must load as empty"
  | Error m -> fail m

let test_ledger_rejects_wrong_schema () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let oc = open_out (Ledger.file ~dir) in
  output_string oc "{\"schema\":\"cogent-audit/999\"}\n";
  close_out oc;
  match Ledger.load ~dir with
  | Error _ -> ()
  | Ok _ -> fail "wrong-schema ledger must be rejected"

let test_ledger_skips_corrupt_row_with_line () =
  let rows = [ sample_of ~request:"r1" gemm; sample_of ~request:"r2" eq1 ] in
  let dir = fresh_dir () in
  Ledger.save ~dir rows;
  (* corrupt the middle: header is line 1, r1 line 2, garbage line 3,
     r2 line 4 *)
  let path = Ledger.file ~dir in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (match List.rev !lines with
  | header :: r1 :: rest ->
      let oc = open_out path in
      List.iter
        (fun l -> output_string oc (l ^ "\n"))
        (header :: r1 :: "{\"suite\":" :: rest);
      close_out oc
  | _ -> fail "expected a header and two rows");
  let metric name =
    Option.value ~default:0.0 (Tc_obs.Metrics.value Tc_obs.Metrics.global name)
  in
  let before = metric "cogent.audit.ledger.corrupt_rows" in
  (match Ledger.load ~dir with
  | Error m -> fail m
  | Ok rows' ->
      check Alcotest.int "both good rows survive" 2 (List.length rows');
      check Alcotest.bool "rows round-tripped" true (rows = rows'));
  check (Alcotest.float 0.0) "corrupt row counted" (before +. 1.0)
    (metric "cogent.audit.ledger.corrupt_rows");
  check (Alcotest.float 0.0) "gauge names the offending line" 3.0
    (metric "cogent.audit.ledger.corrupt_line")

(* ---- aggregation and the drift gate ---- *)

let two_suite_samples () =
  [
    sample_of ~suite:"s1" ~request:"r1" gemm;
    sample_of ~suite:"s1" ~request:"r2" eq1;
    sample_of ~suite:"s2" ~request:"r3" gemm;
  ]

let test_entries_grouping () =
  let es = Audit.entries (two_suite_samples ()) in
  check (Alcotest.list Alcotest.string) "one entry per group, in order"
    [ "s1/V100/fp64"; "s2/V100/fp64" ]
    (List.map (fun e -> e.Benchrep.name) es);
  let strategies (e : Benchrep.entry) =
    List.map (fun (s : Benchrep.strategy) -> s.Benchrep.strategy)
      e.Benchrep.strategies
  in
  List.iter
    (fun e ->
      check (Alcotest.list Alcotest.string) "calibration/dispatch/regret"
        [ "calibration"; "dispatch"; "regret" ]
        (strategies e))
    es;
  let s1 = List.hd es in
  let metric strat m =
    let s =
      List.find
        (fun (s : Benchrep.strategy) -> s.Benchrep.strategy = strat)
        s1.Benchrep.strategies
    in
    List.assoc m s.Benchrep.metrics
  in
  check (Alcotest.float 0.0) "sample count" 2.0 (metric "calibration" "samples");
  check (Alcotest.float 0.0) "dispatch mix sums to n" 2.0
    (metric "dispatch" "to_cogent" +. metric "dispatch" "to_ttgt");
  check (Alcotest.float 0.0) "no regret on representatives" 0.0
    (metric "regret" "requests")

let test_doc_is_pure () =
  let samples = two_suite_samples () in
  let d = Audit.doc samples in
  check Alcotest.string "target" "audit" d.Benchrep.target;
  check (Alcotest.float 0.0) "wall_s defaults to 0" 0.0 d.Benchrep.wall_s;
  check Alcotest.int "jobs defaults to 0" 0 d.Benchrep.jobs;
  (* the JSON document is a pure function of the samples *)
  let bytes doc = Tc_obs.Json.to_string_pretty (Benchrep.to_json doc) in
  check Alcotest.string "byte-stable" (bytes d) (bytes (Audit.doc samples))

(* The CI drift gate must trip when predicted times move — the footprint
   of any Simkernel calibration-constant change — and must stay green on
   an identical run. *)
let test_drift_gate_trips_on_prediction_shift () =
  let samples = two_suite_samples () in
  let baseline = Audit.doc samples in
  let same = Benchrep.diff ~tolerances:Audit.tolerances ~baseline baseline in
  check Alcotest.bool "identical run passes" true
    (Benchrep.regressions same = []);
  let perturb (e : Benchrep.entry) =
    {
      e with
      Benchrep.strategies =
        List.map
          (fun (s : Benchrep.strategy) ->
            {
              s with
              Benchrep.metrics =
                List.map
                  (fun (m, v) ->
                    if m = "pred_ms_sum" then (m, v *. 1.5) else (m, v))
                  s.Benchrep.metrics;
            })
          e.Benchrep.strategies;
    }
  in
  let drifted =
    { baseline with Benchrep.entries = List.map perturb baseline.Benchrep.entries }
  in
  let deltas = Benchrep.diff ~tolerances:Audit.tolerances ~baseline drifted in
  let regs = Benchrep.regressions deltas in
  check Alcotest.bool "prediction shift regresses" true (regs <> []);
  check Alcotest.bool "the tripwire is pred_ms_sum" true
    (List.for_all (fun d -> d.Benchrep.metric = "pred_ms_sum") regs);
  (* new regret also trips: requests is Lower_better with zero allowance *)
  let regress_regret (e : Benchrep.entry) =
    {
      e with
      Benchrep.strategies =
        List.map
          (fun (s : Benchrep.strategy) ->
            if s.Benchrep.strategy <> "regret" then s
            else
              {
                s with
                Benchrep.metrics =
                  List.map
                    (fun (m, v) ->
                      if m = "requests" then (m, v +. 1.0) else (m, v))
                    s.Benchrep.metrics;
              })
          e.Benchrep.strategies;
    }
  in
  let with_regret =
    {
      baseline with
      Benchrep.entries = List.map regress_regret baseline.Benchrep.entries;
    }
  in
  check Alcotest.bool "new regret regresses" true
    (Benchrep.regressions
       (Benchrep.diff ~tolerances:Audit.tolerances ~baseline with_regret)
    <> [])

(* ---- golden calibration report ---- *)

let golden_path file =
  (* dune materializes the golden files next to the test executable; fall
     back to the source tree for GOLDEN_UPDATE runs from the repo root. *)
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None && Sys.file_exists "test/golden"
  then Filename.concat "test/golden" file
  else if Sys.file_exists (Filename.concat "golden" file) then
    Filename.concat "golden" file
  else Filename.concat "test/golden" file

let read_golden file =
  let ic = open_in (golden_path file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden label file actual =
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None then begin
    let oc = open_out (golden_path file) in
    output_string oc actual;
    close_out oc
  end;
  check Alcotest.string label (read_golden file) actual

let test_render_golden () =
  check_golden "golden calibration report" "audit_eq1.txt"
    (Audit.render [ sample_of eq1 ])

let () =
  Alcotest.run "audit"
    [
      ( "sample",
        [
          Alcotest.test_case "sample invariants" `Quick test_sample_invariants;
          Alcotest.test_case "dispatch regret at own extents" `Quick
            test_dispatch_regret_on_own_extents;
          Alcotest.test_case "collector keeps insertion order" `Quick
            test_collector_order;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "save/load round-trips bit-exactly" `Quick
            test_ledger_roundtrip;
          Alcotest.test_case "missing ledger is empty" `Quick
            test_ledger_missing_is_empty;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_ledger_rejects_wrong_schema;
          Alcotest.test_case "corrupt row skipped with line number" `Quick
            test_ledger_skips_corrupt_row_with_line;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "entries group by suite/arch/precision" `Quick
            test_entries_grouping;
          Alcotest.test_case "doc is a pure function of the samples" `Quick
            test_doc_is_pure;
          Alcotest.test_case "drift gate trips on prediction shift" `Quick
            test_drift_gate_trips_on_prediction_shift;
          Alcotest.test_case "golden calibration report" `Quick
            test_render_golden;
        ] );
    ]
