(* Cross-validation of Tc_profile and its foundations: the Txcount
   transaction convention, the interpreter's ground-truth counters vs the
   simulator's boundary-exact prediction (they must agree EXACTLY — both
   sides count the same convention, so any gap is a bug in the simulator's
   pattern combinatorics), the rendered profiler report (golden), and the
   machine-readable bench report schema with its regression gate. *)

open Tc_gpu
open Tc_expr
open Cogent
module Json = Tc_obs.Json
module Profile = Tc_profile.Profile
module Benchrep = Tc_profile.Benchrep

let check = Alcotest.check
let fail = Alcotest.fail

(* ---- Txcount: the shared transaction-counting convention ---- *)

let axis tile cut stride = { Txcount.tile; cut; stride }
let sweep = Txcount.staged_sweep

let test_txcount_contiguous () =
  (* one wave of 32 contiguous fp64 elements spans two 128-byte lines *)
  check Alcotest.int "full contiguous" 2 (sweep ~width:32 ~ept:16 [| axis 32 32 1 |]);
  (* masked tail lanes shorten the segment *)
  check Alcotest.int "partial contiguous" 2 (sweep ~width:32 ~ept:16 [| axis 32 20 1 |]);
  check Alcotest.int "within one line" 1 (sweep ~width:32 ~ept:16 [| axis 32 10 1 |]);
  check Alcotest.int "cut=0 masks everything" 0
    (sweep ~width:32 ~ept:16 [| axis 32 0 1 |])

let test_txcount_strided () =
  (* a 8x4 slab of a row-major tensor: four address-disjoint rows, each
     its own segment under one line *)
  check Alcotest.int "row-major slab" 4
    (sweep ~width:32 ~ept:16 [| axis 8 8 1; axis 4 4 100 |])

let test_txcount_no_cross_wave_coalescing () =
  (* 32 contiguous elements in one 128-byte line: one wave of 32 threads
     needs one transaction, but two waves of 16 threads pay twice even
     though the addresses are adjacent (a later iteration of the
     cooperative loop is a separate memory operation) *)
  check Alcotest.int "one wave, one line" 1 (sweep ~width:32 ~ept:32 [| axis 32 32 1 |]);
  check Alcotest.int "two waves, two lines" 2 (sweep ~width:16 ~ept:32 [| axis 32 32 1 |])

let test_txcount_guard_gap_splits_segment () =
  (* boundary guards mask the middle of a wave; the in-range runs on
     either side are separate segments because their addresses are not
     adjacent *)
  check Alcotest.int "masked gap" 2
    (sweep ~width:8 ~ept:16 [| axis 4 2 1; axis 2 2 4 |]);
  check Alcotest.int "no gap when full" 1
    (sweep ~width:8 ~ept:16 [| axis 4 4 1; axis 2 2 4 |])

(* ---- measured counters == simulator-exact prediction ---- *)

(* A spread of enumerated configurations for a problem: with Gen's extents
   in 1..6 and power-of-two tile targets, most sampled plans have partial
   boundary tiles on several axes. *)
let sample_mappings problem =
  match Enumerate.enumerate problem with
  | [] -> []
  | all ->
      let n = List.length all in
      List.sort_uniq compare [ 0; n / 2; n - 1 ]
      |> List.map (fun k -> List.nth all k)

let agree_case (c : Gen.case) =
  let problem = c.Gen.problem in
  List.iter
    (fun mapping ->
      let plan =
        Plan.make ~problem ~mapping ~arch:Arch.v100 ~precision:Precision.FP64
      in
      let m = Interp.measure plan in
      let e =
        Tc_sim.Simkernel.transactions_exact Precision.FP64 problem mapping
      in
      if
        not
          (m.Interp.tx_lhs = e.Cost.lhs
          && m.Interp.tx_rhs = e.Cost.rhs
          && m.Interp.tx_out = e.Cost.out)
      then
        QCheck.Test.fail_reportf
          "measured (%g,%g,%g) <> exact (%g,%g,%g) for %a under %a"
          m.Interp.tx_lhs m.Interp.tx_rhs m.Interp.tx_out e.Cost.lhs e.Cost.rhs
          e.Cost.out Problem.pp problem Mapping.pp mapping;
      if m.Interp.fma_useful <> Plan.flops plan /. 2.0 then
        QCheck.Test.fail_reportf "useful FMAs %g <> flops/2 %g for %a"
          m.Interp.fma_useful
          (Plan.flops plan /. 2.0)
          Problem.pp problem;
      if m.Interp.fma_padded < m.Interp.fma_useful then
        QCheck.Test.fail_reportf "padded FMA slots below useful FMAs for %a"
          Problem.pp problem)
    (sample_mappings problem);
  true

let prop_measured_eq_exact =
  QCheck.Test.make ~count:40
    ~name:"Interp.measure == Simkernel.transactions_exact (no-L2)"
    Gen.case_arbitrary agree_case

(* execute ?counters must tally exactly what the standalone replay does,
   and fields must accumulate across executions. *)
let test_execute_counters () =
  let problem =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 6); ('b', 5); ('c', 4); ('d', 7); ('e', 3); ('f', 2) ]
  in
  let b idx tile = { Mapping.index = idx; tile } in
  let mapping =
    {
      Mapping.tbx = [ b 'a' 4 ];
      regx = [ b 'b' 2 ];
      tby = [ b 'd' 4 ];
      regy = [ b 'c' 2 ];
      tbk = [ b 'e' 2; b 'f' 2 ];
      grid = [];
    }
  in
  let plan =
    Plan.make ~problem ~mapping ~arch:Arch.v100 ~precision:Precision.FP64
  in
  let info = Problem.info problem in
  let orig = info.Tc_expr.Classify.original in
  let shape_of indices =
    Tc_tensor.Shape.of_indices ~sizes:(Problem.sizes problem) indices
  in
  let lhs =
    Tc_tensor.Dense.random ~seed:11 (shape_of orig.Ast.lhs.Ast.indices)
  in
  let rhs =
    Tc_tensor.Dense.random ~seed:12 (shape_of orig.Ast.rhs.Ast.indices)
  in
  let c = Interp.create_counters () in
  ignore (Interp.execute ~counters:c plan ~lhs ~rhs);
  let m = Interp.measure plan in
  let eq what a b = check (Alcotest.float 0.0) what a b in
  eq "tx_lhs" m.Interp.tx_lhs c.Interp.tx_lhs;
  eq "tx_rhs" m.Interp.tx_rhs c.Interp.tx_rhs;
  eq "tx_out" m.Interp.tx_out c.Interp.tx_out;
  eq "smem_bytes" m.Interp.smem_bytes c.Interp.smem_bytes;
  eq "fma_padded" m.Interp.fma_padded c.Interp.fma_padded;
  eq "fma_useful" m.Interp.fma_useful c.Interp.fma_useful;
  eq "store_tx_block_max" m.Interp.store_tx_block_max c.Interp.store_tx_block_max;
  check Alcotest.int "blocks" m.Interp.blocks c.Interp.blocks;
  ignore (Interp.execute ~counters:c plan ~lhs ~rhs);
  eq "tx_lhs accumulates" (2.0 *. m.Interp.tx_lhs) c.Interp.tx_lhs;
  check Alcotest.int "steps accumulate" (2 * m.Interp.steps) c.Interp.steps

(* ---- the profiler on the DESIGN eq1 contraction ---- *)

let golden_path file =
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat "golden" file)
  in
  if Sys.file_exists beside_exe then beside_exe
  else if Sys.file_exists (Filename.concat "golden" file) then
    Filename.concat "golden" file
  else Filename.concat "test/golden" file

let read_golden file =
  let ic = open_in (golden_path file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let eq1 =
  Problem.of_string_exn "abcd-aebf-dfce"
    ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]

let profile_eq1 = lazy (Profile.profile (Driver.best_plan eq1))

let test_profile_eq1_golden () =
  let p = Lazy.force profile_eq1 in
  check Alcotest.string "golden profile report"
    (read_golden "profile_eq1.txt")
    (Profile.render p)

let test_profile_eq1_contracts () =
  let p = Lazy.force profile_eq1 in
  check Alcotest.bool "simulator agrees exactly" true (Profile.sim_agrees p);
  check Alcotest.bool "cost model within documented bound" true
    (Profile.violations p = []);
  (match Json.parse (Json.to_string (Profile.to_json p)) with
  | Ok _ -> ()
  | Error e -> fail ("profile JSON does not parse: " ^ e));
  match Json.parse (Profile.timeline_chrome p) with
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> fail "timeline has no traceEvents")
  | Error e -> fail ("timeline is not valid chrome JSON: " ^ e)

(* ---- bench report schema and regression gate ---- *)

(* Metric values chosen to survive the %g round-trip exactly. *)
let sample_doc =
  {
    Benchrep.target = "figX";
    wall_s = 1.5;
    jobs = 1;
    entries =
      [
        {
          Benchrep.name = "e1";
          expr = "ab-ac-cb";
          arch = "V100";
          precision = "fp64";
          strategies =
            [
              {
                Benchrep.strategy = "cogent";
                metrics =
                  [ ("gflops", 123.5); ("transactions", 4096.0); ("cost", 5000.0) ];
                config = Some "TBx[a:16] TBy[b:16] TBk[c:8]";
              };
              {
                Benchrep.strategy = "talsh";
                metrics = [ ("gflops", 50.25) ];
                config = None;
              };
            ];
        };
      ];
  }

let test_benchrep_roundtrip () =
  (match Result.bind (Json.parse (Json.to_string (Benchrep.to_json sample_doc)))
           Benchrep.of_json
   with
  | Ok d -> check Alcotest.bool "doc roundtrip" true (d = sample_doc)
  | Error e -> fail ("doc roundtrip: " ^ e));
  match
    Result.bind
      (Json.parse (Json.to_string (Benchrep.baseline_to_json [ sample_doc ])))
      Benchrep.baseline_of_json
  with
  | Ok ds -> check Alcotest.bool "baseline roundtrip" true (ds = [ sample_doc ])
  | Error e -> fail ("baseline roundtrip: " ^ e)

let test_benchrep_file_roundtrip () =
  let path = Filename.temp_file "benchrep" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Benchrep.write ~path sample_doc;
      match Benchrep.read ~path with
      | Ok d -> check Alcotest.bool "write/read roundtrip" true (d = sample_doc)
      | Error e -> fail ("read back: " ^ e))

let with_gflops v doc =
  {
    doc with
    Benchrep.entries =
      List.map
        (fun (e : Benchrep.entry) ->
          {
            e with
            strategies =
              List.map
                (fun (s : Benchrep.strategy) ->
                  {
                    s with
                    metrics =
                      List.map
                        (fun (m, x) -> if m = "gflops" then (m, v) else (m, x))
                        s.metrics;
                  })
                e.strategies;
          })
        doc.Benchrep.entries;
  }

let verdicts deltas =
  List.map (fun d -> (d.Benchrep.metric, d.Benchrep.verdict)) deltas

let test_diff_gate () =
  (* identical run: nothing regresses *)
  let same = Benchrep.diff ~baseline:sample_doc sample_doc in
  check Alcotest.bool "identical run has no regressions" true
    (Benchrep.regressions same = []);
  (* 10% slower than baseline: gflops regresses in both strategies *)
  let slower = Benchrep.diff ~baseline:sample_doc (with_gflops 110.0 sample_doc) in
  check Alcotest.int "slower run regresses once (per strategy with gflops > tol)"
    1
    (List.length
       (List.filter
          (fun d -> d.Benchrep.verdict = Benchrep.Regression)
          slower));
  (* faster is an improvement, not a regression *)
  let faster = Benchrep.diff ~baseline:sample_doc (with_gflops 140.0 sample_doc) in
  check Alcotest.bool "faster run has no regressions" true
    (Benchrep.regressions faster = []);
  check Alcotest.bool "faster run reports improvements" true
    (List.exists (fun d -> d.Benchrep.verdict = Benchrep.Improvement) faster);
  (* a vanished strategy is fatal *)
  let gone =
    {
      sample_doc with
      Benchrep.entries =
        List.map
          (fun (e : Benchrep.entry) ->
            {
              e with
              strategies =
                List.filter
                  (fun (s : Benchrep.strategy) -> s.strategy <> "talsh")
                  e.strategies;
            })
          sample_doc.Benchrep.entries;
    }
  in
  let missing = Benchrep.diff ~baseline:sample_doc gone in
  check Alcotest.bool "missing strategy is a regression" true
    (List.exists
       (fun d -> d.Benchrep.verdict = Benchrep.Missing)
       (Benchrep.regressions missing));
  ignore (verdicts missing)

let test_diff_ungated_metric () =
  (* metrics without a tolerance entry are reported nowhere: informational
     quantities (timings, evaluation counts) never gate *)
  let doc =
    {
      sample_doc with
      Benchrep.entries =
        List.map
          (fun (e : Benchrep.entry) ->
            {
              e with
              strategies =
                List.map
                  (fun (s : Benchrep.strategy) ->
                    { s with metrics = ("ns_per_call", 1234.0) :: s.metrics })
                  e.strategies;
            })
          sample_doc.Benchrep.entries;
    }
  in
  let deltas = Benchrep.diff ~baseline:doc (with_gflops 123.5 doc) in
  check Alcotest.bool "ns_per_call produces no delta" true
    (not (List.exists (fun d -> d.Benchrep.metric = "ns_per_call") deltas))

let test_diff_exact_tolerance () =
  (* enumerated/kept are Exact: any drift beyond float slack regresses,
     in either direction *)
  let base =
    {
      Benchrep.target = "prunestats";
      wall_s = 0.0;
      jobs = 1;
      entries =
        [
          {
            Benchrep.name = "e1";
            expr = "ab-ac-cb";
            arch = "V100";
            precision = "fp64";
            strategies =
              [
                {
                  Benchrep.strategy = "search";
                  metrics = [ ("enumerated", 1000.0); ("kept", 30.0) ];
                  config = None;
                };
              ];
          };
        ];
    }
  in
  let bump v =
    {
      base with
      Benchrep.entries =
        List.map
          (fun (e : Benchrep.entry) ->
            {
              e with
              strategies =
                List.map
                  (fun (s : Benchrep.strategy) ->
                    { s with metrics = [ ("enumerated", 1000.0); ("kept", v) ] })
                  e.strategies;
            })
          base.Benchrep.entries;
    }
  in
  check Alcotest.bool "exact metric: equal passes" true
    (Benchrep.regressions (Benchrep.diff ~baseline:base (bump 30.0)) = []);
  check Alcotest.bool "exact metric: more kept still regresses" true
    (Benchrep.regressions (Benchrep.diff ~baseline:base (bump 31.0)) <> []);
  check Alcotest.bool "exact metric: fewer kept regresses" true
    (Benchrep.regressions (Benchrep.diff ~baseline:base (bump 29.0)) <> [])

let () =
  Alcotest.run "profile"
    [
      ( "txcount",
        [
          Alcotest.test_case "contiguous" `Quick test_txcount_contiguous;
          Alcotest.test_case "strided" `Quick test_txcount_strided;
          Alcotest.test_case "no cross-wave coalescing" `Quick
            test_txcount_no_cross_wave_coalescing;
          Alcotest.test_case "guard gap splits segment" `Quick
            test_txcount_guard_gap_splits_segment;
        ] );
      ( "cross-validation",
        [
          Gen.to_alcotest prop_measured_eq_exact;
          Alcotest.test_case "execute ?counters" `Quick test_execute_counters;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "golden report" `Quick test_profile_eq1_golden;
          Alcotest.test_case "accuracy contracts" `Quick
            test_profile_eq1_contracts;
        ] );
      ( "benchrep",
        [
          Alcotest.test_case "json roundtrip" `Quick test_benchrep_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_benchrep_file_roundtrip;
          Alcotest.test_case "diff gate" `Quick test_diff_gate;
          Alcotest.test_case "ungated metrics" `Quick test_diff_ungated_metric;
          Alcotest.test_case "exact tolerance" `Quick test_diff_exact_tolerance;
        ] );
    ]
