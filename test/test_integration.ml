(* Cross-library integration: the full pipeline (parse -> classify ->
   enumerate -> prune -> cost -> plan -> simulate / execute / emit) and the
   comparative claims of the paper's evaluation at small scale. *)

open Tc_tensor
open Tc_gpu
open Tc_expr

let check = Alcotest.check
let fail = Alcotest.fail

let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let test_pipeline_eq1 () =
  let problem =
    Problem.of_string_exn "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"
      ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]
  in
  let r = Cogent.Driver.generate_exn ~arch:Arch.v100 ~measure:simulate problem in
  let src = Cogent.Driver.cuda_source r in
  check Alcotest.bool "substantial CUDA" true (String.length src > 2000);
  check Alcotest.bool "pruning removes configurations" true
    (let s = r.Cogent.Driver.prune_stats in
     s.Cogent.Prune.kept < s.Cogent.Prune.enumerated);
  check Alcotest.bool "simulated throughput plausible" true
    (let g = simulate r.Cogent.Driver.plan in
     g > 100.0 && g < Arch.peak_gflops Arch.v100 Precision.FP64)

let test_three_backends_agree () =
  (* COGENT interpreter, TTGT pipeline and reference einsum all compute the
     same contraction *)
  let problem =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 6); ('b', 4); ('c', 5); ('d', 3); ('e', 4); ('f', 2) ]
  in
  let lhs = Dense.random ~seed:41 (Problem.lhs_shape problem) in
  let rhs = Dense.random ~seed:42 (Problem.rhs_shape problem) in
  let reference =
    Contract_ref.contract ~out_indices:(Index.list_of_string "abcd") lhs rhs
  in
  let cogent =
    Cogent.Interp.execute (Cogent.Driver.best_plan problem) ~lhs ~rhs
  in
  let ttgt = Tc_ttgt.Ttgt.execute problem ~lhs ~rhs in
  let nwchem =
    Cogent.Interp.execute (Tc_nwchem.Nwgen.plan problem) ~lhs ~rhs
  in
  check Alcotest.bool "cogent == reference" true
    (Dense.equal_approx ~tol:1e-9 reference cogent);
  check Alcotest.bool "ttgt == reference" true
    (Dense.equal_approx ~tol:1e-9 reference ttgt);
  check Alcotest.bool "nwchem plan == reference" true
    (Dense.equal_approx ~tol:1e-9 reference nwchem)

let test_ccsdt_ordering_claim () =
  (* The paper's headline CCSD(T) ordering: COGENT > NWChem > TAL_SH, on
     both devices, at the real benchmark size. *)
  let p = Tc_tccg.Suite.problem Tc_tccg.Suite.sd2_1 in
  List.iter
    (fun arch ->
      let cg = simulate (Cogent.Driver.best_plan ~arch ~measure:simulate p) in
      let nw = simulate (Tc_nwchem.Nwgen.plan ~arch p) in
      let ts =
        (Tc_ttgt.Ttgt.run_ctx (Cogent.Ctx.make ~arch ()) p).Tc_ttgt.Ttgt.gflops
      in
      if not (cg >= nw && nw > ts) then
        fail
          (Printf.sprintf "%s: COGENT %.0f, NWChem %.0f, TAL_SH %.0f"
             arch.Arch.name cg nw ts))
    [ Arch.p100; Arch.v100 ]

let test_sd1_talsh_transpose_bound () =
  (* §V: "the time spent to transpose the input and output tensors slows
     down TAL_SH" on CCSD(T) *)
  let p =
    Tc_tccg.Suite.problem (Option.get (Tc_tccg.Suite.find "sd1_1"))
  in
  let e = Tc_ttgt.Ttgt.run_ctx Cogent.Ctx.default p in
  check Alcotest.bool "transposes dominate GEMM" true
    (e.Tc_ttgt.Ttgt.transpose_time_s > e.Tc_ttgt.Ttgt.gemm_time_s)

let test_ccsd_4d_talsh_strong () =
  (* §V: on 4D = 4D * 4D contractions the transposition time is very much
     lower than compute, so TAL_SH is competitive *)
  let p = Tc_tccg.Suite.problem (Option.get (Tc_tccg.Suite.find "ccsd_9")) in
  let e = Tc_ttgt.Ttgt.run_ctx Cogent.Ctx.default p in
  check Alcotest.bool "transpose << gemm" true
    (e.Tc_ttgt.Ttgt.transpose_time_s < 0.25 *. e.Tc_ttgt.Ttgt.gemm_time_s);
  let cg =
    simulate (Cogent.Driver.best_plan ~arch:Arch.v100 ~measure:simulate p)
  in
  check Alcotest.bool "within 2x of each other" true
    (cg /. e.Tc_ttgt.Ttgt.gflops < 2.0 && e.Tc_ttgt.Ttgt.gflops /. cg < 2.0)

let test_codegen_time_far_below_tuning_time () =
  (* the operational claim: model-driven generation is orders of magnitude
     faster than autotuning *)
  let p = Tc_tccg.Suite.problem Tc_tccg.Suite.sd2_1 in
  let t0 = Sys.time () in
  ignore (Cogent.Driver.generate_exn p);
  let generation_time = Sys.time () -. t0 in
  check Alcotest.bool "generation under 10 s of CPU" true (generation_time < 10.0)

let test_interp_matches_cuda_structure () =
  (* the emitted kernel and the interpreter share the plan: spot-check that
     the kernel's compile-time constants match the plan the interpreter
     ran *)
  let problem =
    Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 32); ('b', 32); ('c', 32) ]
  in
  let plan = Cogent.Driver.best_plan problem in
  let src = Cogent.Codegen.emit_kernel plan in
  let expect =
    Printf.sprintf "const int tid = ty * %d + tx;" (Cogent.Plan.threads_x plan)
  in
  let has needle =
    let ln = String.length needle and ls = String.length src in
    let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "thread shape embedded" true (has expect)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "Eq. 1 end to end" `Quick test_pipeline_eq1;
          Alcotest.test_case "three backends agree" `Quick
            test_three_backends_agree;
          Alcotest.test_case "kernel constants match plan" `Quick
            test_interp_matches_cuda_structure;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "CCSD(T) ordering" `Quick test_ccsdt_ordering_claim;
          Alcotest.test_case "SD1: TAL_SH transpose-bound" `Quick
            test_sd1_talsh_transpose_bound;
          Alcotest.test_case "4D cases: TAL_SH competitive" `Quick
            test_ccsd_4d_talsh_strong;
          Alcotest.test_case "generation time" `Quick
            test_codegen_time_far_below_tuning_time;
        ] );
    ]
