open Tc_gpu
open Tc_expr
open Cogent
open Tc_autotune

let check = Alcotest.check

let sd2_small =
  Problem.of_string_exn "abcdef-gdab-efgc"
    ~sizes:
      [ ('a', 8); ('b', 8); ('c', 8); ('d', 24); ('e', 24); ('f', 24); ('g', 24) ]

let quick_params =
  { Genetic.default_params with Genetic.population = 20; generations = 5 }

(* ---- Space ---- *)

let space_decodes_valid =
  QCheck.Test.make ~count:150 ~name:"random genomes decode to valid mappings"
    Gen.case_arbitrary (fun c ->
      let st = Random.State.make [| 17 |] in
      let ok = ref true in
      for _ = 1 to 10 do
        let g = Space.random st c.Gen.problem in
        match Space.decode c.Gen.problem g with
        | Some m -> ok := !ok && Mapping.validate c.Gen.problem m = Ok ()
        | None -> ok := false
      done;
      !ok)

let mutation_stays_valid =
  QCheck.Test.make ~count:100 ~name:"mutation and crossover stay decodable"
    Gen.case_arbitrary (fun c ->
      let st = Random.State.make [| 23 |] in
      let a = Space.random st c.Gen.problem in
      let b = Space.random st c.Gen.problem in
      let child = Space.mutate st c.Gen.problem (Space.crossover st a b) in
      Space.decode c.Gen.problem child <> None)

(* Even the unstructured TC-space configurations must compute the right
   answer when executed: the schema's correctness is independent of the
   mapping quality. *)
let space_plans_execute_correctly =
  QCheck.Test.make ~count:50 ~name:"random TC-space plans execute to reference"
    Gen.case_arbitrary (fun c ->
      let st = Random.State.make [| 97 |] in
      let g = Space.random st c.Gen.problem in
      match Space.decode c.Gen.problem g with
      | None -> false
      | Some mapping ->
          let plan =
            Cogent.Plan.make ~problem:c.Gen.problem ~mapping
              ~arch:Tc_gpu.Arch.v100 ~precision:Tc_gpu.Precision.FP64
          in
          let got =
            Cogent.Interp.execute plan ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs
          in
          Tc_tensor.Dense.equal_approx ~tol:1e-9 (Gen.reference c) got)

let test_space_has_no_register_dims () =
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 50 do
    let g = Space.random st sd2_small in
    List.iter
      (fun gene ->
        if gene.Space.dim = Space.Regx || gene.Space.dim = Space.Regy then
          Alcotest.fail "TC-era space must not register-tile")
      g.Space.externals
  done

let test_space_size_positive () =
  check Alcotest.bool "positive" true (Space.size sd2_small > 1000.0)

(* ---- Genetic ---- *)

let test_tune_deterministic () =
  let r1 = Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 sd2_small in
  let r2 = Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 sd2_small in
  check (Alcotest.float 1e-9) "same best" r1.Genetic.best_gflops
    r2.Genetic.best_gflops;
  check Alcotest.int "same evaluation count" r1.Genetic.evaluations
    r2.Genetic.evaluations

let test_tune_trace_monotone () =
  let r = Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 sd2_small in
  let rec monotone last = function
    | [] -> true
    | (p : Genetic.trace_point) :: rest ->
        p.Genetic.best_gflops >= last -. 1e-9
        && monotone p.Genetic.best_gflops rest
  in
  check Alcotest.bool "best-so-far is monotone" true (monotone 0.0 r.Genetic.trace);
  let candidates =
    quick_params.Genetic.population
    + (quick_params.Genetic.generations - 1)
      * (quick_params.Genetic.population - quick_params.Genetic.elite)
  in
  check Alcotest.int "one trace point per candidate" candidates
    (List.length r.Genetic.trace);
  check Alcotest.bool "evaluations count distinct simulator calls" true
    (r.Genetic.evaluations > 0
    && r.Genetic.evaluations <= List.length r.Genetic.trace);
  check Alcotest.bool "tuning time accumulates" true (r.Genetic.tuning_time_s > 0.0)

(* Fitness is memoized per decoded mapping: the [eval] hook must fire
   exactly once per distinct mapping, and [evaluations] counts exactly
   those calls.  [eval] may run on pool workers, hence the atomic. *)
let test_memoized_distinct_evaluations () =
  let calls = Atomic.make 0 in
  let eval m =
    Atomic.incr calls;
    (Genetic.fitness Arch.v100 Precision.FP32 sd2_small m, 1e-3)
  in
  let r =
    Genetic.tune ~params:quick_params ~eval Arch.v100 Precision.FP32 sd2_small
  in
  check Alcotest.int "one simulator call per distinct mapping"
    (Atomic.get calls) r.Genetic.evaluations;
  check Alcotest.bool "re-bred duplicates hit the memo" true
    (r.Genetic.evaluations < List.length r.Genetic.trace)

let test_tune_improves_over_random_start () =
  let r = Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 sd2_small in
  let first_best =
    match r.Genetic.trace with p :: _ -> p.Genetic.best_gflops | [] -> 0.0
  in
  check Alcotest.bool "final >= first" true
    (r.Genetic.best_gflops >= first_best)

let test_fitness_zero_for_infeasible () =
  let m =
    {
      Mapping.tbx =
        [ { Mapping.index = 'd'; tile = 24 }; { Mapping.index = 'a'; tile = 8 } ];
      regx = [ { Mapping.index = 'b'; tile = 8 } ];
      tby = [ { Mapping.index = 'e'; tile = 24 }; { Mapping.index = 'f'; tile = 8 } ];
      regy = [ { Mapping.index = 'c'; tile = 8 } ];
      tbk = [ { Mapping.index = 'g'; tile = 24 } ];
      grid = [];
    }
  in
  (* 192x192 threads is far over the hardware limit *)
  check (Alcotest.float 0.0) "zero" 0.0
    (Genetic.fitness Arch.v100 Precision.FP32 sd2_small m)

let test_quality_factor_applied () =
  let m = Tuner.untuned_mapping sd2_small in
  let full = Genetic.fitness ~quality:1.0 Arch.v100 Precision.FP32 sd2_small m in
  let scaled =
    Genetic.fitness ~quality:0.5 Arch.v100 Precision.FP32 sd2_small m
  in
  check (Alcotest.float 1e-9) "scaling" (full /. 2.0) scaled

(* ---- Tuner facade ---- *)

let test_untuned_is_terrible () =
  let p =
    Problem.of_string_exn "abcdef-gdab-efgc"
      ~sizes:
        [ ('a', 16); ('b', 16); ('c', 16); ('d', 48); ('e', 48); ('f', 48); ('g', 48) ]
  in
  let g = Tuner.untuned_gflops Arch.v100 Precision.FP32 p in
  check Alcotest.bool "below 1 GFLOPS (paper Fig. 8)" true (g < 1.0 && g > 0.0)

let test_tuned_beats_untuned () =
  let r = Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 sd2_small in
  let u = Tuner.untuned_gflops Arch.v100 Precision.FP32 sd2_small in
  check Alcotest.bool "tuned much faster" true (r.Genetic.best_gflops > 10.0 *. u)

let test_cogent_beats_tuned_tc () =
  let p =
    Problem.of_string_exn "abcdef-gdab-efgc"
      ~sizes:
        [ ('a', 16); ('b', 16); ('c', 16); ('d', 48); ('e', 48); ('f', 48); ('g', 48) ]
  in
  let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops in
  let cg = simulate (Driver.best_plan ~precision:Precision.FP32 ~measure:simulate p) in
  let tc =
    (Genetic.tune ~params:quick_params Arch.v100 Precision.FP32 p)
      .Genetic.best_gflops
  in
  check Alcotest.bool "COGENT model-driven beats autotuned TC" true (cg > tc)

let () =
  Alcotest.run "autotune"
    [
      ( "space",
        [
          Gen.to_alcotest space_decodes_valid;
          Gen.to_alcotest mutation_stays_valid;
          Gen.to_alcotest space_plans_execute_correctly;
          Alcotest.test_case "no register dimensions" `Quick
            test_space_has_no_register_dims;
          Alcotest.test_case "space size" `Quick test_space_size_positive;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "deterministic under a seed" `Quick
            test_tune_deterministic;
          Alcotest.test_case "trace is monotone and complete" `Quick
            test_tune_trace_monotone;
          Alcotest.test_case "improves over the initial population" `Quick
            test_tune_improves_over_random_start;
          Alcotest.test_case "memoized distinct evaluations" `Quick
            test_memoized_distinct_evaluations;
          Alcotest.test_case "infeasible fitness is zero" `Quick
            test_fitness_zero_for_infeasible;
          Alcotest.test_case "quality factor" `Quick test_quality_factor_applied;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "untuned TC below 1 GFLOPS" `Quick
            test_untuned_is_terrible;
          Alcotest.test_case "tuned beats untuned" `Quick test_tuned_beats_untuned;
          Alcotest.test_case "COGENT beats tuned TC" `Quick
            test_cogent_beats_tuned_tc;
        ] );
    ]
