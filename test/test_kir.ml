(* IR-level checks (Tc_kir): resource derivation agrees with the planner,
   the occupancy request reproduces the plan's occupancy, staging is
   SMEM-bank-conflict-free, guard elimination fires exactly on
   divisibility, and the C-host dialect has the loop-emulated structure. *)

open Tc_gpu
open Tc_expr
open Cogent

let check = Alcotest.check

let toy_plan =
  let problem =
    Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 32); ('b', 32); ('c', 32) ]
  in
  let b idx tile = { Mapping.index = idx; tile } in
  let mapping =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 16 ];
      regy = [];
      tbk = [ b 'c' 8 ];
      grid = [];
    }
  in
  Plan.make ~problem ~mapping ~arch:Arch.v100 ~precision:Precision.FP64

let has_sub src needle =
  let ln = String.length needle and ls = String.length src in
  let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
  go 0

(* ---- properties over random problems (shared generator, fixed seed) ---- *)

let prop_resources =
  QCheck.Test.make ~count:60 ~name:"IR-derived smem/regs match the plan"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      let k = Codegen.lower plan in
      Tc_kir.Check.smem_bytes k = Plan.smem_bytes plan
      && Tc_kir.Check.reg_estimate k = Plan.regs_per_thread plan)

let prop_occupancy =
  QCheck.Test.make ~count:60 ~name:"IR occupancy request matches the plan"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      let k = Codegen.lower plan in
      let got =
        Occupancy.calculate plan.Plan.arch (Tc_kir.Check.occupancy_request k)
      in
      let want = Plan.occupancy plan in
      got.Occupancy.active_blocks_per_sm = want.Occupancy.active_blocks_per_sm
      && got.Occupancy.active_warps_per_sm = want.Occupancy.active_warps_per_sm
      && got.Occupancy.occupancy = want.Occupancy.occupancy)

let has_guard stmts =
  Tc_kir.Ir.exists_expr
    (function Tc_kir.Ir.Lt _ -> true | _ -> false)
    stmts

let guarded_phases (k : Tc_kir.Ir.kernel) =
  k.Tc_kir.Ir.grid_setup @ k.Tc_kir.Ir.block_setup @ k.Tc_kir.Ir.step_counts
  @ k.Tc_kir.Ir.thread_init @ k.Tc_kir.Ir.acc_init @ k.Tc_kir.Ir.step_setup
  @ k.Tc_kir.Ir.stage @ k.Tc_kir.Ir.compute @ k.Tc_kir.Ir.store

let count_selects stmts =
  let n = ref 0 in
  ignore
    (Tc_kir.Ir.map_expr
       (function
         | Tc_kir.Ir.Select _ as e ->
             incr n;
             e
         | e -> e)
       stmts);
  !n

let prop_guard_elim =
  QCheck.Test.make ~count:60
    ~name:"guard elimination fires iff an extent divides its tile"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      let p = plan.Plan.problem and m = plan.Plan.mapping in
      let info = Problem.info p in
      let all = Tc_expr.Classify.all_indices info in
      let divisible i = Problem.extent p i mod Mapping.tile_of m i = 0 in
      let k = Codegen.lower plan in
      let k', fired = Tc_kir.Opt.eliminate_guards k in
      (* per-operand: a slab's staging Select collapses exactly when every
         index of that operand divides its tile — one guard being trivially
         true must not drop the other slab's zero-fill *)
      let spec = k.Tc_kir.Ir.spec in
      let surviving indices = if List.for_all divisible indices then 0 else 1 in
      fired = List.exists divisible all
      && has_guard (guarded_phases k') = not (List.for_all divisible all)
      && count_selects k'.Tc_kir.Ir.stage
         = surviving spec.Tc_kir.Ir.lhs + surviving spec.Tc_kir.Ir.rhs)

let prop_staging_conflict_free =
  QCheck.Test.make ~count:60 ~name:"staging writes are bank-conflict-free"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      Tc_kir.Check.staging_conflict_ways (Codegen.lower plan) = 1)

(* ---- units ---- *)

let test_cross_validate_ok () =
  (* must not raise *)
  let k = Codegen.lower toy_plan in
  Tc_kir.Check.cross_validate
    ~expected_smem:(Plan.smem_bytes toy_plan)
    ~expected_regs:(Plan.regs_per_thread toy_plan)
    k;
  check Alcotest.int "smem" (Plan.smem_bytes toy_plan)
    (Tc_kir.Check.smem_bytes k)

let test_cross_validate_raises () =
  let k = Codegen.lower toy_plan in
  match
    Tc_kir.Check.cross_validate ~expected_smem:1 ~expected_regs:1 k
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "resource mismatch accepted"

let test_conflict_detected () =
  (* a deliberately strided staging write: lanes 0..31 hit addresses 2*tid,
     so lanes L and L+16 collide in bank (2L mod 32) -> 2-way *)
  let open Tc_kir.Ir in
  let k = Codegen.lower toy_plan in
  let strided =
    {
      k with
      stage =
        [
          For
            {
              var = "l"; start = Var "tid"; bound = Int_lit 512;
              step = Int_lit 256; unroll = false;
              body =
                [ Assign (Larr ("s_A", Mul (Var "l", Int_lit 2)), Scalar_zero) ];
            };
        ];
    }
  in
  check Alcotest.int "conflict-free lowering" 1
    (Tc_kir.Check.staging_conflict_ways k);
  check Alcotest.int "2-way conflict detected" 2
    (Tc_kir.Check.staging_conflict_ways strided)

(* The same toy configuration double-buffered on a device with async
   copies: Check's accounting must charge the 2x slabs and the pipeline's
   bookkeeping registers exactly as the plan does, staging must stay
   bank-conflict-free, and the CUDA text must carry the cp.async
   prologue/rotation structure. *)
let toy_pipelined =
  Plan.with_schema Schema.Pipelined
    { toy_plan with Plan.arch = Arch.a100 }

let test_pipelined_resources () =
  let k = Codegen.lower toy_pipelined in
  check Alcotest.int "smem doubles" (2 * Plan.smem_bytes toy_plan)
    (Tc_kir.Check.smem_bytes k);
  Tc_kir.Check.cross_validate
    ~expected_smem:(Plan.smem_bytes toy_pipelined)
    ~expected_regs:(Plan.regs_per_thread toy_pipelined)
    k;
  check Alcotest.bool "pipeline costs extra registers" true
    (Plan.regs_per_thread toy_pipelined > Plan.regs_per_thread toy_plan);
  check Alcotest.int "staging stays conflict-free" 1
    (Tc_kir.Check.staging_conflict_ways k)

let test_pipelined_cuda_structure () =
  let src = Codegen.emit_kernel ~dialect:Codegen.Cuda toy_pipelined in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "contains %S" needle) true
        (has_sub src needle))
    [
      "__pipeline_memcpy_async";
      "__pipeline_commit();";
      "__pipeline_wait_prior(1);";
      "const int buf_comp = step % 2;";
      "const int buf_stage = stage_step % 2;";
    ];
  (* the classic schema must stay free of pipeline intrinsics *)
  let classic = Codegen.emit_kernel ~dialect:Codegen.Cuda toy_plan in
  check Alcotest.bool "classic has no pipeline intrinsics" false
    (has_sub classic "__pipeline")

let test_guard_elim_toy () =
  (* 32 divides every tile (16, 16, 8): all guards disappear *)
  let k', fired = Tc_kir.Opt.eliminate_guards (Codegen.lower toy_plan) in
  check Alcotest.bool "fired" true fired;
  check Alcotest.bool "no guards left" false (has_guard (guarded_phases k'))

let test_guard_elim_mixed () =
  (* regression: N_b = 33 does not divide its 16-tile, so slab B keeps its
     guarded zero-fill even though slab A's guard is trivially true — an
     elimination of A's flag must not leak onto B's Select *)
  let problem =
    Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 32); ('b', 33); ('c', 32) ]
  in
  let b idx tile = { Mapping.index = idx; tile } in
  let mapping =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 16 ];
      regy = [];
      tbk = [ b 'c' 8 ];
      grid = [];
    }
  in
  let plan =
    Plan.make ~problem ~mapping ~arch:Arch.v100 ~precision:Precision.FP64
  in
  let k', fired = Tc_kir.Opt.eliminate_guards (Codegen.lower plan) in
  check Alcotest.bool "fired" true fired;
  check Alcotest.int "slab B select survives" 1
    (count_selects k'.Tc_kir.Ir.stage);
  check Alcotest.bool "store guard survives" true
    (has_guard k'.Tc_kir.Ir.store)

let test_specialize () =
  let k = Tc_kir.Opt.specialize (Codegen.lower toy_plan) in
  let extent_var =
    Tc_kir.Ir.exists_expr
      (function
        | Tc_kir.Ir.Var n ->
            String.length n = 3 && n.[0] = 'N' && n.[1] = '_'
        | _ -> false)
      (guarded_phases k)
  in
  check Alcotest.bool "no extent parameters left" false extent_var

let test_c_host_structure () =
  let src = Codegen.emit_kernel ~dialect:Codegen.C_host toy_plan in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "contains %S" needle) true
        (has_sub src needle))
    [
      "void cogent_ab_ac_cb(";
      "for (long long blk = 0; blk < n_blocks; ++blk)";
      "for (int t_y = 0; t_y < 16; ++t_y)";
      "for (int t_x = 0; t_x < 16; ++t_x)";
      "double r_C[256];";
      "const int N_a";
    ];
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "lacks %S" needle) false
        (has_sub src needle))
    [ "__global__"; "__shared__"; "__syncthreads"; "threadIdx"; "restrict" ]

let test_evaluator () =
  let open Tc_kir.Ir in
  let writes = ref [] in
  let env =
    make_env
      ~on_access:(fun kind name addr ->
        if kind = Write then writes := (name, addr) :: !writes)
      ()
  in
  exec env
    [
      Decl { ty = Int; const = true; name = "x"; init = Some (Int_lit 3) };
      For
        {
          var = "i"; start = Int_lit 0; bound = Int_lit 4; step = Int_lit 1;
          unroll = false;
          body =
            [ Assign (Larr ("a", Add (Var "i", Mul (Var "x", Int_lit 10))),
                      Int_lit 0) ];
        };
    ];
  check Alcotest.int "x bound" 3 (Option.get (get_var env "x"));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "recorded writes"
    [ ("a", 30); ("a", 31); ("a", 32); ("a", 33) ]
    (List.rev !writes)

let test_host_fill_matches_c_formula () =
  (* spot values computed with the C expression by hand *)
  let f = Tc_kir.Print.host_fill in
  check (Alcotest.float 1e-12) "tag 1, k 0"
    (float_of_int (40503 land 0xFFFFFF) /. 16777216.0 -. 0.5)
    (f ~tag:1 0);
  check Alcotest.bool "range" true
    (List.for_all
       (fun k ->
         let v = f ~tag:2 k in
         v >= -0.5 && v < 0.5)
       [ 0; 1; 17; 123; 4095 ])

let () =
  Alcotest.run "tc_kir"
    [
      ( "properties",
        [
          Gen.to_alcotest prop_resources;
          Gen.to_alcotest prop_occupancy;
          Gen.to_alcotest prop_guard_elim;
          Gen.to_alcotest prop_staging_conflict_free;
        ] );
      ( "checks",
        [
          Alcotest.test_case "cross-validate accepts" `Quick
            test_cross_validate_ok;
          Alcotest.test_case "cross-validate rejects" `Quick
            test_cross_validate_raises;
          Alcotest.test_case "bank conflicts detected" `Quick
            test_conflict_detected;
          Alcotest.test_case "pipelined resource accounting" `Quick
            test_pipelined_resources;
          Alcotest.test_case "pipelined CUDA structure" `Quick
            test_pipelined_cuda_structure;
        ] );
      ( "passes",
        [
          Alcotest.test_case "guard elimination (all divide)" `Quick
            test_guard_elim_toy;
          Alcotest.test_case "guard elimination (mixed divisibility)" `Quick
            test_guard_elim_mixed;
          Alcotest.test_case "specialization" `Quick test_specialize;
        ] );
      ( "printing",
        [
          Alcotest.test_case "C-host structure" `Quick test_c_host_structure;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "loops and accesses" `Quick test_evaluator;
          Alcotest.test_case "host fill" `Quick
            test_host_fill_matches_c_formula;
        ] );
    ]
