open Tc_gpu
open Tc_expr
open Cogent

let check = Alcotest.check
let fail = Alcotest.fail

let eq1 =
  Problem.of_string_exn "abcd-aebf-dfce"
    ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]

let gemm_like =
  Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 32); ('b', 32); ('c', 32) ]

let b idx tile = { Mapping.index = idx; tile }

let gemm_mapping =
  {
    Mapping.tbx = [ b 'a' 16 ];
    regx = [];
    tby = [ b 'b' 16 ];
    regy = [];
    tbk = [ b 'c' 8 ];
    grid = [];
  }

let eq1_mapping =
  {
    Mapping.tbx = [ b 'a' 16 ];
    regx = [ b 'b' 4 ];
    tby = [ b 'd' 16 ];
    regy = [ b 'c' 4 ];
    tbk = [ b 'e' 8; b 'f' 1 ];
    grid = [];
  }

(* ---- Mapping ---- *)

let test_mapping_sizes () =
  check Alcotest.int "tbx" 16 (Mapping.size_tbx eq1_mapping);
  check Alcotest.int "regx" 4 (Mapping.size_regx eq1_mapping);
  check Alcotest.int "tbk" 8 (Mapping.size_tbk eq1_mapping);
  check Alcotest.int "threads" 256 (Mapping.threads_per_block eq1_mapping);
  check Alcotest.int "smem elems = (TBx*REGx + TBy*REGy)*TBk"
    (((16 * 4) + (16 * 4)) * 8)
    (Mapping.smem_elems eq1_mapping);
  check Alcotest.int "reg elems = RX*RY + RX + RY" (16 + 4 + 4)
    (Mapping.reg_elems_per_thread eq1_mapping)

let test_mapping_tile_of () =
  check Alcotest.int "tbx index" 16 (Mapping.tile_of eq1_mapping 'a');
  check Alcotest.int "tbk index" 1 (Mapping.tile_of eq1_mapping 'f');
  let with_grid = { eq1_mapping with Mapping.regx = []; grid = [ 'b' ] } in
  check Alcotest.int "grid tile is 1" 1 (Mapping.tile_of with_grid 'b');
  match Mapping.tile_of eq1_mapping 'z' with
  | exception Not_found -> ()
  | _ -> fail "foreign index accepted"

let test_mapping_blocks_steps () =
  (* extents 48/tile 16 -> 3; 48/4 -> 12; steps: 32/8 * 32/1 *)
  check Alcotest.int "blocks" (3 * 12 * 12 * 3)
    (Mapping.num_blocks eq1 eq1_mapping);
  check Alcotest.int "steps" (4 * 32) (Mapping.num_steps eq1 eq1_mapping);
  (* ceil semantics on non-divisible extents *)
  let p =
    Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 33); ('b', 32); ('c', 9) ]
  in
  check Alcotest.int "ceil blocks" (3 * 2) (Mapping.num_blocks p gemm_mapping);
  check Alcotest.int "ceil steps" 2 (Mapping.num_steps p gemm_mapping)

let test_mapping_validate_ok () =
  (match Mapping.validate eq1 eq1_mapping with
  | Ok () -> ()
  | Error e -> fail e);
  match Mapping.validate gemm_like gemm_mapping with
  | Ok () -> ()
  | Error e -> fail e

let test_mapping_validate_rejects () =
  let expect_err m msg =
    match Mapping.validate eq1 m with
    | Error _ -> ()
    | Ok () -> fail msg
  in
  expect_err
    { eq1_mapping with Mapping.grid = [ 'b' ] }
    "external mapped twice accepted";
  expect_err
    { eq1_mapping with Mapping.regx = [] }
    "missing external accepted";
  expect_err
    { eq1_mapping with Mapping.tbk = [ b 'e' 8 ] }
    "missing internal accepted";
  expect_err
    {
      eq1_mapping with
      (* d is an rhs external; it may not sit on the X side *)
      Mapping.regx = [ b 'd' 4 ];
      tby = [ b 'b' 16 ];
      regy = [ b 'c' 4 ];
    }
    "wrong side accepted";
  expect_err
    { eq1_mapping with Mapping.tbx = [ b 'a' 64 ] }
    "tile above extent accepted";
  expect_err
    { eq1_mapping with Mapping.tbx = [ b 'a' 0 ] }
    "zero tile accepted"

let test_mapping_compare () =
  check Alcotest.bool "equal to itself" true
    (Mapping.equal eq1_mapping eq1_mapping);
  check Alcotest.bool "differs on tile" false
    (Mapping.equal eq1_mapping { eq1_mapping with Mapping.tbx = [ b 'a' 8 ] })

(* ---- Enumerate ---- *)

let test_pack_greedy_clamp () =
  (* extent 24 crosses target 16: clamped to 16/1 = 16 *)
  let bindings, reached =
    Enumerate.pack_greedy ~target:16 ~first:(Some ('a', 24)) ~candidates:[]
  in
  check Alcotest.bool "reached" true reached;
  check Alcotest.int "clamped tile" 16 (List.hd bindings).Mapping.tile

let test_pack_greedy_multi () =
  (* 2 * 4 = 8 exactly packs two indices *)
  let bindings, reached =
    Enumerate.pack_greedy ~target:8 ~first:None
      ~candidates:[ ('a', 2); ('b', 4) ]
  in
  check Alcotest.bool "reached" true reached;
  check Alcotest.int "two bindings" 2 (List.length bindings);
  check Alcotest.int "a full" 2 (List.nth bindings 0).Mapping.tile;
  check Alcotest.int "b full" 4 (List.nth bindings 1).Mapping.tile

let test_pack_greedy_non_divisible () =
  (* prev 6, target 16: crossing index clamped to 16/6 = 2 *)
  let bindings, reached =
    Enumerate.pack_greedy ~target:16 ~first:None
      ~candidates:[ ('a', 6); ('b', 30) ]
  in
  check Alcotest.bool "reached" true reached;
  check Alcotest.int "b clamped to 2" 2 (List.nth bindings 1).Mapping.tile

let test_pack_greedy_exhausted () =
  let bindings, reached =
    Enumerate.pack_greedy ~target:16 ~first:None ~candidates:[ ('a', 3) ]
  in
  check Alcotest.bool "not reached" false reached;
  check Alcotest.int "fully packed" 3 (List.hd bindings).Mapping.tile

let test_enumerate_eq1_nonempty () =
  let configs = Enumerate.enumerate eq1 in
  check Alcotest.bool "nonempty" true (configs <> []);
  List.iter
    (fun m ->
      (match Mapping.validate eq1 m with
      | Ok () -> ()
      | Error e -> fail (Format.asprintf "invalid enumerated config %a: %s" Mapping.pp m e));
      match m.Mapping.tbx with
      | { Mapping.index = 'a'; _ } :: _ -> ()
      | _ -> fail "tbx head is not the output FVI")
    configs

let test_enumerate_dedup () =
  let configs = Enumerate.enumerate eq1 in
  let module MSet = Set.Make (struct
    type t = Mapping.t

    let compare = Mapping.compare
  end) in
  check Alcotest.int "no duplicates"
    (List.length configs)
    (MSet.cardinal (MSet.of_list configs))

let test_enumerate_tiny_fallback () =
  (* all extents 2: targets unreachable, fallback keeps exhausted packs *)
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 2); ('b', 2); ('c', 2) ] in
  check Alcotest.bool "nonempty" true (Enumerate.enumerate p <> [])

let test_naive_space_eq1 () =
  (* §IV: 3,981,312 configurations for Eq. 1 *)
  check (Alcotest.float 0.5) "paper's number" 3_981_312.0
    (Enumerate.naive_space_size eq1)

let enumerate_all_valid =
  QCheck.Test.make ~count:60 ~name:"every enumerated config validates"
    Gen.case_arbitrary (fun c ->
      let configs = Enumerate.enumerate c.Gen.problem in
      configs <> []
      && List.for_all
           (fun m -> Mapping.validate c.Gen.problem m = Ok ())
           configs)

(* ---- Candidates (streaming producer) ---- *)

let mapping_list = Alcotest.(list (testable Mapping.pp Mapping.equal))

let test_candidates_eq1_stream () =
  let cands = Candidates.create eq1 in
  let legacy = Enumerate.enumerate eq1 in
  check Alcotest.int "count matches enumeration" (List.length legacy)
    (Candidates.count cands);
  check mapping_list "stream equals materialized enumeration" legacy
    (Candidates.to_list cands)

let test_candidates_chunks_partition () =
  let cands = Candidates.create eq1 in
  let acc = ref [] in
  for k = 0 to Candidates.num_chunks cands - 1 do
    Candidates.iter_chunk cands k (fun m -> acc := m :: !acc)
  done;
  check mapping_list "chunks concatenate to the stream"
    (Candidates.to_list cands) (List.rev !acc)

let candidates_match_enumerate =
  QCheck.Test.make ~count:60
    ~name:"candidate stream equals materialized enumeration"
    Gen.case_arbitrary (fun c ->
      let cands = Candidates.create c.Gen.problem in
      let legacy = Enumerate.enumerate c.Gen.problem in
      Candidates.count cands = List.length legacy
      && List.equal Mapping.equal (Candidates.to_list cands) legacy)

(* ---- Streaming pipeline vs the three materialized phases ---- *)

(* The legacy planner hot path, phase by phase, as Driver.generate_one
   composed it before the fused pipeline: materialize the enumeration,
   filter, truncate to the search budget, rank everything. *)
let legacy_search ?budget ~topk arch prec problem =
  let configs = Enumerate.enumerate problem in
  let kept, stats = Prune.filter arch prec problem configs in
  let kept, degraded =
    match budget with
    | Some b when List.length kept > max 1 b ->
        (List.filteri (fun k _ -> k < max 1 b) kept, true)
    | _ -> (kept, false)
  in
  let ranked = Cost.rank prec problem kept in
  let ranked =
    match budget with
    | None -> List.filteri (fun k _ -> k < topk) ranked
    | Some _ -> ranked
  in
  (ranked, stats, degraded)

let ranked_equal a b =
  List.equal
    (fun (m, c) (m', c') -> Mapping.equal m m' && Float.equal c c')
    a b

let test_pipeline_eq1 () =
  let arch = Arch.v100 and prec = Precision.FP64 in
  let topk = 8 in
  let legacy_ranked, legacy_stats, _ = legacy_search ~topk arch prec eq1 in
  let o = Pipeline.search ~topk arch prec eq1 in
  check Alcotest.bool "stats equal" true (o.Pipeline.stats = legacy_stats);
  check Alcotest.bool "top-8 equal" true
    (ranked_equal o.Pipeline.ranked legacy_ranked);
  check Alcotest.bool "not degraded" false o.Pipeline.degraded

let test_pipeline_bound_aborts () =
  let o = Pipeline.search ~topk:8 Arch.v100 Precision.FP64 eq1 in
  (* Every prune survivor is either bound-aborted or made it into a chunk
     heap (evictions are neither), so the two tallies stay disjoint. *)
  check Alcotest.bool "aborts bounded by survivors" true
    (o.Pipeline.bound_aborted + List.length o.Pipeline.ranked
    <= o.Pipeline.stats.Prune.kept);
  (* Eq. 1 keeps ~1000 survivors for a heap of 8: the cost bound must be
     doing real work. *)
  check Alcotest.bool "bound aborts happen" true (o.Pipeline.bound_aborted > 0)

let streamed_matches_legacy ?budget () =
  QCheck.Test.make ~count:40
    ~name:
      (match budget with
      | None -> "streamed pipeline == materialized phases (jobs 1 and 4)"
      | Some b -> Printf.sprintf "streamed pipeline == budget-%d path" b)
    Gen.case_arbitrary (fun c ->
      let problem = c.Gen.problem in
      let arch = Tc_gpu.Arch.v100 and prec = Tc_gpu.Precision.FP64 in
      let topk = 8 in
      let legacy_ranked, legacy_stats, legacy_degraded =
        legacy_search ?budget ~topk arch prec problem
      in
      let at_jobs jobs =
        Tc_par.Pool.set_default_jobs jobs;
        let o = Pipeline.search ?budget ~topk arch prec problem in
        o.Pipeline.stats = legacy_stats
        && o.Pipeline.degraded = legacy_degraded
        && ranked_equal o.Pipeline.ranked legacy_ranked
      in
      let ok = at_jobs 1 && at_jobs 4 in
      Tc_par.Pool.set_default_jobs 1;
      ok)

(* ---- Prune ---- *)

let test_prune_smem_overflow () =
  (* (16*8 + 16*8) * 32 * 8B = 64 KB > 48 KB *)
  let p =
    Problem.of_string_exn "ab-acd-dcb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64); ('d', 64) ]
  in
  let m =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 16 ];
      regy = [];
      tbk = [ b 'c' 32; b 'd' 8 ];
      grid = [];
    }
  in
  check Alcotest.int "smem bytes" (((16 * 1) + (16 * 1)) * 256 * 8)
    (Prune.smem_bytes Precision.FP64 m);
  match Prune.check Arch.v100 Precision.FP64 p m with
  | Error Prune.Smem_overflow -> ()
  | Error r -> fail (Prune.reason_to_string r)
  | Ok () -> fail "smem overflow accepted"

let test_prune_too_many_threads () =
  let p =
    Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]
  in
  let m =
    {
      Mapping.tbx = [ b 'a' 64 ];
      regx = [];
      tby = [ b 'b' 64 ];
      regy = [];
      tbk = [ b 'c' 1 ];
      grid = [];
    }
  in
  match Prune.check Arch.v100 Precision.FP64 p m with
  | Error Prune.Too_many_threads -> ()
  | _ -> fail "4096 threads accepted"

let test_prune_uncoalesced () =
  (* tiny tile on the output FVI breaks store coalescing *)
  let m = { eq1_mapping with Mapping.tbx = [ b 'a' 2 ]; regx = [ b 'b' 8 ] } in
  match Prune.check Arch.v100 Precision.FP64 eq1 m with
  | Error Prune.Uncoalesced_out -> ()
  | Error r -> fail (Prune.reason_to_string r)
  | Ok () -> fail "uncoalesced store accepted"

let test_prune_regs_fp32_cheaper () =
  check Alcotest.bool "fp32 needs fewer registers" true
    (Prune.regs_per_thread Precision.FP32 eq1_mapping
    < Prune.regs_per_thread Precision.FP64 eq1_mapping)

let test_prune_filter_stats () =
  let configs = Enumerate.enumerate eq1 in
  let kept, stats = Prune.filter Arch.v100 Precision.FP64 eq1 configs in
  check Alcotest.int "enumerated" (List.length configs) stats.Prune.enumerated;
  check Alcotest.int "kept" (List.length kept) stats.Prune.kept;
  check Alcotest.bool "something pruned" true (stats.Prune.kept < stats.Prune.enumerated);
  check Alcotest.bool "not relaxed" false stats.Prune.relaxed;
  List.iter
    (fun m ->
      match Prune.check Arch.v100 Precision.FP64 eq1 m with
      | Ok () -> ()
      | Error r -> fail (Prune.reason_to_string r))
    kept

let test_prune_relaxation () =
  (* a tiny contraction cannot satisfy the block-count constraint, but
     filter must still return something, flagged as relaxed *)
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 4); ('b', 4); ('c', 4) ] in
  let kept, stats = Prune.filter Arch.v100 Precision.FP64 p (Enumerate.enumerate p) in
  check Alcotest.bool "kept nonempty" true (kept <> []);
  check Alcotest.bool "relaxed" true stats.Prune.relaxed

(* ---- Cost ---- *)

let test_cost_contiguous_run () =
  (* a fully tiled (16 = extent? no, 48) stops the run at its tile *)
  check Alcotest.int "partial tile stops run" 16
    (Cost.contiguous_run eq1 eq1_mapping [ 'a'; 'e'; 'b'; 'f' ]);
  (* full coverage chains into the next index *)
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 16); ('b', 16); ('c', 4) ] in
  let m =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 4 ];
      regy = [];
      tbk = [ b 'c' 4 ];
      grid = [];
    }
  in
  check Alcotest.int "chained run 16*4" (16 * 4)
    (Cost.contiguous_run p m [ 'a'; 'c' ])

let test_cost_store_run () =
  (* store run only extends over TBx-mapped indices *)
  check Alcotest.int "stops at regx index" 16 (Cost.store_run eq1 eq1_mapping)

let test_cost_breakdown_total () =
  let bd = Cost.transactions Precision.FP64 eq1 eq1_mapping in
  check (Alcotest.float 1e-6) "total = lhs+rhs+out"
    (bd.Cost.lhs +. bd.Cost.rhs +. bd.Cost.out)
    (Cost.total Precision.FP64 eq1 eq1_mapping);
  check Alcotest.bool "all positive" true
    (bd.Cost.lhs > 0.0 && bd.Cost.rhs > 0.0 && bd.Cost.out > 0.0)

let test_cost_prefers_coalesced_store () =
  (* Same structure, but a 2-wide tile on the output FVI: more store
     transactions. *)
  let bad = { eq1_mapping with Mapping.tbx = [ b 'a' 2 ]; regx = [ b 'b' 8 ] } in
  let good = Cost.transactions Precision.FP64 eq1 eq1_mapping in
  let worse = Cost.transactions Precision.FP64 eq1 bad in
  check Alcotest.bool "uncoalesced store costs more" true
    (worse.Cost.out > good.Cost.out)

let test_cost_fp32_fewer_transactions () =
  (* With runs longer than 16 elements, FP32 packs twice as many elements
     per 128-byte transaction. *)
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 16); ('b', 16); ('c', 4) ] in
  let m =
    {
      Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 4 ];
      regy = [];
      tbk = [ b 'c' 4 ];
      grid = [];
    }
  in
  check Alcotest.bool "fp32 strictly cheaper on 64-element runs" true
    (Cost.total Precision.FP32 p m < Cost.total Precision.FP64 p m);
  (* and never more expensive in general *)
  check Alcotest.bool "fp32 <= fp64 on Eq. 1" true
    (Cost.total Precision.FP32 eq1 eq1_mapping
    <= Cost.total Precision.FP64 eq1 eq1_mapping)

let test_cost_rank_sorted () =
  let ranked = Cost.rank Precision.FP64 eq1 (Enumerate.enumerate eq1) in
  let rec sorted = function
    | (_, c1) :: ((_, c2) :: _ as rest) -> c1 <= c2 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "ascending" true (sorted ranked)

let test_cost_foreign_block_scaling () =
  (* doubling an external absent from A doubles how often A's slabs are
     reloaded, hence its load transactions *)
  let mk c_extent =
    Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 64); ('b', c_extent); ('c', 32) ]
  in
  let t n =
    (Cost.transactions Precision.FP64 (mk n) gemm_mapping).Cost.lhs
  in
  check (Alcotest.float 1e-6) "2x b -> 2x lhs transactions" (2.0 *. t 64)
    (t 128)

let test_cost_bytes_moved () =
  check (Alcotest.float 1e-6) "bytes = 128 * transactions"
    (128.0 *. Cost.total Precision.FP64 eq1 eq1_mapping)
    (Cost.bytes_moved Precision.FP64 eq1 eq1_mapping)

let enumerate_tbk_covers_internals =
  QCheck.Test.make ~count:60 ~name:"tbk holds every internal exactly once"
    Gen.case_arbitrary (fun c ->
      let info = Problem.info c.Gen.problem in
      List.for_all
        (fun m ->
          let tbk = List.map (fun bd -> bd.Mapping.index) m.Mapping.tbk in
          List.sort Char.compare tbk
          = List.sort Char.compare info.Tc_expr.Classify.internals)
        (Enumerate.enumerate c.Gen.problem))

let codegen_deterministic =
  QCheck.Test.make ~count:30 ~name:"emission is deterministic"
    Gen.case_arbitrary (fun c ->
      let plan = Driver.best_plan c.Gen.problem in
      String.equal (Codegen.emit plan) (Codegen.emit plan)
      && String.equal (Codegen.emit_opencl plan) (Codegen.emit_opencl plan))

(* ---- Plan ---- *)

let test_plan_derived () =
  let plan =
    Plan.make ~problem:eq1 ~mapping:eq1_mapping ~arch:Arch.v100
      ~precision:Precision.FP64
  in
  check Alcotest.int "threads" 256 (Plan.threads_per_block plan);
  check Alcotest.int "smem" (128 * 8 * 8) (Plan.smem_bytes plan);
  check Alcotest.int "blocks" (Mapping.num_blocks eq1 eq1_mapping)
    (Plan.num_blocks plan);
  check (Alcotest.float 1e-9) "flops" (Problem.flops eq1) (Plan.flops plan);
  check Alcotest.bool "occupancy positive" true
    ((Plan.occupancy plan).Tc_gpu.Occupancy.occupancy > 0.0)

let test_plan_rejects_invalid () =
  match
    Plan.make ~problem:eq1
      ~mapping:{ eq1_mapping with Mapping.tbk = [] }
      ~arch:Arch.v100 ~precision:Precision.FP64
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "invalid mapping accepted"

(* ---- Kernel schemas ---- *)

(* Double-buffered SMEM accounting at the exact device boundary: 32x32
   threads staging a 48-deep K-slab use 2 x 1536 doubles = 24 KiB under
   the classic schema; doubling the slabs lands exactly on the A100's
   48 KiB/block budget (still feasible), while one K-step deeper (50)
   overflows only under the pipelined schema. *)
let test_schema_smem_boundary () =
  let mapping depth =
    {
      Mapping.tbx = [ b 'a' 32 ];
      regx = [];
      tby = [ b 'b' 32 ];
      regy = [];
      tbk = [ b 'c' depth ];
      grid = [];
    }
  in
  let plan extent depth =
    Plan.make
      ~problem:
        (Problem.of_string_exn "ab-ac-cb"
           ~sizes:[ ('a', 64); ('b', 64); ('c', extent) ])
      ~mapping:(mapping depth) ~arch:Arch.a100 ~precision:Precision.FP64
  in
  let at = plan 96 48 in
  check Alcotest.int "classic smem" 24576 (Plan.smem_bytes at);
  let piped = Plan.with_schema Schema.Pipelined at in
  check Alcotest.int "pipelined smem doubles" 49152 (Plan.smem_bytes piped);
  check Alcotest.bool "2x slabs exactly fill the block budget" true
    (Plan.smem_bytes piped = Arch.a100.Arch.smem_per_block);
  let over = plan 100 50 in
  check Alcotest.bool "classic still fits one step deeper" true
    (Plan.smem_bytes over <= Arch.a100.Arch.smem_per_block);
  check Alcotest.bool "doubled slabs rejected one step deeper" false
    (Plan.schema_feasible ~arch:Arch.a100 ~precision:Precision.FP64
       ~mapping:(mapping 50) Schema.Pipelined);
  match Plan.with_schema Schema.Pipelined over with
  | exception Invalid_argument _ -> ()
  | _ -> fail "double-buffered slabs above the SMEM budget accepted"

let test_schema_feasibility () =
  check Alcotest.bool "no async copies: classic only" true
    (Plan.feasible_schemas ~arch:Arch.v100 ~precision:Precision.FP64
       gemm_mapping
    = [ Schema.Classic ]);
  check Alcotest.bool "fp64 never runs on tensor cores" false
    (Plan.schema_feasible ~arch:Arch.a100 ~precision:Precision.FP64
       ~mapping:gemm_mapping Schema.Pipelined_mma);
  (* the 16x16x8 macro-tile divides the fp16 16x16x16 fragment layout *)
  check Alcotest.bool "fp16 macro-tile admits MMA" true
    (Plan.schema_feasible ~arch:Arch.a100 ~precision:Precision.FP16
       ~mapping:gemm_mapping Schema.Pipelined_mma)

(* A forced schema no mapping admits is a typed driver error (the CLI
   prints it and exits 1), never an exception. *)
let test_schema_forced_infeasible () =
  let ctx =
    Ctx.make ~arch:Arch.a100 ~precision:Precision.FP64
      ~schema:Schema.Pipelined_mma ()
  in
  match Driver.run ctx gemm_like with
  | Error (Driver.Infeasible_schema (Schema.Pipelined_mma, _)) -> ()
  | Error e -> fail ("unexpected error: " ^ Driver.error_to_string e)
  | Ok _ -> fail "MMA accepted for fp64"

(* ---- Codegen ---- *)

let gemm_plan =
  Plan.make ~problem:gemm_like ~mapping:gemm_mapping ~arch:Arch.v100
    ~precision:Precision.FP64

let golden_path file =
  (* dune materializes the golden files next to the test executable; fall
     back to the source path when run from the repository root. *)
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat "golden" file)
  in
  if Sys.file_exists beside_exe then beside_exe
  else if Sys.file_exists (Filename.concat "golden" file) then
    Filename.concat "golden" file
  else Filename.concat "test/golden" file

let read_golden file =
  let ic = open_in (golden_path file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* With GOLDEN_UPDATE set, rewrite the golden files from the plan this test
   constructs instead of comparing (run `GOLDEN_UPDATE=1 dune exec
   test/test_cogent.exe` from the repository root, then eyeball the diff). *)
let check_golden label file actual =
  if Sys.getenv_opt "GOLDEN_UPDATE" <> None then begin
    let oc = open_out (golden_path file) in
    output_string oc actual;
    close_out oc
  end;
  check Alcotest.string label (read_golden file) actual

let test_codegen_golden () =
  check_golden "golden kernel" "ab_ac_cb.cu" (Codegen.emit gemm_plan)

let test_codegen_golden_opencl () =
  check_golden "golden OpenCL kernel" "ab_ac_cb.cl"
    (Codegen.emit_opencl gemm_plan)

let test_codegen_golden_c () =
  check_golden "golden C-host kernel" "ab_ac_cb.c" (Codegen.emit_c gemm_plan)

(* The same plan under the double-buffered schema, on a device with async
   copies.  The golden files lock the cp.async prologue and the two-slab
   rotation in all three dialects. *)
let pipelined_plan =
  Plan.with_schema Schema.Pipelined
    (Plan.make ~problem:gemm_like ~mapping:gemm_mapping ~arch:Arch.a100
       ~precision:Precision.FP64)

let test_codegen_golden_pipelined () =
  check_golden "golden pipelined kernel" "ab_ac_cb_pipelined.cu"
    (Codegen.emit pipelined_plan)

let test_codegen_golden_pipelined_opencl () =
  check_golden "golden pipelined OpenCL kernel" "ab_ac_cb_pipelined.cl"
    (Codegen.emit_opencl pipelined_plan)

let test_codegen_golden_pipelined_c () =
  check_golden "golden pipelined C-host kernel" "ab_ac_cb_pipelined.c"
    (Codegen.emit_c pipelined_plan)

let has_sub src needle =
  let ln = String.length needle and ls = String.length src in
  let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
  go 0

let test_codegen_opencl_structure () =
  let src = Codegen.emit_kernel ~dialect:Codegen.Opencl gemm_plan in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "opencl contains %S" needle) true
        (has_sub src needle))
    [
      "__kernel void cogent_ab_ac_cb";
      "__global double* restrict g_C";
      "__local double s_A[128]";
      "barrier(CLK_LOCAL_MEM_FENCE);";
      "get_local_id(0)";
      "get_group_id(0)";
      "#pragma OPENCL EXTENSION cl_khr_fp64 : enable";
    ];
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "opencl lacks %S" needle) false
        (has_sub src needle))
    [ "__syncthreads"; "threadIdx"; "blockIdx"; "__shared__"; "long long" ]

let test_codegen_opencl_fp32_no_pragma () =
  let plan =
    Plan.make ~problem:gemm_like ~mapping:gemm_mapping ~arch:Arch.v100
      ~precision:Precision.FP32
  in
  let src = Codegen.emit_kernel ~dialect:Codegen.Opencl plan in
  check Alcotest.bool "no fp64 pragma in fp32 kernels" false
    (has_sub src "cl_khr_fp64")

let test_codegen_structure () =
  let eq1_plan =
    Plan.make ~problem:eq1 ~mapping:eq1_mapping ~arch:Arch.v100
      ~precision:Precision.FP64
  in
  let src = Codegen.emit eq1_plan in
  let has needle =
    check Alcotest.bool (Printf.sprintf "contains %S" needle) true
      (let len_n = String.length needle and len_s = String.length src in
       let rec go i =
         i + len_n <= len_s
         && (String.sub src i len_n = needle || go (i + 1))
       in
       go 0)
  in
  has "__global__ void cogent_abcd_aebf_dfce";
  has "__shared__ double s_A[512]";
  has "__shared__ double s_B[512]";
  has "double r_C[16]";
  has "__syncthreads();";
  has "r_C[ry * 4 + rx] += r_A[rx] * r_B[ry];";
  has "extern \"C\" void cogent_abcd_aebf_dfce_launch";
  has "dim3 block(16, 16);";
  (* runtime-parametric extents *)
  has "const int N_a"

let test_codegen_fp32 () =
  let plan =
    Plan.make ~problem:gemm_like ~mapping:gemm_mapping ~arch:Arch.v100
      ~precision:Precision.FP32
  in
  let src = Codegen.emit_kernel plan in
  check Alcotest.bool "uses float" true
    (String.length src > 0
    && (let re = "float* __restrict__ g_C" in
        let len_n = String.length re and len_s = String.length src in
        let rec go i =
          i + len_n <= len_s && (String.sub src i len_n = re || go (i + 1))
        in
        go 0))

let test_codegen_standalone_has_main () =
  let src = Codegen.emit_standalone gemm_plan in
  let has needle =
    let len_n = String.length needle and len_s = String.length src in
    let rec go i =
      i + len_n <= len_s && (String.sub src i len_n = needle || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "main" true (has "int main()");
  check Alcotest.bool "cudaMalloc" true (has "cudaMalloc");
  check Alcotest.bool "representative extents" true (has "const int N_a = 32;")

(* ---- Variants (§IV-B multi-version generation) ---- *)

let variants_ast =
  match Parser.parse "ab-ac-cb" with Ok a -> a | Error _ -> assert false

let small_sizes = Sizes.of_list [ ('a', 64); ('b', 64); ('c', 64) ]
let big_sizes = Sizes.of_list [ ('a', 2048); ('b', 2048); ('c', 512) ]

let variants_t =
  Variants.generate_exn variants_ast [ small_sizes; big_sizes ]

let test_variants_generate () =
  check Alcotest.int "two versions" 2 (List.length variants_t.Variants.variants);
  let names = List.map (fun v -> v.Variants.name) variants_t.Variants.variants in
  check Alcotest.bool "distinct names" true
    (List.length (List.sort_uniq String.compare names) = 2)

let test_variants_generate_rejects () =
  (match Variants.generate variants_ast [] with
  | Error _ -> ()
  | Ok _ -> fail "empty representative list accepted");
  match Variants.generate variants_ast [ Sizes.of_list [ ('a', 4) ] ] with
  | Error _ -> ()
  | Ok _ -> fail "non-covering sizes accepted"

let test_variants_distance () =
  check (Alcotest.float 1e-9) "identical sizes" 0.0
    (Variants.distance small_sizes small_sizes [ 'a'; 'b'; 'c' ]);
  check Alcotest.bool "positive otherwise" true
    (Variants.distance small_sizes big_sizes [ 'a'; 'b'; 'c' ] > 0.0)

let test_variants_select () =
  let exact = Variants.select variants_t big_sizes in
  check Alcotest.bool "exact representative selected" true
    (exact.Variants.sizes == big_sizes
    || Variants.distance exact.Variants.sizes big_sizes [ 'a'; 'b'; 'c' ] = 0.0);
  (* a size near the small representative picks the small variant *)
  let near_small = Sizes.of_list [ ('a', 80); ('b', 80); ('c', 48) ] in
  let v = Variants.select variants_t near_small in
  check Alcotest.int "nearest is the small version" 64
    (Sizes.extent v.Variants.sizes 'a');
  match Variants.select variants_t (Sizes.of_list [ ('a', 4) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-covering runtime size accepted"

let test_variants_emit () =
  let src = Variants.emit variants_t in
  let has needle =
    let ln = String.length needle and ls = String.length src in
    let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "v0 kernel" true (has "cogent_ab_ac_cb_v0(");
  check Alcotest.bool "v1 kernel" true (has "cogent_ab_ac_cb_v1(");
  check Alcotest.bool "dispatcher" true (has "cogent_ab_ac_cb_dispatch(");
  check Alcotest.bool "distance code" true (has "fabs(log((double)N_a / 64.0))");
  check Alcotest.bool "dispatch calls v1" true
    (has "case 1: cogent_ab_ac_cb_v1_launch(d_C, d_A, d_B, N_a, N_b, N_c, stream); break;")

(* ---- Driver ---- *)

let test_driver_generate () =
  match Driver.generate eq1 with
  | Error e -> fail (Driver.error_to_string e)
  | Ok r ->
      check Alcotest.bool "ranked nonempty" true (r.Driver.ranked <> []);
      check (Alcotest.float 0.5) "naive space" 3_981_312.0 r.Driver.naive_space;
      (* without a measure, the plan is the model-cost minimum *)
      let _, min_cost = List.hd r.Driver.ranked in
      check (Alcotest.float 1e-6) "plan cost is minimum" min_cost
        r.Driver.plan.Plan.cost

let test_driver_refine_uses_measure () =
  (* a measure preferring many blocks must pick the max-blocks candidate
     among the top 8 *)
  let measure plan = float_of_int (Plan.num_blocks plan) in
  let r = Driver.generate_exn ~refine:8 ~measure eq1 in
  let r0 = Driver.generate_exn eq1 in
  let top8 = List.filteri (fun k _ -> k < 8) r0.Driver.ranked in
  let best_blocks =
    List.fold_left
      (fun acc (m, _) -> max acc (Mapping.num_blocks eq1 m))
      0 top8
  in
  check Alcotest.int "picked max blocks among top 8" best_blocks
    (Plan.num_blocks r.Driver.plan)

let test_driver_refine_measurement_count () =
  (* refinement measures each top-[refine] candidate exactly once — no
     extra seed run for the top plan (atomic: the pool may fan the
     measurements out across domains) *)
  let calls = Atomic.make 0 in
  let measure plan =
    Atomic.incr calls;
    float_of_int (Plan.num_blocks plan)
  in
  let refine = 6 in
  let r = Driver.generate_exn ~refine ~measure eq1 in
  let expected = min refine (List.length r.Driver.ranked) in
  check Alcotest.int "one measurement per refined candidate" expected
    (Atomic.get calls)

let test_driver_auto_split () =
  let simulate plan =
    (* stand-in measurement inside the core tests: model cost inverse is
       enough to exercise the plumbing deterministically *)
    1.0 /. (1.0 +. plan.Plan.cost)
  in
  let ttm =
    Problem.of_string_exn "ab-cad-dcb"
      ~sizes:[ ('a', 384); ('b', 384); ('c', 128); ('d', 128) ]
  in
  let base = Driver.generate_exn ~measure:simulate ttm in
  let with_split = Driver.generate_exn ~measure:simulate ~auto_split:true ttm in
  check Alcotest.bool "never worse under its own measure" true
    (simulate with_split.Driver.plan >= simulate base.Driver.plan);
  (* without a measure, auto_split silently degrades to the base path *)
  let no_measure = Driver.generate_exn ~auto_split:true ttm in
  check Alcotest.bool "same contraction without measure" true
    (Problem.flops no_measure.Driver.plan.Plan.problem
    = Problem.flops ttm)

let test_driver_top_plans () =
  let r = Driver.generate_exn eq1 in
  check Alcotest.int "default 5" 5 (List.length (Driver.top_plans r));
  check Alcotest.int "n=2" 2 (List.length (Driver.top_plans ~n:2 r))

let test_driver_cuda_source () =
  let r = Driver.generate_exn eq1 in
  check Alcotest.bool "emits something" true
    (String.length (Driver.cuda_source r) > 500)

let driver_succeeds_on_generated =
  QCheck.Test.make ~count:40 ~name:"driver succeeds on random contractions"
    Gen.case_arbitrary (fun c ->
      match Driver.generate c.Gen.problem with
      | Ok r -> Mapping.validate c.Gen.problem r.Driver.plan.Plan.mapping = Ok ()
      | Error _ -> false)

(* ---- Cache ---- *)

let test_cache_hits_and_misses () =
  let cache = Cache.create () in
  let p1 = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ] in
  let _ = Cache.find_or_generate_ctx cache Ctx.default p1 in
  let _ = Cache.find_or_generate_ctx cache Ctx.default p1 in
  (* 60 rounds to the same power-of-two class as 64 *)
  let near = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 60); ('b', 60); ('c', 60) ] in
  let _ = Cache.find_or_generate_ctx cache Ctx.default near in
  let s = Cache.stats cache in
  check Alcotest.int "one entry" 1 s.Cache.entries;
  check Alcotest.int "two hits" 2 s.Cache.hits;
  check Alcotest.int "one miss" 1 s.Cache.misses

let test_cache_discriminates () =
  let cache = Cache.create () in
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ] in
  let far = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 512); ('b', 512); ('c', 512) ] in
  let other_layout = Problem.of_string_exn "ab-ca-cb" ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ] in
  ignore (Cache.find_or_generate_ctx cache Ctx.default p);
  ignore (Cache.find_or_generate_ctx cache Ctx.default far);
  ignore (Cache.find_or_generate_ctx cache Ctx.default other_layout);
  ignore
    (Cache.find_or_generate_ctx cache
       (Ctx.make ~precision:Precision.FP32 ())
       p);
  ignore (Cache.find_or_generate_ctx cache (Ctx.make ~arch:Arch.p100 ()) p);
  check Alcotest.int "five distinct entries" 5 (Cache.stats cache).Cache.entries

let test_cache_size_class () =
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 48); ('b', 65); ('c', 96) ] in
  (* 48 -> 64 (ties round down: 32 vs 64 equidistant? 48-32=16, 64-48=16 -> down), 65 -> 64, 96 -> 64 (96-64=32, 128-96=32 -> down) *)
  check Alcotest.string "rounded extents" "a:32,b:64,c:64" (Cache.size_class p)

let test_cache_clear () =
  let cache = Cache.create () in
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ] in
  ignore (Cache.find_or_generate_ctx cache Ctx.default p);
  Cache.clear cache;
  check Alcotest.int "empty" 0 (Cache.stats cache).Cache.entries;
  check Alcotest.int "counters reset" 0 (Cache.stats cache).Cache.hits

let () =
  Alcotest.run "cogent"
    [
      ( "mapping",
        [
          Alcotest.test_case "sizes" `Quick test_mapping_sizes;
          Alcotest.test_case "tile_of" `Quick test_mapping_tile_of;
          Alcotest.test_case "blocks and steps" `Quick test_mapping_blocks_steps;
          Alcotest.test_case "validate accepts" `Quick test_mapping_validate_ok;
          Alcotest.test_case "validate rejects" `Quick
            test_mapping_validate_rejects;
          Alcotest.test_case "compare" `Quick test_mapping_compare;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "pack clamps at target" `Quick
            test_pack_greedy_clamp;
          Alcotest.test_case "pack multiple indices" `Quick
            test_pack_greedy_multi;
          Alcotest.test_case "pack non-divisible clamp" `Quick
            test_pack_greedy_non_divisible;
          Alcotest.test_case "pack exhausted" `Quick test_pack_greedy_exhausted;
          Alcotest.test_case "Eq. 1 enumeration invariants" `Quick
            test_enumerate_eq1_nonempty;
          Alcotest.test_case "deduplicated" `Quick test_enumerate_dedup;
          Alcotest.test_case "tiny-problem fallback" `Quick
            test_enumerate_tiny_fallback;
          Alcotest.test_case "naive space matches §IV" `Quick
            test_naive_space_eq1;
          Gen.to_alcotest enumerate_all_valid;
          Gen.to_alcotest enumerate_tbk_covers_internals;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "Eq. 1 stream = enumeration" `Quick
            test_candidates_eq1_stream;
          Alcotest.test_case "chunks partition the stream" `Quick
            test_candidates_chunks_partition;
          Gen.to_alcotest candidates_match_enumerate;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Eq. 1 streamed = legacy" `Quick
            test_pipeline_eq1;
          Alcotest.test_case "bound aborts tallied distinctly" `Quick
            test_pipeline_bound_aborts;
          Gen.to_alcotest (streamed_matches_legacy ());
          Gen.to_alcotest (streamed_matches_legacy ~budget:3 ());
        ] );
      ( "prune",
        [
          Alcotest.test_case "smem overflow" `Quick test_prune_smem_overflow;
          Alcotest.test_case "too many threads" `Quick
            test_prune_too_many_threads;
          Alcotest.test_case "uncoalesced output" `Quick test_prune_uncoalesced;
          Alcotest.test_case "fp32 register footprint" `Quick
            test_prune_regs_fp32_cheaper;
          Alcotest.test_case "filter statistics" `Quick test_prune_filter_stats;
          Alcotest.test_case "relaxation for tiny problems" `Quick
            test_prune_relaxation;
        ] );
      ( "cost",
        [
          Alcotest.test_case "contiguous run" `Quick test_cost_contiguous_run;
          Alcotest.test_case "store run" `Quick test_cost_store_run;
          Alcotest.test_case "breakdown totals" `Quick test_cost_breakdown_total;
          Alcotest.test_case "prefers coalesced stores" `Quick
            test_cost_prefers_coalesced_store;
          Alcotest.test_case "fp32 cheaper" `Quick
            test_cost_fp32_fewer_transactions;
          Alcotest.test_case "foreign-block scaling" `Quick
            test_cost_foreign_block_scaling;
          Alcotest.test_case "bytes moved" `Quick test_cost_bytes_moved;
          Alcotest.test_case "rank sorted" `Quick test_cost_rank_sorted;
        ] );
      ( "plan",
        [
          Alcotest.test_case "derived quantities" `Quick test_plan_derived;
          Alcotest.test_case "rejects invalid mapping" `Quick
            test_plan_rejects_invalid;
        ] );
      ( "schemas",
        [
          Alcotest.test_case "SMEM boundary at 2x slabs" `Quick
            test_schema_smem_boundary;
          Alcotest.test_case "feasibility rules" `Quick test_schema_feasibility;
          Alcotest.test_case "forced infeasible schema is typed" `Quick
            test_schema_forced_infeasible;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "golden ab-ac-cb kernel" `Quick test_codegen_golden;
          Alcotest.test_case "golden ab-ac-cb OpenCL kernel" `Quick
            test_codegen_golden_opencl;
          Alcotest.test_case "golden ab-ac-cb C-host kernel" `Quick
            test_codegen_golden_c;
          Alcotest.test_case "golden pipelined kernel" `Quick
            test_codegen_golden_pipelined;
          Alcotest.test_case "golden pipelined OpenCL kernel" `Quick
            test_codegen_golden_pipelined_opencl;
          Alcotest.test_case "golden pipelined C-host kernel" `Quick
            test_codegen_golden_pipelined_c;
          Alcotest.test_case "OpenCL structure" `Quick
            test_codegen_opencl_structure;
          Alcotest.test_case "OpenCL fp32 pragma" `Quick
            test_codegen_opencl_fp32_no_pragma;
          Alcotest.test_case "Eq. 1 structure" `Quick test_codegen_structure;
          Alcotest.test_case "fp32 kernels" `Quick test_codegen_fp32;
          Alcotest.test_case "standalone driver" `Quick
            test_codegen_standalone_has_main;
          Gen.to_alcotest codegen_deterministic;
        ] );
      ( "variants",
        [
          Alcotest.test_case "generate" `Quick test_variants_generate;
          Alcotest.test_case "generate rejects" `Quick
            test_variants_generate_rejects;
          Alcotest.test_case "distance" `Quick test_variants_distance;
          Alcotest.test_case "select" `Quick test_variants_select;
          Alcotest.test_case "emit dispatcher" `Quick test_variants_emit;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "discriminates keys" `Quick test_cache_discriminates;
          Alcotest.test_case "size class" `Quick test_cache_size_class;
          Alcotest.test_case "clear" `Quick test_cache_clear;
        ] );
      ( "driver",
        [
          Alcotest.test_case "generate" `Quick test_driver_generate;
          Alcotest.test_case "refine uses measurement" `Quick
            test_driver_refine_uses_measure;
          Alcotest.test_case "refine measures each candidate once" `Quick
            test_driver_refine_measurement_count;
          Alcotest.test_case "auto_split" `Quick test_driver_auto_split;
          Alcotest.test_case "top_plans" `Quick test_driver_top_plans;
          Alcotest.test_case "cuda source" `Quick test_driver_cuda_source;
          Gen.to_alcotest driver_succeeds_on_generated;
        ] );
    ]
