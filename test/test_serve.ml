(* Tests for the serving layer: the Planstore codec and its failure
   ladder, the engine's dedup / dispatch / typed-error semantics, budget
   degradation, and warm-restart sessions. *)

open Tc_expr

let check = Alcotest.check
let fail = Alcotest.fail
let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops
let ctx = Cogent.Ctx.make ~measure:simulate ()

(* A unique, initially-absent store directory (Planstore.save creates it). *)
let fresh_dir () =
  let f = Filename.temp_file "cogent_serve" ".store" in
  Sys.remove f;
  f

let drive problem c =
  match Cogent.Driver.run c problem with
  | Ok r -> r
  | Error e -> fail (Cogent.Driver.error_to_string e)

let req id expr sizes =
  {
    Tc_serve.Request.id;
    expr;
    sizes = Sizes.of_list sizes;
    arch = Tc_gpu.Arch.v100;
    precision = Tc_gpu.Precision.FP64;
  }

(* ---- Planstore ---- *)

(* Save→load must reproduce every entry bit-exactly: the codec stores the
   contraction textually and *recomputes* plan costs on load, so this
   property locks both the codec and the determinism of the cost model.
   Budget-truncated (degraded) entries are covered too. *)
let planstore_roundtrip =
  QCheck.Test.make ~count:20
    ~name:"Planstore save/load round-trips entries bit-exactly"
    Gen.case_arbitrary
    (fun c ->
      let problem = c.Gen.problem in
      let full =
        match Cogent.Driver.run ctx problem with
        | Ok r -> r
        | Error e ->
            QCheck.Test.fail_report (Cogent.Driver.error_to_string e)
      in
      let degraded =
        match Cogent.Driver.run (Cogent.Ctx.with_budget 1 ctx) problem with
        | Ok r -> r
        | Error e ->
            QCheck.Test.fail_report (Cogent.Driver.error_to_string e)
      in
      let rows =
        [ (Cogent.Cache.key ctx problem, full); ("degraded-row", degraded) ]
      in
      let dir = fresh_dir () in
      Tc_serve.Planstore.save ~dir rows;
      match Tc_serve.Planstore.load ~dir with
      | Error m -> QCheck.Test.fail_report m
      | Ok rows' -> rows = rows')

let test_planstore_missing_is_empty () =
  match Tc_serve.Planstore.load ~dir:(fresh_dir ()) with
  | Ok [] -> ()
  | Ok _ -> fail "missing store must load as empty"
  | Error m -> fail m

let test_planstore_rejects_wrong_schema () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let write content =
    let oc = open_out (Tc_serve.Planstore.file ~dir) in
    output_string oc content;
    close_out oc
  in
  write "{\"schema\":\"cogent-planstore/999\"}\n";
  (match Tc_serve.Planstore.load ~dir with
  | Error _ -> ()
  | Ok _ -> fail "wrong-schema store must be rejected");
  write "";
  match Tc_serve.Planstore.load ~dir with
  | Error _ -> ()
  | Ok _ -> fail "headerless store must be rejected"

let test_planstore_skips_corrupt_row () =
  let problem =
    Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]
  in
  let r = drive problem ctx in
  let dir = fresh_dir () in
  Tc_serve.Planstore.save ~dir [ ("good", r) ];
  (* corrupt trailing row: truncated JSON, as a crashed writer would leave *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Tc_serve.Planstore.file ~dir)
  in
  output_string oc "{\"key\":\"bad\",\"entry\":{\"expr\":\n";
  close_out oc;
  let metric name =
    Option.value ~default:0.0
      (Tc_obs.Metrics.value Tc_obs.Metrics.global
         ("cogent.serve.planstore." ^ name))
  in
  let before = metric "corrupt_rows" in
  (match Tc_serve.Planstore.load ~dir with
  | Error m -> fail m
  | Ok rows ->
      check Alcotest.int "good row survives" 1 (List.length rows);
      check Alcotest.bool "row round-tripped" true ([ ("good", r) ] = rows));
  check (Alcotest.float 0.0) "corrupt row counted" (before +. 1.0)
    (metric "corrupt_rows");
  (* header line 1, good row line 2, corrupt row line 3 *)
  check (Alcotest.float 0.0) "gauge names the offending line" 3.0
    (metric "corrupt_line")

(* ---- budget degradation ---- *)

let test_budget_degrades_gracefully () =
  let problem =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:
        [ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]
  in
  let full = drive problem ctx in
  check Alcotest.bool "unlimited search is not degraded" false
    full.Cogent.Driver.degraded;
  (* near-zero budget: clamped to one candidate — the heuristic
     top-of-enumeration plan — and flagged *)
  let r = drive problem (Cogent.Ctx.with_budget 0 ctx) in
  check Alcotest.bool "budget-truncated search is degraded" true
    r.Cogent.Driver.degraded;
  check Alcotest.int "exactly one candidate ranked" 1
    (List.length r.Cogent.Driver.ranked);
  check Alcotest.bool "still yields a valid plan" true
    (Result.is_ok
       (Cogent.Mapping.validate problem r.Cogent.Driver.plan.Cogent.Plan.mapping))

(* ---- the engine ---- *)

let open_session ?store c =
  match Tc_serve.Serve.open_session ?store c with
  | Ok s -> s
  | Error m -> fail m

let test_batch_completes_with_typed_errors () =
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Error (2, "bad JSON: unexpected end of input");
      Ok (req 3 "definitely not a contraction" [ ('a', 4) ]);
    ]
  in
  let s = open_session ctx in
  let report = Tc_serve.Serve.run s items in
  let responses = report.Tc_serve.Serve.responses in
  check Alcotest.int "every request answered" 3 (List.length responses);
  check (Alcotest.list Alcotest.int) "responses keep request order" [ 1; 2; 3 ]
    (List.map (fun r -> r.Tc_serve.Serve.id) responses);
  (match List.map (fun r -> r.Tc_serve.Serve.result) responses with
  | [ Ok _; Error (Tc_serve.Serve.Bad_request _); Error (Tc_serve.Serve.Bad_request _) ] -> ()
  | _ -> fail "expected Ok, Bad_request, Bad_request");
  check Alcotest.int "summary errors" 2 report.Tc_serve.Serve.summary.Tc_serve.Serve.errors

let test_crash_is_per_request () =
  (* a measure that raises: generation crashes, but the batch completes
     and the crash is a typed per-request error *)
  let boom = Cogent.Ctx.make ~measure:(fun _ -> failwith "boom") () in
  let s = open_session boom in
  let report =
    Tc_serve.Serve.run s [ Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]) ]
  in
  match (List.hd report.Tc_serve.Serve.responses).Tc_serve.Serve.result with
  | Error (Tc_serve.Serve.Crashed _) -> ()
  | _ -> fail "expected a Crashed error"

let test_dedup_single_generation () =
  let s = open_session ctx in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      (* same size class (extents round to the same powers of two) *)
      Ok (req 2 "ab-ac-cb" [ ('a', 60); ('b', 60); ('c', 60) ]);
      Ok (req 3 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 4 "abc-bda-dc" [ ('a', 32); ('b', 32); ('c', 32); ('d', 32) ]);
    ]
  in
  let report = Tc_serve.Serve.run s items in
  let sum = report.Tc_serve.Serve.summary in
  check Alcotest.int "two distinct plan keys" 2 sum.Tc_serve.Serve.distinct;
  check Alcotest.int "two generations" 2 sum.Tc_serve.Serve.generations;
  check Alcotest.int "duplicates are hits" 2 sum.Tc_serve.Serve.hits;
  (* duplicate requests dispatch identically *)
  match
    List.map (fun r -> r.Tc_serve.Serve.result) report.Tc_serve.Serve.responses
  with
  | [ Ok a; Ok b; Ok c; Ok _ ] ->
      check Alcotest.bool "same key" true
        (a.Tc_serve.Serve.key = b.Tc_serve.Serve.key
        && b.Tc_serve.Serve.key = c.Tc_serve.Serve.key);
      check Alcotest.bool "same decision" true
        (a.Tc_serve.Serve.engine = b.Tc_serve.Serve.engine
        && Float.equal a.Tc_serve.Serve.gflops b.Tc_serve.Serve.gflops)
  | _ -> fail "expected four Ok responses"

let test_degraded_batch () =
  let s = open_session (Cogent.Ctx.with_budget 0 ctx) in
  let report =
    Tc_serve.Serve.run s [ Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]) ]
  in
  check Alcotest.int "degraded request counted" 1
    report.Tc_serve.Serve.summary.Tc_serve.Serve.degraded;
  match (List.hd report.Tc_serve.Serve.responses).Tc_serve.Serve.result with
  | Ok o -> check Alcotest.bool "outcome flagged" true o.Tc_serve.Serve.degraded
  | Error e -> fail (Tc_serve.Serve.error_to_string e)

let test_warm_restart_regenerates_nothing () =
  let dir = fresh_dir () in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 2 "abc-bda-dc" [ ('a', 32); ('b', 32); ('c', 32); ('d', 32) ]);
      Ok (req 3 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Error (4, "bad JSON: oops");
    ]
  in
  let cold = open_session ~store:dir ctx in
  let r_cold = Tc_serve.Serve.run cold items in
  Tc_serve.Serve.close_session cold;
  check Alcotest.int "cold run generates" 2
    r_cold.Tc_serve.Serve.summary.Tc_serve.Serve.generations;
  let warm = open_session ~store:dir ctx in
  let r_warm = Tc_serve.Serve.run warm items in
  Tc_serve.Serve.close_session warm;
  let sum = r_warm.Tc_serve.Serve.summary in
  check Alcotest.int "warm store loaded both plans" 2 sum.Tc_serve.Serve.loaded;
  check Alcotest.int "warm run generates nothing" 0
    sum.Tc_serve.Serve.generations;
  check Alcotest.int "every ok request is a hit" 3 sum.Tc_serve.Serve.hits;
  (* the externally visible report is identical cold vs warm *)
  check Alcotest.bool "cold and warm reports agree" true
    (Tc_profile.Benchrep.equal_modulo_wall
       (Tc_serve.Serve.report_doc ~wall_s:0.0 r_cold)
       (Tc_serve.Serve.report_doc ~wall_s:0.0 r_warm))

(* ---- telemetry ---- *)

let contains s needle =
  let ln = String.length needle and ls = String.length s in
  let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
  go 0

(* Regression for `cogent serve --trace FILE` losing pool-side spans:
   with a trace installed in the caller and the default pool at jobs 4,
   the plan searches run on worker domains — their spans must still land
   in the installed context, request-stamped, and every dispatched
   request must carry predicted/actual/strategy attributes. *)
let test_serve_trace_regression () =
  Tc_par.Pool.set_default_jobs 4;
  Fun.protect ~finally:(fun () -> Tc_par.Pool.set_default_jobs 1) @@ fun () ->
  let t = Tc_obs.Trace.make () in
  let s = open_session ctx in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 2 "abc-bda-dc" [ ('a', 32); ('b', 32); ('c', 32); ('d', 32) ]);
    ]
  in
  let report =
    Tc_obs.Trace.with_installed t (fun () -> Tc_serve.Serve.run s items)
  in
  check Alcotest.int "no errors" 0
    report.Tc_serve.Serve.summary.Tc_serve.Serve.errors;
  let spans name =
    List.filter
      (function
        | Tc_obs.Trace.Span { name = n; _ } -> n = name | _ -> false)
      (Tc_obs.Trace.events t)
  in
  check Alcotest.bool "pool-side generation spans reached the trace" true
    (List.length (spans "driver.generate") >= 2);
  List.iter
    (fun ev ->
      match List.assoc_opt "request" (Tc_obs.Trace.event_args ev) with
      | Some (Tc_obs.Trace.String id) ->
          check Alcotest.bool "stamped with a req-NNN id" true
            (contains id "req-")
      | _ -> fail "generation span not request-stamped")
    (spans "serve.generate");
  let dispatches = spans "serve.request" in
  check Alcotest.int "one dispatch span per request" 2 (List.length dispatches);
  List.iter
    (fun ev ->
      let args = Tc_obs.Trace.event_args ev in
      List.iter
        (fun k ->
          check Alcotest.bool (Printf.sprintf "dispatch span has %s" k) true
            (List.mem_assoc k args))
        [ "request"; "predicted_ms"; "actual_ms"; "strategy"; "outcome" ])
    dispatches;
  (* the whole batch exports as valid Chrome JSON with request flows *)
  match Tc_obs.Json.parse (Tc_obs.Export.to_chrome (Tc_obs.Trace.events t)) with
  | Ok _ -> ()
  | Error e -> fail ("serve trace not valid chrome JSON: " ^ e)

(* Failed searches surface as buffered notices (printed by the CLI after
   the parallel section), never as mid-batch prints. *)
let test_notices_buffered () =
  let boom = Cogent.Ctx.make ~measure:(fun _ -> failwith "boom") () in
  let s = open_session boom in
  let report =
    Tc_serve.Serve.run s
      [ Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]) ]
  in
  check Alcotest.int "one notice per failed search" 1
    (List.length report.Tc_serve.Serve.notices);
  check Alcotest.bool "notice names the request" true
    (contains (List.hd report.Tc_serve.Serve.notices) "req-001");
  let ok = open_session ctx in
  let clean =
    Tc_serve.Serve.run ok
      [ Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]) ]
  in
  check Alcotest.int "clean batches have no notices" 0
    (List.length clean.Tc_serve.Serve.notices)

(* Every request — dispatched, malformed, failed — leaves exactly one
   flight-recorder entry. *)
let test_flight_recorder_entries () =
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global;
  let s = open_session ctx in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Error (2, "bad JSON: oops");
      Ok (req 3 "not a contraction" [ ('a', 4) ]);
    ]
  in
  ignore (Tc_serve.Serve.run s items);
  let es = Tc_obs.Flightrec.entries Tc_obs.Flightrec.global in
  check (Alcotest.list Alcotest.string) "one entry per request, in order"
    [ "req-002"; "req-003"; "req-001" ]
    (List.map (fun e -> e.Tc_obs.Flightrec.request) es);
  (match es with
  | [ bad_json; bad_expr; dispatched ] ->
      check Alcotest.bool "malformed line records its error" true
        (bad_json.Tc_obs.Flightrec.error <> None);
      check Alcotest.bool "unparsable expr records its error" true
        (bad_expr.Tc_obs.Flightrec.error <> None);
      check Alcotest.bool "dispatched request records its strategy" true
        (dispatched.Tc_obs.Flightrec.strategy <> None);
      check Alcotest.bool "dispatched request records timings" true
        (List.mem_assoc "predicted_s" dispatched.Tc_obs.Flightrec.timings)
  | _ -> fail "expected three entries");
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global

(* ---- the audit hook ---- *)

(* With a collector attached, every dispatched request yields exactly one
   accuracy sample, in request order, with the interpreter-measured
   ground truth filled in; errored requests yield none.  The flight
   entry gains a regret_s timing and the summary counts regretted
   requests. *)
let test_audit_hook () =
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global;
  let collector = Tc_audit.Audit.collector () in
  let s =
    match Tc_serve.Serve.open_session ~audit:collector ctx with
    | Ok s -> s
    | Error m -> fail m
  in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      (* same size class: served by req 1's plan, regret evaluated at
         its own extents *)
      Ok (req 2 "ab-ac-cb" [ ('a', 60); ('b', 60); ('c', 60) ]);
      Ok (req 3 "definitely not a contraction" [ ('a', 4) ]);
    ]
  in
  let report = Tc_serve.Serve.run s items in
  let samples = Tc_audit.Audit.samples collector in
  check (Alcotest.list Alcotest.string) "one sample per ok request, in order"
    [ "req-001"; "req-002" ]
    (List.map (fun smp -> smp.Tc_audit.Audit.request) samples);
  List.iter
    (fun smp ->
      check Alcotest.string "suite stamped" "serve" smp.Tc_audit.Audit.suite;
      check Alcotest.bool "regret is non-negative" true
        (smp.Tc_audit.Audit.regret_s >= 0.0);
      check Alcotest.bool "measured counters populated" true
        (Tc_audit.Audit.tx_total smp.Tc_audit.Audit.measured_tx > 0.0))
    samples;
  (match samples with
  | [ rep; dup ] ->
      check Alcotest.bool "shared plan key" true
        (rep.Tc_audit.Audit.key = dup.Tc_audit.Audit.key);
      (* the first request IS the representative: regret identically 0 *)
      check (Alcotest.float 0.0) "no regret on the representative" 0.0
        rep.Tc_audit.Audit.regret_s
  | _ -> fail "expected two samples");
  check Alcotest.int "summary counts regretted requests"
    (List.length
       (List.filter (fun smp -> smp.Tc_audit.Audit.regret_s > 0.0) samples))
    report.Tc_serve.Serve.summary.Tc_serve.Serve.regrets;
  List.iter
    (fun e ->
      match e.Tc_obs.Flightrec.error with
      | Some _ -> ()
      | None ->
          check Alcotest.bool "flight entry records regret_s" true
            (List.mem_assoc "regret_s" e.Tc_obs.Flightrec.timings))
    (Tc_obs.Flightrec.entries Tc_obs.Flightrec.global);
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global

(* Cold store vs warm restart must collect byte-identical samples: the
   ground truth is measured inside the generation fan-out when plans are
   fresh and recomputed from the cached plan when they are not, and the
   two must agree. *)
let test_audit_cold_warm_identical () =
  let dir = fresh_dir () in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 2 "abc-bda-dc" [ ('a', 32); ('b', 32); ('c', 32); ('d', 32) ]);
    ]
  in
  let batch () =
    let collector = Tc_audit.Audit.collector () in
    let s =
      match Tc_serve.Serve.open_session ~store:dir ~audit:collector ctx with
      | Ok s -> s
      | Error m -> fail m
    in
    ignore (Tc_serve.Serve.run s items);
    Tc_serve.Serve.close_session s;
    Tc_audit.Audit.samples collector
  in
  let cold = batch () in
  let warm = batch () in
  check Alcotest.int "both batches sampled everything" 2 (List.length cold);
  check Alcotest.bool "cold and warm samples are identical" true (cold = warm)

let test_flight_capacity_option () =
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global;
  let restore () = Tc_obs.Flightrec.set_capacity 128 in
  Fun.protect ~finally:restore @@ fun () ->
  let s =
    match Tc_serve.Serve.open_session ~flight_capacity:2 ctx with
    | Ok s -> s
    | Error m -> fail m
  in
  let items =
    [
      Ok (req 1 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 2 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
      Ok (req 3 "ab-ac-cb" [ ('a', 64); ('b', 64); ('c', 64) ]);
    ]
  in
  ignore (Tc_serve.Serve.run s items);
  check Alcotest.int "ring resized" 2
    (Tc_obs.Flightrec.capacity Tc_obs.Flightrec.global);
  check (Alcotest.list Alcotest.string) "only the newest requests retained"
    [ "req-002"; "req-003" ]
    (List.map
       (fun e -> e.Tc_obs.Flightrec.request)
       (Tc_obs.Flightrec.entries Tc_obs.Flightrec.global));
  Tc_obs.Flightrec.clear Tc_obs.Flightrec.global

(* ---- request parsing ---- *)

let test_request_parsing () =
  let line =
    {|{"expr":"ab-ac-cb","sizes":"a=64,b=64,c=64","arch":"a100","precision":"fp32"}|}
  in
  (match Tc_serve.Request.of_line ~default:ctx ~id:7 line with
  | Error m -> fail m
  | Ok r ->
      check Alcotest.int "id" 7 r.Tc_serve.Request.id;
      check Alcotest.string "arch override" "A100"
        r.Tc_serve.Request.arch.Tc_gpu.Arch.name;
      check Alcotest.bool "precision override" true
        (Tc_gpu.Precision.equal Tc_gpu.Precision.FP32
           r.Tc_serve.Request.precision));
  (match Tc_serve.Request.of_line ~default:ctx ~id:1 "{\"expr\":\"ab-ac-cb\"}" with
  | Error _ -> ()
  | Ok _ -> fail "missing sizes must be rejected");
  match Tc_serve.Request.of_line ~default:ctx ~id:1 "not json" with
  | Error _ -> ()
  | Ok _ -> fail "non-JSON line must be rejected"

let () =
  Alcotest.run "serve"
    [
      ( "planstore",
        [
          Gen.to_alcotest planstore_roundtrip;
          Alcotest.test_case "missing store is empty" `Quick
            test_planstore_missing_is_empty;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_planstore_rejects_wrong_schema;
          Alcotest.test_case "corrupt trailing row skipped" `Quick
            test_planstore_skips_corrupt_row;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget degrades gracefully" `Quick
            test_budget_degrades_gracefully;
          Alcotest.test_case "batch completes with typed errors" `Quick
            test_batch_completes_with_typed_errors;
          Alcotest.test_case "crash is a per-request error" `Quick
            test_crash_is_per_request;
          Alcotest.test_case "dedup: one search per key" `Quick
            test_dedup_single_generation;
          Alcotest.test_case "near-zero budget flags the batch" `Quick
            test_degraded_batch;
          Alcotest.test_case "warm restart regenerates nothing" `Quick
            test_warm_restart_regenerates_nothing;
          Alcotest.test_case "request parsing" `Quick test_request_parsing;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "pool-side spans land in the installed trace"
            `Quick test_serve_trace_regression;
          Alcotest.test_case "failure notices are buffered" `Quick
            test_notices_buffered;
          Alcotest.test_case "flight recorder: one entry per request" `Quick
            test_flight_recorder_entries;
          Alcotest.test_case "audit hook samples every dispatch" `Quick
            test_audit_hook;
          Alcotest.test_case "audit samples identical cold vs warm" `Quick
            test_audit_cold_warm_identical;
          Alcotest.test_case "flight_capacity resizes the global ring" `Quick
            test_flight_capacity_option;
        ] );
    ]
