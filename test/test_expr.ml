open Tc_tensor
open Tc_expr

let check = Alcotest.check
let fail = Alcotest.fail

let indices_t = Alcotest.testable Index.list_pp (List.for_all2 Index.equal)

let parse_ok s =
  match Parser.parse s with
  | Ok ast -> ast
  | Error e -> fail (Format.asprintf "parse of %S failed: %a" s Parser.pp_error e)

let parse_err s =
  match Parser.parse s with
  | Ok _ -> fail (Printf.sprintf "parse of %S unexpectedly succeeded" s)
  | Error e -> e

(* ---- Parser ---- *)

let test_parse_tccg () =
  let ast = parse_ok "abcd-aebf-dfce" in
  check indices_t "out" (Index.list_of_string "abcd") ast.Ast.out.Ast.indices;
  check indices_t "lhs" (Index.list_of_string "aebf") ast.Ast.lhs.Ast.indices;
  check indices_t "rhs" (Index.list_of_string "dfce") ast.Ast.rhs.Ast.indices

let test_parse_einstein () =
  let ast = parse_ok "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]" in
  check Alcotest.string "out name" "C" ast.Ast.out.Ast.name;
  check Alcotest.string "lhs name" "A" ast.Ast.lhs.Ast.name;
  check indices_t "rhs" (Index.list_of_string "dfce") ast.Ast.rhs.Ast.indices

let test_parse_einstein_no_commas () =
  let ast = parse_ok "T3[abcdef] = T2[gdab] * V[efgc]" in
  check indices_t "out" (Index.list_of_string "abcdef") ast.Ast.out.Ast.indices;
  check Alcotest.string "lhs name" "T2" ast.Ast.lhs.Ast.name

let test_parse_whitespace_and_semicolon () =
  let ast = parse_ok "  C[i,j]=A[i,k]  *B[k,j] ; " in
  check indices_t "out" [ 'i'; 'j' ] ast.Ast.out.Ast.indices

let test_parse_equivalence () =
  let a = parse_ok "abcd-aebf-dfce" in
  let b = parse_ok "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]" in
  check Alcotest.bool "two syntaxes agree" true (Ast.equal a b)

let test_tccg_roundtrip () =
  let s = "abcdef-gdab-efgc" in
  check Alcotest.string "roundtrip" s (Ast.tccg_string (parse_ok s))

let test_parse_errors () =
  ignore (parse_err "abcd-aebf");
  (* two groups only *)
  ignore (parse_err "abcd--dfce");
  (* empty group *)
  ignore (parse_err "abcd-aeBf-dfce");
  (* invalid char *)
  ignore (parse_err "C[a] = A[a,b]");
  (* missing * B *)
  ignore (parse_err "C[a] = A[a1] * B[a]");
  (* digit in index list *)
  ignore (parse_err "C[] = A[a] * B[a]");
  (* empty index list *)
  ignore (parse_err "C[a] = A[ab] * B[b] trailing")

let test_parse_error_position () =
  let e = parse_err "abcd-ae!f-dfce" in
  check Alcotest.int "position of bad char" 7 e.Parser.position

(* ---- Classify ---- *)

let analyse s = Classify.analyse_exn (parse_ok s)

let test_classify_eq1 () =
  let info = analyse "abcd-aebf-dfce" in
  check indices_t "externals" (Index.list_of_string "abcd") info.Classify.externals;
  check indices_t "internals" (Index.list_of_string "ef") info.Classify.internals;
  check indices_t "lhs externals" (Index.list_of_string "ab")
    info.Classify.lhs_externals;
  check indices_t "rhs externals" (Index.list_of_string "dc")
    info.Classify.rhs_externals;
  check Alcotest.char "out fvi" 'a' info.Classify.out_fvi;
  check Alcotest.char "lhs fvi" 'a' info.Classify.lhs_fvi;
  check Alcotest.char "rhs fvi" 'd' info.Classify.rhs_fvi;
  check Alcotest.bool "not swapped" false info.Classify.swapped

let test_classify_swap () =
  (* out FVI 'a' lives in the second input: canonicalization must swap *)
  let info = analyse "abcd-be-aecd" in
  check Alcotest.bool "swapped" true info.Classify.swapped;
  check indices_t "canonical lhs" (Index.list_of_string "aecd")
    info.Classify.expr.Ast.lhs.Ast.indices;
  check indices_t "original preserved" (Index.list_of_string "be")
    info.Classify.original.Ast.lhs.Ast.indices

let test_classify_roles () =
  let info = analyse "abcd-aebf-dfce" in
  check Alcotest.bool "a external" true (Classify.role info 'a' = Classify.External);
  check Alcotest.bool "e internal" true (Classify.role info 'e' = Classify.Internal);
  match Classify.role info 'z' with
  | exception Not_found -> ()
  | _ -> fail "foreign index accepted"

let test_classify_reuse () =
  let info = analyse "abcd-aebf-dfce" in
  (* an internal index is a reuse direction for the output *)
  check Alcotest.bool "e reuses C" true (Classify.reuse_tensor info 'e' = Classify.Out);
  (* a appears in lhs and out, so it is a reuse direction for the rhs *)
  check Alcotest.bool "a reuses B" true (Classify.reuse_tensor info 'a' = Classify.Rhs);
  check Alcotest.bool "d reuses A" true (Classify.reuse_tensor info 'd' = Classify.Lhs)

let test_classify_every_index_in_two_tensors () =
  (* c appears in all three -> invalid *)
  (match Classify.analyse (parse_ok "abc-acd-dbc") with
  | Error _ -> ()
  | Ok _ -> fail "index in three tensors accepted");
  (* z appears only in lhs -> invalid *)
  match Classify.analyse (parse_ok "ab-azc-cb") with
  | Error _ -> ()
  | Ok _ -> fail "index in one tensor accepted"

let test_classify_duplicate_in_tensor () =
  match Classify.analyse (parse_ok "ab-aac-cb") with
  | Error _ -> ()
  | Ok _ -> fail "duplicate index within a tensor accepted"

let test_all_indices_order () =
  let info = analyse "abcd-aebf-dfce" in
  check indices_t "externals then internals" (Index.list_of_string "abcdef")
    (Classify.all_indices info)

let classify_accepts_generated =
  QCheck.Test.make ~count:200 ~name:"generated contractions always classify"
    Gen.case_arbitrary (fun c ->
      let info = Problem.info c.Gen.problem in
      (* the canonical lhs must contain the output FVI *)
      List.exists (Index.equal info.Classify.out_fvi)
        info.Classify.expr.Ast.lhs.Ast.indices)

let classify_partition =
  QCheck.Test.make ~count:200
    ~name:"externals+internals partition all indices" Gen.case_arbitrary
    (fun c ->
      let info = Problem.info c.Gen.problem in
      let all = Classify.all_indices info in
      Index.distinct all
      && List.length all
         = List.length info.Classify.externals
           + List.length info.Classify.internals)

(* ---- Sizes ---- *)

let test_sizes_parse () =
  match Sizes.parse "a=16, b=24 ,c=8" with
  | Error e -> fail e
  | Ok s ->
      check Alcotest.int "a" 16 (Sizes.extent s 'a');
      check Alcotest.int "b" 24 (Sizes.extent s 'b');
      check Alcotest.int "product" (16 * 24 * 8)
        (Sizes.product s [ 'a'; 'b'; 'c' ])

let test_sizes_parse_errors () =
  let err s = match Sizes.parse s with Error _ -> () | Ok _ -> fail s in
  err "a=0";
  err "a=x";
  err "ab=3";
  err "a=3,a=4";
  err "a"

let test_sizes_uniform_covers () =
  let s = Sizes.uniform [ 'a'; 'b' ] 7 in
  check Alcotest.bool "covers" true (Sizes.covers s [ 'a'; 'b' ]);
  check Alcotest.bool "does not cover c" false (Sizes.covers s [ 'c' ])

(* ---- Fuse ---- *)

let fuse_problem =
  Problem.of_string_exn "abc-abd-dc"
    ~sizes:[ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ]

let test_fusable_pairs () =
  (* a,b live in {C, A} and are adjacent in both *)
  check Alcotest.bool "a,b fusable" true
    (List.mem ('a', 'b') (Fuse.fusable_pairs fuse_problem));
  (* c and d live in different tensor pairs *)
  check Alcotest.bool "c,d not fusable" false
    (List.mem ('c', 'd') (Fuse.fusable_pairs fuse_problem))

let test_fuse_pair () =
  match Fuse.fuse_pair fuse_problem ('a', 'b') with
  | Error e -> fail e
  | Ok fused ->
      check Alcotest.int "merged extent" 12 (Problem.extent fused 'a');
      check Alcotest.bool "b gone" true
        (not (List.mem 'b' (Classify.all_indices (Problem.info fused))));
      check (Alcotest.float 1e-6) "same flops" (Problem.flops fuse_problem)
        (Problem.flops fused)

let test_fuse_pair_rejects () =
  match Fuse.fuse_pair fuse_problem ('c', 'd') with
  | Error _ -> ()
  | Ok _ -> fail "non-fusable pair accepted"

let test_fuse_all_chain () =
  (* a,b,c all in {C, A}, in the same order: the chain collapses to one *)
  let p =
    Problem.of_string_exn "abcd-abce-ed"
      ~sizes:[ ('a', 2); ('b', 3); ('c', 4); ('d', 5); ('e', 6) ]
  in
  let fused, groups = Fuse.fuse_all p in
  check Alcotest.bool "not identity" false (Fuse.is_identity groups);
  check Alcotest.int "one group" 1 (List.length groups);
  let g = List.hd groups in
  check Alcotest.char "representative a" 'a' g.Fuse.representative;
  check Alcotest.int "extent 2*3*4" 24 g.Fuse.extent;
  check Alcotest.int "fused is a GEMM" 2
    (List.length (Problem.info fused).Classify.externals)

let test_fuse_all_identity () =
  let p = Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 4); ('b', 4); ('c', 4) ] in
  let fused, groups = Fuse.fuse_all p in
  check Alcotest.bool "identity" true (Fuse.is_identity groups);
  check (Alcotest.float 1e-6) "unchanged" (Problem.flops p) (Problem.flops fused)

(* Fusion is a relabeling of the same memory: contracting reinterpreted
   tensors yields the bit-identical flat output. *)
let test_fuse_preserves_memory () =
  let p = fuse_problem in
  let fused, _ = Fuse.fuse_all p in
  let a = Dense.random ~seed:51 (Problem.lhs_shape p) in
  let b = Dense.random ~seed:52 (Problem.rhs_shape p) in
  let reinterpret shape t =
    let out = Dense.create shape in
    Array.blit (Dense.unsafe_data t) 0 (Dense.unsafe_data out) 0
      (Dense.numel t);
    out
  in
  let fa = reinterpret (Problem.lhs_shape fused) a in
  let fb = reinterpret (Problem.rhs_shape fused) b in
  let orig =
    Contract_ref.contract
      ~out_indices:(Problem.info p).Classify.externals a b
  in
  let via_fused =
    Contract_ref.contract
      ~out_indices:(Problem.info fused).Classify.externals fa fb
  in
  check Alcotest.int "same output volume" (Dense.numel orig)
    (Dense.numel via_fused);
  let da = Dense.unsafe_data orig and db = Dense.unsafe_data via_fused in
  check Alcotest.bool "flat outputs identical" true
    (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-12) da db)

let fuse_preserves_flops =
  QCheck.Test.make ~count:100 ~name:"fusion preserves arithmetic work"
    Gen.case_arbitrary (fun c ->
      let fused, _ = Fuse.fuse_all c.Gen.problem in
      Float.abs (Problem.flops fused -. Problem.flops c.Gen.problem) < 0.5)

let fuse_contraction_agrees =
  QCheck.Test.make ~count:100
    ~name:"contraction of reinterpreted fused tensors is bit-identical"
    Gen.case_arbitrary (fun c ->
      let fused, _ = Fuse.fuse_all c.Gen.problem in
      let reinterpret shape t =
        let out = Dense.create shape in
        Array.blit (Dense.unsafe_data t) 0 (Dense.unsafe_data out) 0
          (Dense.numel t);
        out
      in
      (* the fused lhs/rhs shapes describe the canonical (possibly swapped)
         operands; reinterpret accordingly *)
      let info = Problem.info c.Gen.problem in
      let a, b =
        if info.Classify.swapped then (c.Gen.rhs, c.Gen.lhs)
        else (c.Gen.lhs, c.Gen.rhs)
      in
      let fa = reinterpret (Problem.lhs_shape fused) a in
      let fb = reinterpret (Problem.rhs_shape fused) b in
      let orig = Gen.reference c in
      let via =
        Contract_ref.contract
          ~out_indices:(Problem.info fused).Classify.externals fa fb
      in
      Dense.numel orig = Dense.numel via
      && Array.for_all2
           (fun x y -> Float.abs (x -. y) < 1e-12)
           (Dense.unsafe_data orig) (Dense.unsafe_data via))

(* ---- Split ---- *)

let ttm_problem =
  Problem.of_string_exn "ab-cad-dcb"
    ~sizes:[ ('a', 64); ('b', 64); ('c', 16); ('d', 16) ]

let test_split_basic () =
  match Split.split ttm_problem 'a' ~factor:16 with
  | Error e -> fail e
  | Ok (p, slow) ->
      check Alcotest.int "fast extent" 16 (Problem.extent p 'a');
      check Alcotest.int "slow extent" 4 (Problem.extent p slow);
      (* slow index follows a in every tensor containing a *)
      let info = Problem.info p in
      let orig = info.Classify.original in
      let follows indices =
        let rec go = function
          | x :: y :: _ when Index.equal x 'a' -> Index.equal y slow
          | _ :: rest -> go rest
          | [] -> true
        in
        go indices
      in
      check Alcotest.bool "adjacent in out" true (follows orig.Ast.out.Ast.indices);
      check Alcotest.bool "adjacent in lhs" true (follows orig.Ast.lhs.Ast.indices);
      check (Alcotest.float 1e-6) "same flops" (Problem.flops ttm_problem)
        (Problem.flops p)

let test_split_rejects () =
  let err = function Error _ -> () | Ok _ -> fail "bad split accepted" in
  err (Split.split ttm_problem 'z' ~factor:2);
  err (Split.split ttm_problem 'a' ~factor:5);
  (* non-divisor *)
  err (Split.split ttm_problem 'a' ~factor:1);
  err (Split.split ttm_problem 'a' ~factor:64)

let test_split_fresh_index () =
  check Alcotest.bool "fresh letter avoids used ones" true
    (match Split.fresh_index ttm_problem with
    | Some i -> not (List.mem i [ 'a'; 'b'; 'c'; 'd' ])
    | None -> false)

let test_split_auto_ttm () =
  let p, applied = Split.auto ttm_problem in
  (* both sides have a single big external: both get split *)
  check Alcotest.int "two splits" 2 (List.length applied);
  let info = Problem.info p in
  check Alcotest.int "lhs now has two externals" 2
    (List.length info.Classify.lhs_externals);
  check Alcotest.int "rhs now has two externals" 2
    (List.length info.Classify.rhs_externals)

let test_split_auto_noop () =
  (* Eq. 1 has two externals per side already *)
  let p =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]
  in
  let _, applied = Split.auto p in
  check Alcotest.int "no split" 0 (List.length applied)

(* splitting is a relabeling of the same memory *)
let test_split_preserves_memory () =
  let p = ttm_problem in
  let sp, _ = Split.auto p in
  let reinterpret shape t =
    let out = Dense.create shape in
    Array.blit (Dense.unsafe_data t) 0 (Dense.unsafe_data out) 0
      (Dense.numel t);
    out
  in
  let a = Dense.random ~seed:61 (Problem.lhs_shape p) in
  let b = Dense.random ~seed:62 (Problem.rhs_shape p) in
  let fa = reinterpret (Problem.lhs_shape sp) a in
  let fb = reinterpret (Problem.rhs_shape sp) b in
  let orig =
    Contract_ref.contract ~out_indices:(Problem.info p).Classify.externals a b
  in
  let via =
    Contract_ref.contract
      ~out_indices:(Problem.info sp).Classify.externals fa fb
  in
  check Alcotest.bool "flat outputs identical" true
    (Array.for_all2
       (fun x y -> Float.abs (x -. y) < 1e-12)
       (Dense.unsafe_data orig) (Dense.unsafe_data via))

(* ---- Idxset ---- *)

let test_idxset_basics () =
  let open Idxset in
  let s = of_list (Index.list_of_string "aebf") in
  check Alcotest.bool "mem e" true (mem 'e' s);
  check Alcotest.bool "not mem z" false (mem 'z' s);
  check Alcotest.int "cardinal" 4 (cardinal s);
  check indices_t "to_list sorted" (Index.list_of_string "abef") (to_list s);
  check Alcotest.bool "remove" false (mem 'e' (remove 'e' s));
  check Alcotest.bool "empty" true (is_empty empty);
  check Alcotest.int "slot a" 0 (slot 'a');
  check Alcotest.int "slot z" 25 (slot 'z')

let idxset_matches_index_set =
  QCheck.Test.make ~count:200 ~name:"Idxset agrees with Index.Set algebra"
    QCheck.(
      pair
        (small_list (map (fun n -> Char.chr (97 + (abs n mod 26))) int))
        (small_list (map (fun n -> Char.chr (97 + (abs n mod 26))) int)))
    (fun (la, lb) ->
      let a = Idxset.of_list la and b = Idxset.of_list lb in
      let sa = Index.Set.of_list la and sb = Index.Set.of_list lb in
      Idxset.to_list (Idxset.union a b) = Index.Set.elements (Index.Set.union sa sb)
      && Idxset.to_list (Idxset.inter a b)
         = Index.Set.elements (Index.Set.inter sa sb)
      && Idxset.to_list (Idxset.diff a b)
         = Index.Set.elements (Index.Set.diff sa sb)
      && Idxset.cardinal a = Index.Set.cardinal sa
      && Idxset.subset a b = Index.Set.subset sa sb
      && Idxset.disjoint a b = Index.Set.disjoint sa sb
      && Idxset.equal a b = Index.Set.equal sa sb)

(* ---- Problem ---- *)

let test_problem_flops () =
  let p =
    Problem.of_string_exn "ab-ac-cb" ~sizes:[ ('a', 3); ('b', 4); ('c', 5) ]
  in
  check (Alcotest.float 0.0) "2*m*n*k" (2.0 *. 60.0) (Problem.flops p)

let test_problem_missing_extent () =
  match Problem.of_string "ab-ac-cb" ~sizes:[ ('a', 3); ('b', 4) ] with
  | Error _ -> ()
  | Ok _ -> fail "missing extent accepted"

let test_problem_shapes_canonical () =
  let p =
    Problem.of_string_exn "abcd-be-aecd"
      ~sizes:[ ('a', 2); ('b', 3); ('c', 4); ('d', 5); ('e', 6) ]
  in
  (* swapped: canonical lhs is aecd *)
  check indices_t "lhs shape order" (Index.list_of_string "aecd")
    (Shape.indices (Problem.lhs_shape p));
  check Alcotest.int "out elems" (2 * 3 * 4 * 5) (Problem.out_elems p)

let () =
  Alcotest.run "tc_expr"
    [
      ( "parser",
        [
          Alcotest.test_case "tccg form" `Quick test_parse_tccg;
          Alcotest.test_case "einstein form" `Quick test_parse_einstein;
          Alcotest.test_case "einstein without commas" `Quick
            test_parse_einstein_no_commas;
          Alcotest.test_case "whitespace and semicolon" `Quick
            test_parse_whitespace_and_semicolon;
          Alcotest.test_case "syntaxes agree" `Quick test_parse_equivalence;
          Alcotest.test_case "tccg roundtrip" `Quick test_tccg_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
        ] );
      ( "classify",
        [
          Alcotest.test_case "Eq. 1 analysis" `Quick test_classify_eq1;
          Alcotest.test_case "lhs/rhs canonicalization swap" `Quick
            test_classify_swap;
          Alcotest.test_case "roles" `Quick test_classify_roles;
          Alcotest.test_case "reuse tensor property (§II)" `Quick
            test_classify_reuse;
          Alcotest.test_case "two-of-three occurrence rule" `Quick
            test_classify_every_index_in_two_tensors;
          Alcotest.test_case "duplicate within a tensor" `Quick
            test_classify_duplicate_in_tensor;
          Alcotest.test_case "all_indices order" `Quick test_all_indices_order;
          Gen.to_alcotest classify_accepts_generated;
          Gen.to_alcotest classify_partition;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "parse" `Quick test_sizes_parse;
          Alcotest.test_case "parse errors" `Quick test_sizes_parse_errors;
          Alcotest.test_case "uniform/covers" `Quick test_sizes_uniform_covers;
        ] );
      ( "fuse",
        [
          Alcotest.test_case "fusable pairs" `Quick test_fusable_pairs;
          Alcotest.test_case "fuse one pair" `Quick test_fuse_pair;
          Alcotest.test_case "rejects non-fusable" `Quick test_fuse_pair_rejects;
          Alcotest.test_case "chain fusion" `Quick test_fuse_all_chain;
          Alcotest.test_case "identity fusion" `Quick test_fuse_all_identity;
          Alcotest.test_case "fusion preserves memory" `Quick
            test_fuse_preserves_memory;
          Gen.to_alcotest fuse_preserves_flops;
          Gen.to_alcotest fuse_contraction_agrees;
        ] );
      ( "split",
        [
          Alcotest.test_case "basic split" `Quick test_split_basic;
          Alcotest.test_case "rejects bad splits" `Quick test_split_rejects;
          Alcotest.test_case "fresh index" `Quick test_split_fresh_index;
          Alcotest.test_case "auto on TTM" `Quick test_split_auto_ttm;
          Alcotest.test_case "auto no-op on Eq. 1" `Quick test_split_auto_noop;
          Alcotest.test_case "split preserves memory" `Quick
            test_split_preserves_memory;
        ] );
      ( "idxset",
        [
          Alcotest.test_case "basics" `Quick test_idxset_basics;
          Gen.to_alcotest idxset_matches_index_set;
        ] );
      ( "problem",
        [
          Alcotest.test_case "flops" `Quick test_problem_flops;
          Alcotest.test_case "missing extent" `Quick test_problem_missing_extent;
          Alcotest.test_case "canonical shapes" `Quick
            test_problem_shapes_canonical;
        ] );
    ]
