open Tc_tensor
open Tc_gpu
open Tc_expr
open Tc_ttgt

let check = Alcotest.check
let fail = Alcotest.fail

let sizes6 = [ ('a', 5); ('b', 4); ('c', 3); ('d', 6); ('e', 2); ('f', 3) ]

(* ---- transpose model ---- *)

let test_transpose_identity_free () =
  let sizes = Index.Map.of_seq (List.to_seq [ ('a', 64); ('b', 64) ]) in
  let r =
    Transpose_model.run Arch.v100 Precision.FP64 ~sizes ~src:[ 'a'; 'b' ]
      ~dst:[ 'a'; 'b' ]
  in
  check Alcotest.bool "identity" true r.Transpose_model.identity;
  check (Alcotest.float 0.0) "free" 0.0 r.Transpose_model.time_s

let test_transpose_reads_and_writes_once () =
  let sizes = Index.Map.of_seq (List.to_seq [ ('a', 64); ('b', 64) ]) in
  let r =
    Transpose_model.run Arch.v100 Precision.FP64 ~sizes ~src:[ 'a'; 'b' ]
      ~dst:[ 'b'; 'a' ]
  in
  check (Alcotest.float 1.0) "2 * elems * 8 bytes"
    (2.0 *. 4096.0 *. 8.0)
    r.Transpose_model.bytes

let test_transpose_small_fvi_slower () =
  let mk fvi_extent =
    let sizes =
      Index.Map.of_seq (List.to_seq [ ('a', fvi_extent); ('b', 4096 / fvi_extent) ])
    in
    (Transpose_model.run Arch.v100 Precision.FP64 ~sizes ~src:[ 'a'; 'b' ]
       ~dst:[ 'b'; 'a' ])
      .Transpose_model.efficiency
  in
  check Alcotest.bool "extent-4 FVI less efficient than extent-64" true
    (mk 4 < mk 64)

let test_transpose_rejects_non_permutation () =
  let sizes = Index.Map.of_seq (List.to_seq [ ('a', 8); ('b', 8) ]) in
  match
    Transpose_model.run Arch.v100 Precision.FP64 ~sizes ~src:[ 'a'; 'b' ]
      ~dst:[ 'a'; 'c' ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-permutation accepted"

(* ---- GEMM model ---- *)

let test_gemm_large_square_near_peak () =
  let r = Gemm_model.run Arch.v100 Precision.FP64 ~m:8192 ~n:8192 ~k:8192 in
  check Alcotest.bool "at least 70% of peak" true
    (r.Gemm_model.gflops > 0.7 *. Arch.peak_gflops Arch.v100 Precision.FP64);
  check Alcotest.bool "below peak" true
    (r.Gemm_model.gflops < Arch.peak_gflops Arch.v100 Precision.FP64)

let test_gemm_small_k_inefficient () =
  let big = Gemm_model.run Arch.v100 Precision.FP64 ~m:8192 ~n:8192 ~k:2048 in
  let small = Gemm_model.run Arch.v100 Precision.FP64 ~m:8192 ~n:8192 ~k:16 in
  check Alcotest.bool "skinny K much slower" true
    (small.Gemm_model.gflops < big.Gemm_model.gflops /. 2.0)

let test_gemm_skinny_n_inefficient () =
  let sq = Gemm_model.run Arch.v100 Precision.FP64 ~m:4096 ~n:4096 ~k:1024 in
  let sk = Gemm_model.run Arch.v100 Precision.FP64 ~m:4096 ~n:32 ~k:1024 in
  check Alcotest.bool "skinny N slower" true
    (sk.Gemm_model.gflops < sq.Gemm_model.gflops)

let test_gemm_rejects_empty () =
  match Gemm_model.run Arch.v100 Precision.FP64 ~m:0 ~n:4 ~k:4 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty GEMM accepted"

(* ---- TTGT planner ---- *)

let test_plan_eq1_dimensions () =
  let p =
    Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 8); ('b', 7); ('c', 6); ('d', 5); ('e', 4); ('f', 3) ]
  in
  let t = Ttgt.plan_ctx Cogent.Ctx.default p in
  check Alcotest.int "m = Na*Nb" (8 * 7) t.Ttgt.m;
  check Alcotest.int "n = Nd*Nc" (5 * 6) t.Ttgt.n;
  check Alcotest.int "k = Ne*Nf" (4 * 3) t.Ttgt.k

let test_plan_gemm_compatible_no_permutes () =
  (* abcd-efab-cdef: A = [K@M], B = [N@K], C = [M@N]: zero permutes even in
     the faithful lowering *)
  let p =
    Problem.of_string_exn "abcd-efab-cdef"
      ~sizes:[ ('a', 4); ('b', 4); ('c', 4); ('d', 4); ('e', 4); ('f', 4) ]
  in
  let t = Ttgt.plan_ctx Cogent.Ctx.default p in
  check Alcotest.int "no permutes" 0 (List.length t.Ttgt.permutes)

let test_plan_faithful_always_permutes_output_when_needed () =
  let p = Problem.of_string_exn "abcd-aebf-dfce" ~sizes:sizes6 in
  let t = Ttgt.plan_ctx Cogent.Ctx.default p in
  check Alcotest.bool "has a C permute" true
    (List.exists (fun s -> s.Ttgt.operand = "C") t.Ttgt.permutes)

let test_optimized_plan_not_worse () =
  List.iter
    (fun expr ->
      let p = Problem.of_string_exn expr ~sizes:sizes6 in
      let faithful =
        Ttgt.estimate Arch.v100 Precision.FP64
          (Ttgt.plan_ctx Cogent.Ctx.default p)
      in
      let optimized =
        Ttgt.estimate Arch.v100 Precision.FP64
          (Ttgt.plan_ctx Cogent.Ctx.default ~optimize:true p)
      in
      check Alcotest.bool
        (Printf.sprintf "optimize does not hurt on %s" expr)
        true
        (optimized.Ttgt.time_s <= faithful.Ttgt.time_s +. 1e-12))
    [ "abcd-aebf-dfce"; "abcd-efab-cdef"; "abcd-be-aecd"; "ab-ac-cb" ]

let test_estimate_components () =
  let p = Problem.of_string_exn "abcd-aebf-dfce" ~sizes:sizes6 in
  let e = Ttgt.run_ctx Cogent.Ctx.default p in
  check Alcotest.bool "time >= gemm + transposes" true
    (e.Ttgt.time_s >= e.Ttgt.gemm_time_s +. e.Ttgt.transpose_time_s);
  check Alcotest.bool "positive gflops" true (e.Ttgt.gflops > 0.0)

(* ---- transpose kernel generation ---- *)

let syntax_check source =
  (* same g++ shim trick as test_compile *)
  let shim =
    "#define __global__\n#define __shared__ static\n#define __restrict__      __restrict\nstruct shim_dim3 { unsigned x, y, z; };\nstatic shim_dim3      threadIdx, blockIdx, blockDim, gridDim;\nstatic inline void      __syncthreads() {}\n"
  in
  if Sys.command "g++ --version > /dev/null 2>&1" <> 0 then true
  else begin
    let file = Filename.temp_file "cogent_transpose" ".cpp" in
    let oc = open_out file in
    output_string oc shim;
    output_string oc source;
    close_out oc;
    let ok =
      Sys.command
        (Printf.sprintf "g++ -x c++ -std=c++11 -fsyntax-only %s > /dev/null 2>&1"
           (Filename.quote file))
      = 0
    in
    Sys.remove file;
    ok
  end

let test_transpose_gen_schema_choice () =
  check Alcotest.bool "FVI change -> tiled" true
    (Transpose_gen.uses_tiled_schema ~src:[ 'a'; 'b' ] ~dst:[ 'b'; 'a' ]);
  check Alcotest.bool "FVI kept -> packed" false
    (Transpose_gen.uses_tiled_schema ~src:[ 'a'; 'b'; 'c' ]
       ~dst:[ 'a'; 'c'; 'b' ])

let test_transpose_gen_rejects () =
  (match
     Transpose_gen.emit_kernel ~precision:Precision.FP64 ~src:[ 'a'; 'b' ]
       ~dst:[ 'a'; 'b' ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> fail "identity accepted");
  match
    Transpose_gen.emit_kernel ~precision:Precision.FP64 ~src:[ 'a'; 'b' ]
      ~dst:[ 'a'; 'c' ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-permutation accepted"

let test_transpose_gen_tiled_structure () =
  let src =
    Transpose_gen.emit_kernel ~precision:Precision.FP64
      ~src:(Index.list_of_string "aebf") ~dst:(Index.list_of_string "ebaf")
  in
  let has needle =
    let ln = String.length needle and ls = String.length src in
    let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "padded tile" true (has "tile_s[32][33]");
  check Alcotest.bool "sync" true (has "__syncthreads();");
  check Alcotest.bool "guards" true (has "base_a + tx < N_a")

let test_transpose_gen_kernels_compile () =
  List.iter
    (fun (src, dst) ->
      let cu =
        Transpose_gen.emit_kernel ~precision:Precision.FP64
          ~src:(Index.list_of_string src) ~dst:(Index.list_of_string dst)
      in
      check Alcotest.bool
        (Printf.sprintf "%s->%s compiles" src dst)
        true (syntax_check cu))
    [
      ("ab", "ba");
      ("aebf", "abef");
      ("abcdef", "dabcef");
      ("abc", "acb") (* packed *);
      ("gdab", "abdg");
    ]

let test_emit_cuda_pipeline () =
  let p = Problem.of_string_exn "abcd-aebf-dfce" ~sizes:sizes6 in
  let t = Ttgt.plan_ctx Cogent.Ctx.default p in
  let src = Ttgt.emit_cuda Precision.FP64 t in
  let has needle =
    let ln = String.length needle and ls = String.length src in
    let rec go i = i + ln <= ls && (String.sub src i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions cublasDgemm" true (has "cublasDgemm");
  check Alcotest.bool "one kernel per permute" true
    (List.for_all
       (fun pm ->
         has
           (Transpose_gen.kernel_name ~src:pm.Ttgt.src ~dst:pm.Ttgt.dst))
       t.Ttgt.permutes)

(* ---- functional execution ---- *)

let test_execute_eq1 () =
  let p = Problem.of_string_exn "abcd-aebf-dfce" ~sizes:sizes6 in
  let a = Dense.random ~seed:21 (Problem.lhs_shape p) in
  let bt = Dense.random ~seed:22 (Problem.rhs_shape p) in
  let expected = Contract_ref.contract ~out_indices:[ 'a'; 'b'; 'c'; 'd' ] a bt in
  let got = Ttgt.execute p ~lhs:a ~rhs:bt in
  check Alcotest.bool "ttgt == reference" true
    (Dense.equal_approx ~tol:1e-9 expected got)

let ttgt_matches_reference =
  QCheck.Test.make ~count:120 ~name:"ttgt execute == reference"
    Gen.case_arbitrary (fun c ->
      let got = Ttgt.execute c.Gen.problem ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs in
      Dense.equal_approx ~tol:1e-9 (Gen.reference c) got)

let ttgt_optimized_matches_reference =
  QCheck.Test.make ~count:60 ~name:"optimized ttgt execute == reference"
    Gen.case_arbitrary (fun c ->
      let got =
        Ttgt.execute ~optimize:true c.Gen.problem ~lhs:c.Gen.lhs ~rhs:c.Gen.rhs
      in
      Dense.equal_approx ~tol:1e-9 (Gen.reference c) got)

let () =
  Alcotest.run "ttgt"
    [
      ( "transpose model",
        [
          Alcotest.test_case "identity is free" `Quick
            test_transpose_identity_free;
          Alcotest.test_case "bytes = 2 * data" `Quick
            test_transpose_reads_and_writes_once;
          Alcotest.test_case "small FVI penalized" `Quick
            test_transpose_small_fvi_slower;
          Alcotest.test_case "rejects non-permutation" `Quick
            test_transpose_rejects_non_permutation;
        ] );
      ( "gemm model",
        [
          Alcotest.test_case "large square near peak" `Quick
            test_gemm_large_square_near_peak;
          Alcotest.test_case "small K inefficient" `Quick
            test_gemm_small_k_inefficient;
          Alcotest.test_case "skinny N inefficient" `Quick
            test_gemm_skinny_n_inefficient;
          Alcotest.test_case "rejects empty" `Quick test_gemm_rejects_empty;
        ] );
      ( "planner",
        [
          Alcotest.test_case "Eq. 1 GEMM dimensions" `Quick
            test_plan_eq1_dimensions;
          Alcotest.test_case "GEMM-compatible layouts need no permutes" `Quick
            test_plan_gemm_compatible_no_permutes;
          Alcotest.test_case "output permute when layouts differ" `Quick
            test_plan_faithful_always_permutes_output_when_needed;
          Alcotest.test_case "optimized never worse" `Quick
            test_optimized_plan_not_worse;
          Alcotest.test_case "estimate components" `Quick
            test_estimate_components;
          Alcotest.test_case "emit CUDA pipeline" `Quick
            test_emit_cuda_pipeline;
        ] );
      ( "transpose codegen",
        [
          Alcotest.test_case "schema choice" `Quick
            test_transpose_gen_schema_choice;
          Alcotest.test_case "rejects identity/non-permutation" `Quick
            test_transpose_gen_rejects;
          Alcotest.test_case "tiled structure" `Quick
            test_transpose_gen_tiled_structure;
          Alcotest.test_case "kernels compile (g++ shim)" `Slow
            test_transpose_gen_kernels_compile;
        ] );
      ( "execution",
        [
          Alcotest.test_case "Eq. 1 functional" `Quick test_execute_eq1;
          Gen.to_alcotest ttgt_matches_reference;
          Gen.to_alcotest ttgt_optimized_matches_reference;
        ] );
    ]
