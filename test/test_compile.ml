(* Validation of emitted kernels with a real host compiler.

   There is no nvcc in this environment, but the CUDA-specific surface of
   the generated kernels is small enough to shim away with plain C++
   (qualifiers become storage classes, thread built-ins become globals),
   after which `g++ -fsyntax-only` checks the whole kernel body: every
   declaration, index expression, guard and loop the generator produced —
   for all 48 TCCG contractions, both precisions, and all three dialects.

   The C-host dialect needs no shim at all: its standalone translation
   unit is compiled with gcc, executed on deliberately tile-misaligned
   extents, and its output tensor is compared elementwise against
   [Contract_ref] — an end-to-end numerical check of the whole lowering.

   Launchers use the <<<...>>> launch syntax, which no host compiler
   parses, so only kernels are syntax-checked (the launcher text is
   covered by golden tests). *)

open Tc_gpu

let cuda_shim =
  {|#pragma once
#define __global__
#define __shared__ static
#define __restrict__ __restrict
struct shim_dim3 { unsigned x, y, z; };
static shim_dim3 threadIdx, blockIdx, blockDim, gridDim;
static inline void __syncthreads() {}
typedef float half;
static inline void __pipeline_memcpy_async(void* dst, const void* src,
                                           unsigned long n) {
  __builtin_memcpy(dst, src, n);
}
static inline void __pipeline_commit() {}
static inline void __pipeline_wait_prior(int) {}
|}

let opencl_shim =
  {|#pragma once
#define __kernel
#define __global
#define __local static
#define restrict __restrict
#define CLK_LOCAL_MEM_FENCE 0
static inline int get_local_id(int) { return 0; }
static inline int get_group_id(int) { return 0; }
static inline void barrier(int) {}
|}

let gxx_available =
  lazy (Sys.command "g++ --version > /dev/null 2>&1" = 0)

let syntax_check ~shim source =
  let dir = Filename.get_temp_dir_name () in
  let file = Filename.temp_file ~temp_dir:dir "cogent_kernel" ".cpp" in
  let oc = open_out file in
  output_string oc shim;
  output_string oc "\n";
  output_string oc source;
  close_out oc;
  let log = file ^ ".log" in
  let status =
    Sys.command
      (Printf.sprintf "g++ -x c++ -std=c++11 -fsyntax-only %s > %s 2>&1"
         (Filename.quote file) (Filename.quote log))
  in
  let diagnostics =
    if status = 0 then ""
    else begin
      let ic = open_in log in
      let n = min (in_channel_length ic) 2000 in
      let s = really_input_string ic n in
      close_in ic;
      s
    end
  in
  Sys.remove file;
  if Sys.file_exists log then Sys.remove log;
  (status = 0, diagnostics)

let check_kernel ?dialect ~shim plan name =
  let src = Cogent.Codegen.emit_kernel ?dialect plan in
  let ok, diag = syntax_check ~shim src in
  if not ok then
    Alcotest.fail (Printf.sprintf "%s does not compile:\n%s" name diag)

let require_gxx () =
  if not (Lazy.force gxx_available) then
    (* environments without a host compiler skip rather than fail *)
    raise (Failure "g++ unavailable")

let test_suite_kernels_compile precision () =
  require_gxx ();
  List.iter
    (fun e ->
      let problem = Tc_tccg.Suite.problem e in
      let plan = Cogent.Driver.best_plan ~precision problem in
      check_kernel ~shim:cuda_shim plan e.Tc_tccg.Suite.name)
    Tc_tccg.Suite.all

let test_suite_kernels_compile_opencl () =
  require_gxx ();
  List.iter
    (fun e ->
      let problem = Tc_tccg.Suite.problem e in
      let plan = Cogent.Driver.best_plan problem in
      check_kernel ~dialect:Cogent.Codegen.Opencl ~shim:opencl_shim plan
        (e.Tc_tccg.Suite.name ^ " (OpenCL)"))
    Tc_tccg.Suite.all

let test_variants_unit_compiles () =
  require_gxx ();
  (* the multi-version translation unit contains launchers (<<<>>>), so
     check only its kernels: regenerate them individually *)
  let ast =
    match Tc_expr.Parser.parse "abcd-aebf-dfce" with
    | Ok a -> a
    | Error _ -> assert false
  in
  let v =
    Cogent.Variants.generate_exn ast
      [
        Tc_expr.Sizes.of_list
          [ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ];
        Tc_expr.Sizes.of_list
          [ ('a', 16); ('b', 16); ('c', 96); ('d', 96); ('e', 16); ('f', 16) ];
      ]
  in
  List.iter
    (fun var ->
      check_kernel ~shim:cuda_shim var.Cogent.Variants.plan
        var.Cogent.Variants.name)
    v.Cogent.Variants.variants

(* ---- C-host dialect: compile, execute, compare against Contract_ref ---- *)

let cc_available =
  lazy
    (if Sys.command "gcc --version > /dev/null 2>&1" = 0 then
       Some "gcc -std=c99"
     else if Sys.command "g++ --version > /dev/null 2>&1" = 0 then
       Some "g++ -x c++"
     else None)

let require_cc () =
  match Lazy.force cc_available with
  | Some cc -> cc
  | None ->
      (* environments without a host compiler skip rather than fail *)
      raise (Failure "no C compiler available")

(* Small odd extents (3, 5, 7) that do not divide any power-of-two tile, so
   the run exercises every partial-tile guard the generator emits. *)
let small_extents spec =
  List.mapi (fun k i -> (i, 3 + (2 * (k mod 3)))) (Tc_kir.Ir.all_indices spec)

let read_floats path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (float_of_string (String.trim line) :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let reference_output spec extents =
  let open Tc_tensor in
  let shape_of indices =
    Shape.make (List.map (fun i -> (i, List.assoc i extents)) indices)
  in
  let filled tag indices =
    let t = Dense.create (shape_of indices) in
    let d = Dense.unsafe_data t in
    Array.iteri (fun k _ -> d.(k) <- Tc_kir.Print.host_fill ~tag k) d;
    t
  in
  let a = filled 1 spec.Tc_kir.Ir.lhs and b = filled 2 spec.Tc_kir.Ir.rhs in
  Dense.unsafe_data (Contract_ref.contract ~out_indices:spec.Tc_kir.Ir.out a b)

(* Compile a plan's standalone C-host translation unit, run it on the
   tile-misaligned [small_extents], and return the printed output tensor. *)
let c_host_output cc plan name =
  let spec = Cogent.Codegen.spec_of_plan plan in
  let src = Cogent.Codegen.emit_c_standalone plan in
  let file = Filename.temp_file "cogent_chost" ".c" in
  let exe = Filename.temp_file "cogent_chost" ".exe" in
  let out = exe ^ ".out" and log = exe ^ ".log" in
  let oc = open_out file in
  output_string oc src;
  close_out oc;
  let cleanup () =
    List.iter
      (fun f -> if Sys.file_exists f then Sys.remove f)
      [ file; exe; out; log ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let status =
    Sys.command
      (Printf.sprintf "%s -O1 -o %s %s > %s 2>&1" cc (Filename.quote exe)
         (Filename.quote file) (Filename.quote log))
  in
  if status <> 0 then begin
    let ic = open_in log in
    let n = min (in_channel_length ic) 2000 in
    let diag = really_input_string ic n in
    close_in ic;
    Alcotest.fail (Printf.sprintf "%s does not compile:\n%s" name diag)
  end;
  let extents = small_extents spec in
  let args =
    String.concat " " (List.map (fun (_, n) -> string_of_int n) extents)
  in
  let status =
    Sys.command
      (Printf.sprintf "%s %s > %s" (Filename.quote exe) args
         (Filename.quote out))
  in
  if status <> 0 then
    Alcotest.fail (Printf.sprintf "%s exited with status %d" name status);
  Array.of_list (read_floats out)

let run_c_host cc plan name =
  let spec = Cogent.Codegen.spec_of_plan plan in
  let got = c_host_output cc plan name in
  let want = reference_output spec (small_extents spec) in
  if Array.length got <> Array.length want then
    Alcotest.fail
      (Printf.sprintf "%s: printed %d elements, reference has %d" name
         (Array.length got) (Array.length want));
  Array.iteri
    (fun k w ->
      if Float.abs (got.(k) -. w) > 1e-9 then
        Alcotest.fail
          (Printf.sprintf "%s: C[%d] = %.17g, reference %.17g" name k got.(k)
             w))
    want

let test_suite_kernels_execute () =
  let cc = require_cc () in
  List.iter
    (fun e ->
      let problem = Tc_tccg.Suite.problem e in
      let plan = Cogent.Driver.best_plan problem in
      run_c_host cc plan (e.Tc_tccg.Suite.name ^ " (C host)"))
    Tc_tccg.Suite.all

(* ---- pipelined schema: syntax, execution, classic-equivalence ---- *)

(* The driver under a forced schema picks the best-ranked mapping that
   admits it (doubled SMEM slabs within budget), so every TCCG entry gets
   a genuinely double-buffered kernel. *)
let pipelined_plan problem =
  match
    Cogent.Driver.run
      (Cogent.Ctx.make ~arch:Arch.a100 ~schema:Schema.Pipelined ())
      problem
  with
  | Ok t -> t.Cogent.Driver.plan
  | Error e -> Alcotest.fail (Cogent.Driver.error_to_string e)

let test_suite_kernels_compile_pipelined () =
  require_gxx ();
  List.iter
    (fun e ->
      let plan = pipelined_plan (Tc_tccg.Suite.problem e) in
      check_kernel ~shim:cuda_shim plan
        (e.Tc_tccg.Suite.name ^ " (pipelined)"))
    Tc_tccg.Suite.all

let test_mma_kernel_compiles () =
  require_gxx ();
  (* an fp16 MMA-schema kernel: the `half` scalar type plus the pipeline
     intrinsics, on a fragment-divisible 16x16 macro-tile *)
  let problem =
    Tc_expr.Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 32); ('b', 32); ('c', 32) ]
  in
  let b i t = { Cogent.Mapping.index = i; tile = t } in
  let mapping =
    {
      Cogent.Mapping.tbx = [ b 'a' 16 ];
      regx = [];
      tby = [ b 'b' 16 ];
      regy = [];
      tbk = [ b 'c' 8 ];
      grid = [];
    }
  in
  let plan =
    Cogent.Plan.with_schema Schema.Pipelined_mma
      (Cogent.Plan.make ~problem ~mapping ~arch:Arch.a100
         ~precision:Precision.FP16)
  in
  check_kernel ~shim:cuda_shim plan "ab-ac-cb (fp16 MMA)"

let test_suite_kernels_execute_pipelined () =
  let cc = require_cc () in
  List.iter
    (fun e ->
      let plan = pipelined_plan (Tc_tccg.Suite.problem e) in
      run_c_host cc plan (e.Tc_tccg.Suite.name ^ " (pipelined C host)"))
    Tc_tccg.Suite.all

(* The two-slab rotation only reorders loads, so classic and pipelined
   lowerings of one plan must print bit-identical output tensors on the
   tile-misaligned extents (fixed seed; vacuously true without a host
   compiler, matching the skips above). *)
let prop_pipelined_matches_classic =
  QCheck.Test.make ~count:6
    ~name:"classic and pipelined C-host executables agree"
    Gen.case_arbitrary (fun c ->
      match Lazy.force cc_available with
      | None -> true
      | Some cc ->
          let plan =
            Cogent.Driver.best_plan ~arch:Arch.a100 c.Gen.problem
          in
          if
            not
              (Cogent.Plan.schema_feasible ~arch:Arch.a100
                 ~precision:plan.Cogent.Plan.precision
                 ~mapping:plan.Cogent.Plan.mapping Schema.Pipelined)
          then true
          else
            let piped = Cogent.Plan.with_schema Schema.Pipelined plan in
            c_host_output cc plan "classic"
            = c_host_output cc piped "pipelined")

let test_adversarial_mappings_compile () =
  require_gxx ();
  (* degenerate-but-valid configurations stress the emitter's decompose and
     guard paths *)
  let problem =
    Tc_expr.Problem.of_string_exn "abcd-aebf-dfce"
      ~sizes:[ ('a', 5); ('b', 3); ('c', 7); ('d', 2); ('e', 3); ('f', 2) ]
  in
  let b i t = { Cogent.Mapping.index = i; tile = t } in
  let mappings =
    [
      (* everything on the grid but the FVI *)
      {
        Cogent.Mapping.tbx = [ b 'a' 5 ];
        regx = [];
        tby = [];
        regy = [];
        tbk = [ b 'e' 1; b 'f' 1 ];
        grid = [ 'b'; 'c'; 'd' ];
      };
      (* multi-index everything *)
      {
        Cogent.Mapping.tbx = [ b 'a' 5; b 'b' 3 ];
        regx = [];
        tby = [ b 'd' 2; b 'c' 2 ];
        regy = [];
        tbk = [ b 'e' 3; b 'f' 2 ];
        grid = [];
      };
    ]
  in
  List.iteri
    (fun k m ->
      let plan =
        Cogent.Plan.make ~problem ~mapping:m ~arch:Arch.v100
          ~precision:Precision.FP64
      in
      check_kernel ~shim:cuda_shim plan (Printf.sprintf "adversarial %d" k))
    mappings

let () =
  Alcotest.run "compile"
    [
      ( "syntax (g++ shim)",
        [
          Alcotest.test_case "48 TCCG kernels, FP64" `Slow
            (test_suite_kernels_compile Precision.FP64);
          Alcotest.test_case "48 TCCG kernels, FP32" `Slow
            (test_suite_kernels_compile Precision.FP32);
          Alcotest.test_case "48 TCCG kernels, OpenCL" `Slow
            test_suite_kernels_compile_opencl;
          Alcotest.test_case "multi-version kernels" `Slow
            test_variants_unit_compiles;
          Alcotest.test_case "adversarial mappings" `Slow
            test_adversarial_mappings_compile;
          Alcotest.test_case "48 TCCG kernels, pipelined" `Slow
            test_suite_kernels_compile_pipelined;
          Alcotest.test_case "fp16 MMA kernel" `Slow test_mma_kernel_compiles;
        ] );
      ( "execute (gcc, C-host dialect)",
        [
          Alcotest.test_case "48 TCCG kernels match Contract_ref" `Slow
            test_suite_kernels_execute;
          Alcotest.test_case "48 TCCG pipelined kernels match Contract_ref"
            `Slow test_suite_kernels_execute_pipelined;
          Gen.to_alcotest prop_pipelined_matches_classic;
        ] );
    ]
