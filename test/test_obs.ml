(* Tests for Tc_obs (tracing, metrics, JSON, exporters) and the explain
   layer built on top of it.  Everything uses injected virtual clocks or
   isolated registries, so results are fully deterministic. *)

open Tc_obs

let check = Alcotest.check
let fail = Alcotest.fail

(* A deterministic clock: every read advances by 1 ms. *)
let ticker () =
  let now = ref 0.0 in
  fun () ->
    let v = !now in
    now := v +. 0.001;
    v

(* ---- Trace: span nesting and ordering ---- *)

let test_span_nesting () =
  let t = Trace.make ~clock:(ticker ()) () in
  let r =
    Trace.with_span ~t "outer" (fun () ->
        Trace.with_span ~t "inner1" (fun () -> ());
        Trace.with_span ~t "inner2" (fun () -> ());
        42)
  in
  check Alcotest.int "result passes through" 42 r;
  match Trace.events t with
  | [
   Trace.Span { name = "outer"; depth = 0; _ };
   Trace.Span { name = "inner1"; depth = 1; _ };
   Trace.Span { name = "inner2"; depth = 1; _ };
  ] ->
      ()
  | evs ->
      fail
        (Printf.sprintf "unexpected events (%d): %s" (List.length evs)
           (String.concat ", "
              (List.map
                 (function
                   | Trace.Span { name; depth; _ } ->
                       Printf.sprintf "span %s@%d" name depth
                   | Trace.Instant { name; _ } -> "instant " ^ name
                   | Trace.Counter { name; _ } -> "counter " ^ name)
                 evs)))

let test_span_durations () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_span ~t "a" (fun () -> Trace.with_span ~t "b" (fun () -> ()));
  match Trace.events t with
  | [
   Trace.Span { name = na; start_us = sa; dur_us = da; _ };
   Trace.Span { name = nb; start_us = sb; dur_us = db; _ };
  ] ->
      check Alcotest.string "names" "a,b" (na ^ "," ^ nb);
      check Alcotest.bool "child starts after parent" true (sb >= sa);
      check Alcotest.bool "parent spans child" true (da >= db)
  | _ -> fail "expected two spans"

let test_span_exception_unwind () =
  let t = Trace.make ~clock:(ticker ()) () in
  (try
     Trace.with_span ~t "boom" (fun () -> raise Exit)
   with Exit -> ());
  (match Trace.events t with
  | [ Trace.Span { name = "boom"; depth = 0; _ } ] -> ()
  | _ -> fail "span not closed on exception");
  (* The stack unwound: a later span is again at depth 0. *)
  Trace.with_span ~t "after" (fun () -> ());
  match Trace.events t with
  | [ _; Trace.Span { name = "after"; depth = 0; _ } ] -> ()
  | _ -> fail "stack not unwound after exception"

let test_pay_for_use () =
  (* No context installed and none passed: with_span is exactly [f ()]. *)
  check Alcotest.bool "no ambient context" true (Trace.installed () = None);
  check Alcotest.bool "disabled" false (Trace.enabled ());
  let calls = ref 0 in
  let r =
    Trace.with_span "ignored" (fun () ->
        incr calls;
        "value")
  in
  check Alcotest.string "passthrough result" "value" r;
  check Alcotest.int "thunk ran once" 1 !calls;
  Trace.instant "ignored";
  Trace.counter "ignored" 1.0;
  Trace.add_args [ ("k", Trace.Int 1) ]

let test_with_installed_restores () =
  let t1 = Trace.make ~clock:(ticker ()) () in
  let t2 = Trace.make ~clock:(ticker ()) () in
  (* physical equality: contexts contain closures *)
  let is_installed t =
    match Trace.installed () with Some x -> x == t | None -> false
  in
  Trace.with_installed t1 (fun () ->
      check Alcotest.bool "t1 installed" true (is_installed t1);
      Trace.with_installed t2 (fun () ->
          Trace.with_span "in-t2" (fun () -> ()));
      check Alcotest.bool "t1 restored" true (is_installed t1));
  check Alcotest.bool "nothing installed after" true (Trace.installed () = None);
  check Alcotest.int "t2 got the span" 1 (List.length (Trace.events t2));
  check Alcotest.int "t1 got nothing" 0 (List.length (Trace.events t1))

(* ---- Metrics ---- *)

let test_metrics_counters () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "x.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check (Alcotest.option (Alcotest.float 0.0)) "counter value" (Some 5.0)
    (Metrics.value reg "x.count");
  (* Registration is idempotent: same instrument. *)
  Metrics.incr (Metrics.counter ~registry:reg "x.count");
  check (Alcotest.option (Alcotest.float 0.0)) "shared instrument" (Some 6.0)
    (Metrics.value reg "x.count");
  (* Kind mismatch is an error. *)
  (match Metrics.gauge ~registry:reg "x.count" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "kind mismatch accepted")

let test_metrics_snapshot_deterministic () =
  let reg = Metrics.create () in
  Metrics.set (Metrics.gauge ~registry:reg "b.gauge") 2.5;
  Metrics.incr (Metrics.counter ~registry:reg "a.count");
  Metrics.observe (Metrics.histogram ~registry:reg "c.hist") 0.5;
  let names =
    List.map
      (function
        | Metrics.Counter_v { name; _ }
        | Metrics.Gauge_v { name; _ }
        | Metrics.Histogram_v { name; _ } ->
            name)
      (Metrics.snapshot reg)
  in
  check (Alcotest.list Alcotest.string) "sorted by name"
    [ "a.count"; "b.gauge"; "c.hist" ]
    names;
  Metrics.reset reg;
  check (Alcotest.option (Alcotest.float 0.0)) "reset zeroes" (Some 0.0)
    (Metrics.value reg "a.count");
  check Alcotest.int "registrations survive reset" 3
    (List.length (Metrics.snapshot reg))

(* Quantile estimation: known bucket counts give known interpolated
   values (Prometheus histogram_quantile semantics). *)
let test_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[ 1.0; 2.0; 4.0 ] "lat" in
  List.iter (Metrics.observe h)
    [ 0.5; 0.5; 1.5; 1.5; 1.5; 1.5; 3.0; 3.0; 3.0; 3.0 ];
  (* cumulative buckets: le=1 -> 2, le=2 -> 6, le=4 -> 10, +Inf -> 10 *)
  let item = List.hd (Metrics.snapshot reg) in
  let q p = Option.get (Metrics.quantile item p) in
  check (Alcotest.float 1e-9) "p50 interpolates inside (1,2]" 1.75 (q 0.5);
  check (Alcotest.float 1e-9) "p90 interpolates inside (2,4]" 3.5 (q 0.9);
  check (Alcotest.float 1e-9) "p0 is the floor" 0.0 (q 0.0);
  check (Alcotest.float 1e-9) "p100 is the top finite bound" 4.0 (q 1.0);
  check Alcotest.int "summary has the standard points" 3
    (List.length (Metrics.quantile_summary item));
  (* an observation beyond every finite bucket clamps to the highest
     finite bound *)
  Metrics.observe h 100.0;
  let item = List.hd (Metrics.snapshot reg) in
  check (Alcotest.float 1e-9) "overflow bucket clamps" 4.0
    (Option.get (Metrics.quantile item 0.99));
  check Alcotest.bool "non-histograms have no quantile" true
    (Metrics.quantile (Metrics.Counter_v { name = "c"; value = 1.0 }) 0.5
    = None);
  check Alcotest.bool "empty histograms have no quantile" true
    (Metrics.quantile
       (Metrics.Histogram_v
          { name = "h"; count = 0; sum = 0.0; buckets = [ (infinity, 0) ] })
       0.5
    = None)

(* Degenerate bucket populations the audit aggregation leans on: a single
   observation, and every observation past the last finite bound. *)
let test_quantile_edge_cases () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[ 1.0; 2.0; 4.0 ] "one" in
  Metrics.observe h 1.5;
  let item = List.hd (Metrics.snapshot reg) in
  let q p = Option.get (Metrics.quantile item p) in
  check (Alcotest.float 1e-9) "single observation: p50 interpolates" 1.5
    (q 0.5);
  check (Alcotest.float 1e-9) "single observation: p0 is the floor" 0.0
    (q 0.0);
  check (Alcotest.float 1e-9) "single observation: p100 is its bucket bound"
    2.0 (q 1.0);
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[ 1.0; 2.0 ] "over" in
  List.iter (Metrics.observe h) [ 5.0; 6.0; 7.0 ];
  let item = List.hd (Metrics.snapshot reg) in
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "all mass in overflow: p%g clamps" (p *. 100.0))
        2.0
        (Option.get (Metrics.quantile item p)))
    [ 0.5; 0.9; 0.99; 1.0 ]

(* The audit-instrument pipeline shape: model output computed on the
   pool (order-preserving), observed sequentially in request order.  The
   Prometheus exposition — bucket counts AND float sums — must then be
   byte-identical at any job count. *)
let audit_exposition_jobs_invariant =
  QCheck.Test.make ~count:30
    ~name:"audit metric exposition is jobs-invariant"
    QCheck.(small_list (float_bound_inclusive 2.0))
    (fun xs ->
      let expose jobs =
        let p = Tc_par.Pool.create ~jobs () in
        let errs =
          Fun.protect
            ~finally:(fun () -> Tc_par.Pool.shutdown p)
            (fun () ->
              Tc_par.Pool.map
                (fun x -> Float.abs (1.0 -. Float.exp (-.x)))
                xs)
        in
        let reg = Metrics.create () in
        let h =
          Metrics.histogram ~registry:reg
            ~buckets:[ 0.001; 0.01; 0.1; 0.5; 1.0 ]
            "cogent.audit.tx_rel_err"
        in
        let c = Metrics.counter ~registry:reg "cogent.audit.samples" in
        List.iter
          (fun e ->
            Metrics.incr c;
            Metrics.observe h e)
          errs;
        Metrics.to_prometheus (Metrics.snapshot reg)
      in
      String.equal (expose 1) (expose 4))

(* Prometheus exposition: exact bytes, including name sanitization and
   the implicit +Inf bucket. *)
let test_prometheus_exposition () =
  let reg = Metrics.create () in
  Metrics.incr ~by:5 (Metrics.counter ~registry:reg "serve.requests");
  Metrics.set (Metrics.gauge ~registry:reg "serve.hit_ratio") 0.25;
  let h = Metrics.histogram ~registry:reg ~buckets:[ 1.0; 2.0 ] "1lat-ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  check Alcotest.string "text exposition"
    ("# TYPE _1lat_ms histogram\n"
   ^ "_1lat_ms_bucket{le=\"1\"} 1\n"
   ^ "_1lat_ms_bucket{le=\"2\"} 2\n"
   ^ "_1lat_ms_bucket{le=\"+Inf\"} 2\n"
   ^ "_1lat_ms_sum 2\n" ^ "_1lat_ms_count 2\n"
   ^ "# TYPE serve_hit_ratio gauge\n"
   ^ "serve_hit_ratio 0.25\n"
   ^ "# TYPE serve_requests counter\n"
   ^ "serve_requests 5\n")
    (Metrics.to_prometheus (Metrics.snapshot reg))

(* Counter determinism across repeated pipeline runs: the same generated
   problem pruned twice yields byte-identical metric deltas. *)
let metrics_deterministic_on_generated =
  QCheck.Test.make ~count:30 ~name:"prune metrics deterministic"
    Gen.case_arbitrary (fun c ->
      let problem = c.Gen.problem in
      let open Tc_gpu in
      let run () =
        Metrics.reset Metrics.global;
        let configs = Cogent.Enumerate.enumerate problem in
        let _kept, _stats =
          Cogent.Prune.filter Arch.v100 Precision.FP64 problem configs
        in
        Json.to_string (Metrics.to_json (Metrics.snapshot Metrics.global))
      in
      let a = run () in
      let b = run () in
      a = b)

(* ---- Flight recorder ---- *)

let test_flightrec_ring () =
  let r = Flightrec.create ~capacity:3 () in
  check Alcotest.int "capacity" 3 (Flightrec.capacity r);
  for i = 0 to 4 do
    Flightrec.record ~recorder:r (Printf.sprintf "req-%03d" i)
  done;
  check Alcotest.int "recorded counts everything" 5 (Flightrec.recorded r);
  let es = Flightrec.entries r in
  check (Alcotest.list Alcotest.int) "retained suffix, oldest first" [ 2; 3; 4 ]
    (List.map (fun e -> e.Flightrec.seq) es);
  check (Alcotest.list Alcotest.string) "ids survive eviction"
    [ "req-002"; "req-003"; "req-004" ]
    (List.map (fun e -> e.Flightrec.request) es);
  Flightrec.clear r;
  check Alcotest.int "clear empties the ring" 0
    (List.length (Flightrec.entries r))

(* Resizing keeps the newest retained entries (in order) and the running
   sequence numbers; shrink drops the oldest first. *)
let test_flightrec_set_capacity () =
  let r = Flightrec.create ~capacity:4 () in
  for i = 0 to 5 do
    Flightrec.record ~recorder:r (Printf.sprintf "req-%03d" i)
  done;
  Flightrec.set_capacity ~recorder:r 2;
  check Alcotest.int "shrunk capacity" 2 (Flightrec.capacity r);
  check (Alcotest.list Alcotest.int) "shrink keeps the newest" [ 4; 5 ]
    (List.map (fun e -> e.Flightrec.seq) (Flightrec.entries r));
  Flightrec.set_capacity ~recorder:r 6;
  check Alcotest.int "regrown capacity" 6 (Flightrec.capacity r);
  check (Alcotest.list Alcotest.int) "grow retains entries" [ 4; 5 ]
    (List.map (fun e -> e.Flightrec.seq) (Flightrec.entries r));
  Flightrec.record ~recorder:r "req-006";
  check (Alcotest.list Alcotest.int) "sequence numbers continue" [ 4; 5; 6 ]
    (List.map (fun e -> e.Flightrec.seq) (Flightrec.entries r));
  check Alcotest.int "recorded still counts everything" 7
    (Flightrec.recorded r);
  (* same-size set is a no-op, not a clear *)
  Flightrec.set_capacity ~recorder:r 6;
  check Alcotest.int "same-size set keeps entries" 3
    (List.length (Flightrec.entries r));
  (* values below 1 clamp instead of raising *)
  Flightrec.set_capacity ~recorder:r 0;
  check Alcotest.int "clamped to 1" 1 (Flightrec.capacity r);
  check (Alcotest.list Alcotest.int) "newest entry survives the clamp" [ 6 ]
    (List.map (fun e -> e.Flightrec.seq) (Flightrec.entries r))

let test_flightrec_dump () =
  let r = Flightrec.create ~capacity:8 () in
  Flightrec.record ~recorder:r ~key:"k1" ~expr:"ab-ac-cb" ~strategy:"cogent"
    ~timings:[ ("predicted_s", 0.5); ("wall_s", 0.25) ]
    "req-000";
  Flightrec.record ~recorder:r ~error:"generation failed" "req-001";
  let path = Filename.temp_file "cogent_flight" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Flightrec.dump ~path r;
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines =
    String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per entry" 2 (List.length lines);
  match List.map Json.parse lines with
  | [ Ok a; Ok b ] ->
      check Alcotest.bool "dispatched entry has a strategy, no error" true
        (Json.member "strategy" a = Some (Json.String "cogent")
        && Json.member "error" a = None
        && Json.member "timings" a <> None);
      check Alcotest.bool "failed entry has an error, no strategy" true
        (Json.member "error" b = Some (Json.String "generation failed")
        && Json.member "strategy" b = None)
  | _ -> fail "flight dump lines do not parse"

(* ---- Request scopes and tracks ---- *)

let test_request_scope () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_installed t (fun () ->
      check
        (Alcotest.option Alcotest.string)
        "no request outside a scope" None
        (Trace.current_request ());
      Trace.with_request ~id:"req-007"
        ~attrs:[ ("expr", Trace.String "ab-ac-cb") ]
        "serve.request"
        (fun () ->
          check
            (Alcotest.option Alcotest.string)
            "current request id" (Some "req-007") (Trace.current_request ());
          Trace.with_span "inner" (fun () -> ());
          Trace.instant "ping");
      check
        (Alcotest.option Alcotest.string)
        "scope restored" None (Trace.current_request ()));
  let evs = Trace.events t in
  check Alcotest.int "three events" 3 (List.length evs);
  check Alcotest.bool "every event is request-stamped" true
    (List.for_all
       (fun ev ->
         List.assoc_opt "request" (Trace.event_args ev)
         = Some (Trace.String "req-007"))
       evs)

let test_worker_tracks () =
  (* Tracks are assigned in first-record order, so the main domain gets
     track 0 and the (later-recording) worker gets track 1 — regardless
     of Domain.self numbering. *)
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_installed t (fun () ->
      Trace.with_span "main-span" (fun () -> ());
      let amb = Trace.capture () in
      Domain.join
        (Domain.spawn (fun () ->
             Trace.with_ambient amb (fun () ->
                 Trace.with_span "worker-span" (fun () -> ())))));
  match Trace.events t with
  | [
   Trace.Span { name = "main-span"; track = 0; _ };
   Trace.Span { name = "worker-span"; track = 1; _ };
  ] ->
      ()
  | _ -> fail "expected spans on tracks 0 and 1"

(* ---- Exporters ---- *)

let sample_trace () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_span ~t ~cat:"test" ~args:[ ("n", Trace.Int 3) ] "root"
    (fun () ->
      Trace.instant ~t ~args:[ ("why", Trace.String "because") ] "ping";
      Trace.counter ~t "load" 0.75;
      Trace.with_span ~t "child" (fun () -> ()));
  t

let test_jsonl_well_formed () =
  let lines =
    String.split_on_char '\n' (Export.to_jsonl (Trace.events (sample_trace ())))
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok j ->
          check Alcotest.bool "has a type field" true
            (Json.member "type" j <> None)
      | Error e -> fail (Printf.sprintf "bad JSONL line %S: %s" line e))
    lines

let test_chrome_schema () =
  let s = Export.to_chrome (Trace.events (sample_trace ())) in
  match Json.parse s with
  | Error e -> fail ("chrome trace does not parse: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          (* 4 sample events + 1 thread_name metadata record (one track). *)
          check Alcotest.int "all events exported" 5 (List.length evs);
          let phases =
            List.map
              (fun ev ->
                (match Json.member "pid" ev with
                | Some (Json.Int _) -> ()
                | _ -> fail "event missing pid");
                (match Json.member "name" ev with
                | Some (Json.String _) -> ()
                | _ ->
                    if Json.member "ph" ev <> Some (Json.String "C") then
                      fail "event missing name");
                match Json.member "ph" ev with
                | Some (Json.String ph) ->
                    if ph = "X" then (
                      (match Json.member "ts" ev with
                      | Some v when Json.to_float v <> None -> ()
                      | _ -> fail "X event missing ts");
                      match Json.member "dur" ev with
                      | Some v when Json.to_float v <> None -> ()
                      | _ -> fail "X event missing dur");
                    ph
                | _ -> fail "event missing ph")
              evs
          in
          check Alcotest.bool "has complete spans" true (List.mem "X" phases);
          check Alcotest.bool "has instant" true (List.mem "i" phases);
          check Alcotest.bool "has counter" true (List.mem "C" phases)
      | _ -> fail "no traceEvents array")

let test_text_export () =
  let s = Export.to_text (Trace.events (sample_trace ())) in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "text mentions %S" needle) true
        (let ln = String.length needle and ls = String.length s in
         let rec go i =
           i + ln <= ls && (String.sub s i ln = needle || go (i + 1))
         in
         go 0))
    [ "root"; "child"; "ping"; "load" ]

(* One request fanned across two domains: the Chrome export must name
   both thread rows and connect the request's spans with flow events. *)
let test_chrome_flows_and_threads () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_installed t (fun () ->
      Trace.with_request ~id:"req-001" "serve.request" (fun () ->
          let amb = Trace.capture () in
          Domain.join
            (Domain.spawn (fun () ->
                 Trace.with_ambient amb (fun () ->
                     Trace.with_span "worker.item" (fun () -> ()))))));
  match Json.parse (Export.to_chrome (Trace.events t)) with
  | Error e -> fail ("chrome export does not parse: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          let ph p ev = Json.member "ph" ev = Some (Json.String p) in
          check Alcotest.int "one thread_name record per track" 2
            (List.length (List.filter (ph "M") evs));
          let tids =
            List.filter (ph "X") evs
            |> List.filter_map (Json.member "tid")
            |> List.sort_uniq compare
          in
          check Alcotest.int "spans sit on two distinct threads" 2
            (List.length tids);
          check Alcotest.int "one flow start" 1
            (List.length (List.filter (ph "s") evs));
          check Alcotest.int "one flow finish" 1
            (List.length (List.filter (ph "f") evs))
      | _ -> fail "no traceEvents array")

(* ---- Json parser round-trip ---- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> check Alcotest.bool "roundtrip equal" true (j = j')
  | Error e -> fail ("roundtrip parse failed: " ^ e)

(* ---- Driver ?trace and explain golden ---- *)

let eq1 =
  Tc_expr.Problem.of_string_exn "abcd-aebf-dfce"
    ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]

let test_driver_trace () =
  let t = Trace.make ~clock:(ticker ()) () in
  (match Cogent.Driver.generate ~trace:t eq1 with
  | Ok _ -> ()
  | Error e -> fail (Cogent.Driver.error_to_string e));
  let names =
    List.filter_map
      (function Trace.Span { name; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  List.iter
    (fun n ->
      check Alcotest.bool (Printf.sprintf "trace has span %S" n) true
        (List.mem n names))
    [ "driver.generate"; "driver.pipeline" ];
  (* The whole trace exports as valid Chrome JSON. *)
  match Json.parse (Export.to_chrome (Trace.events t)) with
  | Ok _ -> ()
  | Error e -> fail ("driver trace not valid chrome JSON: " ^ e)

let test_driver_trace_no_leak () =
  (* ?trace must not leave an ambient context installed. *)
  let t = Trace.make ~clock:(ticker ()) () in
  ignore (Cogent.Driver.generate ~trace:t eq1);
  check Alcotest.bool "no ambient context after generate" true
    (Trace.installed () = None)

let golden_path file =
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat "golden" file)
  in
  if Sys.file_exists beside_exe then beside_exe
  else if Sys.file_exists (Filename.concat "golden" file) then
    Filename.concat "golden" file
  else Filename.concat "test/golden" file

let read_golden file =
  let ic = open_in (golden_path file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_explain_golden () =
  match Tc_explain.Explain.analyze Cogent.Ctx.default eq1 with
  | Error e -> fail (Cogent.Driver.error_to_string e)
  | Ok report ->
      check Alcotest.string "golden explain report"
        (read_golden "explain_eq1.txt")
        (Tc_explain.Explain.render report)

let test_explain_json () =
  match Tc_explain.Explain.analyze Cogent.Ctx.default ~top:1 eq1 with
  | Error e -> fail (Cogent.Driver.error_to_string e)
  | Ok report -> (
      let j = Tc_explain.Explain.to_json report in
      (* Serializes and reparses to the same tree. *)
      (match Json.parse (Json.to_string j) with
      | Ok j' -> check Alcotest.bool "json roundtrip" true (j = j')
      | Error e -> fail ("explain json does not parse: " ^ e));
      match Json.member "candidates" j with
      | Some (Json.List [ _ ]) -> ()
      | _ -> fail "expected exactly one candidate with ~top:1")

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span durations" `Quick test_span_durations;
          Alcotest.test_case "exception unwind" `Quick
            test_span_exception_unwind;
          Alcotest.test_case "pay for use" `Quick test_pay_for_use;
          Alcotest.test_case "with_installed restores" `Quick
            test_with_installed_restores;
          Alcotest.test_case "request scope stamps events" `Quick
            test_request_scope;
          Alcotest.test_case "worker domains get their own tracks" `Quick
            test_worker_tracks;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_metrics_snapshot_deterministic;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile edge cases" `Quick
            test_quantile_edge_cases;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
          Gen.to_alcotest metrics_deterministic_on_generated;
          Gen.to_alcotest audit_exposition_jobs_invariant;
        ] );
      ( "flightrec",
        [
          Alcotest.test_case "ring retains the newest entries" `Quick
            test_flightrec_ring;
          Alcotest.test_case "set_capacity preserves the newest entries"
            `Quick test_flightrec_set_capacity;
          Alcotest.test_case "dump is well-formed JSONL" `Quick
            test_flightrec_dump;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome schema" `Quick test_chrome_schema;
          Alcotest.test_case "chrome flows and thread names" `Quick
            test_chrome_flows_and_threads;
          Alcotest.test_case "text export" `Quick test_text_export;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "explain",
        [
          Alcotest.test_case "driver ?trace" `Quick test_driver_trace;
          Alcotest.test_case "no context leak" `Quick test_driver_trace_no_leak;
          Alcotest.test_case "golden report" `Quick test_explain_golden;
          Alcotest.test_case "json report" `Quick test_explain_json;
        ] );
    ]
