(* Tests for Tc_obs (tracing, metrics, JSON, exporters) and the explain
   layer built on top of it.  Everything uses injected virtual clocks or
   isolated registries, so results are fully deterministic. *)

open Tc_obs

let check = Alcotest.check
let fail = Alcotest.fail

(* A deterministic clock: every read advances by 1 ms. *)
let ticker () =
  let now = ref 0.0 in
  fun () ->
    let v = !now in
    now := v +. 0.001;
    v

(* ---- Trace: span nesting and ordering ---- *)

let test_span_nesting () =
  let t = Trace.make ~clock:(ticker ()) () in
  let r =
    Trace.with_span ~t "outer" (fun () ->
        Trace.with_span ~t "inner1" (fun () -> ());
        Trace.with_span ~t "inner2" (fun () -> ());
        42)
  in
  check Alcotest.int "result passes through" 42 r;
  match Trace.events t with
  | [
   Trace.Span { name = "outer"; depth = 0; _ };
   Trace.Span { name = "inner1"; depth = 1; _ };
   Trace.Span { name = "inner2"; depth = 1; _ };
  ] ->
      ()
  | evs ->
      fail
        (Printf.sprintf "unexpected events (%d): %s" (List.length evs)
           (String.concat ", "
              (List.map
                 (function
                   | Trace.Span { name; depth; _ } ->
                       Printf.sprintf "span %s@%d" name depth
                   | Trace.Instant { name; _ } -> "instant " ^ name
                   | Trace.Counter { name; _ } -> "counter " ^ name)
                 evs)))

let test_span_durations () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_span ~t "a" (fun () -> Trace.with_span ~t "b" (fun () -> ()));
  match Trace.events t with
  | [
   Trace.Span { name = na; start_us = sa; dur_us = da; _ };
   Trace.Span { name = nb; start_us = sb; dur_us = db; _ };
  ] ->
      check Alcotest.string "names" "a,b" (na ^ "," ^ nb);
      check Alcotest.bool "child starts after parent" true (sb >= sa);
      check Alcotest.bool "parent spans child" true (da >= db)
  | _ -> fail "expected two spans"

let test_span_exception_unwind () =
  let t = Trace.make ~clock:(ticker ()) () in
  (try
     Trace.with_span ~t "boom" (fun () -> raise Exit)
   with Exit -> ());
  (match Trace.events t with
  | [ Trace.Span { name = "boom"; depth = 0; _ } ] -> ()
  | _ -> fail "span not closed on exception");
  (* The stack unwound: a later span is again at depth 0. *)
  Trace.with_span ~t "after" (fun () -> ());
  match Trace.events t with
  | [ _; Trace.Span { name = "after"; depth = 0; _ } ] -> ()
  | _ -> fail "stack not unwound after exception"

let test_pay_for_use () =
  (* No context installed and none passed: with_span is exactly [f ()]. *)
  check Alcotest.bool "no ambient context" true (Trace.installed () = None);
  check Alcotest.bool "disabled" false (Trace.enabled ());
  let calls = ref 0 in
  let r =
    Trace.with_span "ignored" (fun () ->
        incr calls;
        "value")
  in
  check Alcotest.string "passthrough result" "value" r;
  check Alcotest.int "thunk ran once" 1 !calls;
  Trace.instant "ignored";
  Trace.counter "ignored" 1.0;
  Trace.add_args [ ("k", Trace.Int 1) ]

let test_with_installed_restores () =
  let t1 = Trace.make ~clock:(ticker ()) () in
  let t2 = Trace.make ~clock:(ticker ()) () in
  (* physical equality: contexts contain closures *)
  let is_installed t =
    match Trace.installed () with Some x -> x == t | None -> false
  in
  Trace.with_installed t1 (fun () ->
      check Alcotest.bool "t1 installed" true (is_installed t1);
      Trace.with_installed t2 (fun () ->
          Trace.with_span "in-t2" (fun () -> ()));
      check Alcotest.bool "t1 restored" true (is_installed t1));
  check Alcotest.bool "nothing installed after" true (Trace.installed () = None);
  check Alcotest.int "t2 got the span" 1 (List.length (Trace.events t2));
  check Alcotest.int "t1 got nothing" 0 (List.length (Trace.events t1))

(* ---- Metrics ---- *)

let test_metrics_counters () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "x.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check (Alcotest.option (Alcotest.float 0.0)) "counter value" (Some 5.0)
    (Metrics.value reg "x.count");
  (* Registration is idempotent: same instrument. *)
  Metrics.incr (Metrics.counter ~registry:reg "x.count");
  check (Alcotest.option (Alcotest.float 0.0)) "shared instrument" (Some 6.0)
    (Metrics.value reg "x.count");
  (* Kind mismatch is an error. *)
  (match Metrics.gauge ~registry:reg "x.count" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "kind mismatch accepted")

let test_metrics_snapshot_deterministic () =
  let reg = Metrics.create () in
  Metrics.set (Metrics.gauge ~registry:reg "b.gauge") 2.5;
  Metrics.incr (Metrics.counter ~registry:reg "a.count");
  Metrics.observe (Metrics.histogram ~registry:reg "c.hist") 0.5;
  let names =
    List.map
      (function
        | Metrics.Counter_v { name; _ }
        | Metrics.Gauge_v { name; _ }
        | Metrics.Histogram_v { name; _ } ->
            name)
      (Metrics.snapshot reg)
  in
  check (Alcotest.list Alcotest.string) "sorted by name"
    [ "a.count"; "b.gauge"; "c.hist" ]
    names;
  Metrics.reset reg;
  check (Alcotest.option (Alcotest.float 0.0)) "reset zeroes" (Some 0.0)
    (Metrics.value reg "a.count");
  check Alcotest.int "registrations survive reset" 3
    (List.length (Metrics.snapshot reg))

(* Counter determinism across repeated pipeline runs: the same generated
   problem pruned twice yields byte-identical metric deltas. *)
let metrics_deterministic_on_generated =
  QCheck.Test.make ~count:30 ~name:"prune metrics deterministic"
    Gen.case_arbitrary (fun c ->
      let problem = c.Gen.problem in
      let open Tc_gpu in
      let run () =
        Metrics.reset Metrics.global;
        let configs = Cogent.Enumerate.enumerate problem in
        let _kept, _stats =
          Cogent.Prune.filter Arch.v100 Precision.FP64 problem configs
        in
        Json.to_string (Metrics.to_json (Metrics.snapshot Metrics.global))
      in
      let a = run () in
      let b = run () in
      a = b)

(* ---- Exporters ---- *)

let sample_trace () =
  let t = Trace.make ~clock:(ticker ()) () in
  Trace.with_span ~t ~cat:"test" ~args:[ ("n", Trace.Int 3) ] "root"
    (fun () ->
      Trace.instant ~t ~args:[ ("why", Trace.String "because") ] "ping";
      Trace.counter ~t "load" 0.75;
      Trace.with_span ~t "child" (fun () -> ()));
  t

let test_jsonl_well_formed () =
  let lines =
    String.split_on_char '\n' (Export.to_jsonl (Trace.events (sample_trace ())))
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok j ->
          check Alcotest.bool "has a type field" true
            (Json.member "type" j <> None)
      | Error e -> fail (Printf.sprintf "bad JSONL line %S: %s" line e))
    lines

let test_chrome_schema () =
  let s = Export.to_chrome (Trace.events (sample_trace ())) in
  match Json.parse s with
  | Error e -> fail ("chrome trace does not parse: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          check Alcotest.int "all events exported" 4 (List.length evs);
          let phases =
            List.map
              (fun ev ->
                (match Json.member "pid" ev with
                | Some (Json.Int _) -> ()
                | _ -> fail "event missing pid");
                (match Json.member "name" ev with
                | Some (Json.String _) -> ()
                | _ ->
                    if Json.member "ph" ev <> Some (Json.String "C") then
                      fail "event missing name");
                match Json.member "ph" ev with
                | Some (Json.String ph) ->
                    if ph = "X" then (
                      (match Json.member "ts" ev with
                      | Some v when Json.to_float v <> None -> ()
                      | _ -> fail "X event missing ts");
                      match Json.member "dur" ev with
                      | Some v when Json.to_float v <> None -> ()
                      | _ -> fail "X event missing dur");
                    ph
                | _ -> fail "event missing ph")
              evs
          in
          check Alcotest.bool "has complete spans" true (List.mem "X" phases);
          check Alcotest.bool "has instant" true (List.mem "i" phases);
          check Alcotest.bool "has counter" true (List.mem "C" phases)
      | _ -> fail "no traceEvents array")

let test_text_export () =
  let s = Export.to_text (Trace.events (sample_trace ())) in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "text mentions %S" needle) true
        (let ln = String.length needle and ls = String.length s in
         let rec go i =
           i + ln <= ls && (String.sub s i ln = needle || go (i + 1))
         in
         go 0))
    [ "root"; "child"; "ping"; "load" ]

(* ---- Json parser round-trip ---- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> check Alcotest.bool "roundtrip equal" true (j = j')
  | Error e -> fail ("roundtrip parse failed: " ^ e)

(* ---- Driver ?trace and explain golden ---- *)

let eq1 =
  Tc_expr.Problem.of_string_exn "abcd-aebf-dfce"
    ~sizes:[ ('a', 48); ('b', 48); ('c', 48); ('d', 48); ('e', 32); ('f', 32) ]

let test_driver_trace () =
  let t = Trace.make ~clock:(ticker ()) () in
  (match Cogent.Driver.generate ~trace:t eq1 with
  | Ok _ -> ()
  | Error e -> fail (Cogent.Driver.error_to_string e));
  let names =
    List.filter_map
      (function Trace.Span { name; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  List.iter
    (fun n ->
      check Alcotest.bool (Printf.sprintf "trace has span %S" n) true
        (List.mem n names))
    [ "driver.generate"; "driver.enumerate"; "prune.filter"; "driver.cost_rank" ];
  (* The whole trace exports as valid Chrome JSON. *)
  match Json.parse (Export.to_chrome (Trace.events t)) with
  | Ok _ -> ()
  | Error e -> fail ("driver trace not valid chrome JSON: " ^ e)

let test_driver_trace_no_leak () =
  (* ?trace must not leave an ambient context installed. *)
  let t = Trace.make ~clock:(ticker ()) () in
  ignore (Cogent.Driver.generate ~trace:t eq1);
  check Alcotest.bool "no ambient context after generate" true
    (Trace.installed () = None)

let golden_path file =
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat "golden" file)
  in
  if Sys.file_exists beside_exe then beside_exe
  else if Sys.file_exists (Filename.concat "golden" file) then
    Filename.concat "golden" file
  else Filename.concat "test/golden" file

let read_golden file =
  let ic = open_in (golden_path file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_explain_golden () =
  match Tc_explain.Explain.analyze eq1 with
  | Error e -> fail (Cogent.Driver.error_to_string e)
  | Ok report ->
      check Alcotest.string "golden explain report"
        (read_golden "explain_eq1.txt")
        (Tc_explain.Explain.render report)

let test_explain_json () =
  match Tc_explain.Explain.analyze ~top:1 eq1 with
  | Error e -> fail (Cogent.Driver.error_to_string e)
  | Ok report -> (
      let j = Tc_explain.Explain.to_json report in
      (* Serializes and reparses to the same tree. *)
      (match Json.parse (Json.to_string j) with
      | Ok j' -> check Alcotest.bool "json roundtrip" true (j = j')
      | Error e -> fail ("explain json does not parse: " ^ e));
      match Json.member "candidates" j with
      | Some (Json.List [ _ ]) -> ()
      | _ -> fail "expected exactly one candidate with ~top:1")

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span durations" `Quick test_span_durations;
          Alcotest.test_case "exception unwind" `Quick
            test_span_exception_unwind;
          Alcotest.test_case "pay for use" `Quick test_pay_for_use;
          Alcotest.test_case "with_installed restores" `Quick
            test_with_installed_restores;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_metrics_snapshot_deterministic;
          Gen.to_alcotest metrics_deterministic_on_generated;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome schema" `Quick test_chrome_schema;
          Alcotest.test_case "text export" `Quick test_text_export;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "explain",
        [
          Alcotest.test_case "driver ?trace" `Quick test_driver_trace;
          Alcotest.test_case "no context leak" `Quick test_driver_trace_no_leak;
          Alcotest.test_case "golden report" `Quick test_explain_golden;
          Alcotest.test_case "json report" `Quick test_explain_json;
        ] );
    ]
