(* Tests for Tc_par.Pool: the determinism contract (order preservation,
   index-ordered reduction, jobs-independence of every pipeline output),
   exception transparency, re-entrancy, and trace propagation onto worker
   domains.  Property tests run under the shared fixed seed
   (Gen.to_alcotest), so failures are reproducible. *)

open Tc_par

let check = Alcotest.check
let fail = Alcotest.fail

(* A pool wide enough to actually exercise cross-domain scheduling even
   on a single-core host (domains timeshare), plus the degenerate one. *)
let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---- map/mapi: order preservation and sequential degradation ---- *)

let test_map_ordering () =
  with_pool 4 @@ fun p ->
  let xs = List.init 100 Fun.id in
  let f x = (x * 37) mod 101 in
  check (Alcotest.list Alcotest.int) "map preserves input order" (List.map f xs)
    (Pool.map ~pool:p f xs);
  check (Alcotest.list Alcotest.string) "mapi sees the right indices"
    (List.mapi (fun i x -> Printf.sprintf "%d:%c" i x) [ 'a'; 'b'; 'c' ])
    (Pool.mapi ~pool:p (fun i x -> Printf.sprintf "%d:%c" i x) [ 'a'; 'b'; 'c' ]);
  check (Alcotest.list Alcotest.int) "empty list" []
    (Pool.map ~pool:p (fun _ -> fail "called on empty input") [])

let test_jobs1_is_sequential () =
  with_pool 1 @@ fun p ->
  check Alcotest.int "clamped to 1" 1 (Pool.jobs p);
  (* the jobs=1 path must observe strictly left-to-right evaluation, like
     List.map — this would be flaky if a domain were involved *)
  let order = ref [] in
  let r =
    Pool.map ~pool:p
      (fun x ->
        order := x :: !order;
        x + 1)
      [ 1; 2; 3; 4 ]
  in
  check (Alcotest.list Alcotest.int) "results" [ 2; 3; 4; 5 ] r;
  check (Alcotest.list Alcotest.int) "left-to-right evaluation" [ 4; 3; 2; 1 ]
    !order

(* ---- exception transparency ---- *)

exception Boom of int

let test_exception_propagation () =
  with_pool 4 @@ fun p ->
  (match
     Pool.map ~pool:p
       (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
       [ 1; 2; 3; 4; 5; 6 ]
   with
  | _ -> fail "expected an exception"
  | exception Boom x ->
      check Alcotest.int "lowest-indexed failure is re-raised" 2 x);
  (* the pool survives a failing batch *)
  check (Alcotest.list Alcotest.int) "pool still works" [ 2; 4; 6 ]
    (Pool.map ~pool:p (fun x -> 2 * x) [ 1; 2; 3 ])

(* ---- re-entrancy: nested maps on the same pool must not deadlock ---- *)

let test_nested_map () =
  with_pool 2 @@ fun p ->
  let r =
    Pool.map ~pool:p
      (fun i ->
        Pool.map ~pool:p (fun j -> (10 * i) + j) [ 1; 2; 3 ]
        |> List.fold_left ( + ) 0)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  check (Alcotest.list Alcotest.int) "nested fan-out completes"
    (List.map (fun i -> (30 * i) + 6) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    r

(* ---- fold_best: index-ordered reduction, earliest tie wins ---- *)

let test_fold_best () =
  with_pool 4 @@ fun p ->
  check (Alcotest.option Alcotest.int) "argmax" (Some 9)
    (Pool.fold_best ~pool:p ~better:( > ) Fun.id [ 3; 9; 2; 7; 1 ]);
  check (Alcotest.option Alcotest.int) "empty input" None
    (Pool.fold_best ~pool:p ~better:( > ) Fun.id []);
  let r =
    Pool.fold_best ~pool:p
      ~better:(fun (_, a) (_, b) -> a > b)
      Fun.id
      [ (0, 5); (1, 9); (2, 9); (3, 9) ]
  in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "strict better keeps the earliest tie" (Some (1, 9)) r

let test_map_fold () =
  with_pool 4 @@ fun p ->
  (* a non-commutative fold exposes any reduction-order difference *)
  let xs = List.init 50 Fun.id in
  let f x = string_of_int ((x * 13) mod 17) in
  check Alcotest.string "reduces in index order"
    (String.concat "," (List.map f xs))
    (Pool.map_fold ~pool:p ~map:f ~init:""
       ~fold:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
       xs);
  check Alcotest.int "empty input yields init" 42
    (Pool.map_fold ~pool:p ~map:Fun.id ~init:42 ~fold:( + ) [])

(* ---- trace propagation: spans from worker domains land in the
   caller's installed context (Domain.DLS ambient, re-installed by the
   pool around each item) ---- *)

let test_trace_propagation () =
  with_pool 4 @@ fun p ->
  let t = Tc_obs.Trace.make () in
  let squares =
    Tc_obs.Trace.with_installed t (fun () ->
        Pool.map ~pool:p
          (fun i -> Tc_obs.Trace.with_span "par.item" (fun () -> i * i))
          [ 1; 2; 3; 4; 5 ])
  in
  check (Alcotest.list Alcotest.int) "results" [ 1; 4; 9; 16; 25 ] squares;
  let items =
    List.filter
      (function
        | Tc_obs.Trace.Span { name = "par.item"; _ } -> true | _ -> false)
      (Tc_obs.Trace.events t)
  in
  check Alcotest.int "every item's span reached the installed sink" 5
    (List.length items);
  check Alcotest.bool "nothing leaks to the ambient context after" true
    (Tc_obs.Trace.installed () = None)

(* The ambient request scope travels with the ambient context: spans
   recorded by pool items stay attributed to the submitting request. *)
let test_request_propagation () =
  with_pool 4 @@ fun p ->
  let t = Tc_obs.Trace.make () in
  Tc_obs.Trace.with_installed t (fun () ->
      Tc_obs.Trace.with_request ~id:"req-042" "serve.generate" (fun () ->
          ignore
            (Pool.map ~pool:p
               (fun i -> Tc_obs.Trace.with_span "par.item" (fun () -> i))
               [ 1; 2; 3; 4; 5 ])));
  let stamps =
    List.filter_map
      (function
        | Tc_obs.Trace.Span { name = "par.item"; args; _ } ->
            Some (List.assoc_opt "request" args)
        | _ -> None)
      (Tc_obs.Trace.events t)
  in
  check Alcotest.int "five item spans" 5 (List.length stamps);
  check Alcotest.bool "every item span is stamped with the request" true
    (List.for_all (fun s -> s = Some (Tc_obs.Trace.String "req-042")) stamps);
  check
    (Alcotest.option Alcotest.string)
    "request scope does not leak" None
    (Tc_obs.Trace.current_request ())

(* ---- properties under the shared fixed seed ---- *)

let map_matches_sequential =
  QCheck.Test.make ~count:100 ~name:"Pool.map == List.map at jobs 1 and 4"
    QCheck.(list small_int)
    (fun xs ->
      let f x = (x * x) - (3 * x) + 1 in
      let expected = List.map f xs in
      with_pool 4 (fun p4 ->
          with_pool 1 (fun p1 ->
              Pool.map ~pool:p4 f xs = expected
              && Pool.map ~pool:p1 f xs = expected)))

(* The pipeline-level determinism contract: generation (model ranking +
   measured refinement on the default pool) must select the same plan and
   produce the same ranked costs at any job count. *)
let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops

let driver_deterministic_across_jobs =
  QCheck.Test.make ~count:15
    ~name:"Driver.generate is bit-identical at jobs 1 vs 4" Gen.case_arbitrary
    (fun c ->
      let run jobs =
        Pool.set_default_jobs jobs;
        Cogent.Driver.generate_exn ~measure:simulate c.Gen.problem
      in
      let r1 = run 1 in
      let r4 = run 4 in
      Pool.set_default_jobs 1;
      Cogent.Mapping.compare r1.Cogent.Driver.plan.Cogent.Plan.mapping
        r4.Cogent.Driver.plan.Cogent.Plan.mapping
      = 0
      && List.equal
           (fun (m, cost) (m', cost') ->
             Cogent.Mapping.compare m m' = 0 && Float.equal cost cost')
           r1.Cogent.Driver.ranked r4.Cogent.Driver.ranked)

(* Histogram exposition and quantile summaries must not depend on how
   observations interleave across pool domains.  Bucket counts are
   order-independent increments; the observed values are dyadic
   rationals (multiples of 1/8, derived from the generated problem's
   extents), so even the floating-point [sum] is exact and therefore
   associative — the same guarantee the serving layer gets by observing
   its deterministic histograms sequentially. *)
let histogram_exposition_jobs_invariant =
  QCheck.Test.make ~count:25
    ~name:"histogram exposition + quantiles identical at jobs 1 vs 4"
    Gen.case_arbitrary
    (fun c ->
      let problem = c.Gen.problem in
      let info = Tc_expr.Problem.info problem in
      let obs =
        List.concat_map
          (fun i ->
            let e = Tc_expr.Problem.extent problem i in
            [ float_of_int (e land 63) *. 0.125; 0.25 ])
          (Tc_expr.Classify.all_indices info)
      in
      let run jobs =
        with_pool jobs (fun p ->
            let reg = Tc_obs.Metrics.create () in
            let h =
              Tc_obs.Metrics.histogram ~registry:reg
                ~buckets:[ 0.5; 1.0; 2.0; 4.0 ] "par.lat"
            in
            ignore
              (Pool.map ~pool:p (fun v -> Tc_obs.Metrics.observe h v) obs);
            let snap = Tc_obs.Metrics.snapshot reg in
            ( Tc_obs.Metrics.to_prometheus snap,
              List.concat_map Tc_obs.Metrics.quantile_summary snap ))
      in
      run 1 = run 4)

(* ---- plan-cache single-flight: racing domains must not duplicate a
   generation, and the latched callers must count as hits ---- *)

let test_cache_single_flight () =
  let problem =
    Tc_expr.Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]
  in
  let calls = Atomic.make 0 in
  let measure plan =
    Atomic.incr calls;
    simulate plan
  in
  let ctx = Cogent.Ctx.make ~measure () in
  (* learn how many measure calls one generation costs, sequentially *)
  let warmup = Cogent.Cache.create () in
  (match Cogent.Cache.find_or_generate_ctx warmup ctx problem with
  | Ok _ -> ()
  | Error e -> fail (Cogent.Driver.error_to_string e));
  let per_generation = Atomic.get calls in
  check Alcotest.bool "generation measures candidates" true (per_generation > 0);
  (* four domains race on the same key on a fresh cache: whatever the
     interleaving, at most one generation may actually run *)
  Atomic.set calls 0;
  let cache = Cogent.Cache.create () in
  let results =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Cogent.Cache.find_or_generate_ctx cache ctx problem))
    |> List.map Domain.join
  in
  List.iter
    (function
      | Ok _ -> () | Error e -> fail (Cogent.Driver.error_to_string e))
    results;
  check Alcotest.int "exactly one generation's worth of measure calls"
    per_generation (Atomic.get calls);
  let s = Cogent.Cache.stats cache in
  check Alcotest.int "one miss: the generation that ran" 1
    s.Cogent.Cache.misses;
  check Alcotest.int "three latched callers count as hits" 3
    s.Cogent.Cache.hits;
  check Alcotest.int "one cached entry" 1 s.Cogent.Cache.entries;
  match results with
  | Ok first :: rest ->
      List.iter
        (function
          | Ok r ->
              check Alcotest.int "every caller gets the same plan" 0
                (Cogent.Mapping.compare
                   first.Cogent.Driver.plan.Cogent.Plan.mapping
                   r.Cogent.Driver.plan.Cogent.Plan.mapping)
          | Error _ -> assert false)
        rest
  | _ -> assert false

let test_autotune_deterministic_across_jobs () =
  let problem =
    Tc_expr.Problem.of_string_exn "ab-ac-cb"
      ~sizes:[ ('a', 64); ('b', 64); ('c', 64) ]
  in
  let params =
    { Tc_autotune.Genetic.default_params with population = 12; generations = 3 }
  in
  let run jobs =
    Pool.set_default_jobs jobs;
    Tc_autotune.Genetic.tune ~params Tc_gpu.Arch.v100 Tc_gpu.Precision.FP32
      problem
  in
  let r1 = run 1 in
  let r4 = run 4 in
  Pool.set_default_jobs 1;
  check Alcotest.int "same evaluation count" r1.Tc_autotune.Genetic.evaluations
    r4.Tc_autotune.Genetic.evaluations;
  check (Alcotest.float 0.0) "same best gflops"
    r1.Tc_autotune.Genetic.best_gflops r4.Tc_autotune.Genetic.best_gflops;
  check Alcotest.int "same seed => same mapping" 0
    (Cogent.Mapping.compare r1.Tc_autotune.Genetic.best
       r4.Tc_autotune.Genetic.best);
  check Alcotest.bool "identical tuning trace" true
    (r1.Tc_autotune.Genetic.trace = r4.Tc_autotune.Genetic.trace)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_ordering;
          Alcotest.test_case "jobs=1 degrades to sequential" `Quick
            test_jobs1_is_sequential;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested maps do not deadlock" `Quick
            test_nested_map;
          Alcotest.test_case "fold_best reduces in index order" `Quick
            test_fold_best;
          Alcotest.test_case "map_fold reduces in index order" `Quick
            test_map_fold;
          Alcotest.test_case "trace spans cross domains" `Quick
            test_trace_propagation;
          Alcotest.test_case "request scope crosses domains" `Quick
            test_request_propagation;
          Gen.to_alcotest map_matches_sequential;
        ] );
      ( "determinism",
        [
          Gen.to_alcotest driver_deterministic_across_jobs;
          Gen.to_alcotest histogram_exposition_jobs_invariant;
          Alcotest.test_case "autotuner jobs 1 vs 4" `Quick
            test_autotune_deterministic_across_jobs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "single-flight generation under racing domains"
            `Quick test_cache_single_flight;
        ] );
    ]
