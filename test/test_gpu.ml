open Tc_gpu

let check = Alcotest.check

let occ req = Occupancy.calculate Arch.v100 req

let test_precision () =
  check Alcotest.int "fp64 bytes" 8 (Precision.bytes Precision.FP64);
  check Alcotest.int "fp32 bytes" 4 (Precision.bytes Precision.FP32);
  check Alcotest.int "fp64 elems/transaction" 16
    (Precision.elems_per_transaction Precision.FP64);
  check Alcotest.int "fp32 elems/transaction" 32
    (Precision.elems_per_transaction Precision.FP32);
  check Alcotest.string "cuda type" "double" (Precision.cuda_type Precision.FP64);
  check Alcotest.int "fp16 bytes" 2 (Precision.bytes Precision.FP16);
  check Alcotest.int "fp16 elems/transaction" 64
    (Precision.elems_per_transaction Precision.FP16);
  check Alcotest.bool "fp16 is tensor-core" true
    (Precision.tensor_core Precision.FP16);
  check Alcotest.bool "tf32 is tensor-core" true
    (Precision.tensor_core Precision.TF32);
  check Alcotest.bool "fp64 is not" false (Precision.tensor_core Precision.FP64)

let test_arch_lookup () =
  check Alcotest.bool "p100" true (Arch.by_name "P100" = Some Arch.p100);
  check Alcotest.bool "volta alias" true (Arch.by_name "volta" = Some Arch.v100);
  check Alcotest.bool "ampere alias" true (Arch.by_name "ampere" = Some Arch.a100);
  check Alcotest.bool "hopper alias" true (Arch.by_name "hopper" = Some Arch.h100);
  check Alcotest.bool "unknown" true (Arch.by_name "b100" = None)

let test_tensor_rates () =
  check Alcotest.bool "v100 has no cp.async" true (not Arch.v100.Arch.async_copy);
  check Alcotest.bool "a100 has cp.async" true Arch.a100.Arch.async_copy;
  check (Alcotest.float 1.0) "a100 dense fp16 MMA" 312000.0
    (Arch.tensor_gflops Arch.a100 Precision.FP16);
  check (Alcotest.float 1.0) "a100 dense tf32 MMA" 156000.0
    (Arch.tensor_gflops Arch.a100 Precision.TF32);
  check (Alcotest.float 1.0) "no MMA rate for fp64" 0.0
    (Arch.tensor_gflops Arch.a100 Precision.FP64);
  check (Alcotest.float 1.0) "p100 has no tensor cores" 0.0
    (Arch.tensor_gflops Arch.p100 Precision.FP16)

let test_arch_specs () =
  check Alcotest.int "P100 SMs" 56 Arch.p100.Arch.sms;
  check Alcotest.int "V100 SMs" 80 Arch.v100.Arch.sms;
  check Alcotest.int "A100 SMs" 108 Arch.a100.Arch.sms;
  check (Alcotest.float 1.0) "V100 peak DP" 7800.0
    (Arch.peak_gflops Arch.v100 Precision.FP64);
  check (Alcotest.float 1.0) "P100 peak SP" 10600.0
    (Arch.peak_gflops Arch.p100 Precision.FP32);
  check Alcotest.int "transaction bytes" 128 Arch.v100.Arch.transaction_bytes

let test_occupancy_full () =
  (* 256 threads, no smem, few regs: thread-limited at 2048/256 = 8 blocks *)
  let r =
    occ { Occupancy.threads_per_block = 256; smem_per_block = 0; regs_per_thread = 32 }
  in
  check Alcotest.int "8 blocks" 8 r.Occupancy.active_blocks_per_sm;
  check (Alcotest.float 1e-9) "100% occupancy" 1.0 r.Occupancy.occupancy

let test_occupancy_smem_limited () =
  (* 96 KB smem per SM on V100, 40 KB per block -> 2 blocks *)
  let r =
    occ
      { Occupancy.threads_per_block = 128; smem_per_block = 40 * 1024;
        regs_per_thread = 32 }
  in
  check Alcotest.int "2 blocks" 2 r.Occupancy.active_blocks_per_sm;
  check Alcotest.bool "smem limiter" true
    (r.Occupancy.limiter = Occupancy.Shared_memory)

let test_occupancy_reg_limited () =
  (* 255 regs * 256 threads = 65280: exactly 1 block per SM *)
  let r =
    occ { Occupancy.threads_per_block = 256; smem_per_block = 0; regs_per_thread = 255 }
  in
  check Alcotest.int "1 block" 1 r.Occupancy.active_blocks_per_sm;
  check Alcotest.bool "regs limiter" true (r.Occupancy.limiter = Occupancy.Registers)

let test_occupancy_invalid () =
  let r =
    occ { Occupancy.threads_per_block = 2048; smem_per_block = 0; regs_per_thread = 32 }
  in
  check Alcotest.int "no blocks" 0 r.Occupancy.active_blocks_per_sm;
  check Alcotest.bool "invalid" true (r.Occupancy.limiter = Occupancy.Invalid);
  check Alcotest.bool "fits is false" false
    (Occupancy.fits Arch.v100
       { Occupancy.threads_per_block = 2048; smem_per_block = 0; regs_per_thread = 32 })

let test_occupancy_partial_warp () =
  (* 20 threads still allocate one full warp *)
  let r =
    occ { Occupancy.threads_per_block = 20; smem_per_block = 0; regs_per_thread = 32 }
  in
  check Alcotest.int "warps = blocks" r.Occupancy.active_blocks_per_sm
    r.Occupancy.active_warps_per_sm

let test_occupancy_block_cap () =
  let r =
    occ { Occupancy.threads_per_block = 32; smem_per_block = 0; regs_per_thread = 16 }
  in
  (* 2048/32 = 64 would exceed the 32-block cap *)
  check Alcotest.int "capped at 32 blocks" 32 r.Occupancy.active_blocks_per_sm

let occupancy_bounded =
  QCheck.Test.make ~count:300 ~name:"occupancy in [0,1] and monotone limits"
    QCheck.(triple (int_range 1 1024) (int_range 0 49152) (int_range 0 255))
    (fun (threads, smem, regs) ->
      let r =
        occ
          { Occupancy.threads_per_block = threads; smem_per_block = smem;
            regs_per_thread = regs }
      in
      r.Occupancy.occupancy >= 0.0 && r.Occupancy.occupancy <= 1.0
      && r.Occupancy.active_blocks_per_sm >= 0
      && r.Occupancy.active_blocks_per_sm <= Arch.v100.Arch.max_blocks_per_sm)

let () =
  Alcotest.run "tc_gpu"
    [
      ( "precision",
        [ Alcotest.test_case "bytes and transactions" `Quick test_precision ] );
      ( "arch",
        [
          Alcotest.test_case "lookup" `Quick test_arch_lookup;
          Alcotest.test_case "published specs" `Quick test_arch_specs;
          Alcotest.test_case "tensor rates and async copies" `Quick
            test_tensor_rates;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "thread-limited" `Quick test_occupancy_full;
          Alcotest.test_case "smem-limited" `Quick test_occupancy_smem_limited;
          Alcotest.test_case "register-limited" `Quick test_occupancy_reg_limited;
          Alcotest.test_case "invalid request" `Quick test_occupancy_invalid;
          Alcotest.test_case "partial warp rounding" `Quick
            test_occupancy_partial_warp;
          Alcotest.test_case "block cap" `Quick test_occupancy_block_cap;
          Gen.to_alcotest occupancy_bounded;
        ] );
    ]
