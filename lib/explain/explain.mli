(** Cost-model explainability: why the generator picked what it picked.

    [analyze] re-runs the configuration search for a contraction and keeps
    the evidence the paper's argument rests on (§IV–§V): the per-rule
    pruning audit, the Algorithm-3 DRAM charge sheet of each surviving
    candidate (transactions per tensor, contiguous-run lengths, coalescing
    efficiency), the occupancy limiter, and the simulator's roofline
    breakdown — roughly what the authors read off nvprof on real hardware.

    Everything here is a pure function of the analytical models, so
    [render] output is deterministic and golden-testable. *)

open Tc_gpu
open Tc_expr
open Cogent

type candidate = {
  rank : int;  (** 1-based position in the model ranking *)
  plan : Plan.t;
  cost : Cost.explanation;  (** Algorithm-3 charge sheet *)
  occupancy : Occupancy.result;
  sim : Tc_sim.Simkernel.result;  (** simulator verdict incl. roofline *)
  pipelined : (Schema.t * Tc_sim.Simkernel.result) option;
      (** fastest feasible pipelined/MMA variant of the same mapping, for
          the overlap-vs-classic comparison ([None] on devices without
          async copies) *)
}

type t = {
  problem : Problem.t;
  arch : Arch.t;
  precision : Precision.t;
  naive_space : float;
  stats : Prune.stats;
  candidates : candidate list;  (** ascending model cost *)
}

val analyze : Ctx.t -> ?top:int -> Problem.t -> (t, Driver.error) result
(** Run the streaming configuration search under the context's device and
    precision and explain the [top] (default 3) candidates
    ({!Cogent.Ctx.default} is V100/FP64 — the historical optional-argument
    entry point is gone).  [Error] is [Driver.No_viable_mapping stats]
    when no hardware-feasible configuration exists — the stats carry the
    per-rule pruning audit so callers can print {i why} (see
    [cogent explain]). *)

val render : t -> string
(** The full human-readable report (what [cogent explain] prints). *)

val to_json : t -> Tc_obs.Json.t
(** The same content as a machine-readable tree. *)
