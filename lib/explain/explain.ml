open Tc_gpu
open Tc_expr
open Cogent

type candidate = {
  rank : int;
  plan : Plan.t;
  cost : Cost.explanation;
  occupancy : Occupancy.result;
  sim : Tc_sim.Simkernel.result;
  pipelined : (Schema.t * Tc_sim.Simkernel.result) option;
}

type t = {
  problem : Problem.t;
  arch : Arch.t;
  precision : Precision.t;
  naive_space : float;
  stats : Prune.stats;
  candidates : candidate list;
}

let analyze (ctx : Ctx.t) ?(top = 3) problem =
  let arch = ctx.Ctx.arch and precision = ctx.Ctx.precision in
  Tc_obs.Trace.with_span "explain.analyze" @@ fun () ->
  (* The streaming search retains exactly the [top] cheapest survivors —
     same stats and prefix as the materialized phases it replaced. *)
  let o = Pipeline.search ~topk:(max 1 top) arch precision problem in
  let stats = o.Pipeline.stats in
  match o.Pipeline.ranked with
  | [] -> Error (Driver.No_viable_mapping stats)
  | ranked ->
      let candidates =
        List.mapi
          (fun k (mapping, _) ->
            let plan = Plan.make ~problem ~mapping ~arch ~precision in
            (* The schema race the driver would run for this mapping: the
               fastest feasible pipelined variant, priced by the same
               simulator.  [None] on devices without async copies. *)
            let pipelined =
              List.filter Schema.pipelined
                (Plan.feasible_schemas ~arch ~precision mapping)
              |> List.fold_left
                   (fun best sc ->
                     let r = Tc_sim.Simkernel.run (Plan.with_schema sc plan) in
                     match best with
                     | Some (_, br)
                       when br.Tc_sim.Simkernel.time_s
                            <= r.Tc_sim.Simkernel.time_s ->
                         best
                     | _ -> Some (sc, r))
                   None
            in
            {
              rank = k + 1;
              plan;
              cost = Cost.explain precision problem mapping;
              occupancy = Plan.occupancy plan;
              sim = Tc_sim.Simkernel.run plan;
              pipelined;
            })
          ranked
      in
      Ok
        {
          problem;
          arch;
          precision;
          naive_space = Enumerate.naive_space_size problem;
          stats;
          candidates;
        }

let pct x = 100.0 *. x

let render t =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let s = t.stats in
  Format.fprintf fmt "COGENT explain — %a@." Problem.pp t.problem;
  Format.fprintf fmt "device %s, %a (%d elements per %d B transaction)@.@."
    t.arch.Arch.name Precision.pp t.precision
    (Precision.elems_per_transaction t.precision)
    t.arch.Arch.transaction_bytes;
  Format.fprintf fmt "search space@.";
  Format.fprintf fmt "  naive configuration space   %14.3e@." t.naive_space;
  Format.fprintf fmt "  enumerated (Algorithm 2)    %14d@." s.Prune.enumerated;
  Format.fprintf fmt "  kept after pruning          %14d  (%.1f%% pruned)@.@."
    s.Prune.kept
    (if s.Prune.enumerated = 0 then 0.0
     else
       pct
         (float_of_int (s.Prune.enumerated - s.Prune.kept)
         /. float_of_int s.Prune.enumerated));
  Format.fprintf fmt "prune audit (rule → configurations rejected)@.";
  List.iter
    (fun r ->
      let n = Prune.pruned_count s r in
      if n > 0 then
        Format.fprintf fmt "  [%-14s] %-26s %8d@."
          (Prune.klass_to_string (Prune.klass_of_reason r))
          (Prune.reason_to_string r) n)
    Prune.all_reasons;
  Format.fprintf fmt "  hardware %d, performance %d%s@.@."
    s.Prune.hardware_rejects s.Prune.performance_rejects
    (if s.Prune.relaxed then
       Printf.sprintf "; performance constraints relaxed (%d attempts)"
         s.Prune.relax_attempts
     else "; strict rule set");
  Format.fprintf fmt "top %d of %d candidates by model cost (Algorithm 3)@."
    (List.length t.candidates) s.Prune.kept;
  List.iter
    (fun c ->
      let p = c.plan in
      Format.fprintf fmt "@.#%d  model cost %.3e transactions (%.3e bytes)@."
        c.rank p.Plan.cost c.cost.Cost.total_bytes;
      Format.fprintf fmt "    mapping     %a@." Mapping.pp p.Plan.mapping;
      Format.fprintf fmt
        "    launch      %d threads/block, %d blocks, %d steps, %d B smem, \
         ~%d regs/thread@."
        (Plan.threads_per_block p) (Plan.num_blocks p) (Plan.num_steps p)
        (Plan.smem_bytes p) (Plan.regs_per_thread p);
      Format.fprintf fmt "    occupancy   %.2f (limiter: %a)@."
        c.occupancy.Occupancy.occupancy Occupancy.pp_limiter
        c.occupancy.Occupancy.limiter;
      Format.fprintf fmt "    DRAM charges per tensor@.";
      List.iter
        (fun ch ->
          Format.fprintf fmt
            "      %s  %10.3e tx  %10.3e B  run %4d  coalescing %3.0f%%@."
            ch.Cost.tensor ch.Cost.transactions ch.Cost.bytes ch.Cost.run
            (pct ch.Cost.coalescing))
        c.cost.Cost.charges;
      let sim = c.sim in
      Format.fprintf fmt
        "    simulated   %.0f GFLOPS, %a (mem %.3f ms, compute %.3f ms)@."
        sim.Tc_sim.Simkernel.gflops Tc_sim.Simkernel.pp_bound
        sim.Tc_sim.Simkernel.bound
        (sim.Tc_sim.Simkernel.mem_time_s *. 1e3)
        (sim.Tc_sim.Simkernel.compute_time_s *. 1e3);
      let d = sim.Tc_sim.Simkernel.detail in
      Format.fprintf fmt
        "    roofline    mem_eff %.2f  comp_eff %.2f  warp %.2f  ilp %.2f  \
         sim tx A %.3e / B %.3e / C %.3e@."
        d.Tc_sim.Simkernel.mem_eff d.Tc_sim.Simkernel.comp_eff
        d.Tc_sim.Simkernel.warp_eff d.Tc_sim.Simkernel.ilp_eff
        d.Tc_sim.Simkernel.tx_lhs d.Tc_sim.Simkernel.tx_rhs
        d.Tc_sim.Simkernel.tx_out;
      (* Only on devices with async copies, so classic-only reports are
         unchanged. *)
      match c.pipelined with
      | None -> ()
      | Some (sc, r) ->
          let ratio =
            sim.Tc_sim.Simkernel.time_s /. r.Tc_sim.Simkernel.time_s
          in
          Format.fprintf fmt
            "    schema      %s %.0f GFLOPS — %.2fx vs classic staging \
             (%s)@."
            (Schema.to_string sc) r.Tc_sim.Simkernel.gflops ratio
            (if r.Tc_sim.Simkernel.time_s < sim.Tc_sim.Simkernel.time_s then
               "overlap wins"
             else "classic wins"))
    t.candidates;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let charge_to_json (ch : Cost.tensor_charge) =
  Tc_obs.Json.Obj
    [
      ("tensor", Tc_obs.Json.String ch.Cost.tensor);
      ("transactions", Tc_obs.Json.Float ch.Cost.transactions);
      ("bytes", Tc_obs.Json.Float ch.Cost.bytes);
      ("run", Tc_obs.Json.Int ch.Cost.run);
      ("coalescing", Tc_obs.Json.Float ch.Cost.coalescing);
    ]

let candidate_to_json c =
  let p = c.plan in
  let sim = c.sim in
  let d = sim.Tc_sim.Simkernel.detail in
  Tc_obs.Json.Obj
    ([
      ("rank", Tc_obs.Json.Int c.rank);
      ( "mapping",
        Tc_obs.Json.String (Format.asprintf "%a" Mapping.pp p.Plan.mapping) );
      ("model_cost", Tc_obs.Json.Float p.Plan.cost);
      ("charges", Tc_obs.Json.List (List.map charge_to_json c.cost.Cost.charges));
      ("steps", Tc_obs.Json.Int c.cost.Cost.steps);
      ("blocks", Tc_obs.Json.Int c.cost.Cost.blocks);
      ("threads_per_block", Tc_obs.Json.Int (Plan.threads_per_block p));
      ("smem_bytes", Tc_obs.Json.Int (Plan.smem_bytes p));
      ("regs_per_thread", Tc_obs.Json.Int (Plan.regs_per_thread p));
      ("occupancy", Tc_obs.Json.Float c.occupancy.Occupancy.occupancy);
      ( "occupancy_limiter",
        Tc_obs.Json.String
          (Format.asprintf "%a" Occupancy.pp_limiter
             c.occupancy.Occupancy.limiter) );
      ("sim_gflops", Tc_obs.Json.Float sim.Tc_sim.Simkernel.gflops);
      ( "sim_bound",
        Tc_obs.Json.String
          (Format.asprintf "%a" Tc_sim.Simkernel.pp_bound
             sim.Tc_sim.Simkernel.bound) );
      ( "roofline",
        Tc_obs.Json.Obj
          [
            ("mem_eff", Tc_obs.Json.Float d.Tc_sim.Simkernel.mem_eff);
            ("comp_eff", Tc_obs.Json.Float d.Tc_sim.Simkernel.comp_eff);
            ("warp_eff", Tc_obs.Json.Float d.Tc_sim.Simkernel.warp_eff);
            ("ilp_eff", Tc_obs.Json.Float d.Tc_sim.Simkernel.ilp_eff);
            ("tx_lhs", Tc_obs.Json.Float d.Tc_sim.Simkernel.tx_lhs);
            ("tx_rhs", Tc_obs.Json.Float d.Tc_sim.Simkernel.tx_rhs);
            ("tx_out", Tc_obs.Json.Float d.Tc_sim.Simkernel.tx_out);
          ] );
    ]
    @
    match c.pipelined with
    | None -> []
    | Some (sc, r) ->
        [
          ( "pipelined",
            Tc_obs.Json.Obj
              [
                ("schema", Tc_obs.Json.String (Schema.to_string sc));
                ("sim_gflops", Tc_obs.Json.Float r.Tc_sim.Simkernel.gflops);
                ( "speedup_vs_classic",
                  Tc_obs.Json.Float
                    (sim.Tc_sim.Simkernel.time_s
                    /. r.Tc_sim.Simkernel.time_s) );
              ] );
        ])

let to_json t =
  let s = t.stats in
  Tc_obs.Json.Obj
    [
      ( "problem",
        Tc_obs.Json.String (Format.asprintf "%a" Problem.pp t.problem) );
      ("arch", Tc_obs.Json.String t.arch.Arch.name);
      ("precision", Tc_obs.Json.String (Precision.to_string t.precision));
      ("naive_space", Tc_obs.Json.Float t.naive_space);
      ( "prune",
        Tc_obs.Json.Obj
          [
            ("enumerated", Tc_obs.Json.Int s.Prune.enumerated);
            ("kept", Tc_obs.Json.Int s.Prune.kept);
            ("hardware_rejects", Tc_obs.Json.Int s.Prune.hardware_rejects);
            ("performance_rejects", Tc_obs.Json.Int s.Prune.performance_rejects);
            ("relaxed", Tc_obs.Json.Bool s.Prune.relaxed);
            ("relax_attempts", Tc_obs.Json.Int s.Prune.relax_attempts);
            ( "rejected_by_rule",
              Tc_obs.Json.Obj
                (List.filter_map
                   (fun r ->
                     let n = Prune.pruned_count s r in
                     if n = 0 then None
                     else Some (Prune.reason_slug r, Tc_obs.Json.Int n))
                   Prune.all_reasons) );
          ] );
      ("candidates", Tc_obs.Json.List (List.map candidate_to_json t.candidates));
    ]
