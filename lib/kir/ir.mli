(** Typed kernel IR for the four-phase contraction kernels of Algorithm 1.

    A {!kernel} is not a flat statement list: its fields mirror the phase
    structure of the paper's Algorithm 1 (GMEM→SMEM staging, SMEM→register
    loads feeding register-tile outer products, guarded coalesced stores),
    with the barriers implied by the phase boundaries.  Backends assemble the
    phases per execution model — the GPU printers interleave them with real
    barriers inside the serial step loop, while the C-host printer wraps each
    phase in explicit thread-grid loops so the same IR runs on a CPU.

    Everything inside a phase is an ordinary typed statement over integer and
    scalar expressions, which is what the static checks ({!Check}) and
    transformations ({!Opt}) traverse. *)

open Tc_tensor
open Tc_gpu

(** {1 Configuration spec}

    The lowering input: everything {!Lower.kernel} needs to know about one
    plan, stated without reference to the planner's own types so that this
    library sits below [cogent.core] in the dependency order. *)

type binding = { index : Index.t; tile : int }

type spec = {
  name : string;  (** kernel symbol name *)
  precision : Precision.t;
  schema : Schema.t;
      (** kernel schema: [Classic] is the synchronous ladder of Algorithm 1;
          the pipelined schemas double-buffer the SMEM slabs and stage tile
          [t+1] while computing tile [t] (see {!Schema}) *)
  lhs : Index.t list;  (** canonical lhs operand layout, FVI first *)
  rhs : Index.t list;
  out : Index.t list;
  externals : Index.t list;  (** output layout order *)
  internals : Index.t list;
  tbx : binding list;
  regx : binding list;
  tby : binding list;
  regy : binding list;
  tbk : binding list;
  grid : Index.t list;  (** leftover externals, implicit tile 1 *)
  extents : (Index.t * int) list;  (** representative extents, every index *)
}

val tile_of : spec -> Index.t -> int
(** Tile of any index (1 for grid indices). @raise Not_found otherwise. *)

val extent_of : spec -> Index.t -> int
(** Representative extent. @raise Not_found for foreign indices. *)

val all_indices : spec -> Index.t list
(** Externals (output order) followed by internals. *)

val threads_x : spec -> int
val threads_y : spec -> int
val threads : spec -> int
val size_regx : spec -> int
val size_regy : spec -> int
val size_tbk : spec -> int

val slab_elems : spec -> Index.t list -> int
(** Shared-memory slab elements of an operand: product of its tiles. *)

(** {1 Expressions and statements} *)

type ty = Int | I64 | Bool | Scalar

type builtin =
  | Thread_x  (** [threadIdx.x] / [get_local_id(0)] / host loop variable *)
  | Thread_y
  | Block_flat  (** flattened block id: [blockIdx.x] / [get_group_id(0)] *)

type expr =
  | Int_lit of int
  | I64_lit of int
  | Scalar_zero  (** additive identity of the kernel's scalar type *)
  | Var of string
  | Builtin of builtin
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr
  | Lt of expr * expr  (** [<], used only in guards *)
  | And of expr * expr  (** bitwise [&] of guard flags *)
  | Cast of ty * expr
  | Select of expr * expr * expr  (** [cond ? a : b] *)
  | Index of string * expr  (** array read [a\[e\]] *)

type lvalue = Lvar of string | Larr of string * expr

type stmt =
  | Decl of { ty : ty; const : bool; name : string; init : expr option }
  | Assign of lvalue * expr
  | Div_assign of lvalue * expr  (** [v /= e] *)
  | Fma of { acc : lvalue; a : expr; b : expr }  (** [acc += a * b] *)
  | For of {
      var : string;
      start : expr;
      bound : expr;  (** loop runs while [var < bound] *)
      step : expr;  (** increment; [Int_lit 1] prints as [++var] *)
      unroll : bool;
      body : stmt list;
    }
  | If of expr * stmt list
  | Scope of stmt list  (** brace-scoped block *)
  | Comment of string

type array_decl = { a_name : string; elems : int }

(** {1 Kernels}

    Phase fields in execution order.  Barriers are structural: in the
    classic schema one separates [stage] from [compute] and one ends each
    step-loop iteration; in the pipelined schemas [stage] prefetches the
    {e next} tile (addressed by {!stage_step_var} into the SMEM half
    selected by {!buf_stage_var}) while [compute] reads the current half
    ({!buf_comp_var}), and a single end-of-iteration barrier (plus the
    async-copy wait in the CUDA dialect) retires each step — the staged
    and computed halves are disjoint, so the mid-step barrier disappears. *)

type kernel = {
  spec : spec;
  smem : array_decl list;
      (** shared-memory slabs, [s_A; s_B] — double-length (two halves of
          [elems/2]) under a pipelined schema *)
  regs : array_decl list;
      (** staging vectors [r_A; r_B] — live only within one compute phase *)
  acc : array_decl;  (** accumulator tile [r_C] — lives across barriers *)
  grid_setup : stmt list;  (** GMEM strides and per-external chunk counts *)
  block_setup : stmt list;  (** block bases decoded from {!Block_flat} *)
  step_counts : stmt list;  (** per-internal step counts and [num_steps] *)
  thread_init : stmt list;  (** tx/ty/tid and thread-local coordinates *)
  acc_init : stmt list;  (** accumulator zeroing *)
  step_setup : stmt list;
      (** step bases decoded from the step counter (classic schema; empty
          when pipelined — the decode moves to [stage_setup]) *)
  stage_setup : stmt list;
      (** pipelined schemas only: internal-index bases of the tile being
          {e prefetched}, decoded from {!stage_step_var} — printed before
          [stage] in the prologue and in each in-flight prefetch *)
  stage : stmt list;  (** phase (1): cooperative GMEM→SMEM staging *)
  compute : stmt list;  (** phases (2)+(3): SMEM→REG loads, outer products *)
  store : stmt list;  (** phase (4): guarded REG→GMEM stores *)
}

val num_steps_var : string
(** Name of the step-count variable the step loop ranges over. *)

val tid_var : string
(** Name of the flattened thread id declared by [thread_init]. *)

val stage_step_var : string
(** Pipelined schemas: the step index of the tile being prefetched
    ([step + 1]; 0 in the prologue), declared by the printers. *)

val buf_stage_var : string
(** Pipelined schemas: SMEM half being written by [stage]
    ([stage_step mod 2]). *)

val buf_comp_var : string
(** Pipelined schemas: SMEM half being read by [compute]
    ([step mod 2]). *)

(** {1 Traversals} *)

val map_expr : (expr -> expr) -> stmt list -> stmt list
(** Bottom-up expression rewriting over a statement list. *)

val exists_expr : (expr -> bool) -> stmt list -> bool
(** True iff some (sub-)expression in the statements satisfies the
    predicate. *)

val offset_array : name:string -> offset:expr -> stmt list -> stmt list
(** Adds [offset] to every index into array [name] (reads, writes and
    accumulations) — how the C-host backend promotes per-thread register
    tiles to block-wide arrays. *)

(** {1 Concrete evaluation}

    A small interpreter over the integer fragment of the IR, used by the
    static checks to observe the addresses a warp would touch.  Scalar reads
    evaluate to 0; every array access is reported to [on_access]. *)

type access_kind = Read | Write

type env

val make_env :
  ?builtin:(builtin -> int)
  -> ?on_access:(access_kind -> string -> int -> unit)
  -> unit
  -> env

val set_var : env -> string -> int -> unit
val get_var : env -> string -> int option
val eval_expr : env -> expr -> int
val exec : env -> stmt list -> unit
(** Executes statements, including full loop iteration.  [on_access] fires
    for every array element touched. @raise Failure on unbound variables. *)
