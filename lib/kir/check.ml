open Tc_gpu
open Ir

let scalar_bytes k = Precision.bytes k.spec.precision

let sum_elems arrays = List.fold_left (fun acc a -> acc + a.elems) 0 arrays

let smem_bytes k = sum_elems k.smem * scalar_bytes k

let reg_estimate k =
  let live = k.acc.elems + sum_elems k.regs in
  (* sub-word scalars (fp16) still occupy whole registers *)
  (max 1 (scalar_bytes k / 4) * live)
  + 32
  + Schema.extra_regs k.spec.schema

let occupancy_request k =
  {
    Occupancy.threads_per_block = threads k.spec;
    smem_per_block = smem_bytes k;
    regs_per_thread = min 255 (reg_estimate k);
  }

let cross_validate ~expected_smem ~expected_regs k =
  let got_smem = smem_bytes k and got_regs = reg_estimate k in
  if got_smem <> expected_smem then
    invalid_arg
      (Printf.sprintf
         "Tc_kir.Check.cross_validate: kernel %s declares %d B of shared \
          memory, plan predicts %d B"
         k.spec.name got_smem expected_smem);
  if got_regs <> expected_regs then
    invalid_arg
      (Printf.sprintf
         "Tc_kir.Check.cross_validate: kernel %s uses an estimated %d \
          registers/thread, plan predicts %d"
         k.spec.name got_regs expected_regs)

let n_banks = 32

let staging_conflict_ways k =
  let s = k.spec in
  let tbx = threads_x s in
  let nlanes = min n_banks (threads s) in
  let smem_names = List.map (fun a -> a.a_name) k.smem in
  (* key: (slab, per-lane write count to that slab).  Lanes run the staging
     loops in lockstep, so the j-th write of each lane to one slab is one
     warp transaction. *)
  let groups : (string * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  for lane = 0 to nlanes - 1 do
    let counters = Hashtbl.create 4 in
    let on_access kind name addr =
      if kind = Write && List.exists (String.equal name) smem_names then begin
        let c = Option.value (Hashtbl.find_opt counters name) ~default:0 in
        Hashtbl.replace counters name (c + 1);
        let cell =
          match Hashtbl.find_opt groups (name, c) with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add groups (name, c) r;
              r
        in
        cell := addr :: !cell
      end
    in
    let builtin = function
      | Thread_x -> lane mod tbx
      | Thread_y -> lane / tbx
      | Block_flat -> 0
    in
    let env = make_env ~builtin ~on_access () in
    List.iter
      (fun (i, e) -> set_var env (Printf.sprintf "N_%c" i) e)
      s.extents;
    exec env k.grid_setup;
    exec env k.block_setup;
    exec env k.step_counts;
    exec env k.thread_init;
    set_var env "step" 0;
    exec env k.step_setup;
    (* pipelined schemas decode staging bases from the prefetch step; the
       prologue values make the classic and pipelined first stages alias *)
    set_var env stage_step_var 0;
    set_var env buf_stage_var 0;
    exec env k.stage_setup;
    exec env k.stage
  done;
  Hashtbl.fold
    (fun _ addrs worst ->
      let banks = Array.make n_banks [] in
      List.iter
        (fun a ->
          let b = a mod n_banks in
          if not (List.mem a banks.(b)) then banks.(b) <- a :: banks.(b))
        !addrs;
      Array.fold_left (fun w l -> max w (List.length l)) worst banks)
    groups 1
