(** The single lowering of Algorithm 1 onto the kernel IR.

    [kernel spec] builds the four-phase contraction kernel for one
    configuration: cooperative GMEM→SMEM staging of the two input slabs,
    SMEM→register vector loads, register-tile outer products over the serial
    TB_k sweep, and guarded coalesced stores.  Tile sizes and thread-block
    shape are baked in as compile-time constants; tensor extents stay
    runtime parameters ([N_i]), exactly as in the string emitter this
    replaces.  All dialect choices are deferred to {!Print}. *)

val kernel : Ir.spec -> Ir.kernel
