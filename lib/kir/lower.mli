(** The single lowering of Algorithm 1 onto the kernel IR.

    [kernel spec] builds the four-phase contraction kernel for one
    configuration: cooperative GMEM→SMEM staging of the two input slabs,
    SMEM→register vector loads, register-tile outer products over the serial
    TB_k sweep, and guarded coalesced stores.  Tile sizes and thread-block
    shape are baked in as compile-time constants; tensor extents stay
    runtime parameters ([N_i]), exactly as in the string emitter this
    replaces.  All dialect choices are deferred to {!Print}.

    The [spec.schema] field selects the kernel schema.  Under a pipelined
    schema the SMEM slabs are doubled and rotate between two halves: the
    staging phase writes the half [buf_stage = stage_step mod 2] for the
    {e next} tile (its internal bases decoded in the [stage_setup] phase
    from [stage_step]), while the compute phase reads the half
    [buf_comp = step mod 2] — so the printers can overlap the two with a
    single barrier per step (plus the cp.async wait, in CUDA).  The classic
    schema is bit-identical to what this lowering always produced. *)

val kernel : Ir.spec -> Ir.kernel
