open Tc_tensor
open Ir

(* Everything the lowering needs about one tensor operand. *)
type view = {
  cname : string;  (* g_A, g_B, g_C *)
  indices : Index.t list;  (* layout order, FVI first *)
  stride_prefix : string;  (* sA, sB, sC *)
}

let lhs_view s = { cname = "g_A"; indices = s.lhs; stride_prefix = "sA" }
let rhs_view s = { cname = "g_B"; indices = s.rhs; stride_prefix = "sB" }
let out_view s = { cname = "g_C"; indices = s.out; stride_prefix = "sC" }

let extent_name i = Printf.sprintf "N_%c" i
let stride_name v i = Printf.sprintf "%s_%c" v.stride_prefix i
let local_name prefix i = Printf.sprintf "%s_%c" prefix i

let is_internal s i = List.exists (Index.equal i) s.internals

let base_name s i =
  Printf.sprintf (if is_internal s i then "kbase_%c" else "base_%c") i

let in_bindings bindings i =
  List.exists (fun b -> Index.equal b.index i) bindings

(* Runtime global-memory strides of an operand, derived from extents. *)
let gmem_strides v =
  let rec go stride = function
    | [] -> []
    | i :: rest ->
        Decl { ty = I64; const = true; name = stride_name v i;
               init = Some stride }
        :: go (Mul (Var (stride_name v i), Var (extent_name i))) rest
  in
  go (I64_lit 1) v.indices

(* Compile-time shared-memory strides of an input slab laid out in the
   operand's own index order with tile-sized dims. *)
let smem_strides s v =
  let rec go acc stride = function
    | [] -> List.rev acc
    | i :: rest -> go ((i, stride) :: acc) (stride * tile_of s i) rest
  in
  go [] 1 v.indices

(* Decompose a flat loop variable [var] into one local coordinate per index
   of [indices] (first = fastest): "const int <prefix>_<i> = ...". *)
let decompose ~indices ~tiles ~var ~prefix =
  let tmp = var ^ "_r" in
  let needs_tmp =
    (* a temporary is only needed if some index after the first non-trivial
       one also has a non-trivial tile *)
    List.length (List.filter (fun t -> t > 1) tiles) > 1
  in
  let n = List.length indices in
  let body =
    List.concat
      (List.mapi
         (fun k (i, t) ->
           let name = local_name prefix i in
           let decl init =
             Decl { ty = Int; const = true; name; init = Some init }
           in
           if t = 1 then [ decl (Int_lit 0) ]
           else
             let src = Var (if needs_tmp then tmp else var) in
             if k = n - 1 then [ decl src ]
             else
               decl (Mod (src, Int_lit t))
               :: (if needs_tmp then [ Div_assign (Lvar tmp, Int_lit t) ]
                   else []))
         (List.combine indices tiles))
  in
  if needs_tmp then
    Decl { ty = Int; const = false; name = tmp; init = Some (Var var) } :: body
  else body

let decompose_bindings ~bindings ~var ~prefix =
  decompose
    ~indices:(List.map (fun b -> b.index) bindings)
    ~tiles:(List.map (fun b -> b.tile) bindings)
    ~var ~prefix

let sum = function
  | [] -> Int_lit 0
  | t :: rest -> List.fold_left (fun acc e -> Add (acc, e)) t rest

let conj = function
  | [] -> Int_lit 1
  | t :: rest -> List.fold_left (fun acc e -> And (acc, e)) t rest

(* Sum-of-products address expression: base_i + local_i per index. *)
let gmem_address s v ~local_prefix =
  sum
    (List.map
       (fun i ->
         Mul
           ( Cast
               (I64, Add (Var (base_name s i), Var (local_name local_prefix i))),
             Var (stride_name v i) ))
       v.indices)

let smem_address s v ~coord =
  let terms =
    List.filter_map
      (fun (i, stride) ->
        match coord i with
        | Int_lit 0 -> None
        | c -> if stride = 1 then Some c else Some (Mul (c, Int_lit stride)))
      (smem_strides s v)
  in
  sum terms

let guard_expr s v ~local_prefix =
  conj
    (List.map
       (fun i ->
         Lt
           ( Add (Var (base_name s i), Var (local_name local_prefix i)),
             Var (extent_name i) ))
       v.indices)

(* Cooperative GMEM -> SMEM staging loop for one input slab.  The guard
   flag is named per slab (ok_la / ok_lb) so IR passes that track flags by
   name — notably [Opt.eliminate_guards] — never confuse one slab's guard
   with the other's. *)
let slab_load s v ~smem ~local_prefix =
  let elems = slab_elems s v.indices in
  let tiles = List.map (tile_of s) v.indices in
  let flag = "ok_" ^ local_prefix in
  For
    {
      var = "l";
      start = Var tid_var;
      bound = Int_lit elems;
      step = Int_lit (threads s);
      unroll = false;
      body =
        decompose ~indices:v.indices ~tiles ~var:"l" ~prefix:local_prefix
        @ [
            Decl { ty = Bool; const = true; name = flag;
                   init = Some (guard_expr s v ~local_prefix) };
            Assign
              ( Larr
                  ( smem,
                    smem_address s v ~coord:(fun i ->
                        Var (local_name local_prefix i)) ),
                Select
                  ( Var flag,
                    Index (v.cname, gmem_address s v ~local_prefix),
                    Scalar_zero ) );
          ];
    }

let ceil_div_decl name extent tile =
  Decl
    { ty = Int; const = true; name;
      init =
        Some (Div (Sub (Add (Var extent, Int_lit tile), Int_lit 1),
                   Int_lit tile)) }

(* Decode a flat counter [src] (mixed-radix digits [counts], tile scale per
   digit) into "base" coordinates; last digit needs no modulo. *)
let decode_bases ~src ~names ~counts ~tiles ~init =
  let n = List.length names in
  Decl { ty = I64; const = false; name = src; init = Some init }
  :: List.concat
       (List.mapi
          (fun k ((name, count), tile) ->
            let digit =
              if k = n - 1 then Cast (Int, Var src)
              else Cast (Int, Mod (Var src, Var count))
            in
            Decl { ty = Int; const = true; name;
                   init = Some (Mul (digit, Int_lit tile)) }
            :: (if k = n - 1 then []
                else [ Div_assign (Lvar src, Var count) ]))
          (List.combine (List.combine names counts) tiles))

let kernel (s : spec) =
  let a = lhs_view s and b = rhs_view s and c = out_view s in
  let rx = size_regx s and ry = size_regy s and tk = size_tbk s in
  let slab_a = slab_elems s a.indices and slab_b = slab_elems s b.indices in
  let pipelined = Tc_gpu.Schema.pipelined s.schema in
  (* -- grid setup: strides and per-external chunk counts -- *)
  let grid_setup =
    gmem_strides a @ gmem_strides b @ gmem_strides c
    @ List.map
        (fun i ->
          ceil_div_decl
            (Printf.sprintf "nb_%c" i)
            (extent_name i) (tile_of s i))
        s.externals
  in
  (* -- block setup: block bases decoded from the flat block id -- *)
  let block_setup =
    match s.externals with
    | [] -> []
    | ext ->
        decode_bases ~src:"brem"
          ~names:(List.map (base_name s) ext)
          ~counts:(List.map (fun i -> Printf.sprintf "nb_%c" i) ext)
          ~tiles:(List.map (tile_of s) ext)
          ~init:(Builtin Block_flat)
  in
  (* -- per-internal step counts -- *)
  let step_counts =
    List.map
      (fun i ->
        ceil_div_decl (Printf.sprintf "ns_%c" i) (extent_name i) (tile_of s i))
      s.internals
    @ [
        Decl
          { ty = Int; const = true; name = num_steps_var;
            init =
              Some
                (match s.internals with
                | [] -> Int_lit 1
                | i :: rest ->
                    List.fold_left
                      (fun acc j -> Mul (acc, Var (Printf.sprintf "ns_%c" j)))
                      (Var (Printf.sprintf "ns_%c" i))
                      rest) };
      ]
  in
  (* -- thread decomposition -- *)
  let thread_decomp var bindings =
    if bindings = [] then []
    else
      [
        Scope
          (decompose_bindings ~bindings ~var ~prefix:"d"
          @ List.map
              (fun bd ->
                Assign
                  ( Lvar (Printf.sprintf "l_%c" bd.index),
                    Var (Printf.sprintf "d_%c" bd.index) ))
              bindings);
      ]
  in
  let thread_init =
    [
      Decl { ty = Int; const = true; name = "tx";
             init = Some (Builtin Thread_x) };
      Decl { ty = Int; const = true; name = "ty";
             init = Some (Builtin Thread_y) };
      Decl { ty = Int; const = true; name = tid_var;
             init = Some (Add (Mul (Var "ty", Int_lit (threads_x s)),
                               Var "tx")) };
    ]
    @ List.map
        (fun bd ->
          Decl { ty = Int; const = false;
                 name = Printf.sprintf "l_%c" bd.index; init = None })
        (s.tbx @ s.tby)
    @ thread_decomp "tx" s.tbx
    @ thread_decomp "ty" s.tby
  in
  let acc_init =
    [
      For
        {
          var = "i"; start = Int_lit 0; bound = Int_lit (rx * ry);
          step = Int_lit 1; unroll = true;
          body = [ Assign (Larr ("r_C", Var "i"), Scalar_zero) ];
        };
    ]
  in
  (* -- step bases decoded from the serial step counter.  Only the staging
     phase consumes the internal bases, so under a pipelined schema the
     decode moves wholesale into [stage_setup], driven by the index of the
     tile being prefetched rather than the tile being computed. -- *)
  let decode_internal_bases ~init =
    match s.internals with
    | [] -> []
    | ints ->
        decode_bases ~src:"srem"
          ~names:(List.map (base_name s) ints)
          ~counts:(List.map (fun i -> Printf.sprintf "ns_%c" i) ints)
          ~tiles:(List.map (tile_of s) ints)
          ~init
  in
  let step_setup =
    if pipelined then [] else decode_internal_bases ~init:(Var "step")
  in
  let stage_setup =
    if pipelined then decode_internal_bases ~init:(Var stage_step_var) else []
  in
  (* The two-slab rotation: stage writes the half selected by [buf_stage],
     compute reads the half selected by [buf_comp] — disjoint halves of the
     doubled SMEM arrays, which is what lets the load of tile t+1 overlap
     the compute of tile t. *)
  let rotate buf_var stmts =
    if not pipelined then stmts
    else
      offset_array ~name:"s_A" ~offset:(Mul (Var buf_var, Int_lit slab_a))
        (offset_array ~name:"s_B" ~offset:(Mul (Var buf_var, Int_lit slab_b))
           stmts)
  in
  (* -- phase (1): cooperative staging -- *)
  let stage =
    rotate buf_stage_var
      [
        Comment
          (if pipelined then "(1) stage the next input slabs from GMEM to SMEM"
           else "(1) load input slabs from GMEM to SMEM");
        slab_load s a ~smem:"s_A" ~local_prefix:"la";
        slab_load s b ~smem:"s_B" ~local_prefix:"lb";
      ]
  in
  (* -- phases (2)+(3).  A coordinate inside a slab is: thread-local (l_i)
     for TB-mapped indices, register-local for REG-mapped indices, lk_i for
     internals, 0 for grid indices (slab dim 1). -- *)
  let coord_a ~reg_var i =
    if in_bindings s.tbx i then Var (Printf.sprintf "l_%c" i)
    else if in_bindings s.regx i then Var (local_name reg_var i)
    else if is_internal s i then Var (Printf.sprintf "lk_%c" i)
    else Int_lit 0
  in
  let coord_b ~reg_var i =
    if in_bindings s.tby i then Var (Printf.sprintf "l_%c" i)
    else if in_bindings s.regy i then Var (local_name reg_var i)
    else if is_internal s i then Var (Printf.sprintf "lk_%c" i)
    else Int_lit 0
  in
  let reg_load ~var ~bound ~bindings ~prefix ~reg ~smem_view ~smem ~coord =
    For
      {
        var; start = Int_lit 0; bound = Int_lit bound; step = Int_lit 1;
        unroll = true;
        body =
          decompose_bindings ~bindings ~var ~prefix
          @ [
              Assign
                ( Larr (reg, Var var),
                  Index (smem, smem_address s smem_view ~coord) );
            ];
      }
  in
  let compute =
    rotate buf_comp_var
    @@ (if Tc_gpu.Schema.mma s.schema then
          [
            Comment
              (Printf.sprintf
                 "MMA fragment compute (%s): the outer product below is the \
                  scalar semantics of the fragment tile"
                 (Tc_gpu.Precision.to_string s.precision));
          ]
        else [])
    @ [
      For
        {
          var = "kk"; start = Int_lit 0; bound = Int_lit tk; step = Int_lit 1;
          unroll = true;
          body =
            decompose_bindings ~bindings:s.tbk ~var:"kk" ~prefix:"lk"
            @ [
                Comment "(2) load register vectors from SMEM";
                reg_load ~var:"rx" ~bound:rx ~bindings:s.regx ~prefix:"ra"
                  ~reg:"r_A" ~smem_view:a ~smem:"s_A"
                  ~coord:(coord_a ~reg_var:"ra");
                reg_load ~var:"ry" ~bound:ry ~bindings:s.regy ~prefix:"rb"
                  ~reg:"r_B" ~smem_view:b ~smem:"s_B"
                  ~coord:(coord_b ~reg_var:"rb");
                Comment "(3) outer product";
                For
                  {
                    var = "ry"; start = Int_lit 0; bound = Int_lit ry;
                    step = Int_lit 1; unroll = true;
                    body =
                      [
                        For
                          {
                            var = "rx"; start = Int_lit 0; bound = Int_lit rx;
                            step = Int_lit 1; unroll = true;
                            body =
                              [
                                Fma
                                  {
                                    acc =
                                      Larr
                                        ( "r_C",
                                          Add (Mul (Var "ry", Int_lit rx),
                                               Var "rx") );
                                    a = Index ("r_A", Var "rx");
                                    b = Index ("r_B", Var "ry");
                                  };
                              ];
                          };
                      ];
                  };
              ];
        };
    ]
  in
  (* -- phase (4): the coordinate of an output index comes from its
     mapping -- *)
  let out_local i =
    if in_bindings s.tbx i || in_bindings s.tby i then
      Var (Printf.sprintf "l_%c" i)
    else if in_bindings s.regx i then Var (Printf.sprintf "ra_%c" i)
    else if in_bindings s.regy i then Var (Printf.sprintf "rb_%c" i)
    else Int_lit 0 (* grid *)
  in
  let store_guard =
    conj
      (List.map
         (fun i ->
           Lt (Add (Var (base_name s i), out_local i), Var (extent_name i)))
         c.indices)
  in
  let store_addr =
    sum
      (List.map
         (fun i ->
           Mul
             ( Cast (I64, Add (Var (base_name s i), out_local i)),
               Var (stride_name c i) ))
         c.indices)
  in
  let store =
    [
      Comment "(4) store the output tile from REG to GMEM";
      For
        {
          var = "ry"; start = Int_lit 0; bound = Int_lit ry; step = Int_lit 1;
          unroll = true;
          body =
            decompose_bindings ~bindings:s.regy ~var:"ry" ~prefix:"rb"
            @ [
                For
                  {
                    var = "rx"; start = Int_lit 0; bound = Int_lit rx;
                    step = Int_lit 1; unroll = true;
                    body =
                      decompose_bindings ~bindings:s.regx ~var:"rx"
                        ~prefix:"ra"
                      @ [
                          If
                            ( store_guard,
                              [
                                Assign
                                  ( Larr ("g_C", store_addr),
                                    Index
                                      ( "r_C",
                                        Add (Mul (Var "ry", Int_lit rx),
                                             Var "rx") ) );
                              ] );
                        ];
                  };
              ];
        };
    ]
  in
  let sf = Tc_gpu.Schema.smem_factor s.schema in
  {
    spec = s;
    smem =
      [
        { a_name = "s_A"; elems = sf * slab_a };
        { a_name = "s_B"; elems = sf * slab_b };
      ];
    regs = [ { a_name = "r_A"; elems = rx }; { a_name = "r_B"; elems = ry } ];
    acc = { a_name = "r_C"; elems = rx * ry };
    grid_setup;
    block_setup;
    step_counts;
    thread_init;
    acc_init;
    step_setup;
    stage_setup;
    stage;
    compute;
    store;
  }
