(** Static analyses over kernels: resource derivation and bank conflicts.

    The planner predicts the resources a configuration will use
    ([Plan.smem_bytes], [Plan.regs_per_thread]); these checks re-derive the
    same quantities from what the lowered kernel {e actually declares}, so
    the prediction and the emitted code can never silently drift apart. *)

val smem_bytes : Ir.kernel -> int
(** Bytes of shared memory the kernel declares: sum of slab elements times
    the scalar width. *)

val reg_estimate : Ir.kernel -> int
(** Per-thread register estimate from the declared register arrays
    (accumulator tile + staging vectors), using the planner's convention:
    one 32-bit register per 4 bytes of live scalar (at least one — fp16
    values still occupy whole registers) plus a fixed overhead of 32 for
    addressing, plus the schema's bookkeeping registers
    ({!Tc_gpu.Schema.extra_regs}: in-flight copy addresses for the
    pipelined schemas, fragment metadata for MMA). *)

val occupancy_request : Ir.kernel -> Tc_gpu.Occupancy.request
(** The kernel's resource footprint as an occupancy request (registers
    clamped to the 255 hardware ceiling, as the planner does). *)

val cross_validate :
  expected_smem:int -> expected_regs:int -> Ir.kernel -> unit
(** @raise Invalid_argument if the IR-derived shared-memory bytes or
    register estimate disagree with the planner's prediction. *)

val staging_conflict_ways : Ir.kernel -> int
(** Worst-case shared-memory bank-conflict degree of the staging phase:
    simulates the first warp (lanes 0..31) through the stage statements with
    the IR evaluator, groups simultaneous SMEM writes, and returns the
    maximum number of distinct addresses mapping to one of the 32 banks in
    any group (element-granularity banks; 1 = conflict-free; identical
    addresses broadcast).  COGENT's slab layouts make staging writes
    consecutive in [tid], so lowered kernels must report 1. *)
