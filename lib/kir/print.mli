(** Dialect printers for the kernel IR.

    One kernel, three renderings:

    - {b CUDA}: [extern "C" __global__] kernel, [__shared__] staging,
      [__syncthreads()] barriers;
    - {b OpenCL}: [__kernel] with [__global]/[__local] qualifiers,
      [barrier(CLK_LOCAL_MEM_FENCE)], [long] as the 64-bit type, and the
      [cl_khr_fp64] pragma for FP64;
    - {b C host}: plain C that emulates the thread grid with loops — the
      flat block id becomes an outer loop and every barrier phase is wrapped
      in its own [t_y]/[t_x] thread loops, with the per-thread accumulator
      tile promoted to a block-wide array indexed by [tid].  The result
      compiles with any C/C++ compiler and computes the same contraction,
      which is what lets tests {e execute} generated kernels against
      [Contract_ref].

    The IR's structural barriers (stage → compute inside the step loop) are
    realized here, per dialect.  Pipelined schemas change the step-loop
    shape in every dialect: a prologue stages tile 0, each iteration
    prefetches tile [step+1] into the SMEM half the running compute doesn't
    read, and the mid-step barrier disappears.  In CUDA the prefetch prints
    as [__pipeline_memcpy_async] copies with one commit per iteration and a
    constant [__pipeline_wait_prior(1)]; OpenCL and the C host emulate the
    same two-slab rotation with synchronous copies. *)

type dialect = Cuda | Opencl | C_host

val dialect_name : dialect -> string
(** ["CUDA"], ["OpenCL"], ["C host"]. *)

val kernel : dialect -> Ir.kernel -> string
(** The kernel definition in the given dialect (no header comment, no
    launcher). *)

val c_main : Ir.kernel -> string
(** A [main] for the C-host dialect: allocates the tensors at the spec's
    representative extents (overridable positionally on argv, [all_indices]
    order), fills the inputs with {!host_fill}, runs the kernel once and
    prints every output element with [%.17g] — one per line, FVI-first
    order — so a test can diff against [Contract_ref]. *)

val host_fill : tag:int -> int -> float
(** The deterministic fill the emitted C main uses:
    [value(tag, k) = ((2654435761 * k + 40503 * tag) land 0xFFFFFF) /
     16777216 - 0.5].  Reproducing it on the OCaml side gives bit-identical
    FP64 inputs for the numeric comparison. *)
