(** IR-level transformation passes.

    Both passes exploit the representative extents recorded in the spec.
    Because extents are runtime parameters in the emitted code, eliminating
    a boundary guard based on the representative size is only sound for a
    kernel whose extents have been baked in — so the compile-ready
    combination is [eliminate_guards] followed by {!specialize} (the former
    matches on the [N_i] parameter names the latter substitutes away). *)

val eliminate_guards : Ir.kernel -> Ir.kernel * bool
(** Peephole on boundary guards: drops every conjunct
    [(base_i + local_i < N_i)] whose index has [extent mod tile = 0] — such
    a chunk never hangs over the edge.  Guards that become trivially true
    disappear entirely (the staging select collapses to an unconditional
    load, the store loses its [if]).  The boolean reports whether anything
    fired. *)

val specialize : Ir.kernel -> Ir.kernel
(** Substitutes each extent parameter [N_i] with its representative value as
    an integer literal throughout the kernel body.  The parameter list is
    unchanged (arguments are simply ignored), so callers need not change. *)
