open Tc_tensor
open Tc_gpu

(* ---- spec ---- *)

type binding = { index : Index.t; tile : int }

type spec = {
  name : string;
  precision : Precision.t;
  schema : Schema.t;
  lhs : Index.t list;
  rhs : Index.t list;
  out : Index.t list;
  externals : Index.t list;
  internals : Index.t list;
  tbx : binding list;
  regx : binding list;
  tby : binding list;
  regy : binding list;
  tbk : binding list;
  grid : Index.t list;
  extents : (Index.t * int) list;
}

let find_binding bindings i =
  List.find_opt (fun b -> Index.equal b.index i) bindings

let tile_of s i =
  match
    find_binding (s.tbx @ s.regx @ s.tby @ s.regy @ s.tbk) i
  with
  | Some b -> b.tile
  | None ->
      if List.exists (Index.equal i) s.grid then 1 else raise Not_found

let extent_of s i =
  match List.find_opt (fun (j, _) -> Index.equal i j) s.extents with
  | Some (_, e) -> e
  | None -> raise Not_found

let all_indices s = s.externals @ s.internals

let size bindings = List.fold_left (fun acc b -> acc * b.tile) 1 bindings
let threads_x s = size s.tbx
let threads_y s = size s.tby
let threads s = threads_x s * threads_y s
let size_regx s = size s.regx
let size_regy s = size s.regy
let size_tbk s = size s.tbk

let slab_elems s indices =
  List.fold_left (fun acc i -> acc * tile_of s i) 1 indices

(* ---- expressions and statements ---- *)

type ty = Int | I64 | Bool | Scalar

type builtin = Thread_x | Thread_y | Block_flat

type expr =
  | Int_lit of int
  | I64_lit of int
  | Scalar_zero
  | Var of string
  | Builtin of builtin
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr
  | Lt of expr * expr
  | And of expr * expr
  | Cast of ty * expr
  | Select of expr * expr * expr
  | Index of string * expr

type lvalue = Lvar of string | Larr of string * expr

type stmt =
  | Decl of { ty : ty; const : bool; name : string; init : expr option }
  | Assign of lvalue * expr
  | Div_assign of lvalue * expr
  | Fma of { acc : lvalue; a : expr; b : expr }
  | For of {
      var : string;
      start : expr;
      bound : expr;
      step : expr;
      unroll : bool;
      body : stmt list;
    }
  | If of expr * stmt list
  | Scope of stmt list
  | Comment of string

type array_decl = { a_name : string; elems : int }

type kernel = {
  spec : spec;
  smem : array_decl list;
  regs : array_decl list;
  acc : array_decl;
  grid_setup : stmt list;
  block_setup : stmt list;
  step_counts : stmt list;
  thread_init : stmt list;
  acc_init : stmt list;
  step_setup : stmt list;
  stage_setup : stmt list;
  stage : stmt list;
  compute : stmt list;
  store : stmt list;
}

let num_steps_var = "num_steps"
let tid_var = "tid"
let stage_step_var = "stage_step"
let buf_stage_var = "buf_stage"
let buf_comp_var = "buf_comp"

(* ---- traversals ---- *)

(* Bottom-up rewrite: children first, then [f] on the rebuilt node.  The
   result of [f] is not re-traversed. *)
let rec rw_expr f e =
  let e' =
    match e with
    | Int_lit _ | I64_lit _ | Scalar_zero | Var _ | Builtin _ -> e
    | Add (a, b) -> Add (rw_expr f a, rw_expr f b)
    | Sub (a, b) -> Sub (rw_expr f a, rw_expr f b)
    | Mul (a, b) -> Mul (rw_expr f a, rw_expr f b)
    | Div (a, b) -> Div (rw_expr f a, rw_expr f b)
    | Mod (a, b) -> Mod (rw_expr f a, rw_expr f b)
    | Lt (a, b) -> Lt (rw_expr f a, rw_expr f b)
    | And (a, b) -> And (rw_expr f a, rw_expr f b)
    | Cast (t, a) -> Cast (t, rw_expr f a)
    | Select (c, a, b) -> Select (rw_expr f c, rw_expr f a, rw_expr f b)
    | Index (n, a) -> Index (n, rw_expr f a)
  in
  f e'

let rec map_stmts ~fe ~fl stmts =
  let e x = rw_expr fe x in
  let lv = function
    | Lvar _ as l -> fl l
    | Larr (n, i) -> fl (Larr (n, e i))
  in
  List.map
    (fun s ->
      match s with
      | Decl d -> Decl { d with init = Option.map e d.init }
      | Assign (l, x) -> Assign (lv l, e x)
      | Div_assign (l, x) -> Div_assign (lv l, e x)
      | Fma { acc; a; b } -> Fma { acc = lv acc; a = e a; b = e b }
      | For f -> For
          { f with start = e f.start; bound = e f.bound; step = e f.step;
            body = map_stmts ~fe ~fl f.body }
      | If (c, body) -> If (e c, map_stmts ~fe ~fl body)
      | Scope body -> Scope (map_stmts ~fe ~fl body)
      | Comment _ -> s)
    stmts

let map_expr f stmts = map_stmts ~fe:f ~fl:(fun l -> l) stmts

let exists_expr p stmts =
  let found = ref false in
  let fe e = if p e then found := true; e in
  ignore (map_expr fe stmts);
  !found

let offset_array ~name ~offset stmts =
  let fe = function
    | Index (n, e) when String.equal n name -> Index (n, Add (offset, e))
    | e -> e
  in
  let fl = function
    | Larr (n, e) when String.equal n name -> Larr (n, Add (offset, e))
    | l -> l
  in
  map_stmts ~fe ~fl stmts

(* ---- concrete evaluation ---- *)

type access_kind = Read | Write

type env = {
  vars : (string, int) Hashtbl.t;
  builtin : builtin -> int;
  on_access : access_kind -> string -> int -> unit;
}

let make_env ?(builtin = fun _ -> 0) ?(on_access = fun _ _ _ -> ()) () =
  { vars = Hashtbl.create 64; builtin; on_access }

let set_var env n v = Hashtbl.replace env.vars n v
let get_var env n = Hashtbl.find_opt env.vars n

let lookup env n =
  match Hashtbl.find_opt env.vars n with
  | Some v -> v
  | None -> failwith ("Tc_kir.Ir.eval_expr: unbound variable " ^ n)

let rec eval_expr env = function
  | Int_lit n | I64_lit n -> n
  | Scalar_zero -> 0
  | Var n -> lookup env n
  | Builtin b -> env.builtin b
  | Add (a, b) -> eval_expr env a + eval_expr env b
  | Sub (a, b) -> eval_expr env a - eval_expr env b
  | Mul (a, b) -> eval_expr env a * eval_expr env b
  | Div (a, b) -> eval_expr env a / eval_expr env b
  | Mod (a, b) -> eval_expr env a mod eval_expr env b
  | Lt (a, b) -> if eval_expr env a < eval_expr env b then 1 else 0
  | And (a, b) -> eval_expr env a land eval_expr env b
  | Cast (_, e) -> eval_expr env e
  (* like C, only the chosen branch is evaluated, so guarded loads don't
     report out-of-bounds accesses *)
  | Select (c, a, b) ->
      if eval_expr env c <> 0 then eval_expr env a else eval_expr env b
  | Index (n, e) ->
      let i = eval_expr env e in
      env.on_access Read n i;
      0

let write_lvalue env lv v =
  match lv with
  | Lvar n -> set_var env n v
  | Larr (n, e) ->
      let i = eval_expr env e in
      env.on_access Write n i

let rec exec env stmts = List.iter (exec_stmt env) stmts

and exec_stmt env = function
  | Decl { name; init; _ } ->
      set_var env name (match init with Some e -> eval_expr env e | None -> 0)
  | Assign (lv, e) -> write_lvalue env lv (eval_expr env e)
  | Div_assign (lv, e) -> (
      let d = eval_expr env e in
      match lv with
      | Lvar n -> set_var env n (lookup env n / d)
      | Larr (n, i) -> env.on_access Write n (eval_expr env i))
  | Fma { acc; a; b } ->
      let va = eval_expr env a and vb = eval_expr env b in
      write_lvalue env acc (va * vb)
  | For { var; start; bound; step; body; _ } ->
      let v = ref (eval_expr env start) in
      while !v < eval_expr env bound do
        set_var env var !v;
        exec env body;
        v := !v + eval_expr env step
      done
  | If (c, body) -> if eval_expr env c <> 0 then exec env body
  | Scope body -> exec env body
  | Comment _ -> ()
