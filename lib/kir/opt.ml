open Ir

let map_phases f k =
  {
    k with
    grid_setup = f k.grid_setup;
    block_setup = f k.block_setup;
    step_counts = f k.step_counts;
    thread_init = f k.thread_init;
    acc_init = f k.acc_init;
    step_setup = f k.step_setup;
    stage_setup = f k.stage_setup;
    stage = f k.stage;
    compute = f k.compute;
    store = f k.store;
  }

let eliminate_guards k =
  let s = k.spec in
  let droppable_extent n =
    String.length n = 3
    && n.[0] = 'N'
    && n.[1] = '_'
    &&
    let i = n.[2] in
    let tile = match tile_of s i with t -> Some t | exception Not_found -> None in
    match (List.assoc_opt i s.extents, tile) with
    | Some e, Some t -> e mod t = 0
    | _ -> false
  in
  let changed = ref false in
  (* conjunction simplifier: [None] means trivially true *)
  let rec simp e =
    match e with
    | And (a, b) -> (
        match (simp a, simp b) with
        | None, x | x, None -> x
        | Some a', Some b' -> Some (And (a', b')))
    | Lt (_, Var n) when droppable_extent n ->
        changed := true;
        None
    | e -> Some e
  in
  (* names of guard flags whose condition turned out trivially true *)
  let true_flags = Hashtbl.create 4 in
  let drop_select stmts =
    map_expr
      (function
        | Select (Var n, a, _) when Hashtbl.mem true_flags n ->
            changed := true;
            a
        | e -> e)
      stmts
  in
  let rec rw stmts =
    List.concat_map
      (fun st ->
        match st with
        | Decl ({ ty = Bool; init = Some g; _ } as d) -> (
            match simp g with
            | None ->
                Hashtbl.replace true_flags d.name ();
                []
            | Some g' ->
                (* a surviving declaration shadows any earlier elimination
                   of the same name: its Selects must be kept *)
                Hashtbl.remove true_flags d.name;
                [ Decl { d with init = Some g' } ])
        | If (c, body) -> (
            match simp c with
            | None -> rw body
            | Some c' -> [ If (c', rw body) ])
        | For f -> [ For { f with body = rw f.body } ]
        | Scope body -> [ Scope (rw body) ]
        | st -> drop_select [ st ])
      stmts
  in
  let k' = map_phases rw k in
  (k', !changed)

let specialize k =
  let s = k.spec in
  let subst = function
    | Var n as e
      when String.length n = 3 && n.[0] = 'N' && n.[1] = '_' -> (
        match List.assoc_opt n.[2] s.extents with
        | Some v -> Int_lit v
        | None -> e)
    | e -> e
  in
  map_phases (map_expr subst) k
