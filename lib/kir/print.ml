open Tc_gpu
open Ir

type dialect = Cuda | Opencl | C_host

let dialect_name = function
  | Cuda -> "CUDA"
  | Opencl -> "OpenCL"
  | C_host -> "C host"

(* [async] is set only while printing the staging phase of a pipelined CUDA
   kernel: slab stores then print as [__pipeline_memcpy_async] copies. *)
type ctx = { d : dialect; prec : Precision.t; async : bool; buf : Buffer.t }

let bpf ctx fmt = Printf.bprintf ctx.buf fmt
let puts ctx s = Buffer.add_string ctx.buf s

(* the C host executes half-precision kernels in float: the emulation targets
   numerical checking, not storage-format fidelity *)
let scalar ctx =
  match (ctx.d, ctx.prec) with
  | C_host, Precision.FP16 -> "float"
  | _ -> Precision.cuda_type ctx.prec

let zero ctx =
  match ctx.prec with
  | Precision.FP64 -> "0.0"
  | FP32 | FP16 | TF32 -> "0.0f"
let i64_ty ctx = match ctx.d with Opencl -> "long" | Cuda | C_host -> "long long"
let flag_ty ctx = match ctx.d with Cuda -> "bool" | Opencl | C_host -> "int"

let ty_name ctx = function
  | Int -> "int"
  | I64 -> i64_ty ctx
  | Bool -> flag_ty ctx
  | Scalar -> scalar ctx

let builtin_str ctx b =
  match (b, ctx.d) with
  | Thread_x, Cuda -> "threadIdx.x"
  | Thread_x, Opencl -> "get_local_id(0)"
  | Thread_x, C_host -> "t_x"
  | Thread_y, Cuda -> "threadIdx.y"
  | Thread_y, Opencl -> "get_local_id(1)"
  | Thread_y, C_host -> "t_y"
  | Block_flat, Cuda -> "blockIdx.x"
  | Block_flat, Opencl -> "(long)get_group_id(0)"
  | Block_flat, C_host -> "blk"

(* C precedence levels used here: 5 = * / %, 4 = + -, 2 = &, 1 = ?:.
   [Lt] only ever appears inside guards and is always parenthesized;
   casts and primaries bind tightest. *)
let rec expr ctx prec e =
  let bin my a op b =
    let s = expr ctx my a ^ op ^ expr ctx (my + 1) b in
    if my < prec then "(" ^ s ^ ")" else s
  in
  match e with
  | Int_lit n -> string_of_int n
  | I64_lit n -> (
      match ctx.d with
      | Opencl -> Printf.sprintf "(long)%d" n
      | Cuda | C_host -> Printf.sprintf "%dLL" n)
  | Scalar_zero -> zero ctx
  | Var n -> n
  | Builtin b -> builtin_str ctx b
  | Add (a, b) -> bin 4 a " + " b
  | Sub (a, b) -> bin 4 a " - " b
  | Mul (a, b) -> bin 5 a " * " b
  | Div (a, b) -> bin 5 a " / " b
  | Mod (a, b) -> bin 5 a " % " b
  | Lt (a, b) -> "(" ^ expr ctx 0 a ^ " < " ^ expr ctx 0 b ^ ")"
  | And (a, b) -> bin 2 a " & " b
  | Cast (t, a) -> "(" ^ ty_name ctx t ^ ")" ^ atom ctx a
  | Select (c, a, b) ->
      let s = expr ctx 2 c ^ " ? " ^ expr ctx 2 a ^ " : " ^ expr ctx 2 b in
      if prec > 1 then "(" ^ s ^ ")" else s
  | Index (n, a) -> n ^ "[" ^ expr ctx 0 a ^ "]"

and atom ctx e =
  match e with
  | Int_lit _ | I64_lit _ | Var _ | Index _ -> expr ctx 0 e
  | _ -> "(" ^ expr ctx 0 e ^ ")"

let lval ctx = function
  | Lvar n -> n
  | Larr (n, e) -> n ^ "[" ^ expr ctx 0 e ^ "]"

let ind ctx n = puts ctx (String.make (2 * n) ' ')

let rec stmt ctx n s =
  match s with
  (* pipelined CUDA staging: a guarded slab store becomes an asynchronous
     GMEM→SMEM copy (the guard-false arm zero-fills synchronously, exactly
     like the [Select]'s else branch) *)
  | Assign (Larr (dst, da), Select (c, Index (src, sa), Scalar_zero))
    when ctx.async ->
      ind ctx n;
      bpf ctx "if (%s) __pipeline_memcpy_async(&%s[%s], &%s[%s], sizeof(%s));\n"
        (expr ctx 0 c) dst (expr ctx 0 da) src (expr ctx 0 sa) (scalar ctx);
      ind ctx n;
      bpf ctx "else %s[%s] = %s;\n" dst (expr ctx 0 da) (zero ctx)
  | Assign (Larr (dst, da), Index (src, sa)) when ctx.async ->
      ind ctx n;
      bpf ctx "__pipeline_memcpy_async(&%s[%s], &%s[%s], sizeof(%s));\n" dst
        (expr ctx 0 da) src (expr ctx 0 sa) (scalar ctx)
  | Decl { ty; const; name; init } ->
      ind ctx n;
      if const then puts ctx "const ";
      bpf ctx "%s %s" (ty_name ctx ty) name;
      (match init with
      | Some e -> bpf ctx " = %s" (expr ctx 0 e)
      | None -> ());
      puts ctx ";\n"
  | Assign (lv, e) ->
      ind ctx n;
      bpf ctx "%s = %s;\n" (lval ctx lv) (expr ctx 0 e)
  | Div_assign (lv, e) ->
      ind ctx n;
      bpf ctx "%s /= %s;\n" (lval ctx lv) (expr ctx 0 e)
  | Fma { acc; a; b } ->
      ind ctx n;
      bpf ctx "%s += %s * %s;\n" (lval ctx acc) (expr ctx 5 a) (expr ctx 6 b)
  | For { var; start; bound; step; unroll; body } ->
      if unroll && ctx.d <> C_host then puts ctx "#pragma unroll\n";
      ind ctx n;
      bpf ctx "for (int %s = %s; %s < %s; %s)" var (expr ctx 0 start) var
        (expr ctx 0 bound)
        (match step with
        | Int_lit 1 -> "++" ^ var
        | e -> Printf.sprintf "%s += %s" var (expr ctx 0 e));
      block ctx n body
  | If (c, body) ->
      ind ctx n;
      bpf ctx "if (%s)" (expr ctx 0 c);
      block ctx n body
  | Scope body ->
      ind ctx n;
      puts ctx "{\n";
      stmts ctx (n + 1) body;
      ind ctx n;
      puts ctx "}\n"
  | Comment s ->
      ind ctx n;
      bpf ctx "// %s\n" s

(* single statements that introduce no declaration print braceless *)
and block ctx n body =
  match body with
  | [ ((Assign _ | Div_assign _ | Fma _ | For _ | If _) as s) ] ->
      puts ctx "\n";
      stmt ctx (n + 1) s
  | _ ->
      puts ctx " {\n";
      stmts ctx (n + 1) body;
      ind ctx n;
      puts ctx "}\n"

and stmts ctx n l = List.iter (stmt ctx n) l

let param_list s =
  String.concat ""
    (List.map (fun i -> Printf.sprintf ",\n    const int N_%c" i)
       (all_indices s))

(* ---- GPU dialects: one real thread per (tx, ty), structural barriers ---- *)

let gpu_kernel ctx (k : kernel) =
  let s = k.spec in
  let sc = scalar ctx in
  (match ctx.d with
  | Cuda ->
      bpf ctx "extern \"C\" __global__ void %s(\n" s.name;
      bpf ctx "    %s* __restrict__ g_C,\n" sc;
      bpf ctx "    const %s* __restrict__ g_A,\n" sc;
      bpf ctx "    const %s* __restrict__ g_B" sc
  | Opencl ->
      (match s.precision with
      | Precision.FP64 ->
          puts ctx "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n"
      | Precision.FP16 ->
          puts ctx "#pragma OPENCL EXTENSION cl_khr_fp16 : enable\n\n"
      | Precision.FP32 | Precision.TF32 -> ());
      bpf ctx "__kernel void %s(\n" s.name;
      bpf ctx "    __global %s* restrict g_C,\n" sc;
      bpf ctx "    __global const %s* restrict g_A,\n" sc;
      bpf ctx "    __global const %s* restrict g_B" sc
  | C_host -> invalid_arg "Tc_kir.Print.gpu_kernel: C_host");
  bpf ctx "%s)\n{\n" (param_list s);
  stmts ctx 1 k.grid_setup;
  stmts ctx 1 k.block_setup;
  stmts ctx 1 k.step_counts;
  stmts ctx 1 k.thread_init;
  let smem_qual = match ctx.d with Cuda -> "__shared__" | _ -> "__local" in
  List.iter
    (fun a -> bpf ctx "  %s %s %s[%d];\n" smem_qual sc a.a_name a.elems)
    k.smem;
  bpf ctx "  %s %s[%d];\n" sc k.acc.a_name k.acc.elems;
  List.iter (fun a -> bpf ctx "  %s %s[%d];\n" sc a.a_name a.elems) k.regs;
  stmts ctx 1 k.acc_init;
  let barrier =
    match ctx.d with
    | Cuda -> "    __syncthreads();\n"
    | _ -> "    barrier(CLK_LOCAL_MEM_FENCE);\n"
  in
  if not (Schema.pipelined s.schema) then begin
    bpf ctx "  for (int step = 0; step < %s; ++step) {\n" num_steps_var;
    stmts ctx 2 k.step_setup;
    stmts ctx 2 k.stage;
    puts ctx barrier;
    stmts ctx 2 k.compute;
    puts ctx barrier;
    puts ctx "  }\n"
  end
  else begin
    let async = ctx.d = Cuda in
    let stage_ctx = { ctx with async } in
    let print_stage n =
      stmts ctx n k.stage_setup;
      stmts stage_ctx n k.stage
    in
    (* prologue: stage tile 0 into SMEM half 0 *)
    puts ctx "  {\n";
    bpf ctx "    const int %s = 0;\n" stage_step_var;
    bpf ctx "    const int %s = 0;\n" buf_stage_var;
    print_stage 2;
    puts ctx "  }\n";
    if async then puts ctx "  __pipeline_commit();\n"
    else puts ctx ("  " ^ String.trim barrier ^ "\n");
    bpf ctx "  for (int step = 0; step < %s; ++step) {\n" num_steps_var;
    (* prefetch tile step+1 into the half the current compute doesn't read;
       the commit is unconditional so every iteration retires exactly one
       copy group and [wait_prior(1)] needs no runtime group count *)
    bpf ctx "    if (step + 1 < %s) {\n" num_steps_var;
    bpf ctx "      const int %s = step + 1;\n" stage_step_var;
    bpf ctx "      const int %s = %s %% 2;\n" buf_stage_var stage_step_var;
    print_stage 3;
    puts ctx "    }\n";
    if async then begin
      puts ctx "    __pipeline_commit();\n";
      puts ctx "    __pipeline_wait_prior(1);\n";
      puts ctx barrier
    end;
    bpf ctx "    const int %s = step %% 2;\n" buf_comp_var;
    stmts ctx 2 k.compute;
    puts ctx barrier;
    puts ctx "  }\n"
  end;
  stmts ctx 1 k.store;
  puts ctx "}\n"

(* ---- C-host dialect: thread grid emulated with loops ---- *)

let c_kernel ctx (k : kernel) =
  let s = k.spec in
  let sc = scalar ctx in
  (* the per-thread accumulator tile becomes one block-wide array *)
  let acc_offset = Mul (Var tid_var, Int_lit k.acc.elems) in
  let per_thread = offset_array ~name:k.acc.a_name ~offset:acc_offset in
  (* every barrier phase runs to completion across the whole emulated
     thread grid before the next phase starts *)
  let thread_loop n ?(arrays = []) body =
    ind ctx n;
    bpf ctx "for (int t_y = 0; t_y < %d; ++t_y)\n" (threads_y s);
    ind ctx n;
    bpf ctx "for (int t_x = 0; t_x < %d; ++t_x) {\n" (threads_x s);
    stmts ctx (n + 1) k.thread_init;
    List.iter
      (fun a ->
        ind ctx (n + 1);
        bpf ctx "%s %s[%d];\n" sc a.a_name a.elems)
      arrays;
    stmts ctx (n + 1) body;
    ind ctx n;
    puts ctx "}\n"
  in
  bpf ctx "void %s(\n" s.name;
  bpf ctx "    %s* g_C,\n" sc;
  bpf ctx "    const %s* g_A,\n" sc;
  bpf ctx "    const %s* g_B" sc;
  bpf ctx "%s)\n{\n" (param_list s);
  stmts ctx 1 k.grid_setup;
  stmts ctx 1 k.step_counts;
  let n_blocks =
    match s.externals with
    | [] -> "1LL"
    | first :: rest ->
        String.concat " * "
          (Printf.sprintf "(long long)nb_%c" first
          :: List.map (Printf.sprintf "nb_%c") rest)
  in
  bpf ctx "  const long long n_blocks = %s;\n" n_blocks;
  puts ctx "  for (long long blk = 0; blk < n_blocks; ++blk) {\n";
  stmts ctx 2 k.block_setup;
  List.iter (fun a -> bpf ctx "    %s %s[%d];\n" sc a.a_name a.elems) k.smem;
  bpf ctx "    %s %s[%d];\n" sc k.acc.a_name (threads s * k.acc.elems);
  thread_loop 2 (per_thread k.acc_init);
  if not (Schema.pipelined s.schema) then begin
    bpf ctx "    for (int step = 0; step < %s; ++step) {\n" num_steps_var;
    stmts ctx 3 k.step_setup;
    thread_loop 3 k.stage;
    thread_loop 3 ~arrays:k.regs (per_thread k.compute);
    puts ctx "    }\n"
  end
  else begin
    (* two-slab rotation, executed sequentially: the prologue stages tile 0
       into half 0; each step stages tile step+1 into the half the compute
       of tile step doesn't read *)
    puts ctx "    {\n";
    bpf ctx "      const int %s = 0;\n" stage_step_var;
    bpf ctx "      const int %s = 0;\n" buf_stage_var;
    stmts ctx 3 k.stage_setup;
    thread_loop 3 k.stage;
    puts ctx "    }\n";
    bpf ctx "    for (int step = 0; step < %s; ++step) {\n" num_steps_var;
    bpf ctx "      if (step + 1 < %s) {\n" num_steps_var;
    bpf ctx "        const int %s = step + 1;\n" stage_step_var;
    bpf ctx "        const int %s = %s %% 2;\n" buf_stage_var stage_step_var;
    stmts ctx 4 k.stage_setup;
    thread_loop 4 k.stage;
    puts ctx "      }\n";
    bpf ctx "      const int %s = step %% 2;\n" buf_comp_var;
    thread_loop 3 ~arrays:k.regs (per_thread k.compute);
    puts ctx "    }\n"
  end;
  thread_loop 2 (per_thread k.store);
  puts ctx "  }\n";
  puts ctx "}\n"

let kernel d (k : kernel) =
  let ctx =
    { d; prec = k.spec.precision; async = false; buf = Buffer.create 4096 }
  in
  (match d with
  | Cuda | Opencl -> gpu_kernel ctx k
  | C_host -> c_kernel ctx k);
  Buffer.contents ctx.buf

(* ---- C-host standalone driver ---- *)

let host_fill ~tag k =
  float_of_int (((2654435761 * k) + (40503 * tag)) land 0xFFFFFF)
  /. 16777216.0
  -. 0.5

let c_main (k : kernel) =
  let s = k.spec in
  let ctx =
    { d = C_host; prec = s.precision; async = false; buf = Buffer.create 2048 }
  in
  let sc = scalar ctx in
  let idx = all_indices s in
  puts ctx "static double tc_fill(unsigned tag, size_t k)\n{\n";
  puts ctx
    "  unsigned v = (2654435761u * (unsigned)k + 40503u * tag) & 0xFFFFFFu;\n";
  puts ctx "  return (double)v / 16777216.0 - 0.5;\n}\n\n";
  puts ctx "int main(int argc, char** argv)\n{\n";
  List.iter (fun i -> bpf ctx "  int N_%c = %d;\n" i (extent_of s i)) idx;
  List.iteri
    (fun pos i ->
      bpf ctx "  if (argc > %d) N_%c = atoi(argv[%d]);\n" (pos + 1) i (pos + 1))
    idx;
  let size_expr = function
    | [] -> "(size_t)1"
    | l -> String.concat " * " (List.map (Printf.sprintf "(size_t)N_%c") l)
  in
  bpf ctx "  size_t szA = %s, szB = %s, szC = %s;\n" (size_expr s.lhs)
    (size_expr s.rhs) (size_expr s.out);
  List.iter
    (fun v -> bpf ctx "  %s* %s = (%s*)malloc(sz%s * sizeof(%s));\n" sc v sc v sc)
    [ "A"; "B"; "C" ];
  bpf ctx "  for (size_t i = 0; i < szA; ++i) A[i] = (%s)tc_fill(1u, i);\n" sc;
  bpf ctx "  for (size_t i = 0; i < szB; ++i) B[i] = (%s)tc_fill(2u, i);\n" sc;
  bpf ctx "  for (size_t i = 0; i < szC; ++i) C[i] = (%s)0;\n" sc;
  bpf ctx "  %s(C, A, B%s);\n" s.name
    (String.concat ""
       (List.map (fun i -> Printf.sprintf ", N_%c" i) idx));
  puts ctx
    "  for (size_t i = 0; i < szC; ++i) printf(\"%.17g\\n\", (double)C[i]);\n";
  puts ctx "  free(A); free(B); free(C);\n  return 0;\n}\n";
  Buffer.contents ctx.buf
