(** Structured tracing: hierarchical spans, instants, counter samples and
    request scopes.

    The core is pay-for-what-you-use: with no context installed (and none
    passed explicitly), {!with_span} reduces to calling its thunk — no
    allocation, no clock read, no locking — so instrumented library code
    is bit-identical in behaviour to uninstrumented code.  When a context
    is active, events are collected in memory under a mutex (sinks are
    thread-safe) and can be exported through {!Export} as human-readable
    text, JSON-lines, or Chrome [trace_event] JSON loadable in
    [chrome://tracing] / Perfetto.

    {b Domain safety.}  The ambient context, the ambient request scope
    and the stack of open spans are domain-local ([Domain.DLS]): each
    domain nests its own spans (their [depth] counts from that domain's
    root), while completed events from every domain merge into the
    context's shared sink by sequence number.  [Tc_par.Pool] captures the
    submitting domain's full ambient state with {!capture} and
    re-installs it ({!with_ambient}) around items it runs on worker
    domains, so spans — and their request attribution — recorded inside
    a parallel section land in the same sink.

    {b Tracks.}  Every event carries a [track]: a small integer naming
    the recording domain {e within this context}.  Tracks are assigned in
    the order domains first record (derived from the deterministic event
    sequence, never [Domain.self]), so the exporter can render each
    domain's spans on its own timeline row with correct nesting.

    {b Request scopes.}  {!with_request} opens a span and additionally
    marks the calling domain as serving the given request id for the
    dynamic extent of the thunk: every span and instant recorded inside —
    including on worker domains the pool re-installed the scope on — gets
    a [("request", String id)] argument, which {!Export.to_chrome} uses
    to bind one request's spans into a connected flow across tracks.

    Timestamps come from the context's clock (seconds, converted to
    microseconds relative to the first event).  The default clock is
    [Sys.time] — monotone for this process and dependency-free; tests
    inject a deterministic virtual clock via [make ~clock]. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type args = (string * value) list
(** Key/value annotations attached to an event. *)

type event =
  | Span of {
      name : string;
      cat : string;  (** category, e.g. ["cogent"] — Chrome's [cat] field *)
      start_us : float;
      dur_us : float;
      depth : int;  (** nesting depth, 0 = root (per recording domain) *)
      track : int;  (** recording domain's track within this context *)
      args : args;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      track : int;
      args : args;
    }
  | Counter of { name : string; ts_us : float; track : int; value : float }

val event_args : event -> args
(** The event's annotations ([[]] for counters). *)

type t
(** A trace context: a clock plus a thread-safe in-memory event sink. *)

val make : ?clock:(unit -> float) -> unit -> t
(** A fresh, empty context.  [clock] returns seconds; it only needs to be
    monotone.  Default: [Sys.time]. *)

val install : t -> unit
(** Make [t] the ambient context of the {e calling domain}: subsequent
    [with_span]/[instant]/[counter] calls without an explicit [?t] record
    into it. *)

val uninstall : unit -> unit

val installed : unit -> t option

val with_installed : t -> (unit -> 'a) -> 'a
(** [with_installed t f] installs [t], runs [f], and restores the
    previously installed context (even on exceptions). *)

type ambient
(** The calling domain's full ambient tracing state: the installed
    context {e and} the open request scope. *)

val capture : unit -> ambient

val with_ambient : ambient -> (unit -> 'a) -> 'a
(** Install a captured ambient state for the duration of the thunk and
    restore the previous state after — how [Tc_par.Pool] makes worker
    domains record into the submitting domain's context under the
    submitting domain's request scope. *)

val enabled : unit -> bool
(** [true] iff a context is installed — the cheap guard instrumented code
    may use before building expensive arguments. *)

val with_span : ?t:t -> ?cat:string -> ?args:args -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as a span nested under the currently open
    span of the target context.  With no target context, exactly [f ()]. *)

val with_request :
  ?t:t -> id:string -> ?attrs:args -> string -> (unit -> 'a) -> 'a
(** [with_request ~id name f] opens a span [name] (category ["request"])
    and marks the calling domain as serving request [id] while [f] runs:
    the span itself and every event recorded inside its dynamic extent —
    including events from pool worker domains that re-installed the
    captured ambient state — carry a [("request", String id)] argument.
    Request scopes nest; the innermost wins.  With no target context,
    exactly [f ()]. *)

val current_request : unit -> string option
(** The request id of the innermost open request scope on this domain. *)

val add_args : ?t:t -> args -> unit
(** Append annotations to the innermost open span (useful when a result —
    e.g. how many configurations survived — is only known mid-span).
    No-op without a target context or outside any span. *)

val instant : ?t:t -> ?cat:string -> ?args:args -> string -> unit
(** A zero-duration point event. *)

val counter : ?t:t -> string -> float -> unit
(** A counter sample (Chrome renders these as stacked area charts). *)

val events : t -> event list
(** All completed events in deterministic creation order (spans ordered by
    their begin time, before any children). *)

val clear : t -> unit
(** Drop recorded events; open spans and the clock epoch survive. *)
