(** Minimal JSON tree, serializer and parser.

    Deliberately dependency-free (the observability layer must not drag a
    JSON library into every consumer of the generator).  The serializer is
    deterministic: object fields are emitted in the order given, floats use
    the shortest ["%g"] rendering that parses back to the same value (so
    serialize/parse round-trips), and strings are escaped per RFC 8259.  The
    parser accepts exactly the JSON this module (and any standard writer)
    produces; it exists so tests can validate exported traces and metrics
    without external tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for humans. *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error.  Numbers without
    [.], [e] or [E] parse as [Int], everything else as [Float]. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to the first occurrence of [k];
    [None] for missing keys or non-objects. *)

val to_float : t -> float option
(** Numeric accessor: [Int] and [Float] both convert. *)

val pp : Format.formatter -> t -> unit
