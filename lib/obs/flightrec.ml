type entry = {
  seq : int;
  request : string;
  key : string;
  expr : string;
  strategy : string option;
  error : string option;
  timings : (string * float) list;
}

type t = {
  lock : Mutex.t;
  mutable slots : entry option array;
      (* slot for record [seq] is [seq mod capacity] *)
  mutable next_seq : int;
}

let create ?(capacity = 128) () =
  {
    lock = Mutex.create ();
    slots = Array.make (max 1 capacity) None;
    next_seq = 0;
  }

let global = create ()

let capacity t = Array.length t.slots

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record ?(recorder = global) ?(key = "") ?(expr = "") ?strategy ?error
    ?(timings = []) request =
  locked recorder (fun () ->
      let seq = recorder.next_seq in
      recorder.next_seq <- seq + 1;
      recorder.slots.(seq mod capacity recorder) <-
        Some { seq; request; key; expr; strategy; error; timings })

let entries_unlocked t =
  let cap = capacity t in
  let first = max 0 (t.next_seq - cap) in
  List.filter_map
    (fun seq -> t.slots.(seq mod cap))
    (List.init (t.next_seq - first) (fun k -> first + k))

let entries t = locked t (fun () -> entries_unlocked t)

let set_capacity ?(recorder = global) n =
  let n = max 1 n in
  locked recorder (fun () ->
      if n <> capacity recorder then begin
        (* Re-home the retained suffix oldest-first: on a shrink, newer
           entries land on the same slots last and win, so the ring keeps
           exactly the most recent [n] records and [seq] numbering (hence
           the eviction-gap story) is undisturbed. *)
        let retained = entries_unlocked recorder in
        recorder.slots <- Array.make n None;
        List.iter (fun e -> recorder.slots.(e.seq mod n) <- Some e) retained
      end)

let recorded t = locked t (fun () -> t.next_seq)

let clear t =
  locked t (fun () ->
      Array.fill t.slots 0 (capacity t) None;
      t.next_seq <- 0)

let entry_to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("request", Json.String e.request);
       ("key", Json.String e.key);
       ("expr", Json.String e.expr);
     ]
    @ (match e.strategy with
      | Some s -> [ ("strategy", Json.String s) ]
      | None -> [])
    @ (match e.error with Some m -> [ ("error", Json.String m) ] | None -> [])
    @
    match e.timings with
    | [] -> []
    | ts ->
        [ ("timings", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) ts)) ]
    )

let to_jsonl es =
  String.concat "" (List.map (fun e -> Json.to_string (entry_to_json e) ^ "\n") es)

let dump ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl (entries t)))
