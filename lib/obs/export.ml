let value_to_json : Trace.value -> Json.t = function
  | Trace.Bool b -> Json.Bool b
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.String s -> Json.String s

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let value_to_string : Trace.value -> string = function
  | Trace.Bool b -> string_of_bool b
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%.6g" f
  | Trace.String s -> s

let args_to_string = function
  | [] -> ""
  | args ->
      "  ("
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args)
      ^ ")"

let to_text events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Span { name; start_us; dur_us; depth; args; _ } ->
          Printf.bprintf buf "%s%-*s %10.3f ms @ %.3f ms%s\n"
            (String.make (2 * depth) ' ')
            (max 1 (32 - (2 * depth)))
            name (dur_us /. 1e3) (start_us /. 1e3) (args_to_string args)
      | Trace.Instant { name; ts_us; args; _ } ->
          Printf.bprintf buf "* %-30s            @ %.3f ms%s\n" name
            (ts_us /. 1e3) (args_to_string args)
      | Trace.Counter { name; ts_us; value } ->
          Printf.bprintf buf "# %-30s = %-8.6g @ %.3f ms\n" name value
            (ts_us /. 1e3))
    events;
  Buffer.contents buf

let event_to_json ev =
  match ev with
  | Trace.Span { name; cat; start_us; dur_us; depth; args } ->
      Json.Obj
        [
          ("type", Json.String "span");
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ts_us", Json.Float start_us);
          ("dur_us", Json.Float dur_us);
          ("depth", Json.Int depth);
          ("args", args_to_json args);
        ]
  | Trace.Instant { name; cat; ts_us; args } ->
      Json.Obj
        [
          ("type", Json.String "instant");
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ts_us", Json.Float ts_us);
          ("args", args_to_json args);
        ]
  | Trace.Counter { name; ts_us; value } ->
      Json.Obj
        [
          ("type", Json.String "counter");
          ("name", Json.String name);
          ("ts_us", Json.Float ts_us);
          ("value", Json.Float value);
        ]

let to_jsonl events =
  String.concat ""
    (List.map (fun ev -> Json.to_string (event_to_json ev) ^ "\n") events)

let chrome_event ev =
  let common name cat ts =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ts", Json.Float ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  match ev with
  | Trace.Span { name; cat; start_us; dur_us; args; _ } ->
      Json.Obj
        (common name cat start_us
        @ [
            ("ph", Json.String "X");
            ("dur", Json.Float dur_us);
            ("args", args_to_json args);
          ])
  | Trace.Instant { name; cat; ts_us; args } ->
      Json.Obj
        (common name cat ts_us
        @ [
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("args", args_to_json args);
          ])
  | Trace.Counter { name; ts_us; value } ->
      Json.Obj
        (common name "counter" ts_us
        @ [
            ("ph", Json.String "C");
            ("args", Json.Obj [ ("value", Json.Float value) ]);
          ])

let to_chrome events =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map chrome_event events));
         ("displayTimeUnit", Json.String "ms");
       ])

let write_chrome ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome events))
