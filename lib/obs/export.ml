let value_to_json : Trace.value -> Json.t = function
  | Trace.Bool b -> Json.Bool b
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.String s -> Json.String s

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let value_to_string : Trace.value -> string = function
  | Trace.Bool b -> string_of_bool b
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%.6g" f
  | Trace.String s -> s

let args_to_string = function
  | [] -> ""
  | args ->
      "  ("
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args)
      ^ ")"

let to_text events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Span { name; start_us; dur_us; depth; args; _ } ->
          Printf.bprintf buf "%s%-*s %10.3f ms @ %.3f ms%s\n"
            (String.make (2 * depth) ' ')
            (max 1 (32 - (2 * depth)))
            name (dur_us /. 1e3) (start_us /. 1e3) (args_to_string args)
      | Trace.Instant { name; ts_us; args; _ } ->
          Printf.bprintf buf "* %-30s            @ %.3f ms%s\n" name
            (ts_us /. 1e3) (args_to_string args)
      | Trace.Counter { name; ts_us; value; _ } ->
          Printf.bprintf buf "# %-30s = %-8.6g @ %.3f ms\n" name value
            (ts_us /. 1e3))
    events;
  Buffer.contents buf

let event_to_json ev =
  match ev with
  | Trace.Span { name; cat; start_us; dur_us; depth; track; args } ->
      Json.Obj
        [
          ("type", Json.String "span");
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ts_us", Json.Float start_us);
          ("dur_us", Json.Float dur_us);
          ("depth", Json.Int depth);
          ("track", Json.Int track);
          ("args", args_to_json args);
        ]
  | Trace.Instant { name; cat; ts_us; track; args } ->
      Json.Obj
        [
          ("type", Json.String "instant");
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ts_us", Json.Float ts_us);
          ("track", Json.Int track);
          ("args", args_to_json args);
        ]
  | Trace.Counter { name; ts_us; track; value } ->
      Json.Obj
        [
          ("type", Json.String "counter");
          ("name", Json.String name);
          ("ts_us", Json.Float ts_us);
          ("track", Json.Int track);
          ("value", Json.Float value);
        ]

let to_jsonl events =
  String.concat ""
    (List.map (fun ev -> Json.to_string (event_to_json ev) ^ "\n") events)

(* Each recording domain gets its own Chrome thread: tid = track + 1
   (track numbers are assigned by the deterministic event sequence, see
   {!Trace}), so multi-domain pool traces render as separate, correctly
   nested rows in Perfetto instead of one interleaved row. *)
let tid_of_track track = track + 1

let chrome_event ev =
  let common name cat ts track =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ts", Json.Float ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int (tid_of_track track));
    ]
  in
  match ev with
  | Trace.Span { name; cat; start_us; dur_us; track; args; _ } ->
      Json.Obj
        (common name cat start_us track
        @ [
            ("ph", Json.String "X");
            ("dur", Json.Float dur_us);
            ("args", args_to_json args);
          ])
  | Trace.Instant { name; cat; ts_us; track; args } ->
      Json.Obj
        (common name cat ts_us track
        @ [
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("args", args_to_json args);
          ])
  | Trace.Counter { name; ts_us; track; value } ->
      Json.Obj
        (common name "counter" ts_us track
        @ [
            ("ph", Json.String "C");
            ("args", Json.Obj [ ("value", Json.Float value) ]);
          ])

(* One thread_name metadata record per track so Perfetto labels the rows. *)
let thread_metadata events =
  let tracks =
    List.sort_uniq Int.compare
      (List.map
         (function
           | Trace.Span { track; _ }
           | Trace.Instant { track; _ }
           | Trace.Counter { track; _ } ->
               track)
         events)
  in
  List.map
    (fun track ->
      Json.Obj
        [
          ("name", Json.String "thread_name");
          ("ph", Json.String "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int (tid_of_track track));
          ( "args",
            Json.Obj
              [
                ( "name",
                  Json.String
                    (if track = 0 then "main" else Printf.sprintf "worker-%d" track)
                );
              ] );
        ])
    tracks

let request_of ev =
  match
    List.assoc_opt "request" (Trace.event_args ev)
  with
  | Some (Trace.String id) -> Some id
  | _ -> None

(* Flow events binding one request's spans — which may sit on different
   tracks when the pool fanned the request's work out — into a single
   connected tree (Perfetto draws the arrows).  Flow ids are assigned by
   first appearance of the request id in the (deterministic) event list. *)
let request_flows events =
  let order = ref [] and table = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match (ev, request_of ev) with
      | Trace.Span { start_us; track; _ }, Some id ->
          let spans =
            match Hashtbl.find_opt table id with
            | Some l -> l
            | None ->
                order := id :: !order;
                []
          in
          Hashtbl.replace table id ((start_us, track) :: spans)
      | _ -> ())
    events;
  List.concat
    (List.mapi
       (fun k id ->
         match List.rev (Hashtbl.find table id) with
         | [] | [ _ ] -> []  (* a single-span request needs no flow *)
         | spans ->
             let last = List.length spans - 1 in
             List.mapi
               (fun i (ts, track) ->
                 let ph = if i = 0 then "s" else if i = last then "f" else "t" in
                 Json.Obj
                   ([
                      ("name", Json.String "request");
                      ("cat", Json.String "request");
                      ("ph", Json.String ph);
                      ("id", Json.Int (k + 1));
                      ("ts", Json.Float ts);
                      ("pid", Json.Int 1);
                      ("tid", Json.Int (tid_of_track track));
                      ("args", Json.Obj [ ("request", Json.String id) ]);
                    ]
                   @ if ph = "f" then [ ("bp", Json.String "e") ] else []))
               spans)
       (List.rev !order))

let to_chrome events =
  Json.to_string
    (Json.Obj
       [
         ( "traceEvents",
           Json.List
             (thread_metadata events
             @ List.map chrome_event events
             @ request_flows events) );
         ("displayTimeUnit", Json.String "ms");
       ])

let write_chrome ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome events))
