type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type args = (string * value) list

type event =
  | Span of {
      name : string;
      cat : string;
      start_us : float;
      dur_us : float;
      depth : int;
      args : args;
    }
  | Instant of { name : string; cat : string; ts_us : float; args : args }
  | Counter of { name : string; ts_us : float; value : float }

type open_span = {
  oseq : int;
  oname : string;
  ocat : string;
  ostart : float;  (* µs, relative to epoch *)
  odepth : int;
  mutable oargs : args;
}

type t = {
  clock : unit -> float;
  lock : Mutex.t;
  mutable epoch : float option;  (* clock value of the first event *)
  mutable next_seq : int;
  mutable stack : open_span list;  (* innermost first *)
  mutable recorded : (int * event) list;  (* (begin seq, event), newest first *)
}

let make ?(clock = Sys.time) () =
  {
    clock;
    lock = Mutex.create ();
    epoch = None;
    next_seq = 0;
    stack = [];
    recorded = [];
  }

let ambient : t option ref = ref None
let install t = ambient := Some t
let uninstall () = ambient := None
let installed () = !ambient
let enabled () = Option.is_some !ambient

let with_installed t f =
  let saved = !ambient in
  ambient := Some t;
  Fun.protect ~finally:(fun () -> ambient := saved) f

let resolve explicit = match explicit with Some _ -> explicit | None -> !ambient

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Both below assume [t.lock] is held. *)
let now_us t =
  let raw = t.clock () in
  let epoch =
    match t.epoch with
    | Some e -> e
    | None ->
        t.epoch <- Some raw;
        raw
  in
  (raw -. epoch) *. 1e6

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let begin_span t ~cat ~args name =
  locked t (fun () ->
      let span =
        {
          oseq = fresh_seq t;
          oname = name;
          ocat = cat;
          ostart = now_us t;
          odepth = List.length t.stack;
          oargs = args;
        }
      in
      t.stack <- span :: t.stack;
      span)

let end_span t span =
  locked t (fun () ->
      (* Close any spans the caller leaked below this one, then this one. *)
      let rec unwind = function
        | [] -> []
        | s :: rest ->
            let ev =
              Span
                {
                  name = s.oname;
                  cat = s.ocat;
                  start_us = s.ostart;
                  dur_us = Float.max 0.0 (now_us t -. s.ostart);
                  depth = s.odepth;
                  args = s.oargs;
                }
            in
            t.recorded <- (s.oseq, ev) :: t.recorded;
            if s == span then rest else unwind rest
      in
      t.stack <- unwind t.stack)

let with_span ?t ?(cat = "cogent") ?(args = []) name f =
  match resolve t with
  | None -> f ()
  | Some t ->
      let span = begin_span t ~cat ~args name in
      Fun.protect ~finally:(fun () -> end_span t span) f

let add_args ?t args =
  match resolve t with
  | None -> ()
  | Some t ->
      locked t (fun () ->
          match t.stack with
          | [] -> ()
          | span :: _ -> span.oargs <- span.oargs @ args)

let instant ?t ?(cat = "cogent") ?(args = []) name =
  match resolve t with
  | None -> ()
  | Some t ->
      locked t (fun () ->
          let seq = fresh_seq t in
          t.recorded <-
            (seq, Instant { name; cat; ts_us = now_us t; args }) :: t.recorded)

let counter ?t name value =
  match resolve t with
  | None -> ()
  | Some t ->
      locked t (fun () ->
          let seq = fresh_seq t in
          t.recorded <- (seq, Counter { name; ts_us = now_us t; value }) :: t.recorded)

let events t =
  locked t (fun () ->
      List.sort (fun (a, _) (b, _) -> Int.compare a b) t.recorded
      |> List.map snd)

let clear t = locked t (fun () -> t.recorded <- [])
