type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type args = (string * value) list

type event =
  | Span of {
      name : string;
      cat : string;
      start_us : float;
      dur_us : float;
      depth : int;
      track : int;
      args : args;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      track : int;
      args : args;
    }
  | Counter of { name : string; ts_us : float; track : int; value : float }

let event_args = function
  | Span { args; _ } | Instant { args; _ } -> args
  | Counter _ -> []

type open_span = {
  oseq : int;
  oname : string;
  ocat : string;
  ostart : float;  (* µs, relative to epoch *)
  odepth : int;
  otrack : int;
  mutable oargs : args;
}

type t = {
  id : int;  (* key for the per-domain span stacks *)
  clock : unit -> float;
  lock : Mutex.t;
  mutable epoch : float option;  (* clock value of the first event *)
  mutable next_seq : int;
  mutable next_track : int;
  mutable recorded : (int * event) list;  (* (begin seq, event), newest first *)
}

let next_id = Atomic.make 0

let make ?(clock = Sys.time) () =
  {
    id = Atomic.fetch_and_add next_id 1;
    clock;
    lock = Mutex.create ();
    epoch = None;
    next_seq = 0;
    next_track = 0;
    recorded = [];
  }

type request = { req_id : string; req_attrs : args }

(* Domain-local tracing state: the ambient context, the ambient request
   scope, and, per context, this domain's stack of open spans plus its
   track number.  Span *stacks* are domain-local (each domain nests its
   own spans), while the recorded-event sink, the sequence counter and
   the track counter live in [t] under its mutex — merging every
   domain's events by sequence number.  Tracks are handed out in the
   order domains first record into [t] (i.e. by the deterministic event
   sequence, never [Domain.self], whose numbering depends on how many
   pools were created before). *)
type dls_state = {
  mutable ambient : t option;
  mutable request : request option;
  stacks : (int, open_span list ref) Hashtbl.t;
  tracks : (int, int) Hashtbl.t;
}

let dls_key : dls_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        ambient = None;
        request = None;
        stacks = Hashtbl.create 4;
        tracks = Hashtbl.create 4;
      })

let install t = (Domain.DLS.get dls_key).ambient <- Some t
let uninstall () = (Domain.DLS.get dls_key).ambient <- None
let installed () = (Domain.DLS.get dls_key).ambient

(* The single-domain fast path: one DLS read and a field load — no
   allocation, no locking. *)
let enabled () = Option.is_some (Domain.DLS.get dls_key).ambient

let with_installed t f =
  let state = Domain.DLS.get dls_key in
  let saved = state.ambient in
  state.ambient <- Some t;
  Fun.protect ~finally:(fun () -> state.ambient <- saved) f

(* Full ambient state (context + request scope), for runtimes that move
   work between domains — [Tc_par.Pool] captures it on the submitting
   domain and re-installs it around items run on workers. *)
type ambient = { amb_t : t option; amb_req : request option }

let capture () =
  let state = Domain.DLS.get dls_key in
  { amb_t = state.ambient; amb_req = state.request }

let with_ambient amb f =
  let state = Domain.DLS.get dls_key in
  let saved_t = state.ambient and saved_r = state.request in
  state.ambient <- amb.amb_t;
  state.request <- amb.amb_req;
  Fun.protect
    ~finally:(fun () ->
      state.ambient <- saved_t;
      state.request <- saved_r)
    f

let resolve explicit =
  match explicit with Some _ -> explicit | None -> installed ()

let current_request () =
  match (Domain.DLS.get dls_key).request with
  | Some r -> Some r.req_id
  | None -> None

let stack_of t =
  let state = Domain.DLS.get dls_key in
  match Hashtbl.find_opt state.stacks t.id with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace state.stacks t.id s;
      s

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Assumes [t.lock] is held. *)
let now_us t =
  let raw = t.clock () in
  let epoch =
    match t.epoch with
    | Some e -> e
    | None ->
        t.epoch <- Some raw;
        raw
  in
  (raw -. epoch) *. 1e6

(* Assumes [t.lock] is held. *)
let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* This domain's track in [t], assigned on first use.  Assumes [t.lock]
   is held (the counter lives in [t]); the per-domain cache makes every
   later lookup lock-free in practice (still under the caller's lock). *)
let track_of t =
  let state = Domain.DLS.get dls_key in
  match Hashtbl.find_opt state.tracks t.id with
  | Some k -> k
  | None ->
      let k = t.next_track in
      t.next_track <- k + 1;
      Hashtbl.replace state.tracks t.id k;
      k

(* Stamp the ambient request id onto an event's args so every span and
   instant recorded inside a request scope — on any domain — is
   attributable to it. *)
let stamp_request args =
  match (Domain.DLS.get dls_key).request with
  | None -> args
  | Some r -> ("request", String r.req_id) :: args

let begin_span t ~cat ~args name =
  let stack = stack_of t in
  let args = stamp_request args in
  let span =
    locked t (fun () ->
        {
          oseq = fresh_seq t;
          oname = name;
          ocat = cat;
          ostart = now_us t;
          odepth = List.length !stack;
          otrack = track_of t;
          oargs = args;
        })
  in
  stack := span :: !stack;
  span

let end_span t span =
  let stack = stack_of t in
  locked t (fun () ->
      (* Close any spans the caller leaked below this one, then this one. *)
      let rec unwind = function
        | [] -> []
        | s :: rest ->
            let ev =
              Span
                {
                  name = s.oname;
                  cat = s.ocat;
                  start_us = s.ostart;
                  dur_us = Float.max 0.0 (now_us t -. s.ostart);
                  depth = s.odepth;
                  track = s.otrack;
                  args = s.oargs;
                }
            in
            t.recorded <- (s.oseq, ev) :: t.recorded;
            if s == span then rest else unwind rest
      in
      stack := unwind !stack)

let with_span ?t ?(cat = "cogent") ?(args = []) name f =
  match resolve t with
  | None -> f ()
  | Some t ->
      let span = begin_span t ~cat ~args name in
      Fun.protect ~finally:(fun () -> end_span t span) f

let with_request ?t ~id ?(attrs = []) name f =
  match resolve t with
  | None -> f ()
  | Some t ->
      let state = Domain.DLS.get dls_key in
      let saved = state.request in
      state.request <- Some { req_id = id; req_attrs = attrs };
      let span = begin_span t ~cat:"request" ~args:attrs name in
      Fun.protect
        ~finally:(fun () ->
          end_span t span;
          state.request <- saved)
        f

let add_args ?t args =
  match resolve t with
  | None -> ()
  | Some t -> (
      (* The innermost open span of *this* domain; arg mutation needs no
         lock because a span is only touched by the domain that opened
         it until [end_span] publishes it. *)
      match !(stack_of t) with
      | [] -> ()
      | span :: _ -> span.oargs <- span.oargs @ args)

let instant ?t ?(cat = "cogent") ?(args = []) name =
  match resolve t with
  | None -> ()
  | Some t ->
      let args = stamp_request args in
      locked t (fun () ->
          let seq = fresh_seq t in
          t.recorded <-
            (seq, Instant { name; cat; ts_us = now_us t; track = track_of t; args })
            :: t.recorded)

let counter ?t name value =
  match resolve t with
  | None -> ()
  | Some t ->
      locked t (fun () ->
          let seq = fresh_seq t in
          t.recorded <-
            (seq, Counter { name; ts_us = now_us t; track = track_of t; value })
            :: t.recorded)

let events t =
  locked t (fun () ->
      List.sort (fun (a, _) (b, _) -> Int.compare a b) t.recorded
      |> List.map snd)

let clear t = locked t (fun () -> t.recorded <- [])
