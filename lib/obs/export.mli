(** Trace exporters: human-readable text, JSON-lines, Chrome [trace_event].

    All three are pure functions of {!Trace.events} output, so a trace can
    be exported to several formats (or re-exported after more events are
    recorded).  Serialization is deterministic given deterministic event
    timestamps. *)

val to_text : Trace.event list -> string
(** Indented span tree with durations in milliseconds, plus instants and
    counter samples, in creation order. *)

val to_jsonl : Trace.event list -> string
(** One self-describing JSON object per line ([{"type":"span",...}]);
    every line parses with {!Json.parse}. *)

val to_chrome : Trace.event list -> string
(** Chrome [trace_event] JSON (the object form, [{"traceEvents": [...]}]) —
    complete events ([ph:"X"]) for spans, instant events ([ph:"i"]) and
    counter events ([ph:"C"]).  Every recording domain renders as its own
    thread ([tid] = the event's {!Trace.event} track + 1, with a
    [thread_name] metadata record), so pool fan-outs appear as separate,
    correctly nested rows.  Spans carrying a [("request", String id)]
    argument (see {!Trace.with_request}) are additionally bound into a
    flow ([ph:"s"/"t"/"f"]) per request id, connecting one request's
    spans across tracks into a single tree.  Load in [chrome://tracing]
    or [https://ui.perfetto.dev]. *)

val write_chrome : path:string -> Trace.event list -> unit
(** [to_chrome] straight to a file. *)
