type hist = {
  bounds : float array;  (* strictly increasing, last is infinity *)
  counts : int array;  (* per-bucket (non-cumulative) *)
  mutable sum : float;
  mutable n : int;
}

type instrument =
  | Icounter of float ref
  | Igauge of float ref
  | Ihist of hist

type t = { lock : Mutex.t; table : (string, instrument) Hashtbl.t }

type counter = { c_lock : Mutex.t; c_cell : float ref }
type gauge = { g_lock : Mutex.t; g_cell : float ref }
type histogram = { h_lock : Mutex.t; h : hist }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }
let global = create ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Ihist _ -> "histogram"

let register registry name make match_ =
  locked registry.lock (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some existing -> (
          match match_ existing with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_name existing)))
      | None ->
          let instrument, v = make () in
          Hashtbl.add registry.table name instrument;
          v)

let counter ?(registry = global) name =
  register registry name
    (fun () ->
      let cell = ref 0.0 in
      (Icounter cell, { c_lock = registry.lock; c_cell = cell }))
    (function
      | Icounter cell -> Some { c_lock = registry.lock; c_cell = cell }
      | _ -> None)

let add c by = locked c.c_lock (fun () -> c.c_cell := !(c.c_cell) +. by)
let incr ?(by = 1) c = add c (float_of_int by)

let gauge ?(registry = global) name =
  register registry name
    (fun () ->
      let cell = ref 0.0 in
      (Igauge cell, { g_lock = registry.lock; g_cell = cell }))
    (function
      | Igauge cell -> Some { g_lock = registry.lock; g_cell = cell }
      | _ -> None)

let set g v = locked g.g_lock (fun () -> g.g_cell := v)

let default_buckets =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6 ]

let histogram ?(registry = global) ?(buckets = default_buckets) name =
  let bounds =
    let sorted = List.sort_uniq Float.compare buckets in
    Array.of_list (sorted @ [ Float.infinity ])
  in
  register registry name
    (fun () ->
      let h =
        { bounds; counts = Array.make (Array.length bounds) 0; sum = 0.0; n = 0 }
      in
      (Ihist h, { h_lock = registry.lock; h }))
    (function
      | Ihist h -> Some { h_lock = registry.lock; h }
      | _ -> None)

let observe hg v =
  locked hg.h_lock (fun () ->
      let h = hg.h in
      let rec slot k =
        if v <= h.bounds.(k) || k = Array.length h.bounds - 1 then k
        else slot (k + 1)
      in
      let k = slot 0 in
      h.counts.(k) <- h.counts.(k) + 1;
      h.sum <- h.sum +. v;
      h.n <- h.n + 1)

type item =
  | Counter_v of { name : string; value : float }
  | Gauge_v of { name : string; value : float }
  | Histogram_v of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
    }

let snapshot registry =
  locked registry.lock (fun () ->
      Hashtbl.fold
        (fun name instrument acc ->
          let item =
            match instrument with
            | Icounter cell -> Counter_v { name; value = !cell }
            | Igauge cell -> Gauge_v { name; value = !cell }
            | Ihist h ->
                (* Cumulative counts per bound, Prometheus-style. *)
                let acc_count = ref 0 in
                let buckets =
                  Array.to_list
                    (Array.mapi
                       (fun k bound ->
                         acc_count := !acc_count + h.counts.(k);
                         (bound, !acc_count))
                       h.bounds)
                in
                Histogram_v { name; count = h.n; sum = h.sum; buckets }
          in
          item :: acc)
        registry.table []
      |> List.sort (fun a b ->
             let name = function
               | Counter_v { name; _ } | Gauge_v { name; _ }
               | Histogram_v { name; _ } ->
                   name
             in
             String.compare (name a) (name b)))

let value registry name =
  locked registry.lock (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (Icounter cell) | Some (Igauge cell) -> Some !cell
      | Some (Ihist h) -> Some h.sum
      | None -> None)

let reset registry =
  locked registry.lock (fun () ->
      Hashtbl.iter
        (fun _ instrument ->
          match instrument with
          | Icounter cell | Igauge cell -> cell := 0.0
          | Ihist h ->
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.sum <- 0.0;
              h.n <- 0)
        registry.table)

(* ---- quantiles: a pure function of the snapshot ---- *)

let quantile item q =
  match item with
  | Histogram_v { count; buckets; _ } when count > 0 ->
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = q *. float_of_int count in
      let lower0 =
        match buckets with
        | (b, _) :: _ when Float.is_finite b -> Float.min 0.0 b
        | _ -> 0.0
      in
      (* First bucket whose cumulative count reaches the target rank;
         linear interpolation inside it (Prometheus histogram_quantile
         semantics).  The overflow bucket has no upper bound, so it
         reports the highest finite bound instead. *)
      let rec go lower prev = function
        | [] -> None
        | (bound, cum) :: rest ->
            if float_of_int cum >= rank then
              if Float.is_finite bound then
                Some
                  (lower
                  +. (bound -. lower)
                     *. ((rank -. float_of_int prev)
                        /. float_of_int (cum - prev)))
              else Some lower
            else go (if Float.is_finite bound then bound else lower) cum rest
      in
      if rank <= 0.0 then Some lower0 else go lower0 0 buckets
  | _ -> None

let summary_points = [ 0.5; 0.9; 0.99 ]

let quantile_summary item =
  List.filter_map
    (fun q -> Option.map (fun v -> (q, v)) (quantile item q))
    summary_points

(* ---- Prometheus text exposition ---- *)

let prometheus_name name =
  let s =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
      name
  in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

(* Shortest decimal form that parses back to exactly [f] — the same
   convention as {!Json}, so deterministic values expose to deterministic
   bytes. *)
let prometheus_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_prometheus items =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Counter_v { name; value } ->
          let n = prometheus_name name in
          Printf.bprintf buf "# TYPE %s counter\n%s %s\n" n n
            (prometheus_float value)
      | Gauge_v { name; value } ->
          let n = prometheus_name name in
          Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n
            (prometheus_float value)
      | Histogram_v { name; count; sum; buckets } ->
          let n = prometheus_name name in
          Printf.bprintf buf "# TYPE %s histogram\n" n;
          List.iter
            (fun (bound, cum) ->
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n
                (prometheus_float bound) cum)
            buckets;
          Printf.bprintf buf "%s_sum %s\n" n (prometheus_float sum);
          Printf.bprintf buf "%s_count %d\n" n count)
    items;
  Buffer.contents buf

let to_json items =
  Json.Obj
    (List.map
       (function
         | Counter_v { name; value } ->
             (name, Json.Obj [ ("type", Json.String "counter");
                               ("value", Json.Float value) ])
         | Gauge_v { name; value } ->
             (name, Json.Obj [ ("type", Json.String "gauge");
                               ("value", Json.Float value) ])
         | Histogram_v { name; count; sum; buckets } ->
             ( name,
               Json.Obj
                 [
                   ("type", Json.String "histogram");
                   ("count", Json.Int count);
                   ("sum", Json.Float sum);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (bound, c) ->
                            Json.Obj
                              [
                                ("le", Json.Float bound); ("count", Json.Int c);
                              ])
                          buckets) );
                 ] ))
       items)

let pp fmt items =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun k item ->
      if k > 0 then Format.fprintf fmt "@,";
      match item with
      | Counter_v { name; value } ->
          Format.fprintf fmt "%-40s %12.0f" name value
      | Gauge_v { name; value } -> Format.fprintf fmt "%-40s %12.3f" name value
      | Histogram_v { name; count; sum; _ } as h ->
          Format.fprintf fmt "%-40s n=%d sum=%.6g" name count sum;
          List.iter
            (fun (q, v) -> Format.fprintf fmt " p%g=%.4g" (q *. 100.0) v)
            (quantile_summary h))
    items;
  Format.fprintf fmt "@]"
