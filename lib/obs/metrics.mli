(** Metrics registry: named counters, gauges and histograms.

    Registration is idempotent (the same name returns the same instrument)
    and updates are mutex-protected, so library code can register at module
    scope and update from anywhere.  Snapshots are deterministic — items
    sorted by name, values exactly as accumulated — which is what makes
    metrics assertable in tests and printable in benchmark reports.

    A process-wide {!global} registry backs the pipeline instrumentation
    (cache hits, prune rejections, driver generations, ...); isolated
    registries via {!create} serve tests. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val global : t
(** The process-wide registry the generation pipeline reports into. *)

val counter : ?registry:t -> string -> counter
(** Register (or retrieve) a monotonically increasing counter.  Default
    registry: {!global}.
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val add : counter -> float -> unit

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit

val histogram : ?registry:t -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds of cumulative buckets (an implicit [+inf]
    bucket is always appended).  Default buckets are powers of ten from
    [1e-6] to [1e6]. *)

val observe : histogram -> float -> unit

type item =
  | Counter_v of { name : string; value : float }
  | Gauge_v of { name : string; value : float }
  | Histogram_v of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** (upper bound, cumulative count); last bound is [infinity] *)
    }

val snapshot : t -> item list
(** All instruments, sorted by name. *)

val value : t -> string -> float option
(** Current value of a counter or gauge (histograms: their [sum]). *)

val reset : t -> unit
(** Zero every instrument; registrations survive. *)

val to_json : item list -> Json.t
val pp : Format.formatter -> item list -> unit
