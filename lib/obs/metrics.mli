(** Metrics registry: named counters, gauges and histograms.

    Registration is idempotent (the same name returns the same instrument)
    and updates are mutex-protected, so library code can register at module
    scope and update from anywhere.  Snapshots are deterministic — items
    sorted by name, values exactly as accumulated — which is what makes
    metrics assertable in tests and printable in benchmark reports.

    A process-wide {!global} registry backs the pipeline instrumentation
    (cache hits, prune rejections, driver generations, ...); isolated
    registries via {!create} serve tests. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val global : t
(** The process-wide registry the generation pipeline reports into. *)

val counter : ?registry:t -> string -> counter
(** Register (or retrieve) a monotonically increasing counter.  Default
    registry: {!global}.
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val add : counter -> float -> unit

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit

val histogram : ?registry:t -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds of cumulative buckets (an implicit [+inf]
    bucket is always appended).  Default buckets are powers of ten from
    [1e-6] to [1e6]. *)

val observe : histogram -> float -> unit

type item =
  | Counter_v of { name : string; value : float }
  | Gauge_v of { name : string; value : float }
  | Histogram_v of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** (upper bound, cumulative count); last bound is [infinity] *)
    }

val snapshot : t -> item list
(** All instruments, sorted by name. *)

val value : t -> string -> float option
(** Current value of a counter or gauge (histograms: their [sum]). *)

val reset : t -> unit
(** Zero every instrument; registrations survive. *)

val quantile : item -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([0..1]) of a
    [Histogram_v] by linear interpolation inside the bucket containing
    the target rank (Prometheus [histogram_quantile] semantics; the
    overflow bucket reports the highest finite bound).  A {e pure}
    function of the snapshot, hence deterministic whenever the recorded
    counts are.  [None] for non-histograms and empty histograms. *)

val summary_points : float list
(** The standard latency summary quantiles: [0.5; 0.9; 0.99]. *)

val quantile_summary : item -> (float * float) list
(** [(q, quantile item q)] for every {!summary_points} entry; [[]] for
    non-histograms and empty histograms. *)

val to_prometheus : item list -> string
(** Prometheus text exposition (version 0.0.4) of a snapshot: one
    [# TYPE] header per instrument, [_bucket{le="..."}]/[_sum]/[_count]
    series for histograms.  Names are sanitized to the Prometheus
    charset (every other character becomes [_], e.g.
    [cogent.serve.requests] exposes as [cogent_serve_requests]); items
    keep the snapshot's name order and floats use the shortest exact
    decimal form, so the output is byte-deterministic whenever the
    snapshot is.  Wall-clock-derived instruments are named with a
    [wall] component so deterministic consumers (the CI replay gate)
    can filter them out. *)

val to_json : item list -> Json.t

val pp : Format.formatter -> item list -> unit
(** Human-readable table; histograms include their {!quantile_summary}
    as [p50]/[p90]/[p99] columns. *)
