type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- serialization ---- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    (* Shortest decimal form that parses back to exactly [f], so
       serialize/parse round-trips bit-exactly. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Keep floats recognizably floats on re-parse. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec write ~indent ~level buf j =
  let nl lvl =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * lvl) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, value) ->
          if k > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape_into buf name;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf value)
        fields;
      nl level;
      Buffer.add_char buf '}'

let render ~indent j =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf j;
  Buffer.contents buf

let to_string j = render ~indent:false j
let to_string_pretty j = render ~indent:true j
let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ---- parsing ---- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    (* Encode one Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              let code = hex4 () in
              let code =
                (* Surrogate pair. *)
                if code >= 0xD800 && code <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                end
                else code
              in
              utf8_of_code buf code;
              go ()
          | _ -> error "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" then error "expected number";
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, value) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, value) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (value :: acc)
            | Some ']' -> advance (); List (List.rev (value :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
