(** Flight recorder: a fixed-size ring buffer of per-request summaries.

    The post-mortem story for a long-lived serving process: every request
    appends one small, allocation-bounded {!entry} (id, cache key,
    dispatch decision, error, timings); the ring retains the most recent
    [capacity] of them, so when something crashes mid-batch, {!dump}
    reconstructs what the last N requests did without any tracing having
    been enabled.  Recording is mutex-protected and cheap — no clock
    reads, no I/O — so the serving layer records unconditionally.

    Entries carry a monotone [seq]; after an overwrite, {!entries} still
    returns the retained suffix oldest-first, and a gap between [seq = 0]
    and the first returned entry tells the reader how much history was
    evicted. *)

type entry = {
  seq : int;  (** monotone record number (0-based, never reused) *)
  request : string;  (** request id, e.g. ["req-007"] *)
  key : string;  (** plan-cache key ([""] if the request never got one) *)
  expr : string;
  strategy : string option;  (** dispatch decision, if one was made *)
  error : string option;
  timings : (string * float) list;  (** named durations/predictions, seconds *)
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh recorder retaining the last [capacity] (default 128, min 1)
    entries. *)

val global : t
(** The process-wide recorder the serving layer records into. *)

val capacity : t -> int

val set_capacity : ?recorder:t -> int -> unit
(** Resize the ring (min 1; default recorder: {!global}) while keeping the
    most recent [min n (List.length (entries t))] entries and the [seq]
    numbering.  How [cogent serve --flight-size N] sizes the recorder. *)

val record :
  ?recorder:t ->
  ?key:string ->
  ?expr:string ->
  ?strategy:string ->
  ?error:string ->
  ?timings:(string * float) list ->
  string ->
  unit
(** [record request] appends an entry for request id [request],
    evicting the oldest entry once the ring is full.  Default recorder:
    {!global}. *)

val entries : t -> entry list
(** The retained entries, oldest first. *)

val recorded : t -> int
(** Total entries ever recorded (≥ [List.length (entries t)]). *)

val clear : t -> unit

val to_jsonl : entry list -> string
(** One self-describing JSON object per line; optional fields are
    omitted, every line parses with {!Json.parse}. *)

val dump : path:string -> t -> unit
(** Write {!to_jsonl} of {!entries} to [path] — what
    [cogent serve --flight-dump FILE] and the CI gate artifacts use. *)
