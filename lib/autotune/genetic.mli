(** Genetic-algorithm autotuner over the unpruned configuration space,
    mirroring the tuner shipped with Tensor Comprehensions (the paper ran it
    with population 100 and 20 generations).

    Selection is by tournament, reproduction by uniform crossover plus
    point mutation, with elitism.  Every candidate evaluation "runs" the
    kernel on the simulator; the tuner records the best GFLOPS seen after
    each evaluated code version, which is exactly the x-axis of the paper's
    Fig. 8. *)

open Tc_gpu
open Tc_expr

type params = {
  population : int;
  generations : int;
  tournament : int;
  mutation_rate : float;
  elite : int;
  seed : int;
}

val default_params : params
(** population 100, generations 20, tournament 3, mutation 0.2, elite 2,
    seed 42. *)

type trace_point = {
  evaluations : int;  (** distinct code versions run so far *)
  best_gflops : float;
  current_gflops : float;  (** the version evaluated at this point *)
}

type result = {
  best : Cogent.Mapping.t;
  best_gflops : float;
  trace : trace_point list;  (** chronological; one point per candidate *)
  evaluations : int;
      (** distinct simulator calls: fitness is memoized per decoded
          mapping within a run, so re-bred duplicates cost nothing *)
  tuning_time_s : float;
      (** simulated wall-clock tuning time: the sum of every evaluated
          version's simulated runtime times the benchmarking repetitions,
          plus per-version compile time — the quantity the paper reports as
          "total tuning time ~8514 seconds" *)
}

val fitness :
  ?quality:float -> Arch.t -> Precision.t -> Problem.t -> Cogent.Mapping.t
  -> float
(** Simulated GFLOPS of one configuration, scaled by the code-quality
    factor (see {!tc_quality_factor}); 0 for hardware-infeasible points. *)

val tc_quality_factor : float
(** Residual code-quality gap of the polyhedral generator's kernels versus
    COGENT's hand-shaped schema (index-arithmetic overhead, less precise
    unrolling), applied as a multiplier on simulated throughput for
    autotuned candidates; the structural gap — no register tiling — is in
    {!Space} itself.  See DESIGN.md substitutions. *)

val tune :
  ?params:params -> ?quality:float
  -> ?eval:(Cogent.Mapping.t -> float * float)
  -> Arch.t -> Precision.t -> Problem.t -> result
(** Runs the tuner.  [eval mapping] must return [(gflops, runtime_s)] for
    one candidate; it defaults to the simulator-backed {!fitness} (scaled
    by [quality]) paired with the simulated runtime, and exists so tests
    can count or stub evaluations.  It must be pure: calls are memoized
    per mapping and may run concurrently on the domain pool.  Candidate
    generation (the [seed]-derived RNG stream) stays sequential, so the
    result is bit-identical at any job count. *)
