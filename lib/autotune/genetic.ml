
type params = {
  population : int;
  generations : int;
  tournament : int;
  mutation_rate : float;
  elite : int;
  seed : int;
}

let default_params =
  {
    population = 100;
    generations = 20;
    tournament = 3;
    mutation_rate = 0.2;
    elite = 2;
    seed = 42;
  }

type trace_point = {
  evaluations : int;
  best_gflops : float;
  current_gflops : float;
}

type result = {
  best : Cogent.Mapping.t;
  best_gflops : float;
  trace : trace_point list;
  evaluations : int;
  tuning_time_s : float;
}

let tc_quality_factor = 0.9

(* Each candidate is compiled (nvcc) and benchmarked with 3 repetitions;
   this drives the simulated total tuning time.  Pathological candidates
   are cut off by the harness's per-run timeout. *)
let compile_time_s = 4.0
let bench_repetitions = 3.0
let run_timeout_s = 1.0

let fitness ?(quality = tc_quality_factor) arch prec problem mapping =
  match Cogent.Mapping.validate problem mapping with
  | Error _ -> 0.0
  | Ok () ->
      let plan =
        Cogent.Plan.make ~problem ~mapping ~arch ~precision:prec
      in
      let r = Tc_sim.Simkernel.run plan in
      if Float.is_finite r.Tc_sim.Simkernel.gflops then
        quality *. r.Tc_sim.Simkernel.gflops
      else 0.0

let runtime_s arch prec problem mapping =
  match Cogent.Mapping.validate problem mapping with
  | Error _ -> 0.0
  | Ok () ->
      let plan = Cogent.Plan.make ~problem ~mapping ~arch ~precision:prec in
      let t = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.time_s in
      if Float.is_finite t then t else 0.0

module MMap = Map.Make (Cogent.Mapping)

let tune ?(params = default_params) ?quality ?eval arch prec problem =
  let eval =
    match eval with
    | Some f -> f
    | None ->
        fun mapping ->
          ( fitness ?quality arch prec problem mapping,
            runtime_s arch prec problem mapping )
  in
  let st = Random.State.make [| params.seed |] in
  let evaluations = ref 0 in
  let tuning_time = ref 0.0 in
  let best = ref None in
  let trace = ref [] in
  let memo = ref MMap.empty in
  (* Evaluate one batch of genomes (an initial population or the children
     of one generation).  Decoding happens sequentially; the simulator
     then runs once per distinct mapping not seen earlier in the run —
     those calls are pure, so they fan out on the domain pool — and the
     bookkeeping (counters, best, trace) commits in index order, making
     the whole record independent of the job count.  Memo hits and
     undecodable genomes still get a trace point, but only fresh
     simulator calls advance [evaluations] and the simulated clock. *)
  let evaluate_batch genomes =
    let decoded = Array.map (Space.decode problem) genomes in
    let fresh =
      let seen = ref MMap.empty in
      Array.to_list decoded
      |> List.filter_map (function
           | None -> None
           | Some m ->
               if MMap.mem m !memo || MMap.mem m !seen then None
               else (
                 seen := MMap.add m () !seen;
                 Some m))
    in
    let results = Tc_par.Pool.map eval fresh in
    let batch =
      List.fold_left2
        (fun acc m r -> MMap.add m r acc)
        MMap.empty fresh results
    in
    let fit = Array.make (Array.length genomes) 0.0 in
    Array.iteri
      (fun i d ->
        let g =
          match d with
          | None -> 0.0
          | Some mapping -> (
              match MMap.find_opt mapping !memo with
              | Some (g, _) -> g
              | None ->
                  let (g, t) as r = MMap.find mapping batch in
                  memo := MMap.add mapping r !memo;
                  incr evaluations;
                  tuning_time :=
                    !tuning_time +. compile_time_s
                    +. bench_repetitions *. Float.min run_timeout_s t;
                  (match !best with
                  | Some (_, bg) when bg >= g -> ()
                  | _ -> best := Some (mapping, g));
                  g)
        in
        let best_gflops = match !best with Some (_, g) -> g | None -> 0.0 in
        trace :=
          { evaluations = !evaluations; best_gflops; current_gflops = g }
          :: !trace;
        fit.(i) <- g)
      decoded;
    fit
  in
  let population =
    let genomes =
      Array.init params.population (fun _ -> Space.random st problem)
    in
    let fit = evaluate_batch genomes in
    Array.mapi (fun i g -> (g, fit.(i))) genomes
  in
  let by_fitness (_, a) (_, b) = Float.compare b a in
  let tournament_pick pop =
    let best = ref pop.(Random.State.int st (Array.length pop)) in
    for _ = 2 to params.tournament do
      let c = pop.(Random.State.int st (Array.length pop)) in
      if snd c > snd !best then best := c
    done;
    fst !best
  in
  let current = ref population in
  for _gen = 2 to params.generations do
    let pop = !current in
    Array.sort by_fitness pop;
    (* Breed every child first — the RNG stream stays sequential and
       identical to the pre-parallel tuner — then evaluate the batch. *)
    let children =
      Array.init
        (params.population - params.elite)
        (fun _ ->
          let a = tournament_pick pop and b = tournament_pick pop in
          let child = Space.crossover st a b in
          if Random.State.float st 1.0 < params.mutation_rate then
            Space.mutate st problem child
          else child)
    in
    let fit = evaluate_batch children in
    let next =
      Array.init params.population (fun k ->
          if k < params.elite then pop.(k)
          else (children.(k - params.elite), fit.(k - params.elite)))
    in
    current := next
  done;
  match !best with
  | None -> invalid_arg "Genetic.tune: no feasible configuration evaluated"
  | Some (mapping, gflops) ->
      {
        best = mapping;
        best_gflops = gflops;
        trace = List.rev !trace;
        evaluations = !evaluations;
        tuning_time_s = !tuning_time;
      }
