module Metrics = Tc_obs.Metrics
module Trace = Tc_obs.Trace

type t = {
  jobs : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shut : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

(* ---- pool metrics (registered lazily so the registry only shows pool
   rows once a pool actually ran something) ---- *)

let tasks_counter () = Metrics.counter "par.pool.tasks"
let batches_counter () = Metrics.counter "par.pool.batches"
let waits_counter () = Metrics.counter "par.pool.waits"
let busy_counter () = Metrics.counter "par.pool.busy_s"

(* [Sys.time] is process CPU time, so with several domains running the
   attribution overlaps; the counter is a best-effort utilization signal,
   never an output. *)
let note_busy ran dt =
  Metrics.add (tasks_counter ()) (float_of_int ran);
  Metrics.add (busy_counter ()) (Float.max 0.0 dt)

(* ---- workers ---- *)

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec await () =
      if pool.shut then None
      else if Queue.is_empty pool.queue then begin
        Condition.wait pool.nonempty pool.lock;
        await ()
      end
      else Some (Queue.pop pool.queue)
    in
    let task = await () in
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some run ->
        (* Batch helpers trap item exceptions themselves; this guard only
           keeps a broken helper from killing the worker. *)
        (try run () with _ -> ());
        loop ()
  in
  loop ()

(* ---- default pool ---- *)

let admin = Mutex.create ()
let override = ref None
let the_default : t option ref = ref None

let env_jobs () =
  Option.bind (Sys.getenv_opt "COGENT_JOBS") int_of_string_opt

let default_jobs_unlocked () =
  let j =
    match !override with
    | Some j -> j
    | None -> (
        match env_jobs () with
        | Some j -> j
        | None -> Domain.recommended_domain_count () - 1)
  in
  max 1 j

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None ->
        Mutex.lock admin;
        let j = default_jobs_unlocked () in
        Mutex.unlock admin;
        j
  in
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      shut = false;
      workers = [];
    }
  in
  if jobs > 1 then
    pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  pool.shut <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let default_jobs () =
  Mutex.lock admin;
  let j = default_jobs_unlocked () in
  Mutex.unlock admin;
  j

let default () =
  Mutex.lock admin;
  let p =
    match !the_default with
    | Some p -> p
    | None ->
        let p = create ~jobs:(default_jobs_unlocked ()) () in
        the_default := Some p;
        p
  in
  Mutex.unlock admin;
  p

let set_default_jobs j =
  Mutex.lock admin;
  override := Some (max 1 j);
  let stale =
    match !the_default with
    | Some p when p.jobs <> default_jobs_unlocked () ->
        the_default := None;
        Some p
    | _ -> None
  in
  Mutex.unlock admin;
  (* Joining outside [admin] so a straggler task calling [default ()] can
     never deadlock against us. *)
  Option.iter shutdown stale

(* ---- parallel map ---- *)

let mapi ?pool f xs =
  let pool = match pool with Some p -> p | None -> default () in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | xs when pool.jobs <= 1 || pool.shut -> List.mapi f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let failures = Array.make n None in
      let next = Atomic.make 0 in
      let m = Mutex.create () in
      let done_c = Condition.create () in
      let completed = ref 0 in
      (* Every participant — the caller and any worker that picked up a
         helper — claims item indices from the shared cursor until the
         batch is drained.  The caller claiming its own items is what
         makes nested maps deadlock-free: unclaimed work never has to
         wait for a free worker. *)
      let participate () =
        let t0 = Sys.time () in
        let ran = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else begin
            (try results.(i) <- Some (f i items.(i))
             with e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            incr ran;
            Mutex.lock m;
            incr completed;
            if !completed = n then Condition.broadcast done_c;
            Mutex.unlock m
          end
        done;
        if !ran > 0 then note_busy !ran (Sys.time () -. t0)
      in
      (* Full ambient tracing state — the installed context AND the open
         request scope — so spans recorded on worker domains land in the
         submitting domain's sink with the submitting request's id. *)
      let ambient = Trace.capture () in
      let helper () = Trace.with_ambient ambient participate in
      let helpers = min (pool.jobs - 1) (n - 1) in
      Mutex.lock pool.lock;
      if not pool.shut then begin
        for _ = 1 to helpers do
          Queue.push helper pool.queue
        done;
        Condition.broadcast pool.nonempty
      end;
      Mutex.unlock pool.lock;
      Metrics.incr (batches_counter ());
      participate ();
      Mutex.lock m;
      if !completed < n then begin
        Metrics.incr (waits_counter ());
        while !completed < n do
          Condition.wait done_c m
        done
      end;
      Mutex.unlock m;
      (* Deterministic error propagation: the lowest-indexed failure wins,
         regardless of which domain hit it first. *)
      let rec first_failure i =
        if i >= n then None
        else match failures.(i) with Some f -> Some f | None -> first_failure (i + 1)
      in
      (match first_failure 0 with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false (* all completed *))
           results)

let map ?pool f xs = mapi ?pool (fun _ x -> f x) xs

let map_fold ?pool ~map:f ~fold ~init xs =
  List.fold_left fold init (map ?pool f xs)

let fold_best ?pool ~better f xs =
  map_fold ?pool ~map:f ~init:None
    ~fold:(fun best candidate ->
      match best with
      | None -> Some candidate
      | Some incumbent ->
          if better candidate incumbent then Some candidate else best)
    xs
