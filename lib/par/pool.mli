(** A fixed pool of OCaml 5 domains for the pipeline's embarrassingly
    parallel fan-outs (cost ranking, measured refinement, autotuner
    fitness, TTGT variant scoring, per-entry bench generation).

    Zero dependencies beyond the stdlib ([Domain] + [Mutex]/[Condition] —
    no domainslib).  The design contract, which every caller in this
    repository relies on:

    {ul
    {- {b Determinism}: {!map}/{!mapi} are order-preserving and
       {!fold_best} reduces in index order, so as long as the per-item
       function is pure, results are bit-identical for every job count —
       parallelism changes wall time, never output.}
    {- {b Sequential degradation}: a pool with [jobs = 1] spawns no
       domains and runs the plain [List.map] path.}
    {- {b Exception transparency}: if items raise, the exception of the
       {e lowest-indexed} failing item is re-raised in the caller (with
       its backtrace), again independent of scheduling.}
    {- {b Re-entrancy}: an item may itself call {!map} on the same pool
       (nested fan-outs happen naturally: bench entry -> driver ->
       cost rank).  The claiming caller always helps execute its own
       batch, so nesting cannot deadlock even with zero idle workers.}
    {- {b Trace propagation}: the caller's full ambient {!Tc_obs.Trace}
       state — the installed context {e and} the open request scope
       ({!Tc_obs.Trace.with_request}) — is captured at submit time and
       re-installed around items that run on worker domains, so spans
       recorded inside a parallel section land in the same sink as
       sequential ones and stay attributed to the submitting request.}}

    Pool activity is observable in {!Tc_obs.Metrics.global}:
    [par.pool.tasks] (items executed), [par.pool.batches] (map calls
    that actually fanned out), [par.pool.waits] (times a caller blocked
    waiting for in-flight items), and [par.pool.busy_s] (best-effort
    [Sys.time] attributed to pool items). *)

type t

val create : ?jobs:int -> unit -> t
(** A pool running at most [jobs] items concurrently: the calling domain
    plus [jobs - 1] persistent worker domains.  [jobs] defaults to the
    process default (see {!default_jobs}); values below 1 are clamped to
    1.  [jobs = 1] spawns no domains. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Maps on a shut-down
    pool run sequentially. *)

val default : unit -> t
(** The process-global pool, created on first use with {!default_jobs}
    workers.  Every [?pool]-less call in the code base shares it, which
    keeps the total domain count bounded. *)

val default_jobs : unit -> int
(** The job count the default pool has (or would be created with):
    {!set_default_jobs}'s value if called, else [COGENT_JOBS] from the
    environment, else [Domain.recommended_domain_count () - 1], min 1. *)

val set_default_jobs : int -> unit
(** Override the default pool size (the CLI's [--jobs]).  If the default
    pool already exists with a different size it is shut down and
    recreated lazily. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map].  See the module contract. *)

val mapi : ?pool:t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_fold :
  ?pool:t ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** Deterministic chunked reduction: [map] runs on the pool
    (order-preserving, like {!map}) and [fold] then reduces the results
    {e sequentially in index order} on the calling domain.  As long as
    [map] is pure, the result is bit-identical at any job count — the
    fan-out shape of the streaming planner pipeline, whose per-chunk
    candidate heaps and prune tallies merge in chunk order.  {!fold_best}
    is the argmax/argmin special case. *)

val fold_best :
  ?pool:t -> better:('b -> 'b -> bool) -> ('a -> 'b) -> 'a list -> 'b option
(** [fold_best ~better f xs] evaluates [f] on every element (in
    parallel) and then reduces {e in index order}, keeping the incumbent
    unless [better candidate incumbent] — the deterministic argmax/argmin
    shape used by measured refinement and TTGT variant selection.  With a
    strict [better], ties keep the earliest element, exactly like the
    sequential left fold it replaces.  [None] iff [xs] is empty. *)
