open Tc_gpu
open Tc_expr

type t = {
  id : int;
  expr : string;
  sizes : Sizes.t;
  arch : Arch.t;
  precision : Precision.t;
}

let ( let* ) = Result.bind

let string_field name json =
  match Tc_obs.Json.member name json with
  | None -> Ok None
  | Some (Tc_obs.Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let required name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let of_line ~default ~id line =
  let* json =
    Result.map_error (fun m -> "bad JSON: " ^ m) (Tc_obs.Json.parse line)
  in
  let* expr = Result.bind (string_field "expr" json) (required "expr") in
  let* sizes_s = Result.bind (string_field "sizes" json) (required "sizes") in
  let* sizes = Sizes.parse sizes_s in
  let* arch =
    let* s = string_field "arch" json in
    match s with
    | None -> Ok default.Cogent.Ctx.arch
    | Some s -> (
        match Arch.by_name s with
        | Some a -> Ok a
        | None ->
            Error (Printf.sprintf "unknown device %S (p100|v100|a100|h100)" s))
  in
  let* precision =
    let* s = string_field "precision" json in
    match s with
    | None -> Ok default.Cogent.Ctx.precision
    | Some "fp64" | Some "double" -> Ok Precision.FP64
    | Some "fp32" | Some "float" | Some "single" -> Ok Precision.FP32
    | Some "fp16" | Some "half" -> Ok Precision.FP16
    | Some "tf32" -> Ok Precision.TF32
    | Some s ->
        Error (Printf.sprintf "unknown precision %S (fp16|tf32|fp32|fp64)" s)
  in
  Ok { id; expr; sizes; arch; precision }

let load_file ~default path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go id acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line ->
                let acc =
                  if String.trim line = "" then acc
                  else
                    match of_line ~default ~id line with
                    | Ok r -> Ok r :: acc
                    | Error m -> Error (id, m) :: acc
                in
                go (id + 1) acc
          in
          Ok (go 1 []))

let problem t = Problem.of_string t.expr ~sizes:(Sizes.to_list t.sizes)

let ctx ~default t =
  { default with Cogent.Ctx.arch = t.arch; precision = t.precision }
