(** Serving-workload requests.

    A workload file is JSONL: one request object per line, e.g.
    [{"expr":"abcd-aebf-dfce","sizes":"a=48,b=48,c=48,d=48,e=32,f=32"}],
    with optional ["arch"] (p100|v100|a100|h100) and ["precision"]
    (fp16|tf32|fp32|fp64) fields overriding the session context.  Blank lines are skipped;
    request ids are 1-based line numbers, so a malformed line keeps a
    stable id in the report. *)

open Tc_gpu
open Tc_expr

type t = {
  id : int;  (** 1-based line number in the workload file *)
  expr : string;  (** contraction text as given (TCCG or Einstein form) *)
  sizes : Sizes.t;
  arch : Arch.t;
  precision : Precision.t;
}

val of_line : default:Cogent.Ctx.t -> id:int -> string -> (t, string) result
(** Parse one workload line; [default] supplies the device and precision
    for requests that do not override them. *)

val load_file :
  default:Cogent.Ctx.t -> string
  -> ((t, int * string) result list, string) result
(** Every non-blank line of the file, in order: [Ok] a request or
    [Error (line, message)] for a malformed one (the batch still runs;
    the engine turns these into typed per-request errors).  The outer
    [Error] is an unreadable file. *)

val problem : t -> (Problem.t, string) result
(** Parse the contraction and bind the extents. *)

val ctx : default:Cogent.Ctx.t -> t -> Cogent.Ctx.t
(** The session context with this request's device and precision. *)
