(** Versioned on-disk plan store.

    A store directory holds one [plans.jsonl]: line 1 is the schema header
    [{"schema":"cogent-planstore/1"}], every further line a row
    [{"key":K,"entry":E}] where [K] is the {!Cogent.Cache.key} and [E] a
    serialized {!Cogent.Driver.t}.  The serving engine loads the store
    into its cache at session open and flushes the cache at close, so a
    warm restart re-generates nothing.

    The codec stores the contraction as its TCCG string plus extents and
    {e reconstructs} the plan with [Plan.make], which recomputes the model
    cost — costs are a pure function of (problem, mapping, device,
    precision), and {!Tc_obs.Json} renders floats with the shortest
    representation that parses back to the same value, so a save→load
    round trip is bit-exact (locked by a property test).  The plan's
    kernel schema rides along as a ["kernel_schema"] tag, decoded
    leniently: rows written before schemas existed load as classic.

    Failure ladder: a missing file is an empty store; a wrong or missing
    schema header rejects the whole store (a later writer owns that
    format); a corrupt row is skipped, counted on the
    [cogent.serve.planstore.corrupt_rows] metric, and everything after it
    still loads. *)

val schema : string
(** ["cogent-planstore/1"]. *)

val file : dir:string -> string
(** [dir/plans.jsonl]. *)

val entry_to_json : Cogent.Driver.t -> Tc_obs.Json.t

val entry_of_json : Tc_obs.Json.t -> (Cogent.Driver.t, string) result
(** Inverse of {!entry_to_json}; [Error] on any malformed field. *)

val load : dir:string -> ((string * Cogent.Driver.t) list, string) result
(** Rows in file order.  [Ok []] when the file does not exist; [Error]
    when the header is missing or carries the wrong schema; corrupt rows
    are skipped (see above). *)

val save : dir:string -> (string * Cogent.Driver.t) list -> unit
(** Write header plus one row per entry, creating [dir] if needed.  The
    file is replaced atomically (write-to-temp, rename).
    @raise Sys_error when the directory cannot be created or written. *)
