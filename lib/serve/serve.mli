(** The batched contraction-serving engine.

    A session owns a plan cache, optionally backed by an on-disk
    {!Planstore} (loaded at open, flushed at close — a warm restart
    re-generates nothing).  {!run} takes a parsed workload, dedups it by
    {!Cogent.Cache.key}, fans the {e distinct} plan searches out on
    {!Tc_par.Pool} (first-appearance order, so results are bit-identical
    at any job count), then dispatches every request to whichever engine
    the models predict faster — a three-way race between the classic
    COGENT kernel ({!Tc_sim.Simkernel} on the cached plan), the best
    feasible {e pipelined} COGENT variant of the same mapping (double
    buffering / MMA, absent on devices without async copies), and the
    TTGT pipeline ({!Tc_ttgt.Ttgt.run_ctx} on the same representative
    problem).  Classic wins ties, so classic-only workloads dispatch
    exactly as they did under the two-way race.

    Degradation ladder: a {!Cogent.Ctx.t.budget} falls generation back to
    the heuristic top-of-enumeration plan (flagged per request); a failed
    search or malformed request yields a typed {!error} for that request
    only — the batch always completes. *)

type engine = Cogent_kernel | Ttgt_pipeline

val engine_name : engine -> string
(** ["cogent"] / ["ttgt"]. *)

type error =
  | Bad_request of string  (** malformed JSONL line, expression or sizes *)
  | Generation of Cogent.Driver.error  (** the plan search failed *)
  | Crashed of string  (** the generator raised; the batch continued *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type outcome = {
  key : string;  (** the {!Cogent.Cache.key} the request resolved to *)
  cached : bool;
      (** plan was already cached when the batch started (a warm store, or
          an earlier batch on this session) *)
  degraded : bool;  (** plan came from a budget-truncated search *)
  engine : engine;  (** dispatch decision: lower predicted time wins *)
  schema : Tc_gpu.Schema.t;
      (** kernel schema of the winning COGENT variant ([Classic] when the
          TTGT pipeline won) *)
  pipelined : (Tc_gpu.Schema.t * float) option;
      (** best feasible pipelined variant and its predicted time — [None]
          on devices without async copies *)
  cogent_time_s : float;
      (** simulator prediction for the classic COGENT kernel *)
  ttgt_time_s : float;  (** model prediction for the TTGT pipeline *)
  gflops : float;  (** predicted throughput of the chosen engine *)
}

val outcome_strategy : outcome -> string
(** Dispatch label: ["cogent"], ["ttgt"], or ["cogent-<schema>"] when a
    pipelined COGENT kernel won. *)

type response = {
  id : int;
  expr : string;  (** [""] when the line never parsed *)
  arch : string;
  precision : string;
  result : (outcome, error) result;
}

type summary = {
  requests : int;
  distinct : int;  (** distinct plan keys among well-formed requests *)
  loaded : int;  (** entries loaded from the store at session open *)
  generations : int;  (** plan searches actually run (0 on a warm store) *)
  hits : int;  (** requests served from an already-present plan *)
  degraded : int;
  errors : int;
  to_cogent : int;
  to_pipelined : int;
      (** of [to_cogent], requests dispatched to a pipelined schema *)
  to_ttgt : int;
  regrets : int;
      (** requests with positive dispatch regret: the losing engine would
          have been faster at the request's own extents (only possible
          through the cache's size-class approximation; see
          {!Tc_audit.Audit}) *)
}

type report = {
  responses : response list;
  summary : summary;
  notices : string list;
      (** stderr-destined lines (one per failed plan search), assembled
          after the parallel section so the caller can print them without
          interleaving with pool output (DESIGN.md, "Parallel runtime") *)
}

type session

val open_session :
  ?store:string ->
  ?audit:Tc_audit.Audit.collector ->
  ?flight_capacity:int ->
  Cogent.Ctx.t ->
  (session, string) result
(** [store] names a {!Planstore} directory; its entries pre-populate the
    cache.  [audit] attaches an accuracy-ledger collector: {!run} then
    also measures every distinct plan's ground-truth counters (inside the
    generation fan-out) and appends one {!Tc_audit.Audit.sample} per
    successful request, in request order.  [flight_capacity] resizes the
    global {!Tc_obs.Flightrec} ring (default stays 128).  [Error] on an
    unreadable or wrong-schema store. *)

val close_session : session -> unit
(** Flush every cached plan back to the store (no-op without one). *)

val run : session -> (Request.t, int * string) result list -> report
(** Serve one workload (the shape {!Request.load_file} returns); parse
    failures become [Bad_request] responses.  Responses are in request
    order.  Safe to call repeatedly on one session; the cache carries
    over.

    Telemetry: every request is served inside a
    {!Tc_obs.Trace.with_request} scope named [req-NNN], so its parse,
    plan search (wherever the pool runs it), dispatch and simulated
    execution form one connected span tree in the Chrome export, with
    [predicted_ms], [actual_ms], [regret_ms] and [strategy] recorded as
    span attributes (plus [model_tx_rel_err] when an audit collector is
    attached); each dispatched request's flight-recorder entry carries a
    [regret_s] timing, and the deterministic [cogent.audit.*] instruments
    (regret counter/histogram, sample counter, model-error histogram)
    accumulate in request order.  Per-request latencies land in the
    [cogent.serve.predicted_seconds] histogram (deterministic — model
    output observed in request order) and the [cogent.serve.*_wall_*]
    histograms (wall clock, excluded from the CI deterministic subset by
    the "wall" naming convention); each request also appends one
    {!Tc_obs.Flightrec} entry to the global flight recorder. *)

val report_doc : wall_s:float -> report -> Tc_profile.Benchrep.doc
(** The [--json] report: a cogent-bench/1 document (target ["serve"]) with
    one entry per request.  Only batch-invariant data is included —
    predicted times, dispatch decision, degraded flag, typed errors — so
    cold-store and warm-store runs at any job count produce documents
    equal under {!Tc_profile.Benchrep.equal_modulo_wall}. *)

val render_summary : summary -> string
(** Human-readable session counters (the part deliberately {e not} in
    {!report_doc}: hits and generations differ cold vs warm). *)
