open Tc_tensor
open Tc_gpu
open Tc_expr
module J = Tc_obs.Json

let schema = "cogent-planstore/1"
let file ~dir = Filename.concat dir "plans.jsonl"
let ( let* ) = Result.bind

let rec map_r f = function
  | [] -> Ok []
  | x :: tl ->
      let* y = f x in
      let* ys = map_r f tl in
      Ok (y :: ys)

(* ---- decoding primitives ---- *)

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string = function
  | J.String s -> Ok s
  | _ -> Error "expected a string"

let as_int = function J.Int n -> Ok n | _ -> Error "expected an int"
let as_bool = function J.Bool b -> Ok b | _ -> Error "expected a bool"
let as_list = function J.List l -> Ok l | _ -> Error "expected a list"

let as_float j =
  match J.to_float j with Some f -> Ok f | None -> Error "expected a number"

let as_index s =
  if String.length s = 1 && Index.is_valid s.[0] then Ok s.[0]
  else Error (Printf.sprintf "bad index %S" s)

(* ---- mapping codec ---- *)

let binding_to_json (b : Cogent.Mapping.binding) =
  J.List [ J.String (Index.to_string b.Cogent.Mapping.index); J.Int b.tile ]

let binding_of_json j =
  let* l = as_list j in
  match l with
  | [ i; t ] ->
      let* s = as_string i in
      let* index = as_index s in
      let* tile = as_int t in
      Ok { Cogent.Mapping.index; tile }
  | _ -> Error "binding must be [index, tile]"

let bindings_to_json bs = J.List (List.map binding_to_json bs)

let bindings_of_json j =
  let* l = as_list j in
  map_r binding_of_json l

let mapping_to_json (m : Cogent.Mapping.t) =
  J.Obj
    [
      ("tbx", bindings_to_json m.Cogent.Mapping.tbx);
      ("regx", bindings_to_json m.regx);
      ("tby", bindings_to_json m.tby);
      ("regy", bindings_to_json m.regy);
      ("tbk", bindings_to_json m.tbk);
      ("grid", J.String (Index.list_to_string m.grid));
    ]

let mapping_of_json j =
  let part name = Result.bind (field name j) bindings_of_json in
  let* tbx = part "tbx" in
  let* regx = part "regx" in
  let* tby = part "tby" in
  let* regy = part "regy" in
  let* tbk = part "tbk" in
  let* grid_s = Result.bind (field "grid" j) as_string in
  let* grid = map_r (fun c -> as_index (String.make 1 c)) (List.init (String.length grid_s) (String.get grid_s)) in
  Ok { Cogent.Mapping.tbx; regx; tby; regy; tbk; grid }

(* ---- prune-stats codec ---- *)

let reason_of_slug s =
  match
    List.find_opt
      (fun r -> Cogent.Prune.reason_slug r = s)
      Cogent.Prune.all_reasons
  with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown prune rule %S" s)

let stats_to_json (s : Cogent.Prune.stats) =
  J.Obj
    [
      ("enumerated", J.Int s.Cogent.Prune.enumerated);
      ("kept", J.Int s.kept);
      ( "pruned",
        J.List
          (List.map
             (fun (r, n) ->
               J.List [ J.String (Cogent.Prune.reason_slug r); J.Int n ])
             s.pruned) );
      ("hardware_rejects", J.Int s.hardware_rejects);
      ("performance_rejects", J.Int s.performance_rejects);
      ("relaxed", J.Bool s.relaxed);
      ("relax_attempts", J.Int s.relax_attempts);
    ]

let stats_of_json j =
  let* enumerated = Result.bind (field "enumerated" j) as_int in
  let* kept = Result.bind (field "kept" j) as_int in
  let* pruned_l = Result.bind (field "pruned" j) as_list in
  let* pruned =
    map_r
      (fun row ->
        let* l = as_list row in
        match l with
        | [ slug; n ] ->
            let* s = as_string slug in
            let* r = reason_of_slug s in
            let* n = as_int n in
            Ok (r, n)
        | _ -> Error "pruned row must be [rule, count]")
      pruned_l
  in
  let* hardware_rejects = Result.bind (field "hardware_rejects" j) as_int in
  let* performance_rejects =
    Result.bind (field "performance_rejects" j) as_int
  in
  let* relaxed = Result.bind (field "relaxed" j) as_bool in
  let* relax_attempts = Result.bind (field "relax_attempts" j) as_int in
  Ok
    {
      Cogent.Prune.enumerated;
      kept;
      pruned;
      hardware_rejects;
      performance_rejects;
      relaxed;
      relax_attempts;
    }

(* ---- entry codec ---- *)

let entry_to_json (r : Cogent.Driver.t) =
  let plan = r.Cogent.Driver.plan in
  let problem = plan.Cogent.Plan.problem in
  J.Obj
    [
      ( "expr",
        J.String (Ast.tccg_string (Problem.info problem).Classify.original) );
      ( "sizes",
        J.Obj
          (List.map
             (fun (i, n) -> (Index.to_string i, J.Int n))
             (Sizes.to_list (Problem.sizes problem))) );
      ("arch", J.String plan.Cogent.Plan.arch.Arch.name);
      ("precision", J.String (Precision.to_string plan.Cogent.Plan.precision));
      ("kernel_schema", J.String (Schema.to_string plan.Cogent.Plan.schema));
      ("mapping", mapping_to_json plan.Cogent.Plan.mapping);
      ( "ranked",
        J.List
          (List.map
             (fun (m, c) -> J.List [ mapping_to_json m; J.Float c ])
             r.ranked) );
      ("prune", stats_to_json r.prune_stats);
      ("naive_space", J.Float r.naive_space);
      ("degraded", J.Bool r.degraded);
      ("bound_aborted", J.Int r.bound_aborted);
    ]

let entry_of_json j =
  let* expr = Result.bind (field "expr" j) as_string in
  let* sizes_j = field "sizes" j in
  let* sizes =
    match sizes_j with
    | J.Obj kvs ->
        map_r
          (fun (k, v) ->
            let* i = as_index k in
            let* n = as_int v in
            Ok (i, n))
          kvs
    | _ -> Error "field \"sizes\" must be an object"
  in
  let* problem = Problem.of_string expr ~sizes in
  let* arch_s = Result.bind (field "arch" j) as_string in
  let* arch =
    match Arch.by_name arch_s with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "unknown device %S" arch_s)
  in
  let* prec_s = Result.bind (field "precision" j) as_string in
  let* precision =
    match prec_s with
    | "fp64" -> Ok Precision.FP64
    | "fp32" -> Ok Precision.FP32
    | "fp16" -> Ok Precision.FP16
    | "tf32" -> Ok Precision.TF32
    | s -> Error (Printf.sprintf "unknown precision %S" s)
  in
  let* mapping = Result.bind (field "mapping" j) mapping_of_json in
  let* plan =
    (* [Plan.make] recomputes the model cost — deterministic, so the
       reloaded entry is bit-identical to the one that was saved. *)
    match Cogent.Plan.make ~problem ~mapping ~arch ~precision with
    | p -> Ok p
    | exception Invalid_argument m -> Error m
  in
  (* Lenient: rows written before kernel schemas existed lack the tag and
     load as classic; a present tag must name a schema still feasible for
     the row's mapping (feasibility is recomputed, like the cost). *)
  let* plan =
    match field "kernel_schema" j with
    | Error _ -> Ok plan
    | Ok v -> (
        let* s = as_string v in
        match Schema.of_string s with
        | None -> Error (Printf.sprintf "unknown kernel schema %S" s)
        | Some sc -> (
            match Cogent.Plan.with_schema sc plan with
            | p -> Ok p
            | exception Invalid_argument m -> Error m))
  in
  let* ranked_l = Result.bind (field "ranked" j) as_list in
  let* ranked =
    map_r
      (fun row ->
        let* l = as_list row in
        match l with
        | [ m; c ] ->
            let* m = mapping_of_json m in
            let* c = as_float c in
            Ok (m, c)
        | _ -> Error "ranked row must be [mapping, cost]")
      ranked_l
  in
  let* prune_stats = Result.bind (field "prune" j) stats_of_json in
  let* naive_space = Result.bind (field "naive_space" j) as_float in
  let* degraded = Result.bind (field "degraded" j) as_bool in
  (* Lenient: rows written before the streaming pipeline lack the counter;
     0 keeps them loadable. *)
  let* bound_aborted =
    match field "bound_aborted" j with
    | Ok v -> as_int v
    | Error _ -> Ok 0
  in
  Ok
    {
      Cogent.Driver.plan;
      ranked;
      prune_stats;
      naive_space;
      degraded;
      bound_aborted;
    }

(* ---- store I/O ---- *)

let corrupt_rows () =
  Tc_obs.Metrics.counter "cogent.serve.planstore.corrupt_rows"

(* Last offending 1-based line number — the [line] attribute of the
   corrupt-row telemetry, so a truncated store is diagnosable from the
   metrics snapshot alone (the stderr notice carries the same number). *)
let corrupt_line () =
  Tc_obs.Metrics.gauge "cogent.serve.planstore.corrupt_line"

let row_of_line line =
  let* j =
    Result.map_error (fun m -> "bad JSON: " ^ m) (J.parse line)
  in
  let* k = Result.bind (field "key" j) as_string in
  let* entry = Result.bind (field "entry" j) entry_of_json in
  Ok (k, entry)

let load ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | l -> go (l :: acc)
          in
          go [])
    in
    match lines with
    | [] -> Error (path ^ ": empty plan store (missing schema header)")
    | header :: rows -> (
        match J.parse header with
        | Ok (J.Obj _ as h) when J.member "schema" h = Some (J.String schema)
          ->
            Ok
              (* [i] counts data rows; the header is file line 1. *)
              (List.mapi (fun i line -> (i + 2, line)) rows
              |> List.filter_map (fun (lineno, line) ->
                     if String.trim line = "" then None
                     else
                       match row_of_line line with
                       | Ok row -> Some row
                       | Error m ->
                           Tc_obs.Metrics.incr (corrupt_rows ());
                           Tc_obs.Metrics.set (corrupt_line ())
                             (float_of_int lineno);
                           Printf.eprintf
                             "cogent: %s:%d: skipping corrupt plan-store \
                              row (%s)\n\
                              %!"
                             path lineno m;
                           None))
        | _ ->
            Error
              (Printf.sprintf "%s: not a %s store (bad schema header)" path
                 schema))

let save ~dir rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string (J.Obj [ ("schema", J.String schema) ]));
      output_char oc '\n';
      List.iter
        (fun (k, r) ->
          output_string oc
            (J.to_string
               (J.Obj [ ("key", J.String k); ("entry", entry_to_json r) ]));
          output_char oc '\n')
        rows);
  Sys.rename tmp path
