open Tc_gpu

type engine = Cogent_kernel | Ttgt_pipeline

let engine_name = function Cogent_kernel -> "cogent" | Ttgt_pipeline -> "ttgt"

type error =
  | Bad_request of string
  | Generation of Cogent.Driver.error
  | Crashed of string

let pp_error ppf = function
  | Bad_request m -> Format.fprintf ppf "bad request: %s" m
  | Generation e -> Cogent.Driver.pp_error ppf e
  | Crashed m -> Format.fprintf ppf "generator crashed: %s" m

let error_to_string e = Format.asprintf "%a" pp_error e

type outcome = {
  key : string;
  cached : bool;
  degraded : bool;
  engine : engine;
  schema : Schema.t;
  pipelined : (Schema.t * float) option;
  cogent_time_s : float;
  ttgt_time_s : float;
  gflops : float;
}

(* Dispatch label as reported everywhere observable: the schema rides
   along when a pipelined kernel won, so classic-only workloads (and
   devices without async copies) keep the historical "cogent" label. *)
let outcome_strategy o =
  match o.engine with
  | Ttgt_pipeline -> engine_name Ttgt_pipeline
  | Cogent_kernel ->
      if Schema.pipelined o.schema then
        engine_name Cogent_kernel ^ "-" ^ Schema.to_string o.schema
      else engine_name Cogent_kernel

type response = {
  id : int;
  expr : string;
  arch : string;
  precision : string;
  result : (outcome, error) result;
}

type summary = {
  requests : int;
  distinct : int;
  loaded : int;
  generations : int;
  hits : int;
  degraded : int;
  errors : int;
  to_cogent : int;
  to_pipelined : int;
  to_ttgt : int;
  regrets : int;
}

type report = {
  responses : response list;
  summary : summary;
  notices : string list;
}

type session = {
  ctx : Cogent.Ctx.t;
  cache : Cogent.Cache.t;
  store : string option;
  loaded : int;
  audit : Tc_audit.Audit.collector option;
}

let open_session ?store ?audit ?flight_capacity ctx =
  Cogent.Ctx.install_jobs ctx;
  Option.iter (fun n -> Tc_obs.Flightrec.set_capacity n) flight_capacity;
  let cache = Cogent.Cache.create () in
  match store with
  | None -> Ok { ctx; cache; store; loaded = 0; audit }
  | Some dir -> (
      match Planstore.load ~dir with
      | Error m -> Error m
      | Ok rows ->
          List.iter (fun (k, r) -> Cogent.Cache.install cache k r) rows;
          Ok { ctx; cache; store; loaded = List.length rows; audit })

let close_session s =
  match s.store with
  | None -> ()
  | Some dir -> Planstore.save ~dir (Cogent.Cache.entries s.cache)

(* Request ids as they appear everywhere observable: span/flight-recorder
   attribution and the per-request entries of the JSON report. *)
let request_label id = Printf.sprintf "req-%03d" id

(* Per-request telemetry instruments.  [predicted_seconds] records model
   predictions — a pure function of the workload, so its exposition (and
   quantile summary) is byte-identical across job counts and cold/warm
   stores; the [_wall_] instruments record wall clock and are excluded
   from the CI replay gate's deterministic subset by name. *)
let predicted_hist () = Tc_obs.Metrics.histogram "cogent.serve.predicted_seconds"
let request_wall_hist () =
  Tc_obs.Metrics.histogram "cogent.serve.request_wall_seconds"
let generate_wall_hist () =
  Tc_obs.Metrics.histogram "cogent.serve.generate_wall_seconds"
let generation_failures () =
  Tc_obs.Metrics.counter "cogent.serve.generation_failures"

let run session items =
  Tc_obs.Trace.with_span "serve.batch"
    ~args:[ ("requests", Tc_obs.Trace.Int (List.length items)) ]
  @@ fun () ->
  Tc_obs.Metrics.set
    (Tc_obs.Metrics.gauge "cogent.serve.queue_depth")
    (float_of_int (List.length items));
  let before = Cogent.Cache.stats session.cache in
  let default = session.ctx in
  (* Resolve every line to either an error response or a work item; the
     work item's key is the dedup and dispatch handle.  Each line is
     resolved inside its own request scope so the parse step is already
     attributed to the request in the trace. *)
  let resolved =
    List.map
      (fun item ->
        match item with
        | Error (id, msg) ->
            Tc_obs.Flightrec.record ~error:("bad request: " ^ msg)
              (request_label id);
            Error
              {
                id;
                expr = "";
                arch = default.Cogent.Ctx.arch.Arch.name;
                precision = Precision.to_string default.Cogent.Ctx.precision;
                result = Error (Bad_request msg);
              }
        | Ok req -> (
            let rid = request_label req.Request.id in
            match
              Tc_obs.Trace.with_request ~id:rid
                ~attrs:[ ("expr", Tc_obs.Trace.String req.Request.expr) ]
                "serve.parse"
                (fun () -> Request.problem req)
            with
            | Error m ->
                Tc_obs.Flightrec.record ~expr:req.Request.expr
                  ~error:("bad request: " ^ m) rid;
                Error
                  {
                    id = req.Request.id;
                    expr = req.Request.expr;
                    arch = req.Request.arch.Arch.name;
                    precision = Precision.to_string req.Request.precision;
                    result = Error (Bad_request m);
                  }
            | Ok problem ->
                let ctx = Request.ctx ~default req in
                Ok (req, ctx, problem, Cogent.Cache.key ctx problem)))
      items
  in
  (* Distinct keys in first-appearance order: the fan-out domain.  The
     order is a pure function of the workload, so [Pool.map] keeps the
     batch bit-identical at any job count.  Each distinct search carries
     its first requester's id, so the whole generation subtree — prune,
     cost ranking, refinement, wherever the pool schedules it — stays
     attributed to that request in the trace. *)
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter_map
      (function
        | Ok (req, ctx, problem, k) when not (Hashtbl.mem seen k) ->
            Hashtbl.add seen k ();
            Some (k, ctx, problem, request_label req.Request.id)
        | _ -> None)
      resolved
  in
  let warm = Hashtbl.create 16 in
  List.iter
    (fun (k, _, _, _) ->
      if Cogent.Cache.mem session.cache k then Hashtbl.add warm k ())
    distinct;
  let generated =
    Tc_par.Pool.map
      (fun (k, ctx, problem, rid) ->
        Tc_obs.Trace.with_request ~id:rid
          ~attrs:[ ("key", Tc_obs.Trace.String k) ]
          "serve.generate"
        @@ fun () ->
        let t0 = Sys.time () in
        let r =
          match Cogent.Cache.find_or_generate_ctx session.cache ctx problem with
          | Ok r -> (k, Ok r)
          | Error e -> (k, Error (Generation e))
          | exception e -> (k, Error (Crashed (Printexc.to_string e)))
        in
        (* The accuracy observatory's ground truth — the interpreter's
           counter-only schedule replay — is the expensive part of a
           sample, so it runs here, once per distinct key, wherever the
           pool scheduled this search (the result is a pure function of
           the plan, so batch output stays bit-identical at any job
           count). *)
        let measured =
          match (session.audit, r) with
          | Some _, (_, Ok d) ->
              Some
                (Tc_obs.Trace.with_span "audit.measure" (fun () ->
                     Cogent.Interp.measure d.Cogent.Driver.plan))
          | _ -> None
        in
        Tc_obs.Metrics.observe (generate_wall_hist ())
          (Float.max 0.0 (Sys.time () -. t0));
        (r, measured))
      distinct
  in
  let measures = Hashtbl.create 16 in
  List.iter
    (fun ((k, _), measured) ->
      Option.iter (fun c -> Hashtbl.replace measures k c) measured)
    generated;
  let generated = List.map fst generated in
  let plans = Hashtbl.create 16 in
  List.iter (fun (k, r) -> Hashtbl.replace plans k r) generated;
  (* Failed searches become stderr-destined notices — assembled here,
     strictly after the parallel section, and printed by the caller (the
     DESIGN.md parallel-runtime rule: print only after the fan-out), so
     the summary can never interleave with pool worker output. *)
  let notices =
    List.filter_map
      (fun (k, r, rid) ->
        match r with
        | Ok _ -> None
        | Error e ->
            Tc_obs.Metrics.incr (generation_failures ());
            Tc_obs.Trace.instant "serve.generation_failed"
              ~args:
                [
                  ("request", Tc_obs.Trace.String rid);
                  ("key", Tc_obs.Trace.String k);
                ];
            Some (Printf.sprintf "%s: %s" rid (error_to_string e)))
      (List.map2 (fun (k, r) (_, _, _, rid) -> (k, r, rid)) generated distinct)
  in
  (* Dispatch: both predictions are evaluated on the plan's representative
     problem (for a dedup'd request that is the first requester's), so the
     comparison is apples-to-apples and duplicate requests agree.  Each
     request's dispatch runs inside its request scope: predicted time,
     chosen strategy and (from the simulated execution) actual time land
     as span attributes, and one flight-recorder entry is appended. *)
  (* Requests with positive dispatch regret, counted as the (sequential)
     dispatch loop below walks the batch in request order. *)
  let regrets = ref 0 in
  let responses =
    List.map
      (function
        | Error resp -> resp
        | Ok (req, ctx, problem, k) ->
            let rid = request_label req.Request.id in
            let t0 = Sys.time () in
            (* [result_r] pairs the public outcome with the request's
               dispatch regret (not part of the report_doc surface — it
               lands on the span, the flight entry and the audit ledger). *)
            let result_r =
              Tc_obs.Trace.with_request ~id:rid
                ~attrs:
                  [
                    ("key", Tc_obs.Trace.String k);
                    ("expr", Tc_obs.Trace.String req.Request.expr);
                  ]
                "serve.request"
              @@ fun () ->
              match Hashtbl.find_opt plans k with
              | None ->
                  Tc_obs.Trace.add_args
                    [ ("outcome", Tc_obs.Trace.String "error") ];
                  Error (Crashed "internal: generation result missing")
              | Some (Error e) ->
                  Tc_obs.Trace.add_args
                    [ ("outcome", Tc_obs.Trace.String "error") ];
                  Error e
              | Some (Ok r) ->
                  let plan = r.Cogent.Driver.plan in
                  let classic_plan =
                    Cogent.Plan.with_schema Schema.Classic plan
                  in
                  let sim =
                    Tc_obs.Trace.with_span "serve.predict.cogent" (fun () ->
                        Tc_sim.Simkernel.run classic_plan)
                  in
                  (* The third lane of the race: the best feasible
                     pipelined variant of the same mapping.  On devices
                     without async copies the list is empty and the race
                     degenerates to the historical classic-vs-TTGT. *)
                  let pipelined =
                    match
                      List.filter Schema.pipelined
                        (Cogent.Plan.feasible_schemas
                           ~arch:plan.Cogent.Plan.arch
                           ~precision:plan.Cogent.Plan.precision
                           plan.Cogent.Plan.mapping)
                    with
                    | [] -> None
                    | scs ->
                        Tc_obs.Trace.with_span "serve.predict.pipelined"
                          (fun () ->
                            List.fold_left
                              (fun best sc ->
                                let t =
                                  (Tc_sim.Simkernel.run
                                     (Cogent.Plan.with_schema sc plan))
                                    .Tc_sim.Simkernel.time_s
                                in
                                match best with
                                | Some (_, bt) when bt <= t -> best
                                | _ -> Some (sc, t))
                              None scs)
                  in
                  let tt =
                    Tc_obs.Trace.with_span "serve.predict.ttgt" (fun () ->
                        Tc_ttgt.Ttgt.run_ctx ctx plan.Cogent.Plan.problem)
                  in
                  (* Classic wins ties, so the race is a pure refinement
                     of the two-way dispatch it replaces. *)
                  let cogent_time_s = sim.Tc_sim.Simkernel.time_s in
                  let cogent_plan, cogent_schema, cogent_best_s =
                    match pipelined with
                    | Some (sc, t) when t < cogent_time_s ->
                        (Cogent.Plan.with_schema sc plan, sc, t)
                    | _ -> (classic_plan, Schema.Classic, cogent_time_s)
                  in
                  let ttgt_time_s = tt.Tc_ttgt.Ttgt.time_s in
                  let engine, gflops =
                    if cogent_best_s <= ttgt_time_s then
                      ( Cogent_kernel,
                        (Tc_sim.Simkernel.run cogent_plan)
                          .Tc_sim.Simkernel.gflops )
                    else (Ttgt_pipeline, tt.Tc_ttgt.Ttgt.gflops)
                  in
                  let predicted_s =
                    match engine with
                    | Cogent_kernel -> cogent_best_s
                    | Ttgt_pipeline -> ttgt_time_s
                  in
                  (* The simulated execution of the chosen engine — this
                     repo's stand-in for running the kernel — so the
                     span records predicted vs actual per request. *)
                  let strategy =
                    match engine with
                    | Ttgt_pipeline -> engine_name Ttgt_pipeline
                    | Cogent_kernel ->
                        if Schema.pipelined cogent_schema then
                          engine_name Cogent_kernel ^ "-"
                          ^ Schema.to_string cogent_schema
                        else engine_name Cogent_kernel
                  in
                  let actual_s =
                    Tc_obs.Trace.with_span "serve.execute"
                      ~args:[ ("strategy", Tc_obs.Trace.String strategy) ]
                      (fun () ->
                        match engine with
                        | Cogent_kernel ->
                            (Tc_sim.Simkernel.run cogent_plan)
                              .Tc_sim.Simkernel.time_s
                        | Ttgt_pipeline ->
                            (Tc_ttgt.Ttgt.run_ctx ctx plan.Cogent.Plan.problem)
                              .Tc_ttgt.Ttgt.time_s)
                  in
                  (* Dispatch regret: the decision above compared the
                     engines on the representative problem; the request
                     runs at its own extents, so re-evaluate both sides
                     there and charge the chosen engine whatever it loses
                     to the alternative.  Pure model output computed
                     sequentially in request order — the audit metrics
                     below are part of the CI replay gate's deterministic
                     subset. *)
                  let _own_cogent_s, _own_ttgt_s, regret_s, _own_approx =
                    Tc_audit.Audit.dispatch_regret ~ctx ~own:problem plan
                  in
                  Tc_audit.Audit.record_regret regret_s;
                  if regret_s > 0.0 then incr regrets;
                  (match session.audit with
                  | None -> ()
                  | Some c ->
                      let s =
                        Tc_audit.Audit.sample ~suite:"serve" ~request:rid
                          ~key:k ~ctx ~own:problem
                          ?measured:(Hashtbl.find_opt measures k)
                          ~degraded:r.Cogent.Driver.degraded plan
                      in
                      Tc_audit.Audit.add c s;
                      Tc_audit.Audit.record_sample s;
                      Tc_obs.Trace.add_args
                        [
                          ( "model_tx_rel_err",
                            Tc_obs.Trace.Float (Tc_audit.Audit.tx_rel_err s)
                          );
                        ]);
                  Tc_obs.Trace.add_args
                    [
                      ("predicted_ms", Tc_obs.Trace.Float (predicted_s *. 1e3));
                      ("actual_ms", Tc_obs.Trace.Float (actual_s *. 1e3));
                      ("regret_ms", Tc_obs.Trace.Float (regret_s *. 1e3));
                      ("strategy", Tc_obs.Trace.String strategy);
                      ("outcome", Tc_obs.Trace.String "ok");
                      ("cached", Tc_obs.Trace.Bool (Hashtbl.mem warm k));
                      ("degraded", Tc_obs.Trace.Bool r.Cogent.Driver.degraded);
                      ("gflops", Tc_obs.Trace.Float gflops);
                    ];
                  Tc_obs.Metrics.observe (predicted_hist ()) predicted_s;
                  Ok
                    ( {
                        key = k;
                        cached = Hashtbl.mem warm k;
                        degraded = r.Cogent.Driver.degraded;
                        engine;
                        schema = cogent_schema;
                        pipelined;
                        cogent_time_s;
                        ttgt_time_s;
                        gflops;
                      },
                      regret_s )
            in
            let result = Result.map fst result_r in
            (match result_r with
            | Ok (o, regret_s) ->
                Tc_obs.Flightrec.record ~key:k ~expr:req.Request.expr
                  ~strategy:(outcome_strategy o)
                  ~timings:
                    [
                      ("predicted_s",
                       match o.engine with
                       | Cogent_kernel -> (
                           match o.pipelined with
                           | Some (_, t) when Schema.pipelined o.schema -> t
                           | _ -> o.cogent_time_s)
                       | Ttgt_pipeline -> o.ttgt_time_s);
                      ("cogent_s", o.cogent_time_s);
                      ("ttgt_s", o.ttgt_time_s);
                      ("regret_s", regret_s);
                      ("wall_s", Float.max 0.0 (Sys.time () -. t0));
                    ]
                  rid
            | Error e ->
                Tc_obs.Flightrec.record ~key:k ~expr:req.Request.expr
                  ~error:(error_to_string e) rid);
            Tc_obs.Metrics.observe (request_wall_hist ())
              (Float.max 0.0 (Sys.time () -. t0));
            {
              id = req.Request.id;
              expr = req.Request.expr;
              arch = req.Request.arch.Arch.name;
              precision = Precision.to_string req.Request.precision;
              result;
            })
      resolved
  in
  let after = Cogent.Cache.stats session.cache in
  let count p = List.length (List.filter p responses) in
  let ok = count (fun r -> Result.is_ok r.result) in
  (* A fresh successful search serves its first requester; everyone else —
     dups, warm-store keys, repeat batches — is a hit.  [generations]
     counts searches actually run, including failed ones (errors are never
     cached, so a doomed request retries every batch). *)
  let fresh_ok =
    List.length
      (List.filter
         (fun (k, r) -> Result.is_ok r && not (Hashtbl.mem warm k))
         generated)
  in
  let summary =
    {
      requests = List.length items;
      distinct = List.length distinct;
      loaded = session.loaded;
      generations = after.Cogent.Cache.misses - before.Cogent.Cache.misses;
      hits = ok - fresh_ok;
      degraded =
        count (fun r ->
            match r.result with Ok o -> o.degraded | Error _ -> false);
      errors = count (fun r -> Result.is_error r.result);
      to_cogent =
        count (fun r ->
            match r.result with
            | Ok o -> o.engine = Cogent_kernel
            | Error _ -> false);
      to_pipelined =
        count (fun r ->
            match r.result with
            | Ok o -> o.engine = Cogent_kernel && Schema.pipelined o.schema
            | Error _ -> false);
      to_ttgt =
        count (fun r ->
            match r.result with
            | Ok o -> o.engine = Ttgt_pipeline
            | Error _ -> false);
      regrets = !regrets;
    }
  in
  Tc_obs.Metrics.incr ~by:summary.requests
    (Tc_obs.Metrics.counter "cogent.serve.requests");
  Tc_obs.Metrics.incr ~by:summary.errors
    (Tc_obs.Metrics.counter "cogent.serve.errors");
  Tc_obs.Metrics.incr ~by:summary.degraded
    (Tc_obs.Metrics.counter "cogent.serve.degraded");
  Tc_obs.Metrics.incr ~by:summary.to_cogent
    (Tc_obs.Metrics.counter "cogent.serve.dispatch.cogent");
  Tc_obs.Metrics.incr ~by:summary.to_ttgt
    (Tc_obs.Metrics.counter "cogent.serve.dispatch.ttgt");
  Tc_obs.Metrics.set
    (Tc_obs.Metrics.gauge "cogent.serve.hit_ratio")
    (if ok > 0 then float_of_int summary.hits /. float_of_int ok else 0.0);
  { responses; summary; notices }

let report_doc ~wall_s report =
  {
    Tc_profile.Benchrep.target = "serve";
    wall_s;
    jobs = Tc_par.Pool.default_jobs ();
    entries =
      List.map
        (fun resp ->
          {
            Tc_profile.Benchrep.name = request_label resp.id;
            expr = (if resp.expr = "" then "-" else resp.expr);
            arch = resp.arch;
            precision = resp.precision;
            strategies =
              (match resp.result with
              | Ok o ->
                  [
                    {
                      Tc_profile.Benchrep.strategy = "cogent";
                      metrics = [ ("time_s", o.cogent_time_s) ];
                      config = None;
                    };
                  ]
                  (* Only present when a pipelined variant was feasible,
                     so classic-only workloads keep their exact report. *)
                  @ (match o.pipelined with
                    | None -> []
                    | Some (sc, t) ->
                        [
                          {
                            Tc_profile.Benchrep.strategy = "cogent-pipelined";
                            metrics = [ ("time_s", t) ];
                            config = Some (Schema.to_string sc);
                          };
                        ])
                  @ [
                      {
                        Tc_profile.Benchrep.strategy = "ttgt";
                        metrics = [ ("time_s", o.ttgt_time_s) ];
                        config = None;
                      };
                      {
                        Tc_profile.Benchrep.strategy = "dispatch";
                        metrics =
                          [
                            ("gflops", o.gflops);
                            ("degraded", if o.degraded then 1.0 else 0.0);
                          ];
                        config = Some (outcome_strategy o);
                      };
                    ]
              | Error e ->
                  [
                    {
                      Tc_profile.Benchrep.strategy = "error";
                      metrics = [];
                      config = Some (error_to_string e);
                    };
                  ]);
          })
        report.responses;
  }

let render_summary s =
  Printf.sprintf
    "requests          %d\n\
     distinct plans    %d\n\
     store entries     %d loaded\n\
     plan generations  %d\n\
     cache hits        %d\n\
     dispatch          cogent %d (%d pipelined), ttgt %d\n\
     dispatch regret   %d request(s)\n\
     degraded          %d\n\
     errors            %d\n"
    s.requests s.distinct s.loaded s.generations s.hits s.to_cogent
    s.to_pipelined s.to_ttgt s.regrets s.degraded s.errors
