open Tc_tensor
open Tc_expr

type system = {
  nh : int;
  np : int;
  eps_occ : float array;
  eps_vir : float array;
  (* Base operand data; every variant of a family reinterprets the same
     flat array under its own index labels. *)
  t2_sd1 : float array;  (* [h7, p, p, h] *)
  v2_sd1 : float array;  (* [h, h, p, h7] *)
  t2_sd2 : float array;  (* [p7, p, h, h] *)
  v2_sd2 : float array;  (* [p, p, p7, h] *)
}

let make ?(seed = 7) ~nh ~np () =
  if nh < 2 || np < 2 then
    invalid_arg "Triples.make: need at least 2 occupied and 2 virtual orbitals";
  let st = Random.State.make [| seed; nh; np |] in
  let rand n = Array.init n (fun _ -> Random.State.float st 0.2 -. 0.1) in
  {
    nh;
    np;
    (* a plausible closed-shell spectrum: occupied below the gap, virtual
       above it *)
    eps_occ =
      Array.init nh (fun i -> -2.0 +. (1.0 *. float_of_int i /. float_of_int nh));
    eps_vir =
      Array.init np (fun i -> 0.5 +. (2.0 *. float_of_int i /. float_of_int np));
    t2_sd1 = rand (nh * np * np * nh);
    v2_sd1 = rand (nh * nh * np * nh);
    t2_sd2 = rand (np * np * nh * nh);
    v2_sd2 = rand (np * np * np * nh);
  }

let nh s = s.nh
let np s = s.np

type method_ = Reference | Cogent_plans | Ttgt_pipeline

let method_name = function
  | Reference -> "reference einsum"
  | Cogent_plans -> "COGENT plans (interpreter)"
  | Ttgt_pipeline -> "TTGT pipeline"

(* Suite letters a,b,c are occupied; d,e,f virtual; g is occupied for SD1
   and virtual for SD2. *)
let extent_of s ~g_occupied i =
  match i with
  | 'a' | 'b' | 'c' -> s.nh
  | 'd' | 'e' | 'f' -> s.np
  | 'g' -> if g_occupied then s.nh else s.np
  | _ -> invalid_arg "Triples: unexpected index"

let sizes_of s ~g_occupied indices =
  Sizes.of_list (List.map (fun i -> (i, extent_of s ~g_occupied i)) indices)

(* Reinterpret base flat data under a variant's index labels. *)
let view s ~g_occupied data indices =
  let shape =
    Shape.of_indices
      ~sizes:(sizes_of s ~g_occupied indices)
      indices
  in
  let t = Dense.create shape in
  if Array.length data <> Dense.numel t then
    invalid_arg "Triples: base tensor volume mismatch";
  Array.blit data 0 (Dense.unsafe_data t) 0 (Array.length data);
  t

let entry_problem s (e : Tc_tccg.Suite.entry) ~g_occupied =
  match
    Problem.of_string e.Tc_tccg.Suite.expr
      ~sizes:
        (List.map
           (fun (i, _) -> (i, extent_of s ~g_occupied i))
           e.Tc_tccg.Suite.sizes)
  with
  | Ok p -> p
  | Error m -> invalid_arg ("Triples: " ^ m)

let operand_views s (e : Tc_tccg.Suite.entry) ~g_occupied =
  let problem = entry_problem s e ~g_occupied in
  let info = Problem.info problem in
  let orig = info.Classify.original in
  let t2_data, v2_data =
    if g_occupied then (s.t2_sd1, s.v2_sd1) else (s.t2_sd2, s.v2_sd2)
  in
  let lhs = view s ~g_occupied t2_data orig.Ast.lhs.Ast.indices in
  let rhs = view s ~g_occupied v2_data orig.Ast.rhs.Ast.indices in
  (problem, lhs, rhs)

let contract_with ~method_ problem ~lhs ~rhs =
  match method_ with
  | Reference ->
      Contract_ref.contract
        ~out_indices:(Problem.info problem).Classify.externals lhs rhs
  | Cogent_plans ->
      let plan = Cogent.Driver.best_plan problem in
      Cogent.Interp.execute plan ~lhs ~rhs
  | Ttgt_pipeline -> Tc_ttgt.Ttgt.execute problem ~lhs ~rhs

let t3 s ~method_ =
  let out_shape =
    Shape.of_indices
      ~sizes:(sizes_of s ~g_occupied:true (Index.list_of_string "abcdef"))
      (Index.list_of_string "abcdef")
  in
  let acc = Dense.create out_shape in
  let accumulate sign (e : Tc_tccg.Suite.entry) ~g_occupied =
    let problem, lhs, rhs = operand_views s e ~g_occupied in
    let contribution = contract_with ~method_ problem ~lhs ~rhs in
    let a = Dense.unsafe_data acc and c = Dense.unsafe_data contribution in
    Array.iteri (fun k v -> a.(k) <- a.(k) +. (sign *. v)) c
  in
  List.iter
    (accumulate 1.0 ~g_occupied:true)
    (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd1);
  List.iter
    (accumulate (-1.0) ~g_occupied:false)
    (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd2);
  acc

let energy s t3 =
  let shape = Dense.shape t3 in
  let expected =
    Shape.make
      [ ('a', s.nh); ('b', s.nh); ('c', s.nh);
        ('d', s.np); ('e', s.np); ('f', s.np) ]
  in
  if not (Shape.equal shape expected) then
    invalid_arg "Triples.energy: t3 has the wrong shape";
  let total = ref 0.0 in
  Dense.iteri t3 (fun pos v ->
      let d =
        s.eps_occ.(pos.(0)) +. s.eps_occ.(pos.(1)) +. s.eps_occ.(pos.(2))
        -. s.eps_vir.(pos.(3)) -. s.eps_vir.(pos.(4)) -. s.eps_vir.(pos.(5))
      in
      total := !total +. (v *. v /. d));
  !total

let correction ?(method_ = Reference) s = energy s (t3 s ~method_)

type sweep = { strategy : string; time_s : float; gflops : float }

let sweep_estimate arch prec ~nh ~np =
  let dummy = make ~nh ~np () in
  let simulate plan = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.gflops in
  let entries =
    List.map
      (fun e -> (entry_problem dummy e ~g_occupied:true, e))
      (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd1)
    @ List.map
        (fun e -> (entry_problem dummy e ~g_occupied:false, e))
        (Tc_tccg.Suite.by_group Tc_tccg.Suite.Ccsd_t_sd2)
  in
  let flops =
    List.fold_left (fun acc (p, _) -> acc +. Problem.flops p) 0.0 entries
  in
  (* Per-entry estimates are pure, so they fan out on the domain pool;
     summation stays in entry order, keeping the totals bit-identical at
     any job count. *)
  let time strategy =
    Tc_par.Pool.map
      (fun (p, _) ->
        match strategy with
        | `Cogent ->
            (Tc_sim.Simkernel.run
               (Cogent.Driver.best_plan ~arch ~precision:prec
                  ~measure:simulate p))
              .Tc_sim.Simkernel.time_s
        | `Nwchem ->
            (Tc_sim.Simkernel.run (Tc_nwchem.Nwgen.plan ~arch ~precision:prec p))
              .Tc_sim.Simkernel.time_s
        | `Ttgt ->
            (Tc_ttgt.Ttgt.run_ctx
               (Cogent.Ctx.make ~arch ~precision:prec ())
               p)
              .Tc_ttgt.Ttgt.time_s)
      entries
    |> List.fold_left ( +. ) 0.0
  in
  [ ("COGENT", `Cogent); ("NWChem-style", `Nwchem); ("TAL_SH-style", `Ttgt) ]
  |> List.map (fun (strategy, tag) ->
         let t = time tag in
         { strategy; time_s = t; gflops = flops /. t /. 1e9 })
  |> List.sort (fun a b -> Float.compare a.time_s b.time_s)
