(** Kernel schemas the lowering can produce.

    [Classic] is the paper's synchronous GMEM→SMEM→REG ladder (Algorithm 1):
    load a slab, barrier, compute, barrier, repeat — load latency is never
    overlapped with compute.  [Pipelined] software-pipelines that K-loop:
    the SMEM slabs are double-buffered and the load of tile [t+1] (emitted
    as [cp.async] in the CUDA dialect) overlaps the compute of tile [t].
    [Pipelined_mma] additionally tags the compute phase as tensor-core
    MMA-fragment work for the precisions the hardware accelerates (fp16,
    tf32) — the emitted arithmetic stays the scalar outer product (the
    repo's honest substitute for WMMA intrinsics, see DESIGN.md), but the
    cost model prices it at the tensor-core FLOP rate and [Check] enforces
    fragment-shape divisibility of the block tile. *)

type t = Classic | Pipelined | Pipelined_mma

val to_string : t -> string
(** ["classic"] / ["pipelined"] / ["pipelined-mma"]. *)

val of_string : string -> t option
(** Case-insensitive; accepts the aliases [sync], [async], [mma], [tensor]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val all : t list
(** Every schema, declaration order — [Classic] first, so ties in a
    cost race resolve to the paper's schema deterministically. *)

val smem_factor : t -> int
(** Shared-memory multiplier: 2 for the double-buffered schemas. *)

val extra_regs : t -> int
(** Additional per-thread registers the schema costs beyond the classic
    estimate: pipeline bookkeeping (buffer parity, prefetch addresses)
    and, for MMA, fragment storage. *)

val pipelined : t -> bool
(** True for the double-buffered (async-staged) schemas. *)

val mma : t -> bool

val fragment_shape : Precision.t -> (int * int * int) option
(** The (m, n, k) MMA fragment shape for a tensor-core precision —
    [Some (16,16,16)] for fp16, [Some (16,16,8)] for tf32, [None] for the
    precisions the tensor cores do not accelerate (in this model). *)

val admits_precision : t -> Precision.t -> bool
(** Whether a schema can be built for a precision at all:
    [Pipelined_mma] requires a tensor-core precision. *)
