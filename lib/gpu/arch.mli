(** GPU device models.

    The two devices of the paper's evaluation are provided with their
    published specifications, plus post-Volta devices (A100, H100) for the
    async-pipelined / tensor-core extension; arbitrary devices can be
    described for what-if studies.  All capacities are per-SM unless stated
    otherwise. *)

type t = {
  name : string;
  sms : int;  (** number of streaming multiprocessors *)
  cores_per_sm : int;
  clock_ghz : float;
  peak_gflops_fp64 : float;
  peak_gflops_fp32 : float;
  peak_gflops_fp16 : float;  (** SIMT (non-tensor-core) half-precision rate *)
  tensor_gflops_fp16 : float;
      (** dense MMA fp16 rate (0 on devices without tensor cores in this
          model — pre-Volta, and Volta's first-generation units are not
          modeled because the paper's evaluation predates the schema) *)
  tensor_gflops_tf32 : float;  (** dense MMA tf32 rate *)
  dram_bw_gbs : float;  (** peak DRAM bandwidth, GB/s *)
  dram_gb : float;
  smem_per_block : int;  (** shared-memory bytes usable by one thread block *)
  smem_per_sm : int;
  regs_per_sm : int;  (** 32-bit registers per SM *)
  regs_per_thread_max : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  warp_size : int;
  transaction_bytes : int;  (** DRAM transaction granularity (128 B) *)
  kernel_launch_us : float;  (** fixed launch latency, microseconds *)
  fma_issue_eff : float;
      (** fraction of peak FMA issue a hand-scheduled inner loop sustains;
          higher on Volta, whose separate INT32 pipe overlaps address
          arithmetic with floating-point work *)
  mma_issue_eff : float;
      (** fraction of the dense tensor-core rate an MMA-fragment inner loop
          sustains (operand staging through SMEM and fragment loads cost
          issue slots the dense number ignores) *)
  async_copy : bool;
      (** whether the device has asynchronous GMEM→SMEM copies
          ([cp.async], Ampere and later) — the hardware gate for the
          pipelined kernel schemas *)
  l2_bytes : int;  (** L2 cache capacity (0 disables the cache model) *)
  l2_bw_ratio : float;
      (** L2-to-DRAM bandwidth ratio: reloads served from L2 cost this much
          less than DRAM traffic *)
}

val p100 : t
(** Nvidia Tesla P100 (Pascal, SXM2): 56 SMs, 64 cores/SM. *)

val v100 : t
(** Nvidia Tesla V100 (Volta, SXM2): 80 SMs, 64 cores/SM. *)

val a100 : t
(** Nvidia A100 (Ampere, SXM4): 108 SMs — not part of the paper's
    evaluation; the first device with [cp.async] and third-generation
    tensor cores (312 TFLOPS dense fp16, 156 TFLOPS tf32), so the
    pipelined/MMA schemas are priced against it. *)

val h100 : t
(** Nvidia H100 (Hopper, SXM5): 132 SMs, fourth-generation tensor cores
    (989 TFLOPS dense fp16).  TMA is approximated by the same async-copy
    overlap term as Ampere's [cp.async] (see DESIGN.md, substitutions). *)

val by_name : string -> t option
(** Case-insensitive lookup of ["p100"] / ["v100"] / ["a100"] / ["h100"]
    (or their architecture names pascal/volta/ampere/hopper). *)

val peak_gflops : t -> Precision.t -> float
(** SIMT peak for a precision (TF32 runs at the fp32 rate outside the
    tensor cores). *)

val tensor_gflops : t -> Precision.t -> float
(** Dense MMA peak for a tensor-core precision; 0 when the device has no
    tensor cores or the precision is not MMA-accelerated. *)

val pp : Format.formatter -> t -> unit
