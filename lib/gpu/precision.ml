type t = FP16 | TF32 | FP32 | FP64

let bytes = function FP16 -> 2 | TF32 -> 4 | FP32 -> 4 | FP64 -> 8

let to_string = function
  | FP16 -> "fp16"
  | TF32 -> "tf32"
  | FP32 -> "fp32"
  | FP64 -> "fp64"

let cuda_type = function
  | FP16 -> "half"
  | TF32 -> "float"
  | FP32 -> "float"
  | FP64 -> "double"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
let elems_per_transaction t = 128 / bytes t
let tensor_core = function FP16 | TF32 -> true | FP32 | FP64 -> false
