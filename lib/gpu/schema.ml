type t = Classic | Pipelined | Pipelined_mma

let to_string = function
  | Classic -> "classic"
  | Pipelined -> "pipelined"
  | Pipelined_mma -> "pipelined-mma"

let of_string s =
  match String.lowercase_ascii s with
  | "classic" | "sync" -> Some Classic
  | "pipelined" | "async" -> Some Pipelined
  | "pipelined-mma" | "mma" | "tensor" -> Some Pipelined_mma
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
let all = [ Classic; Pipelined; Pipelined_mma ]
let smem_factor = function Classic -> 1 | Pipelined | Pipelined_mma -> 2
let extra_regs = function Classic -> 0 | Pipelined -> 8 | Pipelined_mma -> 16
let pipelined = function Classic -> false | Pipelined | Pipelined_mma -> true
let mma = function Pipelined_mma -> true | Classic | Pipelined -> false

let fragment_shape = function
  | Precision.FP16 -> Some (16, 16, 16)
  | Precision.TF32 -> Some (16, 16, 8)
  | Precision.FP32 | Precision.FP64 -> None

let admits_precision t prec =
  match t with
  | Classic | Pipelined -> true
  | Pipelined_mma -> Option.is_some (fragment_shape prec)
