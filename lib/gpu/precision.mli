(** Floating-point precisions the generated kernels can target.  The TCCG
    comparison of Figs. 4–5 uses double precision; the Tensor-Comprehensions
    comparison of Figs. 6–8 uses single precision.  FP16 and TF32 are the
    tensor-core precisions of the A100/H100 extension: TF32 is stored as a
    32-bit float (it is an {e execution} format — the MMA unit truncates
    the mantissa), FP16 as a 2-byte half. *)

type t = FP16 | TF32 | FP32 | FP64

val bytes : t -> int
val to_string : t -> string
val cuda_type : t -> string
(** The C scalar type emitted in kernels: ["half"], ["float"] (for both
    TF32 and FP32 — TF32 is a compute format over float storage) or
    ["double"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val elems_per_transaction : t -> int
(** Elements per 128-byte DRAM transaction: 64 for FP16, 32 for FP32/TF32,
    16 for FP64. *)

val tensor_core : t -> bool
(** Whether the MMA units accelerate this precision (fp16, tf32). *)
