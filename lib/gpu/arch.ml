type t = {
  name : string;
  sms : int;
  cores_per_sm : int;
  clock_ghz : float;
  peak_gflops_fp64 : float;
  peak_gflops_fp32 : float;
  peak_gflops_fp16 : float;
  tensor_gflops_fp16 : float;
  tensor_gflops_tf32 : float;
  dram_bw_gbs : float;
  dram_gb : float;
  smem_per_block : int;
  smem_per_sm : int;
  regs_per_sm : int;
  regs_per_thread_max : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  warp_size : int;
  transaction_bytes : int;
  kernel_launch_us : float;
  fma_issue_eff : float;
  mma_issue_eff : float;
  async_copy : bool;
  l2_bytes : int;
  l2_bw_ratio : float;
}

let p100 =
  {
    name = "P100";
    sms = 56;
    cores_per_sm = 64;
    clock_ghz = 1.48;
    peak_gflops_fp64 = 5300.0;
    peak_gflops_fp32 = 10600.0;
    peak_gflops_fp16 = 21200.0;
    tensor_gflops_fp16 = 0.0;
    tensor_gflops_tf32 = 0.0;
    dram_bw_gbs = 732.0;
    dram_gb = 16.0;
    smem_per_block = 48 * 1024;
    smem_per_sm = 64 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    warp_size = 32;
    transaction_bytes = 128;
    kernel_launch_us = 5.0;
    fma_issue_eff = 0.68;
    mma_issue_eff = 0.0;
    async_copy = false;
    l2_bytes = 4 * 1024 * 1024;
    l2_bw_ratio = 2.5;
  }

let v100 =
  {
    name = "V100";
    sms = 80;
    cores_per_sm = 64;
    clock_ghz = 1.53;
    peak_gflops_fp64 = 7800.0;
    peak_gflops_fp32 = 15700.0;
    peak_gflops_fp16 = 31400.0;
    tensor_gflops_fp16 = 0.0;
    tensor_gflops_tf32 = 0.0;
    dram_bw_gbs = 900.0;
    dram_gb = 16.0;
    smem_per_block = 48 * 1024;
    smem_per_sm = 96 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    warp_size = 32;
    transaction_bytes = 128;
    kernel_launch_us = 4.0;
    fma_issue_eff = 0.86;
    mma_issue_eff = 0.0;
    async_copy = false;
    l2_bytes = 6 * 1024 * 1024;
    l2_bw_ratio = 3.0;
  }

let a100 =
  {
    name = "A100";
    sms = 108;
    cores_per_sm = 64;
    clock_ghz = 1.41;
    peak_gflops_fp64 = 9700.0;
    peak_gflops_fp32 = 19500.0;
    peak_gflops_fp16 = 78000.0;
    tensor_gflops_fp16 = 312000.0;
    tensor_gflops_tf32 = 156000.0;
    dram_bw_gbs = 1555.0;
    dram_gb = 40.0;
    smem_per_block = 48 * 1024;
    smem_per_sm = 164 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    warp_size = 32;
    transaction_bytes = 128;
    kernel_launch_us = 3.0;
    fma_issue_eff = 0.88;
    mma_issue_eff = 0.75;
    async_copy = true;
    l2_bytes = 40 * 1024 * 1024;
    l2_bw_ratio = 3.5;
  }

let h100 =
  {
    name = "H100";
    sms = 132;
    cores_per_sm = 128;
    clock_ghz = 1.59;
    peak_gflops_fp64 = 34000.0;
    peak_gflops_fp32 = 67000.0;
    peak_gflops_fp16 = 134000.0;
    tensor_gflops_fp16 = 989000.0;
    tensor_gflops_tf32 = 495000.0;
    dram_bw_gbs = 3350.0;
    dram_gb = 80.0;
    smem_per_block = 48 * 1024;
    smem_per_sm = 228 * 1024;
    regs_per_sm = 65536;
    regs_per_thread_max = 255;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    warp_size = 32;
    transaction_bytes = 128;
    kernel_launch_us = 3.0;
    fma_issue_eff = 0.90;
    mma_issue_eff = 0.70;
    async_copy = true;
    l2_bytes = 50 * 1024 * 1024;
    l2_bw_ratio = 3.5;
  }

let by_name s =
  match String.lowercase_ascii s with
  | "p100" | "pascal" -> Some p100
  | "v100" | "volta" -> Some v100
  | "a100" | "ampere" -> Some a100
  | "h100" | "hopper" -> Some h100
  | _ -> None

let peak_gflops t = function
  | Precision.FP64 -> t.peak_gflops_fp64
  | Precision.FP32 | Precision.TF32 -> t.peak_gflops_fp32
  | Precision.FP16 -> t.peak_gflops_fp16

let tensor_gflops t = function
  | Precision.FP16 -> t.tensor_gflops_fp16
  | Precision.TF32 -> t.tensor_gflops_tf32
  | Precision.FP32 | Precision.FP64 -> 0.0

let pp fmt t =
  Format.fprintf fmt
    "%s: %d SMs, %.0f/%.0f GFLOPS (DP/SP), %.0f GB/s, %d KB smem/block"
    t.name t.sms t.peak_gflops_fp64 t.peak_gflops_fp32 t.dram_bw_gbs
    (t.smem_per_block / 1024)
