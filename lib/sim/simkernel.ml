open Tc_tensor
open Tc_gpu
open Tc_expr
open Cogent

type bound = Memory | Compute | Latency

let pp_bound fmt b =
  Format.pp_print_string fmt
    (match b with
    | Memory -> "memory-bound"
    | Compute -> "compute-bound"
    | Latency -> "latency-bound")

type detail = {
  tx_lhs : float;
  tx_rhs : float;
  tx_out : float;
  mem_eff : float;
  comp_eff : float;
  warp_eff : float;
  ilp_eff : float;
  launch_s : float;
}

type result = {
  time_s : float;
  gflops : float;
  transactions : float;
  bytes : float;
  mem_time_s : float;
  compute_time_s : float;
  occupancy : float;
  concurrency : float;
  bound : bound;
  detail : detail;
}

(* ---- calibration constants (see EXPERIMENTS.md) ---- *)

(* Fraction of peak DRAM bandwidth a fully coalesced streaming kernel
   achieves. *)
let mem_base_eff = 0.82

(* Occupancy needed to saturate DRAM bandwidth / the FP pipelines. *)
let mem_sat_occupancy = 0.20
let comp_sat_occupancy = 0.15

(* Occupancy needed to saturate DRAM under the pipelined schemas: cp.async
   keeps a full tile of loads in flight per block without register staging,
   so far fewer resident warps cover the latency (Ampere tuning guide's
   motivation for async copies). *)
let mem_sat_occupancy_async = 0.10

(* Per-iteration loop overhead (instructions) charged to the inner
   outer-product sweep, on top of FMAs and SMEM loads. *)
let loop_overhead = 2.0


(* ---- exact transaction counting ---- *)

let ceil_div a b = (a + b - 1) / b

(* One axis of a staged tile: [full] full tiles of size [tile] along the
   axis plus, when [rem > 0], one boundary tile of [rem] elements. *)
type axis = { tile : int; extent : int; full : int; rem : int }

let axis_of problem mapping i =
  let tile = Mapping.tile_of mapping i in
  let extent = Problem.extent problem i in
  { tile; extent; full = extent / tile; rem = extent mod tile }

(* Enumerate the full/partial boundary patterns of a tiled axis list.  Each
   pattern carries the number of staged instances with that shape and, per
   axis, the full axis descriptor, the in-range cut and a caller-chosen
   tag, preserving axis order. *)
let patterns axes =
  let rec go = function
    | [] -> [ (1.0, []) ]
    | (ax, tag) :: rest ->
        let tails = go rest in
        List.concat_map
          (fun (cnt, cuts) ->
            let full =
              if ax.full > 0 then
                [ (cnt *. float_of_int ax.full, (ax, ax.tile, tag) :: cuts) ]
              else []
            in
            let partial =
              if ax.rem > 0 then [ (cnt, (ax, ax.rem, tag) :: cuts) ] else []
            in
            full @ partial)
          tails
  in
  go axes

(* Transactions to load every staged instance of one input tensor, counted
   with the shared convention of {!Cogent.Txcount}: per boundary pattern,
   walk the padded cooperative sweep the emitted kernel executes (operand
   layout order, waves of [width] threads, out-of-range lanes masked) and
   weight by the number of (block-slice, step) instances with that shape.
   Blocks that differ only in external indices foreign to this tensor
   re-load the same slab (the foreign-block multiplier of the caller). *)
let load_transactions ~ept ~width problem mapping indices =
  let axes = List.map (fun i -> (axis_of problem mapping i, ())) indices in
  List.fold_left
    (fun acc (cnt, cuts) ->
      let _, rev_axes =
        List.fold_left
          (fun (stride, out) (ax, cut, ()) ->
            (stride * ax.extent, { Txcount.tile = ax.tile; cut; stride } :: out))
          (1, []) cuts
      in
      let tx_axes = Array.of_list (List.rev rev_axes) in
      acc +. (cnt *. float_of_int (Txcount.staged_sweep ~width ~ept tx_axes)))
    0.0 (patterns axes)

type ext_dim = Dtbx | Dtby | Dregx | Dregy | Dgrid

(* Transactions to store the output: one warp-synchronous wave of the full
   TBx*TBy thread grid per in-range register coordinate.  Threads enumerate
   the tbx bindings (fastest) then the tby bindings, address the output in
   its declared layout, and out-of-range threads are masked by the store
   guard — the same {!Cogent.Txcount} walk the interpreter measures. *)
let store_transactions ~ept problem mapping =
  let info = Problem.info problem in
  let dim_of i =
    let mem l = List.exists (fun b -> Index.equal b.Mapping.index i) l in
    if mem mapping.Mapping.tbx then Dtbx
    else if mem mapping.Mapping.tby then Dtby
    else if mem mapping.Mapping.regx then Dregx
    else if mem mapping.Mapping.regy then Dregy
    else Dgrid
  in
  let out_shape = Problem.out_shape problem in
  let width = Mapping.threads_per_block mapping in
  let axes =
    List.map
      (fun i -> (axis_of problem mapping i, (i, dim_of i)))
      info.Classify.externals
  in
  List.fold_left
    (fun acc (cnt, cuts) ->
      let cut_of i =
        match
          List.find_opt (fun (_, _, (j, _)) -> Index.equal i j) cuts
        with
        | Some (_, c, _) -> c
        | None -> 1
      in
      let thread_axes =
        List.map
          (fun b ->
            {
              Txcount.tile = b.Mapping.tile;
              cut = cut_of b.Mapping.index;
              stride = Shape.stride out_shape b.Mapping.index;
            })
          (mapping.Mapping.tbx @ mapping.Mapping.tby)
        |> Array.of_list
      in
      let wave = Txcount.staged_sweep ~width ~ept thread_axes in
      let reg_coords =
        List.fold_left
          (fun a (_, c, (_, d)) ->
            if d = Dregx || d = Dregy then a * c else a)
          1 cuts
      in
      acc +. (cnt *. float_of_int reg_coords *. float_of_int wave))
    0.0 (patterns axes)

(* DRAM-equivalent transactions for one input tensor: when the whole
   tensor fits comfortably in L2, only the first pass is served by DRAM
   and subsequent reloads stream from L2 at [l2_bw_ratio] times the DRAM
   rate. *)
let dram_equivalent (arch : Arch.t) prec problem indices trans =
  if arch.Arch.l2_bytes = 0 then trans
  else
    let bytes =
      float_of_int
        (List.fold_left (fun acc i -> acc * Problem.extent problem i) 1 indices
        * Precision.bytes prec)
    in
    if bytes > 0.8 *. float_of_int arch.Arch.l2_bytes then trans
    else
      let cold = bytes /. float_of_int arch.Arch.transaction_bytes in
      if trans <= cold then trans
      else cold +. ((trans -. cold) /. arch.Arch.l2_bw_ratio)

let transactions_exact ?arch prec problem mapping =
  let ept = Precision.elems_per_transaction prec in
  let info = Problem.info problem in
  let width = Mapping.threads_per_block mapping in
  let foreign_blocks indices =
    List.fold_left
      (fun acc i ->
        if List.exists (Index.equal i) indices then acc
        else
          acc * ceil_div (Problem.extent problem i) (Mapping.tile_of mapping i))
      1 info.Classify.externals
  in
  let lhs_idx = info.Classify.expr.Ast.lhs.Ast.indices in
  let rhs_idx = info.Classify.expr.Ast.rhs.Ast.indices in
  let lhs =
    load_transactions ~ept ~width problem mapping lhs_idx
    *. float_of_int (foreign_blocks lhs_idx)
  in
  let rhs =
    load_transactions ~ept ~width problem mapping rhs_idx
    *. float_of_int (foreign_blocks rhs_idx)
  in
  let out = store_transactions ~ept problem mapping in
  match arch with
  | None -> { Cost.lhs; rhs; out }
  | Some a ->
      {
        Cost.lhs = dram_equivalent a prec problem lhs_idx lhs;
        rhs = dram_equivalent a prec problem rhs_idx rhs;
        out;
      }

(* ---- timing ---- *)

let run (plan : Plan.t) =
  let arch = plan.Plan.arch in
  let prec = plan.Plan.precision in
  let problem = plan.Plan.problem in
  let mapping = plan.Plan.mapping in
  let tx = transactions_exact ~arch prec problem mapping in
  let transactions = tx.Cost.lhs +. tx.Cost.rhs +. tx.Cost.out in
  let bytes = transactions *. float_of_int arch.Arch.transaction_bytes in
  let occ_result = Plan.occupancy plan in
  let occ = occ_result.Occupancy.occupancy in
  let blocks = Plan.num_blocks plan in
  let act = max 1 occ_result.Occupancy.active_blocks_per_sm in
  let concurrency =
    min 1.0 (float_of_int blocks /. float_of_int (act * arch.Arch.sms))
  in
  if occ <= 0.0 || Plan.regs_per_thread plan > arch.Arch.regs_per_thread_max
  then
    {
      time_s = infinity;
      gflops = 0.0;
      transactions;
      bytes;
      mem_time_s = infinity;
      compute_time_s = infinity;
      occupancy = 0.0;
      concurrency;
      bound = Latency;
      detail =
        {
          tx_lhs = tx.Cost.lhs;
          tx_rhs = tx.Cost.rhs;
          tx_out = tx.Cost.out;
          mem_eff = 0.0;
          comp_eff = 0.0;
          warp_eff = 0.0;
          ilp_eff = 0.0;
          launch_s = arch.Arch.kernel_launch_us *. 1e-6;
        };
    }
  else begin
    (* Blocks smaller than a warp waste lanes on every access and issue. *)
    let warp_eff =
      min 1.0
        (float_of_int (Plan.threads_per_block plan)
        /. float_of_int arch.Arch.warp_size)
    in
    let schema = plan.Plan.schema in
    let mem_sat =
      if Schema.pipelined schema then mem_sat_occupancy_async
      else mem_sat_occupancy
    in
    let mem_eff =
      mem_base_eff *. min 1.0 (occ /. mem_sat) *. concurrency *. warp_eff
    in
    let mem_time = bytes /. (arch.Arch.dram_bw_gbs *. 1e9 *. mem_eff) in
    (* Padded compute: every block runs its full loop structure. *)
    let rx = float_of_int (Mapping.size_regx mapping) in
    let ry = float_of_int (Mapping.size_regy mapping) in
    let padded_flops =
      2.0
      *. float_of_int (Plan.threads_per_block plan)
      *. rx *. ry
      *. float_of_int (Mapping.size_tbk mapping)
      *. float_of_int (Plan.num_steps plan)
      *. float_of_int blocks
    in
    (* Vectorized (128-bit) SMEM loads feed the outer product, so register
       staging charges (rx+ry)/2 issue slots against rx*ry FMAs. *)
    let ilp_eff =
      rx *. ry /. ((rx *. ry) +. ((rx +. ry) /. 2.0) +. loop_overhead)
    in
    (* MMA schemas issue whole fragment operations: the scalar-ILP model is
       replaced by the tensor-core rate discounted for operand staging. *)
    let comp_eff =
      (if Schema.mma schema then arch.Arch.mma_issue_eff
       else arch.Arch.fma_issue_eff *. ilp_eff)
      *. min 1.0 (occ /. comp_sat_occupancy)
      *. concurrency *. warp_eff
    in
    (* The emitted scalar kernels issue one FMA per element: fp16 operands
       are promoted to single precision (no half2 vectorization), so the
       SIMT ceiling for fp16 is the fp32 FMA rate, not the packed-half
       peak.  Only the MMA schema reaches the tensor-core rate. *)
    let peak =
      (if Schema.mma schema then Arch.tensor_gflops arch prec
       else
         match prec with
         | Precision.FP16 -> Arch.peak_gflops arch Precision.FP32
         | _ -> Arch.peak_gflops arch prec)
      *. 1e9
    in
    let compute_time = padded_flops /. (peak *. comp_eff) in
    let launch = arch.Arch.kernel_launch_us *. 1e-6 in
    let body = Float.max mem_time compute_time in
    let time = body +. launch in
    let bound =
      if launch > body then Latency
      else if mem_time >= compute_time then Memory
      else Compute
    in
    let result =
      {
        time_s = time;
        gflops = Problem.flops problem /. time /. 1e9;
        transactions;
        bytes;
        mem_time_s = mem_time;
        compute_time_s = compute_time;
        occupancy = occ;
        concurrency;
        bound;
        detail =
          {
            tx_lhs = tx.Cost.lhs;
            tx_rhs = tx.Cost.rhs;
            tx_out = tx.Cost.out;
            mem_eff;
            comp_eff;
            warp_eff;
            ilp_eff;
            launch_s = launch;
          };
      }
    in
    if Tc_obs.Trace.enabled () then
      Tc_obs.Trace.instant "sim.run"
        ~args:
          [
            ("gflops", Tc_obs.Trace.Float result.gflops);
            ("bound", Tc_obs.Trace.String (Format.asprintf "%a" pp_bound bound));
            ("mem_ms", Tc_obs.Trace.Float (mem_time *. 1e3));
            ("compute_ms", Tc_obs.Trace.Float (compute_time *. 1e3));
          ];
    result
  end

let gflops plan = (run plan).gflops
