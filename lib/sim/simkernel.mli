(** Analytical execution simulator for generated kernels.

    Stands in for running the emitted CUDA on real P100/V100 hardware (see
    DESIGN.md, substitutions).  Unlike the Algorithm-3 cost model — which
    deliberately stays coarse because it has to rank millions of
    configurations — the simulator "measures" a single plan in more detail:

    - exact DRAM transaction counts including boundary (partial) tiles and
      transaction granularity per tensor;
    - occupancy-derated achievable bandwidth and a low-concurrency penalty
      when the grid cannot fill the device;
    - an instruction-mix ceiling on compute throughput (outer-product FMAs
      vs shared-memory loads and loop overhead), with padded-tile compute
      counted in full as real kernels do;
    - a roofline combination plus kernel launch latency.

    The absolute constants are calibrated against the GFLOPS ranges
    published in the paper (see EXPERIMENTS.md); relative behaviour between
    configurations emerges from the traffic and occupancy math.

    The plan's kernel schema changes the roofline terms: pipelined schemas
    saturate DRAM at a lower occupancy (async copies cover load latency
    without resident-warp parallelism), and the MMA schema prices compute
    against the device's dense tensor-core rate derated by
    [Arch.mma_issue_eff] instead of the scalar FMA/ILP model.  Classic
    plans are priced exactly as before the schemas existed. *)

type bound = Memory | Compute | Latency

val pp_bound : Format.formatter -> bound -> unit

type detail = {
  tx_lhs : float;  (** DRAM-equivalent transactions loading the lhs *)
  tx_rhs : float;
  tx_out : float;  (** transactions storing the output *)
  mem_eff : float;
      (** achieved fraction of peak DRAM bandwidth (base streaming
          efficiency × occupancy saturation × concurrency × warp fill) *)
  comp_eff : float;  (** achieved fraction of peak FLOP issue rate *)
  warp_eff : float;  (** lane utilization of sub-warp blocks *)
  ilp_eff : float;  (** FMA slots vs register staging + loop overhead *)
  launch_s : float;  (** kernel launch latency charged *)
}
(** The roofline components behind a {!result} — how each derating factor
    contributed, so a prediction can be audited term by term (the same
    inspectability argument Peise et al. make for BLAS-based prediction). *)

type result = {
  time_s : float;
  gflops : float;
  transactions : float;  (** simulated DRAM transactions (in-range) *)
  bytes : float;
  mem_time_s : float;
  compute_time_s : float;
  occupancy : float;
  concurrency : float;  (** fraction of the device the grid can fill *)
  bound : bound;
  detail : detail;
}

val run : Cogent.Plan.t -> result
(** Simulate one kernel execution of the plan at its problem's
    representative size. *)

val gflops : Cogent.Plan.t -> float

val transactions_exact :
  ?arch:Tc_gpu.Arch.t -> Tc_gpu.Precision.t -> Tc_expr.Problem.t
  -> Cogent.Mapping.t -> Cogent.Cost.breakdown
(** Boundary-exact transaction counts (the simulator's memory model),
    exposed for validation against the Algorithm-3 estimates.  When [arch]
    is given, input-tensor reloads that fit in its L2 are discounted to
    their DRAM-equivalent cost. *)
