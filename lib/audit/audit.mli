(** Cost-model accuracy observatory.

    The serving layer dispatches COGENT-vs-TTGT by {e predicted} time, and
    the roadmap's next steps (n-way GETT dispatch, branch-and-bound
    pruning against a cost bound) lean even harder on the model being
    trustworthy.  This module records one structured {!sample} per
    executed plan — the Algorithm-3 cost, the analytical
    {!Tc_sim.Simkernel.transactions_exact} counters, the
    {!Cogent.Interp.measure} ground truth, both engines' predicted times
    on the plan's representative problem {e and} on the request's own
    problem — and aggregates them into per-(suite, arch, precision)
    calibration tables plus a {b dispatch regret} account: requests where
    the losing strategy would have been faster on the request's own
    extents, and by how much.

    Regret can only arise through the plan cache's size-class
    approximation (§IV-B "closest representative"): dispatch compares the
    engines on the representative problem, while the request runs at its
    own extents.  On the representative itself the chosen engine is the
    minimum by construction and regret is identically zero.

    Every input is a deterministic model evaluation, so samples, reports
    and the persisted {!Ledger} are byte-identical at any worker-domain
    count and across cold/warm stores (CI-enforced alongside the serve
    replay gate). *)

type tx = { lhs : float; rhs : float; out : float }
(** DRAM transactions per tensor (load A, load B, store C). *)

type sample = {
  suite : string;  (** producer: ["serve"], ["fig4"], ["eq1"], ... *)
  request : string;  (** request id (["req-007"]) or suite entry name *)
  key : string;  (** the {!Cogent.Cache.key} the plan is filed under *)
  expr : string;  (** canonical TCCG form of the contraction *)
  arch : string;
  precision : string;
  strategy : string;  (** dispatch winner on the representative problem *)
  degraded : bool;  (** plan came from a budget-truncated search *)
  pred_cogent_s : float;  (** simulator prediction, representative problem *)
  pred_ttgt_s : float;  (** TTGT model prediction, representative problem *)
  own_cogent_s : float;  (** simulator prediction at the request's extents *)
  own_ttgt_s : float;  (** TTGT prediction at the request's extents *)
  own_approx : bool;
      (** the cached mapping could not be re-planned at the request's
          extents; own times fell back to the representative's (regret 0) *)
  regret_s : float;
      (** [max 0 (chosen - alternative)] on the request's own problem *)
  model_cost : float;  (** Algorithm-3 total (the ranking quantity) *)
  model_tx : tx;  (** Algorithm-3 per-tensor estimate *)
  exact_tx : tx;  (** boundary-exact analytical counters (no-L2 mode) *)
  measured_tx : tx;  (** {!Cogent.Interp.measure} ground truth *)
  sim_time_s : float;  (** simulated kernel time, representative problem *)
}

val tx_total : tx -> float

val tx_rel_err : sample -> float
(** Relative error of the Algorithm-3 total against the measured total,
    [|model - measured| / max measured 1] (the {!Tc_profile.Profile}
    convention). *)

val tx_signed_err : sample -> float
(** Same denominator, signed: positive = the model over-charges. *)

val sim_mismatch : sample -> bool
(** True iff the analytical exact counters diverge from the measured
    counters on any tensor — a model bug (the simulator contract is exact
    agreement in no-L2 mode). *)

val dispatch_regret :
  ctx:Cogent.Ctx.t ->
  own:Tc_expr.Problem.t ->
  Cogent.Plan.t ->
  float * float * float * bool
(** [dispatch_regret ~ctx ~own plan] evaluates both engines at the
    request's own extents: [(own_cogent_s, own_ttgt_s, regret_s,
    own_approx)], where the chosen side is re-derived from the
    representative-problem predictions exactly as the serving layer
    dispatches.  The serving layer calls this per request even without a
    collector attached. *)

val sample :
  suite:string ->
  request:string ->
  key:string ->
  ctx:Cogent.Ctx.t ->
  ?own:Tc_expr.Problem.t ->
  ?measured:Cogent.Interp.counters ->
  degraded:bool ->
  Cogent.Plan.t ->
  sample
(** Build one sample from a plan: runs the simulator, the TTGT model, the
    exact transaction counters and — unless [measured] is supplied (the
    serving layer computes it once per distinct key, inside the pooled
    generation fan-out) — the interpreter's counter-only replay.  [own]
    defaults to the plan's own (representative) problem, making regret 0. *)

(** {1 Collecting} *)

type collector
(** An append-only sample sink.  The serving layer appends strictly in
    request order, after the parallel section, so {!samples} is
    deterministic whenever the workload is. *)

val collector : unit -> collector
val add : collector -> sample -> unit
val samples : collector -> sample list
(** In insertion order. *)

val record_regret : float -> unit
(** Bump the global-registry regret instruments
    ([cogent.audit.regret_requests] counter — positive regret only — and
    the [cogent.audit.regret_seconds] histogram).  Call sequentially in
    request order only: the instruments are part of the CI replay gate's
    deterministic metric subset. *)

val record_sample : sample -> unit
(** Bump [cogent.audit.samples] and the [cogent.audit.tx_rel_err] error
    histogram for one collected sample (same ordering rule as
    {!record_regret}). *)

(** {1 Aggregation} *)

val entries : sample list -> Tc_profile.Benchrep.entry list
(** One cogent-bench/1 entry per (suite, arch, precision) group,
    first-appearance order, named [suite/arch/precision].  Three
    strategies per entry:
    - ["calibration"]: [samples], [tx_err_p50]/[_p90]/[_p99] (bucket
      quantiles via {!Tc_obs.Metrics.quantile}), [tx_err_max],
      [tx_err_bias] (mean signed error), [sim_mismatches];
    - ["dispatch"]: [to_cogent], [to_ttgt], [pred_ms_sum] (chosen
      engine's predicted time summed in sample order — the
      calibration-drift tripwire: any {!Tc_sim.Simkernel} constant change
      moves it);
    - ["regret"]: [requests] (samples with positive regret), [rate],
      [total_ms], [max_ms], [p99_ms]. *)

val doc : ?wall_s:float -> ?jobs:int -> sample list -> Tc_profile.Benchrep.doc
(** {!entries} wrapped as a cogent-bench/1 document (target ["audit"]).
    [wall_s]/[jobs] default to 0 so [cogent audit --json] output is a pure
    function of the ledger — byte-identical across job counts and
    cold/warm replays. *)

val tolerances : Tc_profile.Benchrep.tolerance list
(** The drift gate's per-metric allowances: counts and [pred_ms_sum] are
    {!Tc_profile.Benchrep.Exact}; error quantiles and regret magnitudes
    are [Lower_better] with a 5% allowance; [requests]/[rate] are
    [Lower_better] with zero allowance (any new regret fails CI). *)

val render : sample list -> string
(** Human-readable calibration report (the golden-locked surface):
    per-group dispatch mix, error quantiles, simulator agreement, regret
    account, then one line per sample. *)
