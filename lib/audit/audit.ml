open Tc_gpu
open Tc_expr
module Metrics = Tc_obs.Metrics
module Benchrep = Tc_profile.Benchrep

type tx = { lhs : float; rhs : float; out : float }

type sample = {
  suite : string;
  request : string;
  key : string;
  expr : string;
  arch : string;
  precision : string;
  strategy : string;
  degraded : bool;
  pred_cogent_s : float;
  pred_ttgt_s : float;
  own_cogent_s : float;
  own_ttgt_s : float;
  own_approx : bool;
  regret_s : float;
  model_cost : float;
  model_tx : tx;
  exact_tx : tx;
  measured_tx : tx;
  sim_time_s : float;
}

let tx_total t = t.lhs +. t.rhs +. t.out

(* The Tc_profile.Profile error convention: relative to the measured
   value, clamped at 1 so tiny denominators cannot explode the ratio. *)
let tx_rel_err s =
  let m = tx_total s.measured_tx in
  Float.abs (tx_total s.model_tx -. m) /. Float.max (Float.abs m) 1.0

let tx_signed_err s =
  let m = tx_total s.measured_tx in
  (tx_total s.model_tx -. m) /. Float.max (Float.abs m) 1.0

let sim_mismatch s = s.exact_tx <> s.measured_tx

let pred_chosen_s s =
  if String.equal s.strategy "cogent" then s.pred_cogent_s else s.pred_ttgt_s

(* ---- sampling ---- *)

let predictions ctx (plan : Cogent.Plan.t) =
  let sim = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.time_s in
  let tt =
    (Tc_ttgt.Ttgt.run_ctx ctx plan.Cogent.Plan.problem).Tc_ttgt.Ttgt.time_s
  in
  (sim, tt)

let dispatch_regret ~ctx ~own (plan : Cogent.Plan.t) =
  let pred_cogent, pred_ttgt = predictions ctx plan in
  let cogent_chosen = pred_cogent <= pred_ttgt in
  match
    Cogent.Plan.make ~problem:own ~mapping:plan.Cogent.Plan.mapping
      ~arch:plan.Cogent.Plan.arch ~precision:plan.Cogent.Plan.precision
  with
  | own_plan ->
      let oc = (Tc_sim.Simkernel.run own_plan).Tc_sim.Simkernel.time_s in
      let ot = (Tc_ttgt.Ttgt.run_ctx ctx own).Tc_ttgt.Ttgt.time_s in
      let regret =
        if cogent_chosen then Float.max 0.0 (oc -. ot)
        else Float.max 0.0 (ot -. oc)
      in
      (oc, ot, regret, false)
  | exception Invalid_argument _ ->
      (* The cached mapping does not survive re-planning at the request's
         own extents; fall back to the representative's numbers, where the
         chosen side is the minimum and regret is 0 by construction. *)
      (pred_cogent, pred_ttgt, 0.0, true)

let breakdown_tx (b : Cogent.Cost.breakdown) =
  { lhs = b.Cogent.Cost.lhs; rhs = b.rhs; out = b.out }

let sample ~suite ~request ~key ~ctx ?own ?measured ~degraded
    (plan : Cogent.Plan.t) =
  let problem = plan.Cogent.Plan.problem in
  let mapping = plan.Cogent.Plan.mapping in
  let prec = plan.Cogent.Plan.precision in
  let own = Option.value ~default:problem own in
  let pred_cogent_s, pred_ttgt_s = predictions ctx plan in
  let strategy = if pred_cogent_s <= pred_ttgt_s then "cogent" else "ttgt" in
  let own_cogent_s, own_ttgt_s, regret_s, own_approx =
    dispatch_regret ~ctx ~own plan
  in
  let measured =
    match measured with
    | Some c -> c
    | None -> Cogent.Interp.measure plan
  in
  {
    suite;
    request;
    key;
    expr = Ast.tccg_string (Problem.info problem).Classify.original;
    arch = plan.Cogent.Plan.arch.Arch.name;
    precision = Precision.to_string prec;
    strategy;
    degraded;
    pred_cogent_s;
    pred_ttgt_s;
    own_cogent_s;
    own_ttgt_s;
    own_approx;
    regret_s;
    model_cost = plan.Cogent.Plan.cost;
    model_tx = breakdown_tx (Cogent.Cost.transactions prec problem mapping);
    exact_tx =
      breakdown_tx (Tc_sim.Simkernel.transactions_exact prec problem mapping);
    measured_tx =
      {
        lhs = measured.Cogent.Interp.tx_lhs;
        rhs = measured.Cogent.Interp.tx_rhs;
        out = measured.Cogent.Interp.tx_out;
      };
    sim_time_s = (Tc_sim.Simkernel.run plan).Tc_sim.Simkernel.time_s;
  }

(* ---- collecting ---- *)

type collector = { mutable rev : sample list }

let collector () = { rev = [] }
let add c s = c.rev <- s :: c.rev
let samples c = List.rev c.rev

(* Finer-than-default buckets so the quantile interpolation resolves the
   few-percent error band the cost model actually lives in (the default
   powers-of-ten ladder would lump everything under 10% into one bucket). *)
let err_buckets =
  [
    0.0001; 0.0002; 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2;
    0.5; 1.0; 2.0;
  ]

let regret_ms_buckets =
  [
    0.0001; 0.0002; 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2;
    0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0;
  ]

(* ---- global-registry instruments (the serving layer's audit hook) ----

   All observed sequentially in request order, never from pool workers,
   so counts AND float sums are bit-identical at any job count — these
   names join the CI replay gate's deterministic metric subset, the
   cogent_audit_ prefix. *)

let regret_counter () = Metrics.counter "cogent.audit.regret_requests"
let regret_hist () = Metrics.histogram "cogent.audit.regret_seconds"
let samples_counter () = Metrics.counter "cogent.audit.samples"

let err_hist () =
  Metrics.histogram ~buckets:err_buckets "cogent.audit.tx_rel_err"

let record_regret regret_s =
  if regret_s > 0.0 then Metrics.incr (regret_counter ());
  Metrics.observe (regret_hist ()) regret_s

let record_sample s =
  Metrics.incr (samples_counter ());
  Metrics.observe (err_hist ()) (tx_rel_err s)

(* ---- aggregation ---- *)

(* The bucket-quantile estimate over a value list, via an isolated
   registry — the same machinery (and therefore the same semantics) as
   the serving layer's Prometheus histograms. *)
let quantile_fn ~buckets values =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets "q" in
  List.iter (Metrics.observe h) values;
  match Metrics.snapshot reg with
  | [ item ] -> fun q -> Option.value ~default:0.0 (Metrics.quantile item q)
  | _ -> fun _ -> 0.0

let group_keys samples =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun s ->
      let g = (s.suite, s.arch, s.precision) in
      if Hashtbl.mem seen g then None
      else begin
        Hashtbl.add seen g ();
        Some g
      end)
    samples

let count p l = List.length (List.filter p l)

type group_stats = {
  n : int;
  to_cogent : int;
  to_ttgt : int;
  pred_ms_sum : float;
  err_q : float -> float;
  err_max : float;
  err_bias : float;
  mismatches : int;
  regret_requests : int;
  regret_rate : float;
  regret_total_ms : float;
  regret_max_ms : float;
  regret_q : float -> float;
}

let group_stats group =
  let n = List.length group in
  let errs = List.map tx_rel_err group in
  let regrets_ms = List.map (fun s -> s.regret_s *. 1e3) group in
  let fsum l = List.fold_left ( +. ) 0.0 l in
  let regret_requests = count (fun s -> s.regret_s > 0.0) group in
  {
    n;
    to_cogent = count (fun s -> String.equal s.strategy "cogent") group;
    to_ttgt = count (fun s -> String.equal s.strategy "ttgt") group;
    pred_ms_sum = fsum (List.map (fun s -> pred_chosen_s s *. 1e3) group);
    err_q = quantile_fn ~buckets:err_buckets errs;
    err_max = List.fold_left Float.max 0.0 errs;
    err_bias = fsum (List.map tx_signed_err group) /. float_of_int (max 1 n);
    mismatches = count sim_mismatch group;
    regret_requests;
    regret_rate = float_of_int regret_requests /. float_of_int (max 1 n);
    regret_total_ms = fsum regrets_ms;
    regret_max_ms = List.fold_left Float.max 0.0 regrets_ms;
    regret_q =
      quantile_fn ~buckets:regret_ms_buckets
        (List.filter (fun r -> r > 0.0) regrets_ms);
  }

let entries samples =
  List.map
    (fun ((suite, arch, precision) as g) ->
      let group =
        List.filter (fun s -> (s.suite, s.arch, s.precision) = g) samples
      in
      let st = group_stats group in
      {
        Benchrep.name = Printf.sprintf "%s/%s/%s" suite arch precision;
        expr = "-";
        arch;
        precision;
        strategies =
          [
            {
              Benchrep.strategy = "calibration";
              metrics =
                [
                  ("samples", float_of_int st.n);
                  ("tx_err_p50", st.err_q 0.5);
                  ("tx_err_p90", st.err_q 0.9);
                  ("tx_err_p99", st.err_q 0.99);
                  ("tx_err_max", st.err_max);
                  ("tx_err_bias", st.err_bias);
                  ("sim_mismatches", float_of_int st.mismatches);
                ];
              config = None;
            };
            {
              Benchrep.strategy = "dispatch";
              metrics =
                [
                  ("to_cogent", float_of_int st.to_cogent);
                  ("to_ttgt", float_of_int st.to_ttgt);
                  ("pred_ms_sum", st.pred_ms_sum);
                ];
              config = None;
            };
            {
              Benchrep.strategy = "regret";
              metrics =
                [
                  ("requests", float_of_int st.regret_requests);
                  ("rate", st.regret_rate);
                  ("total_ms", st.regret_total_ms);
                  ("max_ms", st.regret_max_ms);
                  ("p99_ms", st.regret_q 0.99);
                ];
              config = None;
            };
          ];
      })
    (group_keys samples)

let doc ?(wall_s = 0.0) ?(jobs = 0) samples =
  { Benchrep.target = "audit"; wall_s; jobs; entries = entries samples }

let tolerances =
  let t metric rel direction = { Benchrep.metric; rel; direction } in
  [
    t "samples" 0.0 Benchrep.Exact;
    t "sim_mismatches" 0.0 Benchrep.Exact;
    t "tx_err_p50" 0.05 Benchrep.Lower_better;
    t "tx_err_p90" 0.05 Benchrep.Lower_better;
    t "tx_err_p99" 0.05 Benchrep.Lower_better;
    t "tx_err_max" 0.05 Benchrep.Lower_better;
    t "to_cogent" 0.0 Benchrep.Exact;
    t "to_ttgt" 0.0 Benchrep.Exact;
    t "pred_ms_sum" 0.0 Benchrep.Exact;
    t "requests" 0.0 Benchrep.Lower_better;
    t "rate" 0.0 Benchrep.Lower_better;
    t "total_ms" 0.05 Benchrep.Lower_better;
    t "max_ms" 0.05 Benchrep.Lower_better;
    t "p99_ms" 0.05 Benchrep.Lower_better;
  ]

(* ---- rendering ---- *)

let pct f = Printf.sprintf "%.2f%%" (100.0 *. f)

let render samples =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "cost-model accuracy audit\n";
  p "=========================\n";
  p "samples: %d across %d group(s)\n" (List.length samples)
    (List.length (group_keys samples));
  List.iter
    (fun ((suite, arch, precision) as g) ->
      let group =
        List.filter (fun s -> (s.suite, s.arch, s.precision) = g) samples
      in
      let st = group_stats group in
      p "\ngroup %s (%s, %s): %d sample(s)\n" suite arch precision st.n;
      p "  dispatch        cogent %d, ttgt %d, predicted %.3f ms total\n"
        st.to_cogent st.to_ttgt st.pred_ms_sum;
      p "  model tx error  p50 %s  p90 %s  p99 %s  max %s  bias %+.2f%%\n"
        (pct (st.err_q 0.5)) (pct (st.err_q 0.9)) (pct (st.err_q 0.99))
        (pct st.err_max) (100.0 *. st.err_bias);
      p "  simulator       %d mismatch(es) vs measured counters\n"
        st.mismatches;
      p "  regret          %d request(s), %s rate, total %.3f ms, max %.3f ms\n"
        st.regret_requests (pct st.regret_rate) st.regret_total_ms
        st.regret_max_ms;
      p "  %-10s %-18s %-8s %12s %12s %10s\n" "request" "expr" "strategy"
        "pred ms" "regret ms" "tx err";
      List.iter
        (fun s ->
          p "  %-10s %-18s %-8s %12.3f %12.3f %10s%s%s\n" s.request s.expr
            s.strategy
            (pred_chosen_s s *. 1e3)
            (s.regret_s *. 1e3)
            (pct (tx_rel_err s))
            (if s.degraded then "  [degraded]" else "")
            (if s.own_approx then "  [own-approx]" else ""))
        group)
    (group_keys samples);
  Buffer.contents buf
