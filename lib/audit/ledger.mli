(** On-disk audit ledger: the persisted form of {!Audit.sample}s.

    Mirrors {!Tc_serve.Planstore}'s codec discipline: a versioned JSONL
    file ([{"schema":"cogent-audit/1"}] header, one sample object per
    line), written atomically (tmp + rename) and loaded tolerantly — a
    corrupt row (a crashed writer's truncated tail) is skipped with a
    stderr notice naming the offending line number, a bump of the
    [cogent.audit.ledger.corrupt_rows] counter and the line number on the
    [cogent.audit.ledger.corrupt_line] gauge.  A missing directory loads
    as empty; a wrong or missing schema header is an error.

    Samples are deterministic model output appended in request order, so
    a saved ledger is byte-identical across worker-domain counts and
    cold/warm store replays — CI diffs the files directly. *)

val schema : string
(** ["cogent-audit/1"]. *)

val file : dir:string -> string
(** [dir/audit.jsonl]. *)

val save : dir:string -> Audit.sample list -> unit
(** Atomic write of the whole ledger (creates [dir] if needed). *)

val load : dir:string -> (Audit.sample list, string) result
(** All well-formed rows, in file order. *)
