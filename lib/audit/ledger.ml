module J = Tc_obs.Json

let schema = "cogent-audit/1"
let file ~dir = Filename.concat dir "audit.jsonl"
let ( let* ) = Result.bind

(* ---- decoding primitives (the Planstore conventions) ---- *)

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string = function
  | J.String s -> Ok s
  | _ -> Error "expected a string"

let as_bool = function J.Bool b -> Ok b | _ -> Error "expected a bool"

let as_float j =
  match J.to_float j with Some f -> Ok f | None -> Error "expected a number"

let str name j = Result.bind (field name j) as_string
let boolean name j = Result.bind (field name j) as_bool
let num name j = Result.bind (field name j) as_float

(* ---- sample codec ---- *)

let tx_to_json (t : Audit.tx) =
  J.Obj
    [
      ("lhs", J.Float t.Audit.lhs);
      ("rhs", J.Float t.Audit.rhs);
      ("out", J.Float t.Audit.out);
    ]

let tx_of_json j =
  let* lhs = num "lhs" j in
  let* rhs = num "rhs" j in
  let* out = num "out" j in
  Ok { Audit.lhs; rhs; out }

let sample_to_json (s : Audit.sample) =
  J.Obj
    [
      ("suite", J.String s.Audit.suite);
      ("request", J.String s.request);
      ("key", J.String s.key);
      ("expr", J.String s.expr);
      ("arch", J.String s.arch);
      ("precision", J.String s.precision);
      ("strategy", J.String s.strategy);
      ("degraded", J.Bool s.degraded);
      ("pred_cogent_s", J.Float s.pred_cogent_s);
      ("pred_ttgt_s", J.Float s.pred_ttgt_s);
      ("own_cogent_s", J.Float s.own_cogent_s);
      ("own_ttgt_s", J.Float s.own_ttgt_s);
      ("own_approx", J.Bool s.own_approx);
      ("regret_s", J.Float s.regret_s);
      ("model_cost", J.Float s.model_cost);
      ("model_tx", tx_to_json s.model_tx);
      ("exact_tx", tx_to_json s.exact_tx);
      ("measured_tx", tx_to_json s.measured_tx);
      ("sim_time_s", J.Float s.sim_time_s);
    ]

let sample_of_json j =
  let* suite = str "suite" j in
  let* request = str "request" j in
  let* key = str "key" j in
  let* expr = str "expr" j in
  let* arch = str "arch" j in
  let* precision = str "precision" j in
  let* strategy = str "strategy" j in
  let* degraded = boolean "degraded" j in
  let* pred_cogent_s = num "pred_cogent_s" j in
  let* pred_ttgt_s = num "pred_ttgt_s" j in
  let* own_cogent_s = num "own_cogent_s" j in
  let* own_ttgt_s = num "own_ttgt_s" j in
  let* own_approx = boolean "own_approx" j in
  let* regret_s = num "regret_s" j in
  let* model_cost = num "model_cost" j in
  let* model_tx = Result.bind (field "model_tx" j) tx_of_json in
  let* exact_tx = Result.bind (field "exact_tx" j) tx_of_json in
  let* measured_tx = Result.bind (field "measured_tx" j) tx_of_json in
  let* sim_time_s = num "sim_time_s" j in
  Ok
    {
      Audit.suite;
      request;
      key;
      expr;
      arch;
      precision;
      strategy;
      degraded;
      pred_cogent_s;
      pred_ttgt_s;
      own_cogent_s;
      own_ttgt_s;
      own_approx;
      regret_s;
      model_cost;
      model_tx;
      exact_tx;
      measured_tx;
      sim_time_s;
    }

let row_of_line line =
  let* j = Result.map_error (fun m -> "bad JSON: " ^ m) (J.parse line) in
  sample_of_json j

(* ---- I/O ---- *)

let corrupt_rows () = Tc_obs.Metrics.counter "cogent.audit.ledger.corrupt_rows"

let corrupt_line () =
  Tc_obs.Metrics.gauge "cogent.audit.ledger.corrupt_line"

let load ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | l -> go (l :: acc)
          in
          go [])
    in
    match lines with
    | [] -> Error (path ^ ": empty audit ledger (missing schema header)")
    | header :: rows -> (
        match J.parse header with
        | Ok (J.Obj _ as h) when J.member "schema" h = Some (J.String schema)
          ->
            Ok
              (* [i] counts data rows; the header is file line 1. *)
              (List.mapi (fun i line -> (i + 2, line)) rows
              |> List.filter_map (fun (lineno, line) ->
                     if String.trim line = "" then None
                     else
                       match row_of_line line with
                       | Ok s -> Some s
                       | Error m ->
                           Tc_obs.Metrics.incr (corrupt_rows ());
                           Tc_obs.Metrics.set (corrupt_line ())
                             (float_of_int lineno);
                           Printf.eprintf
                             "cogent: %s:%d: skipping corrupt audit row \
                              (%s)\n\
                              %!"
                             path lineno m;
                           None))
        | _ ->
            Error
              (Printf.sprintf "%s: not a %s ledger (bad schema header)" path
                 schema))

let save ~dir samples =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string (J.Obj [ ("schema", J.String schema) ]));
      output_char oc '\n';
      List.iter
        (fun s ->
          output_string oc (J.to_string (sample_to_json s));
          output_char oc '\n')
        samples);
  Sys.rename tmp path
