(** Representative problem sizes: the extent of each index.

    The code generator does not need exact problem sizes at compile time —
    only representative ones used by the cost model to pick tile sizes and
    mappings (§IV-B). *)

open Tc_tensor

type t = int Index.Map.t

val of_list : (Index.t * int) list -> t
(** Order-insensitive: the entries are inserted in index order, so equal
    size maps are structurally identical (safe to compare with [=]).
    @raise Invalid_argument on duplicates or non-positive extents. *)

val uniform : Index.t list -> int -> t
(** Every listed index gets the same extent. *)

val parse : string -> (t, string) result
(** Parses ["a=16,b=24,c=8"]; whitespace around tokens is ignored. *)

val extent : t -> Index.t -> int
(** @raise Not_found if the index has no extent. *)

val extent_opt : t -> Index.t -> int option
val covers : t -> Index.t list -> bool
val product : t -> Index.t list -> int
(** Product of the extents of the given indices (1 for the empty list). *)

val to_list : t -> (Index.t * int) list
val pp : Format.formatter -> t -> unit
