open Tc_tensor

type t = int

let slot i = Char.code i - Char.code 'a'
let empty = 0
let is_empty s = s = 0
let singleton i = 1 lsl slot i
let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let mem i s = s land singleton i <> 0
let of_list l = List.fold_left (fun s i -> add i s) empty l
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal a b = a = b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  go 0 s

let fold f s acc =
  let rec go k acc =
    if k > slot 'z' then acc
    else
      go (k + 1)
        (if s land (1 lsl k) <> 0 then f (Char.chr (k + Char.code 'a')) acc
         else acc)
  in
  go 0 acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])
let pp fmt s = Index.list_pp fmt (to_list s)
