(** Small sets of tensor indices as int bitsets.

    An {!Tc_tensor.Index.t} is one of the 26 letters [a..z], so a whole
    index set fits in one immediate [int] (bit [i - 'a'] set iff [i] is a
    member).  The planner's inner loops — enumeration products, prune
    checks, cost sweeps — run membership tests and unions per candidate
    configuration; with this representation they are single machine
    instructions and allocate nothing, unlike the [Index.t list] /
    [Index.Set] operations they replace. *)

open Tc_tensor

type t = private int
(** A set of indices.  The representation is exposed as [private int] so
    hot loops can compare and hash sets for free; construct only through
    the functions below. *)

val slot : Index.t -> int
(** [slot i] is the bit position of [i]: [0] for ['a'] … [25] for ['z'].
    Also the canonical array slot for per-index side tables (see
    [Cogent.Tiles]). *)

val empty : t
val is_empty : t -> bool
val singleton : Index.t -> t
val add : Index.t -> t -> t
val remove : Index.t -> t -> t
val mem : Index.t -> t -> bool
val of_list : Index.t list -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] iff every member of [a] is in [b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val fold : (Index.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds in ascending index order. *)

val to_list : t -> Index.t list
(** Members in ascending order. *)

val pp : Format.formatter -> t -> unit
(** Compact TCCG form, e.g. [abce]. *)
