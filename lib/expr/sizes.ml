open Tc_tensor

type t = int Index.Map.t

let of_list l =
  (* Insert in index order so that equal size maps are structurally
     identical whatever order the caller listed them in — the serving
     layer's plan store relies on rebuilt problems comparing equal with
     (=) to the originals. *)
  List.fold_left
    (fun acc (i, n) ->
      if n <= 0 then
        invalid_arg (Printf.sprintf "Sizes: extent of %c must be positive" i);
      if Index.Map.mem i acc then
        invalid_arg (Printf.sprintf "Sizes: duplicate extent for %c" i);
      Index.Map.add i n acc)
    Index.Map.empty
    (List.stable_sort (fun (a, _) (b, _) -> Index.compare a b) l)

let uniform indices n = of_list (List.map (fun i -> (i, n)) indices)

let parse s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let parse_item item =
    match String.index_opt item '=' with
    | None -> Error (Printf.sprintf "expected index=extent, got %S" item)
    | Some k ->
        let name = String.trim (String.sub item 0 k) in
        let value =
          String.trim (String.sub item (k + 1) (String.length item - k - 1))
        in
        if String.length name <> 1 || not (Index.is_valid name.[0]) then
          Error (Printf.sprintf "invalid index name %S" name)
        else begin
          match int_of_string_opt value with
          | Some n when n > 0 -> Ok (name.[0], n)
          | _ -> Error (Printf.sprintf "invalid extent %S for index %s" value name)
        end
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
        match parse_item item with
        | Ok p -> go (p :: acc) rest
        | Error e -> Error e)
  in
  match go [] items with
  | Error e -> Error e
  | Ok pairs -> (
      try Ok (of_list pairs) with Invalid_argument m -> Error m)

let extent t i = Index.Map.find i t
let extent_opt t i = Index.Map.find_opt i t
let covers t indices = List.for_all (fun i -> Index.Map.mem i t) indices
let product t indices = List.fold_left (fun acc i -> acc * extent t i) 1 indices
let to_list t = Index.Map.bindings t

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
    (fun fmt (i, n) -> Format.fprintf fmt "%c=%d" i n)
    fmt (to_list t)
