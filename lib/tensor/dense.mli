(** Dense tensors over [float], stored in the canonical FVI-first layout
    described by their {!Shape.t}.

    Element [(i0, i1, ..., ik)] (given in shape order, FVI first) lives at
    linear offset [i0 + N0*(i1 + N1*(i2 + ...))]. *)

type t

val create : Shape.t -> t
(** A zero-filled tensor. *)

val shape : t -> Shape.t
val numel : t -> int

val get : t -> int array -> float
(** [get t pos] reads the element at multi-index [pos] (shape order).
    @raise Invalid_argument if [pos] has the wrong rank or is out of range. *)

val set : t -> int array -> float -> unit

val get_named : t -> int Index.Map.t -> float
(** [get_named t env] reads the element whose coordinate along each shape
    index [i] is [Index.Map.find i env].  Extra bindings in [env] are
    ignored, which makes this convenient inside contraction loops. *)

val set_named : t -> int Index.Map.t -> float -> unit
val add_named : t -> int Index.Map.t -> float -> unit

val unsafe_data : t -> float array
(** The underlying flat array (canonical layout).  Exposed for the tight
    loops of {!Matmul} and the plan interpreter. *)

val strides : t -> int array
(** Per-axis linear strides in shape order ([strides.(0) = 1]); a fresh
    array the caller may keep.  Pairs with {!unsafe_get}/{!unsafe_set}
    for loops that precompute their own offsets. *)

val unsafe_get : t -> int -> float
(** [unsafe_get t off] reads linear offset [off] with {e no} bounds
    check.  Callers must have validated the walk once up front (e.g. by
    bounding each axis against the shape); out-of-range offsets are
    undefined behaviour. *)

val unsafe_set : t -> int -> float -> unit

val linear_offset : t -> int array -> int
(** Linear offset of a multi-index; bounds-checked. *)

val init : Shape.t -> (int array -> float) -> t
(** [init shape f] fills each position [pos] with [f pos]. *)

val random : ?seed:int -> Shape.t -> t
(** Deterministically pseudo-random entries in [(-1, 1)]. *)

val fill : t -> float -> unit
val copy : t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination. @raise Invalid_argument on shape mismatch. *)

val max_abs_diff : t -> t -> float
(** Largest absolute elementwise difference.
    @raise Invalid_argument on shape mismatch. *)

val equal_approx : ?tol:float -> t -> t -> bool
(** True iff shapes match and all elements differ by at most [tol]
    (default [1e-9]). *)

val iteri : t -> (int array -> float -> unit) -> unit
(** Iterates in linear-offset order; the position array is reused between
    calls and must not be stashed. *)

val pp : Format.formatter -> t -> unit
(** Shape plus a short element preview; meant for debugging. *)
