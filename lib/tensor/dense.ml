type t = {
  shape : Shape.t;
  dims : int array; (* extents, FVI first *)
  strides : int array; (* strides.(0) = 1 *)
  data : float array;
}

let create shape =
  let dims = Array.of_list (Shape.extents shape) in
  let rank = Array.length dims in
  let strides = Array.make rank 1 in
  for i = 1 to rank - 1 do
    strides.(i) <- strides.(i - 1) * dims.(i - 1)
  done;
  { shape; dims; strides; data = Array.make (Shape.numel shape) 0.0 }

let shape t = t.shape
let numel t = Array.length t.data

let linear_offset t pos =
  if Array.length pos <> Array.length t.dims then
    invalid_arg "Dense: multi-index has wrong rank";
  let off = ref 0 in
  Array.iteri
    (fun k p ->
      if p < 0 || p >= t.dims.(k) then
        invalid_arg
          (Printf.sprintf "Dense: coordinate %d out of range [0,%d) at axis %d"
             p t.dims.(k) k);
      off := !off + (p * t.strides.(k)))
    pos;
  !off

let get t pos = t.data.(linear_offset t pos)
let set t pos v = t.data.(linear_offset t pos) <- v

let named_offset t env =
  let off = ref 0 in
  List.iteri
    (fun k i -> off := !off + (Index.Map.find i env * t.strides.(k)))
    (Shape.indices t.shape);
  !off

let get_named t env = t.data.(named_offset t env)
let set_named t env v = t.data.(named_offset t env) <- v

let add_named t env v =
  let off = named_offset t env in
  t.data.(off) <- t.data.(off) +. v

let unsafe_data t = t.data
let strides t = Array.copy t.strides
let unsafe_get t off = Array.unsafe_get t.data off
let unsafe_set t off v = Array.unsafe_set t.data off v

let iteri t f =
  let rank = Array.length t.dims in
  let pos = Array.make rank 0 in
  Array.iteri
    (fun off v ->
      f pos v;
      (* advance the odometer: axis 0 is fastest *)
      let rec bump k =
        if k < rank then begin
          pos.(k) <- pos.(k) + 1;
          if pos.(k) = t.dims.(k) then begin
            pos.(k) <- 0;
            bump (k + 1)
          end
        end
      in
      ignore off;
      bump 0)
    t.data

let init shape f =
  let t = create shape in
  iteri t (fun pos _ -> t.data.(linear_offset t pos) <- f pos);
  t

let random ?(seed = 42) shape =
  let st = Random.State.make [| seed; Shape.numel shape |] in
  let t = create shape in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Random.State.float st 2.0 -. 1.0
  done;
  t

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let copy t = { t with data = Array.copy t.data }

let check_same_shape a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Dense: shape mismatch"

let map2 f a b =
  check_same_shape a b;
  let c = create a.shape in
  for i = 0 to Array.length a.data - 1 do
    c.data.(i) <- f a.data.(i) b.data.(i)
  done;
  c

let max_abs_diff a b =
  check_same_shape a b;
  let m = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    let d = Float.abs (a.data.(i) -. b.data.(i)) in
    if d > !m then m := d
  done;
  !m

let equal_approx ?(tol = 1e-9) a b =
  Shape.equal a.shape b.shape && max_abs_diff a b <= tol

let pp fmt t =
  let n = numel t in
  let preview = min n 8 in
  Format.fprintf fmt "@[<h>tensor %a {" Shape.pp t.shape;
  for i = 0 to preview - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if n > preview then Format.fprintf fmt ", ...";
  Format.fprintf fmt "}@]"
