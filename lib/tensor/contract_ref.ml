let analyse ~out_indices a b =
  let sa = Dense.shape a and sb = Dense.shape b in
  let ia = Index.Set.of_list (Shape.indices sa)
  and ib = Index.Set.of_list (Shape.indices sb)
  and ic = Index.Set.of_list out_indices in
  if not (Index.distinct out_indices) then
    invalid_arg "Contract_ref: duplicate output index";
  let internals = Index.Set.inter ia ib in
  if not (Index.Set.is_empty (Index.Set.inter internals ic)) then
    invalid_arg "Contract_ref: a contraction index appears in the output";
  let externals = Index.Set.union (Index.Set.diff ia ib) (Index.Set.diff ib ia) in
  if not (Index.Set.equal externals ic) then
    invalid_arg
      "Contract_ref: output indices must be exactly the non-shared input \
       indices";
  Index.Set.iter
    (fun i ->
      if Shape.extent sa i <> Shape.extent sb i then
        invalid_arg
          (Printf.sprintf "Contract_ref: extent mismatch on index %c" i))
    internals;
  let extent i =
    if Shape.mem sa i then Shape.extent sa i else Shape.extent sb i
  in
  (Index.Set.elements internals, extent)

let contract ~out_indices a b =
  let internals, extent = analyse ~out_indices a b in
  let out_shape = Shape.make (List.map (fun i -> (i, extent i)) out_indices) in
  let out = Dense.create out_shape in
  (* Precompute each loop index's linear stride in every operand (0 when
     the index does not appear), so the walk advances plain offsets
     instead of rebuilding an [Index.Map] per element. *)
  let stride_in t =
    let idx = Shape.indices (Dense.shape t) and st = Dense.strides t in
    fun i ->
      let rec go k = function
        | [] -> 0
        | j :: rest -> if Index.equal j i then st.(k) else go (k + 1) rest
      in
      go 0 idx
  in
  let sa = stride_in a and sb = stride_in b and so = stride_in out in
  let ext =
    Array.of_list (List.map (fun i -> (extent i, sa i, sb i, so i)) out_indices)
  in
  let int_ =
    Array.of_list (List.map (fun i -> (extent i, sa i, sb i)) internals)
  in
  let n_ext = Array.length ext and n_int = Array.length int_ in
  (* Odometer over external positions; inner odometer over internals.
     Loop nesting — and hence the floating-point accumulation order — is
     identical to the [get_named] walk this replaces; every offset is in
     range by construction ([analyse] checked the extents), so the inner
     loop reads unchecked. *)
  let rec loop_int k off_a off_b acc =
    if k = n_int then
      acc +. (Dense.unsafe_get a off_a *. Dense.unsafe_get b off_b)
    else
      let e, da, db = int_.(k) in
      let acc = ref acc in
      for v = 0 to e - 1 do
        acc := loop_int (k + 1) (off_a + (v * da)) (off_b + (v * db)) !acc
      done;
      !acc
  in
  let rec loop_ext k off_a off_b off_out =
    if k = n_ext then Dense.unsafe_set out off_out (loop_int 0 off_a off_b 0.0)
    else
      let e, da, db, dc = ext.(k) in
      for v = 0 to e - 1 do
        loop_ext (k + 1)
          (off_a + (v * da))
          (off_b + (v * db))
          (off_out + (v * dc))
      done
  in
  loop_ext 0 0 0 0;
  out

let flop_count ~out_indices a b =
  let internals, extent = analyse ~out_indices a b in
  let all = out_indices @ internals in
  2 * List.fold_left (fun acc i -> acc * extent i) 1 all
