(** nvprof for the simulated hardware: predicted-vs-measured counters.

    The paper's central claim is that an analytical model of DRAM
    transactions is accurate enough to rank kernels.  This module
    {e verifies} that claim inside the reproduction: {!profile} replays
    the emitted schedule with {!Cogent.Interp.measure} (ground-truth
    counters: every block, every step, every guarded lane), runs the
    simulator's boundary-exact prediction
    ({!Tc_sim.Simkernel.transactions_exact}, no-L2) and the coarse
    Algorithm-3 charge sheet ({!Cogent.Cost.explain}) side by side, and
    reports per-quantity divergence.

    Two accuracy contracts are enforced, not averaged away:

    - the {e simulator} prediction must agree with the measurement
      {e exactly} ([{!sim_bound} = 0]) — both sides count the same
      {!Cogent.Txcount} convention, so any gap is a bug in the pattern
      combinatorics;
    - the {e cost model} must stay within {!default_cost_bound} relative
      error (it deliberately overcharges boundary tiles to stay cheap
      enough for millions of rankings); rows beyond the bound are
      flagged in the rendered report and in the JSON.

    The profiler also emits a Chrome-trace timeline of the simulated
    execution (per-SM block waves, GMEM→SMEM staging vs compute vs store
    phases) through the {!Tc_obs} exporters, on a virtual clock so the
    output is deterministic. *)

open Tc_expr
open Cogent

type row = {
  quantity : string;
  measured : float;
  sim : float option;  (** simulator prediction, when it makes one *)
  model : float option;  (** Algorithm-3 / analytic prediction *)
  sim_abs : float;  (** [|sim - measured|], 0 when [sim = None] *)
  sim_rel : float;
  model_abs : float;
  model_rel : float;
}
(** One line of the divergence table.  Relative errors are against the
    measurement: [|predicted - measured| / max measured 1]. *)

type t = {
  plan : Plan.t;
  counters : Interp.counters;  (** the measured side *)
  sim_result : Tc_sim.Simkernel.result;
  exact : Cost.breakdown;  (** simulator transactions, no-L2 *)
  exact_l2 : Cost.breakdown;  (** with the plan's arch L2 discount *)
  cost : Cost.explanation;  (** Algorithm-3 charge sheet *)
  rows : row list;
  worst : row option;
      (** largest cost-model relative error among rows with a model
          prediction *)
  cost_bound : float;  (** the bound rows were checked against *)
  timeline : Tc_obs.Trace.event list;
}

val sim_bound : float
(** [0.0] — measured and simulator-predicted counters must agree exactly
    (checked in no-L2 mode; the L2 discount is a separate, explicit row). *)

val default_cost_bound : float
(** Documented relative-error bound for the Algorithm-3 estimate against
    measured transactions; see EXPERIMENTS.md for the observed errors
    behind it. *)

val profile : ?cost_bound:float -> Plan.t -> t
(** Measure, predict and cross-validate one plan.  Pure and
    deterministic; cost grows with [blocks * steps * tile volume] (full
    TCCG sizes take well under a second). *)

val sim_agrees : t -> bool
(** [true] iff every simulator prediction matches its measurement
    exactly. *)

val violations : t -> row list
(** Rows whose cost-model relative error exceeds [cost_bound]. *)

val render : t -> string
(** The divergence table plus plan header, worst-offender flag and
    simulator verdict — what [cogent profile] prints. *)

val to_json : t -> Tc_obs.Json.t
(** Machine-readable report (round-trips through {!Tc_obs.Json.parse}). *)

val timeline_chrome : t -> string
(** The simulated-execution timeline as Chrome [trace_event] JSON. *)

val problem_of : t -> Problem.t
