open Tc_expr
open Tc_gpu
open Cogent
module Trace = Tc_obs.Trace
module Json = Tc_obs.Json

type row = {
  quantity : string;
  measured : float;
  sim : float option;
  model : float option;
  sim_abs : float;
  sim_rel : float;
  model_abs : float;
  model_rel : float;
}

type t = {
  plan : Plan.t;
  counters : Interp.counters;
  sim_result : Tc_sim.Simkernel.result;
  exact : Cost.breakdown;
  exact_l2 : Cost.breakdown;
  cost : Cost.explanation;
  rows : row list;
  worst : row option;
  cost_bound : float;
  timeline : Trace.event list;
}

let sim_bound = 0.0
let default_cost_bound = 0.5

let errors measured = function
  | None -> (0.0, 0.0)
  | Some p ->
      let abs = Float.abs (p -. measured) in
      (abs, abs /. Float.max (Float.abs measured) 1.0)

let make_row quantity measured sim model =
  let sim_abs, sim_rel = errors measured sim in
  let model_abs, model_rel = errors measured model in
  { quantity; measured; sim; model; sim_abs; sim_rel; model_abs; model_rel }

let charge_of (cost : Cost.explanation) tensor =
  match
    List.find_opt (fun c -> String.equal c.Cost.tensor tensor) cost.Cost.charges
  with
  | Some c -> c.Cost.transactions
  | None -> 0.0

let ceil_div a b = (a + b - 1) / b

(* The simulated execution as a deterministic Chrome-trace timeline: block
   waves filling the SMs, with the GMEM->SMEM / compute phase structure of
   a representative block expanded inside the first wave.  A virtual clock
   keeps the output reproducible; wave and phase durations are read off the
   simulator's roofline terms. *)
let build_timeline (plan : Plan.t) (sim : Tc_sim.Simkernel.result) counters =
  let now = ref 0.0 in
  let tr = Trace.make ~clock:(fun () -> !now) () in
  let span ?args name dur f =
    Trace.with_span ~t:tr ?args name (fun () ->
        f ();
        now := !now +. Float.max 0.0 dur)
  in
  let arch = plan.Plan.arch in
  let blocks = Plan.num_blocks plan in
  let steps = Plan.num_steps plan in
  let occ = Plan.occupancy plan in
  let act = max 1 occ.Occupancy.active_blocks_per_sm in
  let per_wave = act * arch.Arch.sms in
  let waves = max 1 (ceil_div blocks per_wave) in
  let launch = sim.Tc_sim.Simkernel.detail.Tc_sim.Simkernel.launch_s in
  let body =
    let b = sim.Tc_sim.Simkernel.time_s -. launch in
    if Float.is_finite b && b > 0.0 then b else 0.0
  in
  let wave_dur = body /. float_of_int waves in
  let mem = sim.Tc_sim.Simkernel.mem_time_s
  and comp = sim.Tc_sim.Simkernel.compute_time_s in
  let mem_frac =
    if Float.is_finite (mem +. comp) && mem +. comp > 0.0 then
      mem /. (mem +. comp)
    else 0.5
  in
  let total_tx =
    counters.Interp.tx_lhs +. counters.Interp.tx_rhs +. counters.Interp.tx_out
  in
  let shown_waves = min waves 32 in
  Trace.with_span ~t:tr ~cat:"profile" "kernel"
    ~args:
      [
        ("blocks", Trace.Int blocks);
        ("steps", Trace.Int steps);
        ("sms", Trace.Int arch.Arch.sms);
        ("blocks_per_sm", Trace.Int act);
      ]
    (fun () ->
      span "launch" launch (fun () -> ());
      for w = 0 to shown_waves - 1 do
        let first = w * per_wave in
        let last = min (blocks - 1) (first + per_wave - 1) in
        let args =
          [
            ("blocks", Trace.String (Printf.sprintf "%d-%d" first last));
            ("resident_per_sm", Trace.Int act);
          ]
        in
        span
          (Printf.sprintf "wave %d/%d" (w + 1) waves)
          wave_dur ~args
          (fun () ->
            if w = 0 then begin
              (* One resident block, phase by phase. *)
              let shown_steps = min steps 8 in
              let step_dur = wave_dur /. float_of_int steps in
              for _s = 1 to shown_steps do
                span "gmem->smem" (step_dur *. mem_frac) (fun () -> ());
                span "smem->reg outer products"
                  (step_dur *. (1.0 -. mem_frac))
                  (fun () -> ())
              done;
              if steps > shown_steps then
                span
                  (Printf.sprintf "steps %d-%d" (shown_steps + 1) steps)
                  (step_dur *. float_of_int (steps - shown_steps))
                  (fun () -> ());
              Trace.instant ~t:tr ~cat:"profile" "reg->gmem store"
                ~args:
                  [ ("tx_out", Trace.Float counters.Interp.tx_out) ]
            end);
        Trace.counter ~t:tr "dram_tx_cumulative"
          (total_tx *. float_of_int (w + 1) /. float_of_int waves)
      done;
      if waves > shown_waves then
        span
          (Printf.sprintf "waves %d-%d" (shown_waves + 1) waves)
          (wave_dur *. float_of_int (waves - shown_waves))
          (fun () -> ()));
  Trace.events tr

let profile ?(cost_bound = default_cost_bound) (plan : Plan.t) =
  let problem = plan.Plan.problem in
  let mapping = plan.Plan.mapping in
  let prec = plan.Plan.precision in
  let counters = Interp.measure plan in
  let sim_result = Tc_sim.Simkernel.run plan in
  let exact = Tc_sim.Simkernel.transactions_exact prec problem mapping in
  let exact_l2 =
    Tc_sim.Simkernel.transactions_exact ~arch:plan.Plan.arch prec problem
      mapping
  in
  let cost = Cost.explain prec problem mapping in
  let blocks = float_of_int (Plan.num_blocks plan) in
  let steps = float_of_int (Plan.num_steps plan) in
  let smem_predicted =
    float_of_int (Mapping.smem_elems mapping * Precision.bytes prec)
    *. steps *. blocks
  in
  let fma_padded_predicted =
    float_of_int (Plan.threads_per_block plan)
    *. float_of_int (Mapping.size_regx mapping)
    *. float_of_int (Mapping.size_regy mapping)
    *. float_of_int (Mapping.size_tbk mapping)
    *. steps *. blocks
  in
  let measured_total =
    counters.Interp.tx_lhs +. counters.Interp.tx_rhs +. counters.Interp.tx_out
  in
  let rows =
    [
      make_row "DRAM tx, load A" counters.Interp.tx_lhs (Some exact.Cost.lhs)
        (Some (charge_of cost "A"));
      make_row "DRAM tx, load B" counters.Interp.tx_rhs (Some exact.Cost.rhs)
        (Some (charge_of cost "B"));
      make_row "DRAM tx, store C" counters.Interp.tx_out (Some exact.Cost.out)
        (Some (charge_of cost "C"));
      make_row "DRAM tx, total" measured_total
        (Some (exact.Cost.lhs +. exact.Cost.rhs +. exact.Cost.out))
        (Some cost.Cost.total_transactions);
      make_row "SMEM bytes staged" counters.Interp.smem_bytes None
        (Some smem_predicted);
      make_row "FMA slots (padded loop)" counters.Interp.fma_padded
        (Some fma_padded_predicted) None;
      make_row "FMAs useful" counters.Interp.fma_useful None
        (Some (Problem.flops problem /. 2.0));
      make_row "store tx, busiest block" counters.Interp.store_tx_block_max
        None None;
    ]
  in
  let worst =
    List.fold_left
      (fun acc r ->
        match (r.model, acc) with
        | None, _ -> acc
        | Some _, None -> Some r
        | Some _, Some w -> if r.model_rel > w.model_rel then Some r else acc)
      None rows
  in
  let timeline = build_timeline plan sim_result counters in
  {
    plan;
    counters;
    sim_result;
    exact;
    exact_l2;
    cost;
    rows;
    worst;
    cost_bound;
    timeline;
  }

let sim_agrees t =
  List.for_all
    (fun r -> match r.sim with None -> true | Some _ -> r.sim_abs = 0.0)
    t.rows

let violations t =
  List.filter
    (fun r ->
      match r.model with None -> false | Some _ -> r.model_rel > t.cost_bound)
    t.rows

let problem_of t = t.plan.Plan.problem

(* ---- rendering ---- *)

let num f = Printf.sprintf "%.6g" f

let opt_num = function None -> "-" | Some f -> num f

let opt_pct rel = function None -> "-" | Some _ -> Printf.sprintf "%.2f" (100.0 *. rel)

let render t =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let plan = t.plan in
  let problem = plan.Plan.problem in
  p "simulated-hardware profile\n";
  p "==========================\n";
  p "expr:      %s\n"
    (Format.asprintf "%a" Ast.pp (Problem.info problem).Classify.original);
  p "arch:      %s, %s\n" plan.Plan.arch.Arch.name
    (Precision.to_string plan.Plan.precision);
  p "mapping:   %s\n" (Format.asprintf "%a" Mapping.pp plan.Plan.mapping);
  p "launch:    %d blocks x %d threads, %d steps, occupancy %.3f\n"
    (Plan.num_blocks plan)
    (Plan.threads_per_block plan)
    (Plan.num_steps plan)
    (Plan.occupancy plan).Occupancy.occupancy;
  p "\n";
  p
    "counter cross-validation (measured = replay of the emitted schedule)\n";
  p "%-26s %14s %14s %8s %14s %8s\n" "quantity" "measured" "simulator"
    "err%" "cost model" "err%";
  let worst_q = match t.worst with Some w -> w.quantity | None -> "" in
  List.iter
    (fun r ->
      let flag =
        if (match r.model with Some _ -> r.model_rel > t.cost_bound | None -> false)
        then " **"
        else if
          String.equal r.quantity worst_q && r.model <> None
          && r.model_rel > 0.0
        then " !"
        else ""
      in
      p "%-26s %14s %14s %8s %14s %8s%s\n" r.quantity (num r.measured)
        (opt_num r.sim)
        (opt_pct r.sim_rel r.sim)
        (opt_num r.model)
        (opt_pct r.model_rel r.model)
        flag)
    t.rows;
  p "\n";
  (if sim_agrees t then
     p "simulator:  exact agreement with measured counters (no-L2 mode)\n"
   else p "simulator:  ** DIVERGES from measured counters — model bug\n");
  (match t.worst with
  | Some w ->
      let verdict =
        if w.model_rel > t.cost_bound then "EXCEEDS bound" else "ok"
      in
      p
        "cost model: worst divergence %s (%.2f%%) against documented bound \
         %.0f%% — %s\n"
        w.quantity (100.0 *. w.model_rel)
        (100.0 *. t.cost_bound)
        verdict
  | None -> ());
  let viol = violations t in
  if viol <> [] then begin
    p "            flagged beyond bound:";
    List.iter (fun r -> p " [%s]" r.quantity) viol;
    p "\n"
  end;
  p "L2 model:   A %s  B %s  C %s (DRAM-equivalent tx on %s)\n"
    (num t.exact_l2.Cost.lhs) (num t.exact_l2.Cost.rhs)
    (num t.exact_l2.Cost.out) plan.Plan.arch.Arch.name;
  p "simulator:  %.1f GFLOPS, %s, %.3f ms (mem %.3f ms, compute %.3f ms)\n"
    t.sim_result.Tc_sim.Simkernel.gflops
    (Format.asprintf "%a" Tc_sim.Simkernel.pp_bound
       t.sim_result.Tc_sim.Simkernel.bound)
    (1e3 *. t.sim_result.Tc_sim.Simkernel.time_s)
    (1e3 *. t.sim_result.Tc_sim.Simkernel.mem_time_s)
    (1e3 *. t.sim_result.Tc_sim.Simkernel.compute_time_s);
  Buffer.contents buf

(* ---- JSON ---- *)

let json_opt = function None -> Json.Null | Some f -> Json.Float f

let row_to_json t r =
  Json.Obj
    [
      ("quantity", Json.String r.quantity);
      ("measured", Json.Float r.measured);
      ("simulator", json_opt r.sim);
      ("simulator_rel_err", json_opt (Option.map (fun _ -> r.sim_rel) r.sim));
      ("cost_model", json_opt r.model);
      ("cost_model_rel_err",
       json_opt (Option.map (fun _ -> r.model_rel) r.model));
      ("within_bound",
       match r.model with
       | None -> Json.Null
       | Some _ -> Json.Bool (r.model_rel <= t.cost_bound));
    ]

let breakdown_to_json (b : Cost.breakdown) =
  Json.Obj
    [
      ("lhs", Json.Float b.Cost.lhs);
      ("rhs", Json.Float b.Cost.rhs);
      ("out", Json.Float b.Cost.out);
    ]

let to_json t =
  let plan = t.plan in
  let problem = plan.Plan.problem in
  Json.Obj
    [
      ("schema", Json.String "cogent-profile/1");
      ( "expr",
        Json.String
          (Format.asprintf "%a" Ast.pp (Problem.info problem).Classify.original)
      );
      ("arch", Json.String plan.Plan.arch.Arch.name);
      ("precision", Json.String (Precision.to_string plan.Plan.precision));
      ( "mapping",
        Json.String (Format.asprintf "%a" Mapping.pp plan.Plan.mapping) );
      ("blocks", Json.Int (Plan.num_blocks plan));
      ("steps", Json.Int (Plan.num_steps plan));
      ("threads", Json.Int (Plan.threads_per_block plan));
      ("sim_bound", Json.Float sim_bound);
      ("cost_bound", Json.Float t.cost_bound);
      ("sim_agrees", Json.Bool (sim_agrees t));
      ("rows", Json.List (List.map (row_to_json t) t.rows));
      ( "violations",
        Json.List
          (List.map (fun r -> Json.String r.quantity) (violations t)) );
      ( "worst",
        match t.worst with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ("quantity", Json.String w.quantity);
                ("rel_err", Json.Float w.model_rel);
              ] );
      ("exact_no_l2", breakdown_to_json t.exact);
      ("exact_l2", breakdown_to_json t.exact_l2);
      ( "simulator",
        Json.Obj
          [
            ("gflops", Json.Float t.sim_result.Tc_sim.Simkernel.gflops);
            ("time_s", Json.Float t.sim_result.Tc_sim.Simkernel.time_s);
            ( "bound",
              Json.String
                (Format.asprintf "%a" Tc_sim.Simkernel.pp_bound
                   t.sim_result.Tc_sim.Simkernel.bound) );
            ("occupancy", Json.Float t.sim_result.Tc_sim.Simkernel.occupancy);
          ] );
    ]

let timeline_chrome t = Tc_obs.Export.to_chrome t.timeline
