module Json = Tc_obs.Json

type strategy = {
  strategy : string;
  metrics : (string * float) list;
  config : string option;
}

type entry = {
  name : string;
  expr : string;
  arch : string;
  precision : string;
  strategies : strategy list;
}

type doc = {
  target : string;
  wall_s : float;
  jobs : int;
  entries : entry list;
}

let schema = "cogent-bench/1"
let filename target = Printf.sprintf "BENCH_%s.json" target

(* ---- serialization ---- *)

let strategy_to_json s =
  Json.Obj
    [
      ("strategy", Json.String s.strategy);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.metrics) );
      ( "config",
        match s.config with None -> Json.Null | Some c -> Json.String c );
    ]

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("expr", Json.String e.expr);
      ("arch", Json.String e.arch);
      ("precision", Json.String e.precision);
      ("strategies", Json.List (List.map strategy_to_json e.strategies));
    ]

let doc_fields d =
  [
    ("schema", Json.String schema);
    ("target", Json.String d.target);
    ("wall_s", Json.Float d.wall_s);
    ("jobs", Json.Int d.jobs);
    ("entries", Json.List (List.map entry_to_json d.entries));
  ]

let to_json d = Json.Obj (doc_fields d)

let baseline_to_json docs =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("targets", Json.List (List.map to_json docs));
    ]

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string = function
  | Json.String s -> Ok s
  | _ -> Error "expected a string"

let as_float j =
  match Json.to_float j with Some f -> Ok f | None -> Error "expected a number"

let as_list = function
  | Json.List l -> Ok l
  | _ -> Error "expected a list"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let strategy_of_json j =
  let* strategy = Result.bind (field "strategy" j) as_string in
  let* metrics =
    match Json.member "metrics" j with
    | Some (Json.Obj kvs) ->
        map_result
          (fun (k, v) ->
            let* f = as_float v in
            Ok (k, f))
          kvs
    | _ -> Error "missing or malformed metrics"
  in
  let config =
    match Json.member "config" j with
    | Some (Json.String c) -> Some c
    | _ -> None
  in
  Ok { strategy; metrics; config }

let entry_of_json j =
  let* name = Result.bind (field "name" j) as_string in
  let* expr = Result.bind (field "expr" j) as_string in
  let* arch = Result.bind (field "arch" j) as_string in
  let* precision = Result.bind (field "precision" j) as_string in
  let* strategies =
    Result.bind (field "strategies" j) as_list
    |> fun l -> Result.bind l (map_result strategy_of_json)
  in
  Ok { name; expr; arch; precision; strategies }

let of_json j =
  let* s = Result.bind (field "schema" j) as_string in
  if not (String.equal s schema) then
    Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
  else
    let* target = Result.bind (field "target" j) as_string in
    let* wall_s = Result.bind (field "wall_s" j) as_float in
    (* [jobs] arrived with the parallel runtime; older reports omit it. *)
    let* jobs =
      match Json.member "jobs" j with
      | None -> Ok 1
      | Some v ->
          let* f = as_float v in
          Ok (int_of_float f)
    in
    let* entries =
      Result.bind (Result.bind (field "entries" j) as_list)
        (map_result entry_of_json)
    in
    Ok { target; wall_s; jobs; entries }

let baseline_of_json j =
  let* s = Result.bind (field "schema" j) as_string in
  if not (String.equal s schema) then
    Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
  else
    Result.bind (Result.bind (field "targets" j) as_list) (map_result of_json)

let write ~path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json d));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> Result.bind (Json.parse contents) of_json

let equal_modulo_wall a b =
  { a with wall_s = 0.0; jobs = 1 } = { b with wall_s = 0.0; jobs = 1 }

(* ---- regression gating ---- *)

type direction = Higher_better | Lower_better | Exact

type tolerance = { metric : string; rel : float; direction : direction }

let default_tolerances =
  [
    { metric = "gflops"; rel = 0.02; direction = Higher_better };
    { metric = "transactions"; rel = 0.0; direction = Lower_better };
    { metric = "cost"; rel = 0.0; direction = Lower_better };
    { metric = "enumerated"; rel = 0.0; direction = Exact };
    { metric = "kept"; rel = 0.0; direction = Exact };
    { metric = "bound_aborted"; rel = 0.0; direction = Exact };
    { metric = "bound_abort_rate"; rel = 0.0; direction = Exact };
  ]

type verdict = Regression | Improvement | Within | Missing | Added

type delta = {
  entry : string;
  strategy : string;
  metric : string;
  baseline : float option;
  current : float option;
  rel_change : float;
  verdict : verdict;
}

(* Relative comparisons need slack for the %g float round-trip through
   JSON (~1e-6 relative), even at "zero allowance". *)
let float_slack = 1e-5

let judge tol ~baseline ~current =
  let denom = Float.max (Float.abs baseline) 1e-12 in
  let rel = (current -. baseline) /. denom in
  let allowed = tol.rel +. float_slack in
  let verdict =
    match tol.direction with
    | Higher_better ->
        if rel < -.allowed then Regression
        else if rel > allowed then Improvement
        else Within
    | Lower_better ->
        if rel > allowed then Regression
        else if rel < -.allowed then Improvement
        else Within
    | Exact -> if Float.abs rel > allowed then Regression else Within
  in
  (rel, verdict)

let diff ?(tolerances = default_tolerances) ~baseline current =
  let tol_of m =
    List.find_opt (fun (t : tolerance) -> String.equal t.metric m) tolerances
  in
  let find_entry doc n =
    List.find_opt (fun e -> String.equal e.name n) doc.entries
  in
  let find_strategy (e : entry) n =
    List.find_opt (fun (s : strategy) -> String.equal s.strategy n) e.strategies
  in
  List.concat_map
    (fun (be : entry) ->
      match find_entry current be.name with
      | None ->
          [
            {
              entry = be.name;
              strategy = "*";
              metric = "*";
              baseline = None;
              current = None;
              rel_change = 0.0;
              verdict = Missing;
            };
          ]
      | Some ce ->
          List.concat_map
            (fun (bs : strategy) ->
              match find_strategy ce bs.strategy with
              | None ->
                  [
                    {
                      entry = be.name;
                      strategy = bs.strategy;
                      metric = "*";
                      baseline = None;
                      current = None;
                      rel_change = 0.0;
                      verdict = Missing;
                    };
                  ]
              | Some cs ->
                  let gated =
                    List.concat_map
                      (fun (m, bv) ->
                        match List.assoc_opt m cs.metrics with
                        | None ->
                            [
                              {
                                entry = be.name;
                                strategy = bs.strategy;
                                metric = m;
                                baseline = Some bv;
                                current = None;
                                rel_change = 0.0;
                                verdict = Missing;
                              };
                            ]
                        | Some cv -> (
                            match tol_of m with
                            | None -> []
                            | Some tol ->
                                let rel_change, verdict =
                                  judge tol ~baseline:bv ~current:cv
                                in
                                [
                                  {
                                    entry = be.name;
                                    strategy = bs.strategy;
                                    metric = m;
                                    baseline = Some bv;
                                    current = Some cv;
                                    rel_change;
                                    verdict;
                                  };
                                ]))
                      bs.metrics
                  in
                  let added =
                    List.filter_map
                      (fun (m, cv) ->
                        if List.mem_assoc m bs.metrics then None
                        else
                          Some
                            {
                              entry = be.name;
                              strategy = bs.strategy;
                              metric = m;
                              baseline = None;
                              current = Some cv;
                              rel_change = 0.0;
                              verdict = Added;
                            })
                      cs.metrics
                  in
                  gated @ added)
            be.strategies)
    baseline.entries

let regressions deltas =
  List.filter
    (fun d -> match d.verdict with Regression | Missing -> true | _ -> false)
    deltas

let render_delta buf d =
  let v = function
    | None -> "-"
    | Some f -> Printf.sprintf "%.6g" f
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %-10s %-14s %12s -> %-12s %+.2f%%\n" d.entry
       d.strategy d.metric (v d.baseline) (v d.current)
       (100.0 *. d.rel_change))

let render_diff ~target deltas =
  let buf = Buffer.create 512 in
  let regs = regressions deltas in
  let imps = List.filter (fun d -> d.verdict = Improvement) deltas in
  let within = List.length (List.filter (fun d -> d.verdict = Within) deltas) in
  let added = List.length (List.filter (fun d -> d.verdict = Added) deltas) in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d regression(s), %d improvement(s), %d within \
                     tolerance, %d added\n"
       target (List.length regs) (List.length imps) within added);
  if regs <> [] then begin
    Buffer.add_string buf "regressions:\n";
    List.iter (render_delta buf) regs
  end;
  if imps <> [] then begin
    Buffer.add_string buf "improvements:\n";
    List.iter (render_delta buf) imps
  end;
  Buffer.contents buf
