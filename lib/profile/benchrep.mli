(** Machine-readable bench reports and the regression gate over them.

    One schema, ["cogent-bench/1"], shared by every producer: each bench
    target writes [BENCH_<target>.json] through {!write}, and
    [cogent bench --json] emits a single-entry document of the same
    shape.  A {e document} is a bench target's worth of results; an
    {e entry} is one contraction; a {e strategy} is one generator or
    baseline evaluated on it, carrying a flat metric map (GFLOPS,
    transactions, model cost, ...) and the chosen configuration.

    The {!diff} gate compares a fresh run against a checked-in baseline
    ({!baseline_to_json} bundles several documents into one file) with
    per-metric tolerances: metrics without a tolerance entry are
    informational (the [micro] target's wall-clock numbers never gate),
    everything else fails CI when it drifts past its allowance in the
    wrong direction. *)

type strategy = {
  strategy : string;  (** ["cogent"], ["nwchem"], ["talsh"], ... *)
  metrics : (string * float) list;  (** deterministic order, e.g. gflops *)
  config : string option;  (** chosen mapping, human-readable *)
}

type entry = {
  name : string;  (** e.g. ["tccg-03"] *)
  expr : string;
  arch : string;
  precision : string;
  strategies : strategy list;
}

type doc = {
  target : string;
  wall_s : float;
  jobs : int;  (** worker-domain count the report was produced with *)
  entries : entry list;
}

val schema : string
(** ["cogent-bench/1"]. *)

val filename : string -> string
(** [filename target] is ["BENCH_<target>.json"]. *)

val to_json : doc -> Tc_obs.Json.t
val of_json : Tc_obs.Json.t -> (doc, string) result

val write : path:string -> doc -> unit
(** Pretty-printed JSON; the file round-trips through
    {!Tc_obs.Json.parse} and {!of_json}. *)

val read : path:string -> (doc, string) result
(** Reports written before the parallel runtime lack the [jobs] field;
    it reads back as [1]. *)

val equal_modulo_wall : doc -> doc -> bool
(** Structural equality ignoring [wall_s] and [jobs] — the determinism
    contract: the same target run at different job counts must produce
    identical results. *)

val baseline_to_json : doc list -> Tc_obs.Json.t
(** Bundle documents (one per target) into one baseline file. *)

val baseline_of_json : Tc_obs.Json.t -> (doc list, string) result

(** {1 Regression gating} *)

type direction =
  | Higher_better  (** e.g. GFLOPS: only a drop can regress *)
  | Lower_better  (** e.g. transactions: only growth can regress *)
  | Exact  (** e.g. pruning counts: any drift regresses *)

type tolerance = { metric : string; rel : float; direction : direction }

val default_tolerances : tolerance list
(** [gflops] 2% higher-better; [transactions] and [cost] lower-better
    with zero allowance; [enumerated]/[kept]/[bound_aborted]/
    [bound_abort_rate] exact.  Unlisted metrics never gate. *)

type verdict =
  | Regression  (** drifted past tolerance in the harmful direction *)
  | Improvement  (** drifted past tolerance in the helpful direction *)
  | Within  (** inside tolerance *)
  | Missing  (** present in the baseline, absent from the run — fatal *)
  | Added  (** new in the run, not gated *)

type delta = {
  entry : string;
  strategy : string;
  metric : string;
  baseline : float option;
  current : float option;
  rel_change : float;  (** signed, vs the baseline value *)
  verdict : verdict;
}

val diff : ?tolerances:tolerance list -> baseline:doc -> doc -> delta list
(** [diff ~baseline current]: every (entry, strategy, gated-or-missing
    metric) pair, deterministic order.  [Missing] also covers whole
    entries or strategies that disappeared. *)

val regressions : delta list -> delta list
(** The fatal subset: [Regression] and [Missing] verdicts. *)

val render_diff : target:string -> delta list -> string
(** Human-readable summary (regressions first, then improvements; the
    [Within]/[Added] bulk as one count line). *)
