(** End-to-end code generation: streamed enumerate→prune→rank ({!Pipeline})
    → plan → CUDA.

    This is the public entry point mirroring the COGENT tool: given a
    contraction (in either concrete syntax), a representative problem size
    and a target device, produce the best kernel plan and its CUDA source,
    together with the search statistics the paper reports (§IV-A3).

    The primary entry point is {!run}, which takes a {!Ctx.t}; the
    optional-argument functions below it are thin deprecated wrappers kept
    so historical callers compile unchanged. *)

open Tc_expr

type t = {
  plan : Plan.t;  (** the selected configuration (see [Ctx.refine]) *)
  ranked : (Mapping.t * float) list;
      (** the top-K surviving configurations, ascending model cost, where
          K = [max ctx.refine topk] (see {!run}); under a {!Ctx.t.budget}
          the budgeted survivor set instead, ranked in full *)
  prune_stats : Prune.stats;
  naive_space : float;  (** unpruned search-space size (§IV formula) *)
  degraded : bool;
      (** true when a {!Ctx.t.budget} truncated the surviving space before
          ranking, so the selection fell back toward the heuristic
          top-of-enumeration plan *)
  bound_aborted : int;
      (** prune survivors whose cost evaluation the streaming pipeline cut
          short (or discarded unranked) because they provably cost more
          than the current top-K bound — distinct from rule-based prunes,
          which are tallied in [prune_stats] *)
}

type measure = Ctx.measure
(** Empirical throughput of a candidate plan (higher is better) — in this
    repository the kernel simulator, on real hardware a timed run. *)

type error =
  | No_viable_mapping of Prune.stats
      (** the contraction admits no hardware-feasible configuration (never
          observed for valid inputs); the stats say what rejected what *)
  | Bad_problem of string  (** invalid contraction or size map *)
  | Infeasible_schema of Tc_gpu.Schema.t * string
      (** a {!Ctx.t.schema} was forced but no ranked mapping admits it —
          e.g. [--schema mma] with an fp64 problem, or doubled SMEM slabs
          overflowing the device on every candidate; the string says why *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val run :
  Ctx.t -> ?auto_split:bool -> ?topk:int -> ?trace:Tc_obs.Trace.t
  -> Problem.t -> (t, error) result
(** Per the paper's methodology, the model ranks the pruned space and the
    top [ctx.refine] candidates (default 8) are then benchmarked with
    [ctx.measure] to select the final kernel; [refine = 1] gives pure
    model-driven selection.  When no measure is supplied the model ranking
    alone decides.  A [ctx.budget] caps how many surviving configurations
    are cost-ranked (see {!Ctx.t.budget}); a truncated search is flagged
    [degraded].

    The search streams candidates through {!Pipeline.search} rather than
    materializing the enumeration; [ranked] retains the
    [max ctx.refine topk] cheapest survivors ([topk] defaults to 8 —
    raise it when more of the ranking is wanted, e.g. for display).  The
    retained prefix, [prune_stats] and the selected plan are bit-identical
    to the materialized enumerate → prune → rank pipeline at any job
    count.

    [auto_split:true] additionally considers the {!Tc_expr.Split.auto}
    rewriting of register-starved contractions (an extension §IV names) and
    keeps whichever variant [ctx.measure] scores higher — splitting is a
    pure relabeling of the same memory, so the winning plan's kernel
    applies to the original data unchanged.

    [trace] installs the given {!Tc_obs.Trace} context for the duration of
    the call (restoring any previous one), so every stage — the fused
    candidate pipeline ([driver.pipeline]), measured refinement, and
    anything they call — records spans into it.  Without [trace] (and with
    no ambient context installed) instrumentation is inert and the result
    is identical. *)

val run_exn :
  Ctx.t -> ?auto_split:bool -> ?topk:int -> ?trace:Tc_obs.Trace.t
  -> Problem.t -> t

val generate :
  ?arch:Tc_gpu.Arch.t -> ?precision:Tc_gpu.Precision.t -> ?refine:int
  -> ?measure:measure -> ?auto_split:bool -> ?trace:Tc_obs.Trace.t
  -> Problem.t -> (t, error) result
(** Deprecated wrapper: builds a {!Ctx.t} from the optional arguments and
    calls {!run}.  Defaults: V100, FP64. *)

val generate_exn :
  ?arch:Tc_gpu.Arch.t -> ?precision:Tc_gpu.Precision.t -> ?refine:int
  -> ?measure:measure -> ?auto_split:bool -> ?trace:Tc_obs.Trace.t
  -> Problem.t -> t

val best_plan :
  ?arch:Tc_gpu.Arch.t -> ?precision:Tc_gpu.Precision.t -> ?refine:int
  -> ?measure:measure -> ?auto_split:bool -> ?trace:Tc_obs.Trace.t
  -> Problem.t -> Plan.t
(** Shorthand for [(generate_exn p).plan]. *)

val cuda_source : t -> string
(** CUDA translation unit for the selected plan. *)

val top_plans : ?n:int -> t -> Plan.t list
(** The [n] (default 5) lowest-cost plans, e.g. to auto-tune among a model-
    selected shortlist as §VI suggests — capped by the retained [ranked]
    prefix (pass [run ~topk] to retain more). *)
