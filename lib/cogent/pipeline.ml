type outcome = {
  ranked : (Mapping.t * float) list;
  stats : Prune.stats;
  bound_aborted : int;
  degraded : bool;
}

(* Bounded best-heap: the K cheapest candidates under the total order
   (cost, Mapping.compare).  A max-heap on that order keeps the current
   worst resident at the root, which is the branch-and-bound cutoff the
   evaluator aborts against.  Because the order is total, the retained
   set — and hence [to_sorted] — is independent of insertion order, so
   per-chunk heaps merged in any grouping equal one sequential heap. *)
module Topk = struct
  type entry = { cost : float; m : Mapping.t }

  type t = { cap : int; mutable n : int; heap : entry array }

  let dummy =
    {
      cost = nan;
      m = { Mapping.tbx = []; regx = []; tby = []; regy = []; tbk = []; grid = [] };
    }

  let create cap =
    let cap = max 1 cap in
    { cap; n = 0; heap = Array.make cap dummy }

  (* [worse a b]: a ranks strictly after b in the final ascending order. *)
  let worse a b =
    match Float.compare a.cost b.cost with
    | 0 -> Mapping.compare a.m b.m > 0
    | c -> c > 0

  let bound t = if t.n < t.cap then infinity else t.heap.(0).cost

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t k =
    if k > 0 then
      let p = (k - 1) / 2 in
      if worse t.heap.(k) t.heap.(p) then begin
        swap t k p;
        sift_up t p
      end

  let rec sift_down t k =
    let l = (2 * k) + 1 and r = (2 * k) + 2 in
    let largest = ref k in
    if l < t.n && worse t.heap.(l) t.heap.(!largest) then largest := l;
    if r < t.n && worse t.heap.(r) t.heap.(!largest) then largest := r;
    if !largest <> k then begin
      swap t k !largest;
      sift_down t !largest
    end

  let insert t m cost =
    let e = { cost; m } in
    if t.n < t.cap then begin
      t.heap.(t.n) <- e;
      t.n <- t.n + 1;
      sift_up t (t.n - 1);
      true
    end
    else if worse t.heap.(0) e then begin
      t.heap.(0) <- e;
      sift_down t 0;
      true
    end
    else false

  let iter t f =
    for k = 0 to t.n - 1 do
      f t.heap.(k).m t.heap.(k).cost
    done

  let to_sorted t =
    let l = ref [] in
    iter t (fun m c -> l := (m, c) :: !l);
    List.sort
      (fun (m1, c1) (m2, c2) ->
        match Float.compare c1 c2 with 0 -> Mapping.compare m1 m2 | c -> c)
      !l
end

(* One chunk's worth of streamed work; merged sequentially in chunk order
   by [Tc_par.Pool.map_fold]. *)
type chunk_out = {
  c_tally : int array;
  c_kept : int;
  c_aborted : int;
  c_top : (Mapping.t * float) list;  (* heap mode: chunk top-K, unordered *)
  c_fed : Mapping.t list;  (* feed mode: first <= maxfeed survivors, in order *)
}

(* Feed mode (search budget set) ranks the first [maxfeed] survivors in
   candidate order, exactly like the legacy truncate-then-rank path; heap
   mode streams every survivor through the bounded evaluator. *)
type mode = Heap of int | Feed of int

(* One work unit: a fixed slice of the chunk stream, scanned with one
   shared evaluator and one heap.  The slice boundaries depend only on
   the chunk count — never on the job count — so unit outputs (and the
   bound each unit's heap tightens as it goes) are reproducible at any
   parallelism. *)
let scan_chunks cands checker eval mode ~tallying ~lo ~hi =
  let tally = Array.make Prune.num_reasons 0 in
  let kept = ref 0 and aborted = ref 0 and n_fed = ref 0 in
  let fed = ref [] in
  let heap =
    match mode with Heap cap -> Topk.create cap | Feed _ -> Topk.create 1
  in
  let tile i = Cost.Eval.tile eval i in
  let blocks () = Cost.Eval.blocks eval in
  let visit m =
    Cost.Eval.load eval m;
    match
      Prune.check_stream checker ~threads:(Cost.Eval.threads eval)
        ~smem_elems:(Cost.Eval.smem_elems eval)
        ~reg_elems:(Cost.Eval.reg_elems eval) ~tile ~blocks
    with
    | Some r ->
        if tallying then begin
          let k = Prune.reason_index r in
          tally.(k) <- tally.(k) + 1
        end
    | None -> (
        incr kept;
        match mode with
        | Feed maxfeed ->
            if !n_fed < maxfeed then begin
              fed := m :: !fed;
              incr n_fed
            end
        | Heap _ -> (
            match Cost.Eval.cost_bounded eval ~bound:(Topk.bound heap) with
            | None -> incr aborted
            | Some c -> if not (Topk.insert heap m c) then incr aborted))
  in
  for chunk_i = lo to hi - 1 do
    Candidates.iter_chunk cands chunk_i visit
  done;
  let top = ref [] in
  Topk.iter heap (fun m c -> top := (m, c) :: !top);
  {
    c_tally = tally;
    c_kept = !kept;
    c_aborted = !aborted;
    c_top = !top;
    c_fed = List.rev !fed;
  }

(* Fixed fan-out width: chunk slices per search.  A constant (not the
   job count!) so that slice boundaries — and with them bound-abort
   tallies — are identical however many workers execute them. *)
let work_units = 16

let search ?(performance = true) ?budget ~topk arch prec problem =
  let cands = Candidates.create problem in
  let enumerated = Candidates.count cands in
  let nchunks = Candidates.num_chunks cands in
  let units = min work_units nchunks in
  (* Slice [0, nchunks) into [units] contiguous ranges, sized as evenly
     as integer division allows. *)
  let slices =
    List.init units (fun u ->
        (nchunks * u / units, nchunks * (u + 1) / units))
  in
  let maxfeed = Option.map (fun b -> max 1 b) budget in
  let mode =
    match maxfeed with
    | Some f -> Feed f
    | None -> Heap (max 1 topk)
  in
  (* One pass over the whole candidate stream with a given rule set.
     Workers are pure: each chunk gets its own evaluator and heap, and
     metrics/trace emission stays on the calling domain after the merge. *)
  let pass checker ~tallying =
    let tally = Array.make Prune.num_reasons 0 in
    let heap =
      match mode with Heap cap -> Topk.create cap | Feed _ -> Topk.create 1
    in
    let kept, aborted, _, fed_rev =
      Tc_par.Pool.map_fold slices
        ~map:(fun (lo, hi) ->
          scan_chunks cands checker (Cost.Eval.create prec problem) mode
            ~tallying ~lo ~hi)
        ~init:(0, 0, 0, [])
        ~fold:(fun (kept, aborted, n_fed, fed_rev) c ->
          if tallying then
            Array.iteri (fun k n -> tally.(k) <- tally.(k) + n) c.c_tally;
          List.iter (fun (m, cost) -> ignore (Topk.insert heap m cost)) c.c_top;
          let n_fed, fed_rev =
            match mode with
            | Heap _ -> (n_fed, fed_rev)
            | Feed maxfeed ->
                List.fold_left
                  (fun (n, acc) m ->
                    if n < maxfeed then (n + 1, m :: acc) else (n, acc))
                  (n_fed, fed_rev) c.c_fed
          in
          (kept + c.c_kept, aborted + c.c_aborted, n_fed, fed_rev))
    in
    (tally, kept, aborted, heap, List.rev fed_rev)
  in
  let primary_tally, primary_kept, primary_aborted, primary_heap, primary_fed =
    pass (Prune.checker ~performance arch prec problem) ~tallying:true
  in
  let kept, aborted, heap, fed, relaxed, relax_attempts =
    if primary_kept > 0 then
      (primary_kept, primary_aborted, primary_heap, primary_fed, false, 0)
    else
      (* Relaxation ladder, exactly as [Prune.filter]: re-stream the
         candidates per attempt (hardware rules always stay), stop at the
         first rule set with survivors; reject tallies cover only the
         primary pass. *)
      let rec try_relax n = function
        | [] -> (0, 0, primary_heap, [], true, n)
        | classes :: rest -> (
            match
              pass (Prune.checker_of_classes classes arch prec problem)
                ~tallying:false
            with
            | _, 0, _, _, _ -> try_relax (n + 1) rest
            | _, kept, aborted, heap, fed ->
                (kept, aborted, heap, fed, true, n + 1))
      in
      try_relax 0 Prune.relax_attempts_classes
  in
  let ranked =
    match mode with
    | Heap _ -> Topk.to_sorted heap
    | Feed _ -> Cost.rank prec problem fed
  in
  let degraded =
    match maxfeed with Some f -> kept > f | None -> false
  in
  {
    ranked;
    stats =
      Prune.stats_of_tally ~enumerated ~kept ~relaxed ~relax_attempts
        primary_tally;
    bound_aborted = aborted;
    degraded;
  }
