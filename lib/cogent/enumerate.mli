(** Configuration enumeration (Algorithm 2 of the paper).

    For each target thread-block dimension size in {!targets_tb} and each
    rotation of the candidate index order, external indices of the lhs input
    are greedily packed onto [TB_x] (always starting with the output's FVI),
    then leftover lhs externals onto [REG_x]; the rhs input's externals are
    packed the same way onto [TB_y]/[REG_y] (starting with the rhs FVI when
    it is external); internal indices are packed onto the serial [TB_k]
    dimension.  A full configuration is an element of the Cartesian product
    of the three partial configurations; externals left over on either side
    fall through to the grid with tile size 1.

    Deviation from the paper (documented in DESIGN.md): when a side's
    indices are too small to reach even the smallest target (tiny tensors),
    the paper's algorithm would produce nothing; we keep the exhausted
    packing instead so that every contraction has at least one
    configuration. *)

open Tc_expr

val targets_tb : int list
(** Thread-block dimension targets, [{4; 8; 16}] (§IV-A3). *)

val targets_reg : int list
(** Register-tile dimension targets, [{1; 2; 4; 6; 8}] — the paper's
    [{2; 4; 6; 8}] plus 1 (no register tiling along that axis), needed when
    an input has no leftover external index. *)

val pack_greedy :
  target:int ->
  first:(Tc_tensor.Index.t * int) option ->
  candidates:(Tc_tensor.Index.t * int) list ->
  Mapping.binding list * bool
(** The greedy packing primitive of Algorithm 2 (lines 10–45): accumulate
    (index, extent) candidates onto one dimension until the product reaches
    [target]; the crossing index gets a clamped tile.  Returns the bindings
    and whether the target was reached.  Exposed for reuse by the fixed-
    heuristic NWChem-style baseline. *)

type side = { tb : Mapping.binding list; reg : Mapping.binding list }
(** Partial configuration of one input side: thread-block bindings plus
    register-tile bindings. *)

val enumerate_side :
  Problem.t ->
  fvi:Tc_tensor.Index.t option ->
  externals:Tc_tensor.Index.t list ->
  side list
(** All TB/REG packings of one input's externals ([fvi] forced first when
    given).  Distinct as pairs — the building block of the Cartesian
    product that {!enumerate} materializes and {!Candidates} streams. *)

val enumerate_tbk :
  Problem.t -> internals:Tc_tensor.Index.t list -> Mapping.binding list list
(** All packings of the internal indices onto the serial TB_k dimension,
    completed: internals the greedy packing did not reach are appended
    with tile 1, so every returned list covers every internal index.
    Completion can make distinct packings equal — callers that need a
    duplicate-free product must dedup (see {!Candidates}). *)

val enumerate : Problem.t -> Mapping.t list
(** All structurally valid configurations for the contraction, deduplicated.
    Hardware and performance pruning is {e not} applied here; see
    {!Prune}. *)

val naive_space_size : Problem.t -> float
(** Size of the unpruned search space per the paper's §IV formula
    [|mapping| * |tilesize|] — e.g. 3,981,312 for Eq. 1. *)
