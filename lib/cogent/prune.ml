open Tc_gpu
open Tc_expr

type reason =
  | Too_many_threads
  | Too_few_threads
  | Smem_overflow
  | Regs_overflow
  | Low_occupancy
  | Too_few_blocks
  | Uncoalesced_out
  | Uncoalesced_lhs
  | Uncoalesced_rhs

let reason_to_string = function
  | Too_many_threads -> "too many threads per block"
  | Too_few_threads -> "fewer threads than a warp"
  | Smem_overflow -> "shared memory overflow"
  | Regs_overflow -> "register overflow"
  | Low_occupancy -> "low occupancy"
  | Too_few_blocks -> "too few thread blocks"
  | Uncoalesced_out -> "uncoalesced output stores"
  | Uncoalesced_lhs -> "uncoalesced lhs loads"
  | Uncoalesced_rhs -> "uncoalesced rhs loads"

let reason_slug = function
  | Too_many_threads -> "too_many_threads"
  | Too_few_threads -> "too_few_threads"
  | Smem_overflow -> "smem_overflow"
  | Regs_overflow -> "regs_overflow"
  | Low_occupancy -> "low_occupancy"
  | Too_few_blocks -> "too_few_blocks"
  | Uncoalesced_out -> "uncoalesced_out"
  | Uncoalesced_lhs -> "uncoalesced_lhs"
  | Uncoalesced_rhs -> "uncoalesced_rhs"

let all_reasons =
  [
    Too_many_threads; Too_few_threads; Smem_overflow; Regs_overflow;
    Low_occupancy; Too_few_blocks; Uncoalesced_out; Uncoalesced_lhs;
    Uncoalesced_rhs;
  ]

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let min_occupancy = 0.25
let min_blocks_factor = 2
let min_fvi_tile = 4

let regs_per_thread prec mapping =
  let factor = Precision.bytes prec / 4 in
  (factor * Mapping.reg_elems_per_thread mapping) + 32

let smem_bytes prec mapping =
  Mapping.smem_elems mapping * Precision.bytes prec

let occupancy arch prec mapping =
  Occupancy.calculate arch
    {
      Occupancy.threads_per_block = Mapping.threads_per_block mapping;
      smem_per_block = smem_bytes prec mapping;
      regs_per_thread = min 255 (regs_per_thread prec mapping);
    }

(* Coalescing guard: the tile of a tensor's FVI must cover the whole (small)
   extent or be at least [min_fvi_tile]. *)
let fvi_ok problem mapping fvi =
  let tile = Mapping.tile_of mapping fvi in
  tile >= min (Problem.extent problem fvi) min_fvi_tile

type klass =
  | Hardware
  | Perf_occupancy
  | Perf_blocks
  | Perf_coalescing_out
  | Perf_coalescing_in

let klass_of_reason = function
  | Too_many_threads | Smem_overflow | Regs_overflow -> Hardware
  | Low_occupancy | Too_few_threads -> Perf_occupancy
  | Too_few_blocks -> Perf_blocks
  | Uncoalesced_out -> Perf_coalescing_out
  | Uncoalesced_lhs | Uncoalesced_rhs -> Perf_coalescing_in

let klass_to_string = function
  | Hardware -> "hardware"
  | Perf_occupancy -> "occupancy"
  | Perf_blocks -> "blocks"
  | Perf_coalescing_out -> "coalescing-out"
  | Perf_coalescing_in -> "coalescing-in"

let constraints arch prec problem mapping =
  let info = Problem.info problem in
  let occ = occupancy arch prec mapping in
  [
    ( Hardware,
      Too_many_threads,
      Mapping.threads_per_block mapping <= arch.Arch.max_threads_per_block );
    (Hardware, Smem_overflow, smem_bytes prec mapping <= arch.Arch.smem_per_block);
    ( Hardware,
      Regs_overflow,
      regs_per_thread prec mapping <= arch.Arch.regs_per_thread_max
      && occ.Occupancy.limiter <> Occupancy.Invalid );
    (Perf_occupancy, Low_occupancy, occ.Occupancy.occupancy >= min_occupancy);
    ( Perf_occupancy,
      Too_few_threads,
      Mapping.threads_per_block mapping >= arch.Arch.warp_size );
    ( Perf_blocks,
      Too_few_blocks,
      Mapping.num_blocks problem mapping >= min_blocks_factor * arch.Arch.sms
    );
    ( Perf_coalescing_out,
      Uncoalesced_out,
      fvi_ok problem mapping info.Classify.out_fvi );
    ( Perf_coalescing_in,
      Uncoalesced_lhs,
      fvi_ok problem mapping info.Classify.lhs_fvi );
    ( Perf_coalescing_in,
      Uncoalesced_rhs,
      fvi_ok problem mapping info.Classify.rhs_fvi );
  ]

let check_classes classes arch prec problem mapping =
  let rec go = function
    | [] -> Ok ()
    | (klass, reason, ok) :: rest ->
        if List.mem klass classes && not ok then Error reason else go rest
  in
  go (constraints arch prec problem mapping)

let all_classes =
  [ Hardware; Perf_occupancy; Perf_blocks; Perf_coalescing_out;
    Perf_coalescing_in ]

let check arch prec problem mapping =
  check_classes all_classes arch prec problem mapping

type stats = {
  enumerated : int;
  kept : int;
  pruned : (reason * int) list;
  hardware_rejects : int;
  performance_rejects : int;
  relaxed : bool;
  relax_attempts : int;
}

let pruned_count s reason =
  Option.value ~default:0 (List.assoc_opt reason s.pruned)

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>%d enumerated, %d kept (%.1f%% pruned; %d hardware, %d performance)%s"
    s.enumerated s.kept
    (if s.enumerated = 0 then 0.0
     else
       100.0
       *. float_of_int (s.enumerated - s.kept)
       /. float_of_int s.enumerated)
    s.hardware_rejects s.performance_rejects
    (if s.relaxed then
       Printf.sprintf " [performance constraints relaxed after %d attempts]"
         s.relax_attempts
     else "");
  List.iter
    (fun (r, n) ->
      Format.fprintf fmt "@,  [%s] %a: %d"
        (klass_to_string (klass_of_reason r))
        pp_reason r n)
    s.pruned;
  Format.fprintf fmt "@]"

let filter ?(performance = true) arch prec problem mappings =
  Tc_obs.Trace.with_span "prune.filter"
    ~args:[ ("enumerated", Tc_obs.Trace.Int (List.length mappings)) ]
  @@ fun () ->
  let tally = Hashtbl.create 8 in
  let primary = if performance then all_classes else [ Hardware ] in
  let run classes =
    List.filter
      (fun m ->
        match check_classes classes arch prec problem m with
        | Ok () -> true
        | Error r ->
            if classes == primary then
              Hashtbl.replace tally r
                (1 + Option.value ~default:0 (Hashtbl.find_opt tally r));
            false)
      mappings
  in
  let strict = run primary in
  let kept, relaxed, relax_attempts =
    if strict <> [] then (strict, false, 0)
    else
      (* Relax performance constraints progressively; hardware stays.  The
         input-coalescing rules go first: when both input FVIs are internal
         they are jointly unsatisfiable under Algorithm 2's packing, and the
         block-count/occupancy rules should survive that case. *)
      let attempts =
        [
          [ Hardware; Perf_blocks; Perf_coalescing_out; Perf_coalescing_in ];
          [ Hardware; Perf_occupancy; Perf_blocks; Perf_coalescing_out ];
          [ Hardware; Perf_blocks; Perf_coalescing_out ];
          [ Hardware; Perf_coalescing_out; Perf_coalescing_in ];
          [ Hardware; Perf_coalescing_out ];
          [ Hardware ];
        ]
      in
      let rec try_relax n = function
        | [] -> ([], true, n)
        | classes :: rest -> (
            match run classes with
            | [] -> try_relax (n + 1) rest
            | l -> (l, true, n + 1))
      in
      try_relax 0 attempts
  in
  let pruned =
    Hashtbl.fold (fun r n acc -> (r, n) :: acc) tally []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let count_klass k =
    List.fold_left
      (fun acc (r, n) -> if klass_of_reason r = k then acc + n else acc)
      0 pruned
  in
  let hardware_rejects = count_klass Hardware in
  let performance_rejects =
    List.fold_left (fun acc (_, n) -> acc + n) 0 pruned - hardware_rejects
  in
  let stats =
    {
      enumerated = List.length mappings;
      kept = List.length kept;
      pruned;
      hardware_rejects;
      performance_rejects;
      relaxed;
      relax_attempts;
    }
  in
  let open Tc_obs in
  Metrics.add (Metrics.counter "cogent.prune.enumerated")
    (float_of_int stats.enumerated);
  Metrics.add (Metrics.counter "cogent.prune.kept") (float_of_int stats.kept);
  if relaxed then Metrics.incr (Metrics.counter "cogent.prune.relaxed");
  List.iter
    (fun (r, n) ->
      Metrics.add
        (Metrics.counter ("cogent.prune.rejected." ^ reason_slug r))
        (float_of_int n))
    pruned;
  Trace.add_args
    [
      ("kept", Trace.Int stats.kept);
      ("hardware_rejects", Trace.Int hardware_rejects);
      ("performance_rejects", Trace.Int performance_rejects);
      ("relaxed", Trace.Bool relaxed);
    ];
  (kept, stats)
