open Tc_gpu
open Tc_expr

type reason =
  | Too_many_threads
  | Too_few_threads
  | Smem_overflow
  | Regs_overflow
  | Low_occupancy
  | Too_few_blocks
  | Uncoalesced_out
  | Uncoalesced_lhs
  | Uncoalesced_rhs

let reason_to_string = function
  | Too_many_threads -> "too many threads per block"
  | Too_few_threads -> "fewer threads than a warp"
  | Smem_overflow -> "shared memory overflow"
  | Regs_overflow -> "register overflow"
  | Low_occupancy -> "low occupancy"
  | Too_few_blocks -> "too few thread blocks"
  | Uncoalesced_out -> "uncoalesced output stores"
  | Uncoalesced_lhs -> "uncoalesced lhs loads"
  | Uncoalesced_rhs -> "uncoalesced rhs loads"

let reason_slug = function
  | Too_many_threads -> "too_many_threads"
  | Too_few_threads -> "too_few_threads"
  | Smem_overflow -> "smem_overflow"
  | Regs_overflow -> "regs_overflow"
  | Low_occupancy -> "low_occupancy"
  | Too_few_blocks -> "too_few_blocks"
  | Uncoalesced_out -> "uncoalesced_out"
  | Uncoalesced_lhs -> "uncoalesced_lhs"
  | Uncoalesced_rhs -> "uncoalesced_rhs"

let all_reasons =
  [
    Too_many_threads; Too_few_threads; Smem_overflow; Regs_overflow;
    Low_occupancy; Too_few_blocks; Uncoalesced_out; Uncoalesced_lhs;
    Uncoalesced_rhs;
  ]

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let min_occupancy = 0.25
let min_blocks_factor = 2
let min_fvi_tile = 4

let regs_per_thread prec mapping =
  (* sub-word scalars (fp16) still occupy whole registers *)
  let factor = max 1 (Precision.bytes prec / 4) in
  (factor * Mapping.reg_elems_per_thread mapping) + 32

let smem_bytes prec mapping =
  Mapping.smem_elems mapping * Precision.bytes prec

let occupancy arch prec mapping =
  Occupancy.calculate arch
    {
      Occupancy.threads_per_block = Mapping.threads_per_block mapping;
      smem_per_block = smem_bytes prec mapping;
      regs_per_thread = min 255 (regs_per_thread prec mapping);
    }

(* Coalescing guard: the tile of a tensor's FVI must cover the whole (small)
   extent or be at least [min_fvi_tile] — [tile >= min extent min_fvi_tile],
   with the right-hand side precomputed in the {!checker}. *)

type klass =
  | Hardware
  | Perf_occupancy
  | Perf_blocks
  | Perf_coalescing_out
  | Perf_coalescing_in

let klass_of_reason = function
  | Too_many_threads | Smem_overflow | Regs_overflow -> Hardware
  | Low_occupancy | Too_few_threads -> Perf_occupancy
  | Too_few_blocks -> Perf_blocks
  | Uncoalesced_out -> Perf_coalescing_out
  | Uncoalesced_lhs | Uncoalesced_rhs -> Perf_coalescing_in

let klass_to_string = function
  | Hardware -> "hardware"
  | Perf_occupancy -> "occupancy"
  | Perf_blocks -> "blocks"
  | Perf_coalescing_out -> "coalescing-out"
  | Perf_coalescing_in -> "coalescing-in"

let all_classes =
  [ Hardware; Perf_occupancy; Perf_blocks; Perf_coalescing_out;
    Perf_coalescing_in ]

(* Streaming checker: the constraint list of §IV-A with the per-candidate
   work hoisted out.  Checks run in the same order as the historical
   eagerly-built constraint list — first violation wins — but occupancy is
   computed lazily (it is the expensive check and is skipped entirely once
   an earlier rule fires or when neither the Hardware nor the
   Perf_occupancy class is active). *)
type checker = {
  arch : Arch.t;
  prec : Precision.t;
  out_fvi : Tc_tensor.Index.t;
  lhs_fvi : Tc_tensor.Index.t;
  rhs_fvi : Tc_tensor.Index.t;
  out_fvi_min : int;  (* min (extent out_fvi) min_fvi_tile *)
  lhs_fvi_min : int;
  rhs_fvi_min : int;
  min_blocks : int;
  chk_hardware : bool;
  chk_occupancy : bool;
  chk_blocks : bool;
  chk_out : bool;
  chk_in : bool;
}

let checker_of_classes classes arch prec problem =
  let info = Problem.info problem in
  let fvi_min f = min (Problem.extent problem f) min_fvi_tile in
  {
    arch;
    prec;
    out_fvi = info.Classify.out_fvi;
    lhs_fvi = info.Classify.lhs_fvi;
    rhs_fvi = info.Classify.rhs_fvi;
    out_fvi_min = fvi_min info.Classify.out_fvi;
    lhs_fvi_min = fvi_min info.Classify.lhs_fvi;
    rhs_fvi_min = fvi_min info.Classify.rhs_fvi;
    min_blocks = min_blocks_factor * arch.Arch.sms;
    chk_hardware = List.mem Hardware classes;
    chk_occupancy = List.mem Perf_occupancy classes;
    chk_blocks = List.mem Perf_blocks classes;
    chk_out = List.mem Perf_coalescing_out classes;
    chk_in = List.mem Perf_coalescing_in classes;
  }

let checker ?(performance = true) arch prec problem =
  checker_of_classes (if performance then all_classes else [ Hardware ])
    arch prec problem

let check_stream c ~threads ~smem_elems ~reg_elems ~tile ~blocks =
  let bytes = Precision.bytes c.prec in
  let smem = smem_elems * bytes in
  let regs = (max 1 (bytes / 4) * reg_elems) + 32 in
  let occ =
    lazy
      (Occupancy.calculate c.arch
         {
           Occupancy.threads_per_block = threads;
           smem_per_block = smem;
           regs_per_thread = min 255 regs;
         })
  in
  if c.chk_hardware && threads > c.arch.Arch.max_threads_per_block then
    Some Too_many_threads
  else if c.chk_hardware && smem > c.arch.Arch.smem_per_block then
    Some Smem_overflow
  else if
    c.chk_hardware
    && not
         (regs <= c.arch.Arch.regs_per_thread_max
         && (Lazy.force occ).Occupancy.limiter <> Occupancy.Invalid)
  then Some Regs_overflow
  else if c.chk_occupancy && (Lazy.force occ).Occupancy.occupancy < min_occupancy
  then Some Low_occupancy
  else if c.chk_occupancy && threads < c.arch.Arch.warp_size then
    Some Too_few_threads
  else if c.chk_blocks && blocks () < c.min_blocks then Some Too_few_blocks
  else if c.chk_out && tile c.out_fvi < c.out_fvi_min then Some Uncoalesced_out
  else if c.chk_in && tile c.lhs_fvi < c.lhs_fvi_min then Some Uncoalesced_lhs
  else if c.chk_in && tile c.rhs_fvi < c.rhs_fvi_min then Some Uncoalesced_rhs
  else None

let check_classes classes arch prec problem mapping =
  let c = checker_of_classes classes arch prec problem in
  match
    check_stream c
      ~threads:(Mapping.threads_per_block mapping)
      ~smem_elems:(Mapping.smem_elems mapping)
      ~reg_elems:(Mapping.reg_elems_per_thread mapping)
      ~tile:(Mapping.tile_of mapping)
      ~blocks:(fun () -> Mapping.num_blocks problem mapping)
  with
  | None -> Ok ()
  | Some r -> Error r

let check arch prec problem mapping =
  check_classes all_classes arch prec problem mapping

type stats = {
  enumerated : int;
  kept : int;
  pruned : (reason * int) list;
  hardware_rejects : int;
  performance_rejects : int;
  relaxed : bool;
  relax_attempts : int;
}

let pruned_count s reason =
  Option.value ~default:0 (List.assoc_opt reason s.pruned)

(* Reject tallies are int arrays indexed by declaration order: cheap to
   bump in the streaming hot loop and trivially summed across the
   pipeline's parallel chunks.  [stats_of_tally] renders them in one
   canonical order — count-descending, declaration order on ties (the
   sort is stable) — so a tally produced chunk-by-chunk yields the exact
   [stats] value of a single sequential pass. *)
let reason_index r =
  let rec go k = function
    | [] -> assert false
    | r' :: rest -> if r' = r then k else go (k + 1) rest
  in
  go 0 all_reasons

let num_reasons = List.length all_reasons

let stats_of_tally ~enumerated ~kept ~relaxed ~relax_attempts counts =
  let pruned =
    List.filter_map
      (fun r ->
        match counts.(reason_index r) with 0 -> None | n -> Some (r, n))
      all_reasons
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let hardware_rejects =
    List.fold_left
      (fun acc (r, n) ->
        if klass_of_reason r = Hardware then acc + n else acc)
      0 pruned
  in
  let performance_rejects =
    List.fold_left (fun acc (_, n) -> acc + n) 0 pruned - hardware_rejects
  in
  {
    enumerated;
    kept;
    pruned;
    hardware_rejects;
    performance_rejects;
    relaxed;
    relax_attempts;
  }

let emit_stats_metrics stats =
  let open Tc_obs in
  Metrics.add (Metrics.counter "cogent.prune.enumerated")
    (float_of_int stats.enumerated);
  Metrics.add (Metrics.counter "cogent.prune.kept") (float_of_int stats.kept);
  if stats.relaxed then Metrics.incr (Metrics.counter "cogent.prune.relaxed");
  List.iter
    (fun (r, n) ->
      Metrics.add
        (Metrics.counter ("cogent.prune.rejected." ^ reason_slug r))
        (float_of_int n))
    stats.pruned

(* Relaxation ladder (§IV-A2 fallback): performance classes are dropped
   progressively; hardware constraints never are.  The input-coalescing
   rules go first: when both input FVIs are internal they are jointly
   unsatisfiable under Algorithm 2's packing, and the block-count /
   occupancy rules should survive that case. *)
let relax_attempts_classes =
  [
    [ Hardware; Perf_blocks; Perf_coalescing_out; Perf_coalescing_in ];
    [ Hardware; Perf_occupancy; Perf_blocks; Perf_coalescing_out ];
    [ Hardware; Perf_blocks; Perf_coalescing_out ];
    [ Hardware; Perf_coalescing_out; Perf_coalescing_in ];
    [ Hardware; Perf_coalescing_out ];
    [ Hardware ];
  ]

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>%d enumerated, %d kept (%.1f%% pruned; %d hardware, %d performance)%s"
    s.enumerated s.kept
    (if s.enumerated = 0 then 0.0
     else
       100.0
       *. float_of_int (s.enumerated - s.kept)
       /. float_of_int s.enumerated)
    s.hardware_rejects s.performance_rejects
    (if s.relaxed then
       Printf.sprintf " [performance constraints relaxed after %d attempts]"
         s.relax_attempts
     else "");
  List.iter
    (fun (r, n) ->
      Format.fprintf fmt "@,  [%s] %a: %d"
        (klass_to_string (klass_of_reason r))
        pp_reason r n)
    s.pruned;
  Format.fprintf fmt "@]"

let filter ?(performance = true) arch prec problem mappings =
  Tc_obs.Trace.with_span "prune.filter"
    ~args:[ ("enumerated", Tc_obs.Trace.Int (List.length mappings)) ]
  @@ fun () ->
  let tally = Array.make num_reasons 0 in
  let primary = if performance then all_classes else [ Hardware ] in
  let run classes =
    List.filter
      (fun m ->
        match check_classes classes arch prec problem m with
        | Ok () -> true
        | Error r ->
            if classes == primary then
              tally.(reason_index r) <- tally.(reason_index r) + 1;
            false)
      mappings
  in
  let strict = run primary in
  let kept, relaxed, relax_attempts =
    if strict <> [] then (strict, false, 0)
    else
      let rec try_relax n = function
        | [] -> ([], true, n)
        | classes :: rest -> (
            match run classes with
            | [] -> try_relax (n + 1) rest
            | l -> (l, true, n + 1))
      in
      try_relax 0 relax_attempts_classes
  in
  let stats =
    stats_of_tally ~enumerated:(List.length mappings)
      ~kept:(List.length kept) ~relaxed ~relax_attempts tally
  in
  emit_stats_metrics stats;
  Tc_obs.Trace.add_args
    [
      ("kept", Tc_obs.Trace.Int stats.kept);
      ("hardware_rejects", Tc_obs.Trace.Int stats.hardware_rejects);
      ("performance_rejects", Tc_obs.Trace.Int stats.performance_rejects);
      ("relaxed", Tc_obs.Trace.Bool relaxed);
    ];
  (kept, stats)
