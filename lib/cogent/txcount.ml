type axis = { tile : int; cut : int; stride : int }

let staged_sweep ~width ~ept axes =
  let n = Array.length axes in
  let elems = Array.fold_left (fun a ax -> a * ax.tile) 1 axes in
  if elems <= 0 then 0
  else begin
    let width = max 1 width in
    let ept = max 1 ept in
    (* Odometer over the padded tile (first axis fastest), carrying the
       element address and the number of out-of-range coordinates along. *)
    let locals = Array.make n 0 in
    let bad = ref 0 in
    Array.iter (fun ax -> if ax.cut <= 0 then incr bad) axes;
    let addr = ref 0 in
    let tx = ref 0 in
    (* Current coalescing segment: length and last address touched. *)
    let seg_len = ref 0 in
    let seg_prev = ref 0 in
    let close_segment () =
      if !seg_len > 0 then begin
        tx := !tx + ((!seg_len + ept - 1) / ept);
        seg_len := 0
      end
    in
    for pos = 0 to elems - 1 do
      if pos mod width = 0 then close_segment ();
      if !bad = 0 then
        if !seg_len > 0 && !addr = !seg_prev + 1 then begin
          incr seg_len;
          seg_prev := !addr
        end
        else begin
          close_segment ();
          seg_len := 1;
          seg_prev := !addr
        end;
      if pos < elems - 1 then begin
        let k = ref 0 in
        while locals.(!k) = axes.(!k).tile - 1 do
          let ax = axes.(!k) in
          if ax.cut > 0 && ax.cut < ax.tile then decr bad;
          addr := !addr - ((ax.tile - 1) * ax.stride);
          locals.(!k) <- 0;
          incr k
        done;
        let ax = axes.(!k) in
        locals.(!k) <- locals.(!k) + 1;
        addr := !addr + ax.stride;
        if locals.(!k) = ax.cut then incr bad
      end
    done;
    close_segment ();
    !tx
  end
