(** DRAM-transaction counting for the emitted cooperative sweeps.

    This module is the single definition of the memory-transaction
    convention shared by the simulator's prediction
    ({!Tc_sim.Simkernel.transactions_exact}) and the interpreter's
    measurement ({!Interp.measure}) — both sides count the {e same}
    hardware model, so a disagreement between them can only come from the
    combinatorics around it (boundary-pattern enumeration, foreign-block
    multipliers), which is exactly what the cross-validation in
    [Tc_profile] checks.

    The convention mirrors what the generated CUDA executes:

    - a staged load is a cooperative sweep
      [for (l = tid; l < elems; l += threads)] over the {e full padded}
      tile volume, in the operand's own layout order (FVI fastest); a
      store is one warp-synchronous wave of all threads per register
      coordinate;
    - a {e wave} is one iteration of that sweep: [width] consecutive
      positions, issued together.  Out-of-range lanes (the guard
      [ok ? load : 0.0] in the emitted kernel) issue no memory access;
    - within a wave, the in-range accesses coalesce into maximal
      address-contiguous segments; each segment costs
      [ceil(len / ept)] 128-byte transactions ([ept] = elements per
      transaction for the precision).  Segment bases are assumed
      line-aligned, and there is no coalescing across waves or across
      discontiguous segments. *)

type axis = { tile : int; cut : int; stride : int }
(** One axis of a staged tile, in sweep order (first axis fastest):
    [tile] is the padded tile length the sweep enumerates, [cut] the
    in-range prefix ([min tile (extent - base)], so [cut = tile] away
    from boundaries), and [stride] the element stride of the axis in the
    tensor being accessed. *)

val staged_sweep : width:int -> ept:int -> axis array -> int
(** [staged_sweep ~width ~ept axes] is the number of DRAM transactions
    issued by one cooperative sweep over the padded tile [axes] executed
    by waves of [width] threads.  Positions enumerate the full
    [prod tile] volume (first axis fastest); a position is in range iff
    every local coordinate is below its [cut]; in-range positions access
    element address [sum (local * stride)] relative to the tile base
    (bases are line-aligned, so only address deltas matter). *)
