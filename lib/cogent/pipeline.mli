(** Fused streaming planner: enumerate → prune → rank as one candidate
    pipeline with branch-and-bound cost pruning.

    The legacy hot path materializes three intermediate lists
    ({!Enumerate.enumerate}, {!Prune.filter}, {!Cost.rank}).  [search]
    instead streams each candidate from {!Candidates} through the
    {!Prune.check_stream} rules and an incremental {!Cost.Eval}
    evaluation that aborts as soon as the candidate's partial
    transaction count exceeds the cost of the current K-th best (a
    bounded best-heap ordered by (cost, {!Mapping.compare})).

    Equivalences with the legacy path, locked by a property test in
    [test/test_cogent.ml]:

    {ul
    {- the ranked result equals the first [topk] entries of
       [Cost.rank prec problem (fst (Prune.filter ...))] — mappings and
       costs bit-identical;}
    {- {!Prune.stats} is structurally equal (same canonical reject
       tally, relaxation behaves identically);}
    {- with [budget], the first [max 1 budget] survivors in candidate
       order are ranked in full, like the legacy truncate-then-rank
       path, and [degraded] is set iff survivors were dropped.}}

    Determinism: the parallel fan-out is over {!Candidates.iter_chunk}
    chunks via {!Tc_par.Pool.map_fold}.  Chunk boundaries depend only on
    the problem, per-chunk tallies/heaps merge in chunk order, and the
    heap order is total — so every field of [outcome], including
    [bound_aborted], is bit-identical at any job count. *)

open Tc_gpu
open Tc_expr

type outcome = {
  ranked : (Mapping.t * float) list;
      (** top-[topk] candidates, ascending (cost, {!Mapping.compare}) *)
  stats : Prune.stats;  (** rule-based reject statistics, full stream *)
  bound_aborted : int;
      (** prune survivors discarded by the cost bound instead of a §IV-A
          rule: their (possibly partial) transaction count already
          exceeded the current top-K — distinct from [stats.pruned] *)
  degraded : bool;  (** budget truncation dropped survivors *)
}

val search :
  ?performance:bool ->
  ?budget:int ->
  topk:int ->
  Arch.t ->
  Precision.t ->
  Problem.t ->
  outcome
(** One fused search.  [performance:false] streams with hardware rules
    only (the ablation hook of {!Prune.filter}).  [budget] bounds the
    survivors ranked (serving-layer worst case): the first [max 1 budget]
    in candidate order are ranked exactly, with no bound aborts.
    [ranked] is empty iff no configuration survives even relaxation.
    Emits no metrics or spans — the caller ({!Driver}) owns
    observability, outside the parallel section. *)
