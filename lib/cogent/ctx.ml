open Tc_gpu

type measure = Plan.t -> float

type t = {
  arch : Arch.t;
  precision : Precision.t;
  schema : Schema.t option;
  refine : int;
  measure : measure option;
  jobs : int option;
  budget : int option;
}

let default =
  {
    arch = Arch.v100;
    precision = Precision.FP64;
    schema = None;
    refine = 8;
    measure = None;
    jobs = None;
    budget = None;
  }

let make ?(arch = Arch.v100) ?(precision = Precision.FP64) ?schema
    ?(refine = 8) ?measure ?jobs ?budget () =
  { arch; precision; schema; refine; measure; jobs; budget }

let with_arch arch t = { t with arch }
let with_precision precision t = { t with precision }
let with_schema schema t = { t with schema = Some schema }
let with_measure m t = { t with measure = Some m }
let with_refine refine t = { t with refine }
let with_jobs j t = { t with jobs = Some j }
let with_budget b t = { t with budget = Some b }

let install_jobs t = Option.iter Tc_par.Pool.set_default_jobs t.jobs

let pp ppf t =
  Format.fprintf ppf "%s %s schema=%s refine=%d %s jobs=%s budget=%s"
    t.arch.Arch.name
    (Precision.to_string t.precision)
    (match t.schema with None -> "auto" | Some s -> Schema.to_string s)
    t.refine
    (if Option.is_none t.measure then "model-only" else "measured")
    (match t.jobs with None -> "default" | Some j -> string_of_int j)
    (match t.budget with None -> "unlimited" | Some b -> string_of_int b)
