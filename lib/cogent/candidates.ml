open Tc_tensor
open Tc_expr

type t = {
  externals : Index.t list;
  x_sides : Enumerate.side array;
  y_sides : Enumerate.side array;
  tbks : Mapping.binding list array;
  x_used : Idxset.t array;
  y_used : Idxset.t array;
}

let side_used (s : Enumerate.side) =
  List.fold_left
    (fun acc b -> Idxset.add b.Mapping.index acc)
    Idxset.empty
    (s.Enumerate.tb @ s.Enumerate.reg)

(* (tb, reg) pairs ordered exactly as Mapping.compare orders the full
   configurations they expand into: tb first, then reg. *)
let compare_side (a : Enumerate.side) (b : Enumerate.side) =
  match Mapping.compare_bindings a.Enumerate.tb b.Enumerate.tb with
  | 0 -> Mapping.compare_bindings a.Enumerate.reg b.Enumerate.reg
  | c -> c

let create problem =
  let info = Problem.info problem in
  let x_sides =
    Enumerate.enumerate_side problem ~fvi:(Some info.Classify.out_fvi)
      ~externals:info.Classify.lhs_externals
  in
  let y_fvi =
    if
      List.exists (Index.equal info.Classify.rhs_fvi)
        info.Classify.rhs_externals
    then Some info.Classify.rhs_fvi
    else None
  in
  let y_sides =
    Enumerate.enumerate_side problem ~fvi:y_fvi
      ~externals:info.Classify.rhs_externals
  in
  (* Completed TB_k lists are the one product component with duplicates
     (tile-1 completion can merge distinct packings); sides are distinct
     as (tb, reg) pairs.  After sort_uniq the triple product is therefore
     duplicate-free, and nested ascending iteration yields full
     configurations in strictly increasing Mapping.compare order — the
     exact sequence Enumerate.enumerate materializes (a property test
     locks this). *)
  let tbks =
    List.sort_uniq Mapping.compare_bindings
      (Enumerate.enumerate_tbk problem ~internals:info.Classify.internals)
  in
  let x_sides = Array.of_list (List.sort_uniq compare_side x_sides) in
  let y_sides = Array.of_list (List.sort_uniq compare_side y_sides) in
  {
    externals = info.Classify.externals;
    x_sides;
    y_sides;
    tbks = Array.of_list tbks;
    x_used = Array.map side_used x_sides;
    y_used = Array.map side_used y_sides;
  }

let count t =
  Array.length t.x_sides * Array.length t.y_sides * Array.length t.tbks

let num_chunks t = Array.length t.x_sides

let iter_chunk t xi f =
  let x = t.x_sides.(xi) and x_used = t.x_used.(xi) in
  let tbx = x.Enumerate.tb and regx = x.Enumerate.reg in
  for yi = 0 to Array.length t.y_sides - 1 do
    let y = t.y_sides.(yi) in
    let used = Idxset.union x_used t.y_used.(yi) in
    let grid = List.filter (fun i -> not (Idxset.mem i used)) t.externals in
    let tby = y.Enumerate.tb and regy = y.Enumerate.reg in
    for ti = 0 to Array.length t.tbks - 1 do
      f { Mapping.tbx; regx; tby; regy; tbk = t.tbks.(ti); grid }
    done
  done

let iter t f =
  for xi = 0 to num_chunks t - 1 do
    iter_chunk t xi f
  done

let to_list t =
  let acc = ref [] in
  iter t (fun m -> acc := m :: !acc);
  List.rev !acc
