(** Code generation (Algorithm 1), lowered through the typed kernel IR.

    Emits, for a given plan, a kernel with the four-phase structure of the
    paper — cooperative GMEM→SMEM staging of input slabs, SMEM→register
    vector loads, register-tile outer products over the serial TB_k sweep,
    and guarded coalesced stores — plus a host-side launcher.

    Since the IR refactor, every [emit*] entry point is a thin wrapper:
    {!lower} encodes Algorithm 1 once as a [Tc_kir.Ir.kernel], a
    [Tc_kir.Print] dialect renders it, and [Tc_kir.Check.cross_validate]
    asserts at emission time that the shared-memory footprint and register
    estimate derived from the IR match the plan's predictions.

    Tile sizes, thread-block shape and shared-memory footprints are baked in
    as compile-time constants (they define the configuration); tensor
    extents remain {e runtime parameters}, so one generated kernel supports
    arbitrary problem sizes and the representative size only drives the
    configuration choice (§IV-B). *)

type dialect = Tc_kir.Print.dialect = Cuda | Opencl | C_host

val dialect_name : dialect -> string

val kernel_name : Plan.t -> string
(** A C identifier derived from the TCCG string of the contraction,
    e.g. ["cogent_abcd_aebf_dfce"]. *)

val spec_of_plan : ?name:string -> Plan.t -> Tc_kir.Ir.spec
(** The self-contained lowering input extracted from a plan: operand
    layouts, index classes, mapping bindings and representative extents. *)

val lower : ?name:string -> Plan.t -> Tc_kir.Ir.kernel
(** [Plan.t → Tc_kir.kernel]: the single encoding of Algorithm 1
    ([Tc_kir.Lower.kernel ∘ spec_of_plan]). *)

val emit_kernel : ?name:string -> ?dialect:dialect -> Plan.t -> string
(** The kernel definition only ([__global__] CUDA by default; with
    [~dialect:Opencl] an OpenCL [__kernel] using [__local] staging and
    [barrier] synchronization; with [~dialect:C_host] plain C that emulates
    the thread grid with loops and runs on the CPU).
    @raise Invalid_argument if the IR-derived resource footprint disagrees
    with the plan (see [Tc_kir.Check.cross_validate]). *)

val emit_launcher : ?name:string -> Plan.t -> string
(** An [extern "C"] host function computing the grid decomposition and
    launching the kernel. *)

val emit : ?name:string -> Plan.t -> string
(** Header comment + kernel + launcher: a compilable [.cu] translation
    unit (given CUDA headers). *)

val emit_standalone : ?name:string -> Plan.t -> string
(** {!emit} plus a [main] that allocates device buffers at the
    representative problem size, runs the kernel repeatedly and reports
    GFLOPS — the shape of the paper's benchmark drivers. *)

val emit_opencl : ?name:string -> Plan.t -> string
(** A complete [.cl] translation unit: header comment, the OpenCL kernel,
    and a comment documenting the NDRange launch geometry
    (global/local work sizes) the host must use. *)

val emit_c : ?name:string -> Plan.t -> string
(** A complete [.c] translation unit in the C-host dialect: header comment,
    a note on the loop-based execution model, and the kernel as a plain C
    function. *)

val emit_c_standalone : ?name:string -> Plan.t -> string
(** {!emit_c} plus includes and a [main] that fills the inputs with the
    deterministic [Tc_kir.Print.host_fill] pattern, runs the contraction on
    the CPU at the representative extents (overridable via argv) and prints
    every output element — the executable form the numeric tests diff
    against [Tensor.Contract_ref]. *)
