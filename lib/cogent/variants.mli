(** Multi-version code generation (§IV-B).

    "When the code generator receives a set of representative problem
    sizes, it can generate different code versions targeted at each
    representative problem size. [...] the kernel is selected at runtime
    based on the closest representative"; every generated kernel still
    accepts arbitrary extents.

    This module plans one kernel per representative size, selects the
    nearest variant for an actual problem size (log-space distance over
    extents), and emits a single CUDA translation unit containing every
    kernel plus a runtime dispatcher. *)

open Tc_tensor
open Tc_gpu
open Tc_expr

type variant = {
  name : string;  (** kernel symbol, e.g. [cogent_ab_ac_cb_v0] *)
  sizes : Sizes.t;  (** the representative this version was tuned for *)
  plan : Plan.t;
}

type t = private { ast : Ast.t; variants : variant list }

val generate_ctx : Ctx.t -> Ast.t -> Sizes.t list -> (t, Driver.error) result
(** One plan per representative size (each through the full
    enumerate/prune/rank/refine pipeline under the given context).
    [Driver.Bad_problem] on an invalid contraction, an empty size list, or
    a size map that does not cover the contraction. *)

val generate :
  ?arch:Arch.t -> ?precision:Precision.t -> ?measure:Driver.measure
  -> Ast.t -> Sizes.t list -> (t, string) result
(** Deprecated wrapper over {!generate_ctx}; errors rendered with
    {!Driver.error_to_string}. *)

val generate_exn :
  ?arch:Arch.t -> ?precision:Precision.t -> ?measure:Driver.measure
  -> Ast.t -> Sizes.t list -> t

val distance : Sizes.t -> Sizes.t -> Index.t list -> float
(** Sum over the given indices of [|log(Na / Nb)|] — the closeness measure
    used for runtime selection. *)

val select : t -> Sizes.t -> variant
(** The variant whose representative is nearest to the actual size.
    @raise Invalid_argument if the size map does not cover the
    contraction's indices. *)

val emit : t -> string
(** All kernels, their launchers, and a dispatcher
    [<base>_dispatch(d_C, d_A, d_B, N..., stream)] that picks the nearest
    representative at runtime — one compilable translation unit. *)
