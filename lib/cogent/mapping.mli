(** Kernel configurations: the parameters of Table II.

    A mapping assigns every index of the contraction to one dimension of the
    GPU execution space, with a tile size:

    - external (output) indices go to the thread-block X/Y dimensions
      ([tbx]/[tby]), the per-thread register tile ([regx]/[regy]), or the
      grid ([grid], tile 1);
    - internal (contraction) indices all go to the serial step dimension
      [tbk]; the product of their tiles is the depth of the shared-memory
      slab loaded per step.

    X-side lists hold externals of the canonical lhs input, Y-side lists
    externals of the rhs input.  The head of [tbx] is always the output's
    FVI (the paper's coalesced-store constraint). *)

open Tc_tensor
open Tc_expr

type binding = { index : Index.t; tile : int }

type t = {
  tbx : binding list;
  regx : binding list;
  tby : binding list;
  regy : binding list;
  tbk : binding list;  (** all internal indices, enumeration order *)
  grid : Index.t list;  (** leftover externals, implicit tile 1 *)
}

val size_tbx : t -> int
(** Threads along X = product of [tbx] tiles. *)

val size_tby : t -> int
val size_regx : t -> int
val size_regy : t -> int

val size_tbk : t -> int
(** Step depth = product of [tbk] tiles. *)

val threads_per_block : t -> int

val tile_of : t -> Index.t -> int
(** Tile of any index under this mapping (1 for grid indices).
    @raise Not_found for foreign indices. *)

val smem_elems : t -> int
(** Elements of shared memory for the two input slabs:
    [(TBx*REGx + TBy*REGy) * TBk]. *)

val reg_elems_per_thread : t -> int
(** Output accumulators plus the two staging vectors:
    [REGx*REGy + REGx + REGy]. *)

val num_blocks : Problem.t -> t -> int
(** [prod over externals of ceil(N_i / tile_i)]. *)

val num_steps : Problem.t -> t -> int
(** [prod over internals of ceil(N_i / tile_i)]. *)

val blocks_per_index : Problem.t -> t -> (Index.t * int) list
(** Per-external block counts, output order — the grid decomposition. *)

val validate : Problem.t -> t -> (unit, string) result
(** Checks structural well-formedness: every external in exactly one of
    tbx/regx/tby/regy/grid and on the correct side, every internal exactly
    once in tbk, and every tile is within [1, extent].  (That the head of
    [tbx] is the output FVI is an invariant of COGENT's {e enumeration},
    not of executability — the TC-like autotuner explores configurations
    without it.) *)

val equal : t -> t -> bool
val compare : t -> t -> int

val compare_bindings : binding list -> binding list -> int
(** The per-dimension total order underlying {!compare} (length first,
    then elementwise index/tile) — exposed so the streaming
    {!Candidates} producer can pre-sort partial configurations into
    exactly the order {!compare} induces on full ones. *)

val pp : Format.formatter -> t -> unit
