(** Streaming candidate producer — the enumeration half of the fused
    planner pipeline.

    {!Enumerate.enumerate} materializes the full Cartesian product of
    partial configurations as a [Mapping.t list] and deduplicates it
    through a [Set].  This module precomputes the three {e sorted} product
    components once (X-side packings, Y-side packings, duplicate-free
    completed TB_k packings) and then {e yields} full configurations one
    at a time:

    {ul
    {- {!iter} visits exactly the configurations of
       [Enumerate.enumerate], in the same strictly increasing
       {!Mapping.compare} order — no intermediate list, no set (a
       property test in [test/test_cogent.ml] locks the equivalence);}
    {- {!iter_chunk} exposes the outer (X-side) loop as the pipeline's
       deterministic parallel chunks: chunk boundaries depend only on the
       problem, never on the job count, so per-chunk prune tallies and
       candidate heaps merge bit-identically at any parallelism (see
       [Tc_par.Pool.map_fold]).}} *)

open Tc_expr

type t

val create : Problem.t -> t
(** Precompute the sorted product components (runs Algorithm 2's greedy
    packing enumeration; cheap — the product itself is not built). *)

val count : t -> int
(** Number of configurations the stream yields — equals
    [List.length (Enumerate.enumerate problem)], i.e. the [enumerated]
    figure of {!Prune.stats}. *)

val num_chunks : t -> int
(** Number of chunks (X-side packings).  At least 1. *)

val iter_chunk : t -> int -> (Mapping.t -> unit) -> unit
(** [iter_chunk t k f] applies [f] to chunk [k]'s configurations in
    ascending {!Mapping.compare} order.  Chunks partition the stream:
    concatenating chunks [0 .. num_chunks t - 1] is exactly {!iter}. *)

val iter : t -> (Mapping.t -> unit) -> unit
(** All configurations, ascending, duplicate-free. *)

val to_list : t -> Mapping.t list
(** Materialize the stream (testing/debugging; equals
    [Enumerate.enumerate]). *)
