open Tc_gpu
open Tc_expr

type t = {
  problem : Problem.t;
  mapping : Mapping.t;
  arch : Arch.t;
  precision : Precision.t;
  schema : Schema.t;
  cost : float;
}

(* Why a schema is not usable for a configuration, or [None] if it is.
   Classic is always feasible: the pruning rules already enforced its
   footprint. *)
let schema_error ~arch ~precision ~mapping schema =
  if not (Schema.admits_precision schema precision) then
    Some
      (Printf.sprintf
         "the %s schema requires a tensor-core precision (fp16 or tf32), got \
          %s"
         (Schema.to_string schema)
         (Precision.to_string precision))
  else if Schema.pipelined schema && not arch.Arch.async_copy then
    Some
      (Printf.sprintf
         "the %s schema needs asynchronous GMEM->SMEM copies (cp.async), \
          which %s lacks"
         (Schema.to_string schema) arch.Arch.name)
  else
    let smem = Schema.smem_factor schema * Prune.smem_bytes precision mapping in
    if smem > arch.Arch.smem_per_block then
      Some
        (Printf.sprintf
           "double-buffered slabs need %d B of shared memory, above the %d B \
            block budget of %s"
           smem arch.Arch.smem_per_block arch.Arch.name)
    else
      match (Schema.mma schema, Schema.fragment_shape precision) with
      | true, Some (fm, fn, _) ->
          let mx = Mapping.size_tbx mapping * Mapping.size_regx mapping in
          let my = Mapping.size_tby mapping * Mapping.size_regy mapping in
          if mx mod fm <> 0 || my mod fn <> 0 then
            Some
              (Printf.sprintf
                 "macro-tile %dx%d does not tile into %dx%d MMA fragments" mx
                 my fm fn)
          else None
      | _ -> None

let schema_feasible ~arch ~precision ~mapping schema =
  Option.is_none (schema_error ~arch ~precision ~mapping schema)

let feasible_schemas ~arch ~precision mapping =
  List.filter (schema_feasible ~arch ~precision ~mapping) Schema.all

let make ~problem ~mapping ~arch ~precision =
  (match Mapping.validate problem mapping with
  | Ok () -> ()
  | Error e -> invalid_arg ("Plan.make: invalid mapping: " ^ e));
  let cost = Cost.total precision problem mapping in
  { problem; mapping; arch; precision; schema = Schema.Classic; cost }

let with_schema schema t =
  (match
     schema_error ~arch:t.arch ~precision:t.precision ~mapping:t.mapping
       schema
   with
  | None -> ()
  | Some e -> invalid_arg ("Plan.with_schema: " ^ e));
  { t with schema }

let threads_x t = Mapping.size_tbx t.mapping
let threads_y t = Mapping.size_tby t.mapping
let threads_per_block t = Mapping.threads_per_block t.mapping

let smem_bytes t =
  Schema.smem_factor t.schema * Prune.smem_bytes t.precision t.mapping

let regs_per_thread t =
  Prune.regs_per_thread t.precision t.mapping + Schema.extra_regs t.schema

let num_blocks t = Mapping.num_blocks t.problem t.mapping
let num_steps t = Mapping.num_steps t.problem t.mapping

let occupancy t =
  Occupancy.calculate t.arch
    {
      Occupancy.threads_per_block = threads_per_block t;
      smem_per_block = smem_bytes t;
      regs_per_thread = min 255 (regs_per_thread t);
    }

let flops t = Problem.flops t.problem

let pp fmt t =
  Format.fprintf fmt
    "@[<v>plan for %a on %s (%a, %a schema)@,\
     \  %a@,\
     \  %dx%d threads, %d blocks, %d steps, %d B smem, ~%d regs/thread@,\
     \  occupancy %.2f, model cost %.3e transactions@]"
    Problem.pp t.problem t.arch.Arch.name Precision.pp t.precision Schema.pp
    t.schema Mapping.pp t.mapping (threads_x t) (threads_y t) (num_blocks t)
    (num_steps t) (smem_bytes t) (regs_per_thread t)
    (occupancy t).Occupancy.occupancy t.cost
