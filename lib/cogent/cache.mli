(** Plan cache.

    A runtime that issues many contractions (a coupled-cluster sweep, a
    training loop) should not re-run the configuration search per call:
    generated kernels take extents as runtime parameters, so one kernel per
    (contraction, device, precision, size class) suffices — §IV-B's
    "closest representative" selection, memoized.

    The size class rounds every extent to the nearest power of two, so
    nearby problem sizes share a plan while order-of-magnitude changes
    trigger a fresh search.

    Concurrency: lookups and inserts are mutex-guarded, and generation is
    {e single-flight} — when two domains race on one key, the second
    blocks on the first's in-flight generation instead of re-running the
    same expensive search, then returns the first's result as a hit. *)

open Tc_expr

type t

val create : unit -> t

val size_class : Problem.t -> string
(** The rounding key, e.g. ["a:16,b:16,c:64"] — exposed for tests. *)

val key : Ctx.t -> Problem.t -> string
(** The full memoization key:
    [contraction|arch|precision|size class], with [|schema] appended only
    when the context forces a kernel schema.  This is also the row key of
    the on-disk {!Tc_serve.Planstore}. *)

val find_or_generate_ctx : t -> Ctx.t -> Problem.t -> (Driver.t, Driver.error) result
(** Cached {!Driver.run}.  A hit may return a plan built for a {e nearby}
    representative size: the kernel text is identical in structure and
    valid for any extents; only the tile-selection inputs differed.
    Errors are returned, never cached: a later call with the same key
    retries the search.  Callers latched onto another domain's in-flight
    generation count as hits.  (This is the only lookup entry point — the
    historical optional-argument wrapper is gone; build a {!Ctx.t}.) *)

val install : t -> string -> Driver.t -> unit
(** Pre-populate an entry under an externally computed {!key} (the
    serving layer's warm-store load).  First insert wins; neither the hit
    nor the miss counter moves. *)

val entries : t -> (string * Driver.t) list
(** Every cached entry, sorted by key — deterministic, for flushing to a
    {!Tc_serve.Planstore}.  In-flight generations are not included. *)

val mem : t -> string -> bool
(** True iff a {e completed} entry is cached under this key. *)

type stats = { entries : int; hits : int; misses : int }

val stats : t -> stats
(** [misses] counts generations actually started (single-flight waiters
    count as [hits]). *)

val clear : t -> unit
