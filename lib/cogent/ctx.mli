(** The front-door configuration record of the generator.

    Every entry point used to repeat the same optional arguments
    ([?arch ?precision ?measure ...]); a [Ctx.t] gathers them into one
    value that a calling runtime (the CLI, the {!Tc_serve} engine, a
    library embedder) builds once and threads everywhere:
    {!Driver.run}, {!Cache.find_or_generate_ctx}, {!Variants.generate_ctx},
    [Ttgt.plan_ctx].  The old optional-arg signatures remain as thin
    deprecated wrappers over a context built per call. *)

open Tc_gpu

type measure = Plan.t -> float
(** Empirical throughput of a candidate plan (higher is better) — in this
    repository the kernel simulator, on real hardware a timed run. *)

type t = {
  arch : Arch.t;  (** target device (default V100) *)
  precision : Precision.t;  (** default FP64 *)
  schema : Schema.t option;
      (** kernel schema: [Some s] forces [s] (infeasible combinations make
          {!Plan.make} raise); [None] (the default) lets the driver race
          every feasible schema of each refined candidate under [measure],
          falling back to classic when there is no measure *)
  refine : int;
      (** how many top model-ranked candidates the driver benchmarks with
          [measure] (default 8; 1 = pure model-driven selection) *)
  measure : measure option;
      (** when [None], the model ranking alone decides *)
  jobs : int option;
      (** worker-domain count for the {!Tc_par.Pool} fan-outs; [None]
          leaves the process default ([COGENT_JOBS]) untouched *)
  budget : int option;
      (** search budget: at most this many surviving configurations are
          cost-ranked per generation.  [None] = unlimited.  When the
          budget truncates the space the result is flagged
          {!Driver.t.degraded} and the selection degrades toward the
          heuristic top-of-enumeration plan (budget [0] is clamped to 1:
          the first surviving configuration, no real ranking). *)
}

val default : t
(** V100, FP64, refine 8, no measure, process-default jobs, unlimited
    budget — exactly the historical defaults of [Driver.generate]. *)

val make :
  ?arch:Arch.t -> ?precision:Precision.t -> ?schema:Schema.t -> ?refine:int
  -> ?measure:measure -> ?jobs:int -> ?budget:int -> unit -> t
(** {!default} with the given fields replaced. *)

val with_arch : Arch.t -> t -> t
val with_precision : Precision.t -> t -> t
val with_schema : Schema.t -> t -> t
val with_measure : measure -> t -> t
val with_refine : int -> t -> t
val with_jobs : int -> t -> t
val with_budget : int -> t -> t

val install_jobs : t -> unit
(** Apply {!t.jobs} to the process-global pool
    ({!Tc_par.Pool.set_default_jobs}); no-op when [jobs] is [None]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g.
    [V100 fp64 refine=8 measured jobs=default budget=unlimited]. *)
