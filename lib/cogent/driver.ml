open Tc_gpu

let log_src = Logs.Src.create "cogent.driver" ~doc:"COGENT code generation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  plan : Plan.t;
  ranked : (Mapping.t * float) list;
  prune_stats : Prune.stats;
  naive_space : float;
}

type measure = Plan.t -> float

let generate_one ?(arch = Arch.v100) ?(precision = Precision.FP64)
    ?(refine = 8) ?measure problem =
  let open Tc_obs in
  Trace.with_span "driver.generate"
    ~args:
      [
        ("problem", Trace.String (Format.asprintf "%a" Tc_expr.Problem.pp problem));
        ("arch", Trace.String arch.Arch.name);
        ("precision", Trace.String (Precision.to_string precision));
      ]
  @@ fun () ->
  Metrics.incr (Metrics.counter "cogent.driver.generations");
  let configs =
    Trace.with_span "driver.enumerate" (fun () -> Enumerate.enumerate problem)
  in
  let kept, prune_stats = Prune.filter arch precision problem configs in
  Log.debug (fun m ->
      m "%a: enumerated %d, kept %d%s" Tc_expr.Problem.pp problem
        prune_stats.Prune.enumerated prune_stats.Prune.kept
        (if prune_stats.Prune.relaxed then " (relaxed)" else ""));
  match
    Trace.with_span "driver.cost_rank" (fun () ->
        Cost.rank precision problem kept)
  with
  | [] -> Error "no hardware-feasible configuration for this contraction"
  | (top, _) :: _ as ranked ->
      let plan_of mapping = Plan.make ~problem ~mapping ~arch ~precision in
      (* Benchmark the top model-ranked candidates and keep the fastest —
         the paper auto-tunes across the model-selected set (§VI). *)
      let plan =
        match measure with
        | None -> plan_of top
        | Some run ->
            let candidates =
              List.filteri (fun k _ -> k < max 1 refine) ranked
            in
            Trace.with_span "driver.refine"
              ~args:[ ("candidates", Trace.Int (List.length candidates)) ]
            @@ fun () ->
            (* [candidates] starts with [top], so measuring exactly the
               candidate list (no extra seed run) costs [refine]
               simulator calls; the index-ordered reduction with a
               strict [>] keeps the earliest candidate on ties, exactly
               like the sequential fold it replaces. *)
            (match
               Tc_par.Pool.fold_best
                 ~better:(fun (_, g) (_, bg) -> g > bg)
                 (fun (m, _) ->
                   let p = plan_of m in
                   (p, run p))
                 candidates
             with
            | Some (best, _) -> best
            | None -> plan_of top)
      in
      Log.info (fun m ->
          m "selected %a (cost %.3e)" Mapping.pp plan.Plan.mapping
            plan.Plan.cost);
      Trace.add_args
        [
          ("kept", Trace.Int prune_stats.Prune.kept);
          ("selected_cost", Trace.Float plan.Plan.cost);
        ];
      Ok
        {
          plan;
          ranked;
          prune_stats;
          naive_space = Enumerate.naive_space_size problem;
        }

let generate ?arch ?precision ?refine ?measure ?(auto_split = false) ?trace
    problem =
  let body () =
    let base = generate_one ?arch ?precision ?refine ?measure problem in
    if not auto_split then base
    else
      match (Tc_expr.Split.auto problem, measure, base) with
      | (split_problem, _ :: _), Some run, Ok base_t -> (
          match
            generate_one ?arch ?precision ?refine ~measure:run split_problem
          with
          | Error _ -> base
          | Ok split_t ->
              if run split_t.plan > run base_t.plan then Ok split_t else base)
      | _ -> base
  in
  match trace with
  | None -> body ()
  | Some t -> Tc_obs.Trace.with_installed t body

let generate_exn ?arch ?precision ?refine ?measure ?auto_split ?trace problem =
  match
    generate ?arch ?precision ?refine ?measure ?auto_split ?trace problem
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Driver.generate: " ^ e)

let best_plan ?arch ?precision ?refine ?measure ?auto_split ?trace problem =
  (generate_exn ?arch ?precision ?refine ?measure ?auto_split ?trace problem)
    .plan

let cuda_source t = Codegen.emit t.plan

let top_plans ?(n = 5) t =
  List.filteri (fun k _ -> k < n) t.ranked
  |> List.map (fun (mapping, _) ->
         Plan.make ~problem:t.plan.Plan.problem ~mapping ~arch:t.plan.Plan.arch
           ~precision:t.plan.Plan.precision)
