open Tc_gpu

let log_src = Logs.Src.create "cogent.driver" ~doc:"COGENT code generation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  plan : Plan.t;
  ranked : (Mapping.t * float) list;
  prune_stats : Prune.stats;
  naive_space : float;
  degraded : bool;
  bound_aborted : int;
}

type measure = Ctx.measure

type error =
  | No_viable_mapping of Prune.stats
  | Bad_problem of string
  | Infeasible_schema of Schema.t * string

let pp_error ppf = function
  | No_viable_mapping s ->
      Format.fprintf ppf
        "no hardware-feasible configuration for this contraction (enumerated \
         %d, all rejected)"
        s.Prune.enumerated
  | Bad_problem m -> Format.pp_print_string ppf m
  | Infeasible_schema (_, m) -> Format.pp_print_string ppf m

let error_to_string e = Format.asprintf "%a" pp_error e

(* Planner phase times, named with "wall" so the CI replay gate's
   deterministic subset excludes them (they vary run to run even at a
   fixed job count). *)
let timed_phase name f =
  let t0 = Sys.time () in
  let r = f () in
  Tc_obs.Metrics.observe
    (Tc_obs.Metrics.histogram ("cogent.driver.phase_wall_seconds." ^ name))
    (Float.max 0.0 (Sys.time () -. t0));
  r

let generate_one (ctx : Ctx.t) ~topk problem =
  let arch = ctx.Ctx.arch and precision = ctx.Ctx.precision in
  let open Tc_obs in
  Trace.with_span "driver.generate"
    ~args:
      [
        ("problem", Trace.String (Format.asprintf "%a" Tc_expr.Problem.pp problem));
        ("arch", Trace.String arch.Arch.name);
        ("precision", Trace.String (Precision.to_string precision));
      ]
  @@ fun () ->
  Metrics.incr (Metrics.counter "cogent.driver.generations");
  (* One streamed pass over the candidate space: enumerate → prune →
     bound-aborting cost evaluation, fused (see {!Pipeline}).  The search
     budget keeps the serving layer's worst case bounded: rank only the
     first [budget] survivors (enumeration order), degrading — at budget
     0/1 — to the heuristic top-of-enumeration plan. *)
  let outcome =
    Trace.with_span "driver.pipeline" (fun () ->
        let o =
          timed_phase "pipeline" (fun () ->
              Pipeline.search ?budget:ctx.Ctx.budget
                ~topk:(max (max 1 ctx.Ctx.refine) (max 1 topk))
                arch precision problem)
        in
        Trace.add_args
          [
            ("enumerated", Trace.Int o.Pipeline.stats.Prune.enumerated);
            ("kept", Trace.Int o.Pipeline.stats.Prune.kept);
            ("bound_aborted", Trace.Int o.Pipeline.bound_aborted);
            ("relaxed", Trace.Bool o.Pipeline.stats.Prune.relaxed);
          ];
        o)
  in
  let prune_stats = outcome.Pipeline.stats in
  let degraded = outcome.Pipeline.degraded in
  (* The pipeline itself emits no metrics (its chunk scans run on pool
     workers); the per-search counters land here, post-merge, on the
     calling domain — same names the materialized phases used. *)
  Prune.emit_stats_metrics prune_stats;
  if degraded then
    Metrics.incr (Metrics.counter "cogent.driver.degraded_searches");
  Log.debug (fun m ->
      m "%a: enumerated %d, kept %d%s%s" Tc_expr.Problem.pp problem
        prune_stats.Prune.enumerated prune_stats.Prune.kept
        (if prune_stats.Prune.relaxed then " (relaxed)" else "")
        (if degraded then " (budget-truncated)" else ""));
  match outcome.Pipeline.ranked with
  | [] -> Error (No_viable_mapping prune_stats)
  | (top, _) :: _ as ranked ->
      let plan_of ?schema mapping =
        let p = Plan.make ~problem ~mapping ~arch ~precision in
        match schema with None -> p | Some s -> Plan.with_schema s p
      in
      let forced = ctx.Ctx.schema in
      (* Kernel schemas a candidate is raced under: the forced one (when
         feasible for this mapping), or every feasible schema —
         Classic-first, so the index-ordered reduction below keeps the
         classic kernel on ties and on devices without async copies the
         race degenerates to the historical classic-only refinement. *)
      let schemas_of m =
        match forced with
        | Some s ->
            if Plan.schema_feasible ~arch ~precision ~mapping:m s then [ s ]
            else []
        | None -> Plan.feasible_schemas ~arch ~precision m
      in
      (* A forced schema that no ranked mapping admits is a typed error —
         never an exception — so the CLI can print why and exit: e.g.
         [--schema mma] with an fp64 problem, or double-buffered slabs
         that overflow SMEM on every candidate. *)
      let model_pick () =
        match forced with
        | None -> Ok (plan_of top)
        | Some s -> (
            match
              List.find_opt
                (fun (m, _) -> Plan.schema_feasible ~arch ~precision ~mapping:m s)
                ranked
            with
            | Some (m, _) -> Ok (plan_of ~schema:s m)
            | None ->
                Error
                  (Infeasible_schema
                     ( s,
                       Printf.sprintf
                         "kernel schema %s is not feasible for this problem \
                          on %s at %s (%s)"
                         (Schema.to_string s) arch.Arch.name
                         (Precision.to_string precision)
                         (if not (Schema.admits_precision s precision) then
                            "MMA fragments require fp16 or tf32"
                          else if not arch.Arch.async_copy then
                            "device has no async copies"
                          else
                            "no ranked mapping fits the doubled SMEM slabs \
                             or fragment shape") )))
      in
      (* Benchmark the top model-ranked candidates and keep the fastest —
         the paper auto-tunes across the model-selected set (§VI). *)
      let selected =
        match ctx.Ctx.measure with
        | None -> model_pick ()
        | Some run ->
            let candidates =
              List.filteri (fun k _ -> k < max 1 ctx.Ctx.refine) ranked
              |> List.concat_map (fun (m, _) ->
                     List.map (fun s -> (m, s)) (schemas_of m))
            in
            Trace.with_span "driver.refine"
              ~args:[ ("candidates", Trace.Int (List.length candidates)) ]
            @@ fun () ->
            timed_phase "refine" @@ fun () ->
            (* [candidates] starts with [top] under its first schema, so
               measuring exactly the candidate list (no extra seed run)
               costs [refine * schemas] simulator calls; the index-ordered
               reduction with a strict [>] keeps the earliest candidate on
               ties, exactly like the sequential fold it replaces. *)
            (match
               Tc_par.Pool.fold_best
                 ~better:(fun (_, g) (_, bg) -> g > bg)
                 (fun (m, s) ->
                   let p = plan_of ~schema:s m in
                   (p, run p))
                 candidates
             with
            | Some (best, _) -> Ok best
            | None -> model_pick ())
      in
      match selected with
      | Error e -> Error e
      | Ok plan ->
      Log.info (fun m ->
          m "selected %a [%s schema] (cost %.3e)" Mapping.pp plan.Plan.mapping
            (Schema.to_string plan.Plan.schema)
            plan.Plan.cost);
      Trace.add_args
        [
          ("kept", Trace.Int prune_stats.Prune.kept);
          ("selected_cost", Trace.Float plan.Plan.cost);
          ("degraded", Trace.Bool degraded);
          ("bound_aborted", Trace.Int outcome.Pipeline.bound_aborted);
        ];
      (* The accuracy observatory's driver-side hook: every selected
         plan's model cost lands in a histogram, so a ledger-less run
         still exposes the predicted-cost distribution.  Bucket counts
         are deterministic; the _sum series is a float reduction in pool
         order, so the instrument stays out of the CI replay gate's
         deterministic subset (which greps cogent_serve_/cogent_audit_
         only). *)
      Metrics.observe
        (Metrics.histogram "cogent.driver.selected_cost")
        plan.Plan.cost;
      Ok
        {
          plan;
          ranked;
          prune_stats;
          naive_space = Enumerate.naive_space_size problem;
          degraded;
          bound_aborted = outcome.Pipeline.bound_aborted;
        }

let default_topk = 8

let run ctx ?(auto_split = false) ?(topk = default_topk) ?trace problem =
  let body () =
    let base = generate_one ctx ~topk problem in
    if not auto_split then base
    else
      match (Tc_expr.Split.auto problem, ctx.Ctx.measure, base) with
      | (split_problem, _ :: _), Some run, Ok base_t -> (
          match generate_one ctx ~topk split_problem with
          | Error _ -> base
          | Ok split_t ->
              if run split_t.plan > run base_t.plan then Ok split_t else base)
      | _ -> base
  in
  match trace with
  | None -> body ()
  | Some t -> Tc_obs.Trace.with_installed t body

let run_exn ctx ?auto_split ?topk ?trace problem =
  match run ctx ?auto_split ?topk ?trace problem with
  | Ok t -> t
  | Error e -> invalid_arg ("Driver.generate: " ^ error_to_string e)

let generate ?arch ?precision ?refine ?measure ?auto_split ?trace problem =
  run (Ctx.make ?arch ?precision ?refine ?measure ()) ?auto_split ?trace
    problem

let generate_exn ?arch ?precision ?refine ?measure ?auto_split ?trace problem =
  run_exn (Ctx.make ?arch ?precision ?refine ?measure ()) ?auto_split ?trace
    problem

let best_plan ?arch ?precision ?refine ?measure ?auto_split ?trace problem =
  (generate_exn ?arch ?precision ?refine ?measure ?auto_split ?trace problem)
    .plan

let cuda_source t = Codegen.emit t.plan

let top_plans ?(n = 5) t =
  List.filteri (fun k _ -> k < n) t.ranked
  |> List.map (fun (mapping, _) ->
         Plan.make ~problem:t.plan.Plan.problem ~mapping ~arch:t.plan.Plan.arch
           ~precision:t.plan.Plan.precision)
