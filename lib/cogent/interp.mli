(** Host-side execution of a kernel plan.

    Interprets exactly the schedule the CUDA generator emits (Algorithm 1):
    the grid is decomposed per external index, each block stages
    hyper-rectangular slabs of both inputs into simulated shared memory once
    per step (guarded, zero-padded at boundaries), each (thread, register
    coordinate) accumulates outer-product contributions across the serial
    TB_k dimension, and finalized register tiles are stored back with bounds
    guards.

    Because the loop structure, decompositions and address arithmetic mirror
    the generated CUDA one-for-one, agreement with {!Tc_tensor.Contract_ref}
    validates the code generation schema itself. *)

open Tc_tensor

type counters = {
  mutable tx_lhs : float;
      (** DRAM transactions loading the canonical lhs (all blocks, all
          steps), counted with the {!Txcount} convention *)
  mutable tx_rhs : float;
  mutable tx_out : float;  (** DRAM transactions storing the output *)
  mutable smem_bytes : float;
      (** bytes staged into shared memory (padded slabs, every step) *)
  mutable fma_padded : float;
      (** FMA slots issued by the padded loop structure *)
  mutable fma_useful : float;
      (** FMAs contributing to an in-range output at an in-range k *)
  mutable store_tx_block_max : float;
      (** largest per-block store traffic, in transactions *)
  mutable blocks : int;
  mutable steps : int;
}
(** Ground-truth hardware counters for one execution of the emitted
    schedule — the measured side of what {!Cost.estimate} and
    {!Tc_sim.Simkernel.transactions_exact} predict.  Fields accumulate, so
    one record can sink several executions. *)

val create_counters : unit -> counters

val execute :
  ?counters:counters -> Plan.t -> lhs:Dense.t -> rhs:Dense.t -> Dense.t
(** [execute plan ~lhs ~rhs] contracts the tensors given {e as written} in
    the original expression (any lhs/rhs canonicalization swap is resolved
    internally) and returns the output tensor in its declared layout.
    When [counters] is given, the exact memory-access sequence of the
    emitted schedule is replayed alongside the data pass and tallied into
    it (the replay is value-independent, so it runs once per execution).
    @raise Invalid_argument if a tensor's shape does not match the plan's
    problem. *)

val measure : Plan.t -> counters
(** [measure plan] is the counter-only replay: the same per-(block, step)
    schedule walk [execute ~counters] performs, without allocating or
    touching tensor data — usable at full TCCG problem sizes where a data
    execution would be prohibitive. *)
