open Tc_gpu
open Tc_expr

type variant = { name : string; sizes : Sizes.t; plan : Plan.t }
type t = { ast : Ast.t; variants : variant list }

let ( let* ) = Result.bind

let generate_ctx ctx ast size_list =
  if size_list = [] then
    Error (Driver.Bad_problem "Variants.generate: no representative sizes")
  else begin
    let rec plan_all k acc = function
      | [] -> Ok (List.rev acc)
      | sizes :: rest ->
          let* problem =
            Result.map_error
              (fun m -> Driver.Bad_problem m)
              (Problem.make ast sizes)
          in
          let* r = Driver.run ctx problem in
          let name =
            Printf.sprintf "%s_v%d" (Codegen.kernel_name r.Driver.plan) k
          in
          plan_all (k + 1)
            ({ name; sizes; plan = r.Driver.plan } :: acc)
            rest
    in
    let* variants = plan_all 0 [] size_list in
    Ok { ast; variants }
  end

let generate ?arch ?precision ?measure ast size_list =
  Result.map_error Driver.error_to_string
    (generate_ctx (Ctx.make ?arch ?precision ?measure ()) ast size_list)

let generate_exn ?arch ?precision ?measure ast size_list =
  match generate ?arch ?precision ?measure ast size_list with
  | Ok t -> t
  | Error e -> invalid_arg ("Variants.generate: " ^ e)

let distance a b indices =
  List.fold_left
    (fun acc i ->
      acc
      +. Float.abs
           (log
              (float_of_int (Sizes.extent a i)
              /. float_of_int (Sizes.extent b i))))
    0.0 indices

let indices_of t =
  Classify.all_indices (Problem.info (List.hd t.variants).plan.Plan.problem)

let select t actual =
  let indices = indices_of t in
  if not (Sizes.covers actual indices) then
    invalid_arg "Variants.select: size map does not cover the contraction";
  List.fold_left
    (fun best v ->
      if distance v.sizes actual indices < distance best.sizes actual indices
      then v
      else best)
    (List.hd t.variants) t.variants

let emit t =
  let buf = Buffer.create 8192 in
  let bpf = Printf.bprintf in
  let head = List.hd t.variants in
  let indices = indices_of t in
  let scalar = Precision.cuda_type head.plan.Plan.precision in
  let base = Codegen.kernel_name head.plan in
  bpf buf "// Multi-version kernels for %s (one per representative size, \u{00a7}IV-B)\n"
    (Ast.tccg_string t.ast);
  List.iter
    (fun v ->
      bpf buf "//   %s tuned for %s\n" v.name
        (Format.asprintf "%a" Sizes.pp v.sizes))
    t.variants;
  bpf buf "#include <cmath>\n\n";
  List.iter
    (fun v ->
      Buffer.add_string buf (Codegen.emit_kernel ~name:v.name v.plan);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Codegen.emit_launcher ~name:v.name v.plan);
      Buffer.add_char buf '\n')
    t.variants;
  (* runtime dispatcher: nearest representative in log-extent space *)
  bpf buf "extern \"C\" void %s_dispatch(\n" base;
  bpf buf "    %s* d_C, const %s* d_A, const %s* d_B" scalar scalar scalar;
  List.iter (fun i -> bpf buf ",\n    int N_%c" i) indices;
  bpf buf ",\n    cudaStream_t stream)\n{\n";
  bpf buf "  double best = 1e300;\n  int which = 0;\n  double d;\n";
  List.iteri
    (fun k v ->
      let terms =
        String.concat " + "
          (List.map
             (fun i ->
               Printf.sprintf "fabs(log((double)N_%c / %d.0))" i
                 (Sizes.extent v.sizes i))
             indices)
      in
      bpf buf "  d = %s;\n" terms;
      bpf buf "  if (d < best) { best = d; which = %d; }\n" k)
    t.variants;
  bpf buf "  switch (which) {\n";
  List.iteri
    (fun k v ->
      bpf buf "  case %d: %s_launch(d_C, d_A, d_B%s, stream); break;\n" k
        v.name
        (String.concat ""
           (List.map (fun i -> Printf.sprintf ", N_%c" i) indices)))
    t.variants;
  bpf buf "  default: break;\n  }\n}\n";
  Buffer.contents buf
