(** Hardware and performance constraints (§IV-A1, §IV-A2).

    Hardware constraints reject configurations that cannot run at all
    (shared-memory or register overflow, too many threads).  Performance
    constraints reject configurations expected to perform poorly
    (uncoalesced access to a tensor's FVI, too few thread blocks, low
    occupancy).  On the evaluated benchmarks about 97% of enumerated
    configurations are pruned (§IV-A3). *)

open Tc_gpu
open Tc_expr

type reason =
  | Too_many_threads
  | Too_few_threads  (** blocks smaller than one warp waste lanes *)
  | Smem_overflow
  | Regs_overflow
  | Low_occupancy  (** below {!min_occupancy} *)
  | Too_few_blocks  (** fewer than [min_blocks_factor * SMs] blocks *)
  | Uncoalesced_out  (** output FVI tile too small for coalesced stores *)
  | Uncoalesced_lhs  (** lhs FVI tile too small for coalesced loads *)
  | Uncoalesced_rhs

val pp_reason : Format.formatter -> reason -> unit
val reason_to_string : reason -> string

val reason_slug : reason -> string
(** Machine-friendly name ([smem_overflow], ...) used in metric names and
    JSON exports. *)

val all_reasons : reason list
(** Every rule, in declaration order — drives itemized audit tables. *)

type klass =
  | Hardware
  | Perf_occupancy
  | Perf_blocks
  | Perf_coalescing_out
  | Perf_coalescing_in
      (** Constraint classes of §IV-A1/§IV-A2: hardware feasibility versus
          the three families of performance rules.  Relaxation (below)
          drops performance classes, never [Hardware]. *)

val klass_of_reason : reason -> klass
val klass_to_string : klass -> string

val min_occupancy : float
val min_blocks_factor : int
val min_fvi_tile : int

val regs_per_thread : Precision.t -> Mapping.t -> int
(** Register footprint estimate: accumulators + staging vectors (doubled in
    FP64, registers being 32-bit) plus a fixed allowance for index
    arithmetic. *)

val smem_bytes : Precision.t -> Mapping.t -> int

val occupancy : Arch.t -> Precision.t -> Mapping.t -> Occupancy.result

val check :
  Arch.t -> Precision.t -> Problem.t -> Mapping.t -> (unit, reason) result
(** First violated constraint, hardware constraints checked first. *)

type stats = {
  enumerated : int;
  kept : int;
  pruned : (reason * int) list;  (** per-reason counts, descending *)
  hardware_rejects : int;  (** rejections by [Hardware]-class rules *)
  performance_rejects : int;  (** rejections by any performance rule *)
  relaxed : bool;
      (** true when performance constraints had to be relaxed because no
          configuration satisfied them (tiny problems) — a documented
          deviation to keep every contraction compilable *)
  relax_attempts : int;
      (** relaxation rounds tried before one yielded survivors (0 when the
          strict rule set already kept something) *)
}

val pruned_count : stats -> reason -> int
(** Count for one rule (0 when it rejected nothing). *)

val pp_stats : Format.formatter -> stats -> unit

val filter :
  ?performance:bool -> Arch.t -> Precision.t -> Problem.t -> Mapping.t list
  -> Mapping.t list * stats
(** Keeps configurations passing {!check}.  If none pass, performance
    constraints are relaxed one class at a time (occupancy, then block
    count, then coalescing); hardware constraints are never relaxed.
    [performance:false] applies hardware constraints only — an ablation
    hook for quantifying what §IV-A2's rules buy. *)

(** {2 Streaming interface}

    The fused planner pipeline ({!Pipeline}) checks candidates one at a
    time without materializing the enumeration.  A {!checker} hoists
    everything per-problem out of the hot loop (FVI slots, thresholds,
    class membership); {!check_stream} then needs only the per-candidate
    tile lookup and a lazy block count from the caller's shared scratch
    state. *)

type checker
(** Per-problem constraint context for one class set. *)

val checker : ?performance:bool -> Arch.t -> Precision.t -> Problem.t -> checker
(** Checker for the primary pass: all classes, or [Hardware] only when
    [performance:false] (the ablation hook, as in {!filter}). *)

val checker_of_classes :
  klass list -> Arch.t -> Precision.t -> Problem.t -> checker
(** Checker for an explicit class set (the relaxation passes). *)

val check_stream :
  checker ->
  threads:int ->
  smem_elems:int ->
  reg_elems:int ->
  tile:(Tc_tensor.Index.t -> int) ->
  blocks:(unit -> int) ->
  reason option
(** First violated constraint of the checker's classes, in the exact rule
    order of {!check} — [None] means the candidate survives.  The caller
    supplies the candidate's hoisted size products
    ([Mapping.threads_per_block] / [smem_elems] / [reg_elems_per_thread] —
    the streaming pipeline computes them once per candidate in
    {!Cost.Eval}), a [tile] lookup behaving like [Mapping.tile_of], and a
    [blocks] thunk behaving like [Mapping.num_blocks] (called at most
    once, only if the block rule is reached).  Occupancy is computed
    lazily at most once. *)

val relax_attempts_classes : klass list list
(** The relaxation ladder {!filter} walks when the strict pass keeps
    nothing, strongest first and [\[Hardware\]] last — exported so the
    streaming pipeline degrades identically. *)

val reason_index : reason -> int
(** Position of a reason in {!all_reasons} — the tally-array slot used by
    {!stats_of_tally}. *)

val num_reasons : int

val stats_of_tally :
  enumerated:int ->
  kept:int ->
  relaxed:bool ->
  relax_attempts:int ->
  int array ->
  stats
(** Build {!stats} from a reject tally indexed by {!reason_index}
    (length {!num_reasons}).  The [pruned] list is rendered canonically:
    count-descending, declaration order on ties — chunk-wise tallies
    summed in any grouping produce the identical value a sequential pass
    would. *)

val emit_stats_metrics : stats -> unit
(** Emit the [cogent.prune.*] counters for one search — called once per
    search by whichever path produced the stats (legacy {!filter} or the
    streaming pipeline), outside any parallel section. *)
