open Tc_gpu
open Tc_expr

(* [In_flight] marks a key whose generation is running on some domain;
   racing callers wait on [cond] instead of duplicating the search. *)
type slot = Ready of Driver.t | In_flight

type t = {
  lock : Mutex.t;  (* guards [table], [hits] and [misses] *)
  cond : Condition.t;  (* signalled when an in-flight slot resolves *)
  table : (string, slot) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 32;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  let hi = go 1 in
  let lo = max 1 (hi / 2) in
  if n - lo <= hi - n then lo else hi

let size_class problem =
  let info = Problem.info problem in
  String.concat ","
    (List.map
       (fun i ->
         Printf.sprintf "%c:%d" i (round_pow2 (Problem.extent problem i)))
       (Classify.all_indices info))

let key (ctx : Ctx.t) problem =
  Printf.sprintf "%s|%s|%s|%s%s"
    (Ast.tccg_string (Problem.info problem).Classify.original)
    ctx.Ctx.arch.Arch.name
    (Precision.to_string ctx.Ctx.precision)
    (size_class problem)
    (* A forced kernel schema changes what the search returns, so it is
       part of the identity; auto-raced contexts keep the historical key
       (and stay compatible with stores written before schemas existed). *)
    (match ctx.Ctx.schema with
    | None -> ""
    | Some s -> "|" ^ Schema.to_string s)

let hit_counter () = Tc_obs.Metrics.counter "cogent.cache.hits"
let miss_counter () = Tc_obs.Metrics.counter "cogent.cache.misses"
let wait_counter () = Tc_obs.Metrics.counter "cogent.cache.inflight_waits"

(* Wall-clock by design ("wall" in the name keeps it out of the CI
   replay gate's deterministic subset): how long latched callers block
   on another domain's in-flight generation. *)
let wait_hist () = Tc_obs.Metrics.histogram "cogent.cache.wait_wall_seconds"

let record_hit t k =
  locked t (fun () -> t.hits <- t.hits + 1);
  Tc_obs.Metrics.incr (hit_counter ());
  Tc_obs.Trace.instant "cache.hit" ~args:[ ("key", Tc_obs.Trace.String k) ]

let find_or_generate_ctx t ctx problem =
  let k = key ctx problem in
  (* Claim the key under the lock: either we own the generation (we
     installed [In_flight]), someone else's result is ready, or we wait
     for the in-flight owner and re-examine. *)
  let waited = ref false in
  let rec claim () =
    match Hashtbl.find_opt t.table k with
    | Some (Ready r) -> `Hit r
    | Some In_flight ->
        waited := true;
        Condition.wait t.cond t.lock;
        claim ()
    | None ->
        Hashtbl.add t.table k In_flight;
        t.misses <- t.misses + 1;
        `Generate
  in
  let t0 = Sys.time () in
  let claimed = locked t claim in
  if !waited then begin
    Tc_obs.Metrics.incr (wait_counter ());
    Tc_obs.Metrics.observe (wait_hist ()) (Float.max 0.0 (Sys.time () -. t0));
    Tc_obs.Trace.instant "cache.wait"
      ~args:[ ("key", Tc_obs.Trace.String k) ]
  end;
  match claimed with
  | `Hit r ->
      record_hit t k;
      Ok r
  | `Generate -> (
      Tc_obs.Metrics.incr (miss_counter ());
      Tc_obs.Trace.instant "cache.miss"
        ~args:[ ("key", Tc_obs.Trace.String k) ];
      (* Generation runs outside the lock (it is the expensive part and
         may itself fan out on the pool); the [In_flight] slot keeps other
         domains from duplicating it.  On any failure the slot is removed
         so a later call can retry — errors are never cached. *)
      let resolve slot =
        locked t (fun () ->
            (match slot with
            | Some r -> Hashtbl.replace t.table k (Ready r)
            | None -> Hashtbl.remove t.table k);
            Condition.broadcast t.cond)
      in
      match
        Tc_obs.Trace.with_span "cache.generate"
          ~args:[ ("key", Tc_obs.Trace.String k) ]
          (fun () -> Driver.run ctx problem)
      with
      | Ok r ->
          resolve (Some r);
          Ok r
      | Error e ->
          resolve None;
          Error e
      | exception e ->
          resolve None;
          raise e)

let install t k r =
  locked t (fun () ->
      if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k (Ready r))

let entries t =
  locked t (fun () ->
      Hashtbl.fold
        (fun k slot acc ->
          match slot with Ready r -> (k, r) :: acc | In_flight -> acc)
        t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let mem t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some (Ready _) -> true
      | Some In_flight | None -> false)

type stats = { entries : int; hits : int; misses : int }

let stats t =
  locked t (fun () ->
      let ready =
        Hashtbl.fold
          (fun _ slot n -> match slot with Ready _ -> n + 1 | In_flight -> n)
          t.table 0
      in
      { entries = ready; hits = t.hits; misses = t.misses })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
