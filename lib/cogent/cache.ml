open Tc_gpu
open Tc_expr

type t = {
  lock : Mutex.t;  (* guards [table], [hits] and [misses] *)
  table : (string, Driver.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { lock = Mutex.create (); table = Hashtbl.create 32; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  let hi = go 1 in
  let lo = max 1 (hi / 2) in
  if n - lo <= hi - n then lo else hi

let size_class problem =
  let info = Problem.info problem in
  String.concat ","
    (List.map
       (fun i ->
         Printf.sprintf "%c:%d" i (round_pow2 (Problem.extent problem i)))
       (Classify.all_indices info))

let key ?(arch = Arch.v100) ?(precision = Precision.FP64) problem =
  Printf.sprintf "%s|%s|%s|%s"
    (Ast.tccg_string (Problem.info problem).Classify.original)
    arch.Arch.name
    (Precision.to_string precision)
    (size_class problem)

let hit_counter () = Tc_obs.Metrics.counter "cogent.cache.hits"
let miss_counter () = Tc_obs.Metrics.counter "cogent.cache.misses"

let find_or_generate t ?arch ?precision ?measure problem =
  let k = key ?arch ?precision problem in
  match locked t (fun () -> Hashtbl.find_opt t.table k) with
  | Some r ->
      locked t (fun () -> t.hits <- t.hits + 1);
      Tc_obs.Metrics.incr (hit_counter ());
      Tc_obs.Trace.instant "cache.hit"
        ~args:[ ("key", Tc_obs.Trace.String k) ];
      r
  | None ->
      locked t (fun () -> t.misses <- t.misses + 1);
      Tc_obs.Metrics.incr (miss_counter ());
      Tc_obs.Trace.instant "cache.miss"
        ~args:[ ("key", Tc_obs.Trace.String k) ];
      (* Generation runs outside the lock (it is the expensive part and
         may itself fan out on the pool).  Two domains racing on the same
         key both generate the same deterministic result; the first
         insert wins and is what every later lookup sees. *)
      let r =
        Tc_obs.Trace.with_span "cache.generate"
          ~args:[ ("key", Tc_obs.Trace.String k) ]
          (fun () -> Driver.generate_exn ?arch ?precision ?measure problem)
      in
      locked t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some winner -> winner
          | None ->
              Hashtbl.add t.table k r;
              r)

type stats = { entries : int; hits : int; misses : int }

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.table; hits = t.hits; misses = t.misses })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
