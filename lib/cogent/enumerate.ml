open Tc_tensor
open Tc_expr

let targets_tb = [ 4; 8; 16 ]
let targets_reg = [ 1; 2; 4; 6; 8 ]

(* Greedy packing of (index, extent) candidates onto one dimension until the
   accumulated product reaches [target]; the index that crosses the target
   gets a clamped tile (Algorithm 2, lines 10-45).  [first] is the forced
   head (the output FVI for TB_x, the rhs FVI for TB_y when external). *)
type packed = { bindings : Mapping.binding list; reached : bool }

let pack ~target ~first ~candidates =
  let add (v, prev, acc, reached) (index, extent) =
    if reached then (v, prev, acc, reached)
    else
      let v = v * extent in
      if v >= target then
        let tile = if v > target then max 1 (target / prev) else extent in
        (v, prev, { Mapping.index; tile } :: acc, true)
      else (v, prev * extent, { Mapping.index; tile = extent } :: acc, false)
  in
  let init = (1, 1, [], false) in
  let state = match first with None -> init | Some f -> add init f in
  let _, _, acc, reached = List.fold_left add state candidates in
  { bindings = List.rev acc; reached }

(* Rotation s_idx of Algorithm 2 line 3: try candidates from position s_idx
   to the end, then from 0 to s_idx - 1. *)
let rotations l =
  match l with
  | [] | [ _ ] -> [ l ]
  | _ ->
      let n = List.length l in
      List.init n (fun s ->
          let tail = List.filteri (fun k _ -> k >= s) l in
          let head = List.filteri (fun k _ -> k < s) l in
          tail @ head)

let pack_greedy ~target ~first ~candidates =
  let p = pack ~target ~first ~candidates in
  (p.bindings, p.reached)

let dedup_packings ps =
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key =
        String.concat ";"
          (List.map
             (fun b -> Printf.sprintf "%c%d" b.Mapping.index b.Mapping.tile)
             p.bindings)
      in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.add tbl key ();
        true
      end)
    ps

(* Partial configuration for one side: TB bindings plus REG bindings. *)
type side = { tb : Mapping.binding list; reg : Mapping.binding list }

let with_extents problem l =
  List.map (fun i -> (i, Problem.extent problem i)) l

let enumerate_tb problem ~first ~candidates =
  let candidates = with_extents problem candidates in
  let first = Option.map (fun i -> (i, Problem.extent problem i)) first in
  let all =
    List.concat_map
      (fun target ->
        List.map (fun order -> pack ~target ~first ~candidates:order)
          (rotations candidates))
      targets_tb
  in
  (* Packings that exhaust the candidates below the target are kept too:
     on small tensors they are the only complete assignments, and on larger
     ones they add a few small-block candidates for the cost model to
     judge. *)
  dedup_packings all

let enumerate_reg problem ~candidates =
  let candidates = with_extents problem candidates in
  let all =
    List.concat_map
      (fun target ->
        if target = 1 then [ { bindings = []; reached = true } ]
        else
          List.map (fun order -> pack ~target ~first:None ~candidates:order)
            (rotations candidates))
      targets_reg
  in
  dedup_packings all

let enumerate_side problem ~fvi ~externals =
  let first, rest =
    match fvi with
    | Some f when List.exists (Index.equal f) externals ->
        (Some f, List.filter (fun i -> not (Index.equal i f)) externals)
    | _ -> (None, externals)
  in
  let tbs = enumerate_tb problem ~first ~candidates:rest in
  List.concat_map
    (fun tb ->
      let used =
        List.fold_left
          (fun s b -> Idxset.add b.Mapping.index s)
          Idxset.empty tb.bindings
      in
      let remaining =
        List.filter (fun i -> not (Idxset.mem i used)) externals
      in
      List.map
        (fun reg -> { tb = tb.bindings; reg = reg.bindings })
        (enumerate_reg problem ~candidates:remaining))
    tbs

let enumerate_tbk problem ~internals =
  let candidates = with_extents problem internals in
  let packings =
    if internals = [] then [ { bindings = []; reached = true } ]
    else
      dedup_packings
        (List.concat_map
           (fun target ->
             List.map
               (fun order -> pack ~target ~first:None ~candidates:order)
               (rotations candidates))
           targets_tb)
  in
  (* Every internal index must appear in tbk; the ones the packing did not
     reach iterate across steps with tile 1. *)
  List.map
    (fun p ->
      let used =
        List.fold_left
          (fun s b -> Idxset.add b.Mapping.index s)
          Idxset.empty p.bindings
      in
      let leftover = List.filter (fun i -> not (Idxset.mem i used)) internals in
      p.bindings
      @ List.map (fun index -> { Mapping.index; tile = 1 }) leftover)
    packings

let enumerate problem =
  let info = Problem.info problem in
  let x_sides =
    enumerate_side problem ~fvi:(Some info.Classify.out_fvi)
      ~externals:info.Classify.lhs_externals
  in
  let y_fvi =
    if List.exists (Index.equal info.Classify.rhs_fvi) info.Classify.rhs_externals
    then Some info.Classify.rhs_fvi
    else None
  in
  let y_sides =
    enumerate_side problem ~fvi:y_fvi ~externals:info.Classify.rhs_externals
  in
  let tbks = enumerate_tbk problem ~internals:info.Classify.internals in
  let mapped_side side =
    List.fold_left
      (fun s b -> Idxset.add b.Mapping.index s)
      Idxset.empty
      (side.tb @ side.reg)
  in
  let configs =
    List.concat_map
      (fun x ->
        let x_used = mapped_side x in
        List.concat_map
          (fun y ->
            let y_used = mapped_side y in
            let used = Idxset.union x_used y_used in
            let grid =
              List.filter
                (fun i -> not (Idxset.mem i used))
                info.Classify.externals
            in
            List.map
              (fun tbk ->
                {
                  Mapping.tbx = x.tb;
                  regx = x.reg;
                  tby = y.tb;
                  regy = y.reg;
                  tbk;
                  grid;
                })
              tbks)
          y_sides)
      x_sides
  in
  (* Deduplicate full configurations. *)
  let module MSet = Set.Make (struct
    type t = Mapping.t

    let compare = Mapping.compare
  end) in
  MSet.elements (MSet.of_list configs)

let naive_space_size problem =
  let info = Problem.info problem in
  let n_ext = List.length info.Classify.externals in
  let n_int = List.length info.Classify.internals in
  (* §IV's arithmetic for Eq. 1: |mapping| = 4^4 * 2 (four external indices
     with 4 dimension choices, two internal indices) and |tilesize| = 6^5,
     for a total of 3,981,312. *)
  let pow b e = Float.pow (float_of_int b) (float_of_int e) in
  pow 4 n_ext
  *. pow 2 (max 0 (n_int - 1))
  *. pow 6 (max 0 (n_ext + n_int - 1))
