open Tc_tensor
open Tc_expr

(* Mixed-radix decomposition, first radix fastest:
   [decompose 13 [|4;2;2|]] is [|1;1;1|] since 13 = 1 + 4*(1 + 2*1). *)
let decompose_into out lin radices =
  let r = ref lin in
  for k = 0 to Array.length radices - 1 do
    out.(k) <- !r mod radices.(k);
    r := !r / radices.(k)
  done

let decompose lin radices =
  let out = Array.make (Array.length radices) 0 in
  decompose_into out lin radices;
  out

let ceil_div a b = (a + b - 1) / b

type axis = { index : Index.t; tile : int; extent : int; chunks : int }

let axes_of_bindings problem bindings =
  List.map
    (fun b ->
      let extent = Problem.extent problem b.Mapping.index in
      {
        index = b.Mapping.index;
        tile = b.Mapping.tile;
        extent;
        chunks = ceil_div extent b.Mapping.tile;
      })
    bindings

type counters = {
  mutable tx_lhs : float;
  mutable tx_rhs : float;
  mutable tx_out : float;
  mutable smem_bytes : float;
  mutable fma_padded : float;
  mutable fma_useful : float;
  mutable store_tx_block_max : float;
  mutable blocks : int;
  mutable steps : int;
}

let create_counters () =
  {
    tx_lhs = 0.0;
    tx_rhs = 0.0;
    tx_out = 0.0;
    smem_bytes = 0.0;
    fma_padded = 0.0;
    fma_useful = 0.0;
    store_tx_block_max = 0.0;
    blocks = 0;
    steps = 0;
  }

(* Replay the emitted schedule's memory accesses block by block and tally
   hardware counters.  The walk is value-independent (addresses and guards
   only depend on the plan), so [execute] runs it once next to the data
   pass.  Loads follow the cooperative padded sweep of the generated CUDA
   (operand layout order, waves of [threads] lanes, guards masking
   out-of-range lanes); stores are one wave of the whole thread block per
   register coordinate; both are costed with {!Txcount.staged_sweep}. *)
let measure_into (c : counters) (plan : Plan.t) =
  let problem = plan.Plan.problem in
  let mapping = plan.Plan.mapping in
  let prec = plan.Plan.precision in
  let ept = Tc_gpu.Precision.elems_per_transaction prec in
  let elt_bytes = float_of_int (Tc_gpu.Precision.bytes prec) in
  let width = Mapping.threads_per_block mapping in
  let tbx = axes_of_bindings problem mapping.Mapping.tbx in
  let regx = axes_of_bindings problem mapping.Mapping.regx in
  let tby = axes_of_bindings problem mapping.Mapping.tby in
  let regy = axes_of_bindings problem mapping.Mapping.regy in
  let tbk = axes_of_bindings problem mapping.Mapping.tbk in
  let grid_axes =
    List.map
      (fun index ->
        let extent = Problem.extent problem index in
        { index; tile = 1; extent; chunks = extent })
      mapping.Mapping.grid
  in
  let block_axes = tbx @ regx @ tby @ regy @ grid_axes in
  let block_radices =
    Array.of_list (List.map (fun ax -> ax.chunks) block_axes)
  in
  let num_blocks = Array.fold_left ( * ) 1 block_radices in
  let step_radices = Array.of_list (List.map (fun ax -> ax.chunks) tbk) in
  let num_steps = Array.fold_left ( * ) 1 step_radices in
  (* Locate an index's coordinate slot: (true, k) for the k-th block axis,
     (false, k) for the k-th step (tbk) axis. *)
  let locate i =
    let rec find k = function
      | [] -> None
      | ax :: rest ->
          if Index.equal ax.index i then Some k else find (k + 1) rest
    in
    match find 0 block_axes with
    | Some k -> (true, k)
    | None -> (
        match find 0 tbk with
        | Some k -> (false, k)
        | None -> invalid_arg "Interp.measure: foreign index")
  in
  (* Per-tensor load descriptors, operand layout order (FVI first). *)
  let operand_axes shape =
    Shape.indices shape
    |> List.map (fun i ->
           let from_block, slot = locate i in
           let ax =
             if from_block then List.nth block_axes slot else List.nth tbk slot
           in
           (ax.tile, ax.extent, Shape.stride shape i, from_block, slot))
    |> Array.of_list
  in
  let lhs_axes = operand_axes (Problem.lhs_shape problem) in
  let rhs_axes = operand_axes (Problem.rhs_shape problem) in
  let cut_axes axes bcoords scoords =
    Array.map
      (fun (tile, extent, stride, from_block, slot) ->
        let coord = if from_block then bcoords.(slot) else scoords.(slot) in
        { Txcount.tile; cut = min tile (extent - (coord * tile)); stride })
      axes
  in
  (* Store descriptors: threads enumerate tbx (fastest) then tby bindings
     addressing the output layout; regx/regy cuts gate how many waves a
     block issues. *)
  let out_shape = Problem.out_shape problem in
  let slot_of_block_axis ax =
    let rec find k = function
      | [] -> invalid_arg "Interp.measure: store axis"
      | bx :: rest ->
          if Index.equal bx.index ax.index then k else find (k + 1) rest
    in
    find 0 block_axes
  in
  let store_axes =
    List.map
      (fun ax ->
        (ax.tile, ax.extent, Shape.stride out_shape ax.index,
         slot_of_block_axis ax))
      (tbx @ tby)
    |> Array.of_list
  in
  let cut_of bcoords (tile, extent, slot) =
    min tile (extent - (bcoords.(slot) * tile))
  in
  let reg_axes =
    List.map
      (fun ax -> (ax.tile, ax.extent, slot_of_block_axis ax))
      (regx @ regy)
    |> Array.of_list
  in
  let x_axes =
    List.map (fun ax -> (ax.tile, ax.extent, slot_of_block_axis ax))
      (tbx @ regx)
    |> Array.of_list
  and y_axes =
    List.map (fun ax -> (ax.tile, ax.extent, slot_of_block_axis ax))
      (tby @ regy)
    |> Array.of_list
  in
  let cut_prod bcoords axes =
    Array.fold_left (fun a d -> a * cut_of bcoords d) 1 axes
  in
  let smem_step =
    float_of_int (Mapping.smem_elems mapping) *. elt_bytes
  in
  let fma_slots_step =
    float_of_int width
    *. float_of_int (Mapping.size_regx mapping)
    *. float_of_int (Mapping.size_regy mapping)
    *. float_of_int (Mapping.size_tbk mapping)
  in
  let tbk_arr =
    Array.of_list (List.map (fun ax -> (ax.tile, ax.extent)) tbk)
  in
  let bcoords = Array.make (Array.length block_radices) 0 in
  let scoords = Array.make (Array.length step_radices) 0 in
  for block = 0 to num_blocks - 1 do
    decompose_into bcoords block block_radices;
    let xcount = float_of_int (cut_prod bcoords x_axes)
    and ycount = float_of_int (cut_prod bcoords y_axes) in
    for step = 0 to num_steps - 1 do
      decompose_into scoords step step_radices;
      c.tx_lhs <-
        c.tx_lhs
        +. float_of_int
             (Txcount.staged_sweep ~width ~ept
                (cut_axes lhs_axes bcoords scoords));
      c.tx_rhs <-
        c.tx_rhs
        +. float_of_int
             (Txcount.staged_sweep ~width ~ept
                (cut_axes rhs_axes bcoords scoords));
      c.smem_bytes <- c.smem_bytes +. smem_step;
      c.fma_padded <- c.fma_padded +. fma_slots_step;
      let kcount = ref 1 in
      Array.iteri
        (fun k (tile, extent) ->
          kcount := !kcount * min tile (extent - (scoords.(k) * tile)))
        tbk_arr;
      c.fma_useful <-
        c.fma_useful +. (xcount *. ycount *. float_of_int !kcount)
    done;
    let thread_axes =
      Array.map
        (fun (tile, extent, stride, slot) ->
          { Txcount.tile; cut = cut_of bcoords (tile, extent, slot); stride })
        store_axes
    in
    let wave = Txcount.staged_sweep ~width ~ept thread_axes in
    let regs = cut_prod bcoords reg_axes in
    let block_tx = float_of_int (wave * regs) in
    c.tx_out <- c.tx_out +. block_tx;
    if block_tx > c.store_tx_block_max then c.store_tx_block_max <- block_tx
  done;
  c.blocks <- c.blocks + num_blocks;
  c.steps <- c.steps + num_steps

let measure (plan : Plan.t) =
  let c = create_counters () in
  measure_into c plan;
  c

let execute ?counters (plan : Plan.t) ~lhs ~rhs =
  Option.iter (fun c -> measure_into c plan) counters;
  let problem = plan.Plan.problem in
  let mapping = plan.Plan.mapping in
  let info = Problem.info problem in
  (* Resolve the canonicalization swap: [a] is the canonical lhs. *)
  let a, b = if info.Classify.swapped then (rhs, lhs) else (lhs, rhs) in
  let check name want got =
    if not (Shape.equal want (Dense.shape got)) then
      invalid_arg
        (Format.asprintf "Interp: %s has shape %a, expected %a" name Shape.pp
           (Dense.shape got) Shape.pp want)
  in
  check "lhs input" (Problem.lhs_shape problem) a;
  check "rhs input" (Problem.rhs_shape problem) b;
  let out = Dense.create (Problem.out_shape problem) in

  (* Execution-space axes. *)
  let tbx = axes_of_bindings problem mapping.Mapping.tbx in
  let regx = axes_of_bindings problem mapping.Mapping.regx in
  let tby = axes_of_bindings problem mapping.Mapping.tby in
  let regy = axes_of_bindings problem mapping.Mapping.regy in
  let tbk = axes_of_bindings problem mapping.Mapping.tbk in
  let grid_axes =
    List.map
      (fun index ->
        let extent = Problem.extent problem index in
        { index; tile = 1; extent; chunks = extent })
      mapping.Mapping.grid
  in
  (* Grid decomposition covers every external index: tiled ones contribute
     ceil(N/T) chunks, grid ones N chunks. *)
  let block_axes = tbx @ regx @ tby @ regy @ grid_axes in
  let block_radices = Array.of_list (List.map (fun ax -> ax.chunks) block_axes) in
  let num_blocks = Array.fold_left ( * ) 1 block_radices in
  let step_radices = Array.of_list (List.map (fun ax -> ax.chunks) tbk) in
  let num_steps = Array.fold_left ( * ) 1 step_radices in

  (* Shared-memory slabs, one per input: lhs externals (tbx then regx
     order, plus any grid-mapped lhs external at tile 1) x internals; rhs
     externals x internals. *)
  let lhs_grid =
    List.filter
      (fun ax -> List.exists (Index.equal ax.index) info.Classify.lhs_externals)
      grid_axes
  and rhs_grid =
    List.filter
      (fun ax -> List.exists (Index.equal ax.index) info.Classify.rhs_externals)
      grid_axes
  in
  let side_a = tbx @ regx @ lhs_grid and side_b = tby @ regy @ rhs_grid in
  let slab_shape side_axes =
    Shape.make (List.map (fun ax -> (ax.index, ax.tile)) (side_axes @ tbk))
  in
  let slab_a = Dense.create (slab_shape side_a) in
  let slab_b = Dense.create (slab_shape side_b) in

  let size_tbx = Mapping.size_tbx mapping
  and size_tby = Mapping.size_tby mapping
  and space_regx = Mapping.size_regx mapping
  and space_regy = Mapping.size_regy mapping
  and space_tbk = Mapping.size_tbk mapping in
  let tbx_radices = Array.of_list (List.map (fun ax -> ax.tile) tbx) in
  let tby_radices = Array.of_list (List.map (fun ax -> ax.tile) tby) in
  let regx_radices = Array.of_list (List.map (fun ax -> ax.tile) regx) in
  let regy_radices = Array.of_list (List.map (fun ax -> ax.tile) regy) in
  let tbk_radices = Array.of_list (List.map (fun ax -> ax.tile) tbk) in

  (* Per-coordinate offset tables into the slabs: a thread/register/step
     coordinate's slab offset is the dot product of its decomposed
     multi-index with the slab strides over those axes (grid-mapped slab
     axes sit at coordinate 0), so the inner product below adds three
     table entries per read instead of building an [Index.Map].  Every
     coordinate is below its axis tile — the slab extent — so the reads
     are in range by construction and go unchecked. *)
  let offset_table radices strides first count =
    let n = Array.length radices in
    let coords = Array.make n 0 in
    Array.init count (fun lin ->
        decompose_into coords lin radices;
        let off = ref 0 in
        for k = 0 to n - 1 do
          off := !off + (coords.(k) * strides.(first + k))
        done;
        !off)
  in
  let sa_str = Dense.strides slab_a and sb_str = Dense.strides slab_b in
  let n_tbx = List.length tbx
  and n_regx = List.length regx
  and n_tby = List.length tby
  and n_regy = List.length regy
  and n_lhs_grid = List.length lhs_grid
  and n_rhs_grid = List.length rhs_grid in
  let tx_off_a = offset_table tbx_radices sa_str 0 size_tbx in
  let rx_off_a = offset_table regx_radices sa_str n_tbx space_regx in
  let k_off_a =
    offset_table tbk_radices sa_str (n_tbx + n_regx + n_lhs_grid) space_tbk
  in
  let ty_off_b = offset_table tby_radices sb_str 0 size_tby in
  let ry_off_b = offset_table regy_radices sb_str n_tby space_regy in
  let k_off_b =
    offset_table tbk_radices sb_str (n_tby + n_regy + n_rhs_grid) space_tbk
  in

  let env_add axes coords env =
    List.fold_left
      (fun (k, env) ax -> (k + 1, Index.Map.add ax.index coords.(k) env))
      (0, env) axes
    |> snd
  in

  (* Fill a slab from global memory with bounds guards (zero padding). *)
  let fill_slab slab tensor side_axes block_bases step_bases =
    let all_axes = side_axes @ tbk in
    Dense.iteri slab (fun pos _ ->
        let in_range = ref true in
        let env =
          List.fold_left
            (fun (k, env) ax ->
              let base =
                match Index.Map.find_opt ax.index block_bases with
                | Some v -> v
                | None -> Index.Map.find ax.index step_bases
              in
              let g = base + pos.(k) in
              if g >= ax.extent then in_range := false;
              (k + 1, Index.Map.add ax.index g env))
            (0, Index.Map.empty) all_axes
          |> snd
        in
        let v = if !in_range then Dense.get_named tensor env else 0.0 in
        Dense.set slab pos v)
  in

  let bcoords = Array.make (Array.length block_radices) 0 in
  let scoords = Array.make (Array.length step_radices) 0 in
  for block = 0 to num_blocks - 1 do
    decompose_into bcoords block block_radices;
    let block_bases =
      List.fold_left
        (fun (k, m) ax ->
          (k + 1, Index.Map.add ax.index (bcoords.(k) * ax.tile) m))
        (0, Index.Map.empty) block_axes
      |> snd
    in
    (* Per-thread accumulators: acc.(ty * size_tbx + tx) is the register
       tile, indexed by ry * space_regx + rx. *)
    let acc =
      Array.init (size_tbx * size_tby) (fun _ ->
          Array.make (space_regx * space_regy) 0.0)
    in
    for step = 0 to num_steps - 1 do
      decompose_into scoords step step_radices;
      let step_bases =
        List.fold_left
          (fun (k, m) ax ->
            (k + 1, Index.Map.add ax.index (scoords.(k) * ax.tile) m))
          (0, Index.Map.empty) tbk
        |> snd
      in
      fill_slab slab_a a side_a block_bases step_bases;
      fill_slab slab_b b side_b block_bases step_bases;
      (* The serial TB_k sweep with per-thread outer products. *)
      for kk = 0 to space_tbk - 1 do
        let ka = Array.unsafe_get k_off_a kk
        and kb = Array.unsafe_get k_off_b kk in
        for ty = 0 to size_tby - 1 do
          let tyb = Array.unsafe_get ty_off_b ty + kb in
          for tx = 0 to size_tbx - 1 do
            let txa = Array.unsafe_get tx_off_a tx + ka in
            let reg = acc.((ty * size_tbx) + tx) in
            for ry = 0 to space_regy - 1 do
              let bval = Dense.unsafe_get slab_b (tyb + ry_off_b.(ry)) in
              if bval <> 0.0 then
                for rx = 0 to space_regx - 1 do
                  let aval = Dense.unsafe_get slab_a (txa + rx_off_a.(rx)) in
                  reg.((ry * space_regx) + rx) <-
                    reg.((ry * space_regx) + rx) +. (aval *. bval)
                done
            done
          done
        done
      done
    done;
    (* Store finalized register tiles with bounds guards. *)
    for ty = 0 to size_tby - 1 do
      let tycoords = decompose ty tby_radices in
      for tx = 0 to size_tbx - 1 do
        let txcoords = decompose tx tbx_radices in
        let reg = acc.((ty * size_tbx) + tx) in
        for ry = 0 to space_regy - 1 do
          let rycoords = decompose ry regy_radices in
          for rx = 0 to space_regx - 1 do
            let rxcoords = decompose rx regx_radices in
            let local =
              env_add tbx txcoords
                (env_add regx rxcoords
                   (env_add tby tycoords (env_add regy rycoords Index.Map.empty)))
            in
            let in_range = ref true in
            let env =
              List.fold_left
                (fun env ax ->
                  let base = Index.Map.find ax.index block_bases in
                  let l =
                    match Index.Map.find_opt ax.index local with
                    | Some v -> v
                    | None -> 0 (* grid index: tile 1 *)
                  in
                  let g = base + l in
                  if g >= ax.extent then in_range := false;
                  Index.Map.add ax.index g env)
                Index.Map.empty block_axes
            in
            if !in_range then
              Dense.set_named out env reg.((ry * space_regx) + rx)
          done
        done
      done
    done
  done;
  out
