(** A fully-resolved kernel plan: a contraction, a configuration that
    survived pruning, the target device, precision and kernel schema, and
    every derived launch quantity.  Plans are what the code generator emits,
    the interpreter executes and the simulator times. *)

open Tc_gpu
open Tc_expr

type t = {
  problem : Problem.t;
  mapping : Mapping.t;
  arch : Arch.t;
  precision : Precision.t;
  schema : Schema.t;
      (** kernel schema: classic synchronous ladder, or a software-pipelined
          variant (double-buffered SMEM, async copies; see
          {!Tc_gpu.Schema}) *)
  cost : float;  (** Algorithm-3 model cost (DRAM transactions) *)
}

val make :
  problem:Problem.t -> mapping:Mapping.t -> arch:Arch.t
  -> precision:Precision.t -> t
(** Computes the model cost; the schema is [Classic] (use {!with_schema}).
    @raise Invalid_argument if the mapping fails {!Mapping.validate}. *)

val with_schema : Schema.t -> t -> t
(** The same plan under another kernel schema (the model cost — DRAM
    transactions — is schema-independent; only the simulator's timing
    distinguishes them).
    @raise Invalid_argument if the schema is infeasible for the
    configuration: MMA on a non-tensor-core precision, a pipelined schema
    on a device without async copies, double-buffered slabs above the
    block shared-memory budget, or a macro-tile that doesn't divide into
    MMA fragments. *)

val schema_feasible :
  arch:Arch.t -> precision:Precision.t -> mapping:Mapping.t -> Schema.t
  -> bool
(** Whether {!make} would accept this schema for the configuration.
    [Classic] is always feasible for a mapping that survived pruning. *)

val feasible_schemas :
  arch:Arch.t -> precision:Precision.t -> Mapping.t -> Schema.t list
(** The feasible subset of {!Tc_gpu.Schema.all}, in that (deterministic,
    Classic-first) order — the schema race the driver prices per
    candidate. *)

val threads_x : t -> int
val threads_y : t -> int
val threads_per_block : t -> int

val smem_bytes : t -> int
(** Shared memory of the plan's kernel: the mapping's slab bytes times the
    schema's buffering factor (2x under the pipelined schemas). *)

val regs_per_thread : t -> int
(** Per-thread register estimate including the schema's bookkeeping
    registers ({!Tc_gpu.Schema.extra_regs}). *)

val num_blocks : t -> int
val num_steps : t -> int

val occupancy : t -> Occupancy.result
(** Occupancy under the schema-adjusted footprint (doubled SMEM and the
    extra registers lower it relative to the classic schema). *)

val flops : t -> float
val pp : Format.formatter -> t -> unit
