open Tc_tensor
open Tc_gpu
open Tc_expr

let ceil_div a b = (a + b - 1) / b

let contiguous_run problem mapping indices =
  let rec go acc = function
    | [] -> acc
    | i :: rest ->
        let tile = Mapping.tile_of mapping i in
        let extent = Problem.extent problem i in
        if tile = extent then go (acc * tile) rest else acc * tile
  in
  go 1 indices

let store_run problem mapping =
  let info = Problem.info problem in
  let in_tbx i =
    List.exists (fun b -> Index.equal b.Mapping.index i) mapping.Mapping.tbx
  in
  let rec go acc = function
    | [] -> acc
    | i :: rest ->
        if not (in_tbx i) then acc
        else
          let tile = Mapping.tile_of mapping i in
          let extent = Problem.extent problem i in
          if tile = extent then go (acc * tile) rest else acc * tile
  in
  go 1 info.Classify.externals

type breakdown = { lhs : float; rhs : float; out : float }

(* Transactions for one cooperative sweep of [width] threads over elements
   grouped in contiguous segments of length [run]: the sweep is split into
   ceil(width/run') segments of run' = min(run, width) elements, each
   costing ceil(run'/elements-per-transaction) transactions. *)
let sweep_transactions ~width ~run ~ept =
  let run = max 1 (min run width) in
  let segments = ceil_div width run in
  segments * ceil_div run ept

let tile_elems problem mapping indices =
  ignore problem;
  List.fold_left (fun acc i -> acc * Mapping.tile_of mapping i) 1 indices

let load_transactions prec problem mapping indices =
  let ept = Precision.elems_per_transaction prec in
  let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
  let elems = tile_elems problem mapping indices in
  let run = contiguous_run problem mapping indices in
  let rows = ceil_div elems (max 1 width) in
  let width = min width elems in
  float_of_int (rows * sweep_transactions ~width ~run ~ept)

let transactions prec problem mapping =
  let info = Problem.info problem in
  let ept = Precision.elems_per_transaction prec in
  let steps = float_of_int (Mapping.num_steps problem mapping) in
  let blocks = float_of_int (Mapping.num_blocks problem mapping) in
  let lhs_per_step =
    load_transactions prec problem mapping
      info.Classify.expr.Ast.lhs.Ast.indices
  in
  let rhs_per_step =
    load_transactions prec problem mapping
      info.Classify.expr.Ast.rhs.Ast.indices
  in
  (* Output store: one sweep of the TBx*TBy thread grid per (REGx, REGy)
     register coordinate. *)
  let out_per_block =
    let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
    let run = store_run problem mapping in
    let sweeps = Mapping.size_regx mapping * Mapping.size_regy mapping in
    float_of_int (sweeps * sweep_transactions ~width ~run ~ept)
  in
  {
    lhs = lhs_per_step *. steps *. blocks;
    rhs = rhs_per_step *. steps *. blocks;
    out = out_per_block *. blocks;
  }

let total prec problem mapping =
  let b = transactions prec problem mapping in
  b.lhs +. b.rhs +. b.out

let bytes_moved prec problem mapping = 128.0 *. total prec problem mapping

type tensor_charge = {
  tensor : string;
  transactions : float;
  bytes : float;
  run : int;
  coalescing : float;
}

type explanation = {
  charges : tensor_charge list;
  total_transactions : float;
  total_bytes : float;
  steps : int;
  blocks : int;
  ept : int;
}

let explain prec problem mapping =
  let info = Problem.info problem in
  let ept = Precision.elems_per_transaction prec in
  let b = transactions prec problem mapping in
  let charge tensor indices total_tx =
    let elems = tile_elems problem mapping indices in
    let run = contiguous_run problem mapping indices in
    (* Ideal = the fully coalesced sweep over the same tile volume; the
       ratio to the charged count is the model's coalescing efficiency. *)
    let per_tile_actual =
      let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
      let rows = ceil_div elems (max 1 width) in
      let width = min width elems in
      rows * sweep_transactions ~width ~run ~ept
    in
    let per_tile_ideal = ceil_div elems ept in
    {
      tensor;
      transactions = total_tx;
      bytes = 128.0 *. total_tx;
      run;
      coalescing =
        float_of_int per_tile_ideal /. float_of_int (max 1 per_tile_actual);
    }
  in
  let out_charge =
    let indices = info.Classify.externals in
    let elems = tile_elems problem mapping indices in
    let run = store_run problem mapping in
    let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
    let sweeps = Mapping.size_regx mapping * Mapping.size_regy mapping in
    let per_tile_actual = sweeps * sweep_transactions ~width ~run ~ept in
    let per_tile_ideal = ceil_div elems ept in
    {
      tensor = "C";
      transactions = b.out;
      bytes = 128.0 *. b.out;
      run;
      coalescing =
        float_of_int per_tile_ideal /. float_of_int (max 1 per_tile_actual);
    }
  in
  {
    charges =
      [
        charge "A" info.Classify.expr.Ast.lhs.Ast.indices b.lhs;
        charge "B" info.Classify.expr.Ast.rhs.Ast.indices b.rhs;
        out_charge;
      ];
    total_transactions = b.lhs +. b.rhs +. b.out;
    total_bytes = 128.0 *. (b.lhs +. b.rhs +. b.out);
    steps = Mapping.num_steps problem mapping;
    blocks = Mapping.num_blocks problem mapping;
    ept;
  }

(* Incremental evaluator for the streaming pipeline: one mutable scratch
   per worker replaces the per-candidate [Mapping.tile_of] list searches
   with array reads, and the three breakdown components are accumulated
   in charge order so a candidate can be abandoned as soon as its partial
   sum provably exceeds the caller's bound.  Every arithmetic step
   replicates [transactions]/[total] exactly (same integer expressions,
   same float operation order), so an unaborted result is bit-identical
   to [total prec problem mapping]. *)
module Eval = struct
  type t = {
    ept : int;
    extents : int array;  (* indexed by Tc_expr.Idxset.slot *)
    externals : Index.t list;
    internals : Index.t list;
    lhs_indices : Index.t list;
    rhs_indices : Index.t list;
    tiles : int array;  (* indexed by Tc_expr.Idxset.slot *)
    mutable tbx_set : Idxset.t;
    mutable width : int;  (* TBx * TBy *)
    mutable regs : int;  (* REGx * REGy *)
    mutable smem : int;  (* Mapping.smem_elems *)
    mutable reg_elems : int;  (* Mapping.reg_elems_per_thread *)
    mutable blocks : int;  (* memoized Mapping.num_blocks; -1 = unset *)
  }

  let create prec problem =
    let info = Problem.info problem in
    let extents = Array.make 26 1 in
    List.iter
      (fun i -> extents.(Idxset.slot i) <- Problem.extent problem i)
      (Classify.all_indices info);
    {
      ept = Precision.elems_per_transaction prec;
      extents;
      externals = info.Classify.externals;
      internals = info.Classify.internals;
      lhs_indices = info.Classify.expr.Ast.lhs.Ast.indices;
      rhs_indices = info.Classify.expr.Ast.rhs.Ast.indices;
      tiles = Array.make 26 1;
      tbx_set = Idxset.empty;
      width = 1;
      regs = 1;
      smem = 0;
      reg_elems = 0;
      blocks = -1;
    }

  (* Every structurally valid mapping binds the identical index set (all
     externals on one of tbx/regx/tby/regy/grid, all internals on tbk),
     so loading a candidate overwrites every live slot — no reset
     needed between candidates. *)
  let load t (m : Mapping.t) =
    let tiles = t.tiles in
    let set l = List.iter (fun b -> tiles.(Idxset.slot b.Mapping.index) <- b.Mapping.tile) l in
    set m.Mapping.tbx;
    set m.Mapping.regx;
    set m.Mapping.tby;
    set m.Mapping.regy;
    set m.Mapping.tbk;
    List.iter (fun i -> tiles.(Idxset.slot i) <- 1) m.Mapping.grid;
    t.tbx_set <-
      List.fold_left
        (fun s b -> Idxset.add b.Mapping.index s)
        Idxset.empty m.Mapping.tbx;
    let tbx = Mapping.size_tbx m and tby = Mapping.size_tby m in
    let regx = Mapping.size_regx m and regy = Mapping.size_regy m in
    t.width <- tbx * tby;
    t.regs <- regx * regy;
    t.smem <- ((tbx * regx) + (tby * regy)) * Mapping.size_tbk m;
    t.reg_elems <- (regx * regy) + regx + regy;
    t.blocks <- -1

  let tile t i = t.tiles.(Idxset.slot i)
  let threads t = t.width
  let smem_elems t = t.smem
  let reg_elems t = t.reg_elems

  let blocks t =
    if t.blocks >= 0 then t.blocks
    else begin
      let b =
        List.fold_left
          (fun acc i ->
            let s = Idxset.slot i in
            acc * ceil_div t.extents.(s) t.tiles.(s))
          1 t.externals
      in
      t.blocks <- b;
      b
    end

  let steps t =
    List.fold_left
      (fun acc i ->
        let s = Idxset.slot i in
        acc * ceil_div t.extents.(s) t.tiles.(s))
      1 t.internals

  (* [contiguous_run] on the scratch. *)
  let run_of t indices =
    let rec go acc = function
      | [] -> acc
      | i :: rest ->
          let s = Idxset.slot i in
          let tile = t.tiles.(s) in
          if tile = t.extents.(s) then go (acc * tile) rest else acc * tile
    in
    go 1 indices

  (* [store_run] on the scratch. *)
  let store_run_of t =
    let rec go acc = function
      | [] -> acc
      | i :: rest ->
          if not (Idxset.mem i t.tbx_set) then acc
          else
            let s = Idxset.slot i in
            let tile = t.tiles.(s) in
            if tile = t.extents.(s) then go (acc * tile) rest else acc * tile
    in
    go 1 t.externals

  (* [load_transactions] on the scratch (integer result). *)
  let load_tx t indices =
    let elems =
      List.fold_left (fun acc i -> acc * t.tiles.(Idxset.slot i)) 1 indices
    in
    let run = run_of t indices in
    let rows = ceil_div elems (max 1 t.width) in
    let width = min t.width elems in
    rows * sweep_transactions ~width ~run ~ept:t.ept

  let cost_bounded t ~bound =
    let steps = float_of_int (steps t) in
    let blocks = float_of_int (blocks t) in
    let lhs = float_of_int (load_tx t t.lhs_indices) *. steps *. blocks in
    (* Each component is >= blocks >= 1, so a partial sum above the bound
       already decides the comparison against every heap resident. *)
    if lhs > bound then None
    else
      let rhs = float_of_int (load_tx t t.rhs_indices) *. steps *. blocks in
      let partial = lhs +. rhs in
      if partial > bound then None
      else
        let out =
          float_of_int
            (t.regs
            * sweep_transactions ~width:t.width ~run:(store_run_of t)
                ~ept:t.ept)
          *. blocks
        in
        let total = partial +. out in
        if total > bound then None else Some total
end

let rank prec problem mappings =
  (* Scoring is pure, so the fan-out over surviving mappings is safe to
     run on the domain pool; [Pool.map] preserves order and the sort key
     is total (cost, then [Mapping.compare]), so the ranking is
     bit-identical at any job count. *)
  let scored =
    Tc_par.Pool.map (fun m -> (m, total prec problem m)) mappings
  in
  List.sort
    (fun (m1, c1) (m2, c2) ->
      match Float.compare c1 c2 with
      | 0 -> Mapping.compare m1 m2
      | c -> c)
    scored

let best prec problem mappings =
  match rank prec problem mappings with [] -> None | hd :: _ -> Some hd
