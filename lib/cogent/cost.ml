open Tc_tensor
open Tc_gpu
open Tc_expr

let ceil_div a b = (a + b - 1) / b

let contiguous_run problem mapping indices =
  let rec go acc = function
    | [] -> acc
    | i :: rest ->
        let tile = Mapping.tile_of mapping i in
        let extent = Problem.extent problem i in
        if tile = extent then go (acc * tile) rest else acc * tile
  in
  go 1 indices

let store_run problem mapping =
  let info = Problem.info problem in
  let in_tbx i =
    List.exists (fun b -> Index.equal b.Mapping.index i) mapping.Mapping.tbx
  in
  let rec go acc = function
    | [] -> acc
    | i :: rest ->
        if not (in_tbx i) then acc
        else
          let tile = Mapping.tile_of mapping i in
          let extent = Problem.extent problem i in
          if tile = extent then go (acc * tile) rest else acc * tile
  in
  go 1 info.Classify.externals

type breakdown = { lhs : float; rhs : float; out : float }

(* Transactions for one cooperative sweep of [width] threads over elements
   grouped in contiguous segments of length [run]: the sweep is split into
   ceil(width/run') segments of run' = min(run, width) elements, each
   costing ceil(run'/elements-per-transaction) transactions. *)
let sweep_transactions ~width ~run ~ept =
  let run = max 1 (min run width) in
  let segments = ceil_div width run in
  segments * ceil_div run ept

let tile_elems problem mapping indices =
  ignore problem;
  List.fold_left (fun acc i -> acc * Mapping.tile_of mapping i) 1 indices

let load_transactions prec problem mapping indices =
  let ept = Precision.elems_per_transaction prec in
  let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
  let elems = tile_elems problem mapping indices in
  let run = contiguous_run problem mapping indices in
  let rows = ceil_div elems (max 1 width) in
  let width = min width elems in
  float_of_int (rows * sweep_transactions ~width ~run ~ept)

let transactions prec problem mapping =
  let info = Problem.info problem in
  let ept = Precision.elems_per_transaction prec in
  let steps = float_of_int (Mapping.num_steps problem mapping) in
  let blocks = float_of_int (Mapping.num_blocks problem mapping) in
  let lhs_per_step =
    load_transactions prec problem mapping
      info.Classify.expr.Ast.lhs.Ast.indices
  in
  let rhs_per_step =
    load_transactions prec problem mapping
      info.Classify.expr.Ast.rhs.Ast.indices
  in
  (* Output store: one sweep of the TBx*TBy thread grid per (REGx, REGy)
     register coordinate. *)
  let out_per_block =
    let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
    let run = store_run problem mapping in
    let sweeps = Mapping.size_regx mapping * Mapping.size_regy mapping in
    float_of_int (sweeps * sweep_transactions ~width ~run ~ept)
  in
  {
    lhs = lhs_per_step *. steps *. blocks;
    rhs = rhs_per_step *. steps *. blocks;
    out = out_per_block *. blocks;
  }

let total prec problem mapping =
  let b = transactions prec problem mapping in
  b.lhs +. b.rhs +. b.out

let bytes_moved prec problem mapping = 128.0 *. total prec problem mapping

type tensor_charge = {
  tensor : string;
  transactions : float;
  bytes : float;
  run : int;
  coalescing : float;
}

type explanation = {
  charges : tensor_charge list;
  total_transactions : float;
  total_bytes : float;
  steps : int;
  blocks : int;
  ept : int;
}

let explain prec problem mapping =
  let info = Problem.info problem in
  let ept = Precision.elems_per_transaction prec in
  let b = transactions prec problem mapping in
  let charge tensor indices total_tx =
    let elems = tile_elems problem mapping indices in
    let run = contiguous_run problem mapping indices in
    (* Ideal = the fully coalesced sweep over the same tile volume; the
       ratio to the charged count is the model's coalescing efficiency. *)
    let per_tile_actual =
      let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
      let rows = ceil_div elems (max 1 width) in
      let width = min width elems in
      rows * sweep_transactions ~width ~run ~ept
    in
    let per_tile_ideal = ceil_div elems ept in
    {
      tensor;
      transactions = total_tx;
      bytes = 128.0 *. total_tx;
      run;
      coalescing =
        float_of_int per_tile_ideal /. float_of_int (max 1 per_tile_actual);
    }
  in
  let out_charge =
    let indices = info.Classify.externals in
    let elems = tile_elems problem mapping indices in
    let run = store_run problem mapping in
    let width = Mapping.size_tbx mapping * Mapping.size_tby mapping in
    let sweeps = Mapping.size_regx mapping * Mapping.size_regy mapping in
    let per_tile_actual = sweeps * sweep_transactions ~width ~run ~ept in
    let per_tile_ideal = ceil_div elems ept in
    {
      tensor = "C";
      transactions = b.out;
      bytes = 128.0 *. b.out;
      run;
      coalescing =
        float_of_int per_tile_ideal /. float_of_int (max 1 per_tile_actual);
    }
  in
  {
    charges =
      [
        charge "A" info.Classify.expr.Ast.lhs.Ast.indices b.lhs;
        charge "B" info.Classify.expr.Ast.rhs.Ast.indices b.rhs;
        out_charge;
      ];
    total_transactions = b.lhs +. b.rhs +. b.out;
    total_bytes = 128.0 *. (b.lhs +. b.rhs +. b.out);
    steps = Mapping.num_steps problem mapping;
    blocks = Mapping.num_blocks problem mapping;
    ept;
  }

let rank prec problem mappings =
  (* Scoring is pure, so the fan-out over surviving mappings is safe to
     run on the domain pool; [Pool.map] preserves order and the sort key
     is total (cost, then [Mapping.compare]), so the ranking is
     bit-identical at any job count. *)
  let scored =
    Tc_par.Pool.map (fun m -> (m, total prec problem m)) mappings
  in
  List.sort
    (fun (m1, c1) (m2, c2) ->
      match Float.compare c1 c2 with
      | 0 -> Mapping.compare m1 m2
      | c -> c)
    scored

let best prec problem mappings =
  match rank prec problem mappings with [] -> None | hd :: _ -> Some hd
