(** Analytical DRAM-transaction cost model (Algorithm 3).

    For a candidate configuration the model estimates the number of global
    memory transactions needed to load both input slabs every step and to
    store the output once, assuming 128-byte aligned transactions (16 FP64 /
    32 FP32 elements).  Coalescing is captured by the length of contiguous
    runs inside a staged hyper-rectangular tile: a run ends at the first
    index whose tile does not cover its full extent. *)

open Tc_tensor
open Tc_gpu
open Tc_expr

val contiguous_run : Problem.t -> Mapping.t -> Index.t list -> int
(** [contiguous_run p m indices] is the length of a maximal contiguous run
    of global-memory elements inside the tile of a tensor whose layout is
    [indices] (FVI first): the product of leading tile sizes up to and
    including the first partially-tiled index. *)

val store_run : Problem.t -> Mapping.t -> int
(** Contiguous-run length for output stores: only [TB_x]-mapped indices
    vary within one store instruction, so the run stops at the first output
    index not mapped to [TB_x]. *)

type breakdown = {
  lhs : float;  (** transactions to load the lhs input over all steps/blocks *)
  rhs : float;
  out : float;  (** transactions to store the output *)
}

val transactions : Precision.t -> Problem.t -> Mapping.t -> breakdown
val total : Precision.t -> Problem.t -> Mapping.t -> float

val bytes_moved : Precision.t -> Problem.t -> Mapping.t -> float
(** [total * 128]. *)

type tensor_charge = {
  tensor : string;  (** ["A"], ["B"] or ["C"] *)
  transactions : float;  (** what the model charged over the whole kernel *)
  bytes : float;  (** [transactions * 128] *)
  run : int;  (** contiguous-run length inside one staged tile *)
  coalescing : float;
      (** fully-coalesced transactions over charged transactions for one
          tile, in (0, 1]; 1.0 = every transaction fully utilized *)
}

type explanation = {
  charges : tensor_charge list;  (** A, B, C in that order *)
  total_transactions : float;
  total_bytes : float;
  steps : int;
  blocks : int;
  ept : int;  (** elements per 128-byte transaction at this precision *)
}

val explain : Precision.t -> Problem.t -> Mapping.t -> explanation
(** Itemized Algorithm-3 charge sheet for one configuration: where the
    model thinks the DRAM traffic goes and how efficient each tensor's
    access pattern is.  [total_transactions] equals {!total} exactly. *)

val rank :
  Precision.t -> Problem.t -> Mapping.t list -> (Mapping.t * float) list
(** Configurations sorted by ascending cost; ties broken deterministically
    by {!Mapping.compare}. *)

val best :
  Precision.t -> Problem.t -> Mapping.t list -> (Mapping.t * float) option
