(** Analytical DRAM-transaction cost model (Algorithm 3).

    For a candidate configuration the model estimates the number of global
    memory transactions needed to load both input slabs every step and to
    store the output once, assuming 128-byte aligned transactions (16 FP64 /
    32 FP32 elements).  Coalescing is captured by the length of contiguous
    runs inside a staged hyper-rectangular tile: a run ends at the first
    index whose tile does not cover its full extent. *)

open Tc_tensor
open Tc_gpu
open Tc_expr

val contiguous_run : Problem.t -> Mapping.t -> Index.t list -> int
(** [contiguous_run p m indices] is the length of a maximal contiguous run
    of global-memory elements inside the tile of a tensor whose layout is
    [indices] (FVI first): the product of leading tile sizes up to and
    including the first partially-tiled index. *)

val store_run : Problem.t -> Mapping.t -> int
(** Contiguous-run length for output stores: only [TB_x]-mapped indices
    vary within one store instruction, so the run stops at the first output
    index not mapped to [TB_x]. *)

type breakdown = {
  lhs : float;  (** transactions to load the lhs input over all steps/blocks *)
  rhs : float;
  out : float;  (** transactions to store the output *)
}

val transactions : Precision.t -> Problem.t -> Mapping.t -> breakdown
val total : Precision.t -> Problem.t -> Mapping.t -> float

val bytes_moved : Precision.t -> Problem.t -> Mapping.t -> float
(** [total * 128]. *)

(** Incremental evaluator for the streaming pipeline.  One [Eval.t] per
    worker replaces the per-candidate [Mapping.tile_of] list searches with
    a shared tile-slot scratch (indexed by {!Tc_expr.Idxset.slot}) and
    evaluates the breakdown components in charge order, abandoning a
    candidate as soon as its partial sum exceeds the caller's bound.  Not
    thread-safe: never share one evaluator across pool workers. *)
module Eval : sig
  type t

  val create : Precision.t -> Problem.t -> t

  val load : t -> Mapping.t -> unit
  (** Load a candidate into the scratch.  Valid mappings all bind the same
      index set, so consecutive loads need no reset. *)

  val tile : t -> Index.t -> int
  (** [Mapping.tile_of] of the loaded candidate, as an array read. *)

  val blocks : t -> int
  (** [Mapping.num_blocks] of the loaded candidate, memoized. *)

  val threads : t -> int
  (** [Mapping.threads_per_block] of the loaded candidate. *)

  val smem_elems : t -> int
  (** [Mapping.smem_elems] of the loaded candidate. *)

  val reg_elems : t -> int
  (** [Mapping.reg_elems_per_thread] of the loaded candidate. *)

  val cost_bounded : t -> bound:float -> float option
  (** Cost of the loaded candidate, or [None] when it exceeds [bound]
      (possibly abandoning the evaluation early — each breakdown
      component is strictly positive, so a partial sum above the bound is
      conclusive).  [Some c] is bit-identical to [total prec problem m];
      with [bound = infinity] it never returns [None]. *)
end

type tensor_charge = {
  tensor : string;  (** ["A"], ["B"] or ["C"] *)
  transactions : float;  (** what the model charged over the whole kernel *)
  bytes : float;  (** [transactions * 128] *)
  run : int;  (** contiguous-run length inside one staged tile *)
  coalescing : float;
      (** fully-coalesced transactions over charged transactions for one
          tile, in (0, 1]; 1.0 = every transaction fully utilized *)
}

type explanation = {
  charges : tensor_charge list;  (** A, B, C in that order *)
  total_transactions : float;
  total_bytes : float;
  steps : int;
  blocks : int;
  ept : int;  (** elements per 128-byte transaction at this precision *)
}

val explain : Precision.t -> Problem.t -> Mapping.t -> explanation
(** Itemized Algorithm-3 charge sheet for one configuration: where the
    model thinks the DRAM traffic goes and how efficient each tensor's
    access pattern is.  [total_transactions] equals {!total} exactly. *)

val rank :
  Precision.t -> Problem.t -> Mapping.t list -> (Mapping.t * float) list
(** Configurations sorted by ascending cost; ties broken deterministically
    by {!Mapping.compare}. *)

val best :
  Precision.t -> Problem.t -> Mapping.t list -> (Mapping.t * float) option
