(** The TTGT (Transpose-Transpose-GEMM-Transpose) baseline, modeled after
    TAL_SH: lower a contraction onto a library GEMM by index permutation.

    The planner groups the external indices of each input into the GEMM M/N
    dimensions and the contraction indices into K, then searches the small
    space of group orders and operand orientations for the variant needing
    the cheapest permutations: an input whose layout already has its two
    groups contiguous (in either order) needs no transpose, mirroring
    cuBLAS's [op(A)] arguments; likewise the output transpose is skipped
    when the GEMM can directly produce C's layout. *)

open Tc_tensor
open Tc_gpu
open Tc_expr

type permute_step = { operand : string; src : Index.t list; dst : Index.t list }

type t = {
  problem : Problem.t;
  m_order : Index.t list;  (** lhs externals, GEMM row-group order *)
  n_order : Index.t list;
  k_order : Index.t list;
  m : int;
  n : int;
  k : int;
  swapped_output : bool;
      (** true when the GEMM computes [C^T] (operands exchanged) so that no
          output permute — or a cheaper one — is needed *)
  permutes : permute_step list;  (** the data movements actually required *)
}

val plan_ctx : Cogent.Ctx.t -> ?optimize:bool -> Problem.t -> t
(** With [optimize:false] (the default), the TAL_SH-faithful lowering: M/K
    group orders follow the lhs input's layout and N follows the rhs's, and
    the GEMM result is permuted into C's layout — identity permutes are
    skipped but no search happens.  With [optimize:true] (an extension, see
    DESIGN.md), the small space of group orders and operand orientations is
    searched for the cheapest-permutation variant under the context's
    device and precision movement model. *)

type estimate = {
  time_s : float;
  gflops : float;
  transpose_time_s : float;
  gemm_time_s : float;
  gemm : Gemm_model.result;
  transpose_bytes : float;
}

val estimate : Arch.t -> Precision.t -> t -> estimate
(** Includes a fixed TAL_SH host-runtime overhead per contraction call. *)

val run_ctx : Cogent.Ctx.t -> ?optimize:bool -> Problem.t -> estimate
(** [plan_ctx] + [estimate] on the context's device/precision — the TTGT
    side of the serving layer's dispatch comparison.  (The historical
    optional-argument [plan]/[run] wrappers are gone; build a
    {!Cogent.Ctx.t} — {!Cogent.Ctx.default} is V100/FP64.) *)

val execute : ?optimize:bool -> Problem.t -> lhs:Dense.t -> rhs:Dense.t -> Dense.t
(** Functional execution of the TTGT pipeline (permute, GEMM, permute) on
    host tensors (planned under {!Cogent.Ctx.default} — the variant choice
    is device-independent); used to validate the lowering against the
    direct reference contraction. *)

val emit_cuda : Precision.t -> t -> string
(** CUDA source for the pipeline: one {!Transpose_gen} kernel (plus
    launcher) per required permutation, and a driver comment giving the
    cuBLAS GEMM call (dimensions and operand order) the runtime issues
    between them. *)
